// Benchmarks regenerating every table and figure of the CRAID paper's
// evaluation, one per artifact, at a reduced volume budget (see
// internal/experiments for the scaling rules; cmd/craidbench prints the
// same data paper-style, and accepts larger budgets).
//
// These are throughput benchmarks of whole experiments: the interesting
// output is the custom metrics (latencies, ratios) each bench reports,
// which are the paper's reported quantities.
package main

import (
	"testing"

	"craid/internal/disk"
	"craid/internal/experiments"
	"craid/internal/metrics"
)

// benchBudgetGB keeps every benchmark's replay volume small enough for
// routine runs; craidbench -budget raises it for sharper curves.
const benchBudgetGB = 0.2

func scaleFor(trace string) float64 { return experiments.ScaleFor(trace, benchBudgetGB) }

func BenchmarkTable1_TraceSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchBudgetGB)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Trace == "wdev" {
					b.ReportMetric(100*r.Summary.Top20Share, "wdev_top20_%")
				}
			}
		}
	}
}

func BenchmarkFigure1_FrequencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1("cello99", scaleFor("cello99"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Fraction of blocks read at most 50 times (paper: 76-98%).
			b.ReportMetric(100*res.ReadCDF[5], "blocks_le50reads_%")
		}
	}
}

func BenchmarkFigure1_WorkingSetOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1("wdev", scaleFor("wdev"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*metrics.Mean(res.OverlapAll), "mean_overlap_%")
			b.ReportMetric(100*metrics.Mean(res.OverlapTop), "top20_overlap_%")
		}
	}
}

func benchPolicyTable(b *testing.B, hit bool) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Tables2and3(benchBudgetGB)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Trace != "wdev" {
					continue
				}
				if hit {
					b.ReportMetric(100*r.HitRatio, r.Policy+"_hit_%")
				} else {
					b.ReportMetric(100*r.ReplacementRatio, r.Policy+"_repl_%")
				}
			}
		}
	}
}

func BenchmarkTable2_HitRatio(b *testing.B)         { benchPolicyTable(b, true) }
func BenchmarkTable3_ReplacementRatio(b *testing.B) { benchPolicyTable(b, false) }

// benchSweep runs the Fig. 4/6 sweep for one representative trace with
// a trimmed size grid (craidbench regenerates the full grids).
func benchSweep(b *testing.B, trace string) experiments.SweepResult {
	b.Helper()
	sizes := experiments.PCSizes(trace)
	sweep, err := experiments.ResponseTimeSweep(trace, scaleFor(trace),
		[]float64{sizes[0], sizes[2], sizes[4]})
	if err != nil {
		b.Fatal(err)
	}
	return sweep
}

func reportPoint(b *testing.B, sweep experiments.SweepResult, strat experiments.Strategy, read bool) {
	for _, p := range sweep.Points {
		if p.Strategy == strat {
			v := p.ReadMean
			if !read {
				v = p.WriteMean
			}
			b.ReportMetric(v.Milliseconds(), string(strat)+"_ms")
			return
		}
	}
}

func BenchmarkFigure4_ReadResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep := benchSweep(b, "wdev")
		if i == 0 {
			for _, s := range experiments.Strategies() {
				reportPoint(b, sweep, s, true)
			}
		}
	}
}

func BenchmarkFigure6_WriteResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep := benchSweep(b, "webusers")
		if i == 0 {
			for _, s := range experiments.Strategies() {
				reportPoint(b, sweep, s, false)
			}
		}
	}
}

func BenchmarkTable4_BestWorstRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t4 := experiments.Table4(benchSweep(b, "wdev"))
		if i == 0 {
			b.ReportMetric(100*t4.BestReadHit, "best_read_hit_%")
			b.ReportMetric(100*t4.BestWriteHit, "best_write_hit_%")
			b.ReportMetric(100*t4.WorstReadEvict, "worst_read_evict_%")
		}
	}
}

func BenchmarkFigure5_SequentialityCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5("webusers", scaleFor("webusers"), 0.016)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(s.Mean, string(s.Strategy)+"_seq")
			}
		}
	}
}

func BenchmarkTable5_QueueStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(scaleFor("wdev"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.ConcMean, string(r.Strategy)+"_cdev")
				b.ReportMetric(float64(r.QueueMax), string(r.Strategy)+"_ioqmax")
			}
		}
	}
}

func BenchmarkFigure7_WorkloadDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sizes := experiments.PCSizes("wdev")
		series, err := experiments.Figure7("wdev", scaleFor("wdev"),
			[]float64{sizes[0], sizes[len(sizes)-1]})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				if s.PCPct == sizes[0] || !s.Strategy.IsCRAID() {
					b.ReportMetric(s.MeanCV, string(s.Strategy)+"_cv")
				}
			}
		}
	}
}

func BenchmarkTable6_CvBestWorst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sizes := experiments.PCSizes("wdev")
		series, err := experiments.Figure7("wdev", scaleFor("wdev"),
			[]float64{sizes[0], sizes[len(sizes)-1]})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range experiments.Table6(series) {
				b.ReportMetric(row.BestCV, string(row.Strategy)+"_bestcv")
			}
		}
	}
}

func BenchmarkAblation_MigrationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MigrationAblation(0.0128)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.TotalFrac, r.Strategy+"_moved_%")
			}
		}
	}
}

// BenchmarkCRAIDSubmit measures the controller's per-request CPU
// overhead (redirector + monitor paths) on instant devices — the cost
// that would run inside a real RAID controller.
func BenchmarkCRAIDSubmit(b *testing.B) {
	var requests int64
	for i := 0; i < b.N; i++ {
		// LRU keeps the measurement to redirector/mapping cost: WLRU's
		// clean-victim scan is O(k·w) and dominates when nearly every
		// entry is dirty (webusers is write-heavy), which is a policy
		// property, not controller overhead.
		res, err := experiments.Run(experiments.RunConfig{
			Trace: "webusers", Scale: 1, Duration: 6 * 3600 * 1e9,
			Strategy: experiments.CRAID5, Policy: "LRU",
			Instant: true, PCBlocks: 50_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		requests += res.Requests
	}
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
	_ = disk.BlockSize
}

// BenchmarkAblation_PCLevel measures CRAID with RAID-0/5/6 cache
// partitions: the §6 parity-cost trade-off.
func BenchmarkAblation_PCLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPCLevel("wdev", scaleFor("wdev"), 0.008)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.WriteMean.Milliseconds(), "PC-"+r.Level.String()+"_write_ms")
			}
		}
	}
}

// BenchmarkAblation_Rebalance compares the paper's invalidate-on-expand
// against the ExpandRetain extension during a live 38→50 upgrade.
func BenchmarkAblation_Rebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRebalance("wdev", scaleFor("wdev"), 0.008)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.PostHitRatio, r.Mode+"_posthit_%")
				b.ReportMetric(float64(r.Upgrade.DirtyWriteback+r.Upgrade.Migrated), r.Mode+"_moved")
			}
		}
	}
}
