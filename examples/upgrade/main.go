// Upgrade: the headline act — an online array expansion under load.
//
// Part 1 compares the migration volume of CRAID against restriping
// baselines over the paper's 10→50 disk schedule.
//
// Part 2 performs a live expansion: a CRAID array serving a wdev-like
// workload grows mid-week; the example reports what the upgrade cost
// (dirty write-backs, invalidations) and shows the new disks absorbing
// I/O immediately, while the archive partition never moves.
//
// Run with: go run ./examples/upgrade
package main

import (
	"fmt"
	"io"

	"craid/internal/core"
	"craid/internal/disk"
	"craid/internal/experiments"
	"craid/internal/migrate"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/workload"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("Part 1: blocks moved during upgrades, 10 → 50 disks (+30% steps)")
	fmt.Printf("%-11s %13s %10s\n", "strategy", "total moved", "final cv")
	rows, err := experiments.MigrationAblation(0.0128) // paper's largest P_C
	if err != nil {
		panic(err)
	}
	for _, row := range rows {
		fmt.Printf("%-11s %12.1f%% %10.4f\n", row.Strategy, 100*row.TotalFrac, row.FinalCV)
	}
	fmt.Println()
	_ = migrate.Names // see internal/migrate for the strategy models
}

func part2() {
	fmt.Println("Part 2: live online expansion, 10 → 13 disks, wdev-like workload")

	params, err := workload.Preset("wdev")
	if err != nil {
		panic(err)
	}
	params = params.Scaled(0.25).WithDuration(48 * sim.Hour)
	gen := workload.New(params)

	eng := sim.NewEngine()
	newHDD := func(i int) disk.Device {
		c := disk.CheetahConfig(fmt.Sprintf("hdd%d", i))
		c.CapacityBlocks /= 4 // match the scaled workload
		return disk.NewHDD(eng, c)
	}
	var devs []disk.Device
	for i := 0; i < 10; i++ {
		devs = append(devs, newHDD(i))
	}
	arr := core.NewArray(eng, devs)
	disks := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}

	diskCap := devs[0].CapacityBlocks()
	pcPerDisk := diskCap / 100
	inner := raid.NewRAID5(10, 10, diskCap-pcPerDisk, 32)
	archive := raid.NewSpreadLayout(inner, gen.DatasetBlocks())
	craid, err := core.NewCRAID(arr, core.Config{CachePerDisk: pcPerDisk},
		true, disks, 0, archive, disks, pcPerDisk)
	if err != nil {
		panic(err)
	}

	// Replay the first day, expand, replay the second day.
	expandAt := 24 * sim.Hour
	expanded := false
	var upgrade core.ExpandStats
	for {
		rec, err := gen.Next()
		if err == io.EOF {
			break
		}
		if !expanded && rec.Time >= expandAt {
			eng.RunUntil(expandAt)
			before := craid.Stats().Writebacks
			upgrade = craid.Expand([]disk.Device{newHDD(10), newHDD(11), newHDD(12)})
			expanded = true
			fmt.Printf("  t=24h: expanded to %d disks: %d mappings invalidated, %d dirty blocks written back (%d total writebacks so far)\n",
				arr.Devices(), upgrade.Invalidated, upgrade.DirtyWriteback,
				before+upgrade.DirtyWriteback)
		}
		eng.RunUntil(rec.Time)
		craid.Submit(rec, nil)
	}
	eng.Run()

	fmt.Printf("  after day 2: read hit ratio %.1f%%, mean read %.3f ms\n",
		100*craid.Stats().HitRatio(disk.OpRead), craid.ReadLatency().Mean().Milliseconds())
	for i := 10; i < 13; i++ {
		s := arr.Device(i).Stats()
		fmt.Printf("  new disk %d handled %d reads / %d writes on day 2 (archive untouched: it lives on disks 0-9)\n",
			i, s.Reads, s.Writes)
	}
}
