// Quickstart: build a small CRAID-5 array on simulated disks, push I/O
// through it, expand it online, and watch the monitor statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"craid/internal/core"
	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

func main() {
	// One simulation engine drives everything.
	eng := sim.NewEngine()

	// Eight small hard disks.
	var devs []disk.Device
	for i := 0; i < 8; i++ {
		cfg := disk.CheetahConfig(fmt.Sprintf("hdd%d", i))
		cfg.CapacityBlocks = 1 << 18 // 1 GiB each keeps the demo snappy
		devs = append(devs, disk.NewHDD(eng, cfg))
	}
	arr := core.NewArray(eng, devs)
	disks := []int{0, 1, 2, 3, 4, 5, 6, 7}

	// CRAID: a 2048-block cache partition per disk at the front of the
	// disks, and a RAID-5 archive behind it.
	const pcPerDisk = 2048
	archive := raid.NewRAID5(8, 4, 1<<18-pcPerDisk, 32)
	craid, err := core.NewCRAID(arr, core.Config{
		Policy:       "WLRU",
		CachePerDisk: pcPerDisk,
		ParityGroup:  4,
		StripeUnit:   32,
	}, true, disks, 0, archive, disks, pcPerDisk)
	if err != nil {
		panic(err)
	}

	fmt.Printf("volume: %d blocks (%.1f GiB), cache partition: %d blocks\n",
		craid.DataBlocks(), float64(craid.DataBlocks())*disk.BlockSize/(1<<30),
		craid.CacheDataBlocks())

	// A toy workload: a hot region accessed repeatedly plus a cold scan.
	submit := func(op disk.Op, block, count int64) {
		craid.Submit(trace.Record{Time: eng.Now(), Op: op, Block: block, Count: count}, nil)
		eng.Run()
	}
	for round := 0; round < 50; round++ {
		for b := int64(0); b < 60; b++ {
			submit(disk.OpRead, 100_000+b*8, 8) // hot reads
		}
		submit(disk.OpWrite, 100_000+int64(round%60)*8, 8) // hot writes
		submit(disk.OpRead, int64(round)*4096, 8)          // cold scan
	}

	s := craid.Stats()
	fmt.Printf("after %d block reads / %d block writes:\n", s.ReadBlocks, s.WriteBlocks)
	fmt.Printf("  read hit ratio:  %.1f%%\n", 100*s.HitRatio(disk.OpRead))
	fmt.Printf("  write hit ratio: %.1f%%\n", 100*s.HitRatio(disk.OpWrite))
	fmt.Printf("  mean read time:  %.3f ms\n", craid.ReadLatency().Mean().Milliseconds())
	fmt.Printf("  mean write time: %.3f ms\n", craid.WriteLatency().Mean().Milliseconds())
	fmt.Printf("  mapping cache:   %d bytes\n", craid.MappingBytes())

	// Online upgrade: add two disks. Only the cache partition is
	// rebuilt; the archive is untouched.
	fmt.Println("\nexpanding 8 → 10 disks...")
	var newDevs []disk.Device
	for i := 8; i < 10; i++ {
		cfg := disk.CheetahConfig(fmt.Sprintf("hdd%d", i))
		cfg.CapacityBlocks = 1 << 18
		newDevs = append(newDevs, disk.NewHDD(eng, cfg))
	}
	st := craid.Expand(newDevs)
	eng.Run()
	fmt.Printf("  invalidated %d cached blocks, wrote back %d dirty blocks\n",
		st.Invalidated, st.DirtyWriteback)
	fmt.Printf("  cache partition now spans %d disks (%d blocks)\n",
		arr.Devices(), craid.CacheDataBlocks())

	// The hot set re-fills onto all 10 disks as soon as it is touched.
	for round := 0; round < 10; round++ {
		for b := int64(0); b < 60; b++ {
			submit(disk.OpRead, 100_000+b*8, 8)
		}
	}
	for i := 8; i < 10; i++ {
		st := arr.Device(i).Stats()
		fmt.Printf("  new disk %d: %d reads, %d writes after refill\n", i, st.Reads, st.Writes)
	}
}
