// Fileserver: replay a proj-like file-server workload (the paper's
// largest trace: read-dominated, terabyte-scale) against CRAID-5,
// RAID-5 and RAID-5+, comparing response times and hit behaviour.
//
// Run with: go run ./examples/fileserver
package main

import (
	"fmt"

	"craid/internal/experiments"
)

func main() {
	const budgetGB = 1.0 // replayed traffic per simulation
	scale := experiments.ScaleFor("proj", budgetGB)
	fmt.Printf("proj file-server workload at scale %.5f (~%.1f GB replayed)\n\n", scale, budgetGB)

	fmt.Printf("%-10s %12s %12s %10s %10s\n",
		"strategy", "read(ms)", "write(ms)", "hitR", "hitW")
	for _, strat := range []experiments.Strategy{
		experiments.RAID5, experiments.RAID5Plus, experiments.CRAID5, experiments.CRAID5Plus,
	} {
		res, err := experiments.Run(experiments.RunConfig{
			Trace:    "proj",
			Scale:    scale,
			Strategy: strat,
			PCPct:    0.064, // mid-sweep cache size for proj
			Bursty:   true,
		})
		if err != nil {
			panic(err)
		}
		hitR, hitW := "-", "-"
		if res.CRAID != nil {
			hitR = fmt.Sprintf("%.1f%%", 100*res.CRAID.HitRatio(0))
			hitW = fmt.Sprintf("%.1f%%", 100*res.CRAID.HitRatio(1))
		}
		fmt.Printf("%-10s %12.3f %12.3f %10s %10s\n",
			strat, res.ReadMean.Milliseconds(), res.WriteMean.Milliseconds(), hitR, hitW)
	}

	fmt.Println("\nWhat to look for (paper §5.2, Fig. 4f/6g):")
	fmt.Println(" - RAID-5+ no faster than the ideally-restriped RAID-5;")
	fmt.Println(" - CRAID-5 ≈ CRAID-5+: the cache partition absorbs the I/O, so")
	fmt.Println("   the un-restriped archive behind it does not matter;")
	fmt.Println(" - proj is CRAID's hardest trace (the paper's too): the most")
	fmt.Println("   diverse working set, so hit ratios sit well below the other")
	fmt.Println("   workloads and CRAID's advantage shrinks — or inverts at")
	fmt.Println("   aggressive scale-down, where P_C is only ~2% of the dataset.")
	fmt.Println("   Compare examples/webserver for a workload CRAID wins.")
}
