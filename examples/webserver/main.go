// Webserver: replay the webusers workload (a university web server;
// write-dominated, small working set) against CRAID and watch the I/O
// monitor learn the hot set over the week: hourly hit ratio climbing
// as the cache partition warms, then staying high as the working set
// drifts day to day.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"io"
	"strings"

	"craid/internal/core"
	"craid/internal/disk"
	"craid/internal/experiments"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/workload"
)

func main() {
	params, err := workload.Preset("webusers")
	if err != nil {
		panic(err)
	}
	gen := workload.New(params) // full paper scale: webusers is small

	eng := sim.NewEngine()
	hcfg := disk.CheetahConfig("hdd")
	var devs []disk.Device
	for i := 0; i < experiments.TestbedDisks; i++ {
		c := hcfg
		c.Name = fmt.Sprintf("hdd%d", i)
		devs = append(devs, disk.NewHDD(eng, c))
	}
	arr := core.NewArray(eng, devs)
	disks := make([]int, experiments.TestbedDisks)
	for i := range disks {
		disks[i] = i
	}

	const pcPerDisk = 16 * 1024 // 64 MiB per disk
	inner := raid.NewRAID5(experiments.TestbedDisks, experiments.TestbedParityGroup,
		hcfg.CapacityBlocks-pcPerDisk, experiments.TestbedStripeUnit)
	archive := raid.NewSpreadLayout(inner, gen.DatasetBlocks())
	craid, err := core.NewCRAID(arr, core.Config{
		Policy:       "WLRU",
		CachePerDisk: pcPerDisk,
	}, true, disks, 0, archive, disks, pcPerDisk)
	if err != nil {
		panic(err)
	}

	fmt.Println("webusers on CRAID-5: hourly hit ratio as the monitor learns the hot set")
	fmt.Printf("%-6s %-8s %-9s %s\n", "hour", "hits", "accesses", "hit ratio")

	var lastHits, lastAccesses int64
	hour := sim.Hour
	nextReport := hour
	report := func() {
		s := craid.Stats()
		hits := s.ReadHits + s.WriteHits
		accesses := s.ReadBlocks + s.WriteBlocks
		dh, da := hits-lastHits, accesses-lastAccesses
		lastHits, lastAccesses = hits, accesses
		if da == 0 {
			return
		}
		ratio := float64(dh) / float64(da)
		fmt.Printf("%-6d %-8d %-9d %5.1f%% %s\n",
			int(eng.Now()/hour), dh, da, 100*ratio, strings.Repeat("#", int(ratio*40)))
	}

	for {
		rec, err := gen.Next()
		if err == io.EOF {
			break
		}
		for rec.Time >= nextReport {
			eng.RunUntil(nextReport)
			report()
			nextReport += 6 * hour
		}
		eng.RunUntil(rec.Time)
		craid.Submit(rec, nil)
	}
	eng.Run()
	report()

	s := craid.Stats()
	fmt.Printf("\nweek total: %.1f%% hit ratio, %d evictions (%.1f%% dirty), %d bytes of mappings\n",
		100*s.OverallHitRatio(), s.Evictions,
		100*float64(s.DirtyEvictions)/float64(maxI64(s.Evictions, 1)), craid.MappingBytes())
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
