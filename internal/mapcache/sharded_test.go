package mapcache

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestShardedCrossBoundaryRun pins the LookupRun contract across shard
// boundaries: a run contiguous in both Orig and Cache that spans shards
// is reported whole, and one broken exactly at the boundary is not.
func TestShardedCrossBoundaryRun(t *testing.T) {
	tb := NewSharded(4, 100) // shards: [0,100) [100,200) [200,300) [300,∞)
	// A 40-mapping run straddling the 100 boundary, cache-contiguous.
	tb.InsertRun(80, 500, 40, false)

	m, n, ok := tb.LookupRun(80, 1000)
	if !ok || n != 40 || m.Cache != 500 {
		t.Fatalf("straddling run: got (%+v, %d, %v), want cache 500 len 40", m, n, ok)
	}
	// Starting mid-run, still crossing the boundary.
	m, n, ok = tb.LookupRun(95, 1000)
	if !ok || n != 25 || m.Cache != 515 {
		t.Fatalf("mid-run: got (%+v, %d, %v), want cache 515 len 25", m, n, ok)
	}
	// max caps the walk across the boundary.
	_, n, ok = tb.LookupRun(95, 10)
	if !ok || n != 10 {
		t.Fatalf("capped: got n=%d ok=%v, want 10/true", n, ok)
	}

	// A run crossing THREE boundaries.
	tb2 := NewSharded(4, 100)
	tb2.InsertRun(50, 0, 300, false) // [50,350) spans all four shards
	_, n, ok = tb2.LookupRun(50, 1000)
	if !ok || n != 300 {
		t.Fatalf("triple-crossing run: got n=%d ok=%v, want 300/true", n, ok)
	}

	// Cache discontinuity exactly at the shard boundary breaks the run.
	tb3 := NewSharded(4, 100)
	tb3.InsertRun(90, 500, 10, false)  // [90,100) → cache 500..509
	tb3.InsertRun(100, 700, 10, false) // [100,110) → cache 700 (jump)
	_, n, ok = tb3.LookupRun(90, 1000)
	if !ok || n != 10 {
		t.Fatalf("cache jump at boundary: got n=%d ok=%v, want 10/true", n, ok)
	}
}

// TestShardedCrossBoundaryGap pins the gap contract: unmapped stretches
// crossing shard boundaries are summed until the next mapping.
func TestShardedCrossBoundaryGap(t *testing.T) {
	tb := NewSharded(4, 100)
	tb.Insert(Mapping{Orig: 250, Cache: 1})

	// Gap from 50 crosses two boundaries before hitting 250.
	_, n, ok := tb.LookupRun(50, 1000)
	if ok || n != 200 {
		t.Fatalf("gap: got n=%d ok=%v, want 200/false", n, ok)
	}
	// A mapping exactly on a boundary ends the gap there.
	tb.Insert(Mapping{Orig: 200, Cache: 2})
	_, n, ok = tb.LookupRun(50, 1000)
	if ok || n != 150 {
		t.Fatalf("gap to boundary mapping: got n=%d ok=%v, want 150/false", n, ok)
	}
	// Gap past the last mapping runs to max.
	_, n, ok = tb.LookupRun(251, 77)
	if ok || n != 77 {
		t.Fatalf("tail gap: got n=%d ok=%v, want 77/false", n, ok)
	}
}

// TestShardedMatchesSingleShard drives identical random op sequences
// against a single-tree table and sharded tables of several counts,
// requiring bit-identical results from every operation — the property
// that makes monitor ratios independent of the shard count.
func TestShardedMatchesSingleShard(t *testing.T) {
	const addrSpace = 1 << 12
	for _, shards := range []int{2, 3, 7, 16} {
		span := int64(addrSpace / shards)
		rng := rand.New(rand.NewSource(int64(42 + shards)))
		var logA, logB bytes.Buffer
		ref := New()
		ref.SetLog(&logA)
		sh := NewSharded(shards, span)
		sh.SetLog(&logB)

		for step := 0; step < 20000; step++ {
			orig := rng.Int63n(addrSpace)
			n := rng.Int63n(200) + 1
			switch rng.Intn(6) {
			case 0:
				cache := rng.Int63n(addrSpace)
				dirty := rng.Intn(2) == 0
				ref.InsertRun(orig, cache, n, dirty)
				sh.InsertRun(orig, cache, n, dirty)
			case 1:
				ra, rb := ref.Remove(orig), sh.Remove(orig)
				if ra != rb {
					t.Fatalf("shards=%d step %d: Remove(%d) %v vs %v", shards, step, orig, ra, rb)
				}
			case 2:
				ra, rb := ref.RemoveRun(orig, n), sh.RemoveRun(orig, n)
				if ra != rb {
					t.Fatalf("shards=%d step %d: RemoveRun(%d,%d) %d vs %d", shards, step, orig, n, ra, rb)
				}
			case 3:
				dirty := rng.Intn(2) == 0
				ra, rb := ref.SetDirtyRun(orig, n, dirty), sh.SetDirtyRun(orig, n, dirty)
				if ra != rb {
					t.Fatalf("shards=%d step %d: SetDirtyRun %d vs %d", shards, step, ra, rb)
				}
			case 4:
				ma, na, oka := ref.LookupRun(orig, n)
				mb, nb, okb := sh.LookupRun(orig, n)
				if ma != mb || na != nb || oka != okb {
					t.Fatalf("shards=%d step %d: LookupRun(%d,%d) (%+v,%d,%v) vs (%+v,%d,%v)",
						shards, step, orig, n, ma, na, oka, mb, nb, okb)
				}
			case 5:
				ma, oka := ref.Lookup(orig)
				mb, okb := sh.Lookup(orig)
				if ma != mb || oka != okb {
					t.Fatalf("shards=%d step %d: Lookup(%d) mismatch", shards, step, orig)
				}
			}
			if ref.Len() != sh.Len() {
				t.Fatalf("shards=%d step %d: Len %d vs %d", shards, step, ref.Len(), sh.Len())
			}
		}

		// Full-state equivalence: identical ordered walks and dirty sets.
		var wa, wb []Mapping
		ref.Walk(func(m Mapping) bool { wa = append(wa, m); return true })
		sh.Walk(func(m Mapping) bool { wb = append(wb, m); return true })
		if len(wa) != len(wb) {
			t.Fatalf("shards=%d: walk lengths %d vs %d", shards, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("shards=%d: walk[%d] %+v vs %+v", shards, i, wa[i], wb[i])
			}
		}
		// The dirty logs are written in the same order with the same
		// payloads: recovery is shard-count independent byte for byte.
		if !bytes.Equal(logA.Bytes(), logB.Bytes()) {
			t.Fatalf("shards=%d: dirty logs diverge (%d vs %d bytes)",
				shards, logA.Len(), logB.Len())
		}
	}
}

// TestShardedLogRecoversAcrossShardCounts writes a dirty log with one
// shard count and recovers it into tables of other counts: the
// recovered dirty sets must be identical (the log carries no geometry).
func TestShardedLogRecoversAcrossShardCounts(t *testing.T) {
	var log bytes.Buffer
	writer := New()
	writer.SetLog(&log)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		orig := rng.Int63n(2048)
		switch rng.Intn(3) {
		case 0:
			writer.Insert(Mapping{Orig: orig, Cache: rng.Int63n(4096), Dirty: rng.Intn(2) == 0})
		case 1:
			writer.Remove(orig)
		case 2:
			writer.SetDirty(orig, rng.Intn(2) == 0)
		}
	}
	want := writer.DirtyMappings()

	ms, err := Recover(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4, 9} {
		tb := NewSharded(shards, 2048/int64(shards)+1)
		for _, m := range ms {
			tb.Insert(m)
		}
		got := tb.DirtyMappings()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: recovered %d dirty, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: dirty[%d] = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardedFreelistsArePerShard verifies churn in one shard recycles
// its own nodes without touching its neighbours' freelists.
func TestShardedFreelistsArePerShard(t *testing.T) {
	tb := NewSharded(2, 1000)
	tb.InsertRun(0, 0, 10, false)      // shard 0
	tb.InsertRun(1000, 100, 10, false) // shard 1
	tb.RemoveRun(0, 10)                // shard 0's nodes → shard 0's freelist
	if tb.shards[0].free == nil {
		t.Fatal("shard 0 freelist empty after RemoveRun")
	}
	if tb.shards[1].free != nil {
		t.Fatal("shard 1 freelist populated by shard 0 churn")
	}
	// Re-inserting into shard 0 must drain its freelist.
	tb.InsertRun(0, 0, 10, false)
	if tb.shards[0].free != nil {
		t.Fatal("shard 0 freelist not reused on re-insert")
	}
}

// TestShardedZeroAndEdgeCases covers the zero value, clamping of
// out-of-range addresses into the last shard, and Clear.
func TestShardedZeroAndEdgeCases(t *testing.T) {
	var zero Table // zero value: single shard, ready to use
	if _, n, ok := zero.LookupRun(5, 10); ok || n != 10 {
		t.Fatalf("zero table LookupRun: n=%d ok=%v, want 10/false", n, ok)
	}
	zero.Insert(Mapping{Orig: 1, Cache: 2})
	if m, ok := zero.Lookup(1); !ok || m.Cache != 2 {
		t.Fatal("zero table lookup after insert failed")
	}

	tb := NewSharded(3, 10)
	// Addresses beyond shards*span land in the last shard.
	tb.Insert(Mapping{Orig: 1 << 40, Cache: 7})
	if m, ok := tb.Lookup(1 << 40); !ok || m.Cache != 7 {
		t.Fatal("clamped address lost")
	}
	if got := tb.Shards(); got != 3 {
		t.Fatalf("Shards() = %d, want 3", got)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("Clear left mappings")
	}
	if _, ok := tb.Lookup(1 << 40); ok {
		t.Fatal("Clear left a lookup hit")
	}
}
