// Package mapcache implements CRAID's mapping cache (paper §4.2): an
// in-memory balanced search structure translating block addresses in
// the archive partition (P_A) to their cached copies in the cache
// partition (P_C), with a dirty flag per entry.
//
// The paper specifies a tree-based structure with O(log k) lookups and
// quantifies memory as ~0.58% of the cache partition size (4-byte LBAs,
// a dirty bit and an 8-byte pointer per entry, 4 KiB blocks); Bytes()
// reproduces that accounting. Failure resilience comes from a
// persistent log of dirty translations (Log/Recover): after a crash,
// dirty cached copies — the only ones that differ from the original
// data — can be located and recovered, while clean entries are simply
// invalidated.
//
// The index is sharded by contiguous archive-address range: shard i of
// an n-shard table owns [i*span, (i+1)*span) (the last shard is
// unbounded above), each with a private AVL tree and node freelist.
// Sharding changes nothing observable — every operation, including the
// run APIs, behaves exactly as on a single tree (property-tested) — but
// it bounds each tree's height by its shard's population and gives a
// future multi-queue controller disjoint structures to lock or own per
// queue. Run operations that span a shard boundary are stitched: a run
// contiguous in both Orig and Cache across the boundary is reported
// whole, and a gap crossing shards is summed until the next mapping.
package mapcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Mapping is one translation entry.
type Mapping struct {
	Orig  int64 // LBA in the archive partition
	Cache int64 // LBA of the copy in the cache partition
	Dirty bool  // cached copy differs from the original
}

// Index is the mapping-cache contract the CRAID monitor programs
// against: point and run-granularity translation updates, ordered
// iteration, and the §4.2 dirty-log hooks. Table is the tree-backed
// implementation; alternatives (ART, B+-tree, a lock-per-shard
// concurrent table) only need to satisfy this interface.
type Index interface {
	// Len returns the number of mappings; Bytes their memory footprint
	// per the paper's accounting.
	Len() int
	Bytes() int64

	// Lookup returns the mapping for orig. LookupRun additionally
	// reports, in one descent, the contiguous hit run or miss gap
	// starting at orig (see Table.LookupRun for the exact contract).
	Lookup(orig int64) (Mapping, bool)
	LookupRun(orig, max int64) (Mapping, int64, bool)

	// IsDirty reports whether orig is mapped with its dirty flag set,
	// in O(1): the eviction path probes dirtiness for a window of
	// victim candidates per eviction, and a tree descent per probe
	// dominated whole replays before this existed.
	IsDirty(orig int64) bool

	// Insert adds or replaces one mapping; InsertRun inserts the n
	// consecutive translations orig+i → cache+i.
	Insert(m Mapping)
	InsertRun(orig, cache, n int64, dirty bool)

	// Remove deletes the mapping for orig; RemoveRun deletes every
	// mapping in [orig, orig+n), returning how many existed.
	Remove(orig int64) bool
	RemoveRun(orig, n int64) int64

	// SetDirty and SetDirtyRun update dirty flags, logging transitions.
	SetDirty(orig int64, dirty bool) bool
	SetDirtyRun(orig, n int64, dirty bool) int64

	// Walk visits all mappings in ascending Orig order until fn
	// returns false. DirtyMappings returns the dirty subset, ascending.
	Walk(fn func(Mapping) bool)
	DirtyMappings() []Mapping

	// Clear removes all mappings.
	Clear()

	// SetLog directs persistent logging of dirty-state transitions to
	// w (nil disables). The log format is shard-agnostic: a log written
	// by any Index recovers into any other via Recover.
	SetLog(w io.Writer)

	// Shards, ShardOf and ShardBound expose the address-range sharding
	// geometry so a concurrent planner can route lookups: ShardOf(orig)
	// is the shard owning orig, ShardBound(i) the first address beyond
	// shard i's range (math.MaxInt64 for the last shard). A single-tree
	// index reports one shard covering everything.
	Shards() int
	ShardOf(orig int64) int
	ShardBound(i int) int64

	// ShardVersion returns a counter bumped on every *structural*
	// mutation of shard i — Insert, Remove, RemoveRun, Clear: anything
	// that can change which addresses are mapped or where they point.
	// SetDirty/SetDirtyRun are exempt: they flip flags on existing
	// entries without moving a single Orig→Cache translation, so every
	// LookupRun classification (run boundaries and cache addresses)
	// made at version v remains exact while the version stays v. A
	// planner snapshots versions with its read-only lookups and
	// re-validates before trusting a plan.
	ShardVersion(i int) uint64
}

// Table is the sharded mapping cache. The zero value is an empty
// single-shard table ready to use. Mutations are single-threaded
// (CRAID's apply stage is event-driven and sequential, like a real
// controller's interrupt context), but the lookup path — Lookup,
// LookupRun, Len, ShardOf/ShardBound/ShardVersion — is pure and safe
// for any number of concurrent readers *while no mutation runs*: the
// multi-queue controller's plan phase partitions a batch by address
// range and classifies shard groups in parallel between apply steps,
// which is exactly that window.
type Table struct {
	shards []shard
	span   int64     // addresses per shard; 0 with a single shard
	size   int       // total mappings across shards
	log    io.Writer // optional persistent dirty log

	// logRec is appendLog's encode scratch. A local array would escape
	// to the heap at the io.Writer call — one allocation per logged
	// transition on the apply path; Write contracts not to retain the
	// slice, so reusing one buffer is safe.
	logRec [recordSize]byte

	// dirty is the O(1) membership set behind IsDirty: the Orig of
	// every mapping whose Dirty flag is set. Maintained at the same
	// choke points that write the persistent dirty log. Mutated only on
	// the single-threaded apply path; IsDirty runs there too (the
	// eviction victim scan), never concurrently with a mutation.
	dirty dirtySet
}

var _ Index = (*Table)(nil)

// New returns an empty single-shard table.
func New() *Table { return &Table{} }

// NewSharded returns an empty table of n shards, shard i owning
// addresses [i*span, (i+1)*span) and the last shard unbounded above.
// span must be positive when n > 1; n < 1 is clamped to 1.
func NewSharded(n int, span int64) *Table {
	if n < 1 {
		n = 1
	}
	if n > 1 && span < 1 {
		panic("mapcache: NewSharded needs a positive span for n > 1 shards")
	}
	return &Table{shards: make([]shard, n), span: span}
}

// Shards returns the shard count.
func (t *Table) Shards() int {
	if len(t.shards) == 0 {
		return 1
	}
	return len(t.shards)
}

// init materializes the single shard of a zero-value Table.
func (t *Table) init() {
	if len(t.shards) == 0 {
		t.shards = make([]shard, 1)
	}
}

// idx returns the shard index owning orig.
func (t *Table) idx(orig int64) int {
	if len(t.shards) == 1 || orig < t.span {
		return 0
	}
	i := int(orig / t.span)
	if i >= len(t.shards) {
		i = len(t.shards) - 1
	}
	return i
}

// bound returns the first address beyond shard i's range.
func (t *Table) bound(i int) int64 {
	if i >= len(t.shards)-1 {
		return math.MaxInt64
	}
	return int64(i+1) * t.span
}

// ShardOf returns the shard index owning orig.
func (t *Table) ShardOf(orig int64) int {
	if len(t.shards) == 0 {
		return 0
	}
	return t.idx(orig)
}

// ShardBound returns the first address beyond shard i's range
// (math.MaxInt64 for the last shard).
func (t *Table) ShardBound(i int) int64 { return t.bound(i) }

// ShardVersion returns shard i's structural-mutation counter (see
// Index.ShardVersion). A zero-value Table reports version 0 for its
// not-yet-materialized single shard.
func (t *Table) ShardVersion(i int) uint64 {
	if i < 0 || i >= len(t.shards) {
		return 0
	}
	return t.shards[i].ver
}

// capRun limits max to not cross the boundary at bound from orig.
func capRun(orig, max, bound int64) int64 {
	if bound != math.MaxInt64 && bound-orig < max {
		return bound - orig
	}
	return max
}

// SetLog directs persistent logging of dirty-state transitions to w.
// Passing nil disables logging.
func (t *Table) SetLog(w io.Writer) { t.log = w }

// Len returns the number of mappings.
func (t *Table) Len() int { return t.size }

// Bytes returns the worst-case memory footprint per the paper's
// accounting: 4 bytes per LBA (two LBAs), 1 dirty bit, and 8 bytes of
// structure pointer per entry.
func (t *Table) Bytes() int64 {
	const perEntryBits = 2*32 + 1 + 64
	return (int64(t.size)*perEntryBits + 7) / 8
}

// Lookup returns the mapping for orig.
func (t *Table) Lookup(orig int64) (Mapping, bool) {
	if len(t.shards) == 0 {
		return Mapping{}, false
	}
	return t.shards[t.idx(orig)].lookup(orig)
}

// IsDirty reports whether orig is mapped with its dirty flag set, in
// O(1) via the dirty-membership set (equivalent to Lookup + Dirty,
// property-pinned by the table tests).
func (t *Table) IsDirty(orig int64) bool { return t.dirty.has(orig) }

// dirtyAdd records orig as dirty in the membership set.
func (t *Table) dirtyAdd(orig int64) { t.dirty.add(orig) }

// dirtyDel removes orig from the membership set.
func (t *Table) dirtyDel(orig int64) { t.dirty.del(orig) }

// Insert adds or replaces the mapping for m.Orig.
func (t *Table) Insert(m Mapping) {
	t.init()
	s := &t.shards[t.idx(m.Orig)]
	s.existed = false
	s.ver++
	before := s.size
	s.root = s.insert(s.root, m)
	t.size += s.size - before
	switch {
	case m.Dirty:
		t.dirtyAdd(m.Orig)
		t.appendLog(logInsert, m)
	case s.existed && s.replaced.Dirty:
		// A clean copy replaced a dirty one: the dirty state is gone.
		t.dirtyDel(m.Orig)
		t.appendLog(logClean, Mapping{Orig: m.Orig})
	}
}

// InsertRun adds or replaces the n mappings orig+i → cache+i for
// 0 <= i < n, all with the same dirty flag — equivalent to a loop of
// Insert over consecutive addresses.
func (t *Table) InsertRun(orig, cache, n int64, dirty bool) {
	for i := int64(0); i < n; i++ {
		t.Insert(Mapping{Orig: orig + i, Cache: cache + i, Dirty: dirty})
	}
}

// Remove deletes the mapping for orig, reporting whether it existed.
func (t *Table) Remove(orig int64) bool {
	t.init()
	s := &t.shards[t.idx(orig)]
	var removed bool
	s.root, removed = s.remove(s.root, orig)
	if removed {
		s.ver++
		s.size--
		t.size--
		t.dirtyDel(orig)
		t.appendLog(logRemove, Mapping{Orig: orig})
	}
	return removed
}

// RemoveRun deletes every mapping in [orig, orig+n), returning how many
// existed — equivalent to a loop of Remove over the range, but existing
// keys are discovered by successor walking so sparse ranges don't pay a
// descent per absent address.
func (t *Table) RemoveRun(orig, n int64) int64 {
	if n <= 0 {
		return 0
	}
	t.init()
	end := orig + n
	var removed int64
	for orig < end {
		i := t.idx(orig)
		segEnd := end
		if b := t.bound(i); b < segEnd {
			segEnd = b
		}
		removed += t.shards[i].removeRun(t, orig, segEnd)
		orig = segEnd
	}
	t.size -= int(removed)
	return removed
}

// SetDirty updates the dirty flag for orig, reporting whether the entry
// exists. Transitions are logged so dirty blocks are recoverable.
func (t *Table) SetDirty(orig int64, dirty bool) bool {
	if len(t.shards) == 0 {
		return false
	}
	return t.shards[t.idx(orig)].setDirty(t, orig, dirty)
}

// SetDirtyRun updates the dirty flag of every existing mapping in
// [orig, orig+n) — equivalent to a loop of SetDirty — using one descent
// per touched shard plus successor walking. It returns how many
// mappings were found. Transitions are logged so dirty blocks stay
// recoverable.
func (t *Table) SetDirtyRun(orig, n int64, dirty bool) int64 {
	if n <= 0 {
		return 0
	}
	t.init()
	end := orig + n
	var found int64
	for orig < end {
		i := t.idx(orig)
		segEnd := end
		if b := t.bound(i); b < segEnd {
			segEnd = b
		}
		found += t.shards[i].setDirtyRun(t, orig, segEnd, dirty)
		orig = segEnd
	}
	return found
}

// LookupRun inspects the run starting at orig in a single descent per
// touched shard (one descent total unless the run or gap crosses a
// shard boundary, which the capped segment loop stitches seamlessly).
//
// If orig is mapped it returns its mapping, ok=true, and n = the length
// (capped at max) of the contiguous run of mappings starting at orig
// whose Orig AND Cache addresses both advance by one per entry — the
// extent a redirector can serve with one cache-partition I/O.
//
// If orig is unmapped it returns ok=false and n = the number of
// consecutive unmapped addresses starting at orig (capped at max), i.e.
// the gap to the next mapping.
//
// Within a shard the run is discovered by walking in-order successors
// from the initial descent's search path, so a whole extent costs one
// O(log k) descent plus O(n) amortized pointer chasing instead of n
// descents.
func (t *Table) LookupRun(orig, max int64) (m Mapping, n int64, ok bool) {
	if max <= 0 {
		return Mapping{}, 0, false
	}
	if len(t.shards) == 0 {
		return Mapping{}, max, false
	}
	i := t.idx(orig)
	bound := t.bound(i)
	m, n, ok = t.shards[i].lookupRun(orig, capRun(orig, max, bound))
	if ok {
		// The run filled its shard segment exactly: it may continue in
		// the next shard — contiguous iff the next shard's first
		// address is mapped with the expected cache successor.
		for n < max && orig+n == bound {
			i++
			b2 := t.bound(i)
			m2, n2, ok2 := t.shards[i].lookupRun(bound, capRun(bound, max-n, b2))
			if !ok2 || m2.Cache != m.Cache+n {
				break
			}
			n += n2
			bound = b2
		}
		return m, n, true
	}
	// The gap reached the shard boundary: keep summing gaps until a
	// mapping bounds it or max is exhausted.
	for n < max && orig+n == bound {
		i++
		b2 := t.bound(i)
		_, g, ok2 := t.shards[i].lookupRun(bound, capRun(bound, max-n, b2))
		if ok2 {
			break
		}
		n += g
		bound = b2
	}
	return Mapping{}, n, false
}

// Walk visits all mappings in ascending Orig order (shards own
// contiguous address ranges, so shard order is address order).
// Returning false from fn stops the walk.
func (t *Table) Walk(fn func(Mapping) bool) {
	for i := range t.shards {
		if !t.shards[i].walk(fn) {
			return
		}
	}
}

// DirtyMappings returns all dirty entries in ascending Orig order.
func (t *Table) DirtyMappings() []Mapping {
	var out []Mapping
	t.Walk(func(m Mapping) bool {
		if m.Dirty {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Clear removes all mappings.
func (t *Table) Clear() {
	for i := range t.shards {
		t.shards[i].root = nil
		t.shards[i].size = 0
		t.shards[i].ver++
	}
	t.size = 0
	t.dirty.clear()
}

// --- persistent dirty log ---

// Log record kinds.
const (
	logInsert byte = 1 // mapping became dirty (payload: orig, cache)
	logClean  byte = 2 // mapping written back (payload: orig)
	logRemove byte = 3 // mapping removed (payload: orig)
)

const recordSize = 1 + 8 + 8

func (t *Table) appendLog(kind byte, m Mapping) {
	if t.log == nil {
		return
	}
	rec := &t.logRec
	rec[0] = kind
	binary.LittleEndian.PutUint64(rec[1:9], uint64(m.Orig))
	binary.LittleEndian.PutUint64(rec[9:17], uint64(m.Cache))
	// The log is best-effort durability, as in a controller's NVRAM
	// journal; a short write surfaces on Recover, not here.
	_, _ = t.log.Write(rec[:])
}

// Recover replays a dirty log and returns the mappings that were dirty
// when the log ended — the blocks whose cached copies must be restored
// after a crash (paper §4.2: clean blocks are invalidated, dirty ones
// recovered from their logged translations). The log carries no shard
// geometry: a log written by a single-shard table recovers into a
// sharded one (and vice versa), with the receiving Index rebuilding its
// own structure as the mappings are re-inserted.
func Recover(r io.Reader) ([]Mapping, error) {
	br := bufio.NewReader(r)
	dirty := make(map[int64]int64)
	var rec [recordSize]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn final record: everything before it is still valid.
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mapcache: reading log: %w", err)
		}
		orig := int64(binary.LittleEndian.Uint64(rec[1:9]))
		cache := int64(binary.LittleEndian.Uint64(rec[9:17]))
		switch rec[0] {
		case logInsert:
			dirty[orig] = cache
		case logClean, logRemove:
			delete(dirty, orig)
		default:
			return nil, errors.New("mapcache: corrupt log record")
		}
	}
	out := make([]Mapping, 0, len(dirty))
	for orig, cache := range dirty {
		out = append(out, Mapping{Orig: orig, Cache: cache, Dirty: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Orig < out[j].Orig })
	return out, nil
}
