// Package mapcache implements CRAID's mapping cache (paper §4.2): an
// in-memory balanced search tree translating block addresses in the
// archive partition (P_A) to their cached copies in the cache partition
// (P_C), with a dirty flag per entry.
//
// The paper specifies a tree-based structure with O(log k) lookups and
// quantifies memory as ~0.58% of the cache partition size (4-byte LBAs,
// a dirty bit and an 8-byte pointer per entry, 4 KiB blocks); Bytes()
// reproduces that accounting. Failure resilience comes from a
// persistent log of dirty translations (Log/Recover): after a crash,
// dirty cached copies — the only ones that differ from the original
// data — can be located and recovered, while clean entries are simply
// invalidated.
package mapcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Mapping is one translation entry.
type Mapping struct {
	Orig  int64 // LBA in the archive partition
	Cache int64 // LBA of the copy in the cache partition
	Dirty bool  // cached copy differs from the original
}

// node is an AVL tree node keyed by Orig.
type node struct {
	m           Mapping
	left, right *node
	height      int8
}

// Table is the mapping cache. The zero value is an empty table ready to
// use. Not safe for concurrent use (CRAID's controller is event-driven
// and single-threaded, like a real controller's interrupt context).
type Table struct {
	root *node
	size int
	log  io.Writer // optional persistent dirty log

	// freelist of removed nodes, chained through right: the monitor
	// continuously evicts and re-inserts mappings, so steady-state
	// churn allocates nothing.
	free *node

	// scratch for the last insert descent (replacement detection
	// without a second Lookup descent when logging is enabled).
	replaced Mapping
	existed  bool
}

// New returns an empty table.
func New() *Table { return &Table{} }

// SetLog directs persistent logging of dirty-state transitions to w.
// Passing nil disables logging.
func (t *Table) SetLog(w io.Writer) { t.log = w }

// Len returns the number of mappings.
func (t *Table) Len() int { return t.size }

// Bytes returns the worst-case memory footprint per the paper's
// accounting: 4 bytes per LBA (two LBAs), 1 dirty bit, and 8 bytes of
// structure pointer per entry.
func (t *Table) Bytes() int64 {
	const perEntryBits = 2*32 + 1 + 64
	return (int64(t.size)*perEntryBits + 7) / 8
}

// Lookup returns the mapping for orig.
func (t *Table) Lookup(orig int64) (Mapping, bool) {
	n := t.root
	for n != nil {
		switch {
		case orig < n.m.Orig:
			n = n.left
		case orig > n.m.Orig:
			n = n.right
		default:
			return n.m, true
		}
	}
	return Mapping{}, false
}

// Insert adds or replaces the mapping for m.Orig.
func (t *Table) Insert(m Mapping) {
	t.existed = false
	t.root = t.insert(t.root, m)
	switch {
	case m.Dirty:
		t.appendLog(logInsert, m)
	case t.existed && t.replaced.Dirty:
		// A clean copy replaced a dirty one: the dirty state is gone.
		t.appendLog(logClean, Mapping{Orig: m.Orig})
	}
}

// InsertRun adds or replaces the n mappings orig+i → cache+i for
// 0 <= i < n, all with the same dirty flag — equivalent to a loop of
// Insert over consecutive addresses.
func (t *Table) InsertRun(orig, cache, n int64, dirty bool) {
	for i := int64(0); i < n; i++ {
		t.Insert(Mapping{Orig: orig + i, Cache: cache + i, Dirty: dirty})
	}
}

// Remove deletes the mapping for orig, reporting whether it existed.
func (t *Table) Remove(orig int64) bool {
	var removed bool
	t.root, removed = t.remove(t.root, orig)
	if removed {
		t.size--
		t.appendLog(logRemove, Mapping{Orig: orig})
	}
	return removed
}

// SetDirty updates the dirty flag for orig, reporting whether the entry
// exists. Transitions are logged so dirty blocks are recoverable.
func (t *Table) SetDirty(orig int64, dirty bool) bool {
	n := t.root
	for n != nil {
		switch {
		case orig < n.m.Orig:
			n = n.left
		case orig > n.m.Orig:
			n = n.right
		default:
			if n.m.Dirty != dirty {
				n.m.Dirty = dirty
				if dirty {
					t.appendLog(logInsert, n.m)
				} else {
					t.appendLog(logClean, Mapping{Orig: orig})
				}
			}
			return true
		}
	}
	return false
}

// LookupRun inspects the run starting at orig in a single descent.
//
// If orig is mapped it returns its mapping, ok=true, and n = the length
// (capped at max) of the contiguous run of mappings starting at orig
// whose Orig AND Cache addresses both advance by one per entry — the
// extent a redirector can serve with one cache-partition I/O.
//
// If orig is unmapped it returns ok=false and n = the number of
// consecutive unmapped addresses starting at orig (capped at max), i.e.
// the gap to the next mapping.
//
// The run is discovered by walking in-order successors from the initial
// descent's search path, so a whole extent costs one O(log k) descent
// plus O(n) amortized pointer chasing instead of n descents.
func (t *Table) LookupRun(orig, max int64) (m Mapping, n int64, ok bool) {
	if max <= 0 {
		return Mapping{}, 0, false
	}
	// Descend to orig, stacking the pending in-order successors (the
	// nodes where the search went left).
	var buf [48]*node // fits the AVL height of ~2^33 entries
	stack := buf[:0]
	cur := t.root
	for cur != nil {
		switch {
		case orig < cur.m.Orig:
			stack = append(stack, cur)
			cur = cur.left
		case orig > cur.m.Orig:
			cur = cur.right
		default:
			goto found
		}
	}
	// orig is unmapped; the successor (if any) bounds the gap.
	if len(stack) == 0 {
		return Mapping{}, max, false
	}
	if gap := stack[len(stack)-1].m.Orig - orig; gap < max {
		return Mapping{}, gap, false
	}
	return Mapping{}, max, false

found:
	m = cur.m
	n = 1
	prev := cur.m
	for n < max {
		// Advance to the in-order successor: leftmost of the right
		// subtree, else the nearest stacked ancestor.
		next := cur.right
		for next != nil {
			stack = append(stack, next)
			next = next.left
		}
		if len(stack) == 0 {
			break
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.m.Orig != prev.Orig+1 || cur.m.Cache != prev.Cache+1 {
			break
		}
		prev = cur.m
		n++
	}
	return m, n, true
}

// SetDirtyRun updates the dirty flag of every existing mapping in
// [orig, orig+n) — equivalent to a loop of SetDirty — using one descent
// plus successor walking. It returns how many mappings were found.
// Transitions are logged so dirty blocks stay recoverable.
func (t *Table) SetDirtyRun(orig, n int64, dirty bool) int64 {
	if n <= 0 {
		return 0
	}
	end := orig + n
	var buf [48]*node
	stack := buf[:0]
	cur := t.root
	for cur != nil {
		switch {
		case orig < cur.m.Orig:
			stack = append(stack, cur)
			cur = cur.left
		case orig > cur.m.Orig:
			cur = cur.right
		default:
			stack = append(stack, cur)
			cur = nil
		}
	}
	var found int64
	for len(stack) > 0 {
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.m.Orig >= end {
			break
		}
		found++
		if cur.m.Dirty != dirty {
			cur.m.Dirty = dirty
			if dirty {
				t.appendLog(logInsert, cur.m)
			} else {
				t.appendLog(logClean, Mapping{Orig: cur.m.Orig})
			}
		}
		for next := cur.right; next != nil; next = next.left {
			stack = append(stack, next)
		}
	}
	return found
}

// RemoveRun deletes every mapping in [orig, orig+n), returning how many
// existed — equivalent to a loop of Remove over the range, but existing
// keys are discovered by successor walking so sparse ranges don't pay a
// descent per absent address.
func (t *Table) RemoveRun(orig, n int64) int64 {
	var removed int64
	end := orig + n
	for orig < end {
		// Collect the next batch of present keys (removal rebalances
		// the tree, invalidating any in-flight iterator).
		var keys [64]int64
		got := 0
		var buf [48]*node
		stack := buf[:0]
		cur := t.root
		for cur != nil {
			switch {
			case orig < cur.m.Orig:
				stack = append(stack, cur)
				cur = cur.left
			case orig > cur.m.Orig:
				cur = cur.right
			default:
				stack = append(stack, cur)
				cur = nil
			}
		}
		for len(stack) > 0 && got < len(keys) {
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur.m.Orig >= end {
				break
			}
			keys[got] = cur.m.Orig
			got++
			for next := cur.right; next != nil; next = next.left {
				stack = append(stack, next)
			}
		}
		if got == 0 {
			break
		}
		for _, k := range keys[:got] {
			if t.Remove(k) {
				removed++
			}
		}
		orig = keys[got-1] + 1
	}
	return removed
}

// Walk visits all mappings in ascending Orig order. Returning false
// from fn stops the walk.
func (t *Table) Walk(fn func(Mapping) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.m) && walk(n.right)
	}
	walk(t.root)
}

// DirtyMappings returns all dirty entries in ascending Orig order.
func (t *Table) DirtyMappings() []Mapping {
	var out []Mapping
	t.Walk(func(m Mapping) bool {
		if m.Dirty {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Clear removes all mappings.
func (t *Table) Clear() {
	t.root = nil
	t.size = 0
}

// --- AVL machinery ---

func height(n *node) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *node) *node {
	n.height = 1 + max8(height(n.left), height(n.right))
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max8(height(n.left), height(n.right))
	l.height = 1 + max8(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max8(height(n.left), height(n.right))
	r.height = 1 + max8(height(r.left), height(r.right))
	return r
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

// newNode takes a node from the freelist, or allocates.
func (t *Table) newNode(m Mapping) *node {
	if f := t.free; f != nil {
		t.free = f.right
		f.m, f.left, f.right, f.height = m, nil, nil, 1
		return f
	}
	return &node{m: m, height: 1}
}

// freeNode returns a detached node to the freelist.
func (t *Table) freeNode(n *node) {
	n.left, n.right = nil, t.free
	t.free = n
}

func (t *Table) insert(n *node, m Mapping) *node {
	if n == nil {
		t.size++
		return t.newNode(m)
	}
	switch {
	case m.Orig < n.m.Orig:
		n.left = t.insert(n.left, m)
	case m.Orig > n.m.Orig:
		n.right = t.insert(n.right, m)
	default:
		t.replaced, t.existed = n.m, true
		n.m = m // replace in place
		return n
	}
	return fix(n)
}

func (t *Table) remove(n *node, orig int64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case orig < n.m.Orig:
		n.left, removed = t.remove(n.left, orig)
	case orig > n.m.Orig:
		n.right, removed = t.remove(n.right, orig)
	default:
		removed = true
		if n.left == nil {
			r := n.right
			t.freeNode(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.freeNode(n)
			return l, true
		}
		// Replace with the in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.m = succ.m
		n.right, _ = t.remove(n.right, succ.m.Orig)
	}
	return fix(n), removed
}

// --- persistent dirty log ---

// Log record kinds.
const (
	logInsert byte = 1 // mapping became dirty (payload: orig, cache)
	logClean  byte = 2 // mapping written back (payload: orig)
	logRemove byte = 3 // mapping removed (payload: orig)
)

const recordSize = 1 + 8 + 8

func (t *Table) appendLog(kind byte, m Mapping) {
	if t.log == nil {
		return
	}
	var rec [recordSize]byte
	rec[0] = kind
	binary.LittleEndian.PutUint64(rec[1:9], uint64(m.Orig))
	binary.LittleEndian.PutUint64(rec[9:17], uint64(m.Cache))
	// The log is best-effort durability, as in a controller's NVRAM
	// journal; a short write surfaces on Recover, not here.
	_, _ = t.log.Write(rec[:])
}

// Recover replays a dirty log and returns the mappings that were dirty
// when the log ended — the blocks whose cached copies must be restored
// after a crash (paper §4.2: clean blocks are invalidated, dirty ones
// recovered from their logged translations).
func Recover(r io.Reader) ([]Mapping, error) {
	br := bufio.NewReader(r)
	dirty := make(map[int64]int64)
	var rec [recordSize]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Torn final record: everything before it is still valid.
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mapcache: reading log: %w", err)
		}
		orig := int64(binary.LittleEndian.Uint64(rec[1:9]))
		cache := int64(binary.LittleEndian.Uint64(rec[9:17]))
		switch rec[0] {
		case logInsert:
			dirty[orig] = cache
		case logClean, logRemove:
			delete(dirty, orig)
		default:
			return nil, errors.New("mapcache: corrupt log record")
		}
	}
	out := make([]Mapping, 0, len(dirty))
	for orig, cache := range dirty {
		out = append(out, Mapping{Orig: orig, Cache: cache, Dirty: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Orig < out[j].Orig })
	return out, nil
}
