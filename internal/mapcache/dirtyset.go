package mapcache

// dirtySet is the growable open-addressing hash set behind
// Table.IsDirty. The eviction victim scan probes it for a whole window
// of candidates per eviction — millions of probes per replay — so the
// probe path is built like cache's keyIndex: Fibonacci multiplicative
// hashing, linear probing at <= 0.5 load, backward-shift deletion (no
// tombstones, so probe chains never rot under write-back churn). A Go
// map here was measurably the single hottest function of a replay.
//
// Cells hold the archive address biased by +1 so 0 means empty. The
// bias collides only for orig == -1 (not a real LBA, but property
// tests exercise the full int64 domain), which gets a dedicated flag.
type dirtySet struct {
	cells  []uint64
	mask   uint64
	shift  uint8
	n      int
	negOne bool // membership of orig == -1, whose biased key would be 0
}

// has reports membership; the zero-value set answers false.
func (d *dirtySet) has(orig int64) bool {
	if orig == -1 {
		return d.negOne
	}
	if d.n == 0 {
		return false
	}
	k := uint64(orig) + 1
	i := (k * 0x9E3779B97F4A7C15) >> d.shift
	for {
		c := d.cells[i]
		if c == 0 {
			return false
		}
		if c == k {
			return true
		}
		i = (i + 1) & d.mask
	}
}

// add inserts orig (idempotent).
func (d *dirtySet) add(orig int64) {
	if orig == -1 {
		d.negOne = true
		return
	}
	if 2*(d.n+1) > len(d.cells) {
		d.grow()
	}
	k := uint64(orig) + 1
	i := (k * 0x9E3779B97F4A7C15) >> d.shift
	for {
		c := d.cells[i]
		if c == k {
			return
		}
		if c == 0 {
			d.cells[i] = k
			d.n++
			return
		}
		i = (i + 1) & d.mask
	}
}

// del removes orig if present, backward-shifting the tail of its probe
// chain.
func (d *dirtySet) del(orig int64) {
	if orig == -1 {
		d.negOne = false
		return
	}
	if d.n == 0 {
		return
	}
	k := uint64(orig) + 1
	i := (k * 0x9E3779B97F4A7C15) >> d.shift
	for {
		c := d.cells[i]
		if c == 0 {
			return // absent
		}
		if c == k {
			break
		}
		i = (i + 1) & d.mask
	}
	j := i
	for {
		j = (j + 1) & d.mask
		c := d.cells[j]
		if c == 0 {
			break
		}
		h := (c * 0x9E3779B97F4A7C15) >> d.shift
		if (j-h)&d.mask >= (j-i)&d.mask {
			d.cells[i] = c
			i = j
		}
	}
	d.cells[i] = 0
	d.n--
}

// clear empties the set, keeping the backing array.
func (d *dirtySet) clear() {
	d.negOne = false
	if d.n == 0 {
		return
	}
	for i := range d.cells {
		d.cells[i] = 0
	}
	d.n = 0
}

// grow doubles the table (or materializes the first one) and rehashes.
func (d *dirtySet) grow() {
	size, bits := 256, 8
	for size <= len(d.cells) {
		size *= 2
		bits++
	}
	old := d.cells
	d.cells = make([]uint64, size)
	d.mask = uint64(size - 1)
	d.shift = uint8(64 - bits)
	for _, c := range old {
		if c == 0 {
			continue
		}
		i := (c * 0x9E3779B97F4A7C15) >> d.shift
		for d.cells[i] != 0 {
			i = (i + 1) & d.mask
		}
		d.cells[i] = c
	}
}
