package mapcache

// shard is one AVL tree over a contiguous range of archive addresses,
// with a private node freelist so steady-state churn in one shard never
// contends with (or allocates on behalf of) another. All methods assume
// the caller already routed the address range to this shard; run
// operations are capped at the shard's range boundary by the Table.
type shard struct {
	root *node
	size int

	// ver counts structural mutations (insert/remove/clear) of this
	// shard — see Index.ShardVersion for the exact contract. Written
	// only by the (single-threaded) mutating path; planners read it
	// between mutations, never concurrently with one.
	ver uint64

	// freelist of removed nodes, chained through right: the monitor
	// continuously evicts and re-inserts mappings, so steady-state
	// churn allocates nothing.
	free *node

	// scratch for the last insert descent (replacement detection
	// without a second lookup descent when logging is enabled).
	replaced Mapping
	existed  bool
}

// node is an AVL tree node keyed by Orig.
type node struct {
	m           Mapping
	left, right *node
	height      int8
}

func (s *shard) lookup(orig int64) (Mapping, bool) {
	n := s.root
	for n != nil {
		switch {
		case orig < n.m.Orig:
			n = n.left
		case orig > n.m.Orig:
			n = n.right
		default:
			return n.m, true
		}
	}
	return Mapping{}, false
}

// lookupRun is Table.LookupRun restricted to this shard: the Table caps
// max at the shard boundary and stitches runs/gaps across shards.
func (s *shard) lookupRun(orig, max int64) (m Mapping, n int64, ok bool) {
	if max <= 0 {
		return Mapping{}, 0, false
	}
	// Descend to orig, stacking the pending in-order successors (the
	// nodes where the search went left).
	var buf [48]*node // fits the AVL height of ~2^33 entries
	stack := buf[:0]
	cur := s.root
	for cur != nil {
		switch {
		case orig < cur.m.Orig:
			stack = append(stack, cur)
			cur = cur.left
		case orig > cur.m.Orig:
			cur = cur.right
		default:
			goto found
		}
	}
	// orig is unmapped; the successor (if any) bounds the gap.
	if len(stack) == 0 {
		return Mapping{}, max, false
	}
	if gap := stack[len(stack)-1].m.Orig - orig; gap < max {
		return Mapping{}, gap, false
	}
	return Mapping{}, max, false

found:
	m = cur.m
	n = 1
	prev := cur.m
	for n < max {
		// Advance to the in-order successor: leftmost of the right
		// subtree, else the nearest stacked ancestor.
		next := cur.right
		for next != nil {
			stack = append(stack, next)
			next = next.left
		}
		if len(stack) == 0 {
			break
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.m.Orig != prev.Orig+1 || cur.m.Cache != prev.Cache+1 {
			break
		}
		prev = cur.m
		n++
	}
	return m, n, true
}

// setDirty updates the dirty flag for orig, logging transitions via t.
func (s *shard) setDirty(t *Table, orig int64, dirty bool) bool {
	n := s.root
	for n != nil {
		switch {
		case orig < n.m.Orig:
			n = n.left
		case orig > n.m.Orig:
			n = n.right
		default:
			if n.m.Dirty != dirty {
				n.m.Dirty = dirty
				if dirty {
					t.dirtyAdd(orig)
					t.appendLog(logInsert, n.m)
				} else {
					t.dirtyDel(orig)
					t.appendLog(logClean, Mapping{Orig: orig})
				}
			}
			return true
		}
	}
	return false
}

// setDirtyRun updates the dirty flag of every existing mapping in
// [orig, end) — the caller caps end at the shard boundary — using one
// descent plus successor walking. It returns how many mappings were
// found. Transitions are logged so dirty blocks stay recoverable.
func (s *shard) setDirtyRun(t *Table, orig, end int64, dirty bool) int64 {
	var buf [48]*node
	stack := buf[:0]
	cur := s.root
	for cur != nil {
		switch {
		case orig < cur.m.Orig:
			stack = append(stack, cur)
			cur = cur.left
		case orig > cur.m.Orig:
			cur = cur.right
		default:
			stack = append(stack, cur)
			cur = nil
		}
	}
	var found int64
	for len(stack) > 0 {
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.m.Orig >= end {
			break
		}
		found++
		if cur.m.Dirty != dirty {
			cur.m.Dirty = dirty
			if dirty {
				t.dirtyAdd(cur.m.Orig)
				t.appendLog(logInsert, cur.m)
			} else {
				t.dirtyDel(cur.m.Orig)
				t.appendLog(logClean, Mapping{Orig: cur.m.Orig})
			}
		}
		for next := cur.right; next != nil; next = next.left {
			stack = append(stack, next)
		}
	}
	return found
}

// removeRun deletes every mapping in [orig, end), returning how many
// existed. Existing keys are discovered by successor walking so sparse
// ranges don't pay a descent per absent address.
func (s *shard) removeRun(t *Table, orig, end int64) int64 {
	var removed int64
	for orig < end {
		// Collect the next batch of present keys (removal rebalances
		// the tree, invalidating any in-flight iterator).
		var keys [64]int64
		got := 0
		var buf [48]*node
		stack := buf[:0]
		cur := s.root
		for cur != nil {
			switch {
			case orig < cur.m.Orig:
				stack = append(stack, cur)
				cur = cur.left
			case orig > cur.m.Orig:
				cur = cur.right
			default:
				stack = append(stack, cur)
				cur = nil
			}
		}
		for len(stack) > 0 && got < len(keys) {
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur.m.Orig >= end {
				break
			}
			keys[got] = cur.m.Orig
			got++
			for next := cur.right; next != nil; next = next.left {
				stack = append(stack, next)
			}
		}
		if got == 0 {
			break
		}
		for _, k := range keys[:got] {
			var ok bool
			s.root, ok = s.remove(s.root, k)
			if ok {
				s.ver++
				s.size--
				removed++
				t.dirtyDel(k)
				t.appendLog(logRemove, Mapping{Orig: k})
			}
		}
		orig = keys[got-1] + 1
	}
	return removed
}

// walk visits the shard's mappings in ascending Orig order. Returning
// false from fn stops (and propagates) the early exit.
func (s *shard) walk(fn func(Mapping) bool) bool {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.m) && walk(n.right)
	}
	return walk(s.root)
}

// --- AVL machinery ---

func height(n *node) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func fix(n *node) *node {
	n.height = 1 + max8(height(n.left), height(n.right))
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max8(height(n.left), height(n.right))
	l.height = 1 + max8(height(l.left), height(l.right))
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max8(height(n.left), height(n.right))
	r.height = 1 + max8(height(r.left), height(r.right))
	return r
}

func max8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

// newNode takes a node from the shard's freelist, or allocates.
func (s *shard) newNode(m Mapping) *node {
	if f := s.free; f != nil {
		s.free = f.right
		f.m, f.left, f.right, f.height = m, nil, nil, 1
		return f
	}
	return &node{m: m, height: 1}
}

// freeNode returns a detached node to the shard's freelist.
func (s *shard) freeNode(n *node) {
	n.left, n.right = nil, s.free
	s.free = n
}

func (s *shard) insert(n *node, m Mapping) *node {
	if n == nil {
		s.size++
		return s.newNode(m)
	}
	switch {
	case m.Orig < n.m.Orig:
		n.left = s.insert(n.left, m)
	case m.Orig > n.m.Orig:
		n.right = s.insert(n.right, m)
	default:
		s.replaced, s.existed = n.m, true
		n.m = m // replace in place
		return n
	}
	return fix(n)
}

func (s *shard) remove(n *node, orig int64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case orig < n.m.Orig:
		n.left, removed = s.remove(n.left, orig)
	case orig > n.m.Orig:
		n.right, removed = s.remove(n.right, orig)
	default:
		removed = true
		if n.left == nil {
			r := n.right
			s.freeNode(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			s.freeNode(n)
			return l, true
		}
		// Replace with the in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.m = succ.m
		n.right, _ = s.remove(n.right, succ.m.Orig)
	}
	return fix(n), removed
}
