package mapcache

import (
	"io"
	"sync/atomic"
)

// LogRing default geometry: 4 buffers of 32 KiB (~1927 log records per
// buffer). One buffer is always owned by the producer; the others are
// either in flight to the writer goroutine or waiting on the free ring.
const (
	logRingBufBytes = 32 << 10
	logRingDepth    = 4
)

// LogRingStats counts the ring's activity. Records/Bytes are what the
// Table appended; Flushes is how many buffer hand-offs reached the
// writer goroutine; Stalls counts hand-offs that blocked because every
// buffer was full or in flight (the underlying writer is the
// bottleneck — consider a deeper ring or a faster log device).
type LogRingStats struct {
	Records int64
	Bytes   int64
	Flushes int64
	Stalls  int64
	// Syncs counts the fsyncs the writer goroutine issued after flushed
	// buffers (zero unless SetSyncOnFlush enabled them and the backing
	// writer supports Sync).
	Syncs int64
}

// LogRing is a bounded asynchronous writer for the dirty-translation
// log (paper §4.2). Table.SetLog writes one fixed-size record per dirty
// transition; pointed at a LogRing, those records accumulate in an
// in-memory buffer and whole buffers are handed to a background writer
// goroutine through a bounded ring, so the apply path never issues a
// log I/O itself — it blocks only when the ring is full, which is
// back-pressure from a log device that cannot keep up.
//
// The byte stream reaching w is exactly the stream a synchronous log
// would have written — the same records in the same order — so every
// prefix of it (a crash that cuts the log at an arbitrary byte,
// including mid-flush) recovers through Recover exactly as a
// synchronously-written log cut at the same byte would. What batching
// trades away is only freshness: records appended after the last Flush
// that have not filled a buffer are lost with the process, the bounded
// staleness a controller accepts when it journals per I/O batch instead
// of per translation.
//
// The producer side (Write, Flush, Stats) is single-threaded, matching
// the Table's single-threaded mutation contract. Close flushes the
// tail, drains the writer and reports the first write error.
type LogRing struct {
	w      io.Writer
	syncer interface{ Sync() error } // w's fsync hook, nil if unsupported
	free   chan []byte
	out    chan []byte
	done   chan struct{}
	ack    chan struct{} // Barrier handshake with the writer goroutine
	cur    []byte
	errp   atomic.Pointer[error] // first write error, stored once
	closed bool
	stats  LogRingStats

	syncOnFlush atomic.Bool  // writer fsyncs after each flushed buffer
	syncs       atomic.Int64 // fsyncs issued, owned by the writer goroutine
}

// NewLogRing wraps w in a bounded asynchronous log writer holding depth
// in-flight buffers of bufBytes each; values < 1 take the defaults
// (4 × 32 KiB).
func NewLogRing(w io.Writer, bufBytes, depth int) *LogRing {
	if bufBytes < 1 {
		bufBytes = logRingBufBytes
	}
	if depth < 1 {
		depth = logRingDepth
	}
	r := &LogRing{
		w:    w,
		free: make(chan []byte, depth+1),
		out:  make(chan []byte, depth),
		done: make(chan struct{}),
		ack:  make(chan struct{}),
	}
	r.syncer, _ = w.(interface{ Sync() error })
	for i := 0; i < depth+1; i++ {
		r.free <- make([]byte, 0, bufBytes)
	}
	r.cur = <-r.free
	go func() {
		defer close(r.done)
		for buf := range r.out {
			if buf == nil {
				// Barrier sentinel: every buffer handed off before it has
				// been written; acknowledge and keep going.
				r.ack <- struct{}{}
				continue
			}
			if _, err := r.w.Write(buf); err != nil {
				// Keep draining so the producer never wedges; the failure
				// is visible immediately through Err (the CRAID checks it
				// every apply-step flush) and again at Close/Recover.
				r.setErr(err)
			} else if r.syncOnFlush.Load() && r.syncer != nil {
				// The knob behind core.Config.MapLogSync: a flushed
				// buffer is on stable media before the next is written,
				// trading the paper's §4.2 NVRAM assumption for a real
				// fsync per apply-step flush.
				if err := r.syncer.Sync(); err != nil {
					r.setErr(err)
				}
				r.syncs.Add(1)
			}
			r.free <- buf[:0]
		}
	}()
	return r
}

// setErr records the first failure (writer goroutine only).
func (r *LogRing) setErr(err error) {
	if r.errp.Load() == nil {
		r.errp.Store(&err)
	}
}

// Err reports the first write or fsync error the background writer has
// hit, nil if none. Safe from the producer side at any time. It does
// not synchronize with in-flight buffers: an error is only guaranteed
// visible once the buffer that carried it has been processed, which
// Barrier or Close ensure. Polling it each apply-step flush turns a
// dying log device into a prompt run failure instead of a teardown
// surprise.
func (r *LogRing) Err() error {
	if p := r.errp.Load(); p != nil {
		return *p
	}
	return nil
}

// Barrier flushes the current buffer and blocks until the writer
// goroutine has drained everything handed off so far, then reports the
// ring's error state. After Barrier returns, the bytes that reached w
// are exactly the records appended before the call — the consistency
// point crash-restart recovery reads the log image at.
func (r *LogRing) Barrier() error {
	if r.closed {
		return r.Err()
	}
	r.Flush()
	r.out <- nil
	<-r.ack
	return r.Err()
}

// SetSyncOnFlush asks the writer goroutine to fsync the backing writer
// after every flushed buffer (a no-op when the writer has no
// Sync() error method, e.g. an in-memory buffer). Call before the first
// append; the byte stream — and therefore crash recovery — is identical
// at both settings, only durability of a completed flush changes.
func (r *LogRing) SetSyncOnFlush(on bool) { r.syncOnFlush.Store(on) }

// Write implements io.Writer for Table.SetLog: p is appended to the
// current buffer, rolling over through the ring when a buffer fills.
// It never returns an error — write failures are asynchronous and
// surface through Err (polled by the CRAID each flush step) and at
// Close, exactly as a synchronous log's failures surface at Recover.
func (r *LogRing) Write(p []byte) (int, error) {
	written := len(p)
	r.stats.Records++
	r.stats.Bytes += int64(written)
	for len(p) > 0 {
		if len(r.cur) == cap(r.cur) {
			r.handOff()
		}
		n := copy(r.cur[len(r.cur):cap(r.cur)], p)
		r.cur = r.cur[:len(r.cur)+n]
		p = p[n:]
	}
	return written, nil
}

// Flush hands the current buffer to the writer goroutine. The CRAID
// controller calls it once per apply step, so the log's durability
// boundary is the I/O request, not the individual translation.
func (r *LogRing) Flush() {
	if len(r.cur) == 0 {
		return
	}
	r.handOff()
}

func (r *LogRing) handOff() {
	r.stats.Flushes++
	select {
	case r.out <- r.cur:
	default:
		// Every buffer is full or in flight: the log device is the
		// bottleneck. Block — order must be preserved, and the ring is
		// the bound on memory.
		r.stats.Stalls++
		r.out <- r.cur
	}
	r.cur = <-r.free
}

// Close flushes the tail, stops the writer goroutine and returns the
// first write error it hit. Further use of the ring is invalid;
// calling Close again just reports the same error.
func (r *LogRing) Close() error {
	if !r.closed {
		r.closed = true
		r.Flush()
		close(r.out)
		<-r.done
	}
	return r.Err()
}

// Stats reports the ring's counters (call from the producer side, or
// after Close).
func (r *LogRing) Stats() LogRingStats {
	s := r.stats
	s.Syncs = r.syncs.Load()
	return s
}
