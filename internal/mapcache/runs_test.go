package mapcache

import (
	"bytes"
	"math/rand"
	"testing"
)

// collect snapshots a table as a sorted mapping slice.
func collect(t *Table) []Mapping {
	var out []Mapping
	t.Walk(func(m Mapping) bool { out = append(out, m); return true })
	return out
}

func equalTables(t *testing.T, runT, blockT *Table, step int) {
	t.Helper()
	a, b := collect(runT), collect(blockT)
	if len(a) != len(b) {
		t.Fatalf("step %d: run table has %d mappings, per-block has %d", step, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: mapping %d: run %+v != per-block %+v", step, i, a[i], b[i])
		}
	}
	if runT.Len() != blockT.Len() {
		t.Fatalf("step %d: Len %d != %d", step, runT.Len(), blockT.Len())
	}
}

// TestRunAPIsMatchPerBlock drives two tables through the same random
// workload — one via the run APIs, one via a loop of the per-block
// equivalents — and requires identical state, results and dirty logs at
// every step.
func TestRunAPIsMatchPerBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const space = 2000
	for trial := 0; trial < 20; trial++ {
		var runLog, blockLog bytes.Buffer
		runT, blockT := New(), New()
		runT.SetLog(&runLog)
		blockT.SetLog(&blockLog)
		var cacheNext int64
		for step := 0; step < 500; step++ {
			orig := rng.Int63n(space)
			n := rng.Int63n(64) + 1
			switch rng.Intn(4) {
			case 0: // InsertRun vs loop of Insert
				dirty := rng.Intn(2) == 0
				cache := cacheNext
				cacheNext += n
				runT.InsertRun(orig, cache, n, dirty)
				for i := int64(0); i < n; i++ {
					blockT.Insert(Mapping{Orig: orig + i, Cache: cache + i, Dirty: dirty})
				}
			case 1: // SetDirtyRun vs loop of SetDirty
				dirty := rng.Intn(2) == 0
				got := runT.SetDirtyRun(orig, n, dirty)
				var want int64
				for i := int64(0); i < n; i++ {
					if blockT.SetDirty(orig+i, dirty) {
						want++
					}
				}
				if got != want {
					t.Fatalf("step %d: SetDirtyRun(%d,%d)=%d, loop found %d", step, orig, n, got, want)
				}
			case 2: // RemoveRun vs loop of Remove
				got := runT.RemoveRun(orig, n)
				var want int64
				for i := int64(0); i < n; i++ {
					if blockT.Remove(orig + i) {
						want++
					}
				}
				if got != want {
					t.Fatalf("step %d: RemoveRun(%d,%d)=%d, loop removed %d", step, orig, n, got, want)
				}
			case 3: // LookupRun vs loop of Lookup
				m, got, ok := runT.LookupRun(orig, n)
				wm, wok := blockT.Lookup(orig)
				if ok != wok {
					t.Fatalf("step %d: LookupRun(%d) ok=%v, Lookup ok=%v", step, orig, ok, wok)
				}
				if ok {
					if m != wm {
						t.Fatalf("step %d: LookupRun(%d) = %+v, Lookup = %+v", step, orig, m, wm)
					}
					// Recompute the run length with per-block lookups.
					want := int64(1)
					for want < n {
						m2, ok2 := blockT.Lookup(orig + want)
						if !ok2 || m2.Cache != wm.Cache+want {
							break
						}
						want++
					}
					if got != want {
						t.Fatalf("step %d: LookupRun(%d,%d) n=%d, per-block run=%d", step, orig, n, got, want)
					}
				} else {
					// Gap length: distance to the next mapped address.
					want := n
					for i := int64(0); i < n; i++ {
						if _, ok2 := blockT.Lookup(orig + i); ok2 {
							want = i
							break
						}
					}
					if got != want {
						t.Fatalf("step %d: LookupRun(%d,%d) gap=%d, per-block gap=%d", step, orig, n, got, want)
					}
				}
			}
			equalTables(t, runT, blockT, step)
			if !bytes.Equal(runLog.Bytes(), blockLog.Bytes()) {
				t.Fatalf("step %d: dirty logs diverged (%d vs %d bytes)", step, runLog.Len(), blockLog.Len())
			}
		}
	}
}

// TestLookupRunEdges pins the boundary behaviors of LookupRun.
func TestLookupRunEdges(t *testing.T) {
	tb := New()
	if _, n, ok := tb.LookupRun(5, 10); ok || n != 10 {
		t.Fatalf("empty table: got n=%d ok=%v, want 10/false", n, ok)
	}
	if _, n, ok := tb.LookupRun(5, 0); ok || n != 0 {
		t.Fatalf("max=0: got n=%d ok=%v, want 0/false", n, ok)
	}
	// Contiguous origs with a cache discontinuity split the run.
	tb.Insert(Mapping{Orig: 10, Cache: 100})
	tb.Insert(Mapping{Orig: 11, Cache: 101})
	tb.Insert(Mapping{Orig: 12, Cache: 300})
	tb.Insert(Mapping{Orig: 13, Cache: 301})
	if m, n, ok := tb.LookupRun(10, 100); !ok || n != 2 || m.Cache != 100 {
		t.Fatalf("run at 10: m=%+v n=%d ok=%v, want cache 100 n=2", m, n, ok)
	}
	if m, n, ok := tb.LookupRun(12, 100); !ok || n != 2 || m.Cache != 300 {
		t.Fatalf("run at 12: m=%+v n=%d ok=%v, want cache 300 n=2", m, n, ok)
	}
	// A gap is reported up to the next mapping.
	if _, n, ok := tb.LookupRun(5, 100); ok || n != 5 {
		t.Fatalf("gap before 10: n=%d ok=%v, want 5/false", n, ok)
	}
	// max caps both runs and gaps.
	if _, n, ok := tb.LookupRun(10, 1); !ok || n != 1 {
		t.Fatalf("capped run: n=%d ok=%v, want 1/true", n, ok)
	}
	if _, n, ok := tb.LookupRun(8, 1); ok || n != 1 {
		t.Fatalf("capped gap: n=%d ok=%v, want 1/false", n, ok)
	}
}

// TestNodeFreelistReuse checks that churn (remove + insert) does not
// grow memory: the freed node must be reused.
func TestNodeFreelistReuse(t *testing.T) {
	tb := New()
	for i := int64(0); i < 100; i++ {
		tb.Insert(Mapping{Orig: i, Cache: i})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Remove(42)
		tb.Insert(Mapping{Orig: 42, Cache: 42})
	})
	if allocs > 0 {
		t.Fatalf("churn allocated %.1f per op, want 0 (freelist)", allocs)
	}
}
