package mapcache

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// driveLog applies a deterministic mutation workload to a fresh table
// logging into w, calling stepDone at pseudo-random "apply step"
// boundaries the way the controller flushes per I/O request.
func driveLog(t *testing.T, w interface {
	Write([]byte) (int, error)
}, shards int, span int64, steps int, seed int64, stepDone func()) {
	t.Helper()
	var tb *Table
	if shards > 1 {
		tb = NewSharded(shards, span)
	} else {
		tb = New()
	}
	tb.SetLog(w)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		orig := rng.Int63n(4000)
		switch rng.Intn(5) {
		case 0:
			tb.InsertRun(orig, rng.Int63n(10000), 1+rng.Int63n(16), rng.Intn(2) == 0)
		case 1:
			tb.RemoveRun(orig, 1+rng.Int63n(16))
		case 2:
			tb.SetDirtyRun(orig, 1+rng.Int63n(16), true)
		case 3:
			tb.SetDirtyRun(orig, 1+rng.Int63n(16), false)
		case 4:
			tb.Insert(Mapping{Orig: orig, Cache: rng.Int63n(10000), Dirty: rng.Intn(2) == 0})
		}
		if rng.Intn(3) == 0 {
			stepDone()
		}
	}
	stepDone()
}

// TestLogRingStreamIdentical pins the core contract: the byte stream a
// LogRing delivers is exactly the stream a synchronous log writes —
// same records, same order — across buffer rollovers and arbitrary
// flush boundaries.
func TestLogRingStreamIdentical(t *testing.T) {
	for _, shards := range []int{1, 5} {
		var syncBuf bytes.Buffer
		driveLog(t, &syncBuf, shards, 1000, 400, 42, func() {})

		var ringBuf bytes.Buffer
		// Tiny buffers force mid-step rollovers.
		ring := NewLogRing(&ringBuf, 3*recordSize, 2)
		driveLog(t, ring, shards, 1000, 400, 42, ring.Flush)
		if err := ring.Close(); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(syncBuf.Bytes(), ringBuf.Bytes()) {
			t.Fatalf("shards=%d: ring stream diverged from synchronous stream (%d vs %d bytes)",
				shards, ringBuf.Len(), syncBuf.Len())
		}
		st := ring.Stats()
		if st.Records == 0 || st.Flushes == 0 || st.Bytes != int64(syncBuf.Len()) {
			t.Fatalf("shards=%d: implausible ring stats %+v for %d log bytes", shards, st, syncBuf.Len())
		}
	}
}

// TestLogRingCrashCutRecovery is the batched-flush recovery property: a
// log written through the ring and cut at an arbitrary byte — including
// mid-record, the torn tail of a flush that was interrupted — recovers
// exactly the mappings a synchronously-written log cut at the same byte
// recovers.
func TestLogRingCrashCutRecovery(t *testing.T) {
	var syncBuf bytes.Buffer
	driveLog(t, &syncBuf, 4, 1100, 300, 7, func() {})

	var ringBuf bytes.Buffer
	ring := NewLogRing(&ringBuf, 64, 3)
	driveLog(t, ring, 4, 1100, 300, 7, ring.Flush)
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}

	total := syncBuf.Len()
	cuts := []int{0, 1, recordSize - 1, recordSize, total / 3, total/3 + 5, total - 1, total}
	for _, cut := range cuts {
		want, err := Recover(bytes.NewReader(syncBuf.Bytes()[:cut]))
		if err != nil {
			t.Fatalf("cut %d: sync recover: %v", cut, err)
		}
		got, err := Recover(bytes.NewReader(ringBuf.Bytes()[:cut]))
		if err != nil {
			t.Fatalf("cut %d: ring recover: %v", cut, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cut %d: recovered %d mappings, want %d (contents diverged)", cut, len(got), len(want))
		}
	}
}

// errAfterWriter fails every Write after the first n bytes, simulating
// a log device that dies mid-stream.
type errAfterWriter struct {
	n       int
	written int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("log device gone")
	}
	w.written += len(p)
	return len(p), nil
}

// TestLogRingCloseReportsWriteError pins that asynchronous write
// failures surface at Close (the producer's Write never fails, like the
// best-effort synchronous log) and that a failing device cannot wedge
// the producer.
func TestLogRingCloseReportsWriteError(t *testing.T) {
	ring := NewLogRing(&errAfterWriter{n: 2 * recordSize}, recordSize, 2)
	rec := make([]byte, recordSize)
	for i := 0; i < 50; i++ {
		if _, err := ring.Write(rec); err != nil {
			t.Fatalf("producer Write failed: %v", err)
		}
		ring.Flush()
	}
	if err := ring.Close(); err == nil {
		t.Fatal("Close reported no error from a dead log device")
	}
	if err := ring.Close(); err == nil {
		t.Fatal("second Close lost the error")
	}
}

// syncBuffer is a bytes.Buffer with an fsync hook, counting Sync calls
// and remembering the byte length at the last one — the durable prefix
// a crash would leave behind under sync-on-flush.
type syncBuffer struct {
	bytes.Buffer
	syncs       int
	durableSize int
}

func (b *syncBuffer) Sync() error {
	b.syncs++
	b.durableSize = b.Len()
	return nil
}

// TestLogRingSyncOnFlush is the MapLogSync crash-recovery property at
// BOTH knob settings: the byte stream (and therefore recovery at any
// cut) is identical with and without fsync-on-flush; with the knob on,
// the writer syncs once per flushed buffer, so every completed flush is
// inside the durable prefix and recovering exactly that prefix equals
// recovering a synchronous log cut there.
func TestLogRingSyncOnFlush(t *testing.T) {
	var plain bytes.Buffer
	driveLog(t, &plain, 3, 1400, 300, 11, func() {})

	for _, syncOn := range []bool{false, true} {
		var buf syncBuffer
		ring := NewLogRing(&buf, 4*recordSize, 2)
		ring.SetSyncOnFlush(syncOn)
		driveLog(t, ring, 3, 1400, 300, 11, ring.Flush)
		if err := ring.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain.Bytes(), buf.Bytes()) {
			t.Fatalf("sync=%v: stream diverged from synchronous log", syncOn)
		}
		st := ring.Stats()
		if syncOn {
			if buf.syncs == 0 || st.Syncs != int64(buf.syncs) {
				t.Fatalf("sync=on: %d fsyncs observed, stats say %d", buf.syncs, st.Syncs)
			}
			if buf.durableSize != buf.Len() {
				t.Fatalf("sync=on: durable prefix %d != stream %d after Close", buf.durableSize, buf.Len())
			}
			// Crash at the durable boundary: recovery there must match a
			// synchronous log cut at the same byte.
			want, err := Recover(bytes.NewReader(plain.Bytes()[:buf.durableSize]))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Recover(bytes.NewReader(buf.Bytes()[:buf.durableSize]))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sync=on: durable-prefix recovery diverged (%d vs %d mappings)", len(got), len(want))
			}
		} else if buf.syncs != 0 || st.Syncs != 0 {
			t.Fatalf("sync=off: writer fsynced %d times (stats %d)", buf.syncs, st.Syncs)
		}
	}
}

// TestLogRingStallCounting pins that a writer slower than the producer
// shows up in Stalls rather than in unbounded memory.
func TestLogRingStallCounting(t *testing.T) {
	var sink bytes.Buffer
	ring := NewLogRing(&sink, recordSize, 1) // depth 1: third hand-off must stall
	rec := make([]byte, recordSize)
	for i := 0; i < 64; i++ {
		ring.Write(rec)
		ring.Flush()
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	st := ring.Stats()
	if st.Flushes != 64 {
		t.Fatalf("expected 64 flushes, got %+v", st)
	}
	if sink.Len() != 64*recordSize {
		t.Fatalf("sink holds %d bytes, want %d", sink.Len(), 64*recordSize)
	}
}

// TestLogRingErrSticky pins the asynchronous error surface the
// controller polls at each flush step: the first background write
// failure is visible through Err before Close, stays sticky, and is
// what Barrier returns from then on.
func TestLogRingErrSticky(t *testing.T) {
	ring := NewLogRing(&errAfterWriter{n: 2 * recordSize}, recordSize, 2)
	rec := make([]byte, recordSize)
	for i := 0; i < 50; i++ {
		ring.Write(rec)
		ring.Flush()
	}
	if err := ring.Barrier(); err == nil {
		t.Fatal("Barrier after a dead log device reported no error")
	}
	if err := ring.Err(); err == nil {
		t.Fatal("Err not sticky before Close")
	}
	if err := ring.Close(); err == nil {
		t.Fatal("Close lost the sticky error")
	}
	if err := ring.Err(); err == nil {
		t.Fatal("Err not sticky after Close")
	}
}

// TestLogRingBarrierMakesBytesVisible pins the crash-source contract
// the fault runtime relies on: after Barrier returns, every record
// written so far is in the underlying sink — a reader over the sink
// sees the full synchronous stream, mid-run, without closing the ring.
func TestLogRingBarrierMakesBytesVisible(t *testing.T) {
	var plain bytes.Buffer
	driveLog(t, &plain, 3, 1200, 200, 13, func() {})

	var sink bytes.Buffer
	ring := NewLogRing(&sink, 4*recordSize, 3)
	step := 0
	driveLog(t, ring, 3, 1200, 200, 13, func() {
		step++
		if step%7 == 0 { // barrier at scattered mid-run boundaries
			if err := ring.Barrier(); err != nil {
				t.Fatal(err)
			}
			// Everything accepted so far must be in the sink, and the
			// sink must be a prefix of the synchronous stream.
			if int64(sink.Len()) != ring.Stats().Bytes {
				t.Fatalf("step %d: sink holds %d bytes, ring accepted %d",
					step, sink.Len(), ring.Stats().Bytes)
			}
			if !bytes.HasPrefix(plain.Bytes(), sink.Bytes()) {
				t.Fatalf("step %d: sink is not a prefix of the synchronous stream", step)
			}
		} else {
			ring.Flush()
		}
	})
	if err := ring.Barrier(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), plain.Bytes()) {
		t.Fatalf("post-Barrier sink (%d bytes) != synchronous stream (%d bytes)",
			sink.Len(), plain.Len())
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	// Barrier on a closed ring is a safe no-op reporting the sticky
	// error state (nil here) — it must not wedge on the dead writer.
	if err := ring.Barrier(); err != nil {
		t.Fatalf("Barrier on a closed healthy ring: %v", err)
	}
}
