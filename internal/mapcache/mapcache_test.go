package mapcache

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTable(t *testing.T) {
	tb := New()
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
	if _, ok := tb.Lookup(42); ok {
		t.Error("Lookup on empty table returned ok")
	}
	if tb.Remove(42) {
		t.Error("Remove on empty table returned true")
	}
	if tb.SetDirty(42, true) {
		t.Error("SetDirty on empty table returned true")
	}
}

func TestInsertLookup(t *testing.T) {
	tb := New()
	tb.Insert(Mapping{Orig: 100, Cache: 5})
	tb.Insert(Mapping{Orig: 50, Cache: 6, Dirty: true})
	tb.Insert(Mapping{Orig: 150, Cache: 7})
	if tb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
	m, ok := tb.Lookup(50)
	if !ok || m.Cache != 6 || !m.Dirty {
		t.Errorf("Lookup(50) = %+v ok=%v", m, ok)
	}
	m, ok = tb.Lookup(100)
	if !ok || m.Cache != 5 || m.Dirty {
		t.Errorf("Lookup(100) = %+v ok=%v", m, ok)
	}
}

func TestInsertReplaces(t *testing.T) {
	tb := New()
	tb.Insert(Mapping{Orig: 1, Cache: 10})
	tb.Insert(Mapping{Orig: 1, Cache: 20, Dirty: true})
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", tb.Len())
	}
	m, _ := tb.Lookup(1)
	if m.Cache != 20 || !m.Dirty {
		t.Errorf("Lookup(1) = %+v, want replaced entry", m)
	}
}

func TestRemove(t *testing.T) {
	tb := New()
	for i := int64(0); i < 20; i++ {
		tb.Insert(Mapping{Orig: i, Cache: i * 2})
	}
	for _, k := range []int64{0, 10, 19, 5} {
		if !tb.Remove(k) {
			t.Errorf("Remove(%d) = false", k)
		}
		if _, ok := tb.Lookup(k); ok {
			t.Errorf("Lookup(%d) after remove = ok", k)
		}
	}
	if tb.Len() != 16 {
		t.Errorf("Len = %d, want 16", tb.Len())
	}
}

func TestSetDirty(t *testing.T) {
	tb := New()
	tb.Insert(Mapping{Orig: 1, Cache: 10})
	if !tb.SetDirty(1, true) {
		t.Fatal("SetDirty(1) = false")
	}
	if m, _ := tb.Lookup(1); !m.Dirty {
		t.Error("entry not dirty after SetDirty(true)")
	}
	tb.SetDirty(1, false)
	if m, _ := tb.Lookup(1); m.Dirty {
		t.Error("entry dirty after SetDirty(false)")
	}
}

func TestWalkOrdered(t *testing.T) {
	tb := New()
	rng := rand.New(rand.NewSource(1))
	for _, k := range rng.Perm(500) {
		tb.Insert(Mapping{Orig: int64(k), Cache: int64(k) + 1000})
	}
	var got []int64
	tb.Walk(func(m Mapping) bool {
		got = append(got, m.Orig)
		return true
	})
	if len(got) != 500 {
		t.Fatalf("walked %d entries, want 500", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("Walk not in ascending order")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tb := New()
	for i := int64(0); i < 10; i++ {
		tb.Insert(Mapping{Orig: i})
	}
	n := 0
	tb.Walk(func(Mapping) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d entries after early stop, want 3", n)
	}
}

func TestDirtyMappings(t *testing.T) {
	tb := New()
	for i := int64(0); i < 10; i++ {
		tb.Insert(Mapping{Orig: i, Cache: i, Dirty: i%3 == 0})
	}
	dirty := tb.DirtyMappings()
	if len(dirty) != 4 { // 0,3,6,9
		t.Fatalf("DirtyMappings returned %d entries, want 4", len(dirty))
	}
	for _, m := range dirty {
		if m.Orig%3 != 0 {
			t.Errorf("clean entry %d in dirty list", m.Orig)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	// Paper §4.2: ~0.58% of the cache partition size; with 4 KiB blocks
	// that is ≈ 16.1 bytes per entry (2×4B LBA + 1 bit + 8B pointer).
	tb := New()
	const n = 100000
	for i := int64(0); i < n; i++ {
		tb.Insert(Mapping{Orig: i, Cache: i})
	}
	perEntry := float64(tb.Bytes()) / n
	if perEntry < 16 || perEntry > 17 {
		t.Errorf("per-entry accounting = %.2f bytes, want ~16.1", perEntry)
	}
	// Fraction of the represented partition: entries × 4 KiB blocks.
	frac := float64(tb.Bytes()) / float64(n*4096)
	if frac < 0.0035 || frac > 0.0060 {
		t.Errorf("memory fraction = %.4f of partition, want ≈ 0.0039 (<0.58%%)", frac)
	}
}

func TestClear(t *testing.T) {
	tb := New()
	for i := int64(0); i < 100; i++ {
		tb.Insert(Mapping{Orig: i})
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Errorf("Len = %d after Clear", tb.Len())
	}
	tb.Insert(Mapping{Orig: 1, Cache: 2})
	if m, ok := tb.Lookup(1); !ok || m.Cache != 2 {
		t.Error("table unusable after Clear")
	}
}

// checkAVL verifies the AVL balance and BST ordering invariants.
func checkAVL(t *testing.T, n *node, lo, hi int64) int8 {
	t.Helper()
	if n == nil {
		return 0
	}
	if n.m.Orig <= lo || n.m.Orig >= hi {
		t.Fatalf("BST violation: %d outside (%d, %d)", n.m.Orig, lo, hi)
	}
	hl := checkAVL(t, n.left, lo, n.m.Orig)
	hr := checkAVL(t, n.right, n.m.Orig, hi)
	if bf := hl - hr; bf < -1 || bf > 1 {
		t.Fatalf("AVL violation at %d: balance %d", n.m.Orig, bf)
	}
	h := 1 + max8(hl, hr)
	if n.height != h {
		t.Fatalf("height cache wrong at %d: %d vs %d", n.m.Orig, n.height, h)
	}
	return h
}

func TestAVLInvariantsUnderChurn(t *testing.T) {
	tb := New()
	rng := rand.New(rand.NewSource(7))
	live := make(map[int64]bool)
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(1000))
		if rng.Intn(3) == 0 {
			got := tb.Remove(k)
			if got != live[k] {
				t.Fatalf("Remove(%d) = %v, want %v", k, got, live[k])
			}
			delete(live, k)
		} else {
			tb.Insert(Mapping{Orig: k, Cache: k})
			live[k] = true
		}
		if tb.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", tb.Len(), len(live))
		}
	}
	checkAVL(t, tb.shards[0].root, -1, 1<<62)
}

// Property: the table behaves exactly like a map reference model.
func TestPropertyMatchesMapModel(t *testing.T) {
	f := func(ops []int16) bool {
		tb := New()
		model := make(map[int64]Mapping)
		for i, raw := range ops {
			k := int64(raw % 128)
			switch i % 4 {
			case 0, 1:
				m := Mapping{Orig: k, Cache: int64(i), Dirty: i%2 == 0}
				tb.Insert(m)
				model[k] = m
			case 2:
				delete(model, k)
				tb.Remove(k)
			case 3:
				if _, ok := model[k]; ok {
					m := model[k]
					m.Dirty = !m.Dirty
					model[k] = m
					tb.SetDirty(k, m.Dirty)
				}
			}
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := tb.Lookup(k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: tree height stays O(log n) — specifically ≤ 1.44·log2(n+2).
func TestPropertyHeightLogarithmic(t *testing.T) {
	tb := New()
	for i := int64(0); i < 1<<14; i++ {
		tb.Insert(Mapping{Orig: i}) // worst case: sorted inserts
	}
	h := int(height(tb.shards[0].root))
	if h > 21 { // 1.44 * log2(16384) ≈ 20.2
		t.Errorf("height = %d for 16384 sorted inserts, want <= 21", h)
	}
}

func TestRecoverReplaysDirtyState(t *testing.T) {
	var buf bytes.Buffer
	tb := New()
	tb.SetLog(&buf)

	tb.Insert(Mapping{Orig: 1, Cache: 11, Dirty: true})
	tb.Insert(Mapping{Orig: 2, Cache: 12, Dirty: true})
	tb.Insert(Mapping{Orig: 3, Cache: 13}) // clean: not logged
	tb.SetDirty(3, true)                   // now logged
	tb.SetDirty(2, false)                  // written back
	tb.Remove(1)                           // evicted

	got, err := Recover(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 should remain dirty.
	if len(got) != 1 || got[0].Orig != 3 || got[0].Cache != 13 || !got[0].Dirty {
		t.Errorf("Recover = %+v, want [{3 13 true}]", got)
	}
}

func TestRecoverToleratesTornRecord(t *testing.T) {
	var buf bytes.Buffer
	tb := New()
	tb.SetLog(&buf)
	tb.Insert(Mapping{Orig: 5, Cache: 50, Dirty: true})
	tb.Insert(Mapping{Orig: 6, Cache: 60, Dirty: true})
	// Simulate a crash mid-append: truncate the last record.
	torn := buf.Bytes()[:buf.Len()-7]
	got, err := Recover(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Orig != 5 {
		t.Errorf("Recover after torn write = %+v, want entry 5 only", got)
	}
}

func TestRecoverRejectsCorruptKind(t *testing.T) {
	rec := make([]byte, recordSize)
	rec[0] = 99
	if _, err := Recover(bytes.NewReader(rec)); err == nil {
		t.Error("corrupt record kind not rejected")
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	got, err := Recover(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Recover(empty) = %+v, want none", got)
	}
}

// Property: Recover(log) always equals the table's live dirty set, for
// arbitrary operation sequences.
func TestPropertyLogMatchesDirtySet(t *testing.T) {
	f := func(ops []uint16) bool {
		var buf bytes.Buffer
		tb := New()
		tb.SetLog(&buf)
		for i, raw := range ops {
			k := int64(raw % 64)
			switch i % 5 {
			case 0, 1:
				tb.Insert(Mapping{Orig: k, Cache: k + 1000, Dirty: i%2 == 0})
			case 2:
				tb.SetDirty(k, true)
			case 3:
				tb.SetDirty(k, false)
			case 4:
				tb.Remove(k)
			}
		}
		want := tb.DirtyMappings()
		got, err := Recover(&buf)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Orig != want[i].Orig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb := New()
	const n = 1 << 18
	for i := int64(0); i < n; i++ {
		tb.Insert(Mapping{Orig: i * 7, Cache: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(int64(i%n) * 7)
	}
}

func BenchmarkTableInsertRemove(b *testing.B) {
	tb := New()
	for i := 0; i < b.N; i++ {
		k := int64(i % (1 << 16))
		tb.Insert(Mapping{Orig: k, Cache: k})
		if i%2 == 1 {
			tb.Remove(k)
		}
	}
}

// TestPropertyIsDirtyMatchesLookup drives randomized operation streams
// — point and run inserts/removes/dirty flips, clears, log-attached
// and not — through sharded and single-tree tables and pins IsDirty
// bit-identical to the Lookup-based definition at every step.
func TestPropertyIsDirtyMatchesLookup(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			var tb *Table
			if shards == 1 {
				tb = New()
			} else {
				tb = NewSharded(shards, 256)
			}
			if seed%2 == 0 {
				tb.SetLog(&bytes.Buffer{})
			}
			const span = 1024
			check := func(step int) {
				for k := int64(0); k < span; k++ {
					m, ok := tb.Lookup(k)
					want := ok && m.Dirty
					if got := tb.IsDirty(k); got != want {
						t.Fatalf("shards=%d seed=%d step %d: IsDirty(%d)=%v, Lookup says %v",
							shards, seed, step, k, got, want)
					}
				}
			}
			for step := 0; step < 400; step++ {
				k := rng.Int63n(span)
				n := rng.Int63n(64) + 1
				switch rng.Intn(8) {
				case 0:
					tb.Insert(Mapping{Orig: k, Cache: k + 10000, Dirty: rng.Intn(2) == 0})
				case 1:
					tb.InsertRun(k, k+10000, n, rng.Intn(2) == 0)
				case 2:
					tb.Remove(k)
				case 3:
					tb.RemoveRun(k, n)
				case 4:
					tb.SetDirty(k, rng.Intn(2) == 0)
				case 5:
					tb.SetDirtyRun(k, n, rng.Intn(2) == 0)
				case 6:
					if rng.Intn(20) == 0 {
						tb.Clear()
					}
				default:
					tb.SetDirtyRun(k, n, true)
				}
				if step%40 == 0 {
					check(step)
				}
			}
			check(400)
		}
	}
}
