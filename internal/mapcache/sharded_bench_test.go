package mapcache

import (
	"fmt"
	"testing"
)

// benchShardedTable is benchTable's layout (runs-of-64 separated by
// gaps-of-64) over a sharded index.
func benchShardedTable(shards int, blocks int64) *Table {
	t := NewSharded(shards, (blocks+int64(shards)-1)/int64(shards))
	var cache int64
	for b := int64(0); b < blocks; b += 128 {
		for i := int64(0); i < 64; i++ {
			t.Insert(Mapping{Orig: b + i, Cache: cache})
			cache++
		}
	}
	return t
}

// BenchmarkLookupRunSharded measures the monitor's hot lookup at
// several shard counts: the per-shard trees are shallower, so descents
// shorten as shards grow, while the cross-boundary stitching keeps the
// run contract intact.
func BenchmarkLookupRunSharded(b *testing.B) {
	const blocks = 1 << 20
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			t := benchShardedTable(shards, blocks)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := int64(i*256) % blocks
				for off := int64(0); off < 256; {
					_, n, _ := t.LookupRun(base+off, 256-off)
					off += n
				}
			}
		})
	}
}
