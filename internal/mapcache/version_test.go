package mapcache

import (
	"math"
	"testing"
)

// versions snapshots every shard's structural version.
func versions(t *Table) []uint64 {
	out := make([]uint64, t.Shards())
	for i := range out {
		out[i] = t.ShardVersion(i)
	}
	return out
}

// TestShardVersionStructuralOnly pins the ShardVersion contract the
// concurrent planner trusts: structural mutations (Insert, Remove,
// RemoveRun, Clear) bump the owning shard's version — and only its —
// while dirty-flag updates and every read-only operation leave all
// versions untouched.
func TestShardVersionStructuralOnly(t *testing.T) {
	tb := NewSharded(4, 100)

	v0 := versions(tb)
	tb.Insert(Mapping{Orig: 150, Cache: 1}) // shard 1
	v1 := versions(tb)
	if v1[1] <= v0[1] {
		t.Fatalf("Insert did not bump shard 1: %v -> %v", v0, v1)
	}
	for _, i := range []int{0, 2, 3} {
		if v1[i] != v0[i] {
			t.Fatalf("Insert into shard 1 bumped shard %d: %v -> %v", i, v0, v1)
		}
	}

	// Dirty-flag traffic is version-exempt: it moves no translation.
	tb.SetDirty(150, true)
	tb.SetDirtyRun(150, 1, false)
	if got := versions(tb); got[1] != v1[1] {
		t.Fatalf("SetDirty bumped shard 1: %v -> %v", v1, got)
	}

	// Read-only traffic too.
	tb.Lookup(150)
	tb.LookupRun(150, 10)
	tb.Len()
	tb.Walk(func(Mapping) bool { return true })
	if got := versions(tb); got[1] != v1[1] {
		t.Fatalf("read-only ops bumped shard 1: %v -> %v", v1, got)
	}

	tb.Remove(150)
	v2 := versions(tb)
	if v2[1] <= v1[1] {
		t.Fatalf("Remove did not bump shard 1: %v -> %v", v1, v2)
	}

	// RemoveRun bumps exactly the shards it removed from.
	tb.InsertRun(95, 0, 10, false) // spans shards 0 and 1
	v3 := versions(tb)
	if n := tb.RemoveRun(95, 10); n != 10 {
		t.Fatalf("RemoveRun removed %d, want 10", n)
	}
	v4 := versions(tb)
	if v4[0] <= v3[0] || v4[1] <= v3[1] {
		t.Fatalf("RemoveRun did not bump shards 0 and 1: %v -> %v", v3, v4)
	}
	if v4[2] != v3[2] || v4[3] != v3[3] {
		t.Fatalf("RemoveRun bumped untouched shards: %v -> %v", v3, v4)
	}

	tb.Clear()
	v5 := versions(tb)
	for i := range v5 {
		if v5[i] <= v4[i] {
			t.Fatalf("Clear did not bump shard %d: %v -> %v", i, v4, v5)
		}
	}
}

// TestShardGeometryAccessors pins ShardOf/ShardBound against the
// documented ownership ranges, including the zero-value single-shard
// table.
func TestShardGeometryAccessors(t *testing.T) {
	var zero Table
	if zero.Shards() != 1 || zero.ShardOf(12345) != 0 || zero.ShardBound(0) != math.MaxInt64 {
		t.Fatalf("zero table: shards=%d of=%d bound=%d",
			zero.Shards(), zero.ShardOf(12345), zero.ShardBound(0))
	}
	if zero.ShardVersion(0) != 0 {
		t.Fatalf("zero table: version %d, want 0", zero.ShardVersion(0))
	}

	tb := NewSharded(3, 50)
	for _, tc := range []struct {
		orig int64
		want int
	}{{0, 0}, {49, 0}, {50, 1}, {99, 1}, {100, 2}, {1 << 40, 2}} {
		if got := tb.ShardOf(tc.orig); got != tc.want {
			t.Errorf("ShardOf(%d) = %d, want %d", tc.orig, got, tc.want)
		}
	}
	if tb.ShardBound(0) != 50 || tb.ShardBound(1) != 100 || tb.ShardBound(2) != math.MaxInt64 {
		t.Errorf("bounds: %d %d %d", tb.ShardBound(0), tb.ShardBound(1), tb.ShardBound(2))
	}
}
