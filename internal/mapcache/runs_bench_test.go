package mapcache

import "testing"

// benchTable builds a table of runs-of-64 mappings separated by
// gaps-of-64, cache side laid out contiguously — the shape the CRAID
// monitor produces for sequential workloads.
func benchTable(blocks int64) *Table {
	t := New()
	var cache int64
	for b := int64(0); b < blocks; b += 128 {
		for i := int64(0); i < 64; i++ {
			t.Insert(Mapping{Orig: b + i, Cache: cache})
			cache++
		}
	}
	return t
}

// BenchmarkLookupPerBlock is the seed's access pattern: one descent per
// block of a 256-block request.
func BenchmarkLookupPerBlock(b *testing.B) {
	t := benchTable(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := int64(i*256) % (1 << 20)
		for off := int64(0); off < 256; off++ {
			t.Lookup(base + off)
		}
	}
}

// BenchmarkLookupRun covers the same 256 blocks with run lookups.
func BenchmarkLookupRun(b *testing.B) {
	t := benchTable(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := int64(i*256) % (1 << 20)
		for off := int64(0); off < 256; {
			_, n, _ := t.LookupRun(base+off, 256-off)
			off += n
		}
	}
}

// BenchmarkSetDirtyPerBlock flips 64-block runs dirty one descent at a
// time.
func BenchmarkSetDirtyPerBlock(b *testing.B) {
	t := benchTable(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (int64(i) * 128) % (1 << 20)
		dirty := i%2 == 0
		for off := int64(0); off < 64; off++ {
			t.SetDirty(base+off, dirty)
		}
	}
}

// BenchmarkSetDirtyRun flips the same runs with one call.
func BenchmarkSetDirtyRun(b *testing.B) {
	t := benchTable(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (int64(i) * 128) % (1 << 20)
		t.SetDirtyRun(base, 64, i%2 == 0)
	}
}

// BenchmarkChurnPerBlock measures remove+insert cycles (the monitor's
// evict-then-allocate steady state) with per-block calls.
func BenchmarkChurnPerBlock(b *testing.B) {
	t := benchTable(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (int64(i) * 128) % (1 << 16)
		for off := int64(0); off < 64; off++ {
			t.Remove(base + off)
		}
		for off := int64(0); off < 64; off++ {
			t.Insert(Mapping{Orig: base + off, Cache: int64(i)*64 + off})
		}
	}
}

// BenchmarkChurnRun measures the same cycles with the run APIs.
func BenchmarkChurnRun(b *testing.B) {
	t := benchTable(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (int64(i) * 128) % (1 << 16)
		t.RemoveRun(base, 64)
		t.InsertRun(base, int64(i)*64, 64, false)
	}
}
