package migrate

import (
	"testing"
)

var paperSchedule = []int{10, 13, 17, 22, 29, 38, 50}

const samples = 100_000

func run(t *testing.T, name string, pcFrac float64) Report {
	t.Helper()
	rep, err := Simulate(name, paperSchedule, samples, pcFrac)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAllStrategiesRun(t *testing.T) {
	for _, name := range Names() {
		rep := run(t, name, 0.01)
		if len(rep.Steps) != len(paperSchedule)-1 {
			t.Errorf("%s: %d steps, want %d", name, len(rep.Steps), len(paperSchedule)-1)
		}
	}
	if _, err := Simulate("nosuch", paperSchedule, samples, 0); err == nil {
		t.Error("unknown strategy did not error")
	}
	if _, err := Simulate("restripe", []int{10}, samples, 0); err == nil {
		t.Error("single-entry schedule did not error")
	}
	if _, err := Simulate("restripe", []int{10, 9}, samples, 0); err == nil {
		t.Error("shrinking schedule did not error")
	}
}

func TestRestripeMovesAlmostEverything(t *testing.T) {
	rep := run(t, "restripe", 0)
	for _, s := range rep.Steps {
		if s.MovedFrac < 0.5 {
			t.Errorf("restripe %d→%d moved only %.0f%%; round-robin preservation moves most blocks",
				s.FromDisks, s.ToDisks, 100*s.MovedFrac)
		}
	}
	if rep.FinalCV > 0.02 {
		t.Errorf("restripe final cv = %.4f, want ~0 (perfect balance)", rep.FinalCV)
	}
}

func TestMinimalStrategiesMoveProportionally(t *testing.T) {
	for _, name := range []string{"semi-rr", "fastscale", "gsr"} {
		rep := run(t, name, 0)
		for _, s := range rep.Steps {
			want := float64(s.ToDisks-s.FromDisks) / float64(s.ToDisks)
			if s.MovedFrac < want*0.5 || s.MovedFrac > want*1.5 {
				t.Errorf("%s %d→%d moved %.3f of data, want ≈ k/N = %.3f",
					name, s.FromDisks, s.ToDisks, s.MovedFrac, want)
			}
		}
	}
}

func TestFastScaleBalancedSemiRRNot(t *testing.T) {
	fs := run(t, "fastscale", 0)
	srr := run(t, "semi-rr", 0)
	if fs.FinalCV > 0.05 {
		t.Errorf("fastscale final cv = %.4f, want near 0", fs.FinalCV)
	}
	if srr.FinalCV <= fs.FinalCV {
		t.Errorf("semi-rr cv (%.4f) not worse than fastscale (%.4f); paper: Semi-RR unbalances after several expansions",
			srr.FinalCV, fs.FinalCV)
	}
}

func TestCRAIDMovesLeast(t *testing.T) {
	const pcFrac = 0.0128 // the paper's largest P_C: 1.28% per disk
	craid := run(t, "craid", pcFrac)
	for _, other := range []string{"restripe", "semi-rr", "fastscale", "gsr"} {
		rep := run(t, other, 0)
		if craid.TotalMoved >= rep.TotalMoved {
			t.Errorf("CRAID moved %d blocks, %s moved %d; CRAID must migrate least",
				craid.TotalMoved, other, rep.TotalMoved)
		}
	}
	// Each step costs at most one P_C refill.
	for _, s := range craid.Steps {
		if s.MovedFrac > pcFrac*1.01 {
			t.Errorf("CRAID step moved %.4f of data, want <= pcFrac %.4f", s.MovedFrac, pcFrac)
		}
	}
}

func TestRestripeMatchesExactRule(t *testing.T) {
	// For a single 4→5 expansion, block i moves iff i%4 != i%5: that is
	// 16 of every 20 blocks (LCM cycle), i.e. 80%.
	rep, err := Simulate("restripe", []int{4, 5}, 20_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Steps[0].MovedFrac; got != 0.8 {
		t.Errorf("4→5 restripe moved %.4f, want exactly 0.8", got)
	}
}

func TestGSRStaysInMinimalFamily(t *testing.T) {
	rep := run(t, "gsr", 0)
	// Over the whole schedule, a minimal strategy moves Σ k_i/N_i of
	// the dataset (≈1.41 for the paper's 10→50 schedule); GSR must not
	// exceed that family budget materially.
	var minimal float64
	for i := 1; i < len(paperSchedule); i++ {
		minimal += float64(paperSchedule[i]-paperSchedule[i-1]) / float64(paperSchedule[i])
	}
	if got := rep.TotalFrac(samples); got > minimal*1.1 {
		t.Errorf("gsr total moved %.3f of dataset, want <= %.3f (minimal family)", got, minimal*1.1)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, "semi-rr", 0)
	b := run(t, "semi-rr", 0)
	if a.TotalMoved != b.TotalMoved || a.FinalCV != b.FinalCV {
		t.Error("semi-rr simulation not deterministic")
	}
}
