// Package migrate models the data-migration cost of RAID upgrade
// strategies, quantifying the comparison that motivates CRAID (paper
// §1, §7.2): traditional restriping moves almost everything; minimal
// strategies move k/N of the data but either unbalance the array
// (Semi-RR) or constrain the layout (GSR); CRAID moves only the cache
// partition.
//
// Strategies are simulated block-by-block over a sampled dataset so
// both the migration volume per expansion step and the final placement
// balance (coefficient of variation of per-disk block counts) are
// measured rather than asserted.
package migrate

import (
	"fmt"

	"craid/internal/metrics"
)

// StepReport describes one expansion step.
type StepReport struct {
	FromDisks int
	ToDisks   int
	Moved     int64   // sample blocks relocated in this step
	MovedFrac float64 // Moved / total sample blocks
}

// Report is the outcome of running a strategy over a whole expansion
// schedule.
type Report struct {
	Strategy   string
	Steps      []StepReport
	TotalMoved int64
	// FinalCV is the coefficient of variation of per-disk block counts
	// after the last step: 0 is perfectly balanced.
	FinalCV float64
}

// TotalFrac returns total moved blocks as a fraction of the dataset,
// summed over steps (can exceed 1 for repeatedly-moving strategies).
func (r *Report) TotalFrac(samples int64) float64 {
	return float64(r.TotalMoved) / float64(samples)
}

// Names returns the available strategy names.
func Names() []string {
	return []string{"restripe", "semi-rr", "fastscale", "gsr", "craid"}
}

// Simulate runs the named strategy over schedule (cumulative disk
// counts, e.g. 10,13,17,22,29,38,50) with a sampled dataset of samples
// blocks. pcFrac is CRAID's cache-partition size as a fraction of the
// dataset (ignored by other strategies).
func Simulate(name string, schedule []int, samples int64, pcFrac float64) (Report, error) {
	if len(schedule) < 2 {
		return Report{}, fmt.Errorf("migrate: schedule needs at least two sizes")
	}
	for i := 1; i < len(schedule); i++ {
		if schedule[i] <= schedule[i-1] {
			return Report{}, fmt.Errorf("migrate: schedule must grow monotonically")
		}
	}
	var s strategy
	switch name {
	case "restripe":
		s = restripe{}
	case "semi-rr":
		s = semiRR{}
	case "fastscale":
		s = &fastScale{}
	case "gsr":
		s = gsr{}
	case "craid":
		s = craidStrategy{pcFrac: pcFrac}
	default:
		return Report{}, fmt.Errorf("migrate: unknown strategy %q", name)
	}

	rep := Report{Strategy: name}
	place := make([]int, samples)
	n0 := schedule[0]
	for i := range place {
		place[i] = i % n0 // initial round-robin layout
	}
	for step := 1; step < len(schedule); step++ {
		from, to := schedule[step-1], schedule[step]
		moved := s.expand(place, from, to, step)
		rep.Steps = append(rep.Steps, StepReport{
			FromDisks: from, ToDisks: to,
			Moved: moved, MovedFrac: float64(moved) / float64(samples),
		})
		rep.TotalMoved += moved
	}

	final := schedule[len(schedule)-1]
	counts := make([]float64, final)
	for _, d := range place {
		counts[d]++
	}
	var w metrics.Welford
	for _, c := range counts {
		w.Add(c)
	}
	rep.FinalCV = w.CV()
	return rep, nil
}

// strategy mutates the placement for one expansion and reports moved
// blocks.
type strategy interface {
	expand(place []int, from, to, round int) int64
}

// restripe preserves global round-robin order: the approach of
// conventional reshaping (mdadm, SLAS): block i lives on disk i mod N,
// so almost every block moves when N changes.
type restripe struct{}

func (restripe) expand(place []int, _, to, _ int) int64 {
	var moved int64
	for i := range place {
		want := i % to
		if place[i] != want {
			place[i] = want
			moved++
		}
	}
	return moved
}

// semiRR is the Semi-RR/SCADDAR family: a block moves only when its
// (re-hashed) target lands on a new disk. Migration is minimal, but
// repeated expansions skew the distribution (the paper's criticism).
type semiRR struct{}

func (semiRR) expand(place []int, from, to, round int) int64 {
	var moved int64
	for i := range place {
		h := int(splitmix(uint64(i)*31+uint64(round)) % uint64(to))
		if h >= from { // target is one of the new disks
			place[i] = h
			moved++
		}
	}
	return moved
}

// fastScale moves exactly (to-from)/to of each old disk's blocks onto
// the new disks, spread evenly — minimal migration with preserved
// balance (Zheng & Zhang, FAST '11).
type fastScale struct {
	rr int // round-robin cursor over new disks
}

func (f *fastScale) expand(place []int, from, to, round int) int64 {
	k := to - from
	var moved int64
	// Per old disk, every ⌈to/k⌉-th block moves; deterministic and
	// exactly proportional.
	counters := make([]int, from)
	for i := range place {
		d := place[i]
		if d >= from {
			continue
		}
		counters[d]++
		// Exactly k of every `to` consecutive blocks per disk move.
		if counters[d]*k%to < k {
			place[i] = from + f.rr%k
			f.rr++
			moved++
		}
	}
	return moved
}

// gsr (Global Stripe-based Redistribution) moves one contiguous
// section of the address space onto the new disks, keeping old stripes
// intact. Minimal movement, but post-upgrade reads of old data use only
// old disks and reads of moved data only new disks (its performance
// limitation; paper §7.2).
type gsr struct{}

func (gsr) expand(place []int, from, to, round int) int64 {
	k := to - from
	var moved int64
	// Move the tail k/to fraction of the (logical) block range.
	cut := int64(len(place)) * int64(to-k) / int64(to)
	for i := cut; i < int64(len(place)); i++ {
		want := from + int(i)%k
		if place[i] != want {
			place[i] = want
			moved++
		}
	}
	return moved
}

// craidStrategy: the archive does not move at all; each upgrade costs
// at most one cache-partition refill (invalidate + re-copy of the hot
// set, paper §4.1). Placement of archive blocks is untouched, so the
// "balance" measured here is the archive's — CRAID's point is that QoS
// is carried by P_C, which is always rebuilt balanced across all disks.
type craidStrategy struct {
	pcFrac float64
}

func (c craidStrategy) expand(place []int, from, to, round int) int64 {
	return int64(c.pcFrac * float64(len(place)))
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
