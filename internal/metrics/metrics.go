// Package metrics provides the measurement utilities the experiments
// use: streaming moments (Welford), log-bucketed latency histograms
// with percentiles, per-interval per-disk load tracking for the
// coefficient-of-variation distribution analysis (paper §5.3), and
// per-interval sequentiality tracking (paper Fig. 5).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"craid/internal/sim"
)

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the
// mean (normal approximation, as the paper's ±CI error bars).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Stddev() / math.Sqrt(float64(w.n))
}

// CV returns the coefficient of variation σ/µ (0 when µ is 0).
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Stddev() / w.mean
}

// LatencyHist is a latency histogram with logarithmic buckets (~3%
// resolution), supporting percentiles over millions of samples in
// constant memory. Buckets live in a dense []int64 (at most ~8 KiB,
// grown on demand) indexed by a constant-time math/bits bucketing with
// edges bit-identical to the floating-point log2 reference the
// histogram originally used (pinned by property tests).
type LatencyHist struct {
	buckets []int64
	count   int64
	sum     float64
	max     sim.Time
}

// NewLatencyHist returns an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{}
}

const latBucketsPerOctave = 16

// latBucketRef is the floating-point reference bucketing. It remains
// the definition of the bucket edges: latThresh below is derived from
// it at init, and the property suite pins latBucket against it.
func latBucketRef(t sim.Time) int {
	if t <= 0 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(t)) * latBucketsPerOctave))
}

// latThresh[k][j] is the smallest t in octave k (bits.Len64(t)-1 == k)
// whose reference bucket is >= 16k+j. Row entry 0 is the octave floor;
// entries that no t in the octave reaches hold MaxUint64. Because
// float64(t) rounds, samples at the top of a large octave can land in
// bucket 16(k+1) — hence 17 entries, not 16.
var latThresh [63][17]uint64

func init() {
	for k := 0; k < 63; k++ {
		lo := uint64(1) << uint(k)
		hi := lo<<1 - 1
		if k == 62 {
			hi = uint64(math.MaxInt64)
		}
		row := &latThresh[k]
		row[0] = lo
		for j := 1; j <= 16; j++ {
			target := k*latBucketsPerOctave + j
			if latBucketRef(sim.Time(hi)) < target {
				row[j] = math.MaxUint64
				continue
			}
			a, b := lo, hi
			for a < b {
				m := a + (b-a)/2
				if latBucketRef(sim.Time(m)) >= target {
					b = m
				} else {
					a = m + 1
				}
			}
			row[j] = a
		}
	}
}

// latBucket computes the reference bucket in constant time: locate the
// octave with bits.Len64, then binary-search the 17 precomputed
// thresholds in four compares.
func latBucket(t sim.Time) int {
	if t <= 0 {
		return 0
	}
	u := uint64(t)
	k := bits.Len64(u) - 1
	row := &latThresh[k]
	j := 0
	if u >= row[16] {
		j = 16
	} else {
		if u >= row[j+8] {
			j += 8
		}
		if u >= row[j+4] {
			j += 4
		}
		if u >= row[j+2] {
			j += 2
		}
		if u >= row[j+1] {
			j++
		}
	}
	return k*latBucketsPerOctave + j
}

func latBucketValue(b int) sim.Time {
	return sim.Time(math.Exp2((float64(b) + 0.5) / latBucketsPerOctave))
}

// Add records one latency sample.
func (h *LatencyHist) Add(t sim.Time) {
	b := latBucket(t)
	if b >= len(h.buckets) {
		grown := make([]int64, b+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[b]++
	h.count++
	h.sum += float64(t)
	if t > h.max {
		h.max = t
	}
}

// Count returns the number of samples.
func (h *LatencyHist) Count() int64 { return h.count }

// Mean returns the exact mean latency.
func (h *LatencyHist) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.count))
}

// Max returns the largest sample.
func (h *LatencyHist) Max() sim.Time { return h.max }

// Percentile returns the latency at quantile p in [0,1], within the
// bucket resolution (~3%).
func (h *LatencyHist) Percentile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target >= h.count {
		return h.max
	}
	var cum int64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= target {
			v := latBucketValue(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.max)
}

// Equal reports whether h and o hold bit-identical distributions —
// the same samples, bucket for bucket. Determinism property tests use
// it to pin that two simulations produced the same latency stream.
func (h *LatencyHist) Equal(o *LatencyHist) bool {
	if h.count != o.count || h.sum != o.sum || h.max != o.max {
		return false
	}
	n := len(h.buckets)
	if len(o.buckets) > n {
		n = len(o.buckets)
	}
	for b := 0; b < n; b++ {
		var a, c int64
		if b < len(h.buckets) {
			a = h.buckets[b]
		}
		if b < len(o.buckets) {
			c = o.buckets[b]
		}
		if a != c {
			return false
		}
	}
	return true
}

// LoadTracker accumulates per-disk I/O volume into fixed time intervals
// and reports, per interval, the coefficient of variation of the
// per-disk load — the paper's uniformity metric (§5.3): cv = σ/µ of MB
// moved per disk per second.
type LoadTracker struct {
	interval  sim.Time
	disks     int
	current   int64 // index of the interval being accumulated
	load      []float64
	intervals []float64 // finished per-interval cv values
	active    bool      // any load recorded in the current interval
}

// NewLoadTracker tracks disks devices at the given interval
// granularity.
func NewLoadTracker(disks int, interval sim.Time) *LoadTracker {
	if disks < 1 || interval <= 0 {
		panic("metrics: invalid LoadTracker parameters")
	}
	return &LoadTracker{interval: interval, disks: disks, load: make([]float64, disks)}
}

// Add records bytes moved on disk at time at.
func (l *LoadTracker) Add(at sim.Time, diskIdx int, bytes int64) {
	idx := int64(at / l.interval)
	for l.current < idx {
		l.flush()
	}
	l.load[diskIdx] += float64(bytes)
	l.active = true
}

func (l *LoadTracker) flush() {
	if l.active {
		var w Welford
		for _, v := range l.load {
			w.Add(v)
		}
		l.intervals = append(l.intervals, w.CV())
		for i := range l.load {
			l.load[i] = 0
		}
		l.active = false
	}
	l.current++
}

// CVs finalizes the current interval and returns the cv of every
// interval that saw I/O.
func (l *LoadTracker) CVs() []float64 {
	if l.active {
		l.flush()
	}
	out := make([]float64, len(l.intervals))
	copy(out, l.intervals)
	return out
}

// Resize changes the number of tracked disks (array expansion). The
// current interval is flushed first so old and new widths don't mix.
func (l *LoadTracker) Resize(disks int) {
	if l.active {
		l.flush()
	}
	l.disks = disks
	l.load = make([]float64, disks)
}

// SeqTracker measures access sequentiality per time interval: the
// fraction of block accesses that start exactly where the previous
// access on the same disk ended (paper Fig. 5: #SeqAccess/#Accesses
// aggregated per second).
type SeqTracker struct {
	interval sim.Time
	lastEnd  map[int]int64
	current  int64
	seq, tot int64
	results  []float64
}

// NewSeqTracker returns a tracker with the given aggregation interval.
func NewSeqTracker(interval sim.Time) *SeqTracker {
	if interval <= 0 {
		panic("metrics: invalid SeqTracker interval")
	}
	return &SeqTracker{interval: interval, lastEnd: make(map[int]int64)}
}

// Add records an access of count blocks at block on diskIdx at time at.
func (s *SeqTracker) Add(at sim.Time, diskIdx int, block, count int64) {
	idx := int64(at / s.interval)
	for s.current < idx {
		s.flushInterval()
	}
	if end, ok := s.lastEnd[diskIdx]; ok && end == block {
		s.seq++
	}
	s.tot++
	s.lastEnd[diskIdx] = block + count
}

func (s *SeqTracker) flushInterval() {
	if s.tot > 0 {
		s.results = append(s.results, float64(s.seq)/float64(s.tot))
	}
	s.seq, s.tot = 0, 0
	s.current++
}

// Fractions finalizes the current interval and returns per-interval
// sequential-access fractions.
func (s *SeqTracker) Fractions() []float64 {
	if s.tot > 0 {
		s.flushInterval()
	}
	out := make([]float64, len(s.results))
	copy(out, s.results)
	return out
}

// CDF computes an empirical CDF of samples evaluated at the given
// points: out[i] = P(X <= at[i]).
func CDF(samples []float64, at []float64) []float64 {
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	out := make([]float64, len(at))
	for i, x := range at {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))) /
			float64(maxInt(len(sorted), 1))
	}
	return out
}

// Quantile returns the q-quantile (0..1) of samples by linear
// interpolation; it copies and sorts internally.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of samples (0 when empty).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
