package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"craid/internal/sim"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if w.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 || w.CV() != 0 {
		t.Error("empty Welford must return zeros")
	}
	w.Add(5)
	if w.Variance() != 0 || w.CI95() != 0 {
		t.Error("single-sample variance must be 0")
	}
}

func TestWelfordCV(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(10) // perfectly uniform
	}
	if w.CV() != 0 {
		t.Errorf("CV of constant samples = %v, want 0", w.CV())
	}
}

// Property: Welford matches the two-pass calculation.
func TestPropertyWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range raw {
			w.Add(float64(x))
			sum += float64(x)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, x := range raw {
			d := float64(x) - mean
			ss += d * d
		}
		variance := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLatencyHistPercentiles(t *testing.T) {
	h := NewLatencyHist()
	// 1..1000 µs uniformly.
	for i := 1; i <= 1000; i++ {
		h.Add(sim.Time(i) * sim.Microsecond)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	wantMean := 500.5 * float64(sim.Microsecond)
	if got := float64(h.Mean()); math.Abs(got-wantMean) > 1 {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
	// Log buckets give ~±5% accuracy.
	p50 := float64(h.Percentile(0.5)) / float64(sim.Microsecond)
	if p50 < 450 || p50 > 550 {
		t.Errorf("p50 = %vµs, want ~500", p50)
	}
	p99 := float64(h.Percentile(0.99)) / float64(sim.Microsecond)
	if p99 < 930 || p99 > 1000 {
		t.Errorf("p99 = %vµs, want ~990", p99)
	}
	if h.Max() != 1000*sim.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Percentile(1.0) != h.Max() {
		t.Errorf("p100 = %v, want max %v", h.Percentile(1.0), h.Max())
	}
}

func TestLatencyHistEmptyAndZero(t *testing.T) {
	h := NewLatencyHist()
	if h.Percentile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must return zeros")
	}
	h.Add(0)
	if h.Count() != 1 {
		t.Error("zero latency not recorded")
	}
}

// Property: percentiles are monotone in p and bounded by max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHist()
		for i := 0; i < 500; i++ {
			h.Add(sim.Time(rng.Int63n(int64(sim.Second))))
		}
		prev := sim.Time(0)
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Percentile(p)
			if v < prev || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLoadTrackerUniformVsSkewed(t *testing.T) {
	// Perfectly uniform load → cv 0 in every interval.
	lt := NewLoadTracker(4, sim.Second)
	for s := 0; s < 3; s++ {
		for d := 0; d < 4; d++ {
			lt.Add(sim.Time(s)*sim.Second+sim.Millisecond, d, 1000)
		}
	}
	for i, cv := range lt.CVs() {
		if cv != 0 {
			t.Errorf("interval %d cv = %v, want 0 for uniform load", i, cv)
		}
	}

	// All load on one disk → cv = 2 for 4 disks (σ/µ of [x,0,0,0]).
	lt2 := NewLoadTracker(4, sim.Second)
	lt2.Add(0, 0, 4000)
	cvs := lt2.CVs()
	if len(cvs) != 1 {
		t.Fatalf("got %d intervals, want 1", len(cvs))
	}
	if math.Abs(cvs[0]-2.0) > 1e-9 {
		t.Errorf("skewed cv = %v, want 2.0", cvs[0])
	}
}

func TestLoadTrackerSkipsIdleIntervals(t *testing.T) {
	lt := NewLoadTracker(2, sim.Second)
	lt.Add(0, 0, 100)
	lt.Add(10*sim.Second, 1, 100) // 9 idle seconds between
	cvs := lt.CVs()
	if len(cvs) != 2 {
		t.Errorf("got %d intervals, want 2 (idle intervals skipped)", len(cvs))
	}
}

func TestLoadTrackerResize(t *testing.T) {
	lt := NewLoadTracker(2, sim.Second)
	lt.Add(0, 0, 100)
	lt.Resize(4)
	lt.Add(sim.Second, 3, 100) // disk index valid only after resize
	if got := len(lt.CVs()); got != 2 {
		t.Errorf("intervals = %d, want 2", got)
	}
}

func TestSeqTrackerDetectsSequentialRuns(t *testing.T) {
	st := NewSeqTracker(sim.Second)
	// Disk 0: blocks 0,8,16 sequential (two sequential transitions of
	// three accesses); disk 1: scattered.
	st.Add(0, 0, 0, 8)
	st.Add(sim.Millisecond, 0, 8, 8)
	st.Add(2*sim.Millisecond, 0, 16, 8)
	st.Add(3*sim.Millisecond, 1, 100, 8)
	st.Add(4*sim.Millisecond, 1, 500, 8)
	fr := st.Fractions()
	if len(fr) != 1 {
		t.Fatalf("got %d intervals, want 1", len(fr))
	}
	if want := 2.0 / 5.0; math.Abs(fr[0]-want) > 1e-9 {
		t.Errorf("sequential fraction = %v, want %v", fr[0], want)
	}
}

func TestSeqTrackerPerDiskIndependence(t *testing.T) {
	st := NewSeqTracker(sim.Second)
	// Interleaved sequential streams on two disks must both count.
	st.Add(0, 0, 0, 4)
	st.Add(1, 1, 0, 4)
	st.Add(2, 0, 4, 4)
	st.Add(3, 1, 4, 4)
	fr := st.Fractions()
	if want := 2.0 / 4.0; math.Abs(fr[0]-want) > 1e-9 {
		t.Errorf("fraction = %v, want %v (per-disk streams)", fr[0], want)
	}
}

func TestCDF(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	got := CDF(samples, []float64{0, 1, 2.5, 5, 10})
	want := []float64{0, 0.2, 0.4, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQuantile(t *testing.T) {
	samples := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

// Property: CDF is monotone non-decreasing and within [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []uint8, atRaw []uint8) bool {
		if len(raw) == 0 || len(atRaw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, r := range raw {
			samples[i] = float64(r)
		}
		at := make([]float64, len(atRaw))
		for i, r := range atRaw {
			at[i] = float64(r)
		}
		// Evaluate at sorted points.
		sortFloat(at)
		got := CDF(samples, at)
		prev := 0.0
		for _, v := range got {
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func sortFloat(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func BenchmarkLatencyHistAdd(b *testing.B) {
	h := NewLatencyHist()
	h.Add(sim.Time(1000000)) // pre-grow the dense bucket array
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(sim.Time(i%1000000 + 1))
	}
}

// BenchmarkLatencyHistAddRef measures the retained floating-point
// reference bucketing for comparison with the bits-based path.
func BenchmarkLatencyHistAddRef(b *testing.B) {
	m := make(map[int]int64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m[latBucketRef(sim.Time(i%1000000+1))]++
	}
}

// TestLatencyHistAddAllocFree gates the steady-state Add path at zero
// allocations once the dense array has grown.
func TestLatencyHistAddAllocFree(t *testing.T) {
	h := NewLatencyHist()
	h.Add(sim.Time(1) << 40)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 1; i <= 1000; i++ {
			h.Add(sim.Time(i) * 7919)
		}
	})
	if allocs != 0 {
		t.Fatalf("LatencyHist.Add allocated %.1f per 1000 samples, want 0", allocs)
	}
}

// TestPropertyLatBucketMatchesReference pins the constant-time
// bits-based bucketing bit-identical to the floating-point log2
// reference: exhaustively for small t, at every octave boundary and
// precomputed threshold edge, and over random 63-bit samples.
func TestPropertyLatBucketMatchesReference(t *testing.T) {
	check := func(v sim.Time) {
		if got, want := latBucket(v), latBucketRef(v); got != want {
			t.Fatalf("latBucket(%d) = %d, reference %d", v, got, want)
		}
	}
	for v := sim.Time(-2); v < 1<<20; v++ {
		check(v)
	}
	for k := uint(0); k < 63; k++ {
		for _, d := range []int64{-2, -1, 0, 1, 2} {
			v := int64(1)<<k + d
			if v > 0 {
				check(sim.Time(v))
			}
		}
		for j := 0; j <= 16; j++ {
			th := latThresh[k][j]
			for _, d := range []uint64{0, 1} {
				if th == 0 || th > uint64(1)<<62*2 {
					continue
				}
				v := th - d
				if v > 0 && v <= uint64(1)<<62 {
					check(sim.Time(v))
				}
			}
		}
	}
	check(sim.Time(1)<<62 + 12345)
	check(sim.MaxTime)
	check(sim.MaxTime - 1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2_000_000; i++ {
		check(sim.Time(rng.Int63() + 1))
	}
}

// refLatencyHist is the original map-backed histogram, retained as the
// property-pin reference for the dense implementation.
type refLatencyHist struct {
	buckets map[int]int64
	count   int64
	max     sim.Time
}

func (h *refLatencyHist) add(t sim.Time) {
	h.buckets[latBucketRef(t)]++
	h.count++
	if t > h.max {
		h.max = t
	}
}

func (h *refLatencyHist) percentile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	target := int64(math.Ceil(p * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target >= h.count {
		return h.max
	}
	var cum int64
	for _, b := range keys {
		cum += h.buckets[b]
		if cum >= target {
			v := latBucketValue(b)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// TestPropertyLatencyHistMatchesMapReference streams random latency
// mixes through the dense histogram and the retained map reference and
// requires identical counts, maxima and percentile curves.
func TestPropertyLatencyHistMatchesMapReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHist()
		ref := &refLatencyHist{buckets: make(map[int]int64)}
		for i := 0; i < 50000; i++ {
			var v sim.Time
			switch rng.Intn(4) {
			case 0:
				v = sim.Time(rng.Int63n(int64(200 * sim.Microsecond)))
			case 1:
				v = sim.Time(rng.Int63n(int64(20 * sim.Millisecond)))
			case 2:
				v = sim.Time(rng.Int63n(int64(5 * sim.Second)))
			default:
				v = sim.Time(rng.Int63())
			}
			h.Add(v)
			ref.add(v)
		}
		if h.Count() != ref.count || h.Max() != ref.max {
			t.Fatalf("seed %d: count/max diverged from reference", seed)
		}
		for p := 0.0; p <= 1.0; p += 0.001 {
			if got, want := h.Percentile(p), ref.percentile(p); got != want {
				t.Fatalf("seed %d: P%.3f = %v, reference %v", seed, p, got, want)
			}
		}
	}
}

func TestLatencyHistEqual(t *testing.T) {
	a, b := NewLatencyHist(), NewLatencyHist()
	if !a.Equal(b) {
		t.Fatal("empty histograms must be equal")
	}
	for _, v := range []sim.Time{1, 5, 5, 1000, 123456} {
		a.Add(v)
		b.Add(v)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("identical sample streams must compare equal")
	}
	b.Add(7)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("diverged histograms compared equal")
	}
	// Same count, different placement.
	c, d := NewLatencyHist(), NewLatencyHist()
	c.Add(10)
	d.Add(20)
	if c.Equal(d) {
		t.Fatal("different samples compared equal")
	}
}
