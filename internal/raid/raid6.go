package raid

// DualParity is implemented by layouts with a second parity device per
// stripe (RAID-6). Controllers use it to extend the read-modify-write
// cycle to both parities — the paper's §6 notes the cost of upgrading
// CRAID to RAID-6 "directly increases with the number of parity
// blocks"; this layout plus core's write path realizes that cost model.
type DualParity interface {
	Layout
	// QParityOf returns the location of the Q (second) parity
	// protecting the block.
	QParityOf(block int64) (PBA, bool)
}

// RAID6 is a dual-parity layout with rotated P and Q and configurable
// parity groups, structured like RAID5 but with two parity slots per
// row in each group.
type RAID6 struct {
	disks      int
	unit       int64
	rows       int64
	groups     []group
	groupLUT   []int32 // data slot within a row → owning group index
	dataPerRow int64
	capacity   int64
}

// NewRAID6 builds a RAID-6 layout; groups need at least 4 disks (2
// data + P + Q).
func NewRAID6(disks int, groupSize int, blocksPerDisk, unitBlocks int64) *RAID6 {
	if disks < 4 || unitBlocks < 1 || blocksPerDisk < unitBlocks {
		panic("raid: invalid RAID6 parameters")
	}
	if groupSize < 4 || groupSize > disks {
		groupSize = disks
	}
	sizes := splitGroups(disks, groupSize)
	for i := len(sizes) - 1; i > 0; i-- {
		// A RAID-6 group needs >= 4 disks; merge short trailing groups
		// leftward.
		if sizes[i] < 4 {
			sizes[i-1] += sizes[i]
			sizes = sizes[:i]
		}
	}
	if sizes[0] < 4 {
		panic("raid: RAID6 needs at least 4 disks per group")
	}
	r := &RAID6{disks: disks, unit: unitBlocks, rows: blocksPerDisk / unitBlocks}
	first := 0
	for _, s := range sizes {
		g := group{firstDisk: first, size: s, firstData: r.dataPerRow}
		g.buildRotation(2)
		r.groups = append(r.groups, g)
		r.dataPerRow += int64(s - 2)
		first += s
	}
	r.groupLUT = buildGroupLUT(r.groups, r.dataPerRow)
	r.capacity = r.rows * r.dataPerRow * unitBlocks
	return r
}

// Disks implements Layout.
func (r *RAID6) Disks() int { return r.disks }

// DataBlocks implements Layout.
func (r *RAID6) DataBlocks() int64 { return r.capacity }

// BlocksPerDisk implements Layout.
func (r *RAID6) BlocksPerDisk() int64 { return r.rows * r.unit }

// StripeUnitBlocks implements Layout.
func (r *RAID6) StripeUnitBlocks() int64 { return r.unit }

// DataUnitsPerRow reports the array's effective stripe width.
func (r *RAID6) DataUnitsPerRow() int64 { return r.dataPerRow }

// locateUnit maps a data unit index to (row, group, slot) coordinates:
// one LUT load, no group scan.
func (r *RAID6) locateUnit(unit int64) (row int64, g *group, slot int) {
	row = unit / r.dataPerRow
	idx := unit % r.dataPerRow
	g = &r.groups[r.groupLUT[idx]]
	return row, g, int(idx - g.firstData)
}

// parityPositions returns the in-group slots of P and Q for a row:
// left-symmetric rotation with Q immediately after P (wrapping). It is
// the rotation law the per-phase group tables are built from, and the
// reference the LUT property tests pin against.
func parityPositions(row int64, size int) (p, q int) {
	p = int(int64(size-1) - row%int64(size))
	q = (p + 1) % size
	return p, q
}

// Locate implements Layout: branch-free — the group comes from the
// row-slot LUT and the data disk from the group's per-phase rotation
// table, with no parity-slot-skip branches.
func (r *RAID6) Locate(block int64) PBA {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row, grp, slot := r.locateUnit(unit)
	phase := int(row % int64(grp.size))
	d := grp.dataDisk[phase*grp.dataSlots+slot]
	return PBA{Disk: grp.firstDisk + d, Block: row*r.unit + off}
}

// ParityOf implements Layout (the P parity).
func (r *RAID6) ParityOf(block int64) (PBA, bool) {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row, grp, _ := r.locateUnit(unit)
	pp := grp.pDisk[row%int64(grp.size)]
	return PBA{Disk: grp.firstDisk + pp, Block: row*r.unit + off}, true
}

// QParityOf implements DualParity.
func (r *RAID6) QParityOf(block int64) (PBA, bool) {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row, grp, _ := r.locateUnit(unit)
	qp := grp.qDisk[row%int64(grp.size)]
	return PBA{Disk: grp.firstDisk + qp, Block: row*r.unit + off}, true
}

// ForEachExtent implements Layout with the same row-batched walk as
// RAID5.forEachRowRun — row base and each group's rotation-table row
// resolved once per group per row, data disks a straight table load per
// slot — emitting exactly the per-unit reference's extents.
func (r *RAID6) ForEachExtent(block, count int64, fn func(Extent)) {
	checkBlock(r, block, count)
	for count > 0 {
		u := block / r.unit
		off := block % r.unit
		row := u / r.dataPerRow
		idx := u % r.dataPerRow
		base := row * r.unit
		gi := int(r.groupLUT[idx])
		for count > 0 && idx < r.dataPerRow {
			grp := &r.groups[gi]
			phase := int(row % int64(grp.size))
			pDisk := grp.firstDisk + grp.pDisk[phase]
			dd := grp.dataDisk[phase*grp.dataSlots : (phase+1)*grp.dataSlots]
			for slot := int(idx - grp.firstData); slot < grp.dataSlots && count > 0; slot++ {
				n := r.unit - off
				if n > count {
					n = count
				}
				fn(Extent{
					Logical: block,
					Data:    PBA{Disk: grp.firstDisk + dd[slot], Block: base + off},
					Parity:  PBA{Disk: pDisk, Block: base + off},
					Count:   n,
				})
				block += n
				count -= n
				off = 0
				idx++
			}
			gi++
		}
	}
}
