package raid

import (
	"math/rand"
	"reflect"
	"testing"
)

// rowBatchLayouts is the sweep of geometries the row-batched
// ForEachExtent walks are pinned on: single-group and multi-group
// RAID-5 (including a borrowed trailing group), RAID-6, RAID-0, and
// the paper's RAID-5+ aggregation, at units small enough that runs
// cross rows, groups and sets constantly.
func rowBatchLayouts() map[string]Layout {
	return map[string]Layout{
		"raid0/4":        NewRAID0(4, 64, 4),
		"raid0/7":        NewRAID0(7, 96, 8),
		"raid5/5g5":      NewRAID5(5, 5, 64, 4),
		"raid5/10g3":     NewRAID5(10, 3, 96, 4),
		"raid5/11g5":     NewRAID5(11, 5, 64, 4), // trailing 11→5,5,1 borrow
		"raid6/8g8":      NewRAID6(8, 8, 64, 4),
		"raid6/13g5":     NewRAID6(13, 5, 96, 4), // 5,5,3 → merged trailing group
		"raid5plus":      NewRAID5Plus([]int{10, 3, 4, 5}, 64, 4),
		"raid5plus/unit": NewRAID5Plus([]int{4, 2}, 32, 8),
	}
}

// TestForEachExtentMatchesUnitRun is the row-batching equivalence
// property: for every layout and random logical run, the row-batched
// ForEachExtent emits exactly the extents — same order, same fields —
// as the per-unit reference walk forEachUnitRun.
func TestForEachExtentMatchesUnitRun(t *testing.T) {
	for name, l := range rowBatchLayouts() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			capacity := l.DataBlocks()
			collect := func(walk func(int64, int64, func(Extent)), block, count int64) []Extent {
				var out []Extent
				walk(block, count, func(e Extent) { out = append(out, e) })
				return out
			}
			for trial := 0; trial < 2000; trial++ {
				count := 1 + rng.Int63n(3*l.StripeUnitBlocks()*int64(l.Disks()))
				if count > capacity {
					count = capacity
				}
				block := rng.Int63n(capacity - count + 1)
				got := collect(l.ForEachExtent, block, count)
				want := collect(func(b, c int64, fn func(Extent)) {
					forEachUnitRun(l, b, c, fn)
				}, block, count)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("run [%d,+%d): row-batched walk diverged\n got %v\nwant %v",
						block, count, got, want)
				}
			}
			// Edges: whole capacity, first unit, last block.
			for _, r := range [][2]int64{{0, capacity}, {0, 1}, {capacity - 1, 1}} {
				got := collect(l.ForEachExtent, r[0], r[1])
				want := collect(func(b, c int64, fn func(Extent)) {
					forEachUnitRun(l, b, c, fn)
				}, r[0], r[1])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("run [%d,+%d): row-batched walk diverged at edge", r[0], r[1])
				}
			}
		})
	}
}

// BenchmarkForEachExtent measures the row-batched walk against the
// per-unit reference on whole-row runs — the shape flushWritebacks and
// the copy-in path issue constantly — for a grouped RAID-5 and (with
// its doubled rotation work) a grouped RAID-6.
func BenchmarkForEachExtent(b *testing.B) {
	l5 := NewRAID5(50, 10, 4096, 32)
	l6 := NewRAID6(52, 13, 4096, 32)
	for _, bench := range []struct {
		name string
		run  int64
		walk func(int64, int64, func(Extent))
	}{
		{"raid5/row", 3 * 32 * 45, l5.ForEachExtent},
		{"raid5/unit", 3 * 32 * 45, func(blk, c int64, fn func(Extent)) { forEachUnitRun(l5, blk, c, fn) }},
		{"raid6/row", 3 * 32 * 44, l6.ForEachExtent},
		{"raid6/unit", 3 * 32 * 44, func(blk, c int64, fn func(Extent)) { forEachUnitRun(l6, blk, c, fn) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var sink int64
			for i := 0; i < b.N; i++ {
				bench.walk(int64(i%7)*13, bench.run, func(e Extent) { sink += e.Data.Block })
			}
			_ = sink
		})
	}
}

// TestRowBatchPanicsOnBadRun pins that the row-batched walks kept the
// reference's range checking.
func TestRowBatchPanicsOnBadRun(t *testing.T) {
	for name, l := range rowBatchLayouts() {
		for _, r := range [][2]int64{{-1, 1}, {0, 0}, {l.DataBlocks(), 1}, {0, l.DataBlocks() + 1}} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: run [%d,+%d) did not panic", name, r[0], r[1])
					}
				}()
				l.ForEachExtent(r[0], r[1], func(Extent) {})
			}()
		}
	}
}
