package raid

import (
	"math/rand"
	"testing"
)

// Reference implementations of the pre-LUT geometry math: the linear
// group scan and the rotate-and-skip parity branches, exactly as
// Locate/ParityOf/QParityOf computed addresses before the per-phase
// rotation tables. The property tests below pin the branch-free table
// paths to these, block for block, across every test geometry.

// refGroupOf finds a data slot's group by linear scan.
func refGroupOf(groups []group, idx int64, parities int) *group {
	for i := range groups {
		g := &groups[i]
		if idx < g.firstData+int64(g.size-parities) {
			return g
		}
	}
	panic("raid: unit index out of range")
}

// refLocate5 is the original RAID5.Locate: scan for the group, rotate
// the parity, branch past the parity slot.
func refLocate5(r *RAID5, block int64) PBA {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row := unit / r.dataPerRow
	idx := unit % r.dataPerRow
	grp := refGroupOf(r.groups, idx, 1)
	slot := int(idx - grp.firstData)
	pp := parityPos(row, grp.size)
	d := slot
	if d >= pp {
		d++
	}
	return PBA{Disk: grp.firstDisk + d, Block: row*r.unit + off}
}

func refParityOf5(r *RAID5, block int64) PBA {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row := unit / r.dataPerRow
	grp := refGroupOf(r.groups, unit%r.dataPerRow, 1)
	pp := parityPos(row, grp.size)
	return PBA{Disk: grp.firstDisk + pp, Block: row*r.unit + off}
}

// refLocate6 is the original RAID6.Locate: scan for the group, rotate
// P and Q, branch past both parity slots in ascending order.
func refLocate6(r *RAID6, block int64) PBA {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row := unit / r.dataPerRow
	idx := unit % r.dataPerRow
	grp := refGroupOf(r.groups, idx, 2)
	slot := int(idx - grp.firstData)
	pp, qp := parityPositions(row, grp.size)
	lo, hi := pp, qp
	if lo > hi {
		lo, hi = hi, lo
	}
	d := slot
	if d >= lo {
		d++
	}
	if d >= hi {
		d++
	}
	return PBA{Disk: grp.firstDisk + d, Block: row*r.unit + off}
}

func refParities6(r *RAID6, block int64) (PBA, PBA) {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row := unit / r.dataPerRow
	grp := refGroupOf(r.groups, unit%r.dataPerRow, 2)
	pp, qp := parityPositions(row, grp.size)
	return PBA{Disk: grp.firstDisk + pp, Block: row*r.unit + off},
		PBA{Disk: grp.firstDisk + qp, Block: row*r.unit + off}
}

// TestRotationLUTMatchesReference pins the branch-free table paths —
// Locate, ParityOf, QParityOf — to the original scan-and-branch math on
// every block of every test geometry (full sweep for the small ones,
// random sample plus edges for the rest).
func TestRotationLUTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blocksFor := func(capacity int64) []int64 {
		if capacity <= 20000 {
			out := make([]int64, capacity)
			for i := range out {
				out[i] = int64(i)
			}
			return out
		}
		out := []int64{0, 1, capacity - 1}
		for i := 0; i < 20000; i++ {
			out = append(out, rng.Int63n(capacity))
		}
		return out
	}
	for name, l := range rowBatchLayouts() {
		switch r := l.(type) {
		case *RAID5:
			for _, b := range blocksFor(r.DataBlocks()) {
				if got, want := r.Locate(b), refLocate5(r, b); got != want {
					t.Fatalf("%s: Locate(%d) = %v, want %v", name, b, got, want)
				}
				p, _ := r.ParityOf(b)
				if want := refParityOf5(r, b); p != want {
					t.Fatalf("%s: ParityOf(%d) = %v, want %v", name, b, p, want)
				}
			}
		case *RAID6:
			for _, b := range blocksFor(r.DataBlocks()) {
				if got, want := r.Locate(b), refLocate6(r, b); got != want {
					t.Fatalf("%s: Locate(%d) = %v, want %v", name, b, got, want)
				}
				wantP, wantQ := refParities6(r, b)
				if p, _ := r.ParityOf(b); p != wantP {
					t.Fatalf("%s: ParityOf(%d) = %v, want %v", name, b, p, wantP)
				}
				if q, _ := r.QParityOf(b); q != wantQ {
					t.Fatalf("%s: QParityOf(%d) = %v, want %v", name, b, q, wantQ)
				}
			}
		}
	}
}

// TestRotationLUTParityNeverCollides sanity-checks the tables directly:
// within every phase of every group, P, Q and the data slots occupy
// distinct disks covering exactly 0..size-1.
func TestRotationLUTParityNeverCollides(t *testing.T) {
	check := func(name string, groups []group, parities int) {
		for gi := range groups {
			g := &groups[gi]
			for phase := 0; phase < g.size; phase++ {
				seen := make(map[int]bool, g.size)
				seen[g.pDisk[phase]] = true
				if parities == 2 {
					if seen[g.qDisk[phase]] {
						t.Fatalf("%s: group %d phase %d: Q collides with P", name, gi, phase)
					}
					seen[g.qDisk[phase]] = true
				}
				for s := 0; s < g.dataSlots; s++ {
					d := g.dataDisk[phase*g.dataSlots+s]
					if d < 0 || d >= g.size || seen[d] {
						t.Fatalf("%s: group %d phase %d slot %d: disk %d out of range or reused",
							name, gi, phase, s, d)
					}
					seen[d] = true
				}
				if len(seen) != g.size {
					t.Fatalf("%s: group %d phase %d covers %d of %d disks",
						name, gi, phase, len(seen), g.size)
				}
			}
		}
	}
	for name, l := range rowBatchLayouts() {
		switch r := l.(type) {
		case *RAID5:
			check(name, r.groups, 1)
		case *RAID6:
			check(name, r.groups, 2)
		}
	}
}

// BenchmarkLocate measures the per-block address computation the
// redirector's hottest helpers lean on: LUT path vs the scan-and-branch
// reference, on a grouped RAID-5 and a grouped RAID-6.
func BenchmarkLocate(b *testing.B) {
	r5 := NewRAID5(50, 10, 4096, 32)
	r6 := NewRAID6(52, 13, 4096, 32)
	cap5, cap6 := r5.DataBlocks(), r6.DataBlocks()
	b.Run("raid5/lut", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += r5.Locate(int64(i*997) % cap5).Block
		}
		_ = sink
	})
	b.Run("raid5/ref", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += refLocate5(r5, int64(i*997)%cap5).Block
		}
		_ = sink
	})
	b.Run("raid6/lut", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += r6.Locate(int64(i*997) % cap6).Block
		}
		_ = sink
	})
	b.Run("raid6/ref", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += refLocate6(r6, int64(i*997)%cap6).Block
		}
		_ = sink
	})
}
