// Package raid implements block-address layouts for RAID-0, RAID-5 and
// RAID-5+ (an aggregation of independently-striped RAID-5 sets, the
// paper's model of an array that has been expanded several times).
//
// A Layout is pure address arithmetic: it maps a logical data block to
// the disk and on-disk block holding it, and to the location of the
// parity protecting it. Issuing the actual device I/O — including the
// read-modify-write cycles that parity updates require — is the job of
// the controllers in internal/core.
//
// RAID-5 here is left-symmetric with rotated parity and configurable
// parity groups: stripes span all disks, but each group of G disks
// computes its own parity (paper §5, Fig. 3a), bounding the failure
// domain while preserving full-array parallelism.
package raid

import "fmt"

// PBA is a physical block address: a device index within the array and
// a block offset local to that device (relative to the partition the
// layout occupies; controllers add the partition base).
type PBA struct {
	Disk  int
	Block int64
}

// Extent is a run of physically contiguous data blocks on one disk
// together with the parity run protecting it (Parity.Disk < 0 for
// layouts without redundancy).
type Extent struct {
	Logical int64 // first logical block of the run
	Data    PBA
	Parity  PBA
	Count   int64
}

// Layout maps logical data blocks to physical locations.
type Layout interface {
	// Disks returns the number of devices the layout spans.
	Disks() int
	// DataBlocks returns the logical data capacity in blocks.
	DataBlocks() int64
	// BlocksPerDisk returns how many blocks the layout occupies on
	// each device.
	BlocksPerDisk() int64
	// StripeUnitBlocks returns the stripe unit size in blocks.
	StripeUnitBlocks() int64
	// Locate maps a logical block to its data location.
	Locate(block int64) PBA
	// ParityOf returns the parity location protecting the block; ok is
	// false when the layout has no redundancy.
	ParityOf(block int64) (pba PBA, ok bool)
	// ForEachExtent decomposes the logical run [block, block+count)
	// into per-disk contiguous extents, invoking fn in logical order.
	ForEachExtent(block, count int64, fn func(Extent))
}

func checkBlock(l Layout, block, count int64) {
	if count < 1 || block < 0 || block+count > l.DataBlocks() {
		panic(fmt.Sprintf("raid: logical run [%d,+%d) out of range (capacity %d)",
			block, count, l.DataBlocks()))
	}
}

// RAID0 stripes data across disks with no redundancy.
type RAID0 struct {
	disks    int
	unit     int64
	rows     int64
	capacity int64
}

// NewRAID0 builds a RAID-0 layout over disks devices, each contributing
// blocksPerDisk blocks, striped in units of unitBlocks.
func NewRAID0(disks int, blocksPerDisk, unitBlocks int64) *RAID0 {
	if disks < 1 || unitBlocks < 1 || blocksPerDisk < unitBlocks {
		panic("raid: invalid RAID0 parameters")
	}
	rows := blocksPerDisk / unitBlocks
	return &RAID0{
		disks:    disks,
		unit:     unitBlocks,
		rows:     rows,
		capacity: rows * int64(disks) * unitBlocks,
	}
}

// Disks implements Layout.
func (r *RAID0) Disks() int { return r.disks }

// DataBlocks implements Layout.
func (r *RAID0) DataBlocks() int64 { return r.capacity }

// BlocksPerDisk implements Layout.
func (r *RAID0) BlocksPerDisk() int64 { return r.rows * r.unit }

// StripeUnitBlocks implements Layout.
func (r *RAID0) StripeUnitBlocks() int64 { return r.unit }

// Locate implements Layout.
func (r *RAID0) Locate(block int64) PBA {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row := unit / int64(r.disks)
	disk := int(unit % int64(r.disks))
	return PBA{Disk: disk, Block: row*r.unit + off}
}

// ParityOf implements Layout; RAID-0 has no parity.
func (r *RAID0) ParityOf(int64) (PBA, bool) { return PBA{Disk: -1}, false }

// ForEachExtent implements Layout, walking whole stripe rows: the row
// geometry is computed once per row and units advance disk by disk,
// instead of re-deriving (row, disk) from scratch for every unit as
// the reference per-unit path does.
func (r *RAID0) ForEachExtent(block, count int64, fn func(Extent)) {
	checkBlock(r, block, count)
	for count > 0 {
		u := block / r.unit
		off := block % r.unit
		row := u / int64(r.disks)
		base := row * r.unit
		for d := int(u % int64(r.disks)); d < r.disks && count > 0; d++ {
			n := r.unit - off
			if n > count {
				n = count
			}
			fn(Extent{
				Logical: block,
				Data:    PBA{Disk: d, Block: base + off},
				Parity:  PBA{Disk: -1},
				Count:   n,
			})
			block += n
			count -= n
			off = 0
		}
	}
}

// forEachUnitRun splits [block, block+count) at stripe-unit boundaries;
// within one unit data is contiguous on a single disk. It is the
// reference implementation of ForEachExtent — one Locate/ParityOf
// chain per unit — kept for the property tests that pin the
// row-batched walks against it (it showed in whole-experiment profiles
// once the monitor left the critical path).
func forEachUnitRun(l Layout, block, count int64, fn func(Extent)) {
	checkBlock(l, block, count)
	unit := l.StripeUnitBlocks()
	for count > 0 {
		inUnit := unit - block%unit
		if inUnit > count {
			inUnit = count
		}
		e := Extent{Logical: block, Data: l.Locate(block), Count: inUnit}
		if p, ok := l.ParityOf(block); ok {
			e.Parity = p
		} else {
			e.Parity = PBA{Disk: -1}
		}
		fn(e)
		block += inUnit
		count -= inUnit
	}
}

// group is one parity group of a RAID-5 or RAID-6 layout, carrying the
// precomputed rotation tables that make every address computation
// branch-free: the left-symmetric parity rotation repeats with period
// size, so for each phase (row % size) the tables directly answer
// "which in-group disk holds P (and Q)" and "which in-group disk holds
// data slot s" — no linear group scan, no parity-slot-skip branches on
// any per-unit path.
type group struct {
	firstDisk int // index of the group's first disk within the array
	size      int // disks in the group
	firstData int64

	dataSlots int   // data units per row: size-1 (RAID-5) or size-2 (RAID-6)
	pDisk     []int // phase → in-group disk holding P
	qDisk     []int // phase → in-group disk holding Q (RAID-6 only)
	dataDisk  []int // phase*dataSlots + slot → in-group disk holding the slot
}

// buildRotation fills the group's per-phase tables for nParity parity
// slots per row (1 = RAID-5, 2 = RAID-6), from the same rotation law
// (parityPos/parityPositions) the scalar reference paths use.
func (g *group) buildRotation(nParity int) {
	g.dataSlots = g.size - nParity
	g.pDisk = make([]int, g.size)
	if nParity == 2 {
		g.qDisk = make([]int, g.size)
	}
	g.dataDisk = make([]int, g.size*g.dataSlots)
	for phase := 0; phase < g.size; phase++ {
		pp := parityPos(int64(phase), g.size)
		qp := -1
		if nParity == 2 {
			pp, qp = parityPositions(int64(phase), g.size)
			g.qDisk[phase] = qp
		}
		g.pDisk[phase] = pp
		d := 0
		for slot := 0; slot < g.dataSlots; slot++ {
			for d == pp || d == qp {
				d++ // data slots occupy the non-parity disks in order
			}
			g.dataDisk[phase*g.dataSlots+slot] = d
			d++
		}
	}
}

// RAID5 is a left-symmetric rotated-parity layout with parity groups:
// a stripe row spans all disks; each group of ~groupSize disks holds
// its own rotated parity unit per row.
type RAID5 struct {
	disks      int
	unit       int64
	rows       int64
	groups     []group
	groupLUT   []int32 // data slot within a row → owning group index
	dataPerRow int64   // data units per row across all groups
	capacity   int64
}

// NewRAID5 builds a RAID-5 layout. groupSize disks per parity group
// (the trailing group may be smaller, but never smaller than 2).
func NewRAID5(disks int, groupSize int, blocksPerDisk, unitBlocks int64) *RAID5 {
	if disks < 2 || unitBlocks < 1 || blocksPerDisk < unitBlocks {
		panic("raid: invalid RAID5 parameters")
	}
	if groupSize < 2 || groupSize > disks {
		groupSize = disks
	}
	sizes := splitGroups(disks, groupSize)
	r := &RAID5{disks: disks, unit: unitBlocks, rows: blocksPerDisk / unitBlocks}
	first := 0
	for _, s := range sizes {
		g := group{firstDisk: first, size: s, firstData: r.dataPerRow}
		g.buildRotation(1)
		r.groups = append(r.groups, g)
		r.dataPerRow += int64(s - 1)
		first += s
	}
	r.groupLUT = buildGroupLUT(r.groups, r.dataPerRow)
	r.capacity = r.rows * r.dataPerRow * unitBlocks
	return r
}

// buildGroupLUT maps every data slot of a row to its owning group, so
// locating a unit is one table load instead of a linear group scan.
func buildGroupLUT(groups []group, dataPerRow int64) []int32 {
	lut := make([]int32, dataPerRow)
	for gi := range groups {
		g := &groups[gi]
		for s := int64(0); s < int64(g.dataSlots); s++ {
			lut[g.firstData+s] = int32(gi)
		}
	}
	return lut
}

// splitGroups partitions n disks into groups of size g, fixing up a
// trailing remainder of 1 (a group cannot be a lone parity disk).
func splitGroups(n, g int) []int {
	var sizes []int
	for rem := n; rem > 0; {
		s := g
		if s > rem {
			s = rem
		}
		sizes = append(sizes, s)
		rem -= s
	}
	if last := len(sizes) - 1; sizes[last] == 1 {
		// Borrow one disk from the previous group: ..., g, 1 → g-1, 2.
		sizes[last-1]--
		sizes[last]++
	}
	return sizes
}

// Disks implements Layout.
func (r *RAID5) Disks() int { return r.disks }

// DataBlocks implements Layout.
func (r *RAID5) DataBlocks() int64 { return r.capacity }

// BlocksPerDisk implements Layout.
func (r *RAID5) BlocksPerDisk() int64 { return r.rows * r.unit }

// StripeUnitBlocks implements Layout.
func (r *RAID5) StripeUnitBlocks() int64 { return r.unit }

// DataUnitsPerRow reports how many data stripe units one row holds
// across all parity groups (the array's effective stripe width).
func (r *RAID5) DataUnitsPerRow() int64 { return r.dataPerRow }

// locateUnit maps a data unit index to (row, group, slot) coordinates:
// one LUT load, no group scan.
func (r *RAID5) locateUnit(unit int64) (row int64, g *group, slot int) {
	row = unit / r.dataPerRow
	idx := unit % r.dataPerRow
	g = &r.groups[r.groupLUT[idx]]
	return row, g, int(idx - g.firstData)
}

// parityPos returns the slot (disk offset within the group) holding
// parity in the given row: left-symmetric rotation. It is the rotation
// law the per-phase group tables are built from, and the reference the
// LUT property tests pin against.
func parityPos(row int64, size int) int {
	return int(int64(size-1) - row%int64(size))
}

// Locate implements Layout: branch-free — the group comes from the
// row-slot LUT and the data disk from the group's per-phase rotation
// table, with no parity-skip branches.
func (r *RAID5) Locate(block int64) PBA {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row, grp, slot := r.locateUnit(unit)
	phase := int(row % int64(grp.size))
	d := grp.dataDisk[phase*grp.dataSlots+slot]
	return PBA{Disk: grp.firstDisk + d, Block: row*r.unit + off}
}

// ParityOf implements Layout.
func (r *RAID5) ParityOf(block int64) (PBA, bool) {
	checkBlock(r, block, 1)
	unit := block / r.unit
	off := block % r.unit
	row, grp, _ := r.locateUnit(unit)
	pp := grp.pDisk[row%int64(grp.size)]
	return PBA{Disk: grp.firstDisk + pp, Block: row*r.unit + off}, true
}

// ForEachExtent implements Layout; see forEachRowRun.
func (r *RAID5) ForEachExtent(block, count int64, fn func(Extent)) {
	checkBlock(r, block, count)
	r.forEachRowRun(block, count, 0, 0, fn)
}

// forEachRowRun emits exactly the extents forEachUnitRun emits, but
// batches the unit→(disk,block) mapping per stripe row: the row base
// and each group's rotation-table row are resolved once per group per
// row, and the data disk is a straight table load per slot — no
// per-unit locateUnit scan, no div/mod chain, no parity-skip branches.
// logOff/diskOff relocate the emitted extents, letting RAID5Plus walk a
// member set without a per-extent closure.
func (r *RAID5) forEachRowRun(block, count, logOff int64, diskOff int, fn func(Extent)) {
	for count > 0 {
		u := block / r.unit
		off := block % r.unit
		row := u / r.dataPerRow
		idx := u % r.dataPerRow // data slot within the row
		base := row * r.unit
		gi := int(r.groupLUT[idx])
		for count > 0 && idx < r.dataPerRow {
			grp := &r.groups[gi]
			phase := int(row % int64(grp.size))
			pDisk := diskOff + grp.firstDisk + grp.pDisk[phase]
			dd := grp.dataDisk[phase*grp.dataSlots : (phase+1)*grp.dataSlots]
			for slot := int(idx - grp.firstData); slot < grp.dataSlots && count > 0; slot++ {
				n := r.unit - off
				if n > count {
					n = count
				}
				fn(Extent{
					Logical: logOff + block,
					Data:    PBA{Disk: diskOff + grp.firstDisk + dd[slot], Block: base + off},
					Parity:  PBA{Disk: pDisk, Block: base + off},
					Count:   n,
				})
				block += n
				count -= n
				off = 0
				idx++
			}
			gi++
		}
	}
}

// set is one member array of a RAID-5+ aggregation.
type set struct {
	firstDisk  int
	layout     *RAID5
	firstBlock int64 // first logical block owned by this set
}

// RAID5Plus aggregates independent RAID-5 sets, modelling an array that
// has been expanded several times by adding whole new RAID-5 volumes
// (paper §5, Fig. 3b). Logical capacity is the concatenation of the
// sets, exactly as the figure shows (set 0 holds the first blocks, the
// next set continues after it): a volume grown by appending arrays.
// This segmentation is what limits RAID-5+ — locality concentrates in
// one set's few disks, and per-disk data shares differ between sets.
type RAID5Plus struct {
	disks    int
	unit     int64
	sets     []set
	capacity int64
}

// NewRAID5Plus builds an aggregation of RAID-5 sets with the given disk
// counts (each set is one parity group). The paper's 50-disk testbed
// uses sizes 10,3,4,5,7,9,12 — a 10-disk original grown by +30% steps.
func NewRAID5Plus(setSizes []int, blocksPerDisk, unitBlocks int64) *RAID5Plus {
	if len(setSizes) == 0 {
		panic("raid: RAID5Plus needs at least one set")
	}
	r := &RAID5Plus{unit: unitBlocks}
	first := 0
	for _, n := range setSizes {
		if n < 2 {
			panic("raid: RAID5Plus set smaller than 2 disks")
		}
		l := NewRAID5(n, n, blocksPerDisk, unitBlocks)
		r.sets = append(r.sets, set{firstDisk: first, layout: l, firstBlock: r.capacity})
		r.capacity += l.DataBlocks()
		first += n
	}
	r.disks = first
	return r
}

// PaperExpansionSizes returns the paper's RAID-5+ growth schedule: a
// 10-disk array expanded by ~30% per step until 50 disks.
func PaperExpansionSizes() []int { return []int{10, 3, 4, 5, 7, 9, 12} }

// Disks implements Layout.
func (r *RAID5Plus) Disks() int { return r.disks }

// DataBlocks implements Layout.
func (r *RAID5Plus) DataBlocks() int64 { return r.capacity }

// BlocksPerDisk implements Layout.
func (r *RAID5Plus) BlocksPerDisk() int64 { return r.sets[0].layout.BlocksPerDisk() }

// StripeUnitBlocks implements Layout.
func (r *RAID5Plus) StripeUnitBlocks() int64 { return r.unit }

// Sets returns the disk count of each member set.
func (r *RAID5Plus) Sets() []int {
	sizes := make([]int, len(r.sets))
	for i, s := range r.sets {
		sizes[i] = s.layout.Disks()
	}
	return sizes
}

// locateSet finds the set owning a logical block.
func (r *RAID5Plus) locateSet(block int64) set {
	for i := len(r.sets) - 1; i >= 0; i-- {
		if block >= r.sets[i].firstBlock {
			return r.sets[i]
		}
	}
	panic("raid: block out of range") // unreachable: caller range-checked
}

// Locate implements Layout.
func (r *RAID5Plus) Locate(block int64) PBA {
	checkBlock(r, block, 1)
	s := r.locateSet(block)
	p := s.layout.Locate(block - s.firstBlock)
	p.Disk += s.firstDisk
	return p
}

// ParityOf implements Layout.
func (r *RAID5Plus) ParityOf(block int64) (PBA, bool) {
	checkBlock(r, block, 1)
	s := r.locateSet(block)
	p, ok := s.layout.ParityOf(block - s.firstBlock)
	p.Disk += s.firstDisk
	return p, ok
}

// ForEachExtent implements Layout: the run is split at member-set
// boundaries and each segment walked by the owning set's row-batched
// path, relocated by the set's disk and block offsets.
func (r *RAID5Plus) ForEachExtent(block, count int64, fn func(Extent)) {
	checkBlock(r, block, count)
	for count > 0 {
		s := r.locateSet(block)
		n := count
		if end := s.firstBlock + s.layout.DataBlocks(); end-block < n {
			n = end - block
		}
		s.layout.forEachRowRun(block-s.firstBlock, n, s.firstBlock, s.firstDisk, fn)
		block += n
		count -= n
	}
}
