package raid

// SpreadGranule is the contiguity granule of SpreadLayout: logical
// runs inside one granule stay physically contiguous; distinct granules
// scatter across the underlying address space. 64 blocks (256 KiB)
// comfortably covers the largest request the workloads issue, so no
// single request is ever fragmented by spreading.
const SpreadGranule = 64

// SpreadLayout decorates a Layout so that a dataset smaller than the
// array spreads uniformly over the whole underlying address space
// instead of packing into its start. This reproduces how traced
// volumes map onto a big array (the paper maps datasets "uniformly so
// that all disks have the same access probability") and is what makes
// hot data "randomly spread over the entire disk" — the dispersion
// CRAID's cache partition subsequently undoes (§3, benefit iv).
type SpreadLayout struct {
	inner Layout
	slots int64 // granule slots in the inner space
	mult  int64 // modular-bijection multiplier over slots
	data  int64
}

// NewSpreadLayout spreads datasetBlocks over inner's address space.
// Granules are placed by a modular bijection rather than a constant
// stride: a fixed stride aliases with the disks' track geometry and
// makes results resonate with incidental parameters (rotational phases
// repeat every stride), whereas the bijection decorrelates positions.
func NewSpreadLayout(inner Layout, datasetBlocks int64) *SpreadLayout {
	if datasetBlocks < 1 || datasetBlocks > inner.DataBlocks() {
		panic("raid: dataset does not fit the inner layout")
	}
	slots := inner.DataBlocks() / SpreadGranule
	if slots < 1 {
		slots = 1
	}
	mult := int64(float64(slots) * 0.6180339887)
	if mult < 1 {
		mult = 1
	}
	for gcd64(mult, slots) != 1 {
		mult++
	}
	return &SpreadLayout{inner: inner, slots: slots, mult: mult, data: datasetBlocks}
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Factor returns the ratio of available granule slots to dataset
// granules (1 = dense).
func (s *SpreadLayout) Factor() int64 {
	granules := (s.data + SpreadGranule - 1) / SpreadGranule
	f := s.slots / granules
	if f < 1 {
		f = 1
	}
	return f
}

// spreadAddr maps a dataset block to the inner address space.
func (s *SpreadLayout) spreadAddr(b int64) int64 {
	g, off := b/SpreadGranule, b%SpreadGranule
	slot := g * s.mult % s.slots
	return slot*SpreadGranule + off
}

// Disks implements Layout.
func (s *SpreadLayout) Disks() int { return s.inner.Disks() }

// DataBlocks implements Layout: the dataset size, not the raw capacity.
func (s *SpreadLayout) DataBlocks() int64 { return s.data }

// BlocksPerDisk implements Layout (the full underlying footprint).
func (s *SpreadLayout) BlocksPerDisk() int64 { return s.inner.BlocksPerDisk() }

// StripeUnitBlocks implements Layout.
func (s *SpreadLayout) StripeUnitBlocks() int64 { return s.inner.StripeUnitBlocks() }

// Locate implements Layout.
func (s *SpreadLayout) Locate(block int64) PBA {
	checkBlock(s, block, 1)
	return s.inner.Locate(s.spreadAddr(block))
}

// ParityOf implements Layout.
func (s *SpreadLayout) ParityOf(block int64) (PBA, bool) {
	checkBlock(s, block, 1)
	return s.inner.ParityOf(s.spreadAddr(block))
}

// QParityOf implements DualParity when the underlying layout does
// (ok=false otherwise), so spreading composes with RAID-6.
func (s *SpreadLayout) QParityOf(block int64) (PBA, bool) {
	d, ok := s.inner.(DualParity)
	if !ok {
		return PBA{Disk: -1}, false
	}
	checkBlock(s, block, 1)
	return d.QParityOf(s.spreadAddr(block))
}

// ForEachExtent implements Layout: runs split at granule boundaries
// first (where physical placement jumps), then at the inner layout's
// stripe-unit boundaries.
func (s *SpreadLayout) ForEachExtent(block, count int64, fn func(Extent)) {
	checkBlock(s, block, count)
	for count > 0 {
		inGranule := SpreadGranule - block%SpreadGranule
		if inGranule > count {
			inGranule = count
		}
		base := block
		s.inner.ForEachExtent(s.spreadAddr(block), inGranule, func(e Extent) {
			e.Logical = base + (e.Logical - s.spreadAddr(base))
			fn(e)
		})
		block += inGranule
		count -= inGranule
	}
}
