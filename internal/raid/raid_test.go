package raid

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestRAID0RoundRobin(t *testing.T) {
	r := NewRAID0(4, 1000, 10)
	// Units rotate across disks; offsets advance every full row.
	cases := []struct {
		block int64
		want  PBA
	}{
		{0, PBA{0, 0}},
		{9, PBA{0, 9}},
		{10, PBA{1, 0}},
		{39, PBA{3, 9}},
		{40, PBA{0, 10}},
	}
	for _, c := range cases {
		if got := r.Locate(c.block); got != c.want {
			t.Errorf("Locate(%d) = %+v, want %+v", c.block, got, c.want)
		}
	}
	if _, ok := r.ParityOf(0); ok {
		t.Error("RAID0 reported parity")
	}
	if r.DataBlocks() != 4000 {
		t.Errorf("DataBlocks = %d, want 4000", r.DataBlocks())
	}
}

// TestRAID5MatchesPaperFigure3a verifies the layout against the
// concrete 8-disk example in the paper's Fig. 3a (parity groups of 3,
// stripe unit 1): row 0 is [0 1 p0 | 2 3 p1 | 4 p2], row 1 is
// [5 p3 6 | 7 p4 8 | p5 9].
func TestRAID5MatchesPaperFigure3a(t *testing.T) {
	r := NewRAID5(8, 3, 100, 1)
	type loc struct {
		disk  int
		block int64
	}
	wantData := map[int64]loc{
		0: {0, 0}, 1: {1, 0}, 2: {3, 0}, 3: {4, 0}, 4: {6, 0},
		5: {0, 1}, 6: {2, 1}, 7: {3, 1}, 8: {5, 1}, 9: {7, 1},
	}
	for b, w := range wantData {
		got := r.Locate(b)
		if got.Disk != w.disk || got.Block != w.block {
			t.Errorf("Locate(%d) = %+v, want disk %d block %d", b, got, w.disk, w.block)
		}
	}
	wantParity := map[int64]int{
		0: 2, 1: 2, // p0 on disk 2
		2: 5, 3: 5, // p1 on disk 5
		4: 7,       // p2 on disk 7
		5: 1, 6: 1, // p3 on disk 1
		7: 4, 8: 4, // p4 on disk 4
		9: 6, // p5 on disk 6
	}
	for b, wd := range wantParity {
		p, ok := r.ParityOf(b)
		if !ok || p.Disk != wd {
			t.Errorf("ParityOf(%d) = %+v ok=%v, want disk %d", b, p, ok, wd)
		}
	}
}

func TestRAID5Capacity(t *testing.T) {
	// 50 disks, groups of 10: 5 parity units per row, 45 data units.
	r := NewRAID5(50, 10, 32*100, 32)
	if got := r.DataUnitsPerRow(); got != 45 {
		t.Errorf("DataUnitsPerRow = %d, want 45", got)
	}
	if got := r.DataBlocks(); got != 100*45*32 {
		t.Errorf("DataBlocks = %d, want %d", got, 100*45*32)
	}
}

func TestRAID5ParityNeverOnDataDisk(t *testing.T) {
	r := NewRAID5(8, 3, 1000, 4)
	for b := int64(0); b < r.DataBlocks(); b++ {
		d := r.Locate(b)
		p, ok := r.ParityOf(b)
		if !ok {
			t.Fatalf("no parity for block %d", b)
		}
		if p.Disk == d.Disk {
			t.Fatalf("block %d: parity and data on disk %d", b, d.Disk)
		}
		if p.Block != d.Block {
			t.Fatalf("block %d: parity offset %d != data offset %d (must align within row)",
				b, p.Block, d.Block)
		}
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	// Within one parity group, every disk must hold parity for an equal
	// share of rows (left-symmetric rotation balances parity I/O).
	r := NewRAID5(5, 5, 5*32, 32) // 5 rows exactly
	count := make(map[int]int)
	for row := int64(0); row < 5; row++ {
		b := row * r.DataUnitsPerRow() * 32
		p, _ := r.ParityOf(b)
		count[p.Disk]++
	}
	for d := 0; d < 5; d++ {
		if count[d] != 1 {
			t.Errorf("disk %d holds parity for %d of 5 rows, want exactly 1", d, count[d])
		}
	}
}

func TestRAID5LocateInjective(t *testing.T) {
	r := NewRAID5(8, 3, 256, 4)
	seen := make(map[PBA]int64)
	for b := int64(0); b < r.DataBlocks(); b++ {
		p := r.Locate(b)
		if prev, dup := seen[p]; dup {
			t.Fatalf("blocks %d and %d both map to %+v", prev, b, p)
		}
		seen[p] = b
		if p.Block >= r.BlocksPerDisk() {
			t.Fatalf("block %d maps beyond per-disk budget: %+v", b, p)
		}
	}
}

func TestSplitGroupsNoLoneParity(t *testing.T) {
	cases := []struct {
		n, g int
		want []int
	}{
		{8, 3, []int{3, 3, 2}},
		{7, 3, []int{3, 2, 2}},
		{50, 10, []int{10, 10, 10, 10, 10}},
		{5, 10, []int{5}},
		{4, 2, []int{2, 2}},
	}
	for _, c := range cases {
		got := splitGroups(c.n, c.g)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("splitGroups(%d,%d) = %v, want %v", c.n, c.g, got, c.want)
		}
		sum := 0
		for _, s := range got {
			if s < 2 {
				t.Errorf("splitGroups(%d,%d) produced group of %d", c.n, c.g, s)
			}
			sum += s
		}
		if sum != c.n {
			t.Errorf("splitGroups(%d,%d) covers %d disks", c.n, c.g, sum)
		}
	}
}

func TestRAID5PlusPaperSchedule(t *testing.T) {
	sizes := PaperExpansionSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 50 {
		t.Fatalf("paper expansion schedule sums to %d disks, want 50", total)
	}
	r := NewRAID5Plus(sizes, 32*100, 32)
	if r.Disks() != 50 {
		t.Errorf("Disks = %d, want 50", r.Disks())
	}
	// Data units per row across all sets: 50 disks - 7 parity = 43.
	if want := int64(100 * 43 * 32); r.DataBlocks() != want {
		t.Errorf("DataBlocks = %d, want %d", r.DataBlocks(), want)
	}
}

// TestRAID5PlusConcatenates verifies the Fig. 3b structure: the first
// set owns the first span of logical blocks, the next set continues
// after it.
func TestRAID5PlusConcatenates(t *testing.T) {
	r := NewRAID5Plus([]int{5, 3}, 16, 4) // set0: 4 rows × 4 units; set1: 4 rows × 2 units
	set0Cap := int64(4 * 4 * 4)           // 64 blocks
	for b := int64(0); b < set0Cap; b++ {
		if d := r.Locate(b); d.Disk >= 5 {
			t.Fatalf("block %d (set 0 range) on disk %d", b, d.Disk)
		}
	}
	for b := set0Cap; b < r.DataBlocks(); b++ {
		if d := r.Locate(b); d.Disk < 5 {
			t.Fatalf("block %d (set 1 range) on disk %d", b, d.Disk)
		}
	}
}

func TestRAID5PlusDisjointSets(t *testing.T) {
	r := NewRAID5Plus([]int{5, 3}, 64, 4)
	// All addresses must stay inside the owning set's disk range, and
	// parity must live in the same set as its data.
	for b := int64(0); b < r.DataBlocks(); b++ {
		d := r.Locate(b)
		p, ok := r.ParityOf(b)
		if !ok {
			t.Fatalf("no parity for block %d", b)
		}
		inSet0 := d.Disk < 5
		pInSet0 := p.Disk < 5
		if inSet0 != pInSet0 {
			t.Fatalf("block %d: data disk %d and parity disk %d in different sets",
				b, d.Disk, p.Disk)
		}
	}
}

func TestRAID5PlusInjectiveAndUniform(t *testing.T) {
	r := NewRAID5Plus([]int{4, 3}, 128, 4)
	seen := make(map[PBA]bool)
	perDisk := make(map[int]int)
	for b := int64(0); b < r.DataBlocks(); b++ {
		p := r.Locate(b)
		if seen[p] {
			t.Fatalf("duplicate mapping for %+v", p)
		}
		seen[p] = true
		perDisk[p.Disk]++
	}
	// Every disk must receive data (interleaved cycles use all sets).
	for d := 0; d < r.Disks(); d++ {
		if perDisk[d] == 0 {
			t.Errorf("disk %d received no data blocks", d)
		}
	}
}

func TestForEachExtentCoversRun(t *testing.T) {
	layouts := []Layout{
		NewRAID0(4, 1024, 32),
		NewRAID5(8, 3, 1024, 32),
		NewRAID5Plus([]int{4, 3}, 1024, 32),
	}
	for li, l := range layouts {
		var covered int64
		prevEnd := int64(10) // starting block
		l.ForEachExtent(10, 100, func(e Extent) {
			if e.Logical != prevEnd {
				t.Errorf("layout %d: extent starts at %d, want %d (gap/overlap)",
					li, e.Logical, prevEnd)
			}
			if e.Count < 1 || e.Count > l.StripeUnitBlocks() {
				t.Errorf("layout %d: extent count %d outside (0, unit]", li, e.Count)
			}
			// Extent must be physically contiguous: last block of the
			// extent maps to Data.Block + Count - 1 on the same disk.
			lastPBA := l.Locate(e.Logical + e.Count - 1)
			if lastPBA.Disk != e.Data.Disk || lastPBA.Block != e.Data.Block+e.Count-1 {
				t.Errorf("layout %d: extent at %d not contiguous", li, e.Logical)
			}
			covered += e.Count
			prevEnd = e.Logical + e.Count
		})
		if covered != 100 {
			t.Errorf("layout %d: extents cover %d blocks, want 100", li, covered)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	r := NewRAID5(4, 4, 128, 4)
	for _, fn := range map[string]func(){
		"Locate(-1)":       func() { r.Locate(-1) },
		"Locate(capacity)": func() { r.Locate(r.DataBlocks()) },
		"ForEachExtent":    func() { r.ForEachExtent(r.DataBlocks()-1, 2, func(Extent) {}) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for random RAID-5 geometries, Locate is injective and
// parity aligns with data offsets, never sharing a disk.
func TestPropertyRAID5Invariants(t *testing.T) {
	f := func(nd, gs, rowsRaw uint8) bool {
		disks := int(nd%14) + 2 // 2..15
		gsize := int(gs%10) + 2 // 2..11
		rows := int64(rowsRaw%20) + 1
		unit := int64(4)
		r := NewRAID5(disks, gsize, rows*unit, unit)
		seen := make(map[PBA]bool)
		for b := int64(0); b < r.DataBlocks(); b++ {
			d := r.Locate(b)
			if seen[d] {
				return false
			}
			seen[d] = true
			p, ok := r.ParityOf(b)
			if !ok || p.Disk == d.Disk || p.Block != d.Block {
				return false
			}
			if d.Disk < 0 || d.Disk >= disks || p.Disk < 0 || p.Disk >= disks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: RAID5Plus capacity equals the sum over cycles of per-set
// data widths, and every block round-trips through its set correctly.
func TestPropertyRAID5PlusInvariants(t *testing.T) {
	f := func(a, b, c uint8) bool {
		sizes := []int{int(a%6) + 2, int(b%6) + 2, int(c%6) + 2}
		unit := int64(4)
		r := NewRAID5Plus(sizes, 16*unit, unit)
		seen := make(map[PBA]bool)
		for blk := int64(0); blk < r.DataBlocks(); blk++ {
			d := r.Locate(blk)
			if seen[d] || d.Disk < 0 || d.Disk >= r.Disks() {
				return false
			}
			seen[d] = true
			p, ok := r.ParityOf(blk)
			if !ok || p.Disk == d.Disk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRAID5Locate(b *testing.B) {
	r := NewRAID5(50, 10, 1<<20, 32)
	cap := r.DataBlocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Locate(int64(i) % cap)
	}
}

func BenchmarkRAID5PlusLocate(b *testing.B) {
	r := NewRAID5Plus(PaperExpansionSizes(), 1<<20, 32)
	cap := r.DataBlocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Locate(int64(i) % cap)
	}
}
