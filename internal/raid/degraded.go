package raid

import "fmt"

// Redundant is implemented by layouts whose stripe rows can
// reconstruct a lost unit from the surviving units of the same parity
// group's row. It reuses the rotation-table geometry: every disk of a
// group holds exactly one unit of each row, at the same device block
// range (row*unit+off), so the peers of any block are simply the other
// group members and a reconstruction read targets the same on-device
// range on each of them.
type Redundant interface {
	Layout
	// ParityUnits reports how many simultaneous device losses a parity
	// group survives (1 for RAID-5, 2 for RAID-6; 0 means the layout
	// has no redundancy and callers must treat every loss as data
	// loss).
	ParityUnits() int
	// RowPeers appends to buf the other disks of the parity group row
	// containing block — the devices a degraded read of block must
	// consult. Each holds its unit of the row at the same device block
	// range as block's own unit.
	RowPeers(block int64, buf []int) []int
	// DiskPeers appends to buf the other members of the parity group
	// containing disk — the read set of a whole-disk rebuild.
	DiskPeers(disk int, buf []int) []int
}

// groupPeers appends the other members of the parity group containing
// disk.
func groupPeers(groups []group, disk int, buf []int) []int {
	for gi := range groups {
		g := &groups[gi]
		if disk >= g.firstDisk && disk < g.firstDisk+g.size {
			for d := 0; d < g.size; d++ {
				if g.firstDisk+d != disk {
					buf = append(buf, g.firstDisk+d)
				}
			}
			return buf
		}
	}
	panic(fmt.Sprintf("raid: disk %d outside every parity group", disk))
}

// rowPeers appends the group members other than the one holding the
// block's own data unit.
func rowPeers(grp *group, row int64, slot int, buf []int) []int {
	phase := int(row % int64(grp.size))
	own := grp.dataDisk[phase*grp.dataSlots+slot]
	for d := 0; d < grp.size; d++ {
		if d != own {
			buf = append(buf, grp.firstDisk+d)
		}
	}
	return buf
}

// ParityUnits implements Redundant.
func (r *RAID5) ParityUnits() int { return 1 }

// RowPeers implements Redundant.
func (r *RAID5) RowPeers(block int64, buf []int) []int {
	checkBlock(r, block, 1)
	row, grp, slot := r.locateUnit(block / r.unit)
	return rowPeers(grp, row, slot, buf)
}

// DiskPeers implements Redundant.
func (r *RAID5) DiskPeers(disk int, buf []int) []int {
	return groupPeers(r.groups, disk, buf)
}

// ParityUnits implements Redundant.
func (r *RAID6) ParityUnits() int { return 2 }

// RowPeers implements Redundant.
func (r *RAID6) RowPeers(block int64, buf []int) []int {
	checkBlock(r, block, 1)
	row, grp, slot := r.locateUnit(block / r.unit)
	return rowPeers(grp, row, slot, buf)
}

// DiskPeers implements Redundant.
func (r *RAID6) DiskPeers(disk int, buf []int) []int {
	return groupPeers(r.groups, disk, buf)
}

// ParityUnits implements Redundant (each member set is one RAID-5
// parity group).
func (r *RAID5Plus) ParityUnits() int { return 1 }

// RowPeers implements Redundant, delegating to the owning member set
// with its disk offset applied.
func (r *RAID5Plus) RowPeers(block int64, buf []int) []int {
	checkBlock(r, block, 1)
	s := r.locateSet(block)
	n := len(buf)
	buf = s.layout.RowPeers(block-s.firstBlock, buf)
	for i := n; i < len(buf); i++ {
		buf[i] += s.firstDisk
	}
	return buf
}

// DiskPeers implements Redundant.
func (r *RAID5Plus) DiskPeers(disk int, buf []int) []int {
	for i := len(r.sets) - 1; i >= 0; i-- {
		s := r.sets[i]
		if disk >= s.firstDisk {
			n := len(buf)
			buf = s.layout.DiskPeers(disk-s.firstDisk, buf)
			for k := n; k < len(buf); k++ {
				buf[k] += s.firstDisk
			}
			return buf
		}
	}
	panic(fmt.Sprintf("raid: disk %d out of range", disk))
}

// ParityUnits implements Redundant when the inner layout does; it
// reports 0 otherwise, which callers must read as "no reconstruction
// possible" (a SpreadLayout over RAID-0 satisfies the interface
// assertion but survives no losses).
func (s *SpreadLayout) ParityUnits() int {
	if r, ok := s.inner.(Redundant); ok {
		return r.ParityUnits()
	}
	return 0
}

// RowPeers implements Redundant: block translates through the spread
// bijection, then the inner geometry answers. The returned device
// block ranges are inner-space rows, matching what Locate/ForEachExtent
// report for the same block.
func (s *SpreadLayout) RowPeers(block int64, buf []int) []int {
	r, ok := s.inner.(Redundant)
	if !ok {
		return buf
	}
	checkBlock(s, block, 1)
	return r.RowPeers(s.spreadAddr(block), buf)
}

// DiskPeers implements Redundant (disk indices are unaffected by
// spreading).
func (s *SpreadLayout) DiskPeers(disk int, buf []int) []int {
	if r, ok := s.inner.(Redundant); ok {
		return r.DiskPeers(disk, buf)
	}
	return buf
}

// RebuildWalker enumerates, stripe row by stripe row, the units a
// failed disk holds together with the peer disks a rebuild must read
// to reconstruct each unit. Every group disk holds one unit per row at
// the same device offsets, so the walk is a flat scan of the device's
// rows: unit r lives at device blocks [r*unit, (r+1)*unit) and its
// peers are the same group members for every row. The core's fault
// runtime turns each step into rate-limited read-peers/write-unit
// traffic on the simulation engine.
type RebuildWalker struct {
	peers []int
	unit  int64
	rows  int64
	row   int64
}

// NewRebuildWalker returns a walker over the units disk holds in l.
func NewRebuildWalker(l Redundant, disk int) *RebuildWalker {
	if disk < 0 || disk >= l.Disks() {
		panic(fmt.Sprintf("raid: rebuild disk %d out of range (%d disks)", disk, l.Disks()))
	}
	unit := l.StripeUnitBlocks()
	return &RebuildWalker{
		peers: l.DiskPeers(disk, nil),
		unit:  unit,
		rows:  l.BlocksPerDisk() / unit,
	}
}

// Rows reports how many stripe-row units the walk covers.
func (w *RebuildWalker) Rows() int64 { return w.rows }

// UnitBlocks reports the blocks reconstructed per row.
func (w *RebuildWalker) UnitBlocks() int64 { return w.unit }

// Peers reports the disks each reconstruction reads (constant across
// rows). The slice is owned by the walker.
func (w *RebuildWalker) Peers() []int { return w.peers }

// Next returns the device block range of the next unit to reconstruct
// and the peers to read it from; ok is false once the disk has been
// fully walked.
func (w *RebuildWalker) Next() (block, count int64, peers []int, ok bool) {
	if w.row >= w.rows {
		return 0, 0, nil, false
	}
	block = w.row * w.unit
	w.row++
	return block, w.unit, w.peers, true
}

// NextRun returns the device block range of the next up-to-maxRows
// stripe rows as ONE contiguous run, with the row count it covers.
// Consecutive rows of a rebuild are always device-contiguous — unit r
// occupies exactly [r*unit, (r+1)*unit) on every group disk — so a
// batch of rows is one read per peer and one write to the spare, and
// the group/rotation geometry is resolved once per batch instead of
// once per unit. Covers exactly the blocks repeated Next calls cover,
// in the same order (property-pinned in degraded_test.go). maxRows < 1
// is treated as 1.
func (w *RebuildWalker) NextRun(maxRows int64) (block, count int64, rows int64, peers []int, ok bool) {
	if w.row >= w.rows {
		return 0, 0, 0, nil, false
	}
	if maxRows < 1 {
		maxRows = 1
	}
	rows = w.rows - w.row
	if rows > maxRows {
		rows = maxRows
	}
	block = w.row * w.unit
	w.row += rows
	return block, rows * w.unit, rows, w.peers, true
}
