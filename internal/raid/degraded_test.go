package raid

import (
	"reflect"
	"sort"
	"testing"
)

// parityGroupsOf recovers each layout's parity-group membership with no
// knowledge of the rotation tables: scan every logical block, and put
// the disks its data and parity units land on in the same group
// (connected components over stripe co-membership). Parity rotation
// guarantees every pair of group disks eventually co-occurs, so the
// components converge to the true groups.
func parityGroupsOf(t *testing.T, l Layout) []int {
	t.Helper()
	comp := make([]int, l.Disks())
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	union := func(a, b int) { comp[find(a)] = find(b) }
	q, _ := l.(interface{ QParityOf(int64) (PBA, bool) })
	for b := int64(0); b < l.DataBlocks(); b++ {
		data := l.Locate(b)
		if p, ok := l.ParityOf(b); ok {
			union(data.Disk, p.Disk)
			if q != nil {
				if qp, ok := q.QParityOf(b); ok {
					union(data.Disk, qp.Disk)
				}
			}
		}
	}
	roots := make([]int, l.Disks())
	for i := range roots {
		roots[i] = find(i)
	}
	return roots
}

// expectPeers lists the disks sharing a parity group with disk, minus
// disk itself, sorted.
func expectPeers(groups []int, disk int) []int {
	var out []int
	for d, g := range groups {
		if d != disk && g == groups[disk] {
			out = append(out, d)
		}
	}
	return out
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	if len(c) == 0 {
		return nil
	}
	return c
}

// degradedLayouts enumerates every Redundant implementation under
// test, each small enough for an exhaustive per-block scan.
func degradedLayouts(t *testing.T) map[string]Redundant {
	t.Helper()
	spreadInner := NewRAID5(5, 5, 160, 4)
	return map[string]Redundant{
		"raid5":        NewRAID5(5, 5, 160, 4),
		"raid5-2grp":   NewRAID5(10, 5, 160, 4),
		"raid6":        NewRAID6(6, 6, 160, 4),
		"raid5plus":    NewRAID5Plus([]int{5, 5}, 160, 4),
		"spread-raid5": NewSpreadLayout(spreadInner, spreadInner.DataBlocks()),
	}
}

// TestRowPeersMatchesBruteForceReference pins RowPeers against the
// scan-derived reference on every redundant layout: the peers of any
// block are exactly the other members of its parity group, for every
// single block of the layout.
func TestRowPeersMatchesBruteForceReference(t *testing.T) {
	for name, l := range degradedLayouts(t) {
		groups := parityGroupsOf(t, l)
		for b := int64(0); b < l.DataBlocks(); b++ {
			got := sortedCopy(l.RowPeers(b, nil))
			want := expectPeers(groups, l.Locate(b).Disk)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: RowPeers(%d) = %v, reference says %v", name, b, got, want)
			}
		}
	}
}

// TestRowPeersUniformRowInvariant pins the property the degraded read
// path relies on: every peer holds its unit of the row at the same
// device block range as the lost unit, i.e. all units of a stripe row
// live at identical device offsets.
func TestRowPeersUniformRowInvariant(t *testing.T) {
	for name, l := range degradedLayouts(t) {
		if name == "spread-raid5" {
			// Spread layouts answer in inner-space rows; the invariant
			// holds for the translated address, checked via the inner
			// layout above.
			continue
		}
		unit := l.StripeUnitBlocks()
		// Collect where each (disk, deviceRow) pair is parity for
		// cross-checking data rows: every data unit's device row must
		// equal its parity unit's device row.
		for b := int64(0); b < l.DataBlocks(); b += unit {
			data := l.Locate(b)
			p, ok := l.ParityOf(b)
			if !ok {
				continue
			}
			if data.Block/unit != p.Block/unit {
				t.Fatalf("%s: block %d data row %d != parity row %d",
					name, b, data.Block/unit, p.Block/unit)
			}
		}
	}
}

// TestDiskPeersMatchesGroups pins DiskPeers against the same
// reference, for every disk.
func TestDiskPeersMatchesGroups(t *testing.T) {
	for name, l := range degradedLayouts(t) {
		groups := parityGroupsOf(t, l)
		for d := 0; d < l.Disks(); d++ {
			got := sortedCopy(l.DiskPeers(d, nil))
			want := expectPeers(groups, d)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: DiskPeers(%d) = %v, reference says %v", name, d, got, want)
			}
		}
	}
}

// TestRowPeersAppendsToBuffer pins the append contract: existing
// buffer contents are preserved.
func TestRowPeersAppendsToBuffer(t *testing.T) {
	l := NewRAID5(5, 5, 160, 4)
	buf := []int{-7}
	out := l.RowPeers(0, buf)
	if out[0] != -7 || len(out) != 5 {
		t.Fatalf("RowPeers did not append: %v", out)
	}
}

func TestParityUnits(t *testing.T) {
	spreadInner := NewRAID5(5, 5, 160, 4)
	cases := []struct {
		name string
		l    Redundant
		want int
	}{
		{"raid5", NewRAID5(5, 5, 160, 4), 1},
		{"raid6", NewRAID6(6, 6, 160, 4), 2},
		{"raid5plus", NewRAID5Plus([]int{5, 5}, 160, 4), 1},
		{"spread-raid5", NewSpreadLayout(spreadInner, spreadInner.DataBlocks()), 1},
		{"spread-raid0", NewSpreadLayout(NewRAID0(4, 160, 4), 600), 0},
	}
	for _, tc := range cases {
		if got := tc.l.ParityUnits(); got != tc.want {
			t.Errorf("%s: ParityUnits() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestSpreadRowPeersConsistentWithInner pins that spreading does not
// change geometry answers: a spread block's peers equal the inner
// layout's peers for the translated address — verified indirectly by
// checking the spread answer against the inner answer at the address
// Locate reports.
func TestSpreadRowPeersConsistentWithInner(t *testing.T) {
	inner := NewRAID5(5, 5, 160, 4)
	s := NewSpreadLayout(inner, inner.DataBlocks())
	for b := int64(0); b < s.DataBlocks(); b += 7 {
		got := sortedCopy(s.RowPeers(b, nil))
		// The spread block's physical location identifies its stripe:
		// find an inner logical block with the same location and ask
		// the inner layout. Locate is a bijection, so matching the
		// (disk, block) pair via the spread address is exact.
		want := sortedCopy(inner.RowPeers(s.spreadAddr(b), nil))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("spread RowPeers(%d) = %v, inner says %v", b, got, want)
		}
	}
}

// TestRebuildWalkerCoversDisk pins that the walk enumerates exactly
// the device's rows, in order, with DiskPeers as the read set.
func TestRebuildWalkerCoversDisk(t *testing.T) {
	for name, l := range degradedLayouts(t) {
		for _, d := range []int{0, l.Disks() - 1} {
			w := NewRebuildWalker(l, d)
			unit := l.StripeUnitBlocks()
			if w.Rows() != l.BlocksPerDisk()/unit || w.UnitBlocks() != unit {
				t.Fatalf("%s disk %d: walker shape rows=%d unit=%d", name, d, w.Rows(), w.UnitBlocks())
			}
			if got, want := sortedCopy(w.Peers()), sortedCopy(l.DiskPeers(d, nil)); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s disk %d: walker peers %v, DiskPeers %v", name, d, got, want)
			}
			var next int64
			steps := int64(0)
			for {
				blk, n, peers, ok := w.Next()
				if !ok {
					break
				}
				if blk != next || n != unit || len(peers) != len(w.Peers()) {
					t.Fatalf("%s disk %d: step %d = (%d,+%d), want (%d,+%d)", name, d, steps, blk, n, next, unit)
				}
				next += n
				steps++
			}
			if next != l.BlocksPerDisk() || steps != w.Rows() {
				t.Fatalf("%s disk %d: walk covered %d of %d blocks in %d steps", name, d, next, l.BlocksPerDisk(), steps)
			}
		}
	}
}

func TestRebuildWalkerRejectsBadDisk(t *testing.T) {
	l := NewRAID5(5, 5, 160, 4)
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRebuildWalker(%d) did not panic", bad)
				}
			}()
			NewRebuildWalker(l, bad)
		}()
	}
}

// TestRebuildWalkerNextRunMatchesNext pins the row-batched walk against
// the per-unit reference: for every batch size, NextRun must cover
// exactly the blocks repeated Next calls cover, in the same order, as
// contiguous runs whose row counts sum to Rows(), with the same peer
// set at every step.
func TestRebuildWalkerNextRunMatchesNext(t *testing.T) {
	for name, l := range degradedLayouts(t) {
		for _, d := range []int{0, l.Disks() - 1} {
			// Per-unit reference walk.
			ref := NewRebuildWalker(l, d)
			var refBlocks []int64
			for {
				blk, n, _, ok := ref.Next()
				if !ok {
					break
				}
				for b := blk; b < blk+n; b++ {
					refBlocks = append(refBlocks, b)
				}
			}
			rows := NewRebuildWalker(l, d).Rows()
			for _, maxRows := range []int64{0, 1, 2, 3, 8, rows, rows + 5} {
				w := NewRebuildWalker(l, d)
				var gotBlocks []int64
				var gotRows int64
				for {
					blk, n, nrows, peers, ok := w.NextRun(maxRows)
					if !ok {
						break
					}
					if n != nrows*w.UnitBlocks() {
						t.Fatalf("%s disk %d maxRows %d: run count %d != rows %d * unit %d",
							name, d, maxRows, n, nrows, w.UnitBlocks())
					}
					want := maxRows
					if want < 1 {
						want = 1
					}
					if nrows > want {
						t.Fatalf("%s disk %d: NextRun(%d) returned %d rows", name, d, maxRows, nrows)
					}
					if !reflect.DeepEqual(sortedCopy(peers), sortedCopy(w.Peers())) {
						t.Fatalf("%s disk %d maxRows %d: run peers %v, walker peers %v",
							name, d, maxRows, peers, w.Peers())
					}
					for b := blk; b < blk+n; b++ {
						gotBlocks = append(gotBlocks, b)
					}
					gotRows += nrows
				}
				if gotRows != rows {
					t.Fatalf("%s disk %d maxRows %d: covered %d rows, want %d",
						name, d, maxRows, gotRows, rows)
				}
				if !reflect.DeepEqual(gotBlocks, refBlocks) {
					t.Fatalf("%s disk %d maxRows %d: batched coverage diverges from per-unit walk",
						name, d, maxRows)
				}
			}
		}
	}
}

// TestRebuildWalkerNextRunAllocFree gates the batched walk at zero
// allocations per step: the peers slice is owned by the walker and a
// run is pure index arithmetic, so a full-device walk must not touch
// the heap.
func TestRebuildWalkerNextRunAllocFree(t *testing.T) {
	l := NewRAID5(5, 5, 160, 4)
	w := NewRebuildWalker(l, 2)
	allocs := testing.AllocsPerRun(100, func() {
		w.row = 0
		for {
			_, _, _, _, ok := w.NextRun(8)
			if !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("NextRun walk allocates %v per full pass, want 0", allocs)
	}
}

func benchRebuildLayout() Redundant { return NewRAID5(10, 10, 400000, 32) }

// BenchmarkRebuildWalkerNext measures the per-unit reference walk.
func BenchmarkRebuildWalkerNext(b *testing.B) {
	w := NewRebuildWalker(benchRebuildLayout(), 3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		w.row = 0
		for {
			blk, n, _, ok := w.Next()
			if !ok {
				break
			}
			sink += blk + n
		}
	}
	_ = sink
}

// BenchmarkRebuildWalkerNextRun measures the row-batched walk at the
// core's rebuild batch size.
func BenchmarkRebuildWalkerNextRun(b *testing.B) {
	w := NewRebuildWalker(benchRebuildLayout(), 3)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		w.row = 0
		for {
			blk, n, _, _, ok := w.NextRun(8)
			if !ok {
				break
			}
			sink += blk + n
		}
	}
	_ = sink
}
