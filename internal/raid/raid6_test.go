package raid

import (
	"testing"
	"testing/quick"
)

func TestRAID6Capacity(t *testing.T) {
	// 8 disks, one group: 6 data units per row.
	r := NewRAID6(8, 8, 100*4, 4)
	if got := r.DataUnitsPerRow(); got != 6 {
		t.Errorf("DataUnitsPerRow = %d, want 6", got)
	}
	if got := r.DataBlocks(); got != 100*6*4 {
		t.Errorf("DataBlocks = %d, want %d", got, 100*6*4)
	}
}

func TestRAID6ParitiesDistinct(t *testing.T) {
	r := NewRAID6(8, 8, 64, 4)
	for b := int64(0); b < r.DataBlocks(); b++ {
		d := r.Locate(b)
		p, okP := r.ParityOf(b)
		q, okQ := r.QParityOf(b)
		if !okP || !okQ {
			t.Fatalf("block %d: missing parity", b)
		}
		if d.Disk == p.Disk || d.Disk == q.Disk || p.Disk == q.Disk {
			t.Fatalf("block %d: data/P/Q disks collide: %d/%d/%d", b, d.Disk, p.Disk, q.Disk)
		}
		if p.Block != d.Block || q.Block != d.Block {
			t.Fatalf("block %d: parity offsets misaligned", b)
		}
	}
}

func TestRAID6ParityRotates(t *testing.T) {
	r := NewRAID6(6, 6, 6*4, 4) // 6 rows
	pCount := make(map[int]int)
	qCount := make(map[int]int)
	for row := int64(0); row < 6; row++ {
		b := row * r.DataUnitsPerRow() * 4
		p, _ := r.ParityOf(b)
		q, _ := r.QParityOf(b)
		pCount[p.Disk]++
		qCount[q.Disk]++
	}
	for d := 0; d < 6; d++ {
		if pCount[d] != 1 || qCount[d] != 1 {
			t.Errorf("disk %d: P on %d rows, Q on %d rows; want 1/1 (rotation)",
				d, pCount[d], qCount[d])
		}
	}
}

func TestRAID6LocateInjective(t *testing.T) {
	r := NewRAID6(9, 5, 64, 4) // groups merged: 5+4
	seen := make(map[PBA]bool)
	for b := int64(0); b < r.DataBlocks(); b++ {
		p := r.Locate(b)
		if seen[p] {
			t.Fatalf("duplicate mapping for block %d", b)
		}
		seen[p] = true
	}
}

func TestRAID6MergesShortGroups(t *testing.T) {
	// 10 disks with group size 4 → 4,4,2: trailing 2 merges → 4,6.
	r := NewRAID6(10, 4, 64, 4)
	total := 0
	for _, g := range r.groups {
		if g.size < 4 {
			t.Errorf("group of %d disks survived merging", g.size)
		}
		total += g.size
	}
	if total != 10 {
		t.Errorf("groups cover %d disks, want 10", total)
	}
}

func TestRAID6RejectsTooFewDisks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("3-disk RAID6 did not panic")
		}
	}()
	NewRAID6(3, 3, 64, 4)
}

// Property: RAID-6 invariants over random geometries.
func TestPropertyRAID6Invariants(t *testing.T) {
	f := func(nd, gs, rowsRaw uint8) bool {
		disks := int(nd%12) + 4 // 4..15
		gsize := int(gs%8) + 4  // 4..11
		rows := int64(rowsRaw%10) + 1
		r := NewRAID6(disks, gsize, rows*4, 4)
		seen := make(map[PBA]bool)
		for b := int64(0); b < r.DataBlocks(); b++ {
			d := r.Locate(b)
			if seen[d] || d.Disk < 0 || d.Disk >= disks {
				return false
			}
			seen[d] = true
			p, _ := r.ParityOf(b)
			q, _ := r.QParityOf(b)
			if d.Disk == p.Disk || d.Disk == q.Disk || p.Disk == q.Disk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
