package raid

import "testing"

func TestSpreadLayoutFullDatasetStillBijective(t *testing.T) {
	inner := NewRAID5(8, 4, 1024, 32)
	s := NewSpreadLayout(inner, inner.DataBlocks())
	if s.Factor() != 1 {
		t.Errorf("factor = %d for full dataset, want 1", s.Factor())
	}
	// Even dense, the shuffle must remain a bijection over granule
	// slots: every granule lands on a distinct aligned slot.
	seen := make(map[int64]bool)
	for b := int64(0); b < s.DataBlocks(); b += SpreadGranule {
		a := s.spreadAddr(b)
		if a%SpreadGranule != 0 || seen[a] || a >= inner.DataBlocks() {
			t.Fatalf("granule at %d: bad slot %d", b, a)
		}
		seen[a] = true
	}
}

func TestSpreadLayoutScatters(t *testing.T) {
	inner := NewRAID5(8, 4, 1<<16, 32)
	dataset := inner.DataBlocks() / 16
	s := NewSpreadLayout(inner, dataset)
	if s.Factor() < 8 {
		t.Fatalf("factor = %d, want >= 8 for a 16x larger inner space", s.Factor())
	}
	if s.DataBlocks() != dataset {
		t.Errorf("DataBlocks = %d, want %d", s.DataBlocks(), dataset)
	}
	// Within a granule placement is contiguous in the inner space.
	a0, a1 := s.spreadAddr(0), s.spreadAddr(SpreadGranule-1)
	if a1-a0 != SpreadGranule-1 {
		t.Errorf("within-granule spread: %d..%d not contiguous", a0, a1)
	}
	// Granules scatter: every granule gets a distinct, aligned slot,
	// and placements cover a wide range of the inner space.
	granules := dataset / SpreadGranule
	seen := make(map[int64]bool)
	var maxAddr int64
	for g := int64(0); g < granules; g++ {
		addr := s.spreadAddr(g * SpreadGranule)
		if addr%SpreadGranule != 0 {
			t.Fatalf("granule %d at unaligned addr %d", g, addr)
		}
		if seen[addr] {
			t.Fatalf("granule slot %d reused", addr)
		}
		seen[addr] = true
		if addr > maxAddr {
			maxAddr = addr
		}
	}
	if maxAddr < inner.DataBlocks()/2 {
		t.Errorf("granules cluster in the low half (max addr %d of %d)",
			maxAddr, inner.DataBlocks())
	}
}

func TestSpreadLayoutInjective(t *testing.T) {
	inner := NewRAID5(4, 4, 4096, 16)
	s := NewSpreadLayout(inner, inner.DataBlocks()/4)
	seen := make(map[PBA]bool)
	for b := int64(0); b < s.DataBlocks(); b++ {
		p := s.Locate(b)
		if seen[p] {
			t.Fatalf("duplicate physical address for block %d", b)
		}
		seen[p] = true
	}
}

func TestSpreadLayoutExtentsCover(t *testing.T) {
	inner := NewRAID5(4, 4, 4096, 16)
	s := NewSpreadLayout(inner, inner.DataBlocks()/4)
	var covered int64
	prev := int64(10)
	s.ForEachExtent(10, 200, func(e Extent) {
		if e.Logical != prev {
			t.Fatalf("extent at %d, want %d", e.Logical, prev)
		}
		last := s.Locate(e.Logical + e.Count - 1)
		if last.Disk != e.Data.Disk || last.Block != e.Data.Block+e.Count-1 {
			t.Fatalf("extent at %d not physically contiguous", e.Logical)
		}
		covered += e.Count
		prev += e.Count
	})
	if covered != 200 {
		t.Errorf("extents cover %d, want 200", covered)
	}
}

func TestSpreadLayoutParityAligns(t *testing.T) {
	inner := NewRAID5(6, 3, 4096, 16)
	s := NewSpreadLayout(inner, inner.DataBlocks()/8)
	for b := int64(0); b < s.DataBlocks(); b += 7 {
		d := s.Locate(b)
		p, ok := s.ParityOf(b)
		if !ok || p.Disk == d.Disk {
			t.Fatalf("block %d: bad parity %+v vs data %+v", b, p, d)
		}
	}
}

func TestSpreadLayoutRejectsOversizedDataset(t *testing.T) {
	inner := NewRAID5(4, 4, 128, 16)
	defer func() {
		if recover() == nil {
			t.Error("oversized dataset did not panic")
		}
	}()
	NewSpreadLayout(inner, inner.DataBlocks()+1)
}
