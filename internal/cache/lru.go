package cache

import "strconv"

// LRU evicts the least recently used entry.
type LRU struct {
	capacity int
	items    map[Key]*entry
	list     lruList
	pool     entryPool
}

// NewLRU returns an LRU policy holding at most capacity entries.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	l := &LRU{capacity: capacity, items: make(map[Key]*entry, capacity)}
	l.list.init()
	return l
}

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Capacity implements Policy.
func (l *LRU) Capacity() int { return l.capacity }

// Len implements Policy.
func (l *LRU) Len() int { return len(l.items) }

// Contains implements Policy.
func (l *LRU) Contains(k Key) bool { _, ok := l.items[k]; return ok }

// Access implements Policy.
func (l *LRU) Access(k Key, _ int64) {
	if e, ok := l.items[k]; ok {
		l.list.moveFront(e)
	}
}

// Insert implements Policy.
func (l *LRU) Insert(k Key, size int64) (Key, bool) {
	if _, ok := l.items[k]; ok {
		l.Access(k, size)
		return 0, false
	}
	var victim Key
	evicted := false
	var e *entry
	if len(l.items) >= l.capacity {
		lru := l.list.back()
		l.list.remove(lru)
		delete(l.items, lru.key)
		victim, evicted = lru.key, true
		e = lru // reuse the victim's node for the newcomer
		e.key = k
	} else {
		e = l.pool.get(k)
	}
	l.items[k] = e
	l.list.pushFront(e)
	return victim, evicted
}

// AccessRun implements Policy.
func (l *LRU) AccessRun(k Key, n, size int64) {
	for i := int64(0); i < n; i++ {
		if e, ok := l.items[k+i]; ok {
			l.list.moveFront(e)
		}
	}
}

// InsertRun implements Policy (the per-key loop is already
// allocation-free thanks to the entry pool).
func (l *LRU) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(l, k, n, size, evicted)
}

// Remove implements Policy.
func (l *LRU) Remove(k Key) bool {
	e, ok := l.items[k]
	if !ok {
		return false
	}
	l.list.remove(e)
	delete(l.items, k)
	l.pool.put(e)
	return true
}

// Clear implements Policy.
func (l *LRU) Clear() {
	l.items = make(map[Key]*entry, l.capacity)
	l.list.init()
}

// Keys implements Policy.
func (l *LRU) Keys() []Key {
	out := make([]Key, 0, len(l.items))
	for k := range l.items {
		out = append(out, k)
	}
	return out
}

// WLRU is the paper's Weighted LRU: LRU that prefers evicting a clean
// entry, scanning at most w·capacity candidates from the LRU end before
// falling back to the plain LRU victim (§4.1). Evicting clean entries
// saves CRAID the four parity I/Os a dirty write-back costs.
type WLRU struct {
	capacity int
	window   float64
	dirty    DirtyFunc
	items    map[Key]*entry
	list     lruList
	pool     entryPool
}

// NewWLRU returns a WLRU policy with scan window w (fraction of
// capacity, typically 0.5). dirty may be nil, meaning no entry is ever
// dirty (WLRU then degenerates to LRU).
func NewWLRU(capacity int, w float64, dirty DirtyFunc) *WLRU {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	if w < 0 || w > 1 {
		panic("cache: WLRU window must be in [0,1]")
	}
	l := &WLRU{capacity: capacity, window: w, dirty: dirty,
		items: make(map[Key]*entry, capacity)}
	l.list.init()
	return l
}

// Name implements Policy; it includes the window, e.g. "WLRU0.5".
func (l *WLRU) Name() string {
	return "WLRU" + strconv.FormatFloat(l.window, 'g', -1, 64)
}

// Capacity implements Policy.
func (l *WLRU) Capacity() int { return l.capacity }

// Len implements Policy.
func (l *WLRU) Len() int { return len(l.items) }

// Contains implements Policy.
func (l *WLRU) Contains(k Key) bool { _, ok := l.items[k]; return ok }

// Access implements Policy.
func (l *WLRU) Access(k Key, _ int64) {
	if e, ok := l.items[k]; ok {
		l.list.moveFront(e)
	}
}

// Insert implements Policy.
func (l *WLRU) Insert(k Key, size int64) (Key, bool) {
	if _, ok := l.items[k]; ok {
		l.Access(k, size)
		return 0, false
	}
	var victim Key
	evicted := false
	var e *entry
	if len(l.items) >= l.capacity {
		v := l.pickVictim()
		l.list.remove(v)
		delete(l.items, v.key)
		victim, evicted = v.key, true
		e = v // reuse the victim's node for the newcomer
		e.key = k
	} else {
		e = l.pool.get(k)
	}
	l.items[k] = e
	l.list.pushFront(e)
	return victim, evicted
}

// AccessRun implements Policy.
func (l *WLRU) AccessRun(k Key, n, size int64) {
	for i := int64(0); i < n; i++ {
		if e, ok := l.items[k+i]; ok {
			l.list.moveFront(e)
		}
	}
}

// InsertRun implements Policy.
func (l *WLRU) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(l, k, n, size, evicted)
}

// pickVictim scans up to window·capacity entries from the LRU end for
// the first clean one; if none is found the plain LRU entry loses.
func (l *WLRU) pickVictim() *entry {
	lru := l.list.back()
	if l.dirty == nil {
		return lru
	}
	limit := int(l.window * float64(l.capacity))
	e := lru
	for i := 0; i < limit && e != &l.list.head; i++ {
		if !l.dirty(e.key) {
			return e
		}
		e = e.prev
	}
	return lru
}

// Remove implements Policy.
func (l *WLRU) Remove(k Key) bool {
	e, ok := l.items[k]
	if !ok {
		return false
	}
	l.list.remove(e)
	delete(l.items, k)
	l.pool.put(e)
	return true
}

// Clear implements Policy.
func (l *WLRU) Clear() {
	l.items = make(map[Key]*entry, l.capacity)
	l.list.init()
}

// Keys implements Policy.
func (l *WLRU) Keys() []Key {
	out := make([]Key, 0, len(l.items))
	for k := range l.items {
		out = append(out, k)
	}
	return out
}
