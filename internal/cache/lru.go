package cache

import "strconv"

// lruCore is the slot-arena recency engine shared by LRU and WLRU: a
// flat []slot arena, a keyIndex resolving residency, and one intrusive
// recency list (front = MRU). The two policies differ only in victim
// choice, injected through the victim func (bound once at construction
// so the eviction path stays allocation-free).
//
// Run-native hot loops: AccessRun resolves a whole run with ONE index
// probe when the run's entries already form a consecutive-key chain in
// the list (the layout a prior InsertRun or AccessRun of the same run
// leaves behind — the steady state of extent-granularity traffic), and
// splices the chain to the front in one list operation. InsertRun links
// each maximal segment of fresh, non-evicting newborns into a private
// chain and splices it once. Both degrade gracefully to the per-key
// loop, which is the property-tested reference semantics.
type lruCore struct {
	capacity int
	slots    []slot
	idx      keyIndex
	list     slotList
	free     int32 // freelist head, threaded through slot.next
	used     int32 // bump high-water into slots
	victim   func() int32
}

func (c *lruCore) initCore(capacity int) {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	c.capacity = capacity
	c.slots = make([]slot, capacity)
	c.idx = newKeyIndex(capacity)
	c.list.init()
	c.free = nilSlot
	c.used = 0
}

// alloc takes a slot from the freelist or the bump region. The arena
// never grows: live + free slots never exceed capacity.
func (c *lruCore) alloc(k Key) int32 { return arenaAlloc(c.slots, &c.free, &c.used, k) }

// release returns a detached slot to the freelist.
func (c *lruCore) release(s int32) { arenaRelease(c.slots, &c.free, s) }

// Capacity implements Policy.
func (c *lruCore) Capacity() int { return c.capacity }

// Len implements Policy.
func (c *lruCore) Len() int { return c.list.size }

// Contains implements Policy.
func (c *lruCore) Contains(k Key) bool { return c.idx.get(k) != nilSlot }

// Access implements Policy.
func (c *lruCore) Access(k Key, _ int64) {
	if s := c.idx.get(k); s != nilSlot {
		c.list.moveFront(c.slots, s)
	}
}

// Insert implements Policy.
func (c *lruCore) Insert(k Key, size int64) (Key, bool) {
	cell, s := c.idx.findCell(k)
	if s != nilSlot {
		c.list.moveFront(c.slots, s)
		return 0, false
	}
	if c.list.size >= c.capacity {
		v := c.victim()
		vk := c.slots[v].key
		c.list.remove(c.slots, v)
		c.idx.del(vk)
		c.slots[v].key = k // reuse the victim's slot for the newcomer
		c.idx.put(k, v)    // re-probe: del may have shifted the cell
		c.list.pushFront(c.slots, v)
		return vk, true
	}
	s = c.alloc(k)
	c.idx.setCell(cell, k, s)
	c.list.pushFront(c.slots, s)
	return 0, false
}

// AccessRun implements Policy. The per-key loop's net effect on a fully
// resident consecutive run is "move the chain k+n-1 … k to the front";
// when the entries already sit in exactly that chain order, one index
// probe finds the head and one splice commits the whole run.
func (c *lruCore) AccessRun(k Key, n, size int64) {
	if n > 1 {
		if first := c.idx.get(k + n - 1); first != nilSlot {
			last, ok := first, true
			for i := int64(1); i < n; i++ {
				last = c.slots[last].next
				if last == nilSlot || c.slots[last].key != k+n-1-i {
					ok = false
					break
				}
			}
			if ok {
				if c.list.head != first { // already MRU: the loop is a no-op
					c.list.unlinkChain(c.slots, first, last, int(n))
					c.list.pushFrontChain(c.slots, first, last, int(n))
				}
				return
			}
		}
	}
	for i := int64(0); i < n; i++ {
		if s := c.idx.get(k + i); s != nilSlot {
			c.list.moveFront(c.slots, s)
		}
	}
}

// InsertRun implements Policy: maximal segments of fresh, non-evicting
// newborns are linked into a private chain (front-to-back = descending
// key, the order a loop of Insert leaves at the list front) and spliced
// in one operation; resident keys and evicting inserts commit the
// pending segment first and then follow the per-key semantics exactly,
// so the victim sequence is identical to a loop of Insert.
func (c *lruCore) InsertRun(k Key, n, size int64, evicted func(Key)) {
	segFirst, segLast := nilSlot, nilSlot
	segN := 0
	for i := int64(0); i < n; i++ {
		key := k + i
		cell, s := c.idx.findCell(key)
		if s != nilSlot {
			// Resident → Access; the pending newborns were inserted
			// earlier in the loop, so they commit before this access.
			if segFirst != nilSlot {
				c.list.pushFrontChain(c.slots, segFirst, segLast, segN)
				segFirst, segLast, segN = nilSlot, nilSlot, 0
			}
			c.list.moveFront(c.slots, s)
			continue
		}
		if c.list.size+segN >= c.capacity {
			// This insert evicts. Commit the pending segment first: the
			// victim scan must see the earlier newborns (it may even
			// choose one, exactly as the per-key loop can).
			if segFirst != nilSlot {
				c.list.pushFrontChain(c.slots, segFirst, segLast, segN)
				segFirst, segLast, segN = nilSlot, nilSlot, 0
			}
			v := c.victim()
			vk := c.slots[v].key
			c.list.remove(c.slots, v)
			c.idx.del(vk)
			c.slots[v].key = key
			c.idx.put(key, v)
			c.list.pushFront(c.slots, v)
			evicted(vk)
			continue
		}
		// Fresh, no eviction: chain the newborn ahead of its elders.
		s = c.alloc(key)
		c.idx.setCell(cell, key, s)
		if segFirst == nilSlot {
			segLast = s
		} else {
			c.slots[s].next = segFirst
			c.slots[segFirst].prev = s
		}
		segFirst = s
		segN++
	}
	if segFirst != nilSlot {
		c.list.pushFrontChain(c.slots, segFirst, segLast, segN)
	}
}

// Remove implements Policy.
func (c *lruCore) Remove(k Key) bool {
	s := c.idx.get(k)
	if s == nilSlot {
		return false
	}
	c.list.remove(c.slots, s)
	c.idx.del(k)
	c.release(s)
	return true
}

// Clear implements Policy.
func (c *lruCore) Clear() {
	c.idx.clear()
	c.list.init()
	c.free = nilSlot
	c.used = 0
}

// Keys implements Policy.
func (c *lruCore) Keys() []Key {
	out := make([]Key, 0, c.list.size)
	for s := c.list.head; s != nilSlot; s = c.slots[s].next {
		out = append(out, c.slots[s].key)
	}
	return out
}

// LRU evicts the least recently used entry.
type LRU struct{ lruCore }

// NewLRU returns an LRU policy holding at most capacity entries.
func NewLRU(capacity int) *LRU {
	l := &LRU{}
	l.initCore(capacity)
	l.victim = l.list.back
	return l
}

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// WLRU is the paper's Weighted LRU: LRU that prefers evicting a clean
// entry, scanning at most w·capacity candidates from the LRU end before
// falling back to the plain LRU victim (§4.1). Evicting clean entries
// saves CRAID the four parity I/Os a dirty write-back costs.
type WLRU struct {
	lruCore
	window float64
	dirty  DirtyFunc
}

// NewWLRU returns a WLRU policy with scan window w (fraction of
// capacity, typically 0.5). dirty may be nil, meaning no entry is ever
// dirty (WLRU then degenerates to LRU).
func NewWLRU(capacity int, w float64, dirty DirtyFunc) *WLRU {
	if w < 0 || w > 1 {
		panic("cache: WLRU window must be in [0,1]")
	}
	l := &WLRU{window: w, dirty: dirty}
	l.initCore(capacity)
	l.victim = l.pickVictim
	return l
}

// Name implements Policy; it includes the window, e.g. "WLRU0.5".
func (l *WLRU) Name() string {
	return "WLRU" + strconv.FormatFloat(l.window, 'g', -1, 64)
}

// pickVictim scans up to window·capacity entries from the LRU end for
// the first clean one; if none is found the plain LRU entry loses.
func (l *WLRU) pickVictim() int32 {
	lru := l.list.back()
	if l.dirty == nil {
		return lru
	}
	limit := int(l.window * float64(l.capacity))
	s := lru
	for i := 0; i < limit && s != nilSlot; i++ {
		if !l.dirty(l.slots[s].key) {
			return s
		}
		s = l.slots[s].prev
	}
	return lru
}
