package cache

// Slot arenas: the storage model shared by every policy in this package.
//
// Entries live in flat arrays indexed by int32 handles ("slots"), and
// the intrusive links between them (LRU lists, heap positions) are slot
// indices, not pointers. Residency is resolved by keyIndex, an
// open-addressing int64→int32 hash (power-of-two table, linear probing,
// backward-shift deletion). Compared to the previous map[Key]*entry
// design this removes per-key Go-map hashing from every probe, removes
// the per-entry heap objects (the GC no longer scans one pointer per
// cached block), and keeps each policy's whole metadata in a handful of
// cache-friendly contiguous allocations made once at construction.
// Nothing on the steady-state Access/Insert/Remove paths allocates.

// nilSlot is the null slot handle.
const nilSlot = int32(-1)

// idxCell is one keyIndex table cell: the key and its arena slot packed
// into 16 bytes, so a 64-byte cache line holds four consecutive cells.
// Keeping key and slot adjacent means every probe step — hash compare
// plus slot load — touches exactly one line; with keys and slots in
// separate arrays each step cost two.
type idxCell struct {
	key  Key
	slot int32
	_    int32 // pad to 16 bytes: cells never straddle a line boundary
}

// keyIndex is a fixed-size open-addressing hash from Key to arena slot.
// The table is sized at construction for the policy's maximum entry
// count at ≤ 0.5 load factor and never grows; cells with slot == nilSlot
// are empty. Deletion uses backward shifting (no tombstones), so probe
// chains never degrade under insert/evict churn.
type keyIndex struct {
	cells []idxCell
	mask  uint64
	shift uint8
}

// newKeyIndex sizes a table for at most entries live keys.
func newKeyIndex(entries int) keyIndex {
	size, bits := 8, 3
	for size < 2*entries {
		size *= 2
		bits++
	}
	x := keyIndex{
		cells: make([]idxCell, size),
		mask:  uint64(size - 1),
		shift: uint8(64 - bits),
	}
	for i := range x.cells {
		x.cells[i].slot = nilSlot
	}
	return x
}

// home is k's preferred cell: Fibonacci multiplicative hashing, taking
// the high (well-mixed) bits of the product.
func (x *keyIndex) home(k Key) uint64 {
	return (uint64(k) * 0x9E3779B97F4A7C15) >> x.shift
}

// get returns k's slot, or nilSlot.
func (x *keyIndex) get(k Key) int32 {
	i := x.home(k)
	for {
		c := &x.cells[i]
		if c.slot == nilSlot || c.key == k {
			return c.slot
		}
		i = (i + 1) & x.mask
	}
}

// findCell probes for k, returning in one pass either its cell and slot
// (resident) or the empty cell where k would be inserted and nilSlot.
// The returned cell stays valid only until the next index mutation.
func (x *keyIndex) findCell(k Key) (uint64, int32) {
	i := x.home(k)
	for {
		c := &x.cells[i]
		if c.slot == nilSlot || c.key == k {
			return i, c.slot
		}
		i = (i + 1) & x.mask
	}
}

// setCell fills an empty cell previously returned by findCell.
func (x *keyIndex) setCell(cell uint64, k Key, s int32) {
	x.cells[cell].key = k
	x.cells[cell].slot = s
}

// put inserts k → s, assuming k is absent.
func (x *keyIndex) put(k Key, s int32) {
	cell, _ := x.findCell(k)
	x.setCell(cell, k, s)
}

// del removes k if present, backward-shifting the tail of its probe
// chain so lookups never need tombstones.
func (x *keyIndex) del(k Key) {
	i := x.home(k)
	for {
		c := &x.cells[i]
		if c.slot == nilSlot {
			return // absent
		}
		if c.key == k {
			break
		}
		i = (i + 1) & x.mask
	}
	// Shift successors back over the hole: an entry at j (home h) may
	// move into the hole at i iff its probe path from h to j passes i.
	j := i
	for {
		j = (j + 1) & x.mask
		c := &x.cells[j]
		if c.slot == nilSlot {
			break
		}
		h := x.home(c.key)
		if (j-h)&x.mask >= (j-i)&x.mask {
			x.cells[i] = *c
			i = j
		}
	}
	x.cells[i].slot = nilSlot
}

// clear empties the table.
func (x *keyIndex) clear() {
	for i := range x.cells {
		x.cells[i].slot = nilSlot
	}
}

// slot is one arena entry of the intrusive lists shared by LRU, WLRU
// and ARC: the key plus prev/next slot handles.
type slot struct {
	key        Key
	prev, next int32
}

// arenaAlloc takes a slot from the freelist (threaded through
// slot.next) or the bump region, initializing it for k. Arenas are
// sized for their policy's maximum population, so the bump cursor
// never passes len(slots).
func arenaAlloc(slots []slot, free, used *int32, k Key) int32 {
	s := *free
	if s != nilSlot {
		*free = slots[s].next
	} else {
		s = *used
		*used++
	}
	slots[s] = slot{key: k, prev: nilSlot, next: nilSlot}
	return s
}

// arenaRelease returns a detached slot to the freelist.
func arenaRelease(slots []slot, free *int32, s int32) {
	slots[s].next = *free
	*free = s
}

// slotList is a doubly-linked list threaded through a slot arena;
// front = MRU. Every operation takes the arena explicitly so multiple
// lists (ARC's T1/T2/B1/B2) can share one.
type slotList struct {
	head, tail int32
	size       int
}

func (l *slotList) init() { l.head, l.tail, l.size = nilSlot, nilSlot, 0 }

func (l *slotList) pushFront(slots []slot, s int32) {
	slots[s].prev = nilSlot
	slots[s].next = l.head
	if l.head != nilSlot {
		slots[l.head].prev = s
	} else {
		l.tail = s
	}
	l.head = s
	l.size++
}

func (l *slotList) remove(slots []slot, s int32) {
	p, n := slots[s].prev, slots[s].next
	if p != nilSlot {
		slots[p].next = n
	} else {
		l.head = n
	}
	if n != nilSlot {
		slots[n].prev = p
	} else {
		l.tail = p
	}
	slots[s].prev, slots[s].next = nilSlot, nilSlot
	l.size--
}

func (l *slotList) moveFront(slots []slot, s int32) {
	if l.head == s {
		return
	}
	l.remove(slots, s)
	l.pushFront(slots, s)
}

// unlinkChain detaches the already-linked segment first..last
// (front-to-back order) without touching the segment's inner links.
func (l *slotList) unlinkChain(slots []slot, first, last int32, n int) {
	p, nx := slots[first].prev, slots[last].next
	if p != nilSlot {
		slots[p].next = nx
	} else {
		l.head = nx
	}
	if nx != nilSlot {
		slots[nx].prev = p
	} else {
		l.tail = p
	}
	l.size -= n
}

// pushFrontChain splices the pre-linked chain first..last (front-to-back
// order, n slots) at the front in one operation.
func (l *slotList) pushFrontChain(slots []slot, first, last int32, n int) {
	slots[first].prev = nilSlot
	slots[last].next = l.head
	if l.head != nilSlot {
		slots[l.head].prev = last
	} else {
		l.tail = last
	}
	l.head = first
	l.size += n
}

// back returns the LRU slot, or nilSlot when empty.
func (l *slotList) back() int32 { return l.tail }
