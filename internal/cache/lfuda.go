package cache

// The per-entry state of the priority heap shared by LFUDA and GDSF is
// split hot/cold by access frequency. A heap fix runs O(log n) `less`
// comparisons and each one reads only (prio, seq) — so those two fields
// live alone in a 16-byte agingHot (four entries per cache line) instead
// of sharing a 48-byte struct with metadata the comparison never reads.
// agingHot is one hot arena entry: the policy's K_i plus the insertion
// sequence tie-break (older entries lose first).
type agingHot struct {
	prio float64
	seq  uint64
}

// agingCold is the cold side-array entry: fields touched at most once
// per access (freq/size feed the priority recompute) or only on
// insert/evict/iteration (key). The heap's sift loops never read it.
type agingCold struct {
	key  Key
	freq int64
	size int64
}

// agingPolicy implements the GreedyDual family: each entry carries a
// priority K_i; the minimum-K entry is evicted and its K becomes the
// running age factor L added to all future priorities (Arlitt et al.).
//
//	LFUDA: K_i = C_i·F_i + L         (C_i = 1)
//	GDSF:  K_i = C_i·F_i/S_i + L
//
// Entries live in flat hot/cold arenas indexed by the same int32 slot
// handle; the heap orders handles, and residency is resolved by the
// shared keyIndex — no Go map, no per-entry heap objects. pos is a
// third side-array: the slot's heap index while live (written by swap,
// never read by less) and the freelist link while free. (prio, seq) is
// a total order, so the victim sequence is independent of the heap's
// internal layout and bit-identical to the container/heap-based
// reference.
type agingPolicy struct {
	name     string
	capacity int
	hot      []agingHot
	cold     []agingCold
	pos      []int32
	idx      keyIndex
	heap     []int32
	free     int32
	used     int32
	age      float64 // L
	seq      uint64
	useSize  bool
}

func newAgingPolicy(name string, capacity int, useSize bool) *agingPolicy {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	return &agingPolicy{
		name:     name,
		capacity: capacity,
		hot:      make([]agingHot, capacity),
		cold:     make([]agingCold, capacity),
		pos:      make([]int32, capacity),
		idx:      newKeyIndex(capacity),
		heap:     make([]int32, 0, capacity),
		free:     nilSlot,
		useSize:  useSize,
	}
}

// NewLFUDA returns a Least Frequently Used with Dynamic Aging policy.
func NewLFUDA(capacity int) Policy { return newAgingPolicy("LFUDA", capacity, false) }

// NewGDSF returns a Greedy-Dual-Size with Frequency policy.
func NewGDSF(capacity int) Policy { return newAgingPolicy("GDSF", capacity, true) }

// Name implements Policy.
func (p *agingPolicy) Name() string { return p.name }

// Capacity implements Policy.
func (p *agingPolicy) Capacity() int { return p.capacity }

// Len implements Policy.
func (p *agingPolicy) Len() int { return len(p.heap) }

// Contains implements Policy.
func (p *agingPolicy) Contains(k Key) bool { return p.idx.get(k) != nilSlot }

func (p *agingPolicy) priority(freq, size int64) float64 {
	const cost = 1.0 // C_i: uniform retrieval cost for block storage
	if p.useSize && size > 0 {
		return cost*float64(freq)/float64(size) + p.age
	}
	return cost*float64(freq) + p.age
}

// --- int32 min-heap over (prio, seq) ---

func (p *agingPolicy) less(a, b int32) bool {
	ha, hb := &p.hot[a], &p.hot[b]
	if ha.prio != hb.prio {
		return ha.prio < hb.prio
	}
	return ha.seq < hb.seq
}

func (p *agingPolicy) swap(i, j int) {
	h := p.heap
	h[i], h[j] = h[j], h[i]
	p.pos[h[i]] = int32(i)
	p.pos[h[j]] = int32(j)
}

func (p *agingPolicy) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(p.heap[i], p.heap[parent]) {
			break
		}
		p.swap(i, parent)
		i = parent
	}
}

func (p *agingPolicy) down(i int) bool {
	start, n := i, len(p.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && p.less(p.heap[r], p.heap[l]) {
			m = r
		}
		if !p.less(p.heap[m], p.heap[i]) {
			break
		}
		p.swap(i, m)
		i = m
	}
	return i > start
}

func (p *agingPolicy) fix(i int) {
	if !p.down(i) {
		p.up(i)
	}
}

func (p *agingPolicy) push(s int32) {
	p.pos[s] = int32(len(p.heap))
	p.heap = append(p.heap, s)
	p.up(len(p.heap) - 1)
}

// popMin removes and returns the minimum-priority slot.
func (p *agingPolicy) popMin() int32 {
	min := p.heap[0]
	n := len(p.heap) - 1
	p.swap(0, n)
	p.heap = p.heap[:n]
	if n > 0 {
		p.down(0)
	}
	return min
}

// removeAt deletes heap position i.
func (p *agingPolicy) removeAt(i int) {
	n := len(p.heap) - 1
	if i != n {
		p.swap(i, n)
		p.heap = p.heap[:n]
		p.fix(i)
	} else {
		p.heap = p.heap[:n]
	}
}

// Access implements Policy.
func (p *agingPolicy) Access(k Key, size int64) {
	s := p.idx.get(k)
	if s == nilSlot {
		return
	}
	c := &p.cold[s]
	c.freq++
	if size > 0 {
		c.size = size
	}
	p.hot[s].prio = p.priority(c.freq, c.size)
	p.fix(int(p.pos[s]))
}

// Insert implements Policy.
func (p *agingPolicy) Insert(k Key, size int64) (Key, bool) {
	cell, s := p.idx.findCell(k)
	if s != nilSlot {
		p.Access(k, size)
		return 0, false
	}
	var victim Key
	evicted := false
	if len(p.heap) >= p.capacity {
		min := p.popMin()
		vk := p.cold[min].key
		p.idx.del(vk)
		p.age = p.hot[min].prio // dynamic aging: L becomes the evicted key's K
		victim, evicted = vk, true
		s = min // reuse the victim's slot for the newcomer
	} else {
		s = p.free
		if s != nilSlot {
			p.free = p.pos[s]
		} else {
			s = p.used
			p.used++
		}
	}
	if size <= 0 {
		size = 1
	}
	p.seq++
	p.cold[s] = agingCold{key: k, freq: 1, size: size}
	p.hot[s] = agingHot{prio: p.priority(1, size), seq: p.seq}
	if evicted {
		p.idx.put(k, s) // re-probe: del may have shifted the cell
	} else {
		p.idx.setCell(cell, k, s)
	}
	p.push(s)
	return victim, evicted
}

// AccessRun implements Policy via the generic per-key fallback (the
// priority heap re-sifts per key regardless of batching).
func (p *agingPolicy) AccessRun(k Key, n, size int64) { accessRunGeneric(p, k, n, size) }

// InsertRun implements Policy via the generic per-key fallback.
func (p *agingPolicy) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(p, k, n, size, evicted)
}

// Remove implements Policy.
func (p *agingPolicy) Remove(k Key) bool {
	s := p.idx.get(k)
	if s == nilSlot {
		return false
	}
	p.removeAt(int(p.pos[s]))
	p.idx.del(k)
	p.pos[s] = p.free // freelist link
	p.free = s
	return true
}

// Clear implements Policy.
func (p *agingPolicy) Clear() {
	p.idx.clear()
	p.heap = p.heap[:0]
	p.free = nilSlot
	p.used = 0
	p.age = 0
}

// Keys implements Policy.
func (p *agingPolicy) Keys() []Key {
	out := make([]Key, 0, len(p.heap))
	for _, s := range p.heap {
		out = append(out, p.cold[s].key)
	}
	return out
}
