package cache

import "container/heap"

// agingEntry is a node of the priority heap shared by LFUDA and GDSF.
type agingEntry struct {
	key   Key
	freq  int64
	size  int64
	prio  float64 // the policy's K_i
	seq   uint64  // tie-break: older entries lose first
	index int     // heap index
}

type agingHeap []*agingEntry

func (h agingHeap) Len() int { return len(h) }
func (h agingHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h agingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *agingHeap) Push(x interface{}) {
	e := x.(*agingEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *agingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// agingPolicy implements the GreedyDual family: each entry carries a
// priority K_i; the minimum-K entry is evicted and its K becomes the
// running age factor L added to all future priorities (Arlitt et al.).
//
//	LFUDA: K_i = C_i·F_i + L         (C_i = 1)
//	GDSF:  K_i = C_i·F_i/S_i + L
type agingPolicy struct {
	name     string
	capacity int
	items    map[Key]*agingEntry
	heap     agingHeap
	age      float64 // L
	seq      uint64
	useSize  bool
}

func newAgingPolicy(name string, capacity int, useSize bool) *agingPolicy {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	return &agingPolicy{
		name:     name,
		capacity: capacity,
		items:    make(map[Key]*agingEntry, capacity),
		useSize:  useSize,
	}
}

// NewLFUDA returns a Least Frequently Used with Dynamic Aging policy.
func NewLFUDA(capacity int) Policy { return newAgingPolicy("LFUDA", capacity, false) }

// NewGDSF returns a Greedy-Dual-Size with Frequency policy.
func NewGDSF(capacity int) Policy { return newAgingPolicy("GDSF", capacity, true) }

// Name implements Policy.
func (p *agingPolicy) Name() string { return p.name }

// Capacity implements Policy.
func (p *agingPolicy) Capacity() int { return p.capacity }

// Len implements Policy.
func (p *agingPolicy) Len() int { return len(p.items) }

// Contains implements Policy.
func (p *agingPolicy) Contains(k Key) bool { _, ok := p.items[k]; return ok }

func (p *agingPolicy) priority(freq, size int64) float64 {
	const cost = 1.0 // C_i: uniform retrieval cost for block storage
	if p.useSize && size > 0 {
		return cost*float64(freq)/float64(size) + p.age
	}
	return cost*float64(freq) + p.age
}

// Access implements Policy.
func (p *agingPolicy) Access(k Key, size int64) {
	e, ok := p.items[k]
	if !ok {
		return
	}
	e.freq++
	if size > 0 {
		e.size = size
	}
	e.prio = p.priority(e.freq, e.size)
	heap.Fix(&p.heap, e.index)
}

// Insert implements Policy.
func (p *agingPolicy) Insert(k Key, size int64) (Key, bool) {
	if _, ok := p.items[k]; ok {
		p.Access(k, size)
		return 0, false
	}
	var victim Key
	evicted := false
	if len(p.items) >= p.capacity {
		min := heap.Pop(&p.heap).(*agingEntry)
		delete(p.items, min.key)
		p.age = min.prio // dynamic aging: L becomes the evicted key's K
		victim, evicted = min.key, true
	}
	if size <= 0 {
		size = 1
	}
	p.seq++
	e := &agingEntry{key: k, freq: 1, size: size, seq: p.seq}
	e.prio = p.priority(e.freq, e.size)
	p.items[k] = e
	heap.Push(&p.heap, e)
	return victim, evicted
}

// AccessRun implements Policy via the generic per-key fallback (the
// priority heap re-sifts per key regardless of batching).
func (p *agingPolicy) AccessRun(k Key, n, size int64) { accessRunGeneric(p, k, n, size) }

// InsertRun implements Policy via the generic per-key fallback.
func (p *agingPolicy) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(p, k, n, size, evicted)
}

// Remove implements Policy.
func (p *agingPolicy) Remove(k Key) bool {
	e, ok := p.items[k]
	if !ok {
		return false
	}
	heap.Remove(&p.heap, e.index)
	delete(p.items, k)
	return true
}

// Clear implements Policy.
func (p *agingPolicy) Clear() {
	p.items = make(map[Key]*agingEntry, p.capacity)
	p.heap = p.heap[:0]
	p.age = 0
}

// Keys implements Policy.
func (p *agingPolicy) Keys() []Key {
	out := make([]Key, 0, len(p.items))
	for k := range p.items {
		out = append(out, k)
	}
	return out
}
