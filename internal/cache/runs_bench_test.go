package cache

import "testing"

func benchPolicy(b *testing.B, name string) Policy {
	b.Helper()
	p, err := New(name, 1<<16, Config{WLRUWindow: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 1<<16; i++ {
		p.Insert(i, 256)
	}
	return p
}

// BenchmarkLRUInsertPerBlock measures steady-state insert/evict churn
// with one call per block.
func BenchmarkLRUInsertPerBlock(b *testing.B) {
	p := benchPolicy(b, "LRU")
	next := int64(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := int64(0); j < 256; j++ {
			p.Insert(next, 256)
			next++
		}
	}
}

// BenchmarkLRUInsertRun measures the same churn through InsertRun.
func BenchmarkLRUInsertRun(b *testing.B) {
	p := benchPolicy(b, "LRU")
	next := int64(1 << 16)
	sink := func(Key) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertRun(next, 256, 256, sink)
		next += 256
	}
}

// BenchmarkLRUAccessRun measures a 256-block hit run.
func BenchmarkLRUAccessRun(b *testing.B) {
	p := benchPolicy(b, "LRU")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AccessRun(int64(i*256)%(1<<16), 256, 256)
	}
}

// BenchmarkWLRUInsertRun measures WLRU churn (with its clean-victim
// scan) through InsertRun.
func BenchmarkWLRUInsertRun(b *testing.B) {
	p := benchPolicy(b, "WLRU")
	next := int64(1 << 16)
	sink := func(Key) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.InsertRun(next, 256, 256, sink)
		next += 256
	}
}

// BenchmarkPolicyRunAccess measures a 256-block all-hit AccessRun on
// every policy: the monitor's steady-state read-hit cost per extent.
func BenchmarkPolicyRunAccess(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			p := benchPolicy(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.AccessRun(int64(i*256)%(1<<16), 256, 256)
			}
		})
	}
}

// BenchmarkPolicyRunInsert measures steady-state insert/evict churn
// through InsertRun on every policy (fresh 256-block runs against a full
// cache, so each run displaces 256 victims).
func BenchmarkPolicyRunInsert(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			p := benchPolicy(b, name)
			next := int64(1 << 16)
			sink := func(Key) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.InsertRun(next, 256, 256, sink)
				next += 256
			}
		})
	}
}
