package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// allPolicies builds one instance of every policy at the given
// capacity, with a trivially-false dirty function for WLRU.
func allPolicies(capacity int) []Policy {
	return []Policy{
		NewLRU(capacity),
		NewLFUDA(capacity),
		NewGDSF(capacity),
		NewARC(capacity),
		NewWLRU(capacity, 0.5, nil),
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 10, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Capacity() != 10 {
			t.Errorf("%s capacity = %d, want 10", name, p.Capacity())
		}
	}
	if _, err := New("FIFO", 10, Config{}); err == nil {
		t.Error("unknown policy name did not error")
	}
}

func TestBasicInsertContains(t *testing.T) {
	for _, p := range allPolicies(3) {
		for k := Key(0); k < 3; k++ {
			if v, ev := p.Insert(k, 1); ev {
				t.Errorf("%s: insert below capacity evicted %d", p.Name(), v)
			}
		}
		if p.Len() != 3 {
			t.Errorf("%s: Len = %d, want 3", p.Name(), p.Len())
		}
		for k := Key(0); k < 3; k++ {
			if !p.Contains(k) {
				t.Errorf("%s: missing key %d", p.Name(), k)
			}
		}
		if p.Contains(99) {
			t.Errorf("%s: claims to contain 99", p.Name())
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	for _, p := range allPolicies(5) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			k := Key(rng.Intn(50))
			if p.Contains(k) {
				p.Access(k, 1)
			} else {
				p.Insert(k, 1)
			}
			if p.Len() > p.Capacity() {
				t.Fatalf("%s: Len %d > capacity %d", p.Name(), p.Len(), p.Capacity())
			}
		}
	}
}

func TestInsertAtCapacityEvictsExactlyOne(t *testing.T) {
	for _, p := range allPolicies(4) {
		for k := Key(0); k < 4; k++ {
			p.Insert(k, 1)
		}
		v, ev := p.Insert(100, 1)
		if !ev {
			t.Errorf("%s: full insert did not evict", p.Name())
			continue
		}
		if p.Contains(v) {
			t.Errorf("%s: victim %d still resident", p.Name(), v)
		}
		if !p.Contains(100) {
			t.Errorf("%s: inserted key not resident", p.Name())
		}
		if p.Len() != 4 {
			t.Errorf("%s: Len = %d after evicting insert, want 4", p.Name(), p.Len())
		}
	}
}

func TestRemove(t *testing.T) {
	for _, p := range allPolicies(4) {
		p.Insert(1, 1)
		p.Insert(2, 1)
		if !p.Remove(1) {
			t.Errorf("%s: Remove(1) = false", p.Name())
		}
		if p.Remove(1) {
			t.Errorf("%s: double Remove(1) = true", p.Name())
		}
		if p.Contains(1) {
			t.Errorf("%s: removed key still resident", p.Name())
		}
		if p.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", p.Name(), p.Len())
		}
	}
}

func TestClear(t *testing.T) {
	for _, p := range allPolicies(4) {
		for k := Key(0); k < 4; k++ {
			p.Insert(k, 1)
		}
		p.Clear()
		if p.Len() != 0 {
			t.Errorf("%s: Len = %d after Clear", p.Name(), p.Len())
		}
		// Must be fully usable again.
		p.Insert(7, 1)
		if !p.Contains(7) {
			t.Errorf("%s: unusable after Clear", p.Name())
		}
	}
}

func TestInsertExistingActsAsAccess(t *testing.T) {
	for _, p := range allPolicies(2) {
		p.Insert(1, 1)
		p.Insert(2, 1)
		if v, ev := p.Insert(1, 1); ev {
			t.Errorf("%s: re-insert evicted %d", p.Name(), v)
		}
		if p.Len() != 2 {
			t.Errorf("%s: Len = %d after re-insert, want 2", p.Name(), p.Len())
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := NewLRU(3)
	p.Insert(1, 1)
	p.Insert(2, 1)
	p.Insert(3, 1)
	p.Access(1, 1) // order now LRU→MRU: 2, 3, 1
	if v, ev := p.Insert(4, 1); !ev || v != 2 {
		t.Errorf("victim = %d (evicted=%v), want 2", v, ev)
	}
	if v, ev := p.Insert(5, 1); !ev || v != 3 {
		t.Errorf("victim = %d (evicted=%v), want 3", v, ev)
	}
}

func TestWLRUPrefersCleanVictim(t *testing.T) {
	dirty := map[Key]bool{10: true, 11: true}
	p := NewWLRU(4, 0.5, func(k Key) bool { return dirty[k] })
	p.Insert(10, 1) // dirty, LRU
	p.Insert(11, 1) // dirty
	p.Insert(12, 1) // clean
	p.Insert(13, 1) // clean, MRU
	// Window = 0.5*4 = 2 candidates from the LRU end: 10 (dirty),
	// 11 (dirty) — both dirty, so plain LRU (10) is evicted.
	if v, _ := p.Insert(14, 1); v != 10 {
		t.Errorf("all-dirty window: victim = %d, want 10 (LRU fallback)", v)
	}
	// Now LRU→MRU: 11(dirty), 12, 13, 14. Window of 2: 11 dirty, 12
	// clean → 12 evicted despite 11 being least recent.
	if v, _ := p.Insert(15, 1); v != 12 {
		t.Errorf("victim = %d, want clean 12 over dirty 11", v)
	}
}

func TestWLRUFullWindowAlwaysFindsClean(t *testing.T) {
	dirty := map[Key]bool{1: true, 2: true, 3: true}
	p := NewWLRU(4, 1.0, func(k Key) bool { return dirty[k] })
	p.Insert(1, 1)
	p.Insert(2, 1)
	p.Insert(3, 1)
	p.Insert(4, 1) // clean MRU
	if v, _ := p.Insert(5, 1); v != 4 {
		t.Errorf("victim = %d, want 4 (only clean entry, full scan)", v)
	}
}

func TestLFUDAKeepsFrequentEntries(t *testing.T) {
	p := NewLFUDA(3)
	p.Insert(1, 1)
	p.Insert(2, 1)
	p.Insert(3, 1)
	for i := 0; i < 10; i++ {
		p.Access(1, 1)
		p.Access(2, 1)
	}
	// 3 has frequency 1; inserting 4 must evict 3.
	if v, _ := p.Insert(4, 1); v != 3 {
		t.Errorf("victim = %d, want infrequent 3", v)
	}
	if !p.Contains(1) || !p.Contains(2) {
		t.Error("frequent entries were evicted")
	}
}

func TestLFUDADynamicAgingAdmitsNewEntries(t *testing.T) {
	// Without aging, one-hit wonders could never displace old frequent
	// entries; LFUDA's age factor L must let the working set turn over.
	p := NewLFUDA(2)
	p.Insert(1, 1)
	for i := 0; i < 100; i++ {
		p.Access(1, 1)
	}
	p.Insert(2, 1)
	// Evicting 2 (freq 1, prio 1+L) sets L to its priority, so the next
	// insert's priority grows; repeated scans eventually displace 1.
	for k := Key(3); k < 300; k++ {
		p.Insert(k, 1)
	}
	if p.Contains(1) {
		t.Error("entry 1 survived 300 scans; dynamic aging is not working")
	}
}

func TestGDSFPrefersSmallEntries(t *testing.T) {
	p := NewGDSF(3)
	p.Insert(1, 100) // large
	p.Insert(2, 1)   // small
	p.Insert(3, 1)   // small
	// Equal frequency: K = F/S + L, so the large entry has minimum K.
	if v, _ := p.Insert(4, 1); v != 1 {
		t.Errorf("victim = %d, want large entry 1", v)
	}
}

func TestARCAdaptsP(t *testing.T) {
	a := NewARC(4)
	// Build T2 so T1 < capacity and REPLACE ghosts T1 evictions.
	a.Insert(1, 1)
	a.Access(1, 1) // promote 1 to T2
	a.Insert(2, 1)
	a.Insert(3, 1)
	a.Insert(4, 1) // T1 = {4,3,2}, T2 = {1}
	a.Insert(5, 1) // REPLACE demotes T1 LRU (2) into ghost list B1
	if a.Contains(2) {
		t.Fatal("key 2 should have been evicted")
	}
	if a.P() != 0 {
		t.Fatalf("p = %d before ghost hits, want 0", a.P())
	}
	// Hit the B1 ghost: p must grow (favor recency).
	a.Insert(2, 1)
	if a.P() == 0 {
		t.Error("p did not grow after B1 ghost hit")
	}
	if !a.Contains(2) {
		t.Error("ghost-hit key not resident after reinsert")
	}
}

func TestARCGhostsAreNotResident(t *testing.T) {
	a := NewARC(2)
	a.Insert(1, 1)
	a.Insert(2, 1)
	a.Insert(3, 1) // evicts 1 into B1
	if a.Contains(1) {
		t.Error("ghost entry reported as resident")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
}

func TestARCFrequencyPromotion(t *testing.T) {
	a := NewARC(4)
	a.Insert(1, 1)
	a.Access(1, 1) // 1 promoted to T2
	a.Insert(2, 1)
	a.Insert(3, 1)
	a.Insert(4, 1)
	// Scan: new keys enter T1 and should be evicted before the
	// frequently used key 1.
	for k := Key(10); k < 20; k++ {
		a.Insert(k, 1)
	}
	if !a.Contains(1) {
		t.Error("frequent entry lost to a pure scan (no scan resistance)")
	}
}

func TestARCScanResistanceBeatsLRU(t *testing.T) {
	// Classic ARC scenario: a frequently-reused hot set followed by a
	// long one-shot scan. LRU loses the hot set; ARC keeps it in T2.
	survivors := func(p Policy) int {
		for k := Key(0); k < 8; k++ { // hot set, accessed twice
			p.Insert(k, 1)
			p.Access(k, 1)
		}
		for k := Key(100); k < 1100; k++ { // one-shot scan
			p.Insert(k, 1)
		}
		n := 0
		for k := Key(0); k < 8; k++ {
			if p.Contains(k) {
				n++
			}
		}
		return n
	}
	arcN := survivors(NewARC(16))
	lruN := survivors(NewLRU(16))
	if arcN <= lruN {
		t.Errorf("hot-set survivors: ARC %d, LRU %d; ARC must be scan-resistant", arcN, lruN)
	}
	if arcN != 8 {
		t.Errorf("ARC lost %d of 8 hot entries to a one-shot scan", 8-arcN)
	}
}

// Property: all policies maintain Len <= Capacity, evict only resident
// keys, and report victims consistently, for arbitrary workloads.
func TestPropertyPolicyInvariants(t *testing.T) {
	f := func(seed int64, capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw%31) + 1
		for _, p := range allPolicies(capacity) {
			resident := make(map[Key]bool)
			rng := rand.New(rand.NewSource(seed))
			for _, op := range ops {
				k := Key(op % 97)
				switch rng.Intn(4) {
				case 0:
					p.Access(k, 1)
				case 1:
					if p.Remove(k) != resident[k] {
						return false
					}
					delete(resident, k)
				default:
					if p.Contains(k) {
						p.Access(k, 1)
						continue
					}
					v, ev := p.Insert(k, int64(op%8)+1)
					if ev {
						if !resident[v] {
							return false // evicted a non-resident key
						}
						delete(resident, v)
					}
					resident[k] = true
				}
				if p.Len() > p.Capacity() || p.Len() != len(resident) {
					return false
				}
				for rk := range resident {
					if !p.Contains(rk) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Keys() returns exactly the resident set.
func TestPropertyKeysMatchesContains(t *testing.T) {
	f := func(raw []uint8) bool {
		for _, p := range allPolicies(8) {
			for _, r := range raw {
				k := Key(r % 32)
				if p.Contains(k) {
					p.Access(k, 1)
				} else {
					p.Insert(k, 1)
				}
			}
			keys := p.Keys()
			if len(keys) != p.Len() {
				return false
			}
			for _, k := range keys {
				if !p.Contains(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Zipf-skewed workloads: sanity-check the relative prediction quality
// the paper reports (§5.1): GDSF clearly worst, others comparable.
func TestPolicyRankingOnSkewedWorkload(t *testing.T) {
	run := func(p Policy) float64 {
		rng := rand.New(rand.NewSource(17))
		zipf := rand.NewZipf(rng, 1.2, 1, 5000)
		// Popular data tends to be read with larger sequential requests;
		// GDSF's K = F/S term then penalizes exactly the blocks worth
		// keeping — the paper's explanation for GDSF's poor showing.
		sizeOf := func(k Key) int64 {
			if k < 100 {
				return 64
			}
			return 4
		}
		hits, total := 0, 60000
		for i := 0; i < total; i++ {
			k := Key(zipf.Uint64())
			if p.Contains(k) {
				hits++
				p.Access(k, sizeOf(k))
			} else {
				p.Insert(k, sizeOf(k))
			}
		}
		return float64(hits) / float64(total)
	}
	ratios := make(map[string]float64)
	for _, p := range allPolicies(500) {
		ratios[p.Name()] = run(p)
	}
	for name, r := range ratios {
		if name == "GDSF" {
			continue
		}
		if ratios["GDSF"] >= r {
			t.Errorf("GDSF (%.3f) not worse than %s (%.3f); paper finds GDSF clearly worst",
				ratios["GDSF"], name, r)
		}
	}
	// The non-GDSF policies should be within a few points of each other.
	base := ratios["LRU"]
	for _, name := range []string{"LFUDA", "ARC", "WLRU0.5"} {
		if diff := ratios[name] - base; diff < -0.05 || diff > 0.10 {
			t.Errorf("%s hit ratio %.3f too far from LRU %.3f", name, ratios[name], base)
		}
	}
}

func BenchmarkPolicies(b *testing.B) {
	for _, p := range allPolicies(4096) {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			zipf := rand.NewZipf(rng, 1.1, 1, 1<<20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := Key(zipf.Uint64())
				if p.Contains(k) {
					p.Access(k, 1)
				} else {
					p.Insert(k, 1)
				}
			}
		})
	}
}
