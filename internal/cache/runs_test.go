package cache

import (
	"math/rand"
	"sort"
	"testing"
)

func newPolicy(t *testing.T, name string, capacity int, dirty DirtyFunc) Policy {
	t.Helper()
	p, err := New(name, capacity, Config{WLRUWindow: 0.5, Dirty: dirty})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sortedKeys(p Policy) []Key {
	ks := p.Keys()
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// TestBatchedMatchesPerBlock drives two instances of every policy
// through the same random run workload — one via AccessRun/InsertRun,
// one via loops of Access/Insert — and requires the identical victim
// sequence and identical residency at every step.
func TestBatchedMatchesPerBlock(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			const capacity = 128
			// WLRU consults a dirty predicate; give both instances the
			// same deterministic one.
			dirty := func(k Key) bool { return k%3 == 0 }
			batched := newPolicy(t, name, capacity, dirty)
			perBlock := newPolicy(t, name, capacity, dirty)
			rng := rand.New(rand.NewSource(11))
			for step := 0; step < 3000; step++ {
				k := rng.Int63n(1024)
				n := rng.Int63n(32) + 1
				size := rng.Int63n(256) + 1
				if rng.Intn(2) == 0 {
					batched.AccessRun(k, n, size)
					for i := int64(0); i < n; i++ {
						perBlock.Access(k+i, size)
					}
				} else {
					var got, want []Key
					batched.InsertRun(k, n, size, func(v Key) { got = append(got, v) })
					for i := int64(0); i < n; i++ {
						if v, ev := perBlock.Insert(k+i, size); ev {
							want = append(want, v)
						}
					}
					if len(got) != len(want) {
						t.Fatalf("step %d: batched evicted %d, per-block %d", step, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d: victim %d: batched %d, per-block %d", step, i, got[i], want[i])
						}
					}
				}
				if batched.Len() != perBlock.Len() {
					t.Fatalf("step %d: Len %d != %d", step, batched.Len(), perBlock.Len())
				}
			}
			a, b := sortedKeys(batched), sortedKeys(perBlock)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("final residency diverged at %d: %d != %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestLRUFreelistReuse checks that steady-state insert/evict churn and
// remove/insert churn allocate nothing.
func TestLRUFreelistReuse(t *testing.T) {
	for _, name := range []string{"LRU", "WLRU"} {
		t.Run(name, func(t *testing.T) {
			p := newPolicy(t, name, 64, nil)
			for i := int64(0); i < 64; i++ {
				p.Insert(i, 1)
			}
			next := int64(64)
			allocs := testing.AllocsPerRun(1000, func() {
				p.Insert(next, 1) // at capacity: reuses the victim's entry
				next++
			})
			if allocs > 0 {
				t.Fatalf("insert/evict churn allocated %.1f per op, want 0", allocs)
			}
			allocs = testing.AllocsPerRun(1000, func() {
				p.Remove(next - 1)
				p.Insert(next-1, 1)
			})
			if allocs > 0 {
				t.Fatalf("remove/insert churn allocated %.1f per op, want 0", allocs)
			}
		})
	}
}
