package cache

import (
	"math/rand"
	"testing"
)

// TestKeyIndexMatchesMapReference drives random put/get/del
// interleavings through a keyIndex and a plain Go map side by side.
// Key spaces are sized at a few multiples of capacity so probe chains
// collide and deletions exercise the backward-shift path constantly.
func TestKeyIndexMatchesMapReference(t *testing.T) {
	for _, capacity := range []int{3, 8, 61, 256} {
		rng := rand.New(rand.NewSource(int64(1000 + capacity)))
		x := newKeyIndex(capacity)
		ref := make(map[Key]int32)
		keySpace := int64(4 * capacity)
		for op := 0; op < 20000; op++ {
			k := Key(rng.Int63n(keySpace))
			switch {
			case rng.Intn(10) < 5: // get
				want, ok := ref[k]
				if !ok {
					want = nilSlot
				}
				if got := x.get(k); got != want {
					t.Fatalf("cap %d op %d: get(%d) = %d, want %d", capacity, op, k, got, want)
				}
			case rng.Intn(10) < 7: // put (absent keys only; put assumes absence)
				if _, ok := ref[k]; ok || len(ref) >= capacity {
					continue
				}
				s := int32(rng.Intn(1 << 20))
				x.put(k, s)
				ref[k] = s
			default: // del (present or absent)
				x.del(k)
				delete(ref, k)
			}
		}
		// Final sweep: every model key resolves, a sample of absent keys miss.
		for k, s := range ref {
			if got := x.get(k); got != s {
				t.Fatalf("cap %d final: get(%d) = %d, want %d", capacity, k, got, s)
			}
		}
		for i := 0; i < 100; i++ {
			k := Key(keySpace + rng.Int63n(keySpace))
			if got := x.get(k); got != nilSlot {
				t.Fatalf("cap %d final: absent get(%d) = %d", capacity, k, got)
			}
		}
	}
}

// TestKeyIndexBackwardShiftWraparound pins the delete path where the
// probe chain crosses the table's wrap boundary: keys homing to the
// last cells spill into cell 0 and beyond, and a deletion near the end
// must shift those wrapped successors back across the boundary.
func TestKeyIndexBackwardShiftWraparound(t *testing.T) {
	probe := newKeyIndex(8)
	size := len(probe.cells)
	// Collect keys whose home cell is within 3 of the wrap point, so a
	// handful of inserts builds one chain spanning end → start.
	var keys []Key
	for k := Key(0); len(keys) < 6 && k < 1<<20; k++ {
		if int(probe.home(k)) >= size-3 {
			keys = append(keys, k)
		}
	}
	if len(keys) < 6 {
		t.Fatalf("found only %d wrap-homed keys", len(keys))
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		x := newKeyIndex(8)
		ref := make(map[Key]int32)
		for i, k := range keys {
			x.put(k, int32(i))
			ref[k] = int32(i)
		}
		// Delete a random prefix of a random permutation, checking the
		// survivors (some stored past the wrap) after every deletion.
		perm := rng.Perm(len(keys))
		drop := 1 + rng.Intn(len(keys))
		for _, pi := range perm[:drop] {
			x.del(keys[pi])
			delete(ref, keys[pi])
			for _, k := range keys {
				want, ok := ref[k]
				if !ok {
					want = nilSlot
				}
				if got := x.get(k); got != want {
					t.Fatalf("trial %d: after del, get(%d) = %d, want %d", trial, k, got, want)
				}
			}
		}
		// Reinsert what was dropped; the chain must rebuild cleanly.
		for _, pi := range perm[:drop] {
			k := keys[pi]
			x.put(k, int32(pi))
			ref[k] = int32(pi)
		}
		for _, k := range keys {
			if got := x.get(k); got != ref[k] {
				t.Fatalf("trial %d: after reinsert, get(%d) = %d, want %d", trial, k, got, ref[k])
			}
		}
	}
}

// TestKeyIndexProbeAllocFree gates the packed-cell probe loops: get,
// put, del and findCell must not allocate — they are inner loops of
// every policy's Access/Insert/Remove path.
func TestKeyIndexProbeAllocFree(t *testing.T) {
	x := newKeyIndex(1024)
	for i := 0; i < 1024; i++ {
		x.put(Key(i*7), int32(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			if x.get(Key(i*7)) != int32(i) {
				t.Error("resident key missing")
			}
		}
		x.del(Key(7 * 513))
		if cell, s := x.findCell(Key(7 * 513)); s == nilSlot {
			x.setCell(cell, Key(7*513), 513)
		}
	})
	if allocs != 0 {
		t.Fatalf("keyIndex probe loop allocates: %v allocs/run", allocs)
	}
}

// benchIndex builds a table of n resident keys plus a shuffled probe
// order large enough to defeat the prefetcher.
func benchIndex(n int) (*keyIndex, []Key) {
	x := newKeyIndex(n)
	keys := make([]Key, n)
	rng := rand.New(rand.NewSource(9))
	for i := range keys {
		keys[i] = Key(int64(i)*64 + rng.Int63n(64))
		x.put(keys[i], int32(i))
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return &x, keys
}

// BenchmarkKeyIndexProbeHit measures resident-key probes on a table an
// order of magnitude past L2, where the packed 16-byte cells' one line
// per probe step (vs two in the split keys/slots layout) dominates.
func BenchmarkKeyIndexProbeHit(b *testing.B) {
	x, keys := benchIndex(1 << 18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.get(keys[i&(1<<18-1)]) == nilSlot {
			b.Fatal("resident key missing")
		}
	}
}

// BenchmarkKeyIndexProbeMiss measures absent-key probes (the Insert
// fast path's findCell shape: walk to the first empty cell).
func BenchmarkKeyIndexProbeMiss(b *testing.B) {
	x, keys := benchIndex(1 << 18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.get(keys[i&(1<<18-1)]+1<<40) != nilSlot {
			b.Fatal("phantom key resident")
		}
	}
}

// BenchmarkKeyIndexChurn measures the evict-reinsert shape: one
// backward-shift delete plus one put per operation.
func BenchmarkKeyIndexChurn(b *testing.B) {
	x, keys := benchIndex(1 << 18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<18-1)]
		x.del(k)
		x.put(k, int32(i))
	}
}
