package cache

// The map-based reference policies: the pre-arena implementations of
// LRU, WLRU, LFUDA, GDSF and ARC, retained verbatim (map[Key]*entry
// residency, pointer-linked lists, container/heap) as the executable
// specification the slot-arena rewrites are property-tested against.
// newReferencePolicy mirrors New; equivalence_test.go drives both
// implementations through identical workloads and requires bit-identical
// victim sequences, residency and adaptive state at every step.

import (
	"container/heap"
	"fmt"
	"strconv"
)

// newReferencePolicy constructs the map-based reference for name.
func newReferencePolicy(name string, capacity int, cfg Config) (Policy, error) {
	switch name {
	case "LRU":
		return newRefLRU(capacity), nil
	case "LFUDA":
		return newRefAging("LFUDA", capacity, false), nil
	case "GDSF":
		return newRefAging("GDSF", capacity, true), nil
	case "ARC":
		return newRefARC(capacity), nil
	case "WLRU":
		w := cfg.WLRUWindow
		if w == 0 {
			w = 0.5
		}
		return newRefWLRU(capacity, w, cfg.Dirty), nil
	}
	return nil, fmt.Errorf("cache: unknown reference policy %q", name)
}

// refEntry is a node of the reference's pointer-linked LRU list.
type refEntry struct {
	key        Key
	prev, next *refEntry
}

type refList struct {
	head, tail refEntry // sentinels
	size       int
}

func (l *refList) init() {
	l.head.next = &l.tail
	l.tail.prev = &l.head
	l.size = 0
}

func (l *refList) pushFront(e *refEntry) {
	e.prev = &l.head
	e.next = l.head.next
	e.prev.next = e
	e.next.prev = e
	l.size++
}

func (l *refList) remove(e *refEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.size--
}

func (l *refList) moveFront(e *refEntry) {
	l.remove(e)
	l.pushFront(e)
}

func (l *refList) back() *refEntry {
	if l.size == 0 {
		return nil
	}
	return l.tail.prev
}

// refLRU is the reference LRU/WLRU: map residency + pointer list.
// window < 0 means plain LRU.
type refLRU struct {
	name     string
	capacity int
	window   float64
	dirty    DirtyFunc
	items    map[Key]*refEntry
	list     refList
}

func newRefLRU(capacity int) *refLRU {
	l := &refLRU{name: "LRU", capacity: capacity, window: -1,
		items: make(map[Key]*refEntry, capacity)}
	l.list.init()
	return l
}

func newRefWLRU(capacity int, w float64, dirty DirtyFunc) *refLRU {
	l := &refLRU{name: "WLRU" + strconv.FormatFloat(w, 'g', -1, 64),
		capacity: capacity, window: w, dirty: dirty,
		items: make(map[Key]*refEntry, capacity)}
	l.list.init()
	return l
}

func (l *refLRU) Name() string        { return l.name }
func (l *refLRU) Capacity() int       { return l.capacity }
func (l *refLRU) Len() int            { return len(l.items) }
func (l *refLRU) Contains(k Key) bool { _, ok := l.items[k]; return ok }

func (l *refLRU) Access(k Key, _ int64) {
	if e, ok := l.items[k]; ok {
		l.list.moveFront(e)
	}
}

func (l *refLRU) pickVictim() *refEntry {
	lru := l.list.back()
	if l.window < 0 || l.dirty == nil {
		return lru
	}
	limit := int(l.window * float64(l.capacity))
	e := lru
	for i := 0; i < limit && e != &l.list.head; i++ {
		if !l.dirty(e.key) {
			return e
		}
		e = e.prev
	}
	return lru
}

func (l *refLRU) Insert(k Key, size int64) (Key, bool) {
	if _, ok := l.items[k]; ok {
		l.Access(k, size)
		return 0, false
	}
	var victim Key
	evicted := false
	var e *refEntry
	if len(l.items) >= l.capacity {
		v := l.pickVictim()
		l.list.remove(v)
		delete(l.items, v.key)
		victim, evicted = v.key, true
		e = v
		e.key = k
	} else {
		e = &refEntry{key: k}
	}
	l.items[k] = e
	l.list.pushFront(e)
	return victim, evicted
}

func (l *refLRU) AccessRun(k Key, n, size int64) { accessRunGeneric(l, k, n, size) }
func (l *refLRU) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(l, k, n, size, evicted)
}

func (l *refLRU) Remove(k Key) bool {
	e, ok := l.items[k]
	if !ok {
		return false
	}
	l.list.remove(e)
	delete(l.items, k)
	return true
}

func (l *refLRU) Clear() {
	l.items = make(map[Key]*refEntry, l.capacity)
	l.list.init()
}

func (l *refLRU) Keys() []Key {
	out := make([]Key, 0, len(l.items))
	for k := range l.items {
		out = append(out, k)
	}
	return out
}

// refAgingEntry is a node of the reference GreedyDual heap.
type refAgingEntry struct {
	key   Key
	freq  int64
	size  int64
	prio  float64
	seq   uint64
	index int
}

type refAgingHeap []*refAgingEntry

func (h refAgingHeap) Len() int { return len(h) }
func (h refAgingHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h refAgingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refAgingHeap) Push(x interface{}) {
	e := x.(*refAgingEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refAgingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// refAging is the reference LFUDA/GDSF: map residency + container/heap.
type refAging struct {
	name     string
	capacity int
	items    map[Key]*refAgingEntry
	heap     refAgingHeap
	age      float64
	seq      uint64
	useSize  bool
}

func newRefAging(name string, capacity int, useSize bool) *refAging {
	return &refAging{
		name:     name,
		capacity: capacity,
		items:    make(map[Key]*refAgingEntry, capacity),
		useSize:  useSize,
	}
}

func (p *refAging) Name() string        { return p.name }
func (p *refAging) Capacity() int       { return p.capacity }
func (p *refAging) Len() int            { return len(p.items) }
func (p *refAging) Contains(k Key) bool { _, ok := p.items[k]; return ok }

func (p *refAging) priority(freq, size int64) float64 {
	const cost = 1.0
	if p.useSize && size > 0 {
		return cost*float64(freq)/float64(size) + p.age
	}
	return cost*float64(freq) + p.age
}

func (p *refAging) Access(k Key, size int64) {
	e, ok := p.items[k]
	if !ok {
		return
	}
	e.freq++
	if size > 0 {
		e.size = size
	}
	e.prio = p.priority(e.freq, e.size)
	heap.Fix(&p.heap, e.index)
}

func (p *refAging) Insert(k Key, size int64) (Key, bool) {
	if _, ok := p.items[k]; ok {
		p.Access(k, size)
		return 0, false
	}
	var victim Key
	evicted := false
	if len(p.items) >= p.capacity {
		min := heap.Pop(&p.heap).(*refAgingEntry)
		delete(p.items, min.key)
		p.age = min.prio
		victim, evicted = min.key, true
	}
	if size <= 0 {
		size = 1
	}
	p.seq++
	e := &refAgingEntry{key: k, freq: 1, size: size, seq: p.seq}
	e.prio = p.priority(e.freq, e.size)
	p.items[k] = e
	heap.Push(&p.heap, e)
	return victim, evicted
}

func (p *refAging) AccessRun(k Key, n, size int64) { accessRunGeneric(p, k, n, size) }
func (p *refAging) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(p, k, n, size, evicted)
}

func (p *refAging) Remove(k Key) bool {
	e, ok := p.items[k]
	if !ok {
		return false
	}
	heap.Remove(&p.heap, e.index)
	delete(p.items, k)
	return true
}

func (p *refAging) Clear() {
	p.items = make(map[Key]*refAgingEntry, p.capacity)
	p.heap = p.heap[:0]
	p.age = 0
}

func (p *refAging) Keys() []Key {
	out := make([]Key, 0, len(p.items))
	for k := range p.items {
		out = append(out, k)
	}
	return out
}

// refARC is the reference ARC: map residency + four pointer lists.
type refARC struct {
	capacity int
	p        int

	t1, t2, b1, b2 refList
	where          map[Key]*refARCEntry
}

type refARCEntry struct {
	refEntry
	list *refList
}

func newRefARC(capacity int) *refARC {
	a := &refARC{capacity: capacity, where: make(map[Key]*refARCEntry, 2*capacity)}
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	return a
}

func (a *refARC) Name() string  { return "ARC" }
func (a *refARC) Capacity() int { return a.capacity }
func (a *refARC) Len() int      { return a.t1.size + a.t2.size }
func (a *refARC) P() int        { return a.p }

func (a *refARC) Contains(k Key) bool {
	e, ok := a.where[k]
	return ok && (e.list == &a.t1 || e.list == &a.t2)
}

func (a *refARC) Access(k Key, _ int64) {
	e, ok := a.where[k]
	if !ok || (e.list != &a.t1 && e.list != &a.t2) {
		return
	}
	e.list.remove(&e.refEntry)
	e.list = &a.t2
	a.t2.pushFront(&e.refEntry)
}

func (a *refARC) Insert(k Key, size int64) (Key, bool) {
	if e, ok := a.where[k]; ok {
		switch e.list {
		case &a.t1, &a.t2:
			a.Access(k, size)
			return 0, false
		case &a.b1:
			delta := 1
			if a.b1.size > 0 && a.b2.size/a.b1.size > 1 {
				delta = a.b2.size / a.b1.size
			}
			a.p = min(a.capacity, a.p+delta)
			victim, evicted := a.replace(false)
			e.list.remove(&e.refEntry)
			e.list = &a.t2
			a.t2.pushFront(&e.refEntry)
			return victim, evicted
		default:
			delta := 1
			if a.b2.size > 0 && a.b1.size/a.b2.size > 1 {
				delta = a.b1.size / a.b2.size
			}
			a.p = max(0, a.p-delta)
			victim, evicted := a.replace(true)
			e.list.remove(&e.refEntry)
			e.list = &a.t2
			a.t2.pushFront(&e.refEntry)
			return victim, evicted
		}
	}

	var victim Key
	evicted := false
	if a.t1.size+a.b1.size == a.capacity {
		if a.t1.size < a.capacity {
			a.dropLRU(&a.b1)
			victim, evicted = a.replace(false)
		} else {
			lru := a.t1.back()
			a.t1.remove(lru)
			delete(a.where, lru.key)
			victim, evicted = lru.key, true
		}
	} else if a.t1.size+a.b1.size < a.capacity {
		total := a.t1.size + a.t2.size + a.b1.size + a.b2.size
		if total >= a.capacity {
			if total == 2*a.capacity {
				a.dropLRU(&a.b2)
			}
			victim, evicted = a.replace(false)
		}
	}
	e := &refARCEntry{refEntry: refEntry{key: k}, list: &a.t1}
	a.where[k] = e
	a.t1.pushFront(&e.refEntry)
	return victim, evicted
}

func (a *refARC) AccessRun(k Key, n, size int64) { accessRunGeneric(a, k, n, size) }
func (a *refARC) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(a, k, n, size, evicted)
}

func (a *refARC) replace(inB2 bool) (Key, bool) {
	if a.t1.size >= 1 && ((inB2 && a.t1.size == a.p) || a.t1.size > a.p) {
		lru := a.t1.back()
		a.t1.remove(lru)
		e := a.where[lru.key]
		e.list = &a.b1
		a.b1.pushFront(lru)
		return lru.key, true
	}
	if a.t2.size >= 1 {
		lru := a.t2.back()
		a.t2.remove(lru)
		e := a.where[lru.key]
		e.list = &a.b2
		a.b2.pushFront(lru)
		return lru.key, true
	}
	return 0, false
}

func (a *refARC) dropLRU(l *refList) {
	lru := l.back()
	if lru == nil {
		return
	}
	l.remove(lru)
	delete(a.where, lru.key)
}

func (a *refARC) Remove(k Key) bool {
	e, ok := a.where[k]
	if !ok {
		return false
	}
	resident := e.list == &a.t1 || e.list == &a.t2
	e.list.remove(&e.refEntry)
	delete(a.where, k)
	return resident
}

func (a *refARC) Clear() {
	a.where = make(map[Key]*refARCEntry, 2*a.capacity)
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	a.p = 0
}

func (a *refARC) Keys() []Key {
	out := make([]Key, 0, a.Len())
	for k, e := range a.where {
		if e.list == &a.t1 || e.list == &a.t2 {
			out = append(out, k)
		}
	}
	return out
}
