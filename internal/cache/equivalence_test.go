package cache

import (
	"math/rand"
	"testing"
)

// TestArenaMatchesMapReference is the rewrite's safety net: every
// slot-arena policy is driven through a long random workload — point
// ops, run ops, removes — in lockstep with its retained map-based
// reference (reference_test.go), requiring the identical victim
// sequence at every insert, identical Len and residency at every step,
// and identical adaptive state (ARC's p) throughout.
func TestArenaMatchesMapReference(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				const capacity = 96
				dirty := func(k Key) bool { return k%3 == 0 }
				cfg := Config{WLRUWindow: 0.5, Dirty: dirty}
				arena, err := New(name, capacity, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := newReferencePolicy(name, capacity, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(101 + seed))
				var got, want []Key
				for step := 0; step < 4000; step++ {
					k := rng.Int63n(768)
					size := rng.Int63n(256) + 1
					switch rng.Intn(10) {
					case 0: // point access
						arena.Access(k, size)
						ref.Access(k, size)
					case 1: // remove
						if arena.Remove(k) != ref.Remove(k) {
							t.Fatalf("step %d: Remove(%d) diverged", step, k)
						}
					case 2: // point insert
						gv, ge := arena.Insert(k, size)
						wv, we := ref.Insert(k, size)
						if ge != we || (ge && gv != wv) {
							t.Fatalf("step %d: Insert(%d) victim %d/%v, want %d/%v",
								step, k, gv, ge, wv, we)
						}
					case 3, 4, 5: // access run
						n := rng.Int63n(48) + 1
						arena.AccessRun(k, n, size)
						ref.AccessRun(k, n, size)
					default: // insert run
						n := rng.Int63n(48) + 1
						got, want = got[:0], want[:0]
						arena.InsertRun(k, n, size, func(v Key) { got = append(got, v) })
						ref.InsertRun(k, n, size, func(v Key) { want = append(want, v) })
						if len(got) != len(want) {
							t.Fatalf("step %d: InsertRun(%d,%d) evicted %d, want %d",
								step, k, n, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("step %d: victim %d: got %d, want %d", step, i, got[i], want[i])
							}
						}
					}
					if arena.Len() != ref.Len() {
						t.Fatalf("step %d: Len %d != %d", step, arena.Len(), ref.Len())
					}
					if probe := Key(rng.Int63n(768)); arena.Contains(probe) != ref.Contains(probe) {
						t.Fatalf("step %d: Contains(%d) diverged", step, probe)
					}
					if a, ok := arena.(*ARC); ok {
						if r := ref.(*refARC); a.P() != r.P() {
							t.Fatalf("step %d: ARC p %d != %d", step, a.P(), r.P())
						}
					}
				}
				a, b := sortedKeys(arena), sortedKeys(ref)
				if len(a) != len(b) {
					t.Fatalf("final residency size %d != %d", len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("final residency diverged at %d: %d != %d", i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestArenaMatchesMapReferenceExtents replays the monitor's actual
// traffic shape — long consecutive runs, re-accessed whole — where the
// one-probe chain-splice fast paths of LRU/WLRU fire constantly, and
// checks victims and residency against the reference per step.
func TestArenaMatchesMapReferenceExtents(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			const capacity = 512
			dirty := func(k Key) bool { return k%7 < 2 }
			cfg := Config{WLRUWindow: 0.5, Dirty: dirty}
			arena, _ := New(name, capacity, cfg)
			ref, _ := newReferencePolicy(name, capacity, cfg)
			rng := rand.New(rand.NewSource(7))
			var got, want []Key
			for step := 0; step < 2500; step++ {
				// Extent traffic: 64-block aligned runs over 4x capacity.
				k := 64 * rng.Int63n(32)
				n := int64(64)
				if rng.Intn(4) == 0 { // occasionally a partial extent
					k += rng.Int63n(32)
					n = rng.Int63n(63) + 1
				}
				if rng.Intn(2) == 0 {
					arena.AccessRun(k, n, 64)
					ref.AccessRun(k, n, 64)
				} else {
					got, want = got[:0], want[:0]
					arena.InsertRun(k, n, 64, func(v Key) { got = append(got, v) })
					ref.InsertRun(k, n, 64, func(v Key) { want = append(want, v) })
					if len(got) != len(want) {
						t.Fatalf("step %d: evicted %d, want %d", step, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d: victim %d: got %d, want %d", step, i, got[i], want[i])
						}
					}
				}
				if arena.Len() != ref.Len() {
					t.Fatalf("step %d: Len %d != %d", step, arena.Len(), ref.Len())
				}
			}
			a, b := sortedKeys(arena), sortedKeys(ref)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("final residency diverged at %d: %d != %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestKeyIndexBackwardShift exercises the open-addressing index
// directly under heavy collision churn: keys chosen to collide (dense
// sequential and strided), interleaved put/del, verified against a map.
func TestKeyIndexBackwardShift(t *testing.T) {
	x := newKeyIndex(128)
	shadow := make(map[Key]int32)
	rng := rand.New(rand.NewSource(3))
	nextSlot := int32(0)
	for step := 0; step < 20000; step++ {
		var k Key
		switch rng.Intn(3) {
		case 0:
			k = rng.Int63n(256) // dense
		case 1:
			k = 64 * rng.Int63n(256) // strided
		default:
			k = rng.Int63() // sparse
		}
		if s, ok := shadow[k]; ok {
			if rng.Intn(2) == 0 {
				if got := x.get(k); got != s {
					t.Fatalf("step %d: get(%d) = %d, want %d", step, k, got, s)
				}
			} else {
				x.del(k)
				delete(shadow, k)
				if got := x.get(k); got != nilSlot {
					t.Fatalf("step %d: get(%d) = %d after del", step, k, got)
				}
			}
		} else if len(shadow) < 128 {
			x.put(k, nextSlot)
			shadow[k] = nextSlot
			nextSlot++
		}
	}
	for k, s := range shadow {
		if got := x.get(k); got != s {
			t.Fatalf("final: get(%d) = %d, want %d", k, got, s)
		}
	}
}
