// Package cache implements the replacement policies CRAID's I/O
// monitor can use to manage the cache partition: LRU, LFUDA, GDSF, ARC
// and WLRU(w) (paper §4.1). All policies store opaque int64 keys (block
// numbers), run in O(1) or O(log n) per operation, and are deliberately
// lightweight — the paper chooses them because they are cheap enough to
// live inside a RAID controller.
//
// Every policy is built on dense slot arenas (see arena.go): entries
// live in flat []slot arrays indexed by int32 handles, intrusive links
// are slot indices, and residency is resolved by one open-addressing
// int64→int32 index per policy — no Go maps, no per-entry heap objects,
// and zero allocation on every steady-state operation including
// AccessRun/InsertRun. The map-based originals are retained in
// reference_test.go, and property tests pin the arena policies to them
// victim-for-victim.
package cache

import "fmt"

// Key identifies a cached entry (a block address in CRAID's use).
type Key = int64

// Policy is a fixed-capacity replacement policy. It tracks only keys
// and replacement metadata; the data itself lives elsewhere.
type Policy interface {
	// Name returns the policy's canonical name, e.g. "ARC" or "WLRU0.5".
	Name() string
	// Capacity returns the maximum number of entries.
	Capacity() int
	// Len returns the current number of entries.
	Len() int
	// Contains reports whether k is resident (ghost entries excluded).
	Contains(k Key) bool
	// Access records a hit on k. size is the originating request size
	// in blocks (only GDSF uses it). Access on a non-resident key is a
	// no-op.
	Access(k Key, size int64)
	// Insert adds non-resident k, evicting a victim if at capacity.
	// Inserting a resident key is equivalent to Access.
	Insert(k Key, size int64) (victim Key, evicted bool)
	// AccessRun records hits on the n consecutive keys k..k+n-1 in
	// ascending order, exactly as a loop of Access would. Batched so
	// extent-granularity callers cross the interface once per run.
	AccessRun(k Key, n, size int64)
	// InsertRun inserts the n consecutive keys k..k+n-1 in ascending
	// order, calling evicted for each victim as it is displaced,
	// exactly as a loop of Insert would. evicted must not call back
	// into the policy.
	InsertRun(k Key, n, size int64, evicted func(victim Key))
	// Remove deletes k if resident, reporting whether it was.
	Remove(k Key) bool
	// Clear drops all entries (and any adaptive state that only makes
	// sense for the current residency, e.g. ARC ghosts).
	Clear()
	// Keys returns resident keys in no particular order.
	Keys() []Key
}

// DirtyFunc reports whether a key's cached copy is dirty. WLRU consults
// it to prefer clean victims (a dirty eviction costs CRAID four extra
// parity I/Os).
type DirtyFunc func(Key) bool

// Config carries optional policy parameters.
type Config struct {
	// WLRUWindow is the w parameter of WLRU: the fraction of capacity
	// scanned for a clean victim before falling back to plain LRU.
	WLRUWindow float64
	// Dirty is consulted by WLRU; nil means "never dirty".
	Dirty DirtyFunc
}

// New constructs a policy by canonical name: "LRU", "LFUDA", "GDSF",
// "ARC" or "WLRU" (window from cfg, default 0.5).
func New(name string, capacity int, cfg Config) (Policy, error) {
	switch name {
	case "LRU":
		return NewLRU(capacity), nil
	case "LFUDA":
		return NewLFUDA(capacity), nil
	case "GDSF":
		return NewGDSF(capacity), nil
	case "ARC":
		return NewARC(capacity), nil
	case "WLRU":
		w := cfg.WLRUWindow
		if w == 0 {
			w = 0.5
		}
		return NewWLRU(capacity, w, cfg.Dirty), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q", name)
}

// Names returns the canonical policy names in the paper's order.
func Names() []string { return []string{"LRU", "LFUDA", "GDSF", "ARC", "WLRU"} }

// accessRunGeneric is the per-key fallback for policies without a
// native batched access path.
func accessRunGeneric(p Policy, k Key, n, size int64) {
	for i := int64(0); i < n; i++ {
		p.Access(k+i, size)
	}
}

// insertRunGeneric is the per-key fallback for policies without a
// native batched insert path; it is also the reference semantics the
// property tests pin the native run paths against.
func insertRunGeneric(p Policy, k Key, n, size int64, evicted func(Key)) {
	for i := int64(0); i < n; i++ {
		if v, ev := p.Insert(k+i, size); ev {
			evicted(v)
		}
	}
}
