package cache

import "testing"

// The slot-arena contract: after construction, no steady-state policy
// operation allocates — not point ops, not run ops, not insert/evict
// churn at capacity. These gates hold for ALL five policies (the old
// design only managed it for LRU/WLRU), which is what makes the CRAID
// Submit path allocation-free end to end (core's TestSubmitWarmAllocFree).

// gatePolicy builds a warm policy at capacity 2048 with a non-nil
// allocation-free dirty func for WLRU.
func gatePolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, err := New(name, 2048, Config{WLRUWindow: 0.5, Dirty: func(k Key) bool { return k%5 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2048; i += 64 {
		p.InsertRun(i, 64, 64, func(Key) {})
	}
	return p
}

// TestAccessRunAllocFree gates AccessRun at zero allocations for every
// policy, on both all-hit extents and scattered partial hits.
func TestAccessRunAllocFree(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := gatePolicy(t, name)
			k := int64(0)
			if allocs := testing.AllocsPerRun(500, func() {
				p.AccessRun(k%2048, 64, 64)
				k += 64
			}); allocs > 0 {
				t.Fatalf("AccessRun allocated %.1f per run, want 0", allocs)
			}
		})
	}
}

// TestInsertRunAllocFree gates InsertRun at zero allocations for every
// policy under steady-state insert/evict churn (fresh runs against a
// full cache: every insert displaces a victim).
func TestInsertRunAllocFree(t *testing.T) {
	sink := func(Key) {}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := gatePolicy(t, name)
			next := int64(1 << 20)
			if allocs := testing.AllocsPerRun(500, func() {
				p.InsertRun(next, 64, 64, sink)
				next += 64
			}); allocs > 0 {
				t.Fatalf("InsertRun churn allocated %.1f per run, want 0", allocs)
			}
		})
	}
}

// TestPointOpsAllocFree gates the point operations (Access, Insert,
// Remove, Contains) at zero steady-state allocations for every policy.
func TestPointOpsAllocFree(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := gatePolicy(t, name)
			next := int64(1 << 20)
			if allocs := testing.AllocsPerRun(1000, func() {
				p.Insert(next, 1) // at capacity: evicts
				p.Access(next, 1)
				p.Remove(next)
				p.Insert(next, 1)
				next++
			}); allocs > 0 {
				t.Fatalf("point-op churn allocated %.1f per op, want 0", allocs)
			}
		})
	}
}
