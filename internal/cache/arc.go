package cache

// ARC is the Adaptive Replacement Cache of Megiddo and Modha (FAST ’03):
// it balances recency (T1) against frequency (T2) online by tracking
// ghost hits on recently evicted entries (B1, B2) and adapting the
// target size p of T1.
type ARC struct {
	capacity int
	p        int // target size of T1

	t1, t2, b1, b2 lruList
	where          map[Key]*arcEntry
}

type arcEntry struct {
	entry
	list *lruList // which of t1/t2/b1/b2 holds it
}

// NewARC returns an ARC policy with the given capacity.
func NewARC(capacity int) *ARC {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	a := &ARC{capacity: capacity, where: make(map[Key]*arcEntry, 2*capacity)}
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	return a
}

// Name implements Policy.
func (a *ARC) Name() string { return "ARC" }

// Capacity implements Policy.
func (a *ARC) Capacity() int { return a.capacity }

// Len implements Policy.
func (a *ARC) Len() int { return a.t1.size + a.t2.size }

// P exposes the adaptive target size of T1 (for tests and diagnostics).
func (a *ARC) P() int { return a.p }

// Contains implements Policy: only T1 ∪ T2 are resident; ghosts are not.
func (a *ARC) Contains(k Key) bool {
	e, ok := a.where[k]
	return ok && (e.list == &a.t1 || e.list == &a.t2)
}

// Access implements Policy (case I of the ARC algorithm).
func (a *ARC) Access(k Key, _ int64) {
	e, ok := a.where[k]
	if !ok || (e.list != &a.t1 && e.list != &a.t2) {
		return
	}
	e.list.remove(&e.entry)
	e.list = &a.t2
	a.t2.pushFront(&e.entry)
}

// Insert implements Policy (cases II–IV).
func (a *ARC) Insert(k Key, size int64) (Key, bool) {
	if e, ok := a.where[k]; ok {
		switch e.list {
		case &a.t1, &a.t2:
			a.Access(k, size)
			return 0, false
		case &a.b1: // case II: ghost hit in B1 → grow p
			delta := 1
			if a.b1.size > 0 && a.b2.size/a.b1.size > 1 {
				delta = a.b2.size / a.b1.size
			}
			a.p = min(a.capacity, a.p+delta)
			victim, evicted := a.replace(false)
			e.list.remove(&e.entry)
			e.list = &a.t2
			a.t2.pushFront(&e.entry)
			return victim, evicted
		default: // case III: ghost hit in B2 → shrink p
			delta := 1
			if a.b2.size > 0 && a.b1.size/a.b2.size > 1 {
				delta = a.b1.size / a.b2.size
			}
			a.p = max(0, a.p-delta)
			victim, evicted := a.replace(true)
			e.list.remove(&e.entry)
			e.list = &a.t2
			a.t2.pushFront(&e.entry)
			return victim, evicted
		}
	}

	// Case IV: completely new key.
	var victim Key
	evicted := false
	if a.t1.size+a.b1.size == a.capacity {
		if a.t1.size < a.capacity {
			a.dropLRU(&a.b1)
			victim, evicted = a.replace(false)
		} else {
			// B1 is empty and T1 is full: evict the T1 LRU outright
			// (it does not become a ghost).
			lru := a.t1.back()
			a.t1.remove(lru)
			delete(a.where, lru.key)
			victim, evicted = lru.key, true
		}
	} else if a.t1.size+a.b1.size < a.capacity {
		total := a.t1.size + a.t2.size + a.b1.size + a.b2.size
		if total >= a.capacity {
			if total == 2*a.capacity {
				a.dropLRU(&a.b2)
			}
			victim, evicted = a.replace(false)
		}
	}
	e := &arcEntry{entry: entry{key: k}, list: &a.t1}
	a.where[k] = e
	a.t1.pushFront(&e.entry)
	return victim, evicted
}

// AccessRun implements Policy via the generic per-key fallback (ARC's
// ghost-list bookkeeping has no batched shortcut).
func (a *ARC) AccessRun(k Key, n, size int64) { accessRunGeneric(a, k, n, size) }

// InsertRun implements Policy via the generic per-key fallback.
func (a *ARC) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(a, k, n, size, evicted)
}

// replace implements REPLACE(x, p): demote from T1 or T2 into the
// corresponding ghost list and report the evicted key. inB2 is whether
// the triggering key was a B2 ghost.
func (a *ARC) replace(inB2 bool) (Key, bool) {
	if a.t1.size >= 1 && ((inB2 && a.t1.size == a.p) || a.t1.size > a.p) {
		lru := a.t1.back()
		a.t1.remove(lru)
		e := a.where[lru.key]
		e.list = &a.b1
		a.b1.pushFront(lru)
		return lru.key, true
	}
	if a.t2.size >= 1 {
		lru := a.t2.back()
		a.t2.remove(lru)
		e := a.where[lru.key]
		e.list = &a.b2
		a.b2.pushFront(lru)
		return lru.key, true
	}
	return 0, false
}

// dropLRU discards the LRU ghost of list l entirely.
func (a *ARC) dropLRU(l *lruList) {
	lru := l.back()
	if lru == nil {
		return
	}
	l.remove(lru)
	delete(a.where, lru.key)
}

// Remove implements Policy. Removing a resident entry also forgets any
// ghost state for it.
func (a *ARC) Remove(k Key) bool {
	e, ok := a.where[k]
	if !ok {
		return false
	}
	resident := e.list == &a.t1 || e.list == &a.t2
	e.list.remove(&e.entry)
	delete(a.where, k)
	return resident
}

// Clear implements Policy.
func (a *ARC) Clear() {
	a.where = make(map[Key]*arcEntry, 2*a.capacity)
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	a.p = 0
}

// Keys implements Policy.
func (a *ARC) Keys() []Key {
	out := make([]Key, 0, a.Len())
	for k, e := range a.where {
		if e.list == &a.t1 || e.list == &a.t2 {
			out = append(out, k)
		}
	}
	return out
}
