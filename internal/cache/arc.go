package cache

// ARC list tags: which of T1/T2/B1/B2 currently holds a slot.
const (
	arcT1 = uint8(iota + 1)
	arcT2
	arcB1
	arcB2
)

// ARC is the Adaptive Replacement Cache of Megiddo and Modha (FAST ’03):
// it balances recency (T1) against frequency (T2) online by tracking
// ghost hits on recently evicted entries (B1, B2) and adapting the
// target size p of T1. Residents and ghosts share one slot arena of
// 2·capacity entries (the algorithm's total-population bound) with a
// per-slot list tag, and one keyIndex resolves both.
type ARC struct {
	capacity int
	p        int // target size of T1

	slots []slot
	where []uint8 // arcT1..arcB2; parallel to slots
	idx   keyIndex
	free  int32
	used  int32

	t1, t2, b1, b2 slotList
}

// NewARC returns an ARC policy with the given capacity.
func NewARC(capacity int) *ARC {
	if capacity < 1 {
		panic("cache: capacity must be positive")
	}
	a := &ARC{
		capacity: capacity,
		slots:    make([]slot, 2*capacity),
		where:    make([]uint8, 2*capacity),
		idx:      newKeyIndex(2 * capacity),
		free:     nilSlot,
	}
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	return a
}

// listOf maps a tag to its list.
func (a *ARC) listOf(w uint8) *slotList {
	switch w {
	case arcT1:
		return &a.t1
	case arcT2:
		return &a.t2
	case arcB1:
		return &a.b1
	default:
		return &a.b2
	}
}

func (a *ARC) alloc(k Key) int32 { return arenaAlloc(a.slots, &a.free, &a.used, k) }

func (a *ARC) release(s int32) {
	a.where[s] = 0
	arenaRelease(a.slots, &a.free, s)
}

// Name implements Policy.
func (a *ARC) Name() string { return "ARC" }

// Capacity implements Policy.
func (a *ARC) Capacity() int { return a.capacity }

// Len implements Policy.
func (a *ARC) Len() int { return a.t1.size + a.t2.size }

// P exposes the adaptive target size of T1 (for tests and diagnostics).
func (a *ARC) P() int { return a.p }

// Contains implements Policy: only T1 ∪ T2 are resident; ghosts are not.
func (a *ARC) Contains(k Key) bool {
	s := a.idx.get(k)
	return s != nilSlot && (a.where[s] == arcT1 || a.where[s] == arcT2)
}

// Access implements Policy (case I of the ARC algorithm).
func (a *ARC) Access(k Key, _ int64) {
	s := a.idx.get(k)
	if s == nilSlot || (a.where[s] != arcT1 && a.where[s] != arcT2) {
		return
	}
	a.listOf(a.where[s]).remove(a.slots, s)
	a.where[s] = arcT2
	a.t2.pushFront(a.slots, s)
}

// Insert implements Policy (cases II–IV).
func (a *ARC) Insert(k Key, size int64) (Key, bool) {
	if s := a.idx.get(k); s != nilSlot {
		switch a.where[s] {
		case arcT1, arcT2:
			a.Access(k, size)
			return 0, false
		case arcB1: // case II: ghost hit in B1 → grow p
			delta := 1
			if a.b1.size > 0 && a.b2.size/a.b1.size > 1 {
				delta = a.b2.size / a.b1.size
			}
			a.p = min(a.capacity, a.p+delta)
			victim, evicted := a.replace(false)
			a.b1.remove(a.slots, s)
			a.where[s] = arcT2
			a.t2.pushFront(a.slots, s)
			return victim, evicted
		default: // case III: ghost hit in B2 → shrink p
			delta := 1
			if a.b2.size > 0 && a.b1.size/a.b2.size > 1 {
				delta = a.b1.size / a.b2.size
			}
			a.p = max(0, a.p-delta)
			victim, evicted := a.replace(true)
			a.b2.remove(a.slots, s)
			a.where[s] = arcT2
			a.t2.pushFront(a.slots, s)
			return victim, evicted
		}
	}

	// Case IV: completely new key.
	var victim Key
	evicted := false
	if a.t1.size+a.b1.size == a.capacity {
		if a.t1.size < a.capacity {
			a.dropLRU(&a.b1)
			victim, evicted = a.replace(false)
		} else {
			// B1 is empty and T1 is full: evict the T1 LRU outright
			// (it does not become a ghost).
			lru := a.t1.back()
			lk := a.slots[lru].key
			a.t1.remove(a.slots, lru)
			a.idx.del(lk)
			a.release(lru)
			victim, evicted = lk, true
		}
	} else if a.t1.size+a.b1.size < a.capacity {
		total := a.t1.size + a.t2.size + a.b1.size + a.b2.size
		if total >= a.capacity {
			if total == 2*a.capacity {
				a.dropLRU(&a.b2)
			}
			victim, evicted = a.replace(false)
		}
	}
	s := a.alloc(k)
	a.where[s] = arcT1
	a.idx.put(k, s)
	a.t1.pushFront(a.slots, s)
	return victim, evicted
}

// AccessRun implements Policy via the generic per-key fallback (ARC's
// ghost-list bookkeeping has no batched shortcut).
func (a *ARC) AccessRun(k Key, n, size int64) { accessRunGeneric(a, k, n, size) }

// InsertRun implements Policy via the generic per-key fallback.
func (a *ARC) InsertRun(k Key, n, size int64, evicted func(Key)) {
	insertRunGeneric(a, k, n, size, evicted)
}

// replace implements REPLACE(x, p): demote from T1 or T2 into the
// corresponding ghost list and report the evicted key. inB2 is whether
// the triggering key was a B2 ghost.
func (a *ARC) replace(inB2 bool) (Key, bool) {
	if a.t1.size >= 1 && ((inB2 && a.t1.size == a.p) || a.t1.size > a.p) {
		lru := a.t1.back()
		a.t1.remove(a.slots, lru)
		a.where[lru] = arcB1
		a.b1.pushFront(a.slots, lru)
		return a.slots[lru].key, true
	}
	if a.t2.size >= 1 {
		lru := a.t2.back()
		a.t2.remove(a.slots, lru)
		a.where[lru] = arcB2
		a.b2.pushFront(a.slots, lru)
		return a.slots[lru].key, true
	}
	return 0, false
}

// dropLRU discards the LRU ghost of list l entirely.
func (a *ARC) dropLRU(l *slotList) {
	lru := l.back()
	if lru == nilSlot {
		return
	}
	l.remove(a.slots, lru)
	a.idx.del(a.slots[lru].key)
	a.release(lru)
}

// Remove implements Policy. Removing a resident entry also forgets any
// ghost state for it.
func (a *ARC) Remove(k Key) bool {
	s := a.idx.get(k)
	if s == nilSlot {
		return false
	}
	resident := a.where[s] == arcT1 || a.where[s] == arcT2
	a.listOf(a.where[s]).remove(a.slots, s)
	a.idx.del(k)
	a.release(s)
	return resident
}

// Clear implements Policy.
func (a *ARC) Clear() {
	a.idx.clear()
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	a.free = nilSlot
	a.used = 0
	a.p = 0
}

// Keys implements Policy.
func (a *ARC) Keys() []Key {
	out := make([]Key, 0, a.Len())
	for _, l := range []*slotList{&a.t1, &a.t2} {
		for s := l.head; s != nilSlot; s = a.slots[s].next {
			out = append(out, a.slots[s].key)
		}
	}
	return out
}
