package experiments

import (
	"craid/internal/analysis"
	"craid/internal/disk"
	"craid/internal/metrics"
	"craid/internal/migrate"
	"craid/internal/sim"
	"craid/internal/workload"
)

// --- Table 1 + Figure 1 ---

// Table1Row is one workload's summary statistics.
type Table1Row struct {
	Trace   string
	Summary analysis.Summary
}

// Table1 regenerates the trace summary table, scaling each workload to
// roughly budgetGB of replayed traffic (see ScaleFor).
func Table1(budgetGB float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range workload.PresetNames() {
		a, err := analyzeTrace(name, ScaleFor(name, budgetGB))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Trace: name, Summary: a.Summary()})
	}
	return rows, nil
}

func analyzeTrace(name string, scale float64) (*analysis.Analyzer, error) {
	p, err := workload.Preset(name)
	if err != nil {
		return nil, err
	}
	a := analysis.NewAnalyzer()
	if err := a.Run(workload.New(p.Scaled(scale))); err != nil {
		return nil, err
	}
	return a, nil
}

// Figure1Result holds one trace's Fig. 1 panels.
type Figure1Result struct {
	Trace      string
	Freqs      []int64   // frequency thresholds (x axis, top row)
	ReadCDF    []float64 // fraction of blocks with <= f read accesses
	WriteCDF   []float64
	OverlapAll []float64 // day d vs d+1 overlap, all blocks (bottom row)
	OverlapTop []float64 // same, top-20% blocks
}

// Figure1 regenerates both rows of Fig. 1 for one trace.
func Figure1(traceName string, scale float64) (Figure1Result, error) {
	a, err := analyzeTrace(traceName, scale)
	if err != nil {
		return Figure1Result{}, err
	}
	freqs := []int64{1, 2, 5, 10, 20, 50, 100, 500, 1000}
	return Figure1Result{
		Trace:      traceName,
		Freqs:      freqs,
		ReadCDF:    a.FreqCDF(disk.OpRead, freqs),
		WriteCDF:   a.FreqCDF(disk.OpWrite, freqs),
		OverlapAll: a.DailyOverlap(0),
		OverlapTop: a.DailyOverlap(0.20),
	}, nil
}

// --- Tables 2 & 3: cache partition management (§5.1) ---

// PolicyRow is one trace × policy measurement on instant disks.
type PolicyRow struct {
	Trace            string
	Policy           string
	HitRatio         float64 // Table 2
	ReplacementRatio float64 // Table 3
}

// PolicyNamesPaper lists the monitor policies in the paper's column
// order (WLRU with w=0.5).
func PolicyNamesPaper() []string { return []string{"LRU", "LFUDA", "GDSF", "ARC", "WLRU"} }

// Tables2and3 evaluates every policy on every trace with a P_C of 0.1%
// of the weekly working set, using the instant disk model, exactly as
// §5.1 does. Each workload scales to roughly budgetGB of traffic. The
// trace × policy cells run concurrently (see RunAll).
func Tables2and3(budgetGB float64) ([]PolicyRow, error) {
	var cfgs []RunConfig
	for _, traceName := range workload.PresetNames() {
		p, err := workload.Preset(traceName)
		if err != nil {
			return nil, err
		}
		scale := ScaleFor(traceName, budgetGB)
		gen := workload.New(p.Scaled(scale))
		pcBlocks := gen.DatasetBlocks() / 1000 // 0.1% of weekly WS
		if pcBlocks < 50 {
			pcBlocks = 50
		}
		for _, policy := range PolicyNamesPaper() {
			cfgs = append(cfgs, RunConfig{
				Trace:    traceName,
				Scale:    scale,
				Strategy: CRAID5,
				Policy:   policy,
				Instant:  true,
				PCBlocks: pcBlocks,
			})
		}
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([]PolicyRow, len(results))
	for i, res := range results {
		rows[i] = PolicyRow{
			Trace:            res.Cfg.Trace,
			Policy:           res.Cfg.Policy,
			HitRatio:         res.CRAID.OverallHitRatio(),
			ReplacementRatio: res.CRAID.ReplacementRatio(),
		}
	}
	return rows, nil
}

// --- Figures 4 & 6 + Table 4: response times over the P_C sweep ---

// SweepPoint is one strategy × cache-size measurement.
type SweepPoint struct {
	Strategy  Strategy
	PCPct     float64
	ReadMean  sim.Time
	WriteMean sim.Time

	// CRAID monitor ratios for Table 4 (zero for plain baselines).
	ReadHit, WriteHit           float64
	ReadEviction, WriteEviction float64
}

// SweepResult is the full Fig. 4/6 series for one trace.
type SweepResult struct {
	Trace  string
	Points []SweepPoint
}

// ResponseTimeSweep regenerates the Fig. 4 (reads) and Fig. 6 (writes)
// series for one trace: every strategy at every cache size (plain
// baselines once, since they have no P_C), run concurrently. pcSizes
// nil uses the paper's sweep for the trace.
func ResponseTimeSweep(traceName string, scale float64, pcSizes []float64) (SweepResult, error) {
	if pcSizes == nil {
		pcSizes = PCSizes(traceName)
	}
	var cfgs []RunConfig
	for _, strat := range Strategies() {
		sizes := pcSizes
		if !strat.IsCRAID() {
			sizes = pcSizes[:1] // baselines don't vary with P_C
		}
		for _, pct := range sizes {
			cfgs = append(cfgs, RunConfig{
				Trace:    traceName,
				Scale:    scale,
				Strategy: strat,
				PCPct:    pct,
			})
		}
	}
	out := SweepResult{Trace: traceName}
	results, err := RunAll(cfgs)
	if err != nil {
		return out, err
	}
	for _, res := range results {
		pt := SweepPoint{
			Strategy:  res.Cfg.Strategy,
			PCPct:     res.Cfg.PCPct,
			ReadMean:  res.ReadMean,
			WriteMean: res.WriteMean,
		}
		if res.CRAID != nil {
			pt.ReadHit = res.CRAID.HitRatio(disk.OpRead)
			pt.WriteHit = res.CRAID.HitRatio(disk.OpWrite)
			pt.ReadEviction = res.CRAID.EvictionRatio(disk.OpRead)
			pt.WriteEviction = res.CRAID.EvictionRatio(disk.OpWrite)
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Table4Row aggregates a trace's best hit ratio and worst eviction
// ratio over all its sweep simulations.
type Table4Row struct {
	Trace                           string
	BestReadHit, BestWriteHit       float64
	WorstReadEvict, WorstWriteEvict float64
}

// Table4 derives the best/worst ratios from a sweep result.
func Table4(sweep SweepResult) Table4Row {
	row := Table4Row{Trace: sweep.Trace}
	for _, pt := range sweep.Points {
		if !pt.Strategy.IsCRAID() {
			continue
		}
		row.BestReadHit = maxF(row.BestReadHit, pt.ReadHit)
		row.BestWriteHit = maxF(row.BestWriteHit, pt.WriteHit)
		row.WorstReadEvict = maxF(row.WorstReadEvict, pt.ReadEviction)
		row.WorstWriteEvict = maxF(row.WorstWriteEvict, pt.WriteEviction)
	}
	return row
}

// --- Figure 5: sequentiality ---

// Figure5Series is the per-second sequential-access distribution for
// one strategy.
type Figure5Series struct {
	Strategy Strategy
	// Quantiles of the per-second sequential fraction at 10% steps
	// (0%, 10%, ..., 100%) — the CDF of Fig. 5 read along the other
	// axis.
	Quantiles []float64
	Mean      float64
}

// Figure5 measures access sequentiality per strategy for one trace
// (the paper shows cello99 and webusers; any preset works). Uses
// bursty arrivals so scan-like streams exist to be sequentialized.
func Figure5(traceName string, scale, pcPct float64) ([]Figure5Series, error) {
	var cfgs []RunConfig
	for _, strat := range []Strategy{RAID5, RAID5Plus, CRAID5, CRAID5Plus} {
		cfgs = append(cfgs, RunConfig{
			Trace:    traceName,
			Scale:    scale,
			Strategy: strat,
			PCPct:    pcPct,
			Bursty:   true,
			TrackSeq: true,
		})
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Figure5Series, len(results))
	for i, res := range results {
		qs := make([]float64, 11)
		for j := range qs {
			qs[j] = metrics.Quantile(res.SeqFracs, float64(j)/10)
		}
		out[i] = Figure5Series{
			Strategy:  res.Cfg.Strategy,
			Quantiles: qs,
			Mean:      metrics.Mean(res.SeqFracs),
		}
	}
	return out, nil
}

// --- Table 5: queues, SSD-dedicated vs full-HDD ---

// Table5Row compares queue pressure between CRAID-5+ and CRAID-5+ssd.
type Table5Row struct {
	Strategy  Strategy
	QueueMean float64
	QueueP99  int64
	QueueMax  int64
	ConcMean  float64
	ConcP99   int64
	ConcMax   int64
}

// Table5 reproduces the wdev comparison at P_C = 0.002% with bursty
// arrivals (queue dynamics need load).
func Table5(scale float64) ([]Table5Row, error) {
	cfgs := []RunConfig{
		{Trace: "wdev", Scale: scale, Strategy: CRAID5Plus, PCPct: 0.002, Bursty: true},
		{Trace: "wdev", Scale: scale, Strategy: CRAID5PlusSSD, PCPct: 0.002, Bursty: true},
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, len(results))
	for i, res := range results {
		rows[i] = Table5Row{
			Strategy:  res.Cfg.Strategy,
			QueueMean: res.QueueMean, QueueP99: res.QueueP99, QueueMax: res.QueueMax,
			ConcMean: res.ConcMean, ConcP99: res.ConcP99, ConcMax: res.ConcMax,
		}
	}
	return rows, nil
}

// --- Figure 7 + Table 6: workload distribution ---

// Figure7Series is one strategy/size's distribution-uniformity curve.
type Figure7Series struct {
	Strategy Strategy
	PCPct    float64
	// CDF of the per-second cv evaluated at CVGrid points.
	CDF    []float64
	MeanCV float64
}

// CVGrid is the x-axis used for the Fig. 7 CDFs.
var CVGrid = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6}

// Figure7 measures the workload-distribution uniformity (cv CDFs) for
// one trace: the plain baselines plus every CRAID variant at each of
// pcSizes (nil = the trace's paper sweep).
func Figure7(traceName string, scale float64, pcSizes []float64) ([]Figure7Series, error) {
	if pcSizes == nil {
		pcSizes = PCSizes(traceName)
	}
	var cfgs []RunConfig
	for _, strat := range Strategies() {
		sizes := pcSizes
		if !strat.IsCRAID() {
			sizes = pcSizes[:1]
		}
		for _, pct := range sizes {
			cfgs = append(cfgs, RunConfig{
				Trace:     traceName,
				Scale:     scale,
				Strategy:  strat,
				PCPct:     pct,
				Bursty:    true,
				TrackLoad: true,
			})
		}
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Figure7Series, len(results))
	for i, res := range results {
		out[i] = Figure7Series{
			Strategy: res.Cfg.Strategy,
			PCPct:    res.Cfg.PCPct,
			CDF:      metrics.CDF(res.CVs, CVGrid),
			MeanCV:   metrics.Mean(res.CVs),
		}
	}
	return out, nil
}

// Table6Row reports which P_C size gave the most and least uniform
// distribution for a CRAID variant.
type Table6Row struct {
	Strategy          Strategy
	BestPct, WorstPct float64
	BestCV, WorstCV   float64
}

// Table6 derives the best/worst cv cache sizes from Figure 7 series.
func Table6(series []Figure7Series) []Table6Row {
	byStrat := map[Strategy][]Figure7Series{}
	for _, s := range series {
		if s.Strategy.IsCRAID() {
			byStrat[s.Strategy] = append(byStrat[s.Strategy], s)
		}
	}
	var rows []Table6Row
	for _, strat := range Strategies() {
		group := byStrat[strat]
		if len(group) == 0 {
			continue
		}
		row := Table6Row{Strategy: strat, BestCV: group[0].MeanCV, BestPct: group[0].PCPct,
			WorstCV: group[0].MeanCV, WorstPct: group[0].PCPct}
		for _, s := range group[1:] {
			if s.MeanCV < row.BestCV {
				row.BestCV, row.BestPct = s.MeanCV, s.PCPct
			}
			if s.MeanCV > row.WorstCV {
				row.WorstCV, row.WorstPct = s.MeanCV, s.PCPct
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Migration ablation ---

// MigrationRow is one strategy's cost over the paper's expansion
// schedule.
type MigrationRow struct {
	Strategy  string
	TotalFrac float64 // total blocks moved / dataset, summed over steps
	FinalCV   float64 // balance after the last expansion
	StepsFrac []float64
}

// MigrationAblation compares upgrade strategies on the 10→50 schedule;
// pcFrac is CRAID's cache size as a fraction of the dataset.
func MigrationAblation(pcFrac float64) ([]MigrationRow, error) {
	const samples = 200_000
	schedule := []int{10, 13, 17, 22, 29, 38, 50}
	var rows []MigrationRow
	for _, name := range migrate.Names() {
		rep, err := migrate.Simulate(name, schedule, samples, pcFrac)
		if err != nil {
			return nil, err
		}
		row := MigrationRow{
			Strategy:  name,
			TotalFrac: rep.TotalFrac(samples),
			FinalCV:   rep.FinalCV,
		}
		for _, s := range rep.Steps {
			row.StepsFrac = append(row.StepsFrac, s.MovedFrac)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
