package experiments

import (
	"strings"
	"testing"

	"craid/internal/sim"
)

func faultTestConfig() RunConfig {
	return RunConfig{
		Trace: "wdev", Scale: ScaleFor("wdev", 0.05),
		Duration: 60 * sim.Second, Strategy: CRAID5, PCPct: 0.008,
	}
}

// TestRunFaultSpecDeterministic pins the experiment-level replay
// contract: the same config + fault spec yields bit-identical fault
// counters and KPIs on every run.
func TestRunFaultSpecDeterministic(t *testing.T) {
	cfg := faultTestConfig()
	cfg.FaultSpec = "seed=7;transient:3@5s-30s,rate=0.02,lat=4;fail:2@15s;rebuild:2@25s,rate=64"
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fault == nil || b.Fault == nil {
		t.Fatal("fault KPIs not populated")
	}
	if a.Fault.Failures != 1 || a.Fault.RebuildRows == 0 {
		t.Fatalf("plan did not exercise the fabric: %+v", a.Fault)
	}
	if a.Fault.DegradedReads+a.Fault.DegradedWrites == 0 {
		t.Fatal("no degraded traffic during the failure window")
	}
	if *a.Fault != *b.Fault {
		t.Errorf("fault stats diverged between identical runs:\n  %+v\n  %+v", a.Fault, b.Fault)
	}
	if a.Requests != b.Requests || a.ReadMean != b.ReadMean || a.WriteMean != b.WriteMean {
		t.Error("replay KPIs diverged between identical runs")
	}
	if a.DegReadMean != b.DegReadMean || a.DegReadP99 != b.DegReadP99 ||
		a.RebuildDuration != b.RebuildDuration {
		t.Error("degraded/rebuild KPIs diverged between identical runs")
	}
}

// TestRunFaultCrashRestart pins the crash wiring: a crash plan on a
// CRAID strategy restarts once, recovering from the auto-created
// in-memory log mirror; on a plain RAID strategy it is rejected up
// front.
func TestRunFaultCrashRestart(t *testing.T) {
	cfg := faultTestConfig()
	cfg.FaultSpec = "seed=1;crash@30s"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault == nil || res.Fault.Restarts != 1 {
		t.Fatalf("crash did not fire: %+v", res.Fault)
	}

	cfg.Strategy = RAID5
	cfg.PCPct = 0
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "CRAID") {
		t.Fatalf("crash plan on RAID-5 accepted: %v", err)
	}
}

// TestRunFaultRowComparesHealthyBaseline pins RunFault's shape: the
// healthy run carries no fault KPIs, the faulted run does, and the
// interference ratios are populated.
func TestRunFaultRowComparesHealthyBaseline(t *testing.T) {
	cfg := faultTestConfig()
	row, err := RunFault("fail+rebuild", cfg, "seed=1;fail:2@15s;rebuild:2@25s,rate=64")
	if err != nil {
		t.Fatal(err)
	}
	if row.Healthy.Fault != nil {
		t.Error("healthy baseline carries fault stats")
	}
	if row.Faulted.Fault == nil || row.Faulted.Fault.Failures != 1 {
		t.Fatalf("faulted run stats: %+v", row.Faulted.Fault)
	}
	if row.ReadMeanX <= 0 || row.WriteMeanX <= 0 {
		t.Errorf("interference ratios not populated: read %.3f write %.3f",
			row.ReadMeanX, row.WriteMeanX)
	}
	if row.RebuildDuration == 0 {
		t.Error("rebuild duration KPI not copied out")
	}
}

// TestRunFaultFamilyCRAID runs the standard failure family end to end
// on a small workload: fail+rebuild, transient and double-fault rows,
// plus the CRAID-only crash-restart, crash-in-rebuild, storm and both
// expansion rows — one healthy baseline shared by all of them.
func TestRunFaultFamilyCRAID(t *testing.T) {
	if testing.Short() {
		t.Skip("nine full replays")
	}
	cfg := faultTestConfig()
	cfg.Scale = ScaleFor("wdev", 0.02)
	rows, err := RunFaultFamily(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("family produced %d rows, want 8 for a CRAID strategy", len(rows))
	}
	byName := map[string]FaultRow{}
	for i, r := range rows {
		byName[r.Name] = r
		if i > 0 && r.Healthy.ReadMean != rows[0].Healthy.ReadMean {
			t.Errorf("row %q re-ran the healthy baseline", r.Name)
		}
	}
	if r := byName["fail+rebuild"]; r.Faulted.Fault == nil || r.Faulted.Fault.RebuildRows == 0 {
		t.Errorf("fail+rebuild row did not rebuild: %+v", r.Faulted.Fault)
	}
	// The transient row's error count is a seeded draw over however
	// little traffic hits the windowed device at this tiny scale — it
	// may legitimately be zero, so only the wiring is asserted here
	// (the retry machinery is pinned in internal/core).
	if r := byName["transient"]; r.Faulted.Fault == nil {
		t.Error("transient row missing fault KPIs")
	}
	if r := byName["double-fault"]; r.Faulted.Fault == nil ||
		r.Faulted.Fault.Failures != 2 || r.LostExtents != 0 || r.RebuildLostRows != 0 {
		t.Errorf("double-fault row: %+v", r.Faulted.Fault)
	}
	if r := byName["crash-restart"]; r.Faulted.Fault == nil || r.Restarts != 1 {
		t.Errorf("crash-restart row did not restart: %+v", r.Faulted.Fault)
	}
	if r := byName["crash-in-rebuild"]; r.Faulted.Fault == nil || r.Restarts != 1 ||
		r.Faulted.Fault.RebuildRows == 0 {
		t.Errorf("crash-in-rebuild row: %+v", r.Faulted.Fault)
	}
	if r := byName["storm"]; r.Restarts != 3 {
		t.Errorf("storm row survived %d restarts, want 3", r.Restarts)
	}
	if r := byName["expand"]; r.Upgrades != 1 {
		t.Errorf("expand row fired %d upgrades, want 1", r.Upgrades)
	}
	if r := byName["expand-retain"]; r.Upgrades != 1 {
		t.Errorf("expand-retain row fired %d upgrades, want 1", r.Upgrades)
	}
}

// TestRunFaultDoubleFaultDisjointGroups pins the experiment-level
// double-fault contract on the 50-disk testbed: a second death in a
// different 10-wide parity group while the first rebuild is pending
// stays within redundancy — both devices rebuild, nothing is lost.
func TestRunFaultDoubleFaultDisjointGroups(t *testing.T) {
	cfg := faultTestConfig()
	cfg.FaultSpec = "seed=1;fail:2@15s;rebuild:2@30s,rate=64;fail:12@22s;rebuild:12@37s,rate=64"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Fault
	if fs == nil || fs.Failures != 2 {
		t.Fatalf("double fault did not fire: %+v", fs)
	}
	if fs.LostExtents != 0 || fs.RebuildLostRows != 0 {
		t.Errorf("disjoint-group double fault lost data: %+v", fs)
	}
	if fs.RebuildRows == 0 {
		t.Error("no rebuild rows walked")
	}
}

// TestRunFaultStormAndExpandUnderLoad pins the new CRAID-only event
// kinds through the experiment runner: a crash storm survives every
// cycle, and a mid-replay expansion fires with its KPIs populated.
func TestRunFaultStormAndExpandUnderLoad(t *testing.T) {
	cfg := faultTestConfig()
	cfg.FaultSpec = "seed=1;storm:crash@20s,n=3,every=10s"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault == nil || res.Fault.Restarts != 3 {
		t.Fatalf("storm did not fire all cycles: %+v", res.Fault)
	}

	cfg.FaultSpec = "seed=1;expand@30s,disks=5,retain"
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Fault
	if fs == nil || fs.Upgrades != 1 {
		t.Fatalf("expand did not fire: %+v", fs)
	}
	if fs.ExpandStart != 30*sim.Second || fs.ExpandEnd < fs.ExpandStart {
		t.Errorf("upgrade window not stamped: start %v end %v", fs.ExpandStart, fs.ExpandEnd)
	}
}
