package experiments

import (
	"strings"
	"testing"

	"craid/internal/sim"
)

func faultTestConfig() RunConfig {
	return RunConfig{
		Trace: "wdev", Scale: ScaleFor("wdev", 0.05),
		Duration: 60 * sim.Second, Strategy: CRAID5, PCPct: 0.008,
	}
}

// TestRunFaultSpecDeterministic pins the experiment-level replay
// contract: the same config + fault spec yields bit-identical fault
// counters and KPIs on every run.
func TestRunFaultSpecDeterministic(t *testing.T) {
	cfg := faultTestConfig()
	cfg.FaultSpec = "seed=7;transient:3@5s-30s,rate=0.02,lat=4;fail:2@15s;rebuild:2@25s,rate=64"
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fault == nil || b.Fault == nil {
		t.Fatal("fault KPIs not populated")
	}
	if a.Fault.Failures != 1 || a.Fault.RebuildRows == 0 {
		t.Fatalf("plan did not exercise the fabric: %+v", a.Fault)
	}
	if a.Fault.DegradedReads+a.Fault.DegradedWrites == 0 {
		t.Fatal("no degraded traffic during the failure window")
	}
	if *a.Fault != *b.Fault {
		t.Errorf("fault stats diverged between identical runs:\n  %+v\n  %+v", a.Fault, b.Fault)
	}
	if a.Requests != b.Requests || a.ReadMean != b.ReadMean || a.WriteMean != b.WriteMean {
		t.Error("replay KPIs diverged between identical runs")
	}
	if a.DegReadMean != b.DegReadMean || a.DegReadP99 != b.DegReadP99 ||
		a.RebuildDuration != b.RebuildDuration {
		t.Error("degraded/rebuild KPIs diverged between identical runs")
	}
}

// TestRunFaultCrashRestart pins the crash wiring: a crash plan on a
// CRAID strategy restarts once, recovering from the auto-created
// in-memory log mirror; on a plain RAID strategy it is rejected up
// front.
func TestRunFaultCrashRestart(t *testing.T) {
	cfg := faultTestConfig()
	cfg.FaultSpec = "seed=1;crash@30s"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault == nil || res.Fault.Restarts != 1 {
		t.Fatalf("crash did not fire: %+v", res.Fault)
	}

	cfg.Strategy = RAID5
	cfg.PCPct = 0
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "CRAID") {
		t.Fatalf("crash plan on RAID-5 accepted: %v", err)
	}
}

// TestRunFaultRowComparesHealthyBaseline pins RunFault's shape: the
// healthy run carries no fault KPIs, the faulted run does, and the
// interference ratios are populated.
func TestRunFaultRowComparesHealthyBaseline(t *testing.T) {
	cfg := faultTestConfig()
	row, err := RunFault("fail+rebuild", cfg, "seed=1;fail:2@15s;rebuild:2@25s,rate=64")
	if err != nil {
		t.Fatal(err)
	}
	if row.Healthy.Fault != nil {
		t.Error("healthy baseline carries fault stats")
	}
	if row.Faulted.Fault == nil || row.Faulted.Fault.Failures != 1 {
		t.Fatalf("faulted run stats: %+v", row.Faulted.Fault)
	}
	if row.ReadMeanX <= 0 || row.WriteMeanX <= 0 {
		t.Errorf("interference ratios not populated: read %.3f write %.3f",
			row.ReadMeanX, row.WriteMeanX)
	}
	if row.RebuildDuration == 0 {
		t.Error("rebuild duration KPI not copied out")
	}
}

// TestRunFaultFamilyCRAID runs the standard failure family end to end
// on a small workload: a fail+rebuild row, a transient row, and — for
// the CRAID strategy — a crash-restart row.
func TestRunFaultFamilyCRAID(t *testing.T) {
	if testing.Short() {
		t.Skip("six full replays")
	}
	cfg := faultTestConfig()
	cfg.Scale = ScaleFor("wdev", 0.02)
	rows, err := RunFaultFamily(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("family produced %d rows, want 3 for a CRAID strategy", len(rows))
	}
	byName := map[string]FaultRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["fail+rebuild"]; r.Faulted.Fault == nil || r.Faulted.Fault.RebuildRows == 0 {
		t.Errorf("fail+rebuild row did not rebuild: %+v", r.Faulted.Fault)
	}
	// The transient row's error count is a seeded draw over however
	// little traffic hits the windowed device at this tiny scale — it
	// may legitimately be zero, so only the wiring is asserted here
	// (the retry machinery is pinned in internal/core).
	if r := byName["transient"]; r.Faulted.Fault == nil {
		t.Error("transient row missing fault KPIs")
	}
	if r := byName["crash-restart"]; r.Faulted.Fault == nil || r.Faulted.Fault.Restarts != 1 {
		t.Errorf("crash-restart row did not restart: %+v", r.Faulted.Fault)
	}
}
