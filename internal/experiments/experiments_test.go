package experiments

import (
	"testing"

	"craid/internal/disk"
	"craid/internal/sim"
)

// Tests here assert the paper's qualitative findings (who wins, where
// the knees are) at reduced scale. Heavier full-series checks live in
// the benchmarks and cmd/craidbench.

func TestScaleFor(t *testing.T) {
	if s := ScaleFor("webresearch", 5.0); s != 1 {
		t.Errorf("small trace scale = %v, want 1 (no shrink needed)", s)
	}
	s := ScaleFor("proj", 1.0)
	if s <= 0 || s >= 0.001 {
		t.Errorf("proj scale = %v, want ~1/2520", s)
	}
	if ScaleFor("nosuch", 1.0) != 1 {
		t.Error("unknown trace should default to 1")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(RunConfig{Trace: "wdev"}); err == nil {
		t.Error("zero scale did not error")
	}
	if _, err := Run(RunConfig{Trace: "nosuch", Scale: 1, Strategy: RAID5}); err == nil {
		t.Error("unknown trace did not error")
	}
	if _, err := Run(RunConfig{Trace: "wdev", Scale: 1, Strategy: "RAID-9"}); err == nil {
		t.Error("unknown strategy did not error")
	}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	rows, err := Table1(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Trace] = r
		if r.Summary.Top20Share < 0.40 || r.Summary.Top20Share > 0.95 {
			t.Errorf("%s: top-20%% share %.3f outside the paper's 51-87%% band",
				r.Trace, r.Summary.Top20Share)
		}
	}
	// Orderings from Table 1: deasna most skewed; proj largest volume;
	// webresearch write-only.
	if byName["deasna"].Summary.Top20Share <= byName["webresearch"].Summary.Top20Share {
		t.Error("deasna not more skewed than webresearch")
	}
	// With budget semantics every trace replays ~the same volume.
	for name, r := range byName {
		if r.Summary.TotalGB < 0.3 || r.Summary.TotalGB > 0.8 {
			t.Errorf("%s: total %.2f GB, want ≈ the 0.5 GB budget", name, r.Summary.TotalGB)
		}
	}
	if byName["webresearch"].Summary.ReadGB != 0 {
		t.Error("webresearch has reads")
	}
	// R/W ratios: proj read-dominated, webusers write-dominated.
	if byName["proj"].Summary.RWRatio < 2 {
		t.Errorf("proj R/W = %.2f, want > 2 (paper: 7.33)", byName["proj"].Summary.RWRatio)
	}
	if byName["webusers"].Summary.RWRatio > 1 {
		t.Errorf("webusers R/W = %.2f, want < 1 (paper: 0.09)", byName["webusers"].Summary.RWRatio)
	}
}

func TestFigure1Shapes(t *testing.T) {
	res, err := Figure1("wdev", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone CDFs ending near 1.
	for i := 1; i < len(res.ReadCDF); i++ {
		if res.ReadCDF[i] < res.ReadCDF[i-1] {
			t.Fatal("read frequency CDF not monotone")
		}
	}
	if last := res.ReadCDF[len(res.ReadCDF)-1]; last < 0.99 {
		t.Errorf("read CDF tail = %.3f, want ~1", last)
	}
	// Substantial day-to-day overlap for wdev (paper: ~55-80%).
	if len(res.OverlapAll) != 6 {
		t.Fatalf("overlap pairs = %d, want 6 (7 days)", len(res.OverlapAll))
	}
	var mean float64
	for _, v := range res.OverlapAll {
		mean += v
	}
	mean /= float64(len(res.OverlapAll))
	if mean < 0.40 {
		t.Errorf("wdev mean daily overlap %.2f, want >= 0.40", mean)
	}
}

func TestTables2and3PolicyRanking(t *testing.T) {
	rows, err := Tables2and3(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7*5 {
		t.Fatalf("got %d rows, want 35", len(rows))
	}
	perTrace := map[string]map[string]PolicyRow{}
	for _, r := range rows {
		if perTrace[r.Trace] == nil {
			perTrace[r.Trace] = map[string]PolicyRow{}
		}
		perTrace[r.Trace][r.Policy] = r
	}
	for traceName, policies := range perTrace {
		// GDSF never leads: the size term is dead weight for block
		// storage (see EXPERIMENTS.md — at equal-sized block granularity
		// its collapse is milder than the paper's, where request sizes
		// feed the metric directly).
		gdsf := policies["GDSF"].HitRatio
		best := 0.0
		for p, r := range policies {
			if p != "GDSF" && r.HitRatio > best {
				best = r.HitRatio
			}
		}
		if gdsf > best {
			t.Errorf("%s: GDSF (%.3f) is the best policy (best other %.3f); paper has it worst",
				traceName, gdsf, best)
		}
		// The recency policies sit within a band of each other.
		lru := policies["LRU"].HitRatio
		for _, p := range []string{"LFUDA", "ARC", "WLRU"} {
			d := policies[p].HitRatio - lru
			if d < -0.15 || d > 0.12 {
				t.Errorf("%s: %s hit %.3f too far from LRU %.3f",
					traceName, p, policies[p].HitRatio, lru)
			}
		}
		// WLRU tracks LRU closely (its window only changes *which*
		// entry is evicted) — the property that justifies the paper's
		// WLRU choice.
		if d := policies["WLRU"].HitRatio - lru; d < -0.05 || d > 0.05 {
			t.Errorf("%s: WLRU hit %.3f deviates from LRU %.3f", traceName,
				policies["WLRU"].HitRatio, lru)
		}
		// Hit + replacement ≈ 1 at a tiny P_C (paper Tables 2+3 sum to
		// ~100%): nearly every miss causes a replacement once warm.
		for p, r := range policies {
			if sum := r.HitRatio + r.ReplacementRatio; sum < 0.8 || sum > 1.1 {
				t.Errorf("%s/%s: hit+replacement = %.3f, want ≈ 1", traceName, p, sum)
			}
		}
	}
}

func TestResponseTimeSweepShapes(t *testing.T) {
	// wdev at modest volume: the paper's principal Fig. 4/6 claims.
	sweep, err := ResponseTimeSweep("wdev", ScaleFor("wdev", 0.5), []float64{0.008, 0.032})
	if err != nil {
		t.Fatal(err)
	}
	at := func(s Strategy, pct float64) SweepPoint {
		for _, p := range sweep.Points {
			if p.Strategy == s && (p.PCPct == pct || !s.IsCRAID()) {
				return p
			}
		}
		t.Fatalf("missing point %s/%v", s, pct)
		return SweepPoint{}
	}
	r5 := at(RAID5, 0)
	r5p := at(RAID5Plus, 0)
	c5 := at(CRAID5, 0.032)
	c5p := at(CRAID5Plus, 0.032)
	ssd := at(CRAID5SSD, 0.032)

	// RAID-5+ no faster than ideal RAID-5.
	if r5p.ReadMean < r5.ReadMean*95/100 {
		t.Errorf("RAID-5+ reads (%v) faster than RAID-5 (%v)", r5p.ReadMean, r5.ReadMean)
	}
	// CRAID read/write times competitive with ideal RAID-5.
	if c5.ReadMean > r5.ReadMean*12/10 {
		t.Errorf("CRAID-5 reads (%v) not competitive with RAID-5 (%v)", c5.ReadMean, r5.ReadMean)
	}
	if c5.WriteMean > r5.WriteMean {
		t.Errorf("CRAID-5 writes (%v) not better than RAID-5 (%v); paper: writes benefit most",
			c5.WriteMean, r5.WriteMean)
	}
	// CRAID-5+ ≈ CRAID-5 despite the RAID-5+ archive: P_C absorbs I/O.
	if diff := float64(c5p.ReadMean-c5.ReadMean) / float64(c5.ReadMean); diff > 0.15 || diff < -0.15 {
		t.Errorf("CRAID-5+ reads (%v) deviate %.0f%% from CRAID-5 (%v)",
			c5p.ReadMean, diff*100, c5.ReadMean)
	}
	// Dedicated SSDs win reads.
	if ssd.ReadMean >= c5.ReadMean {
		t.Errorf("CRAID-5ssd reads (%v) not faster than full-HDD (%v)", ssd.ReadMean, c5.ReadMean)
	}
	// Larger P_C improves CRAID hit ratio (knee behaviour).
	small := at(CRAID5, 0.008)
	if c5.ReadHit < small.ReadHit {
		t.Errorf("hit ratio fell as P_C grew: %.3f → %.3f", small.ReadHit, c5.ReadHit)
	}
	// Table 4 derivation.
	t4 := Table4(sweep)
	if t4.BestReadHit < 0.80 || t4.BestWriteHit < 0.80 {
		t.Errorf("best hit ratios %.3f/%.3f, want >= 0.80 (paper: 85-99%%)",
			t4.BestReadHit, t4.BestWriteHit)
	}
	if t4.WorstReadEvict > 0.5 {
		t.Errorf("worst eviction ratio %.3f implausibly high", t4.WorstReadEvict)
	}
}

func TestFigure5SequentialityOrdering(t *testing.T) {
	series, err := Figure5("webusers", ScaleFor("webusers", 0.5), 0.016)
	if err != nil {
		t.Fatal(err)
	}
	means := map[Strategy]float64{}
	for _, s := range series {
		means[s.Strategy] = s.Mean
		for i := 1; i < len(s.Quantiles); i++ {
			if s.Quantiles[i] < s.Quantiles[i-1] {
				t.Fatalf("%s: quantiles not monotone", s.Strategy)
			}
		}
	}
	// Paper Fig. 5 claims CRAID ≈ RAID-5; we reproduce the same order
	// of magnitude (see EXPERIMENTS.md for the recorded deviation: our
	// volume-level metric puts CRAID at ~2/3 of RAID-5 because partial
	// cache residency splits streams between partitions).
	if means[CRAID5] < means[RAID5]/2 {
		t.Errorf("CRAID-5 sequentiality (%.3f) below half of RAID-5 (%.3f)",
			means[CRAID5], means[RAID5])
	}
	if means[CRAID5] <= 0 {
		t.Error("CRAID-5 shows no sequentiality at all")
	}
	// The load-bearing claim: CRAID-5+ matches CRAID-5 — P_C absorbs
	// the pattern regardless of the archive layout.
	if d := means[CRAID5Plus] - means[CRAID5]; d > 0.05 || d < -0.05 {
		t.Errorf("CRAID-5+ sequentiality (%.3f) deviates from CRAID-5 (%.3f)",
			means[CRAID5Plus], means[CRAID5])
	}
	// Scan bursts must actually sequentialize: the top decile of
	// per-second fractions is strongly sequential for every strategy.
	for _, s := range series {
		if s.Quantiles[9] < 0.3 {
			t.Errorf("%s: p90 sequential fraction %.3f, want >= 0.3", s.Strategy, s.Quantiles[9])
		}
	}
}

func TestTable5QueueComparison(t *testing.T) {
	rows, err := Table5(ScaleFor("wdev", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	hdd, ssd := rows[0], rows[1]
	if hdd.Strategy != CRAID5Plus || ssd.Strategy != CRAID5PlusSSD {
		t.Fatalf("row order wrong: %v / %v", hdd.Strategy, ssd.Strategy)
	}
	// Paper Table 5: the full-HDD variant keeps more devices busy
	// concurrently than the 5-SSD dedicated cache.
	if hdd.ConcMean <= ssd.ConcMean {
		t.Errorf("full-HDD concurrent devices (%.2f) not above SSD variant (%.2f)",
			hdd.ConcMean, ssd.ConcMean)
	}
}

func TestFigure7AndTable6(t *testing.T) {
	series, err := Figure7("wdev", ScaleFor("wdev", 0.5), []float64{0.002, 0.032})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[Strategy][]Figure7Series{}
	for _, s := range series {
		byKey[s.Strategy] = append(byKey[s.Strategy], s)
		for i := 1; i < len(s.CDF); i++ {
			if s.CDF[i] < s.CDF[i-1] {
				t.Fatalf("%s: cv CDF not monotone", s.Strategy)
			}
		}
	}
	// Full-HDD CRAID distributes at least as uniformly as RAID-5, and
	// dedicated SSDs degrade global uniformity (paper §5.3).
	craidBest := byKey[CRAID5][0].MeanCV
	for _, s := range byKey[CRAID5] {
		if s.MeanCV < craidBest {
			craidBest = s.MeanCV
		}
	}
	if r5 := byKey[RAID5][0].MeanCV; craidBest > r5*1.15 {
		t.Errorf("CRAID-5 best mean cv (%.3f) clearly worse than RAID-5 (%.3f)", craidBest, r5)
	}
	if ssd := byKey[CRAID5SSD][0].MeanCV; ssd <= craidBest {
		t.Errorf("SSD-dedicated cv (%.3f) not worse than full-HDD (%.3f)", ssd, craidBest)
	}
	// Table 6: smaller P_C gives the (weakly) better distribution.
	for _, row := range Table6(series) {
		if row.BestCV > row.WorstCV {
			t.Errorf("%s: best cv %.3f above worst %.3f", row.Strategy, row.BestCV, row.WorstCV)
		}
	}
}

func TestMigrationAblation(t *testing.T) {
	rows, err := MigrationAblation(0.0128)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MigrationRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	if byName["craid"].TotalFrac >= byName["fastscale"].TotalFrac {
		t.Error("CRAID did not move least data")
	}
	if byName["restripe"].TotalFrac < 3 {
		t.Errorf("restripe moved %.2f datasets; expected several over 6 expansions",
			byName["restripe"].TotalFrac)
	}
}

func TestRunInstantModeFast(t *testing.T) {
	res, err := Run(RunConfig{
		Trace: "webusers", Scale: 1, Strategy: CRAID5, Policy: "ARC",
		Instant: true, PCBlocks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadMean != 0 || res.WriteMean != 0 {
		t.Errorf("instant mode latencies = %v/%v, want 0", res.ReadMean, res.WriteMean)
	}
	if res.CRAID.OverallHitRatio() <= 0 {
		t.Error("no hits recorded")
	}
}

func TestRunShortDuration(t *testing.T) {
	res, err := Run(RunConfig{
		Trace: "wdev", Scale: 0.2, Duration: 2 * sim.Hour, Strategy: CRAID5, PCPct: 0.008,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests in 2h window")
	}
	if res.CRAID.HitRatio(disk.OpRead) < 0 {
		t.Fatal("bad stats")
	}
}
