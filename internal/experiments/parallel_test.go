package experiments

import (
	"reflect"
	"testing"
)

// TestRunAllDeterministicAcrossParallelism runs the same small matrix
// at several worker bounds and requires byte-identical results in
// config order: parallelism must never change what an experiment
// reports.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	var cfgs []RunConfig
	for _, policy := range []string{"LRU", "ARC", "WLRU"} {
		for _, trace := range []string{"wdev", "webresearch"} {
			cfgs = append(cfgs, RunConfig{
				Trace: trace, Scale: QuickScale, Strategy: CRAID5,
				Policy: policy, Instant: true, PCBlocks: 2000,
			})
		}
	}
	defer SetParallelism(Parallelism())
	SetParallelism(1)
	serial, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		SetParallelism(workers)
		parallel, err := RunAll(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			// CRAID points at per-run counters; compare the values.
			if *parallel[i].CRAID != *serial[i].CRAID {
				t.Errorf("workers=%d result %d: stats %+v != serial %+v",
					workers, i, *parallel[i].CRAID, *serial[i].CRAID)
			}
			a, b := parallel[i], serial[i]
			a.CRAID, b.CRAID = nil, nil
			// Ring back-pressure is wall-clock telemetry, not simulation
			// output: stall counts and the high-water mark depend on OS
			// scheduling, so only the deterministic fields must match.
			a.Replay.ReaderStalls, b.Replay.ReaderStalls = 0, 0
			a.Replay.ReplayStalls, b.Replay.ReplayStalls = 0, 0
			a.Replay.RingHighWater, b.Replay.RingHighWater = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("workers=%d result %d: %+v != serial %+v", workers, i, a, b)
			}
		}
	}
}

// TestSetParallelismClamps verifies the lower bound.
func TestSetParallelismClamps(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(-3)
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", got)
	}
}
