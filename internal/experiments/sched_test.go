package experiments

import (
	"reflect"
	"testing"

	"craid/internal/sim"
)

// TestSchedulerRunAllEquivalence pins the timing-wheel engine at the
// experiment level: a RunAll matrix simulated under the wheel scheduler
// reports results bit-identical to the binary-heap engine's, cell for
// cell — the canon hashes, stats and latency distributions all ride the
// event order, so this is the end-to-end form of the wheel's FIFO
// contract.
func TestSchedulerRunAllEquivalence(t *testing.T) {
	var cfgs []RunConfig
	for _, strategy := range []Strategy{RAID5, CRAID5, CRAID5Plus} {
		for _, tr := range []string{"wdev", "webresearch"} {
			cfgs = append(cfgs, RunConfig{
				Trace: tr, Scale: QuickScale, Strategy: strategy,
				Policy: "WLRU", Instant: true, PCBlocks: 2000,
			})
		}
	}
	prev := sim.DefaultScheduler()
	defer sim.SetDefaultScheduler(prev)

	sim.SetDefaultScheduler(sim.SchedulerWheel)
	wheel, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetDefaultScheduler(sim.SchedulerHeap)
	heap, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(wheel) != len(heap) {
		t.Fatalf("%d wheel results, %d heap results", len(wheel), len(heap))
	}
	for i := range wheel {
		a, b := wheel[i], heap[i]
		if (a.CRAID == nil) != (b.CRAID == nil) {
			t.Errorf("result %d: CRAID stats presence diverged", i)
			continue
		}
		if a.CRAID != nil && *a.CRAID != *b.CRAID {
			t.Errorf("result %d: CRAID stats diverged\nwheel %+v\nheap  %+v", i, *a.CRAID, *b.CRAID)
		}
		a.CRAID, b.CRAID = nil, nil
		// Ring back-pressure is wall-clock telemetry, not simulation
		// output; see TestRunAllDeterministicAcrossParallelism.
		a.Replay.ReaderStalls, b.Replay.ReaderStalls = 0, 0
		a.Replay.ReplayStalls, b.Replay.ReplayStalls = 0, 0
		a.Replay.RingHighWater, b.Replay.RingHighWater = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("result %d: diverged\nwheel %+v\nheap  %+v", i, a, b)
		}
	}
}
