// Package experiments reproduces every table and figure of the CRAID
// paper's evaluation (§5) plus the migration-cost ablation its
// motivation implies. Each experiment has one entry point returning
// plain row/series structs; cmd/craidbench prints them paper-style and
// bench_test.go wraps them in testing.B benchmarks.
//
// Scaling. The paper simulates one week against 50×146 GB disks. All
// experiments here take a volume scale factor: workload volumes AND
// disk capacities shrink together, preserving the dataset:disk ratio,
// seek-curve calibration (seek times depend on relative, not absolute,
// distances) and the P_C:dataset ratio — so the paper's shapes survive
// scaling while tests run in seconds. Scale 1.0 reproduces paper-scale
// geometry outright.
package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"

	"craid/internal/core"
	"craid/internal/disk"
	"craid/internal/fault"
	"craid/internal/mapcache"
	"craid/internal/metrics"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
	"craid/internal/workload"
)

// replayedRecords counts trace records replayed by every Run in this
// process (atomic: the experiment matrix runs cells concurrently).
// Tooling divides wall time and allocations by its delta to report
// per-record monitor cost (craidbench's per-table footer).
var replayedRecords atomic.Int64

// ReplayedRecords returns the process-wide count of replayed records.
func ReplayedRecords() int64 { return replayedRecords.Load() }

// newFileReader builds the parser for cfg's trace file format.
func newFileReader(r io.Reader, cfg RunConfig) (trace.Reader, error) {
	switch strings.ToLower(cfg.TraceFormat) {
	case "", "native":
		return trace.NewNativeReader(r), nil
	case "msr":
		m := trace.NewMSRReader(r)
		if cfg.TraceVolume != nil {
			if *cfg.TraceVolume < 0 {
				return nil, fmt.Errorf("experiments: negative TraceVolume %d", *cfg.TraceVolume)
			}
			m.Volume = *cfg.TraceVolume
		}
		return m, nil
	case "blk", "srcmap":
		return trace.NewBlkReader(r), nil
	}
	return nil, fmt.Errorf("experiments: unknown trace format %q", cfg.TraceFormat)
}

// Strategy names the six allocation policies of the paper's §5.
type Strategy string

// The evaluated strategies (Fig. 3).
const (
	RAID5         Strategy = "RAID-5"
	RAID5Plus     Strategy = "RAID-5+"
	CRAID5        Strategy = "CRAID-5"
	CRAID5Plus    Strategy = "CRAID-5+"
	CRAID5SSD     Strategy = "CRAID-5ssd"
	CRAID5PlusSSD Strategy = "CRAID-5+ssd"
)

// Strategies returns all six in the paper's order.
func Strategies() []Strategy {
	return []Strategy{RAID5, RAID5Plus, CRAID5, CRAID5Plus, CRAID5SSD, CRAID5PlusSSD}
}

func (s Strategy) IsCRAID() bool { return s != RAID5 && s != RAID5Plus }
func (s Strategy) usesSSD() bool { return s == CRAID5SSD || s == CRAID5PlusSSD }

// Testbed constants (paper §5).
const (
	TestbedDisks       = 50
	TestbedSSDs        = 5
	TestbedParityGroup = 10
	TestbedStripeUnit  = 32 // blocks = 128 KiB
)

// QuickScale is the default volume scale for tests and benches.
const QuickScale = 0.002

// ScaleFor returns the volume scale that replays roughly budgetGB of
// traffic for the named trace (capped at 1.0 = paper scale). Traces
// differ by three orders of magnitude in volume (proj: 2.5 TB,
// webresearch: 3.4 GB), so a flat scale either degenerates the small
// traces or makes the big ones intractable; a volume budget keeps every
// trace meaningful at comparable simulation cost.
func ScaleFor(traceName string, budgetGB float64) float64 {
	p, err := workload.Preset(traceName)
	if err != nil {
		return 1
	}
	total := p.ReadGB + p.WriteGB
	if total <= budgetGB {
		return 1
	}
	return budgetGB / total
}

// ScaleForBlocks returns the smallest volume scale (capped at paper
// scale 1.0) at which the testbed archive holds a dataset of the given
// block count with ~2x headroom — the natural scale for replaying a
// trace file whose footprint is known in blocks rather than via a
// workload preset.
func ScaleForBlocks(blocks int64) float64 {
	total := float64(disk.CheetahConfig("hdd").CapacityBlocks) * TestbedDisks
	s := 2 * float64(blocks) / total
	if s > 1 {
		s = 1
	}
	if s < 1e-5 {
		s = 1e-5
	}
	return s
}

// PCSizes returns the paper's cache-partition sweep (% per disk,
// Fig. 4/6 x-axes) for a trace.
func PCSizes(trace string) []float64 {
	switch trace {
	case "cello99", "home02":
		return []float64{0.02, 0.04, 0.08, 0.16, 0.32}
	case "deasna":
		return []float64{0.08, 0.16, 0.32, 0.64, 1.28}
	case "webresearch", "wdev":
		return []float64{0.002, 0.004, 0.008, 0.016, 0.032}
	case "webusers":
		return []float64{0.004, 0.008, 0.016, 0.032, 0.064}
	case "proj":
		return []float64{0.016, 0.032, 0.064, 0.128, 0.256}
	}
	return []float64{0.02, 0.04, 0.08, 0.16, 0.32}
}

// RunConfig describes one simulation.
type RunConfig struct {
	Trace    string
	Scale    float64  // volume scale (1.0 = paper scale); required
	Duration sim.Time // 0 = the preset's full week
	Strategy Strategy
	PCPct    float64 // cache size, % per disk (CRAID variants)
	Policy   string  // monitor policy; default WLRU (paper §5.1)

	// TraceFile replays a real trace file instead of the Trace preset.
	// TraceFormat selects the parser: "native" (default), "msr", or
	// "blk" (SRCMap/blkparse). DatasetBlocks sizes the simulated
	// dataset and is required with TraceFile (presets derive it from
	// the generator). TraceVolume, when non-nil, restricts an MSR file
	// to one DiskNumber; nil replays all volumes interleaved.
	TraceFile     string
	TraceFormat   string
	TraceVolume   *int
	DatasetBlocks int64

	// TraceAt, when non-nil, replaces the per-cell os.Open of
	// TraceFile: the cell reads [0, TraceAtSize) of the shared handle
	// through an io.SectionReader, whose ReadAt calls are pread-style
	// and safe for any number of concurrent cells. RunMSRVolumes uses
	// this to fan a k-volume file into k parallel simulations over ONE
	// open file instead of k. TraceFile then only labels the run.
	// Excluded from JSON (and from the canonical encoding, see
	// canon.go): an open handle is process-local state, so cells
	// carrying one never travel to remote workers or the result cache.
	TraceAt     io.ReaderAt `json:"-"`
	TraceAtSize int64       `json:"-"`

	// MapShards shards the CRAID mapping index by archive-address
	// range (0 = core's default single shard). Monitor ratios are
	// bit-identical at every value.
	MapShards int
	// MonitorWorkers classifies replay batches concurrently against
	// the sharded index, one worker per shard group (0 = core's
	// default sequential monitor; effective workers are capped at the
	// shard count). Stats and ratios are bit-identical at every value.
	MonitorWorkers int
	// PlanLookahead overlaps the monitor's plan phase with the apply
	// stage: batch k+1 classifies while batch k commits (0 = core's
	// default synchronous planning). Stats and ratios are
	// bit-identical at every value.
	PlanLookahead int
	// WorkerAffinity pins each shard group to one long-lived planner
	// worker for the whole replay instead of handing groups out per
	// batch, keeping a group's index shards hot in one worker's cache.
	// Pure scheduling policy: Stats and ratios are bit-identical either
	// way. Only meaningful with MonitorWorkers > 1.
	WorkerAffinity bool

	// FaultSpec, when non-empty, installs a deterministic failure plan
	// (fault.ParsePlan syntax: "seed=7;fail:2@5s;rebuild:2@10s,rate=64")
	// on the run. The same spec replays bit-identically at every
	// MapShards/MonitorWorkers/PlanLookahead setting. Plans with a
	// crash event need a CRAID strategy; the run then keeps an
	// in-memory mirror of the dirty-translation log to recover from
	// (alongside MappingLog's file, if one is configured).
	FaultSpec string

	// MappingLog, when non-empty, attaches a persistent dirty-
	// translation log at this path, written through a batched
	// mapcache.LogRing so the apply path never blocks on the log
	// device; RunResult.MapLog reports the ring's counters.
	MappingLog string
	// MapLogSync additionally fsyncs the log file after every flushed
	// ring buffer (core.Config.MapLogSync): each completed flush is on
	// stable media instead of merely handed to the OS. The recovery
	// byte stream is identical at both settings.
	MapLogSync bool

	// ReplayBatch and ReplayRing tune the replay pipeline's
	// pre-parsed record ring (0 = core defaults: 1024 × 4). The batch
	// is also the unit the multi-queue planner classifies at once.
	ReplayBatch int
	ReplayRing  int

	Instant  bool  // instant-service devices (§5.1 policy experiments)
	PCBlocks int64 // Instant mode: direct P_C capacity override

	// PCLevel selects the cache partition's redundancy (default
	// RAID-5, the paper's configuration).
	PCLevel core.PCLevel

	Bursty    bool // bursty, partially sequential arrivals
	TrackLoad bool // per-disk load → cv samples (Fig. 7)
	TrackSeq  bool // per-disk sequentiality (Fig. 5)
}

// RunResult carries everything the tables/figures consume.
type RunResult struct {
	Cfg      RunConfig
	Requests int64

	ReadMean, ReadP99   sim.Time
	WriteMean, WriteP99 sim.Time

	CRAID *core.Stats // nil for the plain baselines

	// Replay reports the pipeline's back-pressure counters; MQ the
	// multi-queue planner's activity (zero for sequential monitors and
	// the plain baselines); MapLog the dirty-log ring's counters (zero
	// unless MappingLog was set).
	Replay core.ReplayStats
	MQ     core.MQStats
	MapLog mapcache.LogRingStats

	// Fault KPIs, populated when FaultSpec installed a plan: the fault
	// fabric's counters, the response-time distribution of requests
	// submitted inside degraded windows, and the rebuild duration.
	Fault                     *core.FaultStats
	DegReadMean, DegReadP99   sim.Time
	DegWriteMean, DegWriteP99 sim.Time
	RebuildDuration           sim.Time

	CVs      []float64 // per-second coefficient of variation (if tracked)
	SeqFracs []float64 // per-second sequential fractions (if tracked)

	QueueMean float64
	QueueP99  int64
	QueueMax  int64
	ConcMean  float64
	ConcP99   int64
	ConcMax   int64
}

// Run executes one simulation to completion.
func Run(cfg RunConfig) (RunResult, error) {
	if cfg.TraceFile != "" && cfg.Scale == 0 && cfg.DatasetBlocks > 0 {
		// File traces can derive their geometry from the dataset size.
		cfg.Scale = ScaleForBlocks(cfg.DatasetBlocks)
	}
	if cfg.Scale <= 0 {
		return RunResult{}, fmt.Errorf("experiments: scale must be positive")
	}
	var rd trace.Reader
	var dataset int64
	if cfg.TraceFile != "" || cfg.TraceAt != nil {
		if cfg.DatasetBlocks <= 0 {
			return RunResult{}, fmt.Errorf("experiments: file trace %q needs DatasetBlocks", cfg.TraceFile)
		}
		if cfg.Bursty {
			// Burstiness is a generator knob; a real trace's arrival
			// pattern is whatever was recorded.
			return RunResult{}, fmt.Errorf("experiments: Bursty does not apply to file traces")
		}
		var src io.Reader
		if cfg.TraceAt != nil {
			// Shared handle: this cell's reads go through pread-style
			// ReadAt with a private offset, so sibling cells replaying
			// other volumes of the same file never interfere.
			src = io.NewSectionReader(cfg.TraceAt, 0, cfg.TraceAtSize)
		} else {
			f, err := os.Open(cfg.TraceFile)
			if err != nil {
				return RunResult{}, err
			}
			defer f.Close()
			src = f
		}
		var err error
		rd, err = newFileReader(bufio.NewReaderSize(src, 1<<20), cfg)
		if err != nil {
			return RunResult{}, err
		}
		if cfg.Duration > 0 {
			rd = trace.Window(rd, 0, cfg.Duration)
		}
		dataset = cfg.DatasetBlocks
	} else {
		params, err := workload.Preset(cfg.Trace)
		if err != nil {
			return RunResult{}, err
		}
		params = params.Scaled(cfg.Scale)
		if cfg.Duration > 0 {
			params = params.WithDuration(cfg.Duration)
		}
		if cfg.Bursty {
			params = params.WithBursts(12, 300*sim.Microsecond, 0.4)
		}
		gen := workload.New(params)
		rd = gen
		dataset = gen.DatasetBlocks()
	}

	var plan fault.Plan
	if cfg.FaultSpec != "" {
		var err error
		plan, err = fault.ParsePlan(cfg.FaultSpec)
		if err != nil {
			return RunResult{}, err
		}
	}

	eng := sim.NewEngine()
	vol, arr, err := buildVolume(eng, cfg, dataset)
	if err != nil {
		return RunResult{}, err
	}
	var logRing *mapcache.LogRing
	var logMirror *bytes.Buffer
	if cfg.MappingLog != "" || plan.HasCrash() {
		c, ok := vol.(*core.CRAID)
		if !ok {
			if cfg.MappingLog != "" {
				return RunResult{}, fmt.Errorf("experiments: MappingLog needs a CRAID strategy, not %s", cfg.Strategy)
			}
			return RunResult{}, fmt.Errorf("experiments: a crash fault plan needs a CRAID strategy, not %s", cfg.Strategy)
		}
		// A crash plan recovers from the log image as of the crash
		// instant, so the ring additionally mirrors the byte stream in
		// memory (the mirror IS the log when no file is configured).
		var w io.Writer
		if plan.HasCrash() {
			logMirror = &bytes.Buffer{}
			w = logMirror
		}
		if cfg.MappingLog != "" {
			f, err := os.Create(cfg.MappingLog)
			if err != nil {
				return RunResult{}, err
			}
			defer f.Close()
			if logMirror != nil {
				w = teeLog{f: f, mirror: logMirror}
			} else {
				w = f
			}
		}
		logRing = mapcache.NewLogRing(w, 0, 0)
		// Close is idempotent; the deferred call (which runs before the
		// file's, in LIFO order) reaps the writer goroutine and flushes
		// the tail on error paths, while the success path below closes
		// explicitly to surface write errors.
		defer logRing.Close()
		c.SetMappingLog(logRing)
	}
	var faultRT *core.FaultRuntime
	if cfg.FaultSpec != "" {
		faultRT, err = core.InstallFaults(arr, vol, plan, core.FaultOptions{})
		if err != nil {
			return RunResult{}, err
		}
		if plan.HasExpand() {
			// expand@ events grow the array mid-replay with devices of
			// the testbed's flavor (null under Instant, Cheetah HDDs
			// otherwise), named/indexed after the devices already built.
			hcfg := disk.CheetahConfig("hdd")
			hcfg.CapacityBlocks = int64(float64(hcfg.CapacityBlocks) * cfg.Scale)
			instant := cfg.Instant
			next := arr.Devices()
			faultRT.SetDeviceFactory(func(n int) []disk.Device {
				out := make([]disk.Device, 0, n)
				for i := 0; i < n; i++ {
					if instant {
						out = append(out, disk.NewNullDevice(eng, fmt.Sprintf("null%d", next), 1<<40))
					} else {
						c := hcfg
						c.Name = fmt.Sprintf("hdd%d", next)
						out = append(out, disk.NewHDD(eng, c))
					}
					next++
				}
				return out
			})
		}
		if plan.HasCrash() {
			ring, mirror := logRing, logMirror
			faultRT.SetCrashSource(func() (io.Reader, error) {
				// Barrier drains the ring's writer goroutine, so the
				// mirror holds exactly the records appended before the
				// crash instant — the image a synchronous log would
				// carry at the same cut.
				if err := ring.Barrier(); err != nil {
					return nil, err
				}
				return bytes.NewReader(mirror.Bytes()), nil
			})
		}
	}
	if cfg.TrackLoad {
		arr.Load = metrics.NewLoadTracker(arr.Devices(), sim.Second)
	}
	var volSeq *metrics.SeqTracker
	if cfg.TrackSeq {
		// Fig. 5 measures the volume-level sequentiality of the
		// redirected logical stream (where CRAID's re-layout of
		// scattered hot data is visible), not raw per-disk mechanics.
		volSeq = metrics.NewSeqTracker(sim.Second)
		if v, ok := vol.(interface {
			SetVolumeSeq(*metrics.SeqTracker)
		}); ok {
			v.SetVolumeSeq(volSeq)
		}
	}

	n, rst, err := core.ReplayWith(eng, vol, trace.Clamp(rd, vol.DataBlocks()),
		core.ReplayConfig{BatchSize: cfg.ReplayBatch, RingDepth: cfg.ReplayRing})
	if err != nil {
		return RunResult{}, err
	}
	if faultRT != nil {
		if err := faultRT.Err(); err != nil {
			return RunResult{}, err
		}
	}
	replayedRecords.Add(n)
	var logStats mapcache.LogRingStats
	if logRing != nil {
		if err := logRing.Close(); err != nil {
			return RunResult{}, fmt.Errorf("experiments: mapping log %s: %w", cfg.MappingLog, err)
		}
		logStats = logRing.Stats()
	}

	res := RunResult{
		Cfg:       cfg,
		Requests:  n,
		Replay:    rst,
		MapLog:    logStats,
		ReadMean:  vol.ReadLatency().Mean(),
		ReadP99:   vol.ReadLatency().Percentile(0.99),
		WriteMean: vol.WriteLatency().Mean(),
		WriteP99:  vol.WriteLatency().Percentile(0.99),
	}
	if c, ok := vol.(*core.CRAID); ok {
		res.CRAID = c.Stats()
		res.MQ = *c.MQ()
	}
	if faultRT != nil {
		res.Fault = faultRT.Stats()
		res.RebuildDuration = res.Fault.RebuildDuration()
		if d, ok := vol.(interface {
			DegradedReadLatency() *metrics.LatencyHist
			DegradedWriteLatency() *metrics.LatencyHist
		}); ok {
			res.DegReadMean = d.DegradedReadLatency().Mean()
			res.DegReadP99 = d.DegradedReadLatency().Percentile(0.99)
			res.DegWriteMean = d.DegradedWriteLatency().Mean()
			res.DegWriteP99 = d.DegradedWriteLatency().Percentile(0.99)
		}
	}
	if arr.Load != nil {
		res.CVs = arr.Load.CVs()
	}
	if volSeq != nil {
		res.SeqFracs = volSeq.Fractions()
	}
	res.QueueMean, res.QueueP99, res.QueueMax = arr.QueueStats()
	res.ConcMean, res.ConcP99, res.ConcMax = arr.ConcurrencyStats()
	return res, nil
}

// buildVolume assembles devices, layouts and the controller for cfg.
func buildVolume(eng *sim.Engine, cfg RunConfig, dataset int64) (core.Volume, *core.Array, error) {
	hcfg := disk.CheetahConfig("hdd")
	diskCap := int64(float64(hcfg.CapacityBlocks) * cfg.Scale)

	// Cache partition size per disk (shared-P_C variants).
	pcPerDisk := int64(cfg.PCPct / 100 * float64(diskCap))
	if cfg.Strategy.IsCRAID() && pcPerDisk < TestbedStripeUnit {
		pcPerDisk = TestbedStripeUnit
	}
	paPerDisk := diskCap - pcPerDisk
	if !cfg.Strategy.IsCRAID() || cfg.Strategy.usesSSD() {
		paPerDisk = diskCap // archive owns the whole disk
	}

	// Devices.
	var devs []disk.Device
	for i := 0; i < TestbedDisks; i++ {
		if cfg.Instant {
			devs = append(devs, disk.NewNullDevice(eng, fmt.Sprintf("null%d", i), 1<<40))
			continue
		}
		c := hcfg
		c.Name = fmt.Sprintf("hdd%d", i)
		c.CapacityBlocks = diskCap
		devs = append(devs, disk.NewHDD(eng, c))
	}
	hddIdx := indices(0, TestbedDisks)

	var ssdIdx []int
	pcTotalPerSSD := pcPerDisk * int64(TestbedDisks) / int64(TestbedSSDs)
	if cfg.Strategy.usesSSD() {
		for i := 0; i < TestbedSSDs; i++ {
			if cfg.Instant {
				devs = append(devs, disk.NewNullDevice(eng, fmt.Sprintf("nullssd%d", i), 1<<40))
				continue
			}
			sc := disk.MSRSSDConfig(fmt.Sprintf("ssd%d", i))
			if sc.CapacityBlocks < pcTotalPerSSD {
				sc.CapacityBlocks = pcTotalPerSSD
			}
			devs = append(devs, disk.NewSSD(eng, sc))
		}
		ssdIdx = indices(TestbedDisks, TestbedSSDs)
	}
	arr := core.NewArray(eng, devs)

	// Archive layouts sized to the full archive region, with the
	// dataset spread uniformly across it.
	buildArchive := func(plus bool) (raid.Layout, error) {
		var inner raid.Layout
		if plus {
			inner = raid.NewRAID5Plus(raid.PaperExpansionSizes(), paPerDisk, TestbedStripeUnit)
		} else {
			inner = raid.NewRAID5(TestbedDisks, TestbedParityGroup, paPerDisk, TestbedStripeUnit)
		}
		if inner.DataBlocks() < dataset {
			return nil, fmt.Errorf("experiments: dataset (%d blocks) exceeds archive capacity (%d); increase scale or disks",
				dataset, inner.DataBlocks())
		}
		return raid.NewSpreadLayout(inner, dataset), nil
	}

	shards := cfg.MapShards
	if shards == 0 {
		shards = defaultMapShards
	}
	workers := cfg.MonitorWorkers
	if workers == 0 {
		workers = defaultMonitorWorkers
	}
	lookahead := cfg.PlanLookahead
	if lookahead == 0 {
		lookahead = defaultPlanLookahead
	}
	affinity := cfg.WorkerAffinity || defaultWorkerAffinity
	if workers > 1 && shards == 0 {
		// No shard count requested anywhere: concurrency needs
		// disjoint shard groups to own, so give each worker a few
		// shards of headroom (ratios are bit-identical at every shard
		// count, so this changes nothing observable). An explicit
		// single-tree request (MapShards/-shards 1) is honored — the
		// planner then degrades to the sequential monitor.
		shards = 4 * workers
	}
	ccfg := core.Config{
		Policy:         cfg.Policy,
		CachePerDisk:   pcPerDisk,
		ParityGroup:    TestbedParityGroup,
		StripeUnit:     TestbedStripeUnit,
		Level:          cfg.PCLevel,
		MapShards:      shards,
		MonitorWorkers: workers,
		PlanLookahead:  lookahead,
		WorkerAffinity: affinity,
		MapLogSync:     cfg.MapLogSync,
	}
	if cfg.Instant && cfg.PCBlocks > 0 {
		// Policy-quality experiments size P_C directly in blocks.
		ccfg.StripeUnit = 1
		ccfg.ParityGroup = TestbedParityGroup
		perDisk := cfg.PCBlocks / int64(TestbedDisks-TestbedDisks/TestbedParityGroup)
		if perDisk < 1 {
			perDisk = 1
		}
		ccfg.CachePerDisk = perDisk
	}

	switch cfg.Strategy {
	case RAID5:
		layout, err := buildArchive(false)
		if err != nil {
			return nil, nil, err
		}
		return core.NewRAIDController(arr, layout, hddIdx, 0), arr, nil
	case RAID5Plus:
		layout, err := buildArchive(true)
		if err != nil {
			return nil, nil, err
		}
		return core.NewRAIDController(arr, layout, hddIdx, 0), arr, nil
	case CRAID5, CRAID5Plus:
		layout, err := buildArchive(cfg.Strategy == CRAID5Plus)
		if err != nil {
			return nil, nil, err
		}
		base := ccfg.CachePerDisk
		c, err := core.NewCRAID(arr, ccfg, true, hddIdx, 0, layout, hddIdx, base)
		if err != nil {
			return nil, nil, err
		}
		return c, arr, nil
	case CRAID5SSD, CRAID5PlusSSD:
		layout, err := buildArchive(cfg.Strategy == CRAID5PlusSSD)
		if err != nil {
			return nil, nil, err
		}
		// Dedicated cache: the same total P_C bytes concentrated on the
		// SSDs (5 devices → parity group = 5).
		scfg := ccfg
		scfg.ParityGroup = TestbedSSDs
		scfg.CachePerDisk = pcTotalPerSSD
		if cfg.Instant && cfg.PCBlocks > 0 {
			scfg.StripeUnit = 1
			scfg.CachePerDisk = maxI64(1, cfg.PCBlocks/int64(TestbedSSDs-1))
		}
		c, err := core.NewCRAID(arr, scfg, false, ssdIdx, 0, layout, hddIdx, 0)
		if err != nil {
			return nil, nil, err
		}
		return c, arr, nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown strategy %q", cfg.Strategy)
}

// teeLog duplicates the dirty-log byte stream into an in-memory mirror
// so a crash event can recover from the image as of the crash instant
// while the on-disk log keeps its full history. Both writers are driven
// only by the LogRing's background goroutine; the mirror is read on the
// simulation goroutine strictly after a Barrier, which synchronizes.
type teeLog struct {
	f      *os.File
	mirror *bytes.Buffer
}

func (t teeLog) Write(p []byte) (int, error) {
	t.mirror.Write(p)
	return t.f.Write(p)
}

// Sync exposes the file's fsync to the ring's MapLogSync knob.
func (t teeLog) Sync() error { return t.f.Sync() }

func indices(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
