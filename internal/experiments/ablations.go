package experiments

import (
	"fmt"
	"io"

	"craid/internal/core"
	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/workload"
)

// --- Ablation: cache-partition redundancy level ---

// PCLevelRow compares one cache-partition redundancy level.
type PCLevelRow struct {
	Level     core.PCLevel
	ReadMean  sim.Time
	WriteMean sim.Time
	HitRead   float64
	HitWrite  float64
}

// AblationPCLevel runs CRAID-5's workload with RAID-0, RAID-5 and
// RAID-6 cache partitions: the §6 trade-off between parity safety and
// parity-update cost, made measurable.
func AblationPCLevel(traceName string, scale, pcPct float64) ([]PCLevelRow, error) {
	var cfgs []RunConfig
	for _, level := range []core.PCLevel{core.PCRaid0, core.PCRaid5, core.PCRaid6} {
		cfgs = append(cfgs, RunConfig{
			Trace:    traceName,
			Scale:    scale,
			Strategy: CRAID5,
			PCPct:    pcPct,
			PCLevel:  level,
			Bursty:   true,
		})
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	rows := make([]PCLevelRow, len(results))
	for i, res := range results {
		rows[i] = PCLevelRow{
			Level:     res.Cfg.PCLevel,
			ReadMean:  res.ReadMean,
			WriteMean: res.WriteMean,
			HitRead:   res.CRAID.HitRatio(disk.OpRead),
			HitWrite:  res.CRAID.HitRatio(disk.OpWrite),
		}
	}
	return rows, nil
}

// --- Ablation: expansion strategy (invalidate vs retain) ---

// UpgradeRow reports one live-expansion run.
type UpgradeRow struct {
	Mode          string // "invalidate" (paper §4.1) or "retain" (§6 extension)
	Upgrade       core.ExpandStats
	PreReadMean   sim.Time // mean read response before the expansion
	PostReadMean  sim.Time // mean read response after it
	PostHitRatio  float64  // read hit ratio measured after the expansion
	NewDiskReads  int64    // reads landing on the added disks afterwards
	NewDiskWrites int64
}

// AblationRebalance expands a loaded CRAID array mid-trace (38→50
// disks, the paper schedule's last step) with both strategies: the
// paper's conservative invalidation versus the ExpandRetain extension.
// It quantifies the §6 discussion — invalidation costs post-expansion
// misses, retention costs upfront migration.
func AblationRebalance(traceName string, scale, pcPct float64) ([]UpgradeRow, error) {
	var rows []UpgradeRow
	for _, retain := range []bool{false, true} {
		row, err := upgradeRun(traceName, scale, pcPct, retain)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func upgradeRun(traceName string, scale, pcPct float64, retain bool) (UpgradeRow, error) {
	params, err := workload.Preset(traceName)
	if err != nil {
		return UpgradeRow{}, err
	}
	params = params.Scaled(scale).WithBursts(12, 300*sim.Microsecond, 0.4)
	gen := workload.New(params)

	const startDisks, endDisks = 38, TestbedDisks
	eng := sim.NewEngine()
	hcfg := disk.CheetahConfig("hdd")
	diskCap := int64(float64(hcfg.CapacityBlocks) * scale)
	newHDD := func(i int) disk.Device {
		c := hcfg
		c.Name = fmt.Sprintf("hdd%d", i)
		c.CapacityBlocks = diskCap
		return disk.NewHDD(eng, c)
	}
	var devs []disk.Device
	for i := 0; i < startDisks; i++ {
		devs = append(devs, newHDD(i))
	}
	arr := core.NewArray(eng, devs)

	pcPerDisk := int64(pcPct / 100 * float64(diskCap))
	if pcPerDisk < TestbedStripeUnit {
		pcPerDisk = TestbedStripeUnit
	}
	// Archive: the paper schedule's first six sets (10+3+4+5+7+9 = 38).
	sets := raid.PaperExpansionSizes()[:6]
	inner := raid.NewRAID5Plus(sets, diskCap-pcPerDisk, TestbedStripeUnit)
	if inner.DataBlocks() < gen.DatasetBlocks() {
		return UpgradeRow{}, fmt.Errorf("experiments: dataset exceeds 38-disk archive at scale %g", scale)
	}
	archive := raid.NewSpreadLayout(inner, gen.DatasetBlocks())
	c, err := core.NewCRAID(arr, core.Config{
		CachePerDisk: pcPerDisk,
		ParityGroup:  TestbedParityGroup,
		StripeUnit:   TestbedStripeUnit,
	}, true, indices(0, startDisks), 0, archive, indices(0, startDisks), pcPerDisk)
	if err != nil {
		return UpgradeRow{}, err
	}

	expandAt := params.Duration / 2
	row := UpgradeRow{Mode: "invalidate"}
	if retain {
		row.Mode = "retain"
	}
	var preHits, preAccesses int64
	var preReadSum float64
	var preReadN int64
	expanded := false
	for {
		rec, err := gen.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return row, err
		}
		if !expanded && rec.Time >= expandAt {
			eng.RunUntil(expandAt)
			preReadSum = float64(c.ReadLatency().Mean()) * float64(c.ReadLatency().Count())
			preReadN = c.ReadLatency().Count()
			preHits = c.Stats().ReadHits
			preAccesses = c.Stats().ReadBlocks
			var extra []disk.Device
			for i := startDisks; i < endDisks; i++ {
				extra = append(extra, newHDD(i))
			}
			if retain {
				row.Upgrade = c.ExpandRetain(extra)
			} else {
				row.Upgrade = c.Expand(extra)
			}
			expanded = true
		}
		eng.RunUntil(rec.Time)
		c.Submit(rec, nil)
	}
	eng.Run()
	if !expanded {
		return row, fmt.Errorf("experiments: trace ended before the expansion point")
	}

	if preReadN > 0 {
		row.PreReadMean = sim.Time(preReadSum / float64(preReadN))
	}
	if n := c.ReadLatency().Count() - preReadN; n > 0 {
		postSum := float64(c.ReadLatency().Mean())*float64(c.ReadLatency().Count()) - preReadSum
		row.PostReadMean = sim.Time(postSum / float64(n))
	}
	if n := c.Stats().ReadBlocks - preAccesses; n > 0 {
		row.PostHitRatio = float64(c.Stats().ReadHits-preHits) / float64(n)
	}
	for i := startDisks; i < endDisks; i++ {
		s := arr.Device(i).Stats()
		row.NewDiskReads += s.Reads
		row.NewDiskWrites += s.Writes
	}
	return row, nil
}
