package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"craid/internal/core"
	"craid/internal/sim"
)

// Canonical RunConfig encoding.
//
// The experiment fabric caches completed cells content-addressed by
// their configuration, so two processes (or two PRs) must derive the
// SAME key for the same simulation. encoding/json cannot promise that
// (field tags, float formatting and map ordering are all fair game
// across versions), so the cache key comes from an explicit canonical
// form instead: one line per field, fixed field order, exact value
// formatting — integers in decimal, floats in hex (strconv 'x', which
// round-trips every bit pattern), strings quoted with strconv.Quote.
// The encoding is versioned; changing a field's meaning or adding one
// MUST bump canonVersion so old cache entries can never alias new
// configs.
//
// TraceAt/TraceAtSize are deliberately outside the canonical form: an
// open file handle is process-local state, not configuration, so cells
// carrying one are neither hashable nor shippable to remote workers
// (RunMSRVolumes keeps those cells in-process).

// canonVersion is the canonical-encoding format version.
const canonVersion = "craid-config/1"

// ErrNotCanonical reports a config that cannot be canonically encoded.
var ErrNotCanonical = fmt.Errorf("experiments: config with TraceAt handle has no canonical form")

// EncodeConfig renders cfg in the canonical field-ordered form used
// for content addressing. Configs carrying a TraceAt handle return
// ErrNotCanonical.
func EncodeConfig(cfg RunConfig) ([]byte, error) {
	if cfg.TraceAt != nil {
		return nil, ErrNotCanonical
	}
	var b strings.Builder
	b.Grow(512)
	b.WriteString(canonVersion)
	b.WriteByte('\n')
	wstr := func(key, v string) {
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
		b.WriteByte('\n')
	}
	wint := func(key string, v int64) {
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte('\n')
	}
	wfloat := func(key string, v float64) {
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		b.WriteByte('\n')
	}
	wbool := func(key string, v bool) {
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(strconv.FormatBool(v))
		b.WriteByte('\n')
	}

	wstr("trace", cfg.Trace)
	wfloat("scale", cfg.Scale)
	wint("duration", int64(cfg.Duration))
	wstr("strategy", string(cfg.Strategy))
	wfloat("pc_pct", cfg.PCPct)
	wstr("policy", cfg.Policy)
	wstr("trace_file", cfg.TraceFile)
	wstr("trace_format", cfg.TraceFormat)
	if cfg.TraceVolume == nil {
		b.WriteString("trace_volume=nil\n")
	} else {
		wint("trace_volume", int64(*cfg.TraceVolume))
	}
	wint("dataset_blocks", cfg.DatasetBlocks)
	wint("map_shards", int64(cfg.MapShards))
	wint("monitor_workers", int64(cfg.MonitorWorkers))
	wint("plan_lookahead", int64(cfg.PlanLookahead))
	wbool("worker_affinity", cfg.WorkerAffinity)
	wstr("fault_spec", cfg.FaultSpec)
	wstr("mapping_log", cfg.MappingLog)
	wbool("map_log_sync", cfg.MapLogSync)
	wint("replay_batch", int64(cfg.ReplayBatch))
	wint("replay_ring", int64(cfg.ReplayRing))
	wbool("instant", cfg.Instant)
	wint("pc_blocks", cfg.PCBlocks)
	wint("pc_level", int64(cfg.PCLevel))
	wbool("bursty", cfg.Bursty)
	wbool("track_load", cfg.TrackLoad)
	wbool("track_seq", cfg.TrackSeq)
	return []byte(b.String()), nil
}

// DecodeConfig parses the canonical form back into a RunConfig. It is
// strict: the version line, field order and value formats must match
// EncodeConfig exactly, so decode(encode(cfg)) re-encodes to identical
// bytes and a tampered or foreign-version encoding is rejected rather
// than half-read.
func DecodeConfig(data []byte) (RunConfig, error) {
	var cfg RunConfig
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != canonVersion {
		return cfg, fmt.Errorf("experiments: not a %s encoding", canonVersion)
	}
	lines = lines[1:]
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1] // trailing newline
	}
	pos := 0
	next := func(key string) (string, error) {
		if pos >= len(lines) {
			return "", fmt.Errorf("experiments: canonical config truncated at %q", key)
		}
		line := lines[pos]
		pos++
		val, ok := strings.CutPrefix(line, key+"=")
		if !ok {
			return "", fmt.Errorf("experiments: canonical config expected %q, got %q", key, line)
		}
		return val, nil
	}
	var err error
	rstr := func(key string) string {
		if err != nil {
			return ""
		}
		var raw, s string
		if raw, err = next(key); err == nil {
			if s, err = strconv.Unquote(raw); err != nil {
				err = fmt.Errorf("experiments: canonical %s: %w", key, err)
			}
		}
		return s
	}
	rint := func(key string) int64 {
		if err != nil {
			return 0
		}
		var raw string
		var v int64
		if raw, err = next(key); err == nil {
			if v, err = strconv.ParseInt(raw, 10, 64); err != nil {
				err = fmt.Errorf("experiments: canonical %s: %w", key, err)
			}
		}
		return v
	}
	rfloat := func(key string) float64 {
		if err != nil {
			return 0
		}
		var raw string
		var v float64
		if raw, err = next(key); err == nil {
			if v, err = strconv.ParseFloat(raw, 64); err != nil {
				err = fmt.Errorf("experiments: canonical %s: %w", key, err)
			}
		}
		return v
	}
	rbool := func(key string) bool {
		if err != nil {
			return false
		}
		var raw string
		var v bool
		if raw, err = next(key); err == nil {
			if v, err = strconv.ParseBool(raw); err != nil {
				err = fmt.Errorf("experiments: canonical %s: %w", key, err)
			}
		}
		return v
	}

	cfg.Trace = rstr("trace")
	cfg.Scale = rfloat("scale")
	cfg.Duration = sim.Time(rint("duration"))
	cfg.Strategy = Strategy(rstr("strategy"))
	cfg.PCPct = rfloat("pc_pct")
	cfg.Policy = rstr("policy")
	cfg.TraceFile = rstr("trace_file")
	cfg.TraceFormat = rstr("trace_format")
	if err == nil {
		raw, e := next("trace_volume")
		if e != nil {
			err = e
		} else if raw != "nil" {
			v, e := strconv.ParseInt(raw, 10, 64)
			if e != nil {
				err = fmt.Errorf("experiments: canonical trace_volume: %w", e)
			} else {
				vi := int(v)
				cfg.TraceVolume = &vi
			}
		}
	}
	cfg.DatasetBlocks = rint("dataset_blocks")
	cfg.MapShards = int(rint("map_shards"))
	cfg.MonitorWorkers = int(rint("monitor_workers"))
	cfg.PlanLookahead = int(rint("plan_lookahead"))
	cfg.WorkerAffinity = rbool("worker_affinity")
	cfg.FaultSpec = rstr("fault_spec")
	cfg.MappingLog = rstr("mapping_log")
	cfg.MapLogSync = rbool("map_log_sync")
	cfg.ReplayBatch = int(rint("replay_batch"))
	cfg.ReplayRing = int(rint("replay_ring"))
	cfg.Instant = rbool("instant")
	cfg.PCBlocks = rint("pc_blocks")
	cfg.PCLevel = core.PCLevel(rint("pc_level"))
	cfg.Bursty = rbool("bursty")
	cfg.TrackLoad = rbool("track_load")
	cfg.TrackSeq = rbool("track_seq")
	if err != nil {
		return RunConfig{}, err
	}
	if pos != len(lines) {
		return RunConfig{}, fmt.Errorf("experiments: canonical config has %d trailing line(s)", len(lines)-pos)
	}
	return cfg, nil
}

// ConfigHash returns the content address of cfg: the hex SHA-256 of
// its canonical encoding. Equal hashes mean equal simulations (the
// engine is deterministic), so a cached RunResult under this key can
// stand in for re-running the cell.
func ConfigHash(cfg RunConfig) (string, error) {
	enc, err := EncodeConfig(cfg)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:]), nil
}

// ResolveDefaults folds the process-wide matrix defaults
// (SetDefaultMapShards and friends) into cfg's own fields, returning
// the configuration Run would effectively execute. Submitting to the
// fabric requires this: the remote worker's process defaults are not
// ours, and the content address must capture the knobs that shape the
// result's pipeline counters.
func ResolveDefaults(cfg RunConfig) RunConfig {
	if cfg.MapShards == 0 {
		cfg.MapShards = defaultMapShards
	}
	if cfg.MonitorWorkers == 0 {
		cfg.MonitorWorkers = defaultMonitorWorkers
	}
	if cfg.PlanLookahead == 0 {
		cfg.PlanLookahead = defaultPlanLookahead
	}
	cfg.WorkerAffinity = cfg.WorkerAffinity || defaultWorkerAffinity
	return cfg
}
