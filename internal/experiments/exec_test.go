package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// chaosExecutor completes cells out of order from many goroutines and,
// for flagged indices, emits a second conflicting "requeued-lease"
// result — the exact delivery pattern a fabric submitter sees when a
// lease expires and the presumed-dead worker's completion races the
// replacement's. The duplicate carries a different Requests value so a
// last-result-wins bug is observable, not silently equivalent.
type chaosExecutor struct {
	seed      int64
	duplicate map[int]bool
	errAt     map[int]error
}

func (c chaosExecutor) Execute(cfgs []RunConfig, emit func(CellResult)) error {
	rng := rand.New(rand.NewSource(c.seed))
	order := rng.Perm(len(cfgs))
	var wg sync.WaitGroup
	for _, i := range order {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.errAt[i]; err != nil {
				emit(CellResult{Index: i, Err: err})
				return
			}
			first := fakeResult(cfgs[i], 1)
			emit(CellResult{Index: i, Result: first})
			if c.duplicate[i] {
				emit(CellResult{Index: i, Result: fakeResult(cfgs[i], 2)}) // stale worker's copy
				emit(CellResult{Index: i, Err: errors.New("stale lease error")})
			}
		}()
	}
	wg.Wait()
	return nil
}

// fakeResult derives a result recognizably tied to (cfg, attempt).
func fakeResult(cfg RunConfig, attempt int64) RunResult {
	return RunResult{Cfg: cfg, Requests: int64(cfg.MapShards)*1000 + attempt}
}

// TestRunAllDeterministicOrderUnderChaos pins the scheduling
// contract: whatever order (and multiplicity) completions arrive in,
// RunAll returns results[i] == the FIRST completion of cfgs[i].
func TestRunAllDeterministicOrderUnderChaos(t *testing.T) {
	const n = 64
	cfgs := make([]RunConfig, n)
	for i := range cfgs {
		cfgs[i] = RunConfig{Trace: fmt.Sprintf("t%d", i), MapShards: i}
	}
	dup := map[int]bool{3: true, 17: true, 40: true, 63: true}
	var want []RunResult
	for _, cfg := range cfgs {
		want = append(want, fakeResult(cfg, 1))
	}
	for seed := int64(0); seed < 20; seed++ {
		SetExecutor(chaosExecutor{seed: seed, duplicate: dup})
		got, err := RunAll(cfgs)
		SetExecutor(nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("seed %d: results[%d] = %+v, want first-completion %+v",
						seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunAllLowestIndexedError pins that a multi-failure batch reports
// the lowest-indexed cell error regardless of completion order.
func TestRunAllLowestIndexedError(t *testing.T) {
	cfgs := make([]RunConfig, 16)
	for i := range cfgs {
		cfgs[i] = RunConfig{Trace: fmt.Sprintf("t%d", i)}
	}
	errs := map[int]error{11: errors.New("err 11"), 5: errors.New("err 5"), 14: errors.New("err 14")}
	for seed := int64(0); seed < 10; seed++ {
		SetExecutor(chaosExecutor{seed: seed, errAt: errs})
		_, err := RunAll(cfgs)
		SetExecutor(nil)
		if err == nil || err.Error() != "err 5" {
			t.Fatalf("seed %d: error = %v, want err 5 (lowest index)", seed, err)
		}
	}
}

// TestCollectDropsOutOfRangeIndexes guards the submitter against a
// malformed or hostile stream: indexes outside the batch are ignored.
func TestCollectDropsOutOfRangeIndexes(t *testing.T) {
	results, err := Collect(2, func(emit func(CellResult)) error {
		emit(CellResult{Index: -1, Result: RunResult{Requests: 9}})
		emit(CellResult{Index: 2, Result: RunResult{Requests: 9}})
		emit(CellResult{Index: 0, Result: RunResult{Requests: 1}})
		emit(CellResult{Index: 1, Result: RunResult{Requests: 2}})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Requests != 1 || results[1].Requests != 2 {
		t.Fatalf("results corrupted by out-of-range emits: %+v", results)
	}
}

// TestCollectTransportError pins that an executor transport failure
// surfaces when no cell-level error explains it, and that cell errors
// take precedence (they are more specific).
func TestCollectTransportError(t *testing.T) {
	transport := errors.New("connection refused")
	_, err := Collect(1, func(emit func(CellResult)) error { return transport })
	if !errors.Is(err, transport) {
		t.Fatalf("transport error lost: %v", err)
	}
	cellErr := errors.New("cell exploded")
	_, err = Collect(1, func(emit func(CellResult)) error {
		emit(CellResult{Index: 0, Err: cellErr})
		return transport
	})
	if !errors.Is(err, cellErr) {
		t.Fatalf("cell error should take precedence, got %v", err)
	}
}
