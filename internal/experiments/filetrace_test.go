package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempTrace drops content into a temp file and returns its path.
func writeTempTrace(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fileCfg(path, format string) RunConfig {
	return RunConfig{
		Trace:         "file",
		Scale:         QuickScale,
		Strategy:      CRAID5,
		PCPct:         0.02,
		TraceFile:     path,
		TraceFormat:   format,
		DatasetBlocks: 50_000,
	}
}

func TestRunFileTraceNative(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		op := "R"
		if i%4 == 0 {
			op = "W"
		}
		fmt.Fprintf(&sb, "%d %s %d 8\n", i*100, op, (i*37)%40_000)
	}
	path := writeTempTrace(t, "t.trace", sb.String())

	res, err := Run(fileCfg(path, "native"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 500 {
		t.Fatalf("replayed %d requests, want 500", res.Requests)
	}
	if res.CRAID == nil || res.CRAID.ReadBlocks == 0 {
		t.Fatal("file replay produced no monitor traffic")
	}
}

func TestRunFileTraceNeedsDataset(t *testing.T) {
	path := writeTempTrace(t, "t.trace", "0 R 0 1\n")
	cfg := fileCfg(path, "native")
	cfg.DatasetBlocks = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("file trace without DatasetBlocks did not error")
	}
}

func TestRunFileTraceUnknownFormat(t *testing.T) {
	path := writeTempTrace(t, "t.trace", "0 R 0 1\n")
	if _, err := Run(fileCfg(path, "pcap")); err == nil {
		t.Fatal("unknown format did not error")
	}
}

func TestRunFileTraceDerivesScale(t *testing.T) {
	path := writeTempTrace(t, "t.trace", "0 R 0 1\n100 W 8 2\n")
	cfg := fileCfg(path, "native")
	cfg.Scale = 0 // library callers may leave it to DatasetBlocks
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2 {
		t.Fatalf("replayed %d requests, want 2", res.Requests)
	}
}

func TestRunFileTraceRejectsBursty(t *testing.T) {
	path := writeTempTrace(t, "t.trace", "0 R 0 1\n")
	cfg := fileCfg(path, "native")
	cfg.Bursty = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Bursty on a file trace did not error (it would be silently ignored)")
	}
}

func TestRunFileTraceRejectsNegativeVolume(t *testing.T) {
	path := writeTempTrace(t, "t.csv", "1,h,0,Read,0,4096,1\n")
	cfg := fileCfg(path, "msr")
	bad := -1
	cfg.TraceVolume = &bad
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative TraceVolume did not error")
	}
}

// buildMSRFile renders an MSR CSV interleaving records of several
// DiskNumbers, returning the per-volume record counts.
func buildMSRFile(t *testing.T, vols []int, perVol int) (string, map[int]int64) {
	t.Helper()
	var sb strings.Builder
	counts := make(map[int]int64)
	ft := int64(128166372003061629)
	for i := 0; i < perVol; i++ {
		for _, v := range vols {
			typ := "Read"
			if (i+v)%3 == 0 {
				typ = "Write"
			}
			fmt.Fprintf(&sb, "%d,host,%d,%s,%d,%d,100\n",
				ft, v, typ, ((i*13+v)%30_000)*4096, 4096)
			counts[v]++
			ft += 1000
		}
	}
	return writeTempTrace(t, "msr.csv", sb.String()), counts
}

func TestRunMSRVolumesSplitsAndRunsAll(t *testing.T) {
	vols := []int{0, 2, 5}
	path, counts := buildMSRFile(t, vols, 200)

	results, err := RunMSRVolumes(path, fileCfg("", "msr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(vols) {
		t.Fatalf("got %d volume results, want %d", len(results), len(vols))
	}
	for i, vr := range results {
		if vr.Volume != vols[i] {
			t.Errorf("result %d: volume %d, want %d (ascending order)", i, vr.Volume, vols[i])
		}
		if vr.Requests != counts[vr.Volume] {
			t.Errorf("volume %d replayed %d requests, want %d", vr.Volume, vr.Requests, counts[vr.Volume])
		}
	}

	// Parallel per-volume results must equal a directly-configured
	// single-volume run (split changes concurrency, not outcomes).
	solo := fileCfg(path, "msr")
	vol := 2
	solo.TraceVolume = &vol
	res, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != results[1].Requests ||
		res.CRAID.OverallHitRatio() != results[1].CRAID.OverallHitRatio() {
		t.Error("per-volume split diverged from direct single-volume run")
	}

	// The zero value of TraceVolume (nil) replays every volume.
	all, err := Run(fileCfg(path, "msr"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if all.Requests != total {
		t.Errorf("nil TraceVolume replayed %d requests, want all %d", all.Requests, total)
	}
}

func TestRunMSRVolumesEmptyFile(t *testing.T) {
	path := writeTempTrace(t, "empty.csv", "# nothing\n")
	if _, err := RunMSRVolumes(path, fileCfg("", "msr")); err == nil {
		t.Fatal("empty MSR file did not error")
	}
}
