package experiments

import (
	"fmt"

	"craid/internal/sim"
)

// FaultRow is one failure experiment: the same workload replayed
// healthy and under a fault plan, with the degraded-window KPIs and the
// monitor-interference deltas the comparison yields.
type FaultRow struct {
	Name string // experiment label
	Spec string // the fault plan replayed

	Healthy RunResult // baseline, no plan installed
	Faulted RunResult // same config + Spec

	// Interference: response-time inflation of the faulted run over the
	// healthy baseline, whole-run means (1.0 = no interference).
	ReadMeanX  float64
	WriteMeanX float64

	// Degraded-window latencies and the rebuild KPI, copied out of the
	// faulted run for table printing.
	DegReadMean, DegReadP99   sim.Time
	DegWriteMean, DegWriteP99 sim.Time
	RebuildDuration           sim.Time

	// Compound-failure KPIs, copied out of the faulted run's
	// FaultStats for the double-fault / upgrade / storm rows.
	Restarts        int64    // crash-restart cycles survived
	RebuildRestarts int64    // rebuilds a crash restarted from row zero
	RebuildLostRows int64    // rows unrecoverable mid-rebuild
	LostExtents     int64    // extents beyond redundancy
	Upgrades        int64    // expand events fired
	ExpandMigrated  int64    // blocks a retain upgrade moved
	ExpandWriteback int64    // dirty blocks an invalidating upgrade flushed
	UpgradeLatency  sim.Time // expand instant → background-I/O drain
}

// RunFault replays cfg twice — once healthy, once with spec installed —
// and reports the comparison. cfg.FaultSpec is overwritten by spec; all
// other knobs (strategy, scale, pipeline settings) apply to both runs,
// so the delta isolates the fault fabric's effect.
func RunFault(name string, cfg RunConfig, spec string) (FaultRow, error) {
	cfg.FaultSpec = ""
	healthy, err := Run(cfg)
	if err != nil {
		return FaultRow{}, fmt.Errorf("experiments: healthy baseline: %w", err)
	}
	return faultRowFrom(name, cfg, spec, healthy)
}

// faultRowFrom replays cfg with spec installed and assembles the
// comparison row against an already-computed healthy baseline.
func faultRowFrom(name string, cfg RunConfig, spec string, healthy RunResult) (FaultRow, error) {
	cfg.FaultSpec = spec
	faulted, err := Run(cfg)
	if err != nil {
		return FaultRow{}, fmt.Errorf("experiments: fault run %q: %w", spec, err)
	}
	row := FaultRow{
		Name:            name,
		Spec:            spec,
		Healthy:         healthy,
		Faulted:         faulted,
		ReadMeanX:       timeRatio(faulted.ReadMean, healthy.ReadMean),
		WriteMeanX:      timeRatio(faulted.WriteMean, healthy.WriteMean),
		DegReadMean:     faulted.DegReadMean,
		DegReadP99:      faulted.DegReadP99,
		DegWriteMean:    faulted.DegWriteMean,
		DegWriteP99:     faulted.DegWriteP99,
		RebuildDuration: faulted.RebuildDuration,
	}
	if fs := faulted.Fault; fs != nil {
		row.Restarts = fs.Restarts
		row.RebuildRestarts = fs.RebuildRestarts
		row.RebuildLostRows = fs.RebuildLostRows
		row.LostExtents = fs.LostExtents
		row.Upgrades = fs.Upgrades
		row.ExpandMigrated = fs.ExpandMigrated
		row.ExpandWriteback = fs.ExpandWriteback
		row.UpgradeLatency = fs.UpgradeLatency()
	}
	return row, nil
}

// RunFaultFamily runs the standard failure experiments against cfg: a
// disk death with a later rebuild-under-load, a transient error
// window, a double fault (a second disk dying in a disjoint parity
// group while the first rebuild runs), and — for CRAID strategies —
// crash-restart, crash-during-rebuild, a crash storm, and online
// expansion under load in both invalidate and retain flavors. Every
// row compares against one shared healthy baseline run.
func RunFaultFamily(cfg RunConfig) ([]FaultRow, error) {
	dur := cfg.Duration
	if dur <= 0 {
		// The family wants the failure mid-run; without an explicit
		// duration the preset's full week applies and the fractions
		// below still land inside it only by accident. Keep it bounded.
		dur = 60 * sim.Second
		cfg.Duration = dur
	}
	type exp struct {
		name string
		spec string
	}
	exps := []exp{
		{"fail+rebuild", fmt.Sprintf("seed=1;fail:2@%s;rebuild:2@%s,rate=64",
			fmtSimTime(dur/4), fmtSimTime(dur/2))},
		{"transient", fmt.Sprintf("seed=1;transient:3@%s-%s,rate=0.02,lat=4",
			fmtSimTime(dur/4), fmtSimTime(3*dur/4))},
		// A second disk dies in a different parity group (the testbed's
		// archive groups are 10 wide) while the first one's rebuild is
		// pending, then rebuilds too: two degraded groups and two
		// overlapping rebuild walks contend with the monitor.
		{"double-fault", fmt.Sprintf("seed=1;fail:2@%s;rebuild:2@%s,rate=64;fail:12@%s;rebuild:12@%s,rate=64",
			fmtSimTime(dur/4), fmtSimTime(dur/2), fmtSimTime(3*dur/8), fmtSimTime(5*dur/8))},
	}
	if cfg.Strategy.IsCRAID() {
		exps = append(exps,
			exp{"crash-restart",
				fmt.Sprintf("seed=1;crash@%s", fmtSimTime(dur/2))},
			exp{"crash-in-rebuild",
				fmt.Sprintf("seed=1;fail:2@%s;rebuild:2@%s,rate=64;crash@%s",
					fmtSimTime(dur/8), fmtSimTime(dur/4), fmtSimTime(dur/2))},
			exp{"storm",
				fmt.Sprintf("seed=1;storm:crash@%s,n=3,every=%s",
					fmtSimTime(dur/4), fmtSimTime(dur/4))},
			exp{"expand", fmt.Sprintf("seed=1;expand@%s,disks=5", fmtSimTime(dur/2))},
			exp{"expand-retain", fmt.Sprintf("seed=1;expand@%s,disks=5,retain", fmtSimTime(dur/2))},
		)
	}
	cfg.FaultSpec = ""
	healthy, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: healthy baseline: %w", err)
	}
	rows := make([]FaultRow, 0, len(exps))
	for _, e := range exps {
		row, err := faultRowFrom(e.name, cfg, e.spec, healthy)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func timeRatio(a, b sim.Time) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// fmtSimTime renders a sim.Time in fault-spec syntax (nanoseconds
// suffix keeps it exact).
func fmtSimTime(t sim.Time) string {
	return fmt.Sprintf("%dns", int64(t))
}
