package experiments

import (
	"fmt"

	"craid/internal/sim"
)

// FaultRow is one failure experiment: the same workload replayed
// healthy and under a fault plan, with the degraded-window KPIs and the
// monitor-interference deltas the comparison yields.
type FaultRow struct {
	Name string // experiment label
	Spec string // the fault plan replayed

	Healthy RunResult // baseline, no plan installed
	Faulted RunResult // same config + Spec

	// Interference: response-time inflation of the faulted run over the
	// healthy baseline, whole-run means (1.0 = no interference).
	ReadMeanX  float64
	WriteMeanX float64

	// Degraded-window latencies and the rebuild KPI, copied out of the
	// faulted run for table printing.
	DegReadMean, DegReadP99   sim.Time
	DegWriteMean, DegWriteP99 sim.Time
	RebuildDuration           sim.Time
}

// RunFault replays cfg twice — once healthy, once with spec installed —
// and reports the comparison. cfg.FaultSpec is overwritten by spec; all
// other knobs (strategy, scale, pipeline settings) apply to both runs,
// so the delta isolates the fault fabric's effect.
func RunFault(name string, cfg RunConfig, spec string) (FaultRow, error) {
	cfg.FaultSpec = ""
	healthy, err := Run(cfg)
	if err != nil {
		return FaultRow{}, fmt.Errorf("experiments: healthy baseline: %w", err)
	}
	cfg.FaultSpec = spec
	faulted, err := Run(cfg)
	if err != nil {
		return FaultRow{}, fmt.Errorf("experiments: fault run %q: %w", spec, err)
	}
	row := FaultRow{
		Name:            name,
		Spec:            spec,
		Healthy:         healthy,
		Faulted:         faulted,
		ReadMeanX:       timeRatio(faulted.ReadMean, healthy.ReadMean),
		WriteMeanX:      timeRatio(faulted.WriteMean, healthy.WriteMean),
		DegReadMean:     faulted.DegReadMean,
		DegReadP99:      faulted.DegReadP99,
		DegWriteMean:    faulted.DegWriteMean,
		DegWriteP99:     faulted.DegWriteP99,
		RebuildDuration: faulted.RebuildDuration,
	}
	return row, nil
}

// RunFaultFamily runs the standard failure experiments against cfg:
// a disk death with a later rebuild-under-load, a transient error
// window, and — for CRAID strategies — a crash-restart recovering from
// the dirty-translation log. Each row compares against the same healthy
// baseline workload.
func RunFaultFamily(cfg RunConfig) ([]FaultRow, error) {
	dur := cfg.Duration
	if dur <= 0 {
		// The family wants the failure mid-run; without an explicit
		// duration the preset's full week applies and the fractions
		// below still land inside it only by accident. Keep it bounded.
		dur = 60 * sim.Second
		cfg.Duration = dur
	}
	type exp struct {
		name string
		spec string
	}
	exps := []exp{
		{"fail+rebuild", fmt.Sprintf("seed=1;fail:2@%s;rebuild:2@%s,rate=64",
			fmtSimTime(dur/4), fmtSimTime(dur/2))},
		{"transient", fmt.Sprintf("seed=1;transient:3@%s-%s,rate=0.02,lat=4",
			fmtSimTime(dur/4), fmtSimTime(3*dur/4))},
	}
	if cfg.Strategy.IsCRAID() {
		exps = append(exps, exp{"crash-restart",
			fmt.Sprintf("seed=1;crash@%s", fmtSimTime(dur/2))})
	}
	rows := make([]FaultRow, 0, len(exps))
	for _, e := range exps {
		row, err := RunFault(e.name, cfg, e.spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func timeRatio(a, b sim.Time) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// fmtSimTime renders a sim.Time in fault-spec syntax (nanoseconds
// suffix keeps it exact).
func fmtSimTime(t sim.Time) string {
	return fmt.Sprintf("%dns", int64(t))
}
