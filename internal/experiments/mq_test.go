package experiments

import "testing"

// TestMonitorWorkersCellEquivalence pins the worker knob at the
// experiment level: a cell simulated with the multi-queue monitor
// reports exactly the sequential cell's Stats, ratios and request
// count — on both generated and instant-device workloads — and its
// planner actually ran.
func TestMonitorWorkersCellEquivalence(t *testing.T) {
	base := RunConfig{
		Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
		PCPct: 0.008, MapShards: 16,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.MonitorWorkers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *got.CRAID != *ref.CRAID {
			t.Errorf("workers=%d: stats diverged\n got %+v\nwant %+v", workers, *got.CRAID, *ref.CRAID)
		}
		if got.Requests != ref.Requests {
			t.Errorf("workers=%d: %d requests, want %d", workers, got.Requests, ref.Requests)
		}
		if got.ReadMean != ref.ReadMean || got.WriteMean != ref.WriteMean {
			t.Errorf("workers=%d: latency diverged: %v/%v vs %v/%v",
				workers, got.ReadMean, got.WriteMean, ref.ReadMean, ref.WriteMean)
		}
		if got.MQ.Batches == 0 || got.MQ.Planned == 0 {
			t.Errorf("workers=%d: planner never ran: %+v", workers, got.MQ)
		}
	}
}

// TestMonitorWorkersDefaultShards pins the convenience defaulting:
// workers without explicit shards still go concurrent (buildVolume
// gives each worker shard groups to own).
func TestMonitorWorkersDefaultShards(t *testing.T) {
	cfg := RunConfig{
		Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
		PCPct: 0.008, MonitorWorkers: 4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MQ.Batches == 0 {
		t.Fatalf("planner never ran despite MonitorWorkers=4: %+v", res.MQ)
	}

	// An explicit single-tree request is honored, not silently
	// re-sharded: the monitor degrades to sequential instead.
	cfg.MapShards = 1
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MQ.Batches != 0 {
		t.Fatalf("explicit MapShards=1 still planned: %+v", res.MQ)
	}
}
