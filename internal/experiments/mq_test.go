package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMonitorWorkersCellEquivalence pins the worker knob at the
// experiment level: a cell simulated with the multi-queue monitor
// reports exactly the sequential cell's Stats, ratios and request
// count — on both generated and instant-device workloads — and its
// planner actually ran.
func TestMonitorWorkersCellEquivalence(t *testing.T) {
	base := RunConfig{
		Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
		PCPct: 0.008, MapShards: 16,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.MonitorWorkers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *got.CRAID != *ref.CRAID {
			t.Errorf("workers=%d: stats diverged\n got %+v\nwant %+v", workers, *got.CRAID, *ref.CRAID)
		}
		if got.Requests != ref.Requests {
			t.Errorf("workers=%d: %d requests, want %d", workers, got.Requests, ref.Requests)
		}
		if got.ReadMean != ref.ReadMean || got.WriteMean != ref.WriteMean {
			t.Errorf("workers=%d: latency diverged: %v/%v vs %v/%v",
				workers, got.ReadMean, got.WriteMean, ref.ReadMean, ref.WriteMean)
		}
		if got.MQ.Batches == 0 || got.MQ.Planned == 0 {
			t.Errorf("workers=%d: planner never ran: %+v", workers, got.MQ)
		}
	}
}

// TestPlanLookaheadCellEquivalence pins the lookahead knob at the
// experiment level: a cell whose planner runs ahead of the apply stage
// reports exactly the synchronous cell's Stats, latencies and request
// count, and the plan stage visibly ran (plan-side replay counters
// populate only under lookahead).
func TestPlanLookaheadCellEquivalence(t *testing.T) {
	base := RunConfig{
		Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
		PCPct: 0.008, MapShards: 16, MonitorWorkers: 4,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Replay.PlannedBatches != 0 {
		t.Fatalf("synchronous cell reported a plan stage: %+v", ref.Replay)
	}
	cfg := base
	cfg.PlanLookahead = 1
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *got.CRAID != *ref.CRAID {
		t.Errorf("lookahead stats diverged\n got %+v\nwant %+v", *got.CRAID, *ref.CRAID)
	}
	if got.Requests != ref.Requests ||
		got.ReadMean != ref.ReadMean || got.WriteMean != ref.WriteMean {
		t.Errorf("lookahead latencies diverged")
	}
	if got.Replay.PlannedBatches == 0 {
		t.Errorf("plan stage never ran: %+v", got.Replay)
	}
}

// TestWorkerAffinityCellEquivalence pins the affinity knob at the
// experiment level: pinning shard groups to long-lived planner workers
// reports exactly the per-batch scheduler's Stats, latencies and
// request count, across both synchronous and lookahead planning.
func TestWorkerAffinityCellEquivalence(t *testing.T) {
	for _, lookahead := range []int{0, 2} {
		base := RunConfig{
			Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
			PCPct: 0.008, MapShards: 16, MonitorWorkers: 4,
			PlanLookahead: lookahead,
		}
		ref, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.WorkerAffinity = true
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *got.CRAID != *ref.CRAID {
			t.Errorf("lookahead=%d: affinity stats diverged\n got %+v\nwant %+v",
				lookahead, *got.CRAID, *ref.CRAID)
		}
		if got.Requests != ref.Requests ||
			got.ReadMean != ref.ReadMean || got.WriteMean != ref.WriteMean {
			t.Errorf("lookahead=%d: affinity latencies diverged", lookahead)
		}
		if got.MQ.Batches == 0 || got.MQ.Planned == 0 {
			t.Errorf("lookahead=%d: planner never ran: %+v", lookahead, got.MQ)
		}
	}
}

// TestMappingLogCell pins the batched dirty-log plumbing: a cell with
// MappingLog set writes a recoverable ring-flushed log and reports the
// ring's counters, without perturbing the monitor's results.
func TestMappingLogCell(t *testing.T) {
	base := RunConfig{
		Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
		PCPct: 0.008, MapShards: 16, MonitorWorkers: 4, PlanLookahead: 1,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.MappingLog = filepath.Join(t.TempDir(), "dirty.log")
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *got.CRAID != *ref.CRAID {
		t.Errorf("logging perturbed the monitor\n got %+v\nwant %+v", *got.CRAID, *ref.CRAID)
	}
	if got.MapLog.Records == 0 || got.MapLog.Flushes == 0 {
		t.Fatalf("log ring never used: %+v", got.MapLog)
	}
	fi, err := os.Stat(cfg.MappingLog)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != got.MapLog.Bytes {
		t.Errorf("log file holds %d bytes, ring reports %d", fi.Size(), got.MapLog.Bytes)
	}
}

// TestMonitorWorkersDefaultShards pins the convenience defaulting:
// workers without explicit shards still go concurrent (buildVolume
// gives each worker shard groups to own).
func TestMonitorWorkersDefaultShards(t *testing.T) {
	cfg := RunConfig{
		Trace: "wdev", Scale: QuickScale, Strategy: CRAID5,
		PCPct: 0.008, MonitorWorkers: 4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MQ.Batches == 0 {
		t.Fatalf("planner never ran despite MonitorWorkers=4: %+v", res.MQ)
	}

	// An explicit single-tree request is honored, not silently
	// re-sharded: the monitor degrades to sequential instead.
	cfg.MapShards = 1
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MQ.Batches != 0 {
		t.Fatalf("explicit MapShards=1 still planned: %+v", res.MQ)
	}
}
