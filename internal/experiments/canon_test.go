package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"craid/internal/core"
	"craid/internal/sim"
)

// goldenConfigs pairs representative configs with their frozen content
// addresses. These hashes are CACHE KEYS: a fabric result store
// written by this PR must still be readable by the next one, so if
// this test fails the encoder changed observably and canonVersion MUST
// be bumped (which retires old cache entries) — do not just update the
// hex strings.
func goldenConfigs() ([]RunConfig, []string) {
	vol := 3
	cfgs := []RunConfig{
		{},
		{Trace: "wdev", Scale: 0.002, Strategy: CRAID5, PCPct: 0.008, Policy: "WLRU"},
		{Trace: "cello99", Scale: 1, Duration: 2 * sim.Hour, Strategy: CRAID5PlusSSD,
			PCPct: 0.032, Policy: "ARC", MapShards: 16, MonitorWorkers: 4, PlanLookahead: 2,
			WorkerAffinity: true, FaultSpec: "seed=7;fail:2@5s;rebuild:2@10s,rate=64",
			MappingLog: "dirty.log", MapLogSync: true, ReplayBatch: 512, ReplayRing: 8,
			Bursty: true, TrackLoad: true, TrackSeq: true},
		{TraceFile: "msr.csv", TraceFormat: "msr", TraceVolume: &vol, DatasetBlocks: 1 << 20,
			Scale: 0.25, Strategy: RAID5Plus},
		{Trace: "webusers", Scale: 1, Strategy: CRAID5, Policy: "LRU", Instant: true,
			PCBlocks: 2000, PCLevel: core.PCLevel(2)},
	}
	hashes := []string{
		"c90b95e8474b20d17a9dce3550d785286bee8bc91545ddc6612cc0e05fd31d83",
		"dfcaeb7f263199fce9ca8f615aeff848fa654378fc6ea62583764ac0428c5e2d",
		"4560eb9c50b672b66bab4aa2b5a27ad3bd9ff5aeb499710a9e60038c4a80c327",
		"394184308f23840f77c8d7d36d90a52b72a1475e5bf8f32f2bdec5e6b447224e",
		"9816286a7a6813f2706fc8e0ca4d9dff6092b4e656e45ca5541f16b3e6775ba2",
	}
	return cfgs, hashes
}

func TestConfigHashStable(t *testing.T) {
	cfgs, want := goldenConfigs()
	for i, cfg := range cfgs {
		got, err := ConfigHash(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("cfg %d: hash drifted to %s (want %s) — cache keys changed; bump canonVersion",
				i, got, want[i])
		}
	}
}

func TestConfigEncodeRoundTrip(t *testing.T) {
	cfgs, _ := goldenConfigs()
	for i, cfg := range cfgs {
		enc, err := EncodeConfig(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		dec, err := DecodeConfig(enc)
		if err != nil {
			t.Fatalf("cfg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(dec, cfg) {
			t.Errorf("cfg %d: round trip mutated config:\n got %+v\nwant %+v", i, dec, cfg)
		}
	}
}

func TestConfigHashDistinguishesEveryField(t *testing.T) {
	// Flipping any single field must change the content address —
	// a field the hash ignores would serve a wrong cached result.
	base := RunConfig{Trace: "wdev", Scale: 0.002, Strategy: CRAID5, PCPct: 0.008}
	vol := 1
	muts := map[string]func(*RunConfig){
		"Trace":          func(c *RunConfig) { c.Trace = "cello99" },
		"Scale":          func(c *RunConfig) { c.Scale = 0.004 },
		"Duration":       func(c *RunConfig) { c.Duration = sim.Hour },
		"Strategy":       func(c *RunConfig) { c.Strategy = CRAID5Plus },
		"PCPct":          func(c *RunConfig) { c.PCPct = 0.016 },
		"Policy":         func(c *RunConfig) { c.Policy = "ARC" },
		"TraceFile":      func(c *RunConfig) { c.TraceFile = "x.trace" },
		"TraceFormat":    func(c *RunConfig) { c.TraceFormat = "msr" },
		"TraceVolume":    func(c *RunConfig) { c.TraceVolume = &vol },
		"DatasetBlocks":  func(c *RunConfig) { c.DatasetBlocks = 1024 },
		"MapShards":      func(c *RunConfig) { c.MapShards = 8 },
		"MonitorWorkers": func(c *RunConfig) { c.MonitorWorkers = 2 },
		"PlanLookahead":  func(c *RunConfig) { c.PlanLookahead = 1 },
		"WorkerAffinity": func(c *RunConfig) { c.WorkerAffinity = true },
		"FaultSpec":      func(c *RunConfig) { c.FaultSpec = "seed=7;fail:2@5s" },
		"MappingLog":     func(c *RunConfig) { c.MappingLog = "d.log" },
		"MapLogSync":     func(c *RunConfig) { c.MapLogSync = true },
		"ReplayBatch":    func(c *RunConfig) { c.ReplayBatch = 256 },
		"ReplayRing":     func(c *RunConfig) { c.ReplayRing = 2 },
		"Instant":        func(c *RunConfig) { c.Instant = true },
		"PCBlocks":       func(c *RunConfig) { c.PCBlocks = 100 },
		"PCLevel":        func(c *RunConfig) { c.PCLevel = core.PCLevel(1) },
		"Bursty":         func(c *RunConfig) { c.Bursty = true },
		"TrackLoad":      func(c *RunConfig) { c.TrackLoad = true },
		"TrackSeq":       func(c *RunConfig) { c.TrackSeq = true },
	}
	// Every serialized RunConfig field except the excluded handle pair
	// must have a mutation here, so new fields can't dodge the hash.
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if name == "TraceAt" || name == "TraceAtSize" {
			continue
		}
		if _, ok := muts[name]; !ok {
			t.Errorf("RunConfig.%s has no mutation in this test — add it AND extend the canonical encoder", name)
		}
	}
	baseHash, err := ConfigHash(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range muts {
		cfg := base
		mut(&cfg)
		h, err := ConfigHash(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == baseHash {
			t.Errorf("mutating %s did not change the config hash", name)
		}
	}
}

func TestEncodeConfigRejectsTraceAt(t *testing.T) {
	cfg := RunConfig{Trace: "wdev", TraceAt: bytes.NewReader(nil), TraceAtSize: 1}
	if _, err := EncodeConfig(cfg); err == nil {
		t.Fatal("EncodeConfig accepted a config with a process-local TraceAt handle")
	}
	if _, err := ConfigHash(cfg); err == nil {
		t.Fatal("ConfigHash accepted a config with a process-local TraceAt handle")
	}
}

func TestDecodeConfigRejectsMangled(t *testing.T) {
	enc, err := EncodeConfig(RunConfig{Trace: "wdev", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"bad version":    []byte("craid-config/999\n"),
		"truncated":      enc[:len(enc)/2],
		"trailing junk":  append(append([]byte{}, enc...), []byte("extra=1\n")...),
		"swapped fields": bytes.Replace(enc, []byte("trace="), []byte("scale="), 1),
	}
	for name, data := range cases {
		if _, err := DecodeConfig(data); err == nil {
			t.Errorf("%s: DecodeConfig accepted it", name)
		}
	}
}

// FuzzConfigEncode drives arbitrary field values through
// encode → decode → re-encode and requires byte-identical output (the
// byte form is the cache key, so this is the exact property the store
// depends on). Byte comparison rather than DeepEqual keeps NaN scales
// in scope.
func FuzzConfigEncode(f *testing.F) {
	f.Add("wdev", 0.002, int64(0), "CRAID-5", 0.008, "WLRU", "", "", -1, int64(0),
		8, 2, 1, true, "", "", false, 0, 0, false, int64(0), uint8(0), false, false, false)
	f.Add("", math.NaN(), int64(-5), "RAID-5", math.Inf(1), "p\x00q", "a.trace", "msr", 3, int64(1<<40),
		-1, -2, -3, false, "seed=1;crash@2s", "log\n.bin", true, 512, 4, true, int64(77), uint8(255), true, true, false)
	f.Add("héllo\xff", -0.0, int64(1<<62), "s=t\n", 1e-300, "LRU", "=", "native", -100, int64(-1),
		0, 0, 0, false, "", "", false, 0, 0, false, int64(0), uint8(3), false, false, true)
	f.Fuzz(func(t *testing.T, trace string, scale float64, duration int64, strategy string,
		pcPct float64, policy, traceFile, traceFormat string, traceVolume int, datasetBlocks int64,
		mapShards, monitorWorkers, planLookahead int, workerAffinity bool,
		faultSpec, mappingLog string, mapLogSync bool, replayBatch, replayRing int,
		instant bool, pcBlocks int64, pcLevel uint8, bursty, trackLoad, trackSeq bool) {
		cfg := RunConfig{
			Trace: trace, Scale: scale, Duration: sim.Time(duration),
			Strategy: Strategy(strategy), PCPct: pcPct, Policy: policy,
			TraceFile: traceFile, TraceFormat: traceFormat, DatasetBlocks: datasetBlocks,
			MapShards: mapShards, MonitorWorkers: monitorWorkers, PlanLookahead: planLookahead,
			WorkerAffinity: workerAffinity, FaultSpec: faultSpec, MappingLog: mappingLog,
			MapLogSync: mapLogSync, ReplayBatch: replayBatch, ReplayRing: replayRing,
			Instant: instant, PCBlocks: pcBlocks, PCLevel: core.PCLevel(pcLevel),
			Bursty: bursty, TrackLoad: trackLoad, TrackSeq: trackSeq,
		}
		if traceVolume >= 0 {
			cfg.TraceVolume = &traceVolume
		}
		enc, err := EncodeConfig(cfg)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := DecodeConfig(enc)
		if err != nil {
			t.Fatalf("decode of own encoding: %v\n%s", err, enc)
		}
		re, err := EncodeConfig(dec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("encoding not stable through a round trip:\n first %q\nsecond %q", enc, re)
		}
		h1, err := ConfigHash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := ConfigHash(dec)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("hash differs across round trip: %s vs %s", h1, h2)
		}
		if len(h1) != 64 || strings.ToLower(h1) != h1 {
			t.Fatalf("hash %q is not lowercase hex sha-256", h1)
		}
	})
}
