package experiments

import (
	"runtime"
)

// parallelism is the worker count RunAll uses for independent
// simulations. Each Run cell owns a private sim.Engine, device models
// and workload generator, so cells are embarrassingly parallel; the
// default saturates the machine.
var parallelism = runtime.NumCPU()

// SetParallelism bounds the number of simulations RunAll executes
// concurrently (n < 1 is clamped to 1). cmd/craidbench threads its
// -parallel flag through here.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism returns the current RunAll worker bound.
func Parallelism() int { return parallelism }

// defaultMapShards is applied to cells whose RunConfig.MapShards is 0
// (0 itself defers to core's single-shard default). The table/figure
// entry points build their RunConfigs internally, so cmd/craidbench
// threads its -shards flag through here.
var defaultMapShards = 0

// SetDefaultMapShards sets the mapping-index shard count used by cells
// that don't specify one. Call before RunAll, not concurrently with it.
func SetDefaultMapShards(n int) {
	if n < 0 {
		n = 0
	}
	defaultMapShards = n
}

// defaultMonitorWorkers is applied to cells whose
// RunConfig.MonitorWorkers is 0 (0 itself defers to core's sequential
// monitor). cmd/craidbench and cmd/craidsim thread their -workers
// flags through here.
var defaultMonitorWorkers = 0

// SetDefaultMonitorWorkers sets the multi-queue monitor worker count
// used by cells that don't specify one. Call before RunAll, not
// concurrently with it. Whole-cell parallelism (SetParallelism) and
// in-cell monitor concurrency compose: each cell's planner spawns its
// own workers.
func SetDefaultMonitorWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultMonitorWorkers = n
}

// defaultPlanLookahead is applied to cells whose RunConfig.PlanLookahead
// is 0 (0 itself defers to core's synchronous planning). cmd/craidbench
// and cmd/craidsim thread their -lookahead flags through here.
var defaultPlanLookahead = 0

// SetDefaultPlanLookahead sets the plan-pipeline depth used by cells
// that don't specify one. Call before RunAll, not concurrently with it.
// Results are bit-identical at every value; only wall-clock and the
// plan-side ReplayStats change.
func SetDefaultPlanLookahead(n int) {
	if n < 0 {
		n = 0
	}
	defaultPlanLookahead = n
}

// defaultWorkerAffinity is OR-ed with each cell's
// RunConfig.WorkerAffinity. cmd/craidbench and cmd/craidsim thread
// their -affinity flags through here.
var defaultWorkerAffinity = false

// SetDefaultWorkerAffinity pins each shard group to one long-lived
// planner worker in every cell's monitor (a no-op below 2 workers).
// Call before RunAll, not concurrently with it. Results are
// bit-identical either way; only cache residency and wall-clock change.
func SetDefaultWorkerAffinity(on bool) {
	defaultWorkerAffinity = on
}
