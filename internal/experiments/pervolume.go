package experiments

import (
	"fmt"
	"io"
	"os"

	"craid/internal/trace"
)

// VolumeResult pairs one MSR DiskNumber with its simulation result.
type VolumeResult struct {
	Volume int
	RunResult
}

// RunMSRVolumes splits an MSR-Cambridge multi-volume trace file into
// its per-volume streams and replays each against an independent
// simulation built from base (TraceFile/TraceFormat/TraceVolume are
// overridden per cell; everything else — strategy, P_C size,
// DatasetBlocks — is taken as given, and a zero Scale is derived from
// DatasetBlocks). Cells run concurrently under RunAll's worker pool,
// and each cell's replay pipeline parses its own volume's records off
// its simulation path, so a k-volume file keeps up to k parsers and k
// simulations busy at once.
//
// All cells share ONE open file: the volume scan and every per-volume
// reader work through pread-style io.ReaderAt sections of the same
// handle (RunConfig.TraceAt), so a wide MSR host costs one descriptor
// regardless of volume count instead of one per volume.
//
// Results are returned in ascending DiskNumber order.
func RunMSRVolumes(path string, base RunConfig) ([]VolumeResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	vols, err := trace.MSRVolumes(io.NewSectionReader(f, 0, size))
	if err != nil {
		return nil, fmt.Errorf("experiments: scanning %s: %w", path, err)
	}
	if len(vols) == 0 {
		return nil, fmt.Errorf("experiments: %s holds no records", path)
	}
	cfgs := make([]RunConfig, len(vols))
	for i, v := range vols {
		v := v
		c := base
		c.TraceFile = path
		c.TraceFormat = "msr"
		c.TraceVolume = &v
		c.TraceAt = f
		c.TraceAtSize = size
		if c.Trace == "" {
			c.Trace = fmt.Sprintf("msr-vol%d", v)
		}
		cfgs[i] = c
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]VolumeResult, len(vols))
	for i, v := range vols {
		out[i] = VolumeResult{Volume: v, RunResult: results[i]}
	}
	return out, nil
}
