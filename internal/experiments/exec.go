package experiments

import (
	"sync"
	"sync/atomic"
)

// Cell-level scheduling. RunAll used to own both halves of the matrix
// problem — *executing* cells on a worker pool and *collecting*
// completions back into config order. The experiment fabric needs the
// same collection semantics over a very different executor (an HTTP
// service streaming results from a fleet of workers, possibly out of
// order, possibly duplicated after a lease requeue), so the two halves
// are split: an Executor produces CellResults in any order, and
// Collect pins the deterministic contract — results[i] always
// corresponds to cfgs[i], and the FIRST completion for an index wins.

// CellResult is one completed cell, tagged with its index in the
// submitted batch. Exactly one of Result/Err is meaningful.
type CellResult struct {
	Index  int
	Result RunResult
	Err    error
}

// Executor runs a batch of cells, delivering each completion to emit.
// Completions may arrive from any goroutine, in any order, and more
// than once per index (a fabric lease requeue can race the presumed-
// dead worker's result); Collect serializes and deduplicates. Execute
// returns after every cell it will ever deliver has been emitted; its
// error reports transport-level failure, not individual cell errors.
type Executor interface {
	Execute(cfgs []RunConfig, emit func(CellResult)) error
}

// executor overrides RunAll's cell execution when non-nil.
// cmd/craidbench and cmd/craidsim install the fabric client here for
// their -remote paths.
var executor Executor

// SetExecutor routes every subsequent RunAll through e (nil restores
// the in-process worker pool). Call before RunAll, not concurrently
// with it.
func SetExecutor(e Executor) { executor = e }

// localPool is the in-process Executor: the bounded worker pool that
// has run the experiment matrix since PR 1. Once any cell fails,
// cells not yet started are skipped — a bad config in a large matrix
// should not cost the whole matrix's simulation time.
type localPool struct{}

func (localPool) Execute(cfgs []RunConfig, emit func(CellResult)) error {
	var failed atomic.Bool
	runCell := func(i int) {
		if failed.Load() {
			return
		}
		res, err := Run(cfgs[i])
		if err != nil {
			failed.Store(true)
		}
		emit(CellResult{Index: i, Result: res, Err: err})
	}
	workers := parallelism
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i := range cfgs {
			runCell(i)
		}
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runCell(i)
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return nil
}

// Collect runs one batch through run and assembles the completions
// into deterministic config order: the returned slice parallels the
// submitted configs regardless of finish order, duplicate completions
// for an index are dropped (first result wins), and the error is the
// lowest-indexed cell error — or run's own transport error when no
// cell failed. Cells that were never emitted (skipped after a
// failure) are zero values.
func Collect(n int, run func(emit func(CellResult)) error) ([]RunResult, error) {
	results := make([]RunResult, n)
	errs := make([]error, n)
	seen := make([]bool, n)
	var mu sync.Mutex
	emit := func(cr CellResult) {
		if cr.Index < 0 || cr.Index >= n {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if seen[cr.Index] {
			return
		}
		seen[cr.Index] = true
		results[cr.Index] = cr.Result
		errs[cr.Index] = cr.Err
	}
	runErr := run(emit)
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	if runErr != nil {
		return results, runErr
	}
	return results, nil
}

// RunAll executes every config, fanning the cells out over the
// installed Executor (default: the in-process bounded worker pool).
// Successful results are deterministic regardless of worker count or
// completion order: results[i] always corresponds to cfgs[i].
func RunAll(cfgs []RunConfig) ([]RunResult, error) {
	exec := executor
	if exec == nil {
		exec = localPool{}
	}
	return Collect(len(cfgs), func(emit func(CellResult)) error {
		return exec.Execute(cfgs, emit)
	})
}
