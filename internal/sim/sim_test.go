package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := make(map[Time]bool)
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired[at] = true })
	}
	e.RunUntil(25)
	if !fired[10] || !fired[20] {
		t.Error("events before deadline did not fire")
	}
	if fired[30] || fired[40] {
		t.Error("events after deadline fired")
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v after RunUntil(25), want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if !fired[30] || !fired[40] {
		t.Error("remaining events lost after RunUntil")
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {})
	e.Run()
	e.RunUntil(50)
	if e.Now() != 100 {
		t.Fatalf("RunUntil rewound clock to %v", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("processed %d events after Stop, want 2", count)
	}
	// Run can resume afterwards.
	e.Run()
	if count != 5 {
		t.Fatalf("processed %d events total, want 5", count)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next must execute
	// fully within one Run.
	e := NewEngine()
	var n int
	var step func()
	step = func() {
		n++
		if n < 100 {
			e.After(Millisecond, step)
		}
	}
	e.After(0, step)
	e.Run()
	if n != 100 {
		t.Fatalf("chain executed %d steps, want 100", n)
	}
	if e.Now() != 99*Millisecond {
		t.Fatalf("clock = %v, want 99ms", e.Now())
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Millisecond) != Millisecond {
		t.Error("Duration(1ms) mismatch")
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
}

// Property: for any set of scheduled times, execution order is the
// sorted order of those times.
func TestPropertyExecutionOrderSorted(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var got []Time
		for _, r := range raw {
			at := Time(r % 1_000_000)
			e.Schedule(at, func() { got = append(got, e.Now()) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: clock is monotonically non-decreasing under random
// scheduling including cascades.
func TestPropertyMonotonicClock(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	last := Time(-1)
	var check func()
	check = func() {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		if rng.Intn(100) < 30 && e.Pending() < 10000 {
			e.After(Time(rng.Intn(1000)), check)
		}
	}
	for i := 0; i < 1000; i++ {
		e.Schedule(Time(rng.Intn(100000)), check)
	}
	e.Run()
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := make([]Time, 1024)
	for i := range times {
		times[i] = Time(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for _, at := range times {
			e.Schedule(at, func() {})
		}
		e.Run()
	}
}
