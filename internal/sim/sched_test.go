package sim

import (
	"math/rand"
	"testing"
)

// firing is one observed event dispatch: the engine clock at dispatch
// plus the identity of the scheduled callback.
type firing struct {
	at Time
	id int
}

// script is a deterministic schedule-order torture script: a mix of
// immediate, near, far, overflow-distance and same-instant events,
// some scheduled from inside callbacks, replayed identically against
// two engines.
type scriptOp struct {
	delay Time // relative to the clock when the op executes
	nest  int  // how many chained events this callback schedules
}

func runScript(kind SchedulerKind, ops []scriptOp) []firing {
	eng := NewEngineScheduler(kind)
	var log []firing
	id := 0
	var schedule func(op scriptOp)
	schedule = func(op scriptOp) {
		myID := id
		id++
		nest := op.nest
		delay := op.delay
		eng.After(op.delay, func() {
			log = append(log, firing{eng.Now(), myID})
			for i := 0; i < nest; i++ {
				schedule(scriptOp{delay: delay/2 + Time(i), nest: 0})
			}
		})
	}
	for _, op := range ops {
		schedule(op)
	}
	eng.Run()
	return log
}

// randomScript generates delays spanning every wheel level, the
// same-tick ring, and the overflow heap.
func randomScript(rng *rand.Rand, n int) []scriptOp {
	spans := []Time{
		0,                // same instant → ring
		100,              // sub-tick
		50 * Microsecond, // level 0
		5 * Millisecond,  // level 1
		2 * Second,       // level 2
		30 * Second,      // beyond the 17.2s horizon → overflow
	}
	ops := make([]scriptOp, n)
	for i := range ops {
		span := spans[rng.Intn(len(spans))]
		d := span
		if span > 0 {
			d = Time(rng.Int63n(int64(span))) + 1
		}
		nest := 0
		if rng.Intn(4) == 0 {
			nest = rng.Intn(3) + 1
		}
		ops[i] = scriptOp{delay: d, nest: nest}
	}
	return ops
}

// TestSchedulerTortureWheelVsHeap replays randomized schedule-order
// scripts against both queue implementations and requires the full
// firing sequence — instant AND callback identity — to be identical.
func TestSchedulerTortureWheelVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := randomScript(rng, 400)
		wheel := runScript(SchedulerWheel, ops)
		heap := runScript(SchedulerHeap, ops)
		if len(wheel) != len(heap) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d: firing %d differs: wheel %+v heap %+v", seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestSchedulerFIFOSameInstant pins the global FIFO contract directly:
// events scheduled for one future instant, interleaved with events at
// other instants and in shuffled submission order, fire in exactly
// submission order on both schedulers.
func TestSchedulerFIFOSameInstant(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedulerWheel, SchedulerHeap} {
		rng := rand.New(rand.NewSource(7))
		eng := NewEngineScheduler(kind)
		const target = 3 * Millisecond
		var got []int
		want := make([]int, 0, 500)
		for i := 0; i < 500; i++ {
			id := i
			got := &got
			eng.Schedule(target, func() { *got = append(*got, id) })
			want = append(want, id)
			// Noise at other instants must not perturb the order.
			if rng.Intn(3) == 0 {
				eng.Schedule(Time(rng.Int63n(int64(10*Millisecond)))+1, func() {})
			}
		}
		eng.Run()
		if len(got) != len(want) {
			t.Fatalf("%v: fired %d of %d same-instant events", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: same-instant event %d fired out of order (got id %d)", kind, i, got[i])
			}
		}
	}
}

// TestSchedulerRunUntilLateInsert pins a wheel-specific edge: RunUntil
// peeks (draining a future slot into the fire buffer) without firing
// it; events scheduled afterwards for earlier instants must still fire
// first.
func TestSchedulerRunUntilLateInsert(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedulerWheel, SchedulerHeap} {
		eng := NewEngineScheduler(kind)
		var log []firing
		eng.Schedule(5*Millisecond, func() { log = append(log, firing{eng.Now(), 1}) })
		eng.RunUntil(1 * Millisecond) // peeks at the 5ms event, fires nothing
		if len(log) != 0 {
			t.Fatalf("%v: RunUntil fired past its deadline", kind)
		}
		// Earlier than the already-peeked event, later than now.
		eng.Schedule(2*Millisecond, func() { log = append(log, firing{eng.Now(), 2}) })
		eng.Schedule(5*Millisecond-Time(1), func() { log = append(log, firing{eng.Now(), 3}) })
		eng.Run()
		want := []firing{{2 * Millisecond, 2}, {5*Millisecond - 1, 3}, {5 * Millisecond, 1}}
		if len(log) != len(want) {
			t.Fatalf("%v: fired %d events, want %d", kind, len(log), len(want))
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("%v: firing %d = %+v, want %+v", kind, i, log[i], want[i])
			}
		}
	}
}

// TestSchedulerOverflowPromotion drives events far beyond the wheel
// horizon and checks they fire at the right instants in the right
// order, with the overflow counters recording the trip.
func TestSchedulerOverflowPromotion(t *testing.T) {
	eng := NewEngineScheduler(SchedulerWheel)
	var log []Time
	for _, at := range []Time{90 * Second, 30 * Second, 60 * Second, 30 * Second} {
		eng.Schedule(at, func() { log = append(log, eng.Now()) })
	}
	eng.Schedule(1*Millisecond, func() {})
	eng.Run()
	want := []Time{1 * Millisecond}
	_ = want
	wantFar := []Time{30 * Second, 30 * Second, 60 * Second, 90 * Second}
	if len(log) != len(wantFar) {
		t.Fatalf("fired %d far events, want %d", len(log), len(wantFar))
	}
	for i := range wantFar {
		if log[i] != wantFar[i] {
			t.Fatalf("far event %d fired at %v, want %v", i, log[i], wantFar[i])
		}
	}
	st := eng.SchedStats()
	if st.Deferred != 4 || st.Promoted != 4 {
		t.Fatalf("overflow stats = deferred %d promoted %d, want 4/4", st.Deferred, st.Promoted)
	}
}

// TestEngineScheduleAllocFree gates the steady-state event path at
// zero allocations per event for both schedulers: after warmup the
// wheel recycles nodes from its freelist and the heap reuses its
// backing array.
func TestEngineScheduleAllocFree(t *testing.T) {
	for _, kind := range []SchedulerKind{SchedulerWheel, SchedulerHeap} {
		eng := NewEngineScheduler(kind)
		var fn func(Time)
		n := 0
		fn = func(at Time) {
			if n++; n < 5000 {
				eng.AfterTimed(Time(n%4096)+1, fn)
			}
		}
		// Warm up: grow the ring/heap/freelist and fault in all slots.
		eng.AfterTimed(1, fn)
		eng.Run()
		allocs := testing.AllocsPerRun(10, func() {
			n = 0
			eng.AfterTimed(1, fn)
			eng.Run()
		})
		if allocs != 0 {
			t.Fatalf("%v: %.1f allocs per 5000-event run, want 0", kind, allocs)
		}
	}
}

// TestGlobalSchedStats checks the process-wide aggregation: counters
// advance by at least the events a run fires.
func TestGlobalSchedStats(t *testing.T) {
	before := GlobalSchedStats()
	eng := NewEngineScheduler(SchedulerWheel)
	for i := 1; i <= 100; i++ {
		eng.Schedule(Time(i)*Microsecond, func() {})
	}
	eng.Run()
	after := GlobalSchedStats()
	if d := after.Fired - before.Fired; d < 100 {
		t.Fatalf("global Fired advanced by %d, want >= 100", d)
	}
	if eng.SchedStats().Fired != 100 {
		t.Fatalf("engine Fired = %d, want 100", eng.SchedStats().Fired)
	}
}
