// Package sim implements a deterministic discrete-event simulation
// engine. It is the substrate under every timed experiment in this
// repository: disks, RAID controllers and the CRAID core all advance a
// shared simulated clock by scheduling callbacks on an Engine.
//
// The engine is intentionally single-threaded: determinism matters more
// than parallelism here because experiments assert on exact, repeatable
// results. Events scheduled for the same instant fire in FIFO order.
package sim

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"time"
)

// Time is a simulated instant, measured in integer nanoseconds from the
// start of the simulation. Integer time keeps event ordering exact; all
// latency math converts to nanoseconds at the edges.
type Time int64

// Common simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Hour        Time = 3600 * Second
)

// MaxTime is the largest representable simulated instant.
const MaxTime Time = math.MaxInt64

// Duration converts a standard library duration to simulated time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant with millisecond precision, e.g. "12.345ms".
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

// Event is a scheduled callback. Exactly one of fn/tfn is set; tfn
// receives the firing instant, letting completion callbacks schedule
// without a capturing closure.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
	tfn func(Time)
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPushEvent adds ev to the binary min-heap in *q.
func heapPushEvent(q *[]event, ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// heapPopEvent removes and returns the earliest event in *q.
func heapPopEvent(q *[]event) event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release callback references
	*q = h[:n]
	h = *q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(h[l], h[min]) {
			min = l
		}
		if r < n && eventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// SchedulerKind selects the timed-queue implementation behind an
// Engine. Both schedulers implement the exact same contract — events
// fire in (instant, schedule order) — so every experiment produces
// bit-identical results under either; the wheel is simply cheaper per
// event. The heap remains selectable as an escape hatch for one PR.
type SchedulerKind uint8

const (
	// SchedulerWheel is the hierarchical timing wheel (the default):
	// O(1) schedule, near-O(1) dispatch, overflow heap for far-future
	// events. See wheel.go.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the original binary heap over event values.
	SchedulerHeap
)

// String names the scheduler kind ("wheel" or "heap").
func (k SchedulerKind) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// ParseScheduler converts a -scheduler flag value to a SchedulerKind.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch s {
	case "wheel":
		return SchedulerWheel, nil
	case "heap":
		return SchedulerHeap, nil
	}
	return SchedulerWheel, fmt.Errorf("sim: unknown scheduler %q (want wheel or heap)", s)
}

// defaultScheduler holds the process-wide SchedulerKind used by
// NewEngine. Atomic because experiment workers construct engines on
// concurrent goroutines.
var defaultScheduler atomic.Uint32

// SetDefaultScheduler selects the queue implementation NewEngine uses.
// It is process-wide (like runtime GOMAXPROCS) rather than a RunConfig
// field so the canonical experiment-config encoding — and every frozen
// config hash derived from it — is unaffected by A/B runs.
func SetDefaultScheduler(k SchedulerKind) { defaultScheduler.Store(uint32(k)) }

// DefaultScheduler reports the SchedulerKind NewEngine will use.
func DefaultScheduler() SchedulerKind { return SchedulerKind(defaultScheduler.Load()) }

func init() {
	// CRAID_SIM_SCHEDULER=heap|wheel flips the whole process for A/B
	// runs of the full test suite (CI runs one leg with heap).
	if v := os.Getenv("CRAID_SIM_SCHEDULER"); v != "" {
		if k, err := ParseScheduler(v); err == nil {
			SetDefaultScheduler(k)
		}
	}
}

// SchedStats counts scheduler activity. Engine counters are cumulative
// per engine; GlobalSchedStats aggregates across all engines in the
// process (flushed at the end of each Run/RunUntil), which is what the
// craidbench per-table footer reports.
type SchedStats struct {
	Fired    int64              // events dispatched (timed queue + same-tick ring)
	Ring     int64              // of Fired, same-instant ring events
	Level    [wheelLevels]int64 // wheel placements per level (incl. cascade re-placements)
	Deferred int64              // placements into the far-future overflow heap
	Promoted int64              // overflow events promoted back into the wheel
	Cascaded int64              // events redistributed by slot cascades
}

var globalSched struct {
	fired    atomic.Int64
	ring     atomic.Int64
	level    [wheelLevels]atomic.Int64
	deferred atomic.Int64
	promoted atomic.Int64
	cascaded atomic.Int64
}

// GlobalSchedStats returns scheduler counters aggregated across every
// engine in the process. Engines flush when Run/RunUntil returns, so
// totals are exact between runs.
func GlobalSchedStats() SchedStats {
	s := SchedStats{
		Fired:    globalSched.fired.Load(),
		Ring:     globalSched.ring.Load(),
		Deferred: globalSched.deferred.Load(),
		Promoted: globalSched.promoted.Load(),
		Cascaded: globalSched.cascaded.Load(),
	}
	for i := range s.Level {
		s.Level[i] = globalSched.level[i].Load()
	}
	return s
}

// Engine is a discrete-event simulation loop. The zero value is not
// usable; create one with NewEngine.
//
// The timed queue is either a hierarchical timing wheel (the default;
// see wheel.go) or the original hand-rolled binary heap over event
// values — both allocation-free in steady state, both firing events in
// exactly (instant, schedule order).
//
// Events scheduled for the *current* instant bypass the timed queue
// into a FIFO ring: zero-delay completions (instant devices, same-tick
// callback chains) dominate many workloads and need no ordering work
// beyond arrival order. Correctness of the split: once the clock
// reaches T, every new at=T event lands in the ring with a sequence
// number above all at=T events still in the timed queue (which were
// scheduled while now < T), so draining queue-at-T before the ring
// preserves global FIFO order among same-instant events.
type Engine struct {
	now      Time
	seq      uint64
	queue    []event // binary heap (SchedulerHeap only)
	wheel    *wheelQ // timing wheel (SchedulerWheel only)
	ring     []event // FIFO of events due at the current instant
	ringHead int
	stopped  bool
	kind     SchedulerKind
	stats    SchedStats // cumulative for this engine
	flushed  SchedStats // portion already added to the global counters
}

// NewEngine returns an engine with the clock at zero and no pending
// events, using the process default scheduler (see SetDefaultScheduler).
func NewEngine() *Engine {
	return NewEngineScheduler(DefaultScheduler())
}

// NewEngineScheduler returns an engine backed by the given queue
// implementation regardless of the process default.
func NewEngineScheduler(k SchedulerKind) *Engine {
	e := &Engine{kind: k}
	if k == SchedulerWheel {
		e.wheel = newWheelQ(&e.stats)
	}
	return e
}

// Scheduler reports which queue implementation backs this engine.
func (e *Engine) Scheduler() SchedulerKind { return e.kind }

// SchedStats returns this engine's cumulative scheduler counters.
func (e *Engine) SchedStats() SchedStats { return e.stats }

// flushStats publishes counter deltas to the process-wide aggregate.
func (e *Engine) flushStats() {
	d, f := e.stats, e.flushed
	if d == f {
		return
	}
	globalSched.fired.Add(d.Fired - f.Fired)
	globalSched.ring.Add(d.Ring - f.Ring)
	globalSched.deferred.Add(d.Deferred - f.Deferred)
	globalSched.promoted.Add(d.Promoted - f.Promoted)
	globalSched.cascaded.Add(d.Cascaded - f.Cascaded)
	for i := range d.Level {
		globalSched.level[i].Add(d.Level[i] - f.Level[i])
	}
	e.flushed = d
}

// qPush adds a future event to the timed queue.
func (e *Engine) qPush(ev event) {
	if e.wheel != nil {
		e.wheel.push(ev)
		return
	}
	heapPushEvent(&e.queue, ev)
}

// qLen reports the number of events in the timed queue.
func (e *Engine) qLen() int {
	if e.wheel != nil {
		return e.wheel.n
	}
	return len(e.queue)
}

// qMin reports the earliest timed-queue instant, if any.
func (e *Engine) qMin() (Time, bool) {
	if e.wheel != nil {
		return e.wheel.min()
	}
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// qPop removes and returns the earliest timed-queue event.
func (e *Engine) qPop() event {
	if e.wheel != nil {
		return e.wheel.pop()
	}
	return heapPopEvent(&e.queue)
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.qLen() + len(e.ring) - e.ringHead }

// Schedule registers fn to run at the absolute simulated instant at.
// Scheduling in the past (at < Now) panics: it always indicates a
// modelling bug, and silently clamping would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	if at == e.now {
		e.ring = append(e.ring, event{at: at, seq: e.seq, fn: fn})
		return
	}
	e.qPush(event{at: at, seq: e.seq, fn: fn})
}

// ScheduleTimed registers fn to run at the absolute instant at,
// receiving that instant as its argument. Completion callbacks of type
// func(Time) can be scheduled directly, without a capturing closure.
func (e *Engine) ScheduleTimed(at Time, fn func(Time)) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	if at == e.now {
		e.ring = append(e.ring, event{at: at, seq: e.seq, tfn: fn})
		return
	}
	e.qPush(event{at: at, seq: e.seq, tfn: fn})
}

// After registers fn to run delay nanoseconds after the current instant.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// AfterTimed registers fn to run delay nanoseconds after the current
// instant, receiving the firing instant.
func (e *Engine) AfterTimed(delay Time, fn func(Time)) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleTimed(e.now+delay, fn)
}

// Stop makes the currently running Run/RunUntil return after the event
// being processed completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	var ev event
	t, ok := e.qMin()
	switch {
	case ok && t == e.now:
		// Timed-queue events due now predate everything in the ring.
		ev = e.qPop()
	case e.ringHead < len(e.ring):
		ev = e.ring[e.ringHead]
		e.ring[e.ringHead] = event{} // release callback references
		e.ringHead++
		if e.ringHead == len(e.ring) {
			e.ring, e.ringHead = e.ring[:0], 0
		}
		e.stats.Ring++
	case ok:
		ev = e.qPop() // the ring is empty: safe to advance the clock
	default:
		return false
	}
	e.stats.Fired++
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.tfn(ev.at)
	}
	return true
}

// Run processes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	e.flushStats()
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to deadline (if it is in the future) and returns. Events
// scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if e.ringHead < len(e.ring) && e.now <= deadline {
			e.Step()
			continue
		}
		if t, ok := e.qMin(); ok && t <= deadline {
			e.Step()
			continue
		}
		break
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.flushStats()
}
