// Package sim implements a deterministic discrete-event simulation
// engine. It is the substrate under every timed experiment in this
// repository: disks, RAID controllers and the CRAID core all advance a
// shared simulated clock by scheduling callbacks on an Engine.
//
// The engine is intentionally single-threaded: determinism matters more
// than parallelism here because experiments assert on exact, repeatable
// results. Events scheduled for the same instant fire in FIFO order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a simulated instant, measured in integer nanoseconds from the
// start of the simulation. Integer time keeps event ordering exact; all
// latency math converts to nanoseconds at the edges.
type Time int64

// Common simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Hour        Time = 3600 * Second
)

// MaxTime is the largest representable simulated instant.
const MaxTime Time = math.MaxInt64

// Duration converts a standard library duration to simulated time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant with millisecond precision, e.g. "12.345ms".
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at the absolute simulated instant at.
// Scheduling in the past (at < Now) panics: it always indicates a
// modelling bug, and silently clamping would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run delay nanoseconds after the current instant.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Stop makes the currently running Run/RunUntil return after the event
// being processed completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to deadline (if it is in the future) and returns. Events
// scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
