// Package sim implements a deterministic discrete-event simulation
// engine. It is the substrate under every timed experiment in this
// repository: disks, RAID controllers and the CRAID core all advance a
// shared simulated clock by scheduling callbacks on an Engine.
//
// The engine is intentionally single-threaded: determinism matters more
// than parallelism here because experiments assert on exact, repeatable
// results. Events scheduled for the same instant fire in FIFO order.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a simulated instant, measured in integer nanoseconds from the
// start of the simulation. Integer time keeps event ordering exact; all
// latency math converts to nanoseconds at the edges.
type Time int64

// Common simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Hour        Time = 3600 * Second
)

// MaxTime is the largest representable simulated instant.
const MaxTime Time = math.MaxInt64

// Duration converts a standard library duration to simulated time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant with millisecond precision, e.g. "12.345ms".
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

// Event is a scheduled callback. Exactly one of fn/tfn is set; tfn
// receives the firing instant, letting completion callbacks schedule
// without a capturing closure.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
	tfn func(Time)
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation loop. The zero value is not
// usable; create one with NewEngine.
//
// The event queue is a hand-rolled binary heap over event values (not
// pointers): scheduling allocates nothing once the backing array has
// grown, which matters because every simulated I/O is at least one
// event.
//
// Events scheduled for the *current* instant bypass the heap into a
// FIFO ring: zero-delay completions (instant devices, same-tick
// callback chains) dominate many workloads and need no ordering work
// beyond arrival order. Correctness of the split: once the clock
// reaches T, every new at=T event lands in the ring with a sequence
// number above all at=T events still in the heap (which were scheduled
// while now < T), so draining heap-at-T before the ring preserves
// global FIFO order among same-instant events.
type Engine struct {
	now      Time
	seq      uint64
	queue    []event
	ring     []event // FIFO of events due at the current instant
	ringHead int
	stopped  bool
}

// push adds ev to the heap.
func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release callback references
	e.queue = q[:n]
	q = e.queue
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(q[l], q[min]) {
			min = l
		}
		if r < n && eventLess(q[r], q[min]) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// NewEngine returns an engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.queue) + len(e.ring) - e.ringHead }

// Schedule registers fn to run at the absolute simulated instant at.
// Scheduling in the past (at < Now) panics: it always indicates a
// modelling bug, and silently clamping would corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	if at == e.now {
		e.ring = append(e.ring, event{at: at, seq: e.seq, fn: fn})
		return
	}
	e.push(event{at: at, seq: e.seq, fn: fn})
}

// ScheduleTimed registers fn to run at the absolute instant at,
// receiving that instant as its argument. Completion callbacks of type
// func(Time) can be scheduled directly, without a capturing closure.
func (e *Engine) ScheduleTimed(at Time, fn func(Time)) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	if at == e.now {
		e.ring = append(e.ring, event{at: at, seq: e.seq, tfn: fn})
		return
	}
	e.push(event{at: at, seq: e.seq, tfn: fn})
}

// After registers fn to run delay nanoseconds after the current instant.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// AfterTimed registers fn to run delay nanoseconds after the current
// instant, receiving the firing instant.
func (e *Engine) AfterTimed(delay Time, fn func(Time)) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleTimed(e.now+delay, fn)
}

// Stop makes the currently running Run/RunUntil return after the event
// being processed completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	var ev event
	switch {
	case len(e.queue) > 0 && e.queue[0].at == e.now:
		// Heap events due now predate everything in the ring.
		ev = e.pop()
	case e.ringHead < len(e.ring):
		ev = e.ring[e.ringHead]
		e.ring[e.ringHead] = event{} // release callback references
		e.ringHead++
		if e.ringHead == len(e.ring) {
			e.ring, e.ringHead = e.ring[:0], 0
		}
	case len(e.queue) > 0:
		ev = e.pop() // the ring is empty: safe to advance the clock
	default:
		return false
	}
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.tfn(ev.at)
	}
	return true
}

// Run processes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to deadline (if it is in the future) and returns. Events
// scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped &&
		((e.ringHead < len(e.ring) && e.now <= deadline) ||
			(len(e.queue) > 0 && e.queue[0].at <= deadline)) {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
