package sim

import (
	"math"
	"math/bits"
	"slices"
)

// Hierarchical timing wheel geometry. One tick is 1024 ns (~1 µs, the
// floor of the disk models' latency range: SSD page reads are tens of
// µs, HDD services hundreds of µs to ms). Three levels of 256 slots
// give a horizon of 2^(10+3·8) ns ≈ 17.2 simulated seconds — wider
// than any device latency or rebuild pacing interval — and events
// beyond it (fault-plan triggers hours out, RunUntil sentinels) go to
// a small overflow min-heap and are promoted when the clock nears.
const (
	wheelTickShift    = 10 // 1 tick = 1024 ns
	wheelSlotBits     = 8
	wheelSlots        = 1 << wheelSlotBits
	wheelSlotMask     = wheelSlots - 1
	wheelLevels       = 3
	wheelHorizonTicks = int64(1) << (wheelSlotBits * wheelLevels)
)

// wnode is an intrusive, freelist-recycled slot-list node. Slot lists
// are unordered (LIFO push): order among same-slot events is restored
// by sorting the drain buffer, so placement and cascading stay O(1).
type wnode struct {
	ev   event
	next *wnode
}

// wheelQ is the timing-wheel timed queue. The ordering contract is
// identical to the binary heap's — events leave in (at, seq) order —
// and is enforced in one place: every level-0 slot is drained into buf
// and sorted before any of its events is observed. Cascades and
// promotions move events between levels without comparing them at all.
//
// Invariants:
//   - every event in slots/overflow has tick(at) >= curTick;
//   - buf[bufHead:] holds the events of the most recently drained tick
//     (plus any later-scheduled events that belong before curTick),
//     sorted by (at, seq), and buf's ticks all precede every slot and
//     overflow tick — so buf[bufHead] is the global minimum.
type wheelQ struct {
	curTick  int64 // ticks below curTick live only in buf
	n        int   // events in slots + overflow + buf[bufHead:]
	slots    [wheelLevels][wheelSlots]*wnode
	occ      [wheelLevels][wheelSlots / 64]uint64 // occupied-slot bitmaps
	overflow []event                              // min-heap by (at, seq)
	buf      []event                              // sorted fire buffer
	bufHead  int
	free     *wnode
	stats    *SchedStats
}

func newWheelQ(stats *SchedStats) *wheelQ {
	return &wheelQ{stats: stats}
}

// push inserts a future event (the engine guarantees ev.at > now).
func (w *wheelQ) push(ev event) {
	w.n++
	t := int64(ev.at) >> wheelTickShift
	if t < w.curTick {
		// The event belongs to an already-drained tick (possible when
		// RunUntil peeked ahead of the clock): insert directly into
		// the sorted fire buffer.
		w.bufInsert(ev)
		return
	}
	w.place(ev, t)
}

// place files an event with tick t >= curTick into the cheapest level
// whose window covers it, or the overflow heap beyond the horizon.
// Level l covers slot numbers (t >> l·8) within 256 of the clock's.
func (w *wheelQ) place(ev event, t int64) {
	c := w.curTick
	switch {
	case t-c < wheelSlots:
		w.add(0, t&wheelSlotMask, ev)
	case (t>>wheelSlotBits)-(c>>wheelSlotBits) < wheelSlots:
		w.add(1, (t>>wheelSlotBits)&wheelSlotMask, ev)
	case (t>>(2*wheelSlotBits))-(c>>(2*wheelSlotBits)) < wheelSlots:
		w.add(2, (t>>(2*wheelSlotBits))&wheelSlotMask, ev)
	default:
		w.stats.Deferred++
		heapPushEvent(&w.overflow, ev)
	}
}

// add prepends ev to the slot list and marks the occupancy bit.
func (w *wheelQ) add(level int, idx int64, ev event) {
	nd := w.free
	if nd != nil {
		w.free = nd.next
	} else {
		nd = &wnode{}
	}
	nd.ev = ev
	nd.next = w.slots[level][idx]
	w.slots[level][idx] = nd
	w.occ[level][idx>>6] |= 1 << (uint(idx) & 63)
	w.stats.Level[level]++
}

// bufInsert places ev at its sorted position within buf[bufHead:].
// Fired entries (below bufHead) all have at <= now < ev.at, so the
// insertion never crosses them.
func (w *wheelQ) bufInsert(ev event) {
	i := len(w.buf)
	w.buf = append(w.buf, event{})
	for i > w.bufHead && eventLess(ev, w.buf[i-1]) {
		w.buf[i] = w.buf[i-1]
		i--
	}
	w.buf[i] = ev
}

// min reports the earliest pending instant.
func (w *wheelQ) min() (Time, bool) {
	if !w.ensureBuf() {
		return 0, false
	}
	return w.buf[w.bufHead].at, true
}

// pop removes and returns the earliest pending event. Callers check
// emptiness via min()/n first.
func (w *wheelQ) pop() event {
	w.ensureBuf()
	ev := w.buf[w.bufHead]
	w.buf[w.bufHead] = event{} // release callback references
	w.bufHead++
	w.n--
	if w.bufHead == len(w.buf) {
		w.buf, w.bufHead = w.buf[:0], 0
	}
	return ev
}

func cmpEvent(a, b event) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// ensureBuf refills the sorted fire buffer if it is empty: repeatedly
// takes the minimal candidate among the earliest occupied slot of each
// level and the overflow heap — cascading higher-level slots down and
// promoting overflow events — until a level-0 slot wins and is drained.
func (w *wheelQ) ensureBuf() bool {
	if w.bufHead < len(w.buf) {
		return true
	}
	if w.n == 0 {
		return false
	}
	w.buf, w.bufHead = w.buf[:0], 0
	const inf = int64(math.MaxInt64)
	for {
		t0 := inf // absolute tick of the earliest occupied level-0 slot
		if t, ok := w.nextSlot(0); ok {
			t0 = t
		}
		s1 := inf // start tick of the earliest occupied level-1 slot
		if t, ok := w.nextSlot(1); ok {
			s1 = t
		}
		s2 := inf
		if t, ok := w.nextSlot(2); ok {
			s2 = t
		}
		to := inf
		if len(w.overflow) > 0 {
			to = int64(w.overflow[0].at) >> wheelTickShift
		}
		// Ties go to the coarser structure: a level-1 slot starting at
		// t0 may hold events with tick == t0, so it must cascade down
		// before that level-0 slot is drained. Likewise overflow first.
		switch {
		case to <= t0 && to <= s1 && to <= s2:
			if to > w.curTick {
				w.curTick = to
			}
			horizon := w.curTick + wheelHorizonTicks
			for len(w.overflow) > 0 {
				tt := int64(w.overflow[0].at) >> wheelTickShift
				if tt >= horizon {
					break
				}
				ev := heapPopEvent(&w.overflow)
				w.stats.Promoted++
				w.place(ev, tt)
			}
		case s2 <= t0 && s2 <= s1:
			w.cascade(2, s2)
		case s1 <= t0:
			w.cascade(1, s1)
		default:
			if t0 == inf {
				panic("sim: wheel event accounting out of sync")
			}
			idx := t0 & wheelSlotMask
			w.occ[0][idx>>6] &^= 1 << (uint(idx) & 63)
			nd := w.slots[0][idx]
			w.slots[0][idx] = nil
			for nd != nil {
				w.buf = append(w.buf, nd.ev)
				next := nd.next
				nd.ev, nd.next = event{}, w.free
				w.free = nd
				nd = next
			}
			w.curTick = t0 + 1
			slices.SortFunc(w.buf, cmpEvent)
			return true
		}
	}
}

// cascade empties the level-l slot starting at tick start, re-placing
// each event one or two levels down (never the same level: after
// curTick advances to start, every event in the slot fits a finer
// window; never overflow: windows only shrink).
func (w *wheelQ) cascade(level int, start int64) {
	if start > w.curTick {
		w.curTick = start
	}
	idx := (start >> (uint(level) * wheelSlotBits)) & wheelSlotMask
	w.occ[level][idx>>6] &^= 1 << (uint(idx) & 63)
	nd := w.slots[level][idx]
	w.slots[level][idx] = nil
	for nd != nil {
		next := nd.next
		ev := nd.ev
		nd.ev, nd.next = event{}, w.free
		w.free = nd
		w.stats.Cascaded++
		w.place(ev, int64(ev.at)>>wheelTickShift)
		nd = next
	}
}

// nextSlot returns the absolute start tick of the earliest occupied
// slot at the given level, scanning the occupancy bitmap circularly
// from the clock's current slot. Slot numbers in the window are
// [cur, cur+256): a start below curTick is only ever the clock's own,
// partially elapsed slot.
func (w *wheelQ) nextSlot(level int) (int64, bool) {
	cur := w.curTick >> (uint(level) * wheelSlotBits)
	idx := cur & wheelSlotMask
	off, ok := w.scan(level, idx)
	if !ok {
		return 0, false
	}
	return (cur + off) << (uint(level) * wheelSlotBits), true
}

// scan finds the circular distance from bit idx to the first set bit
// in the level's occupancy bitmap.
func (w *wheelQ) scan(level int, idx int64) (int64, bool) {
	occ := &w.occ[level]
	word := idx >> 6
	bit := uint(idx) & 63
	if v := occ[word] >> bit; v != 0 {
		return int64(bits.TrailingZeros64(v)), true
	}
	words := int64(len(occ))
	for i := int64(1); i <= words; i++ {
		wd := (word + i) & (words - 1)
		if v := occ[wd]; v != 0 {
			return i*64 - int64(bit) + int64(bits.TrailingZeros64(v)), true
		}
	}
	return 0, false
}
