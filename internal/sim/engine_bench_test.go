package sim

import (
	"math/rand"
	"testing"
)

// benchEngine drives a self-sustaining event population shaped like
// disk-model traffic: delays from ~30 µs (SSD page) to ~8 ms (HDD
// full seek), plus a same-tick completion hop, at a steady pending
// population of `width` events.
func benchEngine(b *testing.B, kind SchedulerKind, width int) {
	delays := make([]Time, 1024)
	rng := rand.New(rand.NewSource(42))
	for i := range delays {
		switch rng.Intn(3) {
		case 0:
			delays[i] = Time(rng.Int63n(int64(200*Microsecond))) + 30*Microsecond
		case 1:
			delays[i] = Time(rng.Int63n(int64(2*Millisecond))) + 100*Microsecond
		default:
			delays[i] = Time(rng.Int63n(int64(8*Millisecond))) + 1*Millisecond
		}
	}
	eng := NewEngineScheduler(kind)
	remaining := b.N
	var fn func(Time)
	di := 0
	fn = func(at Time) {
		if remaining--; remaining <= 0 {
			return
		}
		di = (di + 1) & 1023
		eng.AfterTimed(delays[di], fn)
	}
	for i := 0; i < width && remaining > 0; i++ {
		di = (di + 1) & 1023
		eng.AfterTimed(delays[di], fn)
		remaining--
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run()
}

func BenchmarkEngineWheel(b *testing.B)     { benchEngine(b, SchedulerWheel, 64) }
func BenchmarkEngineHeap(b *testing.B)      { benchEngine(b, SchedulerHeap, 64) }
func BenchmarkEngineWheelWide(b *testing.B) { benchEngine(b, SchedulerWheel, 4096) }
func BenchmarkEngineHeapWide(b *testing.B)  { benchEngine(b, SchedulerHeap, 4096) }

// BenchmarkEngineSameTickRing measures the zero-delay completion hop
// (instant devices): all events go through the FIFO ring.
func BenchmarkEngineSameTickRing(b *testing.B) {
	eng := NewEngine()
	remaining := b.N
	var fn func(Time)
	fn = func(at Time) {
		if remaining--; remaining > 0 {
			eng.AfterTimed(0, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.AfterTimed(0, fn)
	eng.Run()
}
