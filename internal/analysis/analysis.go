// Package analysis computes the workload characterizations of the
// paper's §2: summary statistics (Table 1), block access-frequency
// CDFs (Fig. 1, top row) and daily working-set overlap (Fig. 1, bottom
// row). These both motivate CRAID (skew + long-term locality) and
// validate that the synthetic workload generators reproduce the traced
// properties.
package analysis

import (
	"io"
	"sort"

	"craid/internal/disk"
	"craid/internal/sim"
	"craid/internal/trace"
)

// gb converts a block count to gigabytes.
func gb(blocks int64) float64 {
	return float64(blocks) * disk.BlockSize / 1e9
}

// Summary are the Table 1 statistics of one trace.
type Summary struct {
	ReadGB        float64 // total bytes read
	UniqueReadGB  float64 // distinct blocks read
	WriteGB       float64 // total bytes written
	UniqueWriteGB float64 // distinct blocks written
	RWRatio       float64 // ReadGB / WriteGB (0 when no writes)
	TotalGB       float64 // total accessed volume (reads + writes)
	Top20Share    float64 // fraction of accesses to the 20% most accessed blocks
	Requests      int64
}

// Analyzer accumulates per-block access statistics from a trace
// stream. Use one pass (Add per record, or Run) and then query.
type Analyzer struct {
	readCount               map[int64]int64 // accesses per block, reads
	writeCount              map[int64]int64 // accesses per block, writes
	readBlocks, writeBlocks int64
	requests                int64

	// Daily working sets: per day, the set of accessed blocks and
	// per-block access counts (for the top-20% variant).
	days []map[int64]int64
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		readCount:  make(map[int64]int64),
		writeCount: make(map[int64]int64),
	}
}

// Add incorporates one record, counting each touched block once per
// request (the paper's block access frequency is per-request).
func (a *Analyzer) Add(r trace.Record) {
	a.requests++
	day := int(r.Time / (24 * sim.Hour))
	for len(a.days) <= day {
		a.days = append(a.days, make(map[int64]int64))
	}
	ds := a.days[day]
	counts := a.readCount
	if r.Op == disk.OpWrite {
		counts = a.writeCount
		a.writeBlocks += r.Count
	} else {
		a.readBlocks += r.Count
	}
	for b := r.Block; b < r.End(); b++ {
		counts[b]++
		ds[b]++
	}
}

// Run drains reader into the analyzer.
func (a *Analyzer) Run(r trace.Reader) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		a.Add(rec)
	}
}

// Summary computes the Table 1 row.
func (a *Analyzer) Summary() Summary {
	s := Summary{
		ReadGB:        gb(a.readBlocks),
		UniqueReadGB:  gb(int64(len(a.readCount))),
		WriteGB:       gb(a.writeBlocks),
		UniqueWriteGB: gb(int64(len(a.writeCount))),
		TotalGB:       gb(a.readBlocks + a.writeBlocks),
		Requests:      a.requests,
	}
	if a.writeBlocks > 0 {
		s.RWRatio = float64(a.readBlocks) / float64(a.writeBlocks)
	}
	s.Top20Share = a.topShare(0.20)
	return s
}

// topShare returns the fraction of all block accesses landing on the
// frac most-accessed blocks.
func (a *Analyzer) topShare(frac float64) float64 {
	counts := make([]int64, 0, len(a.readCount)+len(a.writeCount))
	merged := make(map[int64]int64, len(a.readCount))
	for b, c := range a.readCount {
		merged[b] += c
	}
	for b, c := range a.writeCount {
		merged[b] += c
	}
	var total int64
	for _, c := range merged {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return 0
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	top := int(float64(len(counts)) * frac)
	if top < 1 {
		top = 1
	}
	var sum int64
	for _, c := range counts[:top] {
		sum += c
	}
	return float64(sum) / float64(total)
}

// FreqCDF returns, for each frequency threshold f in freqs, the
// fraction of blocks accessed at most f times (Fig. 1 top row). Op
// selects read or write frequencies.
func (a *Analyzer) FreqCDF(op disk.Op, freqs []int64) []float64 {
	counts := a.readCount
	if op == disk.OpWrite {
		counts = a.writeCount
	}
	if len(counts) == 0 {
		return make([]float64, len(freqs))
	}
	all := make([]int64, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		idx := sort.Search(len(all), func(j int) bool { return all[j] > f })
		out[i] = float64(idx) / float64(len(all))
	}
	return out
}

// Days returns how many day buckets the trace covered.
func (a *Analyzer) Days() int { return len(a.days) }

// DailyOverlap returns, for each pair of consecutive days (d, d+1),
// the fraction of day-d blocks that are also accessed on day d+1
// (Fig. 1 bottom row). topFrac > 0 restricts each day to its topFrac
// most-accessed blocks first (the paper's "top 20%" series);
// topFrac <= 0 uses all accessed blocks.
func (a *Analyzer) DailyOverlap(topFrac float64) []float64 {
	sets := make([]map[int64]struct{}, len(a.days))
	for d, counts := range a.days {
		sets[d] = daySet(counts, topFrac)
	}
	var out []float64
	for d := 0; d+1 < len(sets); d++ {
		if len(sets[d]) == 0 {
			out = append(out, 0)
			continue
		}
		common := 0
		for b := range sets[d] {
			if _, ok := sets[d+1][b]; ok {
				common++
			}
		}
		out = append(out, float64(common)/float64(len(sets[d])))
	}
	return out
}

// daySet selects the blocks of one day, optionally only the topFrac
// most accessed.
func daySet(counts map[int64]int64, topFrac float64) map[int64]struct{} {
	out := make(map[int64]struct{}, len(counts))
	if topFrac <= 0 || topFrac >= 1 {
		for b := range counts {
			out[b] = struct{}{}
		}
		return out
	}
	type bc struct {
		block int64
		count int64
	}
	all := make([]bc, 0, len(counts))
	for b, c := range counts {
		all = append(all, bc{b, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].block < all[j].block // deterministic tie-break
	})
	n := int(float64(len(all)) * topFrac)
	if n < 1 {
		n = 1
	}
	for _, e := range all[:n] {
		out[e.block] = struct{}{}
	}
	return out
}
