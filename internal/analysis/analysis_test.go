package analysis

import (
	"math"
	"testing"

	"craid/internal/disk"
	"craid/internal/sim"
	"craid/internal/trace"
)

func rec(day int, op disk.Op, block, count int64) trace.Record {
	return trace.Record{
		Time:  sim.Time(day)*24*sim.Hour + sim.Hour,
		Op:    op,
		Block: block,
		Count: count,
	}
}

func TestSummaryCounts(t *testing.T) {
	a := NewAnalyzer()
	a.Add(rec(0, disk.OpRead, 0, 256))    // 1 MiB read
	a.Add(rec(0, disk.OpRead, 0, 256))    // same blocks again
	a.Add(rec(0, disk.OpWrite, 256, 512)) // 2 MiB write
	s := a.Summary()
	if s.Requests != 3 {
		t.Errorf("Requests = %d, want 3", s.Requests)
	}
	wantRead := 2 * 256 * 4096.0 / 1e9
	if math.Abs(s.ReadGB-wantRead) > 1e-12 {
		t.Errorf("ReadGB = %v, want %v", s.ReadGB, wantRead)
	}
	wantUniqueRead := 256 * 4096.0 / 1e9
	if math.Abs(s.UniqueReadGB-wantUniqueRead) > 1e-12 {
		t.Errorf("UniqueReadGB = %v, want %v", s.UniqueReadGB, wantUniqueRead)
	}
	if math.Abs(s.RWRatio-1.0) > 1e-12 { // 2 MiB read vs 2 MiB written
		t.Errorf("RWRatio = %v, want 1.0", s.RWRatio)
	}
}

func TestTop20Share(t *testing.T) {
	a := NewAnalyzer()
	// 10 blocks; block 0 and 1 get 40 accesses each, the rest 1 each.
	for i := 0; i < 40; i++ {
		a.Add(rec(0, disk.OpRead, 0, 1))
		a.Add(rec(0, disk.OpRead, 1, 1))
	}
	for b := int64(2); b < 10; b++ {
		a.Add(rec(0, disk.OpRead, b, 1))
	}
	s := a.Summary()
	want := 80.0 / 88.0
	if math.Abs(s.Top20Share-want) > 1e-9 {
		t.Errorf("Top20Share = %v, want %v", s.Top20Share, want)
	}
}

func TestFreqCDF(t *testing.T) {
	a := NewAnalyzer()
	// Three blocks read 1, 5, and 100 times.
	for i := 0; i < 1; i++ {
		a.Add(rec(0, disk.OpRead, 0, 1))
	}
	for i := 0; i < 5; i++ {
		a.Add(rec(0, disk.OpRead, 1, 1))
	}
	for i := 0; i < 100; i++ {
		a.Add(rec(0, disk.OpRead, 2, 1))
	}
	cdf := a.FreqCDF(disk.OpRead, []int64{1, 5, 50, 100})
	want := []float64{1.0 / 3, 2.0 / 3, 2.0 / 3, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-9 {
			t.Errorf("FreqCDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	// No writes recorded: write CDF must be all zeros, not panic.
	wcdf := a.FreqCDF(disk.OpWrite, []int64{1})
	if wcdf[0] != 0 {
		t.Errorf("write FreqCDF = %v on read-only trace", wcdf)
	}
}

func TestDailyOverlap(t *testing.T) {
	a := NewAnalyzer()
	// Day 0: blocks 0-9. Day 1: blocks 5-14 → overlap 5/10.
	for b := int64(0); b < 10; b++ {
		a.Add(rec(0, disk.OpRead, b, 1))
	}
	for b := int64(5); b < 15; b++ {
		a.Add(rec(1, disk.OpRead, b, 1))
	}
	ov := a.DailyOverlap(0)
	if len(ov) != 1 {
		t.Fatalf("overlap pairs = %d, want 1", len(ov))
	}
	if math.Abs(ov[0]-0.5) > 1e-9 {
		t.Errorf("overlap = %v, want 0.5", ov[0])
	}
	if a.Days() != 2 {
		t.Errorf("Days = %d, want 2", a.Days())
	}
}

func TestDailyOverlapTopFraction(t *testing.T) {
	a := NewAnalyzer()
	// Day 0: block 0 hot (10 accesses), blocks 1-9 cold.
	for i := 0; i < 10; i++ {
		a.Add(rec(0, disk.OpRead, 0, 1))
	}
	for b := int64(1); b < 10; b++ {
		a.Add(rec(0, disk.OpRead, b, 1))
	}
	// Day 1: block 0 hot again, plus fresh cold blocks 20-28.
	for i := 0; i < 10; i++ {
		a.Add(rec(1, disk.OpRead, 0, 1))
	}
	for b := int64(20); b < 29; b++ {
		a.Add(rec(1, disk.OpRead, b, 1))
	}
	all := a.DailyOverlap(0)[0]   // 1 of 10 blocks in common
	top := a.DailyOverlap(0.2)[0] // top-2 sets both contain block 0
	if math.Abs(all-0.1) > 1e-9 {
		t.Errorf("all-blocks overlap = %v, want 0.1", all)
	}
	if top < 0.5 {
		t.Errorf("top-20%% overlap = %v, want >= 0.5 (hot block persists)", top)
	}
}

func TestEmptyAnalyzer(t *testing.T) {
	a := NewAnalyzer()
	s := a.Summary()
	if s.TotalGB != 0 || s.Top20Share != 0 || s.RWRatio != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if len(a.DailyOverlap(0)) != 0 {
		t.Error("empty analyzer produced overlap pairs")
	}
}
