package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"craid/internal/disk"
	"craid/internal/fault"
	"craid/internal/mapcache"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// testFaultOptions pins the tunables so latency expectations are exact.
var testFaultOptions = FaultOptions{
	RetryBase:     sim.Millisecond,
	MaxAttempts:   4,
	ReconPerBlock: 2 * sim.Microsecond,
}

// installPlan parses and arms spec, then runs the engine so events at
// t=0 fire before the test submits anything.
func installPlan(t *testing.T, arr *Array, vol Volume, spec string) *FaultRuntime {
	t.Helper()
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := InstallFaults(arr, vol, plan, testFaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	arr.Eng.Run()
	return rt
}

// nullFactory is the device factory core tests hand to expand plans:
// null devices like the rest of the test array's.
func nullFactory(eng *sim.Engine) func(n int) []disk.Device {
	return func(n int) []disk.Device {
		out := make([]disk.Device, n)
		for i := range out {
			out[i] = disk.NewNullDevice(eng, "null", 100000)
		}
		return out
	}
}

// replayFaultMQ replays recs on a fresh multi-queue CRAID with spec
// armed, returning the full outcome fingerprint: controller stats and
// histograms, fault counters, and every device's counter struct
// (including Errors and Rejected).
func replayFaultMQ(t *testing.T, recs []trace.Record, spec string, shards, workers, lookahead int) (mqOutcome, FaultStats, []disk.Stats) {
	t.Helper()
	return replayFaultMQAffinity(t, recs, spec, shards, workers, lookahead, testAffinity())
}

func replayFaultMQAffinity(t *testing.T, recs []trace.Record, spec string, shards, workers, lookahead int, affinity bool) (mqOutcome, FaultStats, []disk.Stats) {
	t.Helper()
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	c, arr := newMQCRAIDAffinity(eng, 64, shards, workers, lookahead, affinity)
	rt, err := InstallFaults(arr, c, plan, testFaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HasExpand() {
		rt.SetDeviceFactory(nullFactory(eng))
	}
	n, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("replayed %d of %d", n, len(recs))
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	r, w := ioTotals(arr)
	devs := make([]disk.Stats, arr.Devices())
	for i := range devs {
		devs[i] = *arr.Device(i).Stats()
	}
	return mqOutcome{
		stats: *c.Stats(), reads: r, writes: w, maps: c.table.Len(),
		readLat:  c.ReadLatency().String(),
		writeLat: c.WriteLatency().String(),
	}, *rt.Stats(), devs
}

// TestFaultDeterminismAcrossPipelines is the PR's acceptance property:
// with an identical fault plan and seed, the whole outcome — Stats,
// fault counters, per-device counters including injected errors, and
// the latency histograms — is bit-identical at every monitor shards ×
// workers × lookahead setting. The plan exercises a transient window
// (retries with backoff), a disk death (degraded reads and writes),
// and a rebuild under the live workload.
func TestFaultDeterminismAcrossPipelines(t *testing.T) {
	const spec = "seed=9;transient:1@5ms-25ms,rate=0.05,lat=3;fail:2@10ms;rebuild:2@20ms,rate=64"
	recs := randomWorkload(11, 3000, 12000)
	ref, refFaults, refDevs := replayFaultMQAffinity(t, recs, spec, 1, 1, 0, false)
	if refFaults.Failures != 1 || refFaults.RebuildRows == 0 {
		t.Fatalf("plan did not exercise the fabric: %+v", refFaults)
	}
	if refFaults.LostExtents != 0 {
		t.Fatalf("single failure lost %d extents", refFaults.LostExtents)
	}
	sweepFaultMatrix(t, "single", func(shards, workers, lookahead int, affinity bool) {
		got, gotFaults, gotDevs := replayFaultMQAffinity(t, recs, spec, shards, workers, lookahead, affinity)
		if got != ref {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: controller outcome diverged",
				shards, workers, lookahead, affinity)
		}
		if gotFaults != refFaults {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: fault stats diverged:\n  %+v\n  %+v",
				shards, workers, lookahead, affinity, gotFaults, refFaults)
		}
		if !reflect.DeepEqual(gotDevs, refDevs) {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: device counters diverged",
				shards, workers, lookahead, affinity)
		}
	})
}

// TestFaultHealthyPlanLeavesRunUntouched pins that arming an empty
// plan (injectors attached, no events) changes nothing: the outcome
// equals a run with no fault runtime at all.
func TestFaultHealthyPlanLeavesRunUntouched(t *testing.T) {
	recs := randomWorkload(5, 2000, 12000)
	plain, _ := replayMQLookahead(t, recs, 64, 2, 2, testLookahead(), ReplayConfig{})
	armed, faults, _ := replayFaultMQ(t, recs, "seed=7", 2, 2, testLookahead())
	if armed != plain {
		t.Fatal("empty fault plan changed the run outcome")
	}
	if faults != (FaultStats{}) {
		t.Fatalf("empty plan accumulated fault stats: %+v", faults)
	}
}

// TestDegradedReadRAID5EveryBlockReadable is the degraded-mode
// correctness pin: with one disk down in a RAID-5 group, every single
// logical block still reads successfully, and the reconstruction cost
// and peer-read traffic match the per-unit reference computed directly
// from the layout geometry.
func TestDegradedReadRAID5EveryBlockReadable(t *testing.T) {
	const dead = 2
	eng := sim.NewEngine()
	arr := nullArray(eng, 5, 10000)
	lay := raid.NewRAID5(5, 5, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3, 4}, 0)
	rt := installPlan(t, arr, ctl, fmt.Sprintf("seed=1;fail:%d@0s", dead))

	recon := testFaultOptions.ReconPerBlock
	var wantDeg, wantPeer int64
	for b := int64(0); b < lay.DataBlocks(); b++ {
		got := submitAndRun(eng, ctl, disk.OpRead, b, 1)
		if lay.Locate(b).Disk == dead {
			wantDeg++
			wantPeer += int64(len(lay.RowPeers(b, nil))) // all peers survive
			if got != recon {                            // one block, one erasure
				t.Fatalf("block %d: degraded read took %v, want %v", b, got, recon)
			}
		} else if got != 0 {
			t.Fatalf("block %d: healthy read took %v on instant devices", b, got)
		}
	}
	st := rt.Stats()
	if st.LostExtents != 0 {
		t.Fatalf("single failure lost %d extents", st.LostExtents)
	}
	if st.DegradedReads != wantDeg || st.DegradedBlocks != wantDeg || st.PeerReads != wantPeer {
		t.Fatalf("degraded counters %+v, reference wants %d reads / %d peer reads",
			st, wantDeg, wantPeer)
	}
	if s := arr.Device(dead).Stats(); s.Reads != 0 || s.Rejected != 0 {
		t.Fatalf("dead device was consulted: %+v", s)
	}
}

// TestDegradedReadCoalescesContiguousRows pins the row-batched
// degraded-read contract against the per-unit reference: a read
// spanning many stripe rows reconstructs each device-contiguous run of
// dead-disk units with ONE peer submission per survivor and one
// aggregated reconstruction charge, while DegradedBlocks and the
// per-block compute total stay exactly what the per-unit walk would
// report. Parity rotation breaks the dead disk's data runs every
// group-size rows, so the reference predicts both the run count and
// where each run starts.
func TestDegradedReadCoalescesContiguousRows(t *testing.T) {
	const dead = 2
	eng := sim.NewEngine()
	arr := nullArray(eng, 5, 10000)
	lay := raid.NewRAID5(5, 5, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3, 4}, 0)
	rt := installPlan(t, arr, ctl, fmt.Sprintf("seed=1;fail:%d@0s", dead))

	// Per-unit reference walk over the whole address space, emulating
	// device-block coalescing: consecutive dead-disk blocks extend the
	// run; a device-block gap (a parity row of the dead disk) starts a
	// new one.
	var wantRuns, wantBlocks, wantPeer, runLen, maxRun int64
	nextBlk := int64(-1)
	for b := int64(0); b < lay.DataBlocks(); b++ {
		p := lay.Locate(b)
		if p.Disk != dead {
			continue
		}
		wantBlocks++
		if p.Block == nextBlk {
			nextBlk++
			runLen++
		} else {
			wantRuns++
			wantPeer += int64(len(lay.RowPeers(b, nil)))
			nextBlk = p.Block + 1
			runLen = 1
		}
		if runLen > maxRun {
			maxRun = runLen
		}
	}
	if wantRuns <= 1 || wantRuns >= wantBlocks {
		t.Fatalf("reference degenerate: %d runs over %d blocks", wantRuns, wantBlocks)
	}

	recon := testFaultOptions.ReconPerBlock
	got := submitAndRun(eng, ctl, disk.OpRead, 0, lay.DataBlocks())
	// Runs reconstruct as parallel branches of the request join on
	// instant devices: completion is gated by the longest run's
	// aggregated charge.
	if want := sim.Time(maxRun) * recon; got != want {
		t.Fatalf("coalesced read took %v, want longest run %d blocks * recon = %v", got, maxRun, want)
	}
	st := rt.Stats()
	if st.LostExtents != 0 {
		t.Fatalf("single failure lost %d extents", st.LostExtents)
	}
	if st.DegradedReads != wantRuns || st.DegradedBlocks != wantBlocks || st.PeerReads != wantPeer {
		t.Fatalf("degraded counters %+v, per-unit reference wants %d runs / %d blocks / %d peer reads",
			st, wantRuns, wantBlocks, wantPeer)
	}
	if s := arr.Device(dead).Stats(); s.Reads != 0 || s.Rejected != 0 {
		t.Fatalf("dead device was consulted: %+v", s)
	}
}

// TestDegradedReadRAID6DoubleFailure extends the pin to two
// simultaneous losses: RAID-6 still serves every block, the decode
// pays for two erasures, and only the surviving peers are read.
func TestDegradedReadRAID6DoubleFailure(t *testing.T) {
	deadA, deadB := 1, 4
	eng := sim.NewEngine()
	arr := nullArray(eng, 6, 10000)
	lay := raid.NewRAID6(6, 6, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3, 4, 5}, 0)
	rt := installPlan(t, arr, ctl, fmt.Sprintf("seed=1;fail:%d@0s;fail:%d@0s", deadA, deadB))

	recon := testFaultOptions.ReconPerBlock
	var wantDeg, wantPeer int64
	for b := int64(0); b < lay.DataBlocks(); b++ {
		got := submitAndRun(eng, ctl, disk.OpRead, b, 1)
		d := lay.Locate(b).Disk
		if d == deadA || d == deadB {
			wantDeg++
			// One peer is the other dead disk: both erasures are
			// solved, and one fewer peer is readable.
			wantPeer += int64(len(lay.RowPeers(b, nil))) - 1
			if want := 2 * recon; got != want {
				t.Fatalf("block %d: double-degraded read took %v, want %v", b, got, want)
			}
		} else if got != 0 {
			t.Fatalf("block %d: healthy read took %v", b, got)
		}
	}
	st := rt.Stats()
	if st.LostExtents != 0 {
		t.Fatalf("double failure in RAID-6 lost %d extents", st.LostExtents)
	}
	if st.DegradedReads != wantDeg || st.PeerReads != wantPeer {
		t.Fatalf("degraded counters %+v, reference wants %d reads / %d peer reads",
			st, wantDeg, wantPeer)
	}
}

// TestDegradedWriteRAID5 pins the write-side degraded contract against
// the geometry reference: dead parity legs are skipped, a dead data
// leg becomes a reconstruct-write through the surviving data peers,
// and nothing ever lands on the dead device.
func TestDegradedWriteRAID5(t *testing.T) {
	const dead = 2
	eng := sim.NewEngine()
	arr := nullArray(eng, 5, 10000)
	lay := raid.NewRAID5(5, 5, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3, 4}, 0)
	rt := installPlan(t, arr, ctl, fmt.Sprintf("seed=1;fail:%d@0s", dead))

	recon := testFaultOptions.ReconPerBlock
	var wantDeg, wantPeer int64
	for b := int64(0); b < lay.DataBlocks(); b++ {
		got := submitAndRun(eng, ctl, disk.OpWrite, b, 1)
		p, _ := lay.ParityOf(b)
		deadData := lay.Locate(b).Disk == dead
		switch {
		case deadData:
			wantDeg++
			// Surviving data peers: the group minus the dead data disk
			// and minus the parity disk (overwritten, not read).
			wantPeer += int64(len(lay.RowPeers(b, nil))) - 1
			if got != recon {
				t.Fatalf("block %d: reconstruct-write took %v, want %v", b, got, recon)
			}
		case p.Disk == dead:
			wantDeg++ // parity leg skipped; data leg RMW only
			if got != 0 {
				t.Fatalf("block %d: dead-parity write took %v", b, got)
			}
		default:
			if got != 0 {
				t.Fatalf("block %d: healthy write took %v", b, got)
			}
		}
	}
	st := rt.Stats()
	if st.LostExtents != 0 || st.DegradedWrites != wantDeg || st.PeerReads != wantPeer {
		t.Fatalf("degraded write counters %+v, reference wants %d writes / %d peer reads",
			st, wantDeg, wantPeer)
	}
	if s := arr.Device(dead).Stats(); s.Reads != 0 || s.Writes != 0 || s.Rejected != 0 {
		t.Fatalf("dead device was touched: %+v", s)
	}
}

// TestDegradedBeyondRedundancyReportsLost pins the loss contract: a
// non-redundant layout (RAID-0) with a dead disk completes the timing
// of every request but reports LostError for extents on the dead
// device, and counts them.
func TestDegradedBeyondRedundancyReportsLost(t *testing.T) {
	const dead = 1
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	lay := raid.NewRAID0(4, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3}, 0)
	rt := installPlan(t, arr, ctl, fmt.Sprintf("seed=1;fail:%d@0s", dead))

	var wantLost int64
	for b := int64(0); b < lay.DataBlocks(); b++ {
		for _, op := range []disk.Op{disk.OpRead, disk.OpWrite} {
			completed := false
			err := ctl.Submit(trace.Record{Op: op, Block: b, Count: 1},
				func(sim.Time) { completed = true })
			eng.Run()
			if !completed {
				t.Fatalf("block %d %v: request never completed", b, op)
			}
			if lay.Locate(b).Disk == dead {
				wantLost++
				var lost *LostError
				if !errors.As(err, &lost) {
					t.Fatalf("block %d %v: err = %v, want LostError", b, op, err)
				}
				if lost.Op != op || lost.Block != b || lost.Extents != 1 {
					t.Fatalf("block %d %v: LostError fields %+v", b, op, lost)
				}
			} else if err != nil {
				t.Fatalf("block %d %v on healthy disk: %v", b, op, err)
			}
		}
	}
	if st := rt.Stats(); st.LostExtents != wantLost {
		t.Fatalf("LostExtents = %d, reference wants %d", st.LostExtents, wantLost)
	}
}

// TestDegradedRAID5SecondFailureLosesData pins the same boundary on a
// redundant layout: two dead disks in one RAID-5 group exceed the
// parity budget exactly for the blocks whose row touches both.
func TestDegradedRAID5SecondFailureLosesData(t *testing.T) {
	deadA, deadB := 1, 3
	eng := sim.NewEngine()
	arr := nullArray(eng, 5, 10000)
	lay := raid.NewRAID5(5, 5, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3, 4}, 0)
	rt := installPlan(t, arr, ctl, fmt.Sprintf("seed=1;fail:%d@0s;fail:%d@0s", deadA, deadB))

	var wantLost int64
	for b := int64(0); b < lay.DataBlocks(); b++ {
		d := lay.Locate(b).Disk
		err := ctl.Submit(trace.Record{Op: disk.OpRead, Block: b, Count: 1}, func(sim.Time) {})
		eng.Run()
		if d == deadA || d == deadB {
			wantLost++
			var lost *LostError
			if !errors.As(err, &lost) {
				t.Fatalf("block %d: dead-disk read err = %v, want LostError", b, err)
			}
		} else if err != nil {
			// Single-group RAID-5: both dead disks are always peers,
			// but a healthy data disk's read never reconstructs.
			t.Fatalf("block %d: healthy-disk read errored: %v", b, err)
		}
	}
	if st := rt.Stats(); st.LostExtents != wantLost || st.DegradedReads != 0 {
		t.Fatalf("counters %+v, want %d lost and no degraded reads", rt.Stats(), wantLost)
	}
}

// TestFaultTransientRetryBudget pins the retry machinery exactly: a
// rate-1 window makes every attempt fail, so one submission burns the
// whole budget — MaxAttempts transients, MaxAttempts-1 retries with
// exponential backoff, one permanent failure — and the client's
// completion arrives after the summed backoff.
func TestFaultTransientRetryBudget(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 2, 10000)
	lay := raid.NewRAID0(2, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1}, 0)
	rt := installPlan(t, arr, ctl, "seed=1;transient:0@0s,rate=1,lat=1")

	// Block 0 lives on disk 0 (RAID-0 striping starts there).
	if d := lay.Locate(0).Disk; d != 0 {
		t.Fatalf("layout places block 0 on disk %d", d)
	}
	got := submitAndRun(eng, ctl, disk.OpRead, 0, 1)
	// Backoffs: 1ms, 2ms, 4ms after attempts 1..3; attempt 4 gives up.
	if want := 7 * testFaultOptions.RetryBase; got != want {
		t.Fatalf("retry choreography took %v, want %v", got, want)
	}
	st := rt.Stats()
	if st.Transients != 4 || st.Retries != 3 || st.Permanent != 1 {
		t.Fatalf("retry counters %+v, want 4 transients / 3 retries / 1 permanent", st)
	}
	if s := arr.Device(0).Stats(); s.Errors != 4 || s.Reads != 0 {
		t.Fatalf("device saw %+v, want 4 errored attempts", s)
	}
	// The window only covers disk 0: disk 1 serves normally.
	var b1 int64 = -1
	for b := int64(0); b < lay.DataBlocks(); b++ {
		if lay.Locate(b).Disk == 1 {
			b1 = b
			break
		}
	}
	if got := submitAndRun(eng, ctl, disk.OpRead, b1, 1); got != 0 {
		t.Fatalf("unaffected disk read took %v", got)
	}
}

// TestFaultRebuildWalksAndRestoresDevice pins the rebuild pipeline on
// a quiet array: the walk covers every row, batches rebuildBatchRows
// consecutive rows per step (one read per surviving peer and one spare
// write per batch), paces each batch to the configured rate, and
// rejoins the device — after which reads are served natively again.
func TestFaultRebuildWalksAndRestoresDevice(t *testing.T) {
	const dead = 1
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	lay := raid.NewRAID5(4, 4, 64, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3}, 0)
	plan := fmt.Sprintf("seed=1;fail:%d@1ms;rebuild:%d@2ms,rate=64", dead, dead)
	rt := installPlan(t, arr, ctl, plan) // installPlan drains: rebuild completes here

	rows := lay.BlocksPerDisk() / lay.StripeUnitBlocks()
	batches := (rows + rebuildBatchRows - 1) / rebuildBatchRows
	st := rt.Stats()
	if st.RebuildRows != rows || st.RebuildBlocks != lay.BlocksPerDisk() {
		t.Fatalf("rebuild covered %d rows / %d blocks, want %d / %d",
			st.RebuildRows, st.RebuildBlocks, rows, lay.BlocksPerDisk())
	}
	if s := arr.Device(dead).Stats(); s.Writes != batches {
		t.Fatalf("spare received %d writes, want one per row batch (%d)", s.Writes, batches)
	}
	if want := batches * int64(len(lay.DiskPeers(dead, nil))); st.PeerReads != want {
		t.Fatalf("rebuild issued %d peer reads, want %d (one per peer per batch)", st.PeerReads, want)
	}
	// Pacing: batch starts are rate-limited and each full batch's pace
	// covers its rebuildBatchRows rows, so the span from first to last
	// completion covers at least batches-1 full-batch gaps.
	pace := sim.Time(float64(rebuildBatchRows*lay.StripeUnitBlocks()*disk.BlockSize) * 1000 / 64)
	if d := st.RebuildDuration(); d < sim.Time(batches-1)*pace {
		t.Fatalf("rebuild duration %v under the rate-limit floor %v", d, sim.Time(batches-1)*pace)
	}
	// The device rejoined: reads are native (no reconstruction delay,
	// no degraded counters moving).
	deg0 := st.DegradedReads
	for b := int64(0); b < lay.DataBlocks(); b++ {
		if lay.Locate(b).Disk == dead {
			if got := submitAndRun(eng, ctl, disk.OpRead, b, 1); got != 0 {
				t.Fatalf("post-rebuild read of block %d took %v", b, got)
			}
			break
		}
	}
	if st.DegradedReads != deg0 {
		t.Fatal("post-rebuild read still reconstructed")
	}
}

// TestCrashRestartLogRingMatchesSyncControl is the crash-recovery e2e:
// the same workload replayed with a crash mid-run, once logging
// synchronously to a plain buffer and once through the batched LogRing
// with a Barrier'd in-memory mirror as the crash source. The recovered
// state, the entire post-crash run, and the final log byte streams
// must be identical — the ring changes scheduling, never contents.
func TestCrashRestartLogRingMatchesSyncControl(t *testing.T) {
	recs := randomWorkload(23, 4000, 12000)
	const spec = "seed=5;crash@20ms"

	type outcome struct {
		faults FaultStats
		stats  Stats
		dirty  []mapcache.Mapping
		rd, wr string
	}
	run := func(useRing bool) (outcome, []byte) {
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		c, arr := newMQCRAID(eng, 64, 16, 8, testLookahead())
		var log bytes.Buffer
		var ring *mapcache.LogRing
		if useRing {
			ring = mapcache.NewLogRing(&log, 512, 3)
			c.SetMappingLog(ring)
		} else {
			c.SetMappingLog(&log)
		}
		rt, err := InstallFaults(arr, c, plan, testFaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		rt.SetCrashSource(func() (io.Reader, error) {
			if ring != nil {
				if err := ring.Barrier(); err != nil {
					return nil, err
				}
			}
			return bytes.NewReader(log.Bytes()), nil
		})
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Err(); err != nil {
			t.Fatal(err)
		}
		if ring != nil {
			if err := ring.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return outcome{
			faults: *rt.Stats(),
			stats:  *c.Stats(),
			dirty:  c.table.DirtyMappings(),
			rd:     c.ReadLatency().String(),
			wr:     c.WriteLatency().String(),
		}, log.Bytes()
	}

	sync, syncLog := run(false)
	ringO, ringLog := run(true)
	if sync.faults.Restarts != 1 {
		t.Fatalf("crash never fired: %+v", sync.faults)
	}
	if sync.faults.RecoveredMappings == 0 {
		t.Fatal("crash recovered no mappings; the workload should have dirtied the cache")
	}
	if ringO.faults != sync.faults {
		t.Errorf("fault stats diverged:\n  ring %+v\n  sync %+v", ringO.faults, sync.faults)
	}
	if ringO.stats != sync.stats {
		t.Error("controller stats diverged between ring and sync logs")
	}
	if !reflect.DeepEqual(ringO.dirty, sync.dirty) {
		t.Error("post-crash dirty mapping state diverged")
	}
	if ringO.rd != sync.rd || ringO.wr != sync.wr {
		t.Error("latency histograms diverged")
	}
	if !bytes.Equal(syncLog, ringLog) {
		t.Errorf("log byte streams diverged (%d vs %d bytes)", len(syncLog), len(ringLog))
	}
}

// TestCrashRecoveryMidExpandRetain kills the controller while
// ExpandRetain's migration reads are in flight: the epoch stamp must
// drop every stale re-placement write, and the recovered mapping state
// must equal what a fresh controller recovers from the same log.
func TestCrashRecoveryMidExpandRetain(t *testing.T) {
	recs := randomWorkload(29, 2500, 12000)
	eng := sim.NewEngine()
	c, arr := newMQCRAID(eng, 64, 4, 2, testLookahead())
	var log bytes.Buffer
	c.SetMappingLog(&log)
	if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
		t.Fatal(err)
	}
	logBytes := append([]byte(nil), log.Bytes()...)

	st := c.ExpandRetain([]disk.Device{disk.NewNullDevice(eng, "spare", 100000)})
	if st.Migrated == 0 {
		t.Fatal("expansion migrated nothing; the cache should be populated")
	}
	// The migration I/O is scheduled but not yet run: crash now.
	writesBefore := make([]int64, arr.Devices())
	for i := range writesBefore {
		writesBefore[i] = arr.Device(i).Stats().Writes
	}
	n, err := c.CrashRestart(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("restart recovered no mappings")
	}
	eng.Run() // drain the stale migration reads
	for i := 0; i < arr.Devices(); i++ {
		if got := arr.Device(i).Stats().Writes; got != writesBefore[i] {
			t.Fatalf("device %d: %d stale re-placement writes landed after the crash",
				i, got-writesBefore[i])
		}
	}

	// Control: a fresh controller born with the expanded geometry,
	// recovering the same log, must hold the identical mapping state.
	eng2 := sim.NewEngine()
	arr2 := nullArray(eng2, 5, 100000)
	paLayout := raid.NewRAID5(4, 4, 4096, 4)
	c2 := mustCRAID(arr2, Config{
		Policy: "WLRU", CachePerDisk: 64, ParityGroup: 4, StripeUnit: 4,
		MapShards: 4, MonitorWorkers: 2, PlanLookahead: testLookahead(),
	}, true, []int{0, 1, 2, 3, 4}, 0, paLayout, []int{0, 1, 2, 3}, 64)
	n2, err := c2.Recover(bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("restart recovered %d mappings, fresh Recover %d", n, n2)
	}
	if !reflect.DeepEqual(c.table.DirtyMappings(), c2.table.DirtyMappings()) {
		t.Fatal("post-crash mapping state diverged from a fresh recovery")
	}

	// Both controllers now replay a second phase; their mapping state
	// must stay in lockstep — the crash survivor is a working
	// controller, not a wreck.
	recs2 := randomWorkload(31, 1500, 12000)
	for i := range recs2 {
		recs2[i].Time += sim.Second
	}
	if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs2), ReplayConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayWith(eng2, c2, trace.NewSlice(recs2), ReplayConfig{}); err != nil {
		t.Fatal(err)
	}
	if c.table.Len() != c2.table.Len() ||
		!reflect.DeepEqual(c.table.DirtyMappings(), c2.table.DirtyMappings()) {
		t.Fatal("phase-2 mapping state diverged between crash survivor and control")
	}
}

// stickyErrLog is a synchronous mapping-log writer that dies after
// accepting limit bytes, exposing the sticky error the way LogRing
// does (Err method), so the controller's flush-step check sees it.
type stickyErrLog struct {
	n     int
	limit int
	err   error
}

func (w *stickyErrLog) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.limit && w.err == nil {
		w.err = errors.New("log device gone")
	}
	if w.err != nil {
		return 0, w.err
	}
	return len(p), nil
}

func (w *stickyErrLog) Err() error { return w.err }

// TestMappingLogErrorFailsRun pins the satellite contract: a dying
// mapping-log device surfaces as a Submit error at the next flush
// step, aborting the replay instead of silently dropping durability.
func TestMappingLogErrorFailsRun(t *testing.T) {
	recs := randomWorkload(3, 3000, 12000)
	eng := sim.NewEngine()
	c, _ := newMQCRAID(eng, 64, 4, 2, testLookahead())
	c.SetMappingLog(&stickyErrLog{limit: 4096})
	_, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
	if err == nil {
		t.Fatal("replay over a dying mapping log reported success")
	}
	if !strings.Contains(err.Error(), "mapping log") {
		t.Fatalf("error does not name the mapping log: %v", err)
	}
}
