package core

import (
	"io"
	"sync/atomic"

	"craid/internal/sim"
	"craid/internal/trace"
)

// Replay ring defaults. The ring holds RingDepth batches of up to
// BatchSize pre-parsed records, so resident memory is bounded at
// depth × batch records (~256 KiB at the defaults) regardless of trace
// length, while the reader goroutine stays far enough ahead that the
// simulation never stalls on parsing.
const (
	replayBatchSize = 1024
	replayRingDepth = 4
)

// ReplayConfig tunes the replay pipeline; zero fields take the
// defaults above. Oversized simulations (wide MSR hosts, very fast
// instant-mode replays) can trade resident memory for headroom here
// and read the effect off ReplayStats.
type ReplayConfig struct {
	// BatchSize is the record capacity of one ring slot — and the unit
	// the multi-queue planner classifies concurrently.
	BatchSize int
	// RingDepth is the number of slots the reader may fill ahead of
	// the simulation.
	RingDepth int
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.BatchSize < 1 {
		c.BatchSize = replayBatchSize
	}
	if c.RingDepth < 1 {
		c.RingDepth = replayRingDepth
	}
	return c
}

// ReplayStats reports what the replay pipeline did: throughput shape
// and back-pressure at each stage boundary.
//
// Reader ↔ ring: ReaderStalls counts the reader finding the ring full
// (the simulation is the bottleneck — the healthy steady state);
// ReplayStalls counts the ring's consumer finding it empty after at
// least one batch was consumed (parsing is the bottleneck — consider a
// deeper ring, bigger batches, or a per-volume split; the initial
// pipeline-filling wait is exempt). RingHighWater is the most filled
// batches resident at once, bounded by the ring depth.
//
// Planner ↔ apply (populated only when the volume planned ahead,
// i.e. Config.PlanLookahead > 0 with an effective multi-queue
// planner): PlannerStalls counts plans that were ready before the
// apply stage asked for them (planning is hidden — the healthy
// overlapped state); PlanStalls counts the apply stage finding the
// plan ring empty after its first planned batch (planning or parsing
// is the bottleneck — more workers, or bigger batches, amortize it
// better). PlanHighWater is the most planned batches resident at once,
// bounded by the lookahead depth.
type ReplayStats struct {
	Records       int64
	Batches       int64
	RingHighWater int
	ReaderStalls  int64
	ReplayStalls  int64

	PlannedBatches int64
	PlanHighWater  int
	PlannerStalls  int64
	PlanStalls     int64
}

// replayBatch is one ring slot: records plus the terminal error (io.EOF
// or a parse failure) hit while filling it, if any.
type replayBatch struct {
	recs []trace.Record
	err  error
}

// recordSource streams pre-parsed batches from a reader goroutine to
// its consumer — the simulation goroutine, or a plan stage sitting in
// between. Exhausted batch slices return to the free ring, so
// steady-state replay recycles the same depth×size records.
type recordSource struct {
	batches chan replayBatch
	free    chan []trace.Record
	quit    chan struct{}

	// Cross-goroutine counters; atomics because producer and consumer
	// may live on different goroutines than the final snapshot reader.
	// resident counts filled batches handed off but not yet consumed —
	// tracked explicitly rather than via len(batches), which misses a
	// send handed directly to an already-blocked receiver.
	readerStalls atomic.Int64
	resident     atomic.Int64
	highWater    atomic.Int64
	taken        atomic.Int64 // filled batches taken by the consumer
	replayStalls atomic.Int64
}

// startRecordSource launches the reader goroutine pumping r's records
// into the ring. The caller must invoke stop() when done (idempotent
// with respect to a reader that already finished).
func startRecordSource(r trace.Reader, cfg ReplayConfig) *recordSource {
	s := &recordSource{
		batches: make(chan replayBatch, cfg.RingDepth),
		free:    make(chan []trace.Record, cfg.RingDepth),
		quit:    make(chan struct{}),
	}
	for i := 0; i < cfg.RingDepth; i++ {
		s.free <- make([]trace.Record, 0, cfg.BatchSize)
	}
	go func() {
		for {
			var buf []trace.Record
			select {
			case buf = <-s.free:
			default:
				// Ring full: every slot is parsed and waiting. This is
				// back-pressure working — block until the simulation
				// frees a slot (or the replay stops).
				s.readerStalls.Add(1)
				select {
				case buf = <-s.free:
				case <-s.quit:
					return
				}
			}
			buf = buf[:0]
			var err error
			for len(buf) < cap(buf) {
				var rec trace.Record
				rec, err = r.Next()
				if err != nil {
					break
				}
				buf = append(buf, rec)
			}
			// Count the filled batch as resident before handing it
			// off: incrementing after the send races a direct handoff
			// to an already-blocked receiver (the consumer could
			// decrement first and the high-water mark under-report).
			occ := s.resident.Add(1)
			if depth := int64(cap(s.batches)); occ > depth {
				// The reader itself holds the +1 while blocked on a
				// full ring; occupancy is the full depth.
				occ = depth
			}
			select {
			case s.batches <- replayBatch{recs: buf, err: err}:
				// The reader is highWater's only writer, so a plain
				// load-compare-store max is race-free.
				if occ > s.highWater.Load() {
					s.highWater.Store(occ)
				}
			case <-s.quit:
				return
			}
			if err != nil {
				return // EOF or parse error: the stream is over
			}
		}
	}()
	return s
}

// take pops the next filled batch, blocking until one is ready and
// counting a stall when the ring is empty after the pipeline has
// already delivered a batch (the first wait is the pipeline filling,
// not the parser falling behind). ok=false only during teardown.
func (s *recordSource) take() (b replayBatch, ok bool) {
	select {
	case b = <-s.batches:
	default:
		if s.taken.Load() > 0 {
			s.replayStalls.Add(1)
		}
		select {
		case b = <-s.batches:
		case <-s.quit:
			return replayBatch{}, false
		}
	}
	s.resident.Add(-1)
	s.taken.Add(1)
	return b, true
}

// stop terminates the reader goroutine.
func (s *recordSource) stop() { close(s.quit) }

// plannedBatch pairs one ring batch with its lookahead plans.
type plannedBatch struct {
	replayBatch
	plans []recordPlan
}

// planStage is the lookahead pipeline stage: a goroutine that takes
// batches off the record ring, classifies each through the volume's
// planner, and hands (batch, plans) pairs through a bounded plan ring
// to the apply stage — so batch k+1 is being planned (and k+2 parsed)
// while the simulation commits batch k. With depth d the channel
// buffers d-1 planned batches: one more is always at the rendezvous or
// under classification, so at most d batches are planned ahead, and
// the planner's d+1 stitch arenas are never reused while a consumer
// can still read them.
type planStage struct {
	out  chan plannedBatch
	done chan struct{}

	resident      atomic.Int64
	highWater     atomic.Int64
	plannerStalls atomic.Int64
	planned       atomic.Int64
	taken         atomic.Int64
	planStalls    atomic.Int64
}

// startPlanStage launches the planning goroutine between src and the
// apply stage. The caller must stop src and then wait on done before
// disengaging the volume's plan gate.
func startPlanStage(src *recordSource, bp batchPlanner, depth int) *planStage {
	ps := &planStage{
		out:  make(chan plannedBatch, depth-1),
		done: make(chan struct{}),
	}
	go func() {
		defer close(ps.done)
		defer close(ps.out)
		for {
			b, ok := src.take()
			if !ok {
				return
			}
			var plans []recordPlan
			if len(b.recs) > 0 {
				plans = bp.planBatch(b.recs)
				ps.planned.Add(1)
			}
			occ := ps.resident.Add(1)
			if depth := int64(cap(ps.out)) + 1; occ > depth {
				occ = depth // the stage holds the +1 while blocked
			}
			select {
			case ps.out <- plannedBatch{replayBatch: b, plans: plans}:
				if occ > ps.highWater.Load() {
					ps.highWater.Store(occ)
				}
			default:
				// The plan was ready before apply wanted it: the
				// overlapped steady state. Record it, then block until
				// the apply stage drains batch k.
				ps.plannerStalls.Add(1)
				select {
				case ps.out <- plannedBatch{replayBatch: b, plans: plans}:
					if occ > ps.highWater.Load() {
						ps.highWater.Store(occ)
					}
				case <-src.quit:
					return
				}
			}
			if b.err != nil {
				return // terminal batch delivered: the stream is over
			}
		}
	}()
	return ps
}

// take pops the next planned batch for the apply stage, counting a
// stall when the plan ring is empty after the first planned batch.
func (ps *planStage) take() (replayBatch, []recordPlan, bool) {
	var pb plannedBatch
	var ok bool
	select {
	case pb, ok = <-ps.out:
	default:
		if ps.taken.Load() > 0 {
			ps.planStalls.Add(1)
		}
		pb, ok = <-ps.out
	}
	if !ok {
		return replayBatch{}, nil, false
	}
	ps.resident.Add(-1)
	ps.taken.Add(1)
	return pb.replayBatch, pb.plans, true
}

// batchCursor drains batches one record at a time on the simulation
// goroutine, recycling drained record slices through the free ring and
// announcing each fresh batch to the synchronous planner when no plan
// stage is interposed.
type batchCursor struct {
	take    func() (replayBatch, []recordPlan, bool)
	free    chan []trace.Record
	onBatch func(recs []trace.Record) []recordPlan // sync-mode planning

	cur     replayBatch
	plans   []recordPlan
	pos     int
	records int64
	batches int64
	err     error // first non-EOF error from the reader
}

// next returns the next record and its plan (nil when the record was
// not planned). ok=false means the stream ended — by EOF, teardown, or
// the error left in err.
func (cu *batchCursor) next() (trace.Record, *recordPlan, bool) {
	for {
		if cu.pos < len(cu.cur.recs) {
			rec := cu.cur.recs[cu.pos]
			var p *recordPlan
			if cu.plans != nil {
				p = &cu.plans[cu.pos]
			}
			cu.pos++
			cu.records++
			return rec, p, true
		}
		if cu.cur.err != nil {
			if cu.cur.err != io.EOF {
				cu.err = cu.cur.err
			}
			return trace.Record{}, nil, false
		}
		if cu.cur.recs != nil {
			cu.free <- cu.cur.recs
		}
		b, plans, ok := cu.take()
		if !ok {
			return trace.Record{}, nil, false
		}
		cu.cur, cu.pos = b, 0
		cu.plans = plans
		if len(b.recs) > 0 {
			cu.batches++
			if cu.onBatch != nil {
				cu.plans = cu.onBatch(b.recs)
			}
		}
	}
}

// Replay feeds a trace into vol with the default pipeline tuning; see
// ReplayWith.
func Replay(eng *sim.Engine, vol Volume, r trace.Reader) (int64, error) {
	n, _, err := ReplayWith(eng, vol, r, ReplayConfig{})
	return n, err
}

// ReplayWith feeds a trace into vol, submitting each record at its
// recorded time, and runs the engine until all I/O completes. It
// returns the number of requests replayed and the pipeline's
// back-pressure statistics. Records must be time-ordered (all readers
// in internal/trace and the generators in internal/workload produce
// ordered streams).
//
// Parsing runs off the simulation path: a reader goroutine pre-parses
// records into a bounded ring of batches (cfg), and the simulation
// pumps records out of the current batch — so multi-GB traces replay
// in constant memory without the event loop stalling on the parser
// between events, and a slow reader only ever blocks the simulation
// when the whole ring has drained.
//
// Volumes implementing batchPlanner (CRAID with MonitorWorkers > 1)
// additionally get each whole batch handed to their plan phase the
// moment it leaves the ring: classification against the mapping index
// runs concurrently, one worker per shard group, while submission —
// the apply stage — stays strictly in record order. With
// Config.PlanLookahead > 0 the plan phase moves onto its own pipeline
// stage and classifies batch k+1 while batch k is being applied,
// under the volume's plan gate; in every mode the results are
// bit-identical to a sequential replay.
func ReplayWith(eng *sim.Engine, vol Volume, r trace.Reader, cfg ReplayConfig) (int64, ReplayStats, error) {
	src := startRecordSource(r, cfg.withDefaults())

	bp, _ := vol.(batchPlanner)
	cu := &batchCursor{free: src.free}
	var ps *planStage
	if bp != nil {
		bp.beginPlanning()
		if depth := bp.planDepth(); depth > 0 {
			bp.setLookahead(true)
			ps = startPlanStage(src, bp, depth)
			cu.take = ps.take
		} else {
			cu.onBatch = bp.planBatch
		}
	}
	if cu.take == nil {
		cu.take = func() (replayBatch, []recordPlan, bool) {
			b, ok := src.take()
			return b, nil, ok
		}
	}
	defer func() {
		src.stop()
		if ps != nil {
			// The plan stage must be fully parked before the gate
			// disengages: its workers read the gated flag.
			<-ps.done
			bp.setLookahead(false)
		}
		if bp != nil {
			// After the plan stage (if any) has parked: no classification
			// can be in flight when the affinity workers are released.
			bp.endPlanning()
		}
	}()

	// The replay keeps exactly one record in flight between schedule and
	// pump (pump re-schedules only after submitting), so the pending
	// record parks in captured locals and the same two closures carry the
	// whole trace — no per-record allocation.
	var pump func()
	var pendRec trace.Record
	var pendPlan *recordPlan
	var subErr error
	schedule := func() {
		rec, p, ok := cu.next()
		if !ok {
			if cu.err != nil {
				eng.Stop()
			}
			return
		}
		at := rec.Time
		if at < eng.Now() {
			at = eng.Now() // tolerate tiny reordering from parsers
		}
		pendRec, pendPlan = rec, p
		eng.Schedule(at, pump)
	}
	pump = func() {
		rec, p := pendRec, pendPlan
		var err error
		if bp != nil {
			err = bp.submitPlanned(rec, p, nil)
		} else {
			err = vol.Submit(rec, nil)
		}
		if err != nil {
			// A record the volume could not serve correctly — data lost
			// beyond redundancy, or a dying mapping log — ends the
			// replay: the remaining trace would run against a volume
			// known broken.
			subErr = err
			eng.Stop()
			return
		}
		schedule()
	}

	schedule()
	eng.Run()
	// Every record next() hands out is pumped before the stream can
	// end (the error path only stops the engine after the last pump),
	// so the cursor's count is the replayed count.
	st := ReplayStats{
		Records:       cu.records,
		Batches:       cu.batches,
		RingHighWater: int(src.highWater.Load()),
		ReaderStalls:  src.readerStalls.Load(),
		ReplayStalls:  src.replayStalls.Load(),
	}
	if ps != nil {
		st.PlannedBatches = ps.planned.Load()
		st.PlanHighWater = int(ps.highWater.Load())
		st.PlannerStalls = ps.plannerStalls.Load()
		st.PlanStalls = ps.planStalls.Load()
	}
	if subErr != nil {
		return st.Records, st, subErr
	}
	return st.Records, st, cu.err
}
