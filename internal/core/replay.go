package core

import (
	"io"
	"sync/atomic"

	"craid/internal/sim"
	"craid/internal/trace"
)

// Replay ring defaults. The ring holds RingDepth batches of up to
// BatchSize pre-parsed records, so resident memory is bounded at
// depth × batch records (~256 KiB at the defaults) regardless of trace
// length, while the reader goroutine stays far enough ahead that the
// simulation never stalls on parsing.
const (
	replayBatchSize = 1024
	replayRingDepth = 4
)

// ReplayConfig tunes the replay pipeline; zero fields take the
// defaults above. Oversized simulations (wide MSR hosts, very fast
// instant-mode replays) can trade resident memory for headroom here
// and read the effect off ReplayStats.
type ReplayConfig struct {
	// BatchSize is the record capacity of one ring slot — and the unit
	// the multi-queue planner classifies concurrently.
	BatchSize int
	// RingDepth is the number of slots the reader may fill ahead of
	// the simulation.
	RingDepth int
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.BatchSize < 1 {
		c.BatchSize = replayBatchSize
	}
	if c.RingDepth < 1 {
		c.RingDepth = replayRingDepth
	}
	return c
}

// ReplayStats reports what the replay pipeline did: throughput shape
// and back-pressure on both ends of the ring. ReaderStalls counts the
// reader finding the ring full (the simulation is the bottleneck — the
// healthy steady state); ReplayStalls counts the simulation finding it
// empty after at least one batch was consumed (parsing is the
// bottleneck — consider a deeper ring, bigger batches, or a per-volume
// split; the initial pipeline-filling wait is exempt). RingHighWater
// is the most filled batches resident at once, bounded by the ring
// depth.
type ReplayStats struct {
	Records       int64
	Batches       int64
	RingHighWater int
	ReaderStalls  int64
	ReplayStalls  int64
}

// replayBatch is one ring slot: records plus the terminal error (io.EOF
// or a parse failure) hit while filling it, if any.
type replayBatch struct {
	recs []trace.Record
	err  error
}

// recordSource streams pre-parsed batches from a reader goroutine to
// the simulation goroutine. Exhausted batch slices return to the free
// ring, so steady-state replay recycles the same depth×size records.
type recordSource struct {
	batches chan replayBatch
	free    chan []trace.Record
	quit    chan struct{}

	// Cross-goroutine counters; atomics because the simulation
	// goroutine reads them while the reader may still be running.
	// resident counts filled batches handed off but not yet consumed —
	// tracked explicitly rather than via len(batches), which misses a
	// send handed directly to an already-blocked receiver.
	readerStalls atomic.Int64
	resident     atomic.Int64
	highWater    atomic.Int64

	cur     cursorBatch
	stats   ReplayStats // consumer-side fields, final values via snapshot
	onBatch func(recs []trace.Record)

	err error // first non-EOF error from the reader
}

// cursorBatch is the batch the simulation is currently draining.
type cursorBatch struct {
	replayBatch
	pos int
}

// startRecordSource launches the reader goroutine pumping r's records
// into the ring. The caller must invoke stop() when done (idempotent
// with respect to a reader that already finished).
func startRecordSource(r trace.Reader, cfg ReplayConfig) *recordSource {
	s := &recordSource{
		batches: make(chan replayBatch, cfg.RingDepth),
		free:    make(chan []trace.Record, cfg.RingDepth),
		quit:    make(chan struct{}),
	}
	for i := 0; i < cfg.RingDepth; i++ {
		s.free <- make([]trace.Record, 0, cfg.BatchSize)
	}
	go func() {
		for {
			var buf []trace.Record
			select {
			case buf = <-s.free:
			default:
				// Ring full: every slot is parsed and waiting. This is
				// back-pressure working — block until the simulation
				// frees a slot (or the replay stops).
				s.readerStalls.Add(1)
				select {
				case buf = <-s.free:
				case <-s.quit:
					return
				}
			}
			buf = buf[:0]
			var err error
			for len(buf) < cap(buf) {
				var rec trace.Record
				rec, err = r.Next()
				if err != nil {
					break
				}
				buf = append(buf, rec)
			}
			// Count the filled batch as resident before handing it
			// off: incrementing after the send races a direct handoff
			// to an already-blocked receiver (the consumer could
			// decrement first and the high-water mark under-report).
			occ := s.resident.Add(1)
			if depth := int64(cap(s.batches)); occ > depth {
				// The reader itself holds the +1 while blocked on a
				// full ring; occupancy is the full depth.
				occ = depth
			}
			select {
			case s.batches <- replayBatch{recs: buf, err: err}:
				// The reader is highWater's only writer, so a plain
				// load-compare-store max is race-free.
				if occ > s.highWater.Load() {
					s.highWater.Store(occ)
				}
			case <-s.quit:
				return
			}
			if err != nil {
				return // EOF or parse error: the stream is over
			}
		}
	}()
	return s
}

// next returns the next record, refilling from the ring when the
// current batch drains (announcing each fresh batch via onBatch before
// any of its records are returned). ok=false means the stream ended —
// by EOF, or by the error left in s.err.
func (s *recordSource) next() (trace.Record, int, bool) {
	for {
		if s.cur.pos < len(s.cur.recs) {
			rec := s.cur.recs[s.cur.pos]
			idx := s.cur.pos
			s.cur.pos++
			s.stats.Records++
			return rec, idx, true
		}
		if s.cur.err != nil {
			if s.cur.err != io.EOF {
				s.err = s.cur.err
			}
			return trace.Record{}, 0, false
		}
		if s.cur.recs != nil {
			s.free <- s.cur.recs
		}
		select {
		case s.cur.replayBatch = <-s.batches:
		default:
			// Ring drained. Waiting for the very first batch is the
			// pipeline filling, not the parser falling behind — only
			// count a stall once a batch has actually been consumed.
			if s.stats.Batches > 0 {
				s.stats.ReplayStalls++
			}
			s.cur.replayBatch = <-s.batches
		}
		s.resident.Add(-1)
		s.cur.pos = 0
		if len(s.cur.recs) > 0 {
			s.stats.Batches++
			if s.onBatch != nil {
				s.onBatch(s.cur.recs)
			}
		}
	}
}

// stop terminates the reader goroutine.
func (s *recordSource) stop() { close(s.quit) }

// snapshot folds the reader-side counters into the consumer-side stats.
func (s *recordSource) snapshot() ReplayStats {
	st := s.stats
	st.ReaderStalls = s.readerStalls.Load()
	st.RingHighWater = int(s.highWater.Load())
	return st
}

// Replay feeds a trace into vol with the default pipeline tuning; see
// ReplayWith.
func Replay(eng *sim.Engine, vol Volume, r trace.Reader) (int64, error) {
	n, _, err := ReplayWith(eng, vol, r, ReplayConfig{})
	return n, err
}

// ReplayWith feeds a trace into vol, submitting each record at its
// recorded time, and runs the engine until all I/O completes. It
// returns the number of requests replayed and the pipeline's
// back-pressure statistics. Records must be time-ordered (all readers
// in internal/trace and the generators in internal/workload produce
// ordered streams).
//
// Parsing runs off the simulation path: a reader goroutine pre-parses
// records into a bounded ring of batches (cfg), and the simulation
// pumps records out of the current batch — so multi-GB traces replay
// in constant memory without the event loop stalling on the parser
// between events, and a slow reader only ever blocks the simulation
// when the whole ring has drained.
//
// Volumes implementing batchPlanner (CRAID with MonitorWorkers > 1)
// additionally get each whole batch handed to their plan phase the
// moment it leaves the ring: classification against the mapping index
// runs concurrently, one worker per shard group, while submission —
// the apply stage — stays strictly in record order, so results are
// bit-identical to a sequential replay.
func ReplayWith(eng *sim.Engine, vol Volume, r trace.Reader, cfg ReplayConfig) (int64, ReplayStats, error) {
	src := startRecordSource(r, cfg.withDefaults())
	defer src.stop()

	bp, _ := vol.(batchPlanner)
	var plans []recordPlan
	if bp != nil {
		src.onBatch = func(recs []trace.Record) {
			plans = bp.planBatch(recs)
		}
	}

	var pump func(rec trace.Record, p *recordPlan)
	schedule := func() {
		rec, idx, ok := src.next()
		if !ok {
			if src.err != nil {
				eng.Stop()
			}
			return
		}
		var p *recordPlan
		if plans != nil {
			p = &plans[idx]
		}
		at := rec.Time
		if at < eng.Now() {
			at = eng.Now() // tolerate tiny reordering from parsers
		}
		eng.Schedule(at, func() { pump(rec, p) })
	}
	pump = func(rec trace.Record, p *recordPlan) {
		if bp != nil {
			bp.submitPlanned(rec, p, nil)
		} else {
			vol.Submit(rec, nil)
		}
		schedule()
	}

	schedule()
	eng.Run()
	// Every record next() hands out is pumped before the stream can
	// end (the error path only stops the engine after the last pump),
	// so the source's count is the replayed count.
	st := src.snapshot()
	return st.Records, st, src.err
}
