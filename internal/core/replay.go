package core

import (
	"io"

	"craid/internal/sim"
	"craid/internal/trace"
)

// Replay feeds a trace into vol, submitting each record at its recorded
// time, and runs the engine until all I/O completes. It returns the
// number of requests replayed. Records must be time-ordered (all
// readers in internal/trace and the generators in internal/workload
// produce ordered streams).
//
// The trace is pumped lazily — the next record is scheduled from inside
// the previous submission event — so arbitrarily long traces replay in
// constant memory.
func Replay(eng *sim.Engine, vol Volume, r trace.Reader) (int64, error) {
	var count int64
	var pumpErr error

	var pump func(rec trace.Record)
	schedule := func() {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			pumpErr = err
			eng.Stop()
			return
		}
		at := rec.Time
		if at < eng.Now() {
			at = eng.Now() // tolerate tiny reordering from parsers
		}
		eng.Schedule(at, func() { pump(rec) })
	}
	pump = func(rec trace.Record) {
		count++
		vol.Submit(rec, nil)
		schedule()
	}

	schedule()
	eng.Run()
	return count, pumpErr
}
