package core

import (
	"io"

	"craid/internal/sim"
	"craid/internal/trace"
)

// Replay tuning. The ring holds replayRingDepth batches of up to
// replayBatchSize pre-parsed records, so resident memory is bounded at
// depth × batch records (~256 KiB) regardless of trace length, while
// the reader goroutine stays far enough ahead that the simulation
// never stalls on parsing.
const (
	replayBatchSize = 1024
	replayRingDepth = 4
)

// replayBatch is one ring slot: records plus the terminal error (io.EOF
// or a parse failure) hit while filling it, if any.
type replayBatch struct {
	recs []trace.Record
	err  error
}

// recordSource streams pre-parsed batches from a reader goroutine to
// the simulation goroutine. Exhausted batch slices return to the free
// ring, so steady-state replay recycles the same depth×size records.
type recordSource struct {
	batches chan replayBatch
	free    chan []trace.Record
	quit    chan struct{}

	cur replayBatch
	pos int
	err error // first non-EOF error from the reader
}

// startRecordSource launches the reader goroutine pumping r's records
// into the ring. The caller must invoke stop() when done (idempotent
// with respect to a reader that already finished).
func startRecordSource(r trace.Reader) *recordSource {
	s := &recordSource{
		batches: make(chan replayBatch, replayRingDepth),
		free:    make(chan []trace.Record, replayRingDepth),
		quit:    make(chan struct{}),
	}
	for i := 0; i < replayRingDepth; i++ {
		s.free <- make([]trace.Record, 0, replayBatchSize)
	}
	go func() {
		for {
			var buf []trace.Record
			select {
			case buf = <-s.free:
			case <-s.quit:
				return
			}
			buf = buf[:0]
			var err error
			for len(buf) < cap(buf) {
				var rec trace.Record
				rec, err = r.Next()
				if err != nil {
					break
				}
				buf = append(buf, rec)
			}
			select {
			case s.batches <- replayBatch{recs: buf, err: err}:
			case <-s.quit:
				return
			}
			if err != nil {
				return // EOF or parse error: the stream is over
			}
		}
	}()
	return s
}

// next returns the next record, refilling from the ring when the
// current batch drains. ok=false means the stream ended — by EOF, or by
// the error left in s.err.
func (s *recordSource) next() (trace.Record, bool) {
	for {
		if s.pos < len(s.cur.recs) {
			rec := s.cur.recs[s.pos]
			s.pos++
			return rec, true
		}
		if s.cur.err != nil {
			if s.cur.err != io.EOF {
				s.err = s.cur.err
			}
			return trace.Record{}, false
		}
		if s.cur.recs != nil {
			s.free <- s.cur.recs
		}
		s.cur = <-s.batches
		s.pos = 0
	}
}

// stop terminates the reader goroutine.
func (s *recordSource) stop() { close(s.quit) }

// Replay feeds a trace into vol, submitting each record at its recorded
// time, and runs the engine until all I/O completes. It returns the
// number of requests replayed. Records must be time-ordered (all
// readers in internal/trace and the generators in internal/workload
// produce ordered streams).
//
// Parsing runs off the simulation path: a reader goroutine pre-parses
// records into a bounded ring of batches (see replayBatchSize /
// replayRingDepth), and the simulation pumps records out of the current
// batch — so multi-GB traces replay in constant memory without the
// event loop stalling on the parser between events, and a slow reader
// only ever blocks the simulation when the whole ring has drained.
func Replay(eng *sim.Engine, vol Volume, r trace.Reader) (int64, error) {
	src := startRecordSource(r)
	defer src.stop()

	var count int64
	var pump func(rec trace.Record)
	schedule := func() {
		rec, ok := src.next()
		if !ok {
			if src.err != nil {
				eng.Stop()
			}
			return
		}
		at := rec.Time
		if at < eng.Now() {
			at = eng.Now() // tolerate tiny reordering from parsers
		}
		eng.Schedule(at, func() { pump(rec) })
	}
	pump = func(rec trace.Record) {
		count++
		vol.Submit(rec, nil)
		schedule()
	}

	schedule()
	eng.Run()
	return count, src.err
}
