package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"craid/internal/cache"
	"craid/internal/disk"
	"craid/internal/mapcache"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// Performance notes — extent-run invariants of the monitor hot path.
//
// The monitor operates at extent (run) granularity, not block
// granularity. The load-bearing invariants, relied on throughout
// readPath/writePath/insertRuns:
//
//  1. mapcache.Index.LookupRun answers, in one O(log k) descent, either
//     "the run of mappings starting here that is contiguous in BOTH
//     Orig and Cache" (a hit extent — servable with one P_C I/O) or
//     "the gap to the next mapping" (a miss extent). The per-block
//     loops of the original implementation — one descent plus one
//     policy-map operation per block of every request — are gone; a
//     256-block sequential request costs a handful of descents instead
//     of ~512. The index is sharded by archive-address range
//     (Config.MapShards): results are bit-identical at every shard
//     count (runs and gaps are stitched across shard boundaries), and
//     the disjoint per-shard trees are what a future multi-queue
//     controller will partition its monitor lookups over.
//
//  2. Batched policy traffic must be bit-identical to per-block
//     traffic: cache.Policy.AccessRun/InsertRun are specified (and
//     property-tested) to behave exactly like loops of Access/Insert,
//     so hit, replacement and eviction ratios do not depend on the
//     batching. Eviction victims surface through InsertRun's callback
//     in per-block order.
//
//  3. The Submit path is map-free and allocation-free at steady state:
//     every replacement policy lives on a dense slot arena with one
//     open-addressing key index (internal/cache — no map[Key]*entry, no
//     per-key Go-map hashing, no per-entry heap objects), the mapping
//     cache recycles tree nodes through freelists, the insertRuns
//     newborn scratch, eviction callback and write-back run buffer live
//     on the CRAID struct, copy-in and latency-record wrappers pool like
//     joins/RMW ops on the Array, and the span extent walks reuse bound
//     callbacks instead of per-call closures. A warm-cache Submit
//     performs zero allocations (TestSubmitWarmAllocFree pins this);
//     monitor churn (evict + re-insert) allocates nothing either.
//
//  4. Dirty victims evicted together are written back together:
//     queueWriteback coalesces victims contiguous in both archive
//     address and cache slot, and flushWritebacks issues one
//     read-then-update chain per run (the paper's "4 additional I/Os"
//     amortized across the run). Write-back reads are flushed before
//     the batch's allocation writes, preserving order on shared disk
//     queues.
//
//  5. Mutation stays single-threaded; classification does not. The
//     multi-queue pipeline (plan.go) classifies whole replay batches
//     concurrently — one worker per shard group, read-only against the
//     sharded index — and a sequential apply stage commits every
//     record in submission order, re-classifying inline whenever a
//     per-shard structural version says an earlier mutation
//     invalidated the plan. With Config.PlanLookahead the plan phase
//     additionally overlaps the apply stage (batch k+1 classifies
//     while batch k commits), serialized only by the plan gate: apply
//     write-locks its mutating regions, planner workers classify a
//     bounded window of tasks per read lock, and the same version
//     stamps catch staleness.
//     The discrete-event engine, all Stats and every device counter
//     are therefore bit-identical to the sequential controller at any
//     (MonitorWorkers, PlanLookahead) setting. Outside the plan
//     pipeline one CRAID (like one sim.Engine) remains confined to a
//     goroutine; cross-experiment parallelism lives in
//     internal/experiments.RunAll, which runs whole simulations per
//     worker.
//
//  6. Dirty-log appends never issue I/O from the apply path: the
//     mapping log's records accumulate in memory and, when the log is
//     a mapcache.LogRing, whole buffers flush through a background
//     writer at apply-step boundaries — same byte stream, same
//     recovery, no synchronous Write per translation.

// PCLevel selects the redundancy of the cache partition.
type PCLevel uint8

// Cache-partition redundancy levels. The paper evaluates RAID-5 (its
// default, used here too) and RAID-0 variants; RAID-6 realizes the §6
// extension with its doubled parity-update cost.
const (
	PCRaid5 PCLevel = iota
	PCRaid0
	PCRaid6
)

// String returns "RAID-0", "RAID-5" or "RAID-6".
func (l PCLevel) String() string {
	switch l {
	case PCRaid0:
		return "RAID-0"
	case PCRaid6:
		return "RAID-6"
	default:
		return "RAID-5"
	}
}

// Config parameterizes a CRAID instance.
type Config struct {
	// Policy is the I/O monitor's replacement policy name (see
	// internal/cache). Default "WLRU" with window 0.5 — the paper's
	// choice after §5.1.
	Policy     string
	WLRUWindow float64
	// CachePerDisk is the cache-partition size per cache disk, in
	// blocks.
	CachePerDisk int64
	// ParityGroup is the parity-group size for the cache partition's
	// RAID-5 (default 10, as in the paper's testbed).
	ParityGroup int
	// StripeUnit is the stripe unit in blocks (default 32 = 128 KiB).
	StripeUnit int64
	// Level is the cache partition's redundancy (default RAID-5).
	Level PCLevel
	// MapShards shards the mapping index into this many contiguous
	// archive-address ranges (default 1, the paper's single tree).
	// Monitor behavior — hit, replacement and eviction ratios — is
	// bit-identical at every shard count; sharding only changes the
	// index's internal structure (shallower per-shard trees, per-shard
	// freelists), and gives the multi-queue planner disjoint shard
	// groups to classify concurrently.
	MapShards int
	// MonitorWorkers classifies replayed batches against the mapping
	// index concurrently: the plan phase routes each record's address
	// range to one worker per shard group (cross-shard runs split at
	// shard boundaries and re-stitched), and the sequential apply phase
	// commits every plan in submission order, re-classifying inline
	// whenever an earlier mutation invalidated it. Stats, monitor
	// ratios and per-device counters are bit-identical at every worker
	// count. Default 1 (sequential); effective workers are capped at
	// MapShards, so concurrency needs MapShards > 1. Only Replay
	// batches are planned — direct Submit calls always run the
	// sequential path.
	MonitorWorkers int
	// PlanLookahead overlaps planning with application: the replay
	// pipeline plans batch k+1 (still one worker per shard group) while
	// the apply stage commits batch k, keeping up to this many batches
	// planned ahead. Classification then runs against the live,
	// mutating index, serialized at task granularity by the plan gate
	// and validated by the same per-shard version stamps, so Stats,
	// ratios, device counters and histograms remain bit-identical to
	// PlanLookahead 0 at every worker count — only the MQStats
	// applied/replanned split becomes timing-dependent. Default 0
	// (plan between apply steps); ineffective unless MonitorWorkers
	// and MapShards allow concurrent planning at all.
	PlanLookahead int
	// WorkerAffinity pins each shard group to one persistent planner
	// goroutine for a whole replay (beginPlanning..endPlanning) instead
	// of spawning fresh goroutines per batch: on wide hosts the Go
	// scheduler then tends to keep worker g on one OS thread, so group
	// g's index shards stay resident in that core's cache across
	// batches. Pure scheduling policy — the classification work, its
	// order and its results are identical, so Stats and every counter
	// remain bit-identical with the knob on or off. Default off;
	// ineffective unless MonitorWorkers and MapShards allow concurrent
	// planning at all.
	WorkerAffinity bool
	// MapLogSync asks the mapping log's background writer to fsync the
	// log device after every flushed buffer (mapcache.LogRing's
	// SetSyncOnFlush), closing the paper's §4.2 NVRAM assumption down
	// to real durable storage: a flush is then not merely handed to the
	// OS but on stable media before the next buffer is written. Only
	// effective when SetMappingLog is given a writer that supports it;
	// the recovery byte-stream contract is unchanged either way.
	MapLogSync bool
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "WLRU"
	}
	if c.WLRUWindow == 0 {
		c.WLRUWindow = 0.5
	}
	if c.ParityGroup == 0 {
		c.ParityGroup = 10
	}
	if c.StripeUnit == 0 {
		c.StripeUnit = 32
	}
	if c.CachePerDisk < c.StripeUnit {
		c.CachePerDisk = c.StripeUnit // at least one stripe row
	}
	if c.MapShards < 1 {
		c.MapShards = 1
	}
	if c.MonitorWorkers < 1 {
		c.MonitorWorkers = 1
	}
	if c.PlanLookahead < 0 {
		c.PlanLookahead = 0
	}
	return c
}

// Stats are CRAID's monitor-level counters. Block granularity: a
// request for n blocks contributes n to the access counters.
type Stats struct {
	ReadBlocks  int64 // blocks accessed by reads
	WriteBlocks int64
	ReadHits    int64 // blocks found in P_C
	WriteHits   int64

	Evictions      int64 // total policy evictions
	DirtyEvictions int64 // evictions requiring write-back to P_A
	ReadEvictions  int64 // evictions triggered while serving reads
	WriteEvictions int64

	CopyIns    int64 // blocks copied P_A → P_C on read misses
	Writebacks int64 // dirty blocks written P_C → P_A
	Expansions int64
}

// HitRatio returns the block hit ratio for op.
func (s *Stats) HitRatio(op disk.Op) float64 {
	if op == disk.OpRead {
		return ratio(s.ReadHits, s.ReadBlocks)
	}
	return ratio(s.WriteHits, s.WriteBlocks)
}

// EvictionRatio returns evictions per accessed block for op.
func (s *Stats) EvictionRatio(op disk.Op) float64 {
	if op == disk.OpRead {
		return ratio(s.ReadEvictions, s.ReadBlocks)
	}
	return ratio(s.WriteEvictions, s.WriteBlocks)
}

// ReplacementRatio returns evictions per accessed block over both ops
// (the paper's Table 3 metric).
func (s *Stats) ReplacementRatio() float64 {
	return ratio(s.Evictions, s.ReadBlocks+s.WriteBlocks)
}

// OverallHitRatio returns the hit ratio over both ops (Table 2).
func (s *Stats) OverallHitRatio() float64 {
	return ratio(s.ReadHits+s.WriteHits, s.ReadBlocks+s.WriteBlocks)
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ExpandStats reports what one online expansion did.
type ExpandStats struct {
	DirtyWriteback int64 // blocks written back to P_A
	Invalidated    int64 // total mappings dropped (incl. dirty)
	Migrated       int64 // cached blocks physically moved (ExpandRetain)
}

// CRAID is the self-optimizing array: I/O monitor + mapping cache +
// I/O redirector over a cache partition P_C and an archive partition
// P_A (paper §3, Fig. 2).
type CRAID struct {
	latencies
	arr *Array
	cfg Config

	sharedPC   bool  // P_C spread over all devices (vs dedicated SSDs)
	cacheDisks []int // devices hosting P_C
	cacheBase  int64
	pc         *span
	pcData     int64

	pa *span // archive partition

	table  mapcache.Index
	policy cache.Policy

	free freeRuns
	next int64 // bump allocator over P_C data blocks

	pending []bool  // insertRuns newborn scratch, reused across calls
	wb      []wbRun // pending dirty write-back runs, reused across calls
	wbFree  *wbOp   // write-back op freelist
	ciFree  *ciOp   // copy-in op freelist

	// insertRuns' eviction-callback state: the callback handed to
	// cache.Policy.InsertRun is bound once (insEvict) and reads the
	// current batch from these fields, so the insert/evict path passes
	// no fresh closure across the policy interface. insertRuns never
	// re-enters itself, so one set of fields suffices.
	insBlk   int64
	insRun   int64
	insByOp  disk.Op
	insEvict func(cache.Key)

	mq      *planner // multi-queue batch planner (nil until first batch)
	mqStats MQStats

	// gate serializes index mutation against lookahead classification.
	// gated is true only while a lookahead replay's plan stage is
	// running (set and cleared by the apply goroutine around the
	// stage's lifetime): the planner's workers then classify a bounded
	// window of tasks (classifyWindow) per read-side critical section,
	// and the apply helpers write-lock their mutating regions —
	// write-hit dirty flips and the insert/evict path. Read hits, the
	// steady-state majority, take no lock, and outside lookahead
	// replays every gate check is a single untaken branch.
	gate  sync.RWMutex
	gated bool

	// logFlush, when the mapping log is a batching writer (e.g.
	// mapcache.LogRing), is called once per apply step so the log's
	// durability boundary is the I/O request rather than the
	// individual translation. logErr, when the writer reports
	// asynchronous failures (LogRing.Err), is polled at the same
	// boundary so a dying log device fails the run promptly.
	logFlush interface{ Flush() }
	logErr   interface{ Err() error }

	// epoch counts controller incarnations: a crash-restart bumps it,
	// and in-flight background side effects (copy-ins, write-backs,
	// migrations) stamped with an older epoch complete as timing only —
	// their state updates belong to the torn-down incarnation.
	epoch uint64

	// upJoin, while an ExpandWith call is on the stack, collects one
	// branch per background chain the upgrade issues (dirty write-backs,
	// live-block migrations) so the caller learns when the upgrade's
	// I/O has fully drained — the upgrade-latency KPI.
	upJoin *join

	stats Stats
}

// wbRun is a contiguous run of dirty victims awaiting write-back:
// blocks orig..orig+n-1 cached at slots slot..slot+n-1.
type wbRun struct{ orig, slot, n int64 }

// wbOp is one write-back chain in flight: when the P_C read of the
// evicted copies completes, done issues the archive update. Pooled on
// the CRAID (fn caches the method value) so dirty evictions allocate
// nothing at steady state.
type wbOp struct {
	c       *CRAID
	orig, n int64
	epoch   uint64
	up      func(sim.Time) // upgrade-join branch (ExpandWith), else nil
	fn      func(sim.Time)
	next    *wbOp // freelist link
}

func (c *CRAID) newWBOp(orig, n int64) *wbOp {
	o := c.wbFree
	if o == nil {
		o = &wbOp{c: c}
		o.fn = o.done
	} else {
		c.wbFree = o.next
		o.next = nil
	}
	o.orig, o.n, o.epoch = orig, n, c.epoch
	o.up = nil
	if c.upJoin != nil {
		o.up = c.upJoin.branch()
	}
	return o
}

// done runs when the P_C read finishes: update P_A, recycle the op. A
// stale epoch means a crash-restart tore the owning incarnation down
// mid-chain: the archive update is dropped (the dirty mapping was
// re-logged or lost with the crash, exactly as a real controller's
// in-flight write-back dies with it). An upgrade branch (ExpandWith
// tracking drain) fires either way — on the archive write's completion
// when the chain is live, immediately when it is stale.
func (o *wbOp) done(at sim.Time) {
	c := o.c
	up := o.up
	o.up = nil
	if o.epoch == c.epoch {
		detached := c.arr.newJoin(up)
		c.pa.write(detached, o.orig, o.n)
		detached.seal(c.arr.Eng.Now())
		up = nil
	}
	o.next = c.wbFree
	c.wbFree = o
	if up != nil {
		up(at)
	}
}

// ciOp is one read-miss copy-in in flight: when the P_A read serving
// the client completes, done releases the client branch and copies the
// run into P_C in the background. Pooled on the CRAID (fn caches the
// method value) so the read-miss path allocates no per-extent closure.
type ciOp struct {
	c       *CRAID
	orig, n int64
	epoch   uint64
	jb      func(sim.Time) // the client join's branch callback
	fn      func(sim.Time)
	next    *ciOp // freelist link
}

func (c *CRAID) newCIOp(orig, n int64, jb func(sim.Time)) *ciOp {
	o := c.ciFree
	if o == nil {
		o = &ciOp{c: c}
		o.fn = o.done
	} else {
		c.ciFree = o.next
		o.next = nil
	}
	o.orig, o.n, o.jb, o.epoch = orig, n, jb, c.epoch
	return o
}

// done runs when the P_A read finishes: complete the client's branch,
// then copy the data into P_C. Recycled first — copyIn can trigger
// evictions whose side effects reach back into the submit path. The
// client branch always fires (timing), but a stale epoch skips the
// copy-in: the mapping state it would mutate belongs to an incarnation
// a crash-restart already discarded.
func (o *ciOp) done(at sim.Time) {
	c, orig, n, jb, epoch := o.c, o.orig, o.n, o.jb, o.epoch
	o.jb = nil
	o.next = c.ciFree
	c.ciFree = o
	jb(at)
	if epoch == c.epoch {
		c.copyIn(orig, n, disk.OpRead)
	}
}

// NewCRAID assembles a CRAID volume.
//
//   - cacheDisks/cacheBase place the cache partition (paper: the outer,
//     fastest region of every disk — base 0 — or dedicated SSDs);
//   - archiveLayout/archiveDisks/archiveBase place the archive.
//   - sharedPC declares that P_C spreads over all array devices, so an
//     Expand regrows it across new devices (the CRAID-5/CRAID-5+
//     variants); dedicated-cache variants keep P_C fixed.
func NewCRAID(arr *Array, cfg Config, sharedPC bool, cacheDisks []int, cacheBase int64,
	archiveLayout raid.Layout, archiveDisks []int, archiveBase int64) (*CRAID, error) {
	cfg = cfg.withDefaults()
	c := &CRAID{
		latencies:  newLatencies(),
		arr:        arr,
		cfg:        cfg,
		sharedPC:   sharedPC,
		cacheDisks: cacheDisks,
		cacheBase:  cacheBase,
		pa:         newSpan(arr, archiveLayout, archiveDisks, archiveBase),
	}
	c.insEvict = c.insertEvicted
	c.table = newMapIndex(cfg, archiveLayout.DataBlocks())
	if err := c.buildPC(); err != nil {
		return nil, err
	}
	return c, nil
}

// newMapIndex builds the mapping index for cfg: a single tree, or one
// sharded into MapShards contiguous ranges covering the archive's
// address space (the monitor's keys are archive LBAs, so the archive
// capacity fixes the key range).
func newMapIndex(cfg Config, archiveBlocks int64) mapcache.Index {
	if cfg.MapShards <= 1 {
		return mapcache.New()
	}
	span := (archiveBlocks + int64(cfg.MapShards) - 1) / int64(cfg.MapShards)
	if span < 1 {
		span = 1
	}
	return mapcache.NewSharded(cfg.MapShards, span)
}

// buildPC (re)creates the cache partition layout, allocator and policy
// over the current cacheDisks. A bad configuration (an unknown policy
// name) surfaces as an error from NewCRAID; later rebuilds (Expand,
// crash-restart) reuse a configuration that already built once, so
// there a failure is a programmer-error invariant and panics.
func (c *CRAID) buildPC() error {
	group := c.cfg.ParityGroup
	var layout raid.Layout
	switch c.cfg.Level {
	case PCRaid0:
		layout = raid.NewRAID0(len(c.cacheDisks), c.cfg.CachePerDisk, c.cfg.StripeUnit)
	case PCRaid6:
		layout = raid.NewRAID6(len(c.cacheDisks), group, c.cfg.CachePerDisk, c.cfg.StripeUnit)
	default:
		layout = raid.NewRAID5(len(c.cacheDisks), group, c.cfg.CachePerDisk, c.cfg.StripeUnit)
	}
	c.pc = newSpan(c.arr, layout, c.cacheDisks, c.cacheBase)
	c.pcData = layout.DataBlocks()
	policy, err := cache.New(c.cfg.Policy, int(c.pcData), cache.Config{
		WLRUWindow: c.cfg.WLRUWindow,
		// The WLRU victim scan probes dirtiness for a whole window of
		// LRU-tail candidates per eviction; the O(1) membership set
		// keeps that scan off the tree (a Lookup descent per candidate
		// was >50% of replay CPU).
		Dirty: func(k cache.Key) bool {
			return c.table.IsDirty(k)
		},
	})
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.policy = policy
	c.free = freeRuns{}
	c.next = 0
	return nil
}

// Stats returns the monitor counters.
func (c *CRAID) Stats() *Stats { return &c.stats }

// MappingBytes reports the mapping cache's memory footprint (paper
// §4.2 accounting).
func (c *CRAID) MappingBytes() int64 { return c.table.Bytes() }

// CacheDataBlocks returns P_C's data capacity in blocks.
func (c *CRAID) CacheDataBlocks() int64 { return c.pcData }

// DataBlocks implements Volume: the archive capacity (P_C holds copies,
// not extra capacity).
func (c *CRAID) DataBlocks() int64 { return c.pa.layout.DataBlocks() }

// Submit implements Volume, realizing the paper's Fig. 2 control flow.
// It is submitPlanned without a plan, so the direct and the
// multi-queue paths share one join choreography.
func (c *CRAID) Submit(rec trace.Record, done func(sim.Time)) error {
	return c.submitPlanned(rec, nil, done)
}

// readPath serves reads by classifying hit and miss extents inline —
// one mapping-cache descent per extent instead of one per block (see
// the performance notes above) — and applying each as it is found.
// The multi-queue pipeline performs the same classification ahead of
// time and concurrently (plan.go); both paths commit through the same
// applyReadSeg, so their observable behavior is identical by
// construction.
func (c *CRAID) readPath(rec trace.Record, j *join) {
	c.stats.ReadBlocks += rec.Count
	c.classifyTail(rec, j, rec.Block)
}

// classifyTail classifies and applies [b, rec.End()) inline — one
// LookupRun per extent, re-classifying after each application so an
// extent's side effects (an insertion's evictions can land anywhere,
// including later in this record) are observed. The sequential paths
// run it for the whole record; the planner's apply stage enters it
// mid-record when a plan goes stale against the record's own
// mutations.
func (c *CRAID) classifyTail(rec trace.Record, j *join, b int64) {
	end := rec.End()
	for b < end {
		m, n, ok := c.table.LookupRun(b, end-b)
		s := planSeg{n: n, cache: m.Cache, hit: ok}
		if rec.Op == disk.OpRead {
			c.applyReadSeg(j, b, s, rec.Count)
		} else {
			c.applyWriteSeg(j, b, s, rec.Count)
		}
		b += n
	}
}

// applyReadSeg commits one classified read extent: hits redirect to
// P_C; misses are served from P_A and copied into P_C in the
// background (B.1/B.2 in Fig. 2).
func (c *CRAID) applyReadSeg(j *join, b int64, s planSeg, reqSize int64) {
	if s.hit {
		// A run of hits with contiguous cache addresses.
		c.policy.AccessRun(b, s.n, reqSize)
		c.stats.ReadHits += s.n
		c.trackSeq(c.arr.Eng.Now(), 0, s.cache, s.n)
		c.pc.read(j, s.cache, s.n)
		return
	}
	// A run of misses: serve the client from P_A; once the data is in
	// memory, copy it into P_C in the background (pooled ciOp — no
	// closure per miss extent).
	c.trackSeq(c.arr.Eng.Now(), 1, b, s.n)
	o := c.newCIOp(b, s.n, j.branch())
	sub := c.arr.newJoin(o.fn)
	c.pa.read(sub, b, s.n)
	sub.seal(c.arr.Eng.Now())
}

// writePath serves writes: always into P_C (allocate on miss), marking
// blocks dirty. Parity in P_C is maintained with read-modify-write.
// Like readPath, hit and miss extents are discovered at run granularity
// and committed through the shared apply helper.
func (c *CRAID) writePath(rec trace.Record, j *join) {
	c.stats.WriteBlocks += rec.Count
	c.classifyTail(rec, j, rec.Block)
}

// applyWriteSeg commits one classified write extent: hits are
// overwritten in place (marked dirty); misses allocate fresh cache
// slots via insertRuns.
func (c *CRAID) applyWriteSeg(j *join, b int64, s planSeg, reqSize int64) {
	if s.hit {
		c.policy.AccessRun(b, s.n, reqSize)
		if c.gated {
			// Dirty flips are version-exempt but still write node
			// fields a lookahead classification may be reading.
			c.gate.Lock()
			c.table.SetDirtyRun(b, s.n, true)
			c.gate.Unlock()
		} else {
			c.table.SetDirtyRun(b, s.n, true)
		}
		c.stats.WriteHits += s.n
		c.trackSeq(c.arr.Eng.Now(), 0, s.cache, s.n)
		c.pc.write(j, s.cache, s.n)
		return
	}
	c.insertRuns(j, b, s.n, true, disk.OpWrite, reqSize)
}

// copyIn inserts [b, b+n) into P_C as clean copies (background; the
// client was already served from P_A).
func (c *CRAID) copyIn(b, n int64, byOp disk.Op) {
	c.stats.CopyIns += n
	detached := c.arr.newJoin(nil)
	c.insertRuns(detached, b, n, false, byOp, n)
	detached.seal(c.arr.Eng.Now())
	c.flushLog() // background inserts are an apply step of their own
}

// insertRuns allocates cache slots for the logical run [b, b+n),
// updates the mapping cache and policy (evicting as needed), and issues
// the P_C writes attached to j. Each uncached sub-run is evicted-for
// first and then allocated as a whole, so related blocks land in
// contiguous slots — the "long sequential chains" of §4.1. All work is
// done at extent granularity: one LookupRun per sub-run, one policy
// InsertRun per batch, one mapcache InsertRun per allocated fragment.
func (c *CRAID) insertRuns(j *join, b, n int64, dirty bool, byOp disk.Op, reqSize int64) {
	if c.gated {
		// The whole body interleaves index reads with the mutations
		// they steer (insertions, the policy's evictions); a lookahead
		// classification must observe none of it mid-flight.
		c.gate.Lock()
		defer c.gate.Unlock()
	}
	for i := int64(0); i < n; {
		blk := b + i
		m, run, ok := c.table.LookupRun(blk, n-i)
		if ok {
			// Already cached: a concurrent request inserted the blocks
			// between our miss and this (possibly deferred) insert.
			c.policy.AccessRun(blk, run, reqSize)
			if dirty {
				c.table.SetDirtyRun(blk, run, true)
				c.pc.write(j, m.Cache, run)
			}
			i += run
			continue
		}
		// run is the maximal uncached sub-run starting here.
		//
		// Make room first: these insertions may evict, freeing slots
		// the allocation below can then claim as contiguous runs. A
		// victim may be a block of this very batch (possible under
		// priority policies like GDSF, where a large new entry can rank
		// last immediately): such newborns are simply dropped — they
		// have no mapping and no cached data yet. pending[k] tracks
		// whether newborn blk+k still stands; the buffer is reused
		// across calls (the monitor is single-threaded and insertRuns
		// never re-enters itself).
		if int64(cap(c.pending)) < run {
			c.pending = make([]bool, run)
		}
		pending := c.pending[:run]
		for k := range pending {
			pending[k] = true
		}
		c.insBlk, c.insRun, c.insByOp = blk, run, byOp
		c.policy.InsertRun(blk, run, reqSize, c.insEvict)
		c.flushWritebacks()
		// Allocate fragments and bind mappings for surviving blocks,
		// keeping sub-runs of consecutive survivors together.
		for k := int64(0); k < run; {
			if !pending[k] {
				k++
				continue
			}
			m := int64(1)
			for k+m < run && pending[k+m] {
				m++
			}
			for off := int64(0); off < m; {
				start, got := c.allocRun(m - off)
				c.table.InsertRun(blk+k+off, start, got, dirty)
				if dirty {
					// Client-visible write stream at its redirected
					// address.
					c.trackSeq(c.arr.Eng.Now(), 0, start, got)
				}
				c.pc.write(j, start, got)
				off += got
			}
			k += m
		}
		i += run
	}
}

// insertEvicted is the eviction callback insertRuns hands the policy,
// bound once at construction and parameterized through the ins* fields.
// A victim inside the current batch is a sibling newborn displaced
// before it got a mapping or cached data: still a replacement for the
// ratio accounting, but nothing to clean up.
func (c *CRAID) insertEvicted(victim cache.Key) {
	if off := victim - c.insBlk; off >= 0 && off < c.insRun && c.pending[off] {
		c.pending[off] = false
		c.stats.Evictions++
		if c.insByOp == disk.OpRead {
			c.stats.ReadEvictions++
		} else {
			c.stats.WriteEvictions++
		}
		return
	}
	c.evict(victim, c.insByOp)
}

// evict removes a victim chosen by the policy: dirty copies are queued
// for write-back to P_A, clean copies are dropped for free. The actual
// write-back I/O is issued by flushWritebacks, which coalesces victims
// evicted together — replacement sweeps walk blocks that were inserted
// together, so their runs are long.
func (c *CRAID) evict(victim cache.Key, byOp disk.Op) {
	m, ok := c.table.Lookup(victim)
	if !ok {
		// The policy and table are updated in lockstep; a policy entry
		// without a mapping is a programming error.
		panic(fmt.Sprintf("core: policy evicted unmapped block %d", victim))
	}
	c.stats.Evictions++
	if byOp == disk.OpRead {
		c.stats.ReadEvictions++
	} else {
		c.stats.WriteEvictions++
	}
	c.table.Remove(victim)
	if m.Dirty {
		c.stats.DirtyEvictions++
		c.stats.Writebacks++
		c.queueWriteback(victim, m.Cache)
	}
	// The slot is reusable immediately: the simulator models timing,
	// not data, and the write-back read is flushed before any reuse is
	// issued, so it is ordered ahead on the same disk queue.
	c.freeSlot(m.Cache)
}

// queueWriteback records one dirty victim, extending the previous run
// when both its archive address and cache slot are contiguous.
func (c *CRAID) queueWriteback(orig, slot int64) {
	if last := len(c.wb) - 1; last >= 0 &&
		c.wb[last].orig+c.wb[last].n == orig &&
		c.wb[last].slot+c.wb[last].n == slot {
		c.wb[last].n++
		return
	}
	c.wb = append(c.wb, wbRun{orig: orig, slot: slot, n: 1})
}

// flushWritebacks issues the queued dirty write-backs, one I/O chain
// per contiguous run: read the current copies from P_C, then update
// P_A (the 2-read/2-write parity update per extent — the paper's "4
// additional I/Os", amortized over the run).
func (c *CRAID) flushWritebacks() {
	for _, r := range c.wb {
		o := c.newWBOp(r.orig, r.n)
		sub := c.arr.newJoin(o.fn)
		c.pc.read(sub, r.slot, r.n)
		sub.seal(c.arr.Eng.Now())
	}
	c.wb = c.wb[:0]
}

// Expand performs the online upgrade (paper §4.1): dirty blocks are
// written back, the whole of P_C is invalidated, and — for shared-cache
// variants — P_C regrows across the enlarged device set, so new disks
// receive I/O from the moment they are added. P_A is left untouched:
// that is the point of CRAID.
func (c *CRAID) Expand(newDevs []disk.Device) ExpandStats {
	if c.gated {
		c.gate.Lock()
		defer c.gate.Unlock()
	}
	st := ExpandStats{Invalidated: int64(c.table.Len())}
	for _, m := range c.table.DirtyMappings() {
		st.DirtyWriteback++
		c.stats.Writebacks++
		c.queueWriteback(m.Orig, m.Cache)
	}
	c.flushWritebacks()
	c.table.Clear()
	c.stats.Expansions++
	if len(newDevs) > 0 {
		base := c.arr.Devices()
		c.arr.AddDevices(newDevs)
		if c.sharedPC {
			for i := range newDevs {
				c.cacheDisks = append(c.cacheDisks, base+i)
			}
		}
	}
	c.rebuildPC() // resets policy, allocator and (shared) geometry
	c.flushLog()
	return st
}

// rebuildPC is buildPC for a configuration that already built once: a
// failure there is a programmer-error invariant, not an input error.
func (c *CRAID) rebuildPC() {
	if err := c.buildPC(); err != nil {
		panic(err)
	}
}

// ExpandRetain is the paper's §6 "smarter rebalancing" extension: grow
// the array without invalidating P_C. Live cached blocks are migrated
// onto the new cache-partition geometry (read from the old placement,
// parity-written to the new one), keeping the mapping cache and the
// monitor's history intact — hits continue through the upgrade and
// dirty blocks need no write-back. The trade-off against the paper's
// conservative invalidation: every live block moves now, instead of the
// hot subset re-copying on demand later.
func (c *CRAID) ExpandRetain(newDevs []disk.Device) ExpandStats {
	if c.gated {
		// Mid-replay upgrades (fault-plan expand events) fire while a
		// lookahead plan stage may be classifying: swapping the policy
		// and regrowing P_C are structural mutations, same as Expand's.
		c.gate.Lock()
		defer c.gate.Unlock()
	}
	var st ExpandStats
	if len(newDevs) > 0 {
		base := c.arr.Devices()
		c.arr.AddDevices(newDevs)
		if c.sharedPC {
			for i := range newDevs {
				c.cacheDisks = append(c.cacheDisks, base+i)
			}
		}
	}
	c.stats.Expansions++
	if !c.sharedPC {
		return st // dedicated cache: geometry unchanged, nothing moves
	}

	// Collect live slots before the geometry changes.
	slots := make([]int64, 0, c.table.Len())
	c.table.Walk(func(m mapcache.Mapping) bool {
		slots = append(slots, m.Cache)
		return true
	})
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })

	oldPC := c.pc
	oldNext, oldFree := c.next, c.free
	c.rebuildPC()
	// Keep the allocator state: old slot numbers remain reserved (the
	// new P_C is strictly larger for a growth expansion).
	if c.pcData < oldNext {
		panic("core: ExpandRetain shrank the cache partition")
	}
	c.next, c.free = oldNext, oldFree
	// Rebuild the policy at the new capacity, preserving residency
	// (recency order within the retained set is not preserved — the
	// policy relearns it, which costs nothing extra).
	c.table.Walk(func(m mapcache.Mapping) bool {
		c.policy.Insert(m.Orig, 1)
		return true
	})

	// Physically migrate live blocks, coalescing consecutive slots. The
	// epoch stamp drops the re-placement write if a crash-restart tears
	// this incarnation down while the old-placement read is in flight.
	epoch := c.epoch
	for i := 0; i < len(slots); {
		j := i + 1
		for j < len(slots) && slots[j] == slots[j-1]+1 {
			j++
		}
		start, n := slots[i], int64(j-i)
		st.Migrated += n
		var up func(sim.Time)
		if c.upJoin != nil {
			up = c.upJoin.branch()
		}
		sub := newJoin(func(at sim.Time) {
			if c.epoch != epoch {
				if up != nil {
					up(at)
				}
				return
			}
			detached := c.arr.newJoin(up)
			c.pc.write(detached, start, n)
			detached.seal(c.arr.Eng.Now())
		})
		oldPC.read(sub, start, n)
		sub.seal(c.arr.Eng.Now())
		i = j
	}
	return st
}

// ExpandWith runs Expand (retain=false) or ExpandRetain (retain=true)
// and additionally reports, via done, the instant the upgrade's
// background I/O — dirty write-backs or live-block migrations — has
// fully drained. That instant minus the call instant is the
// upgrade-latency KPI the fault fabric records for expand@ events. An
// upgrade that issues no background I/O drains at the call instant.
// Chains torn down by a crash-restart (stale epoch) still count as
// drained when their timing completes, so done always fires.
func (c *CRAID) ExpandWith(newDevs []disk.Device, retain bool, done func(sim.Time)) ExpandStats {
	var up *join
	if done != nil {
		up = c.arr.newJoin(done)
		c.upJoin = up
	}
	var st ExpandStats
	if retain {
		st = c.ExpandRetain(newDevs)
	} else {
		st = c.Expand(newDevs)
	}
	if up != nil {
		c.upJoin = nil
		up.seal(c.arr.Eng.Now())
	}
	return st
}

// SetMappingLog enables persistent logging of dirty translations to w
// (paper §4.2's failure resilience). Call before any I/O.
//
// When w batches its writes behind a Flush method — mapcache.LogRing
// is the intended one — the controller flushes it once per apply step,
// taking the log's backing Write off the apply hot path while keeping
// the byte stream (and therefore crash recovery) identical to a
// synchronous log's.
// When Config.MapLogSync is set and w supports SetSyncOnFlush (the
// LogRing does), every flushed buffer is additionally fsynced by the
// log's background writer before the next one is written.
func (c *CRAID) SetMappingLog(w io.Writer) {
	c.table.SetLog(w)
	c.logFlush, _ = w.(interface{ Flush() })
	c.logErr, _ = w.(interface{ Err() error })
	if c.cfg.MapLogSync {
		if s, ok := w.(interface{ SetSyncOnFlush(bool) }); ok {
			s.SetSyncOnFlush(true)
		}
	}
}

// flushLog marks an apply-step boundary for a batching mapping log and
// reports the log's sticky error state (LogRing.Err): a dying log
// device fails the run at the next apply step instead of surfacing as
// a teardown surprise. Background flush points (copy-ins, expansions)
// discard the error — it is sticky, so the next Submit returns it.
func (c *CRAID) flushLog() error {
	if c.logFlush != nil {
		c.logFlush.Flush()
	}
	if c.logErr != nil {
		if err := c.logErr.Err(); err != nil {
			return fmt.Errorf("core: mapping log: %w", err)
		}
	}
	return nil
}

// Recover replays a dirty-translation log after a crash: dirty cached
// copies are reinstated (they are the only ones differing from the
// archive), clean entries start cold, exactly as §4.2 prescribes. It
// must be called on a fresh controller before any I/O; it returns the
// number of recovered mappings. The log carries no index geometry, so
// a log written under any MapShards setting recovers into a controller
// configured with any other — the index rebuilds its own shards as the
// mappings are re-inserted.
func (c *CRAID) Recover(r io.Reader) (int, error) {
	if c.table.Len() != 0 || c.next != 0 {
		return 0, fmt.Errorf("core: Recover on a non-fresh controller")
	}
	return c.recoverLog(r)
}

// recoverLog reinstates the dirty translations a log image carries
// into an empty mapping state (fresh construction or post-crash
// teardown).
func (c *CRAID) recoverLog(r io.Reader) (int, error) {
	ms, err := mapcache.Recover(r)
	if err != nil {
		return 0, err
	}
	used := make(map[int64]bool, len(ms))
	var maxSlot int64 = -1
	for _, m := range ms {
		if m.Cache >= c.pcData {
			// The log predates a geometry change; such copies are
			// unrecoverable from P_C and must be treated as lost.
			return 0, fmt.Errorf("core: logged slot %d beyond cache capacity %d", m.Cache, c.pcData)
		}
		c.table.Insert(m)
		c.policy.Insert(m.Orig, 1)
		used[m.Cache] = true
		if m.Cache > maxSlot {
			maxSlot = m.Cache
		}
	}
	// Reserve the recovered slots: bump the allocator past the highest
	// and return the gaps to the free list.
	c.next = maxSlot + 1
	for s := int64(0); s < c.next; s++ {
		if !used[s] {
			c.freeSlot(s)
		}
	}
	return len(ms), nil
}

// CrashRestart models the controller dying and coming back mid-run
// (paper §4.2's failure scenario, exercised live): the mapping cache,
// policy state and allocator are torn down as a crash would lose them,
// the controller incarnation (epoch) advances so in-flight background
// side effects — copy-ins, write-backs, ExpandRetain migrations — land
// as timing only, and the dirty-translation state is reinstated from
// log, exactly as Recover does on a fresh controller. A nil log
// restarts cold. Requests already in flight keep their device timing;
// requests submitted after the restart see the recovered state. It
// returns the number of recovered mappings.
func (c *CRAID) CrashRestart(log io.Reader) (int, error) {
	if c.gated {
		// A lookahead plan stage may be classifying: tearing the index
		// down is the most structural mutation there is.
		c.gate.Lock()
		defer c.gate.Unlock()
	}
	c.epoch++
	c.wb = c.wb[:0] // queued write-backs die with the incarnation
	c.table.Clear() // bumps every shard version: all outstanding plans go stale
	c.rebuildPC()
	if log == nil {
		return 0, nil
	}
	return c.recoverLog(log)
}

// allocRun reserves up to n consecutive P_C data blocks and returns the
// run. Contiguity policy (realizing §4.1's "long sequential chains"):
// a free run that fits the request wins (first-fit over coalesced
// runs), then the bump region, then the largest free fragment. The
// caller loops until its need is covered.
func (c *CRAID) allocRun(n int64) (start, got int64) {
	if s, g, ok := c.free.takeFit(n); ok {
		return s, g
	}
	if c.next < c.pcData {
		got = n
		if got > c.pcData-c.next {
			got = c.pcData - c.next
		}
		start = c.next
		c.next += got
		return start, got
	}
	if s, g, ok := c.free.takeLargest(n); ok {
		return s, g
	}
	panic("core: cache partition allocator exhausted (policy capacity mismatch)")
}

// alloc returns one free P_C data block.
func (c *CRAID) alloc() int64 {
	s, _ := c.allocRun(1)
	return s
}

func (c *CRAID) freeSlot(s int64) { c.free.add(s, 1) }

// freeRuns tracks free cache slots as sorted, coalesced runs so that
// blocks evicted together free a contiguous region that the next
// copy-in can claim as one sequential chain.
type freeRuns struct {
	runs []blockRange // sorted by start, non-adjacent
}

type blockRange struct{ start, end int64 } // [start, end)

// add returns [start, start+n) to the free pool, merging neighbours.
func (f *freeRuns) add(start, n int64) {
	end := start + n
	i := sort.Search(len(f.runs), func(i int) bool { return f.runs[i].start >= start })
	// Merge with predecessor?
	if i > 0 && f.runs[i-1].end == start {
		i--
		start = f.runs[i].start
		f.runs = append(f.runs[:i], f.runs[i+1:]...)
	}
	// Merge with successor?
	if i < len(f.runs) && f.runs[i].start == end {
		end = f.runs[i].end
		f.runs = append(f.runs[:i], f.runs[i+1:]...)
	}
	f.runs = append(f.runs, blockRange{})
	copy(f.runs[i+1:], f.runs[i:])
	f.runs[i] = blockRange{start, end}
}

// takeFit removes and returns a run of exactly n slots from the first
// free run large enough (first-fit), or reports ok=false.
func (f *freeRuns) takeFit(n int64) (start, got int64, ok bool) {
	for i := range f.runs {
		r := &f.runs[i]
		if r.end-r.start >= n {
			start = r.start
			r.start += n
			if r.start == r.end {
				f.runs = append(f.runs[:i], f.runs[i+1:]...)
			}
			return start, n, true
		}
	}
	return 0, 0, false
}

// takeLargest removes and returns the largest free fragment (capped at
// n), or reports ok=false when the pool is empty.
func (f *freeRuns) takeLargest(n int64) (start, got int64, ok bool) {
	if len(f.runs) == 0 {
		return 0, 0, false
	}
	best := 0
	for i, r := range f.runs {
		if r.end-r.start > f.runs[best].end-f.runs[best].start {
			best = i
		}
	}
	r := &f.runs[best]
	got = r.end - r.start
	if got > n {
		got = n
	}
	start = r.start
	r.start += got
	if r.start == r.end {
		f.runs = append(f.runs[:best], f.runs[best+1:]...)
	}
	return start, got, true
}

// size reports total free slots (used by tests).
func (f *freeRuns) size() int64 {
	var n int64
	for _, r := range f.runs {
		n += r.end - r.start
	}
	return n
}
