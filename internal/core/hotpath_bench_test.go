package core

import (
	"math/rand"
	"testing"

	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// benchCRAID builds a larger shared-cache CRAID on null devices so the
// benchmark measures monitor/redirector CPU cost, not simulated disks.
func benchCRAID(eng *sim.Engine) *CRAID {
	arr := nullArray(eng, 10, 1<<30)
	disks := make([]int, 10)
	for i := range disks {
		disks[i] = i
	}
	paLayout := raid.NewRAID5(10, 10, 400_000, 32)
	return mustCRAID(arr, Config{
		Policy:       "LRU",
		CachePerDisk: 8192,
		ParityGroup:  10,
		StripeUnit:   32,
	}, true, disks, 0, paLayout, disks, 8192)
}

// benchSubmit replays reqs repeatedly through one warmed CRAID, so the
// numbers reflect the monitor's steady state (where churn should reuse
// freelisted nodes, not allocate).
func benchSubmit(b *testing.B, reqs []trace.Record) {
	var blocks int64
	for _, r := range reqs {
		blocks += r.Count
	}
	eng := sim.NewEngine()
	c := benchCRAID(eng)
	for _, r := range reqs { // warm: fill P_C and the mapping cache
		c.Submit(r, nil)
		eng.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			c.Submit(r, nil)
			eng.Run()
		}
	}
	b.ReportMetric(float64(blocks), "blocks/op")
}

// seqMix builds a 60/40 read/write stream of 256-block sequential
// requests over a working set larger than P_C.
func seqMix(n int) []trace.Record {
	rng := rand.New(rand.NewSource(42))
	reqs := make([]trace.Record, n)
	var cursor int64
	for i := range reqs {
		op := disk.OpRead
		if rng.Float64() < 0.4 {
			op = disk.OpWrite
		}
		reqs[i] = trace.Record{Op: op, Block: cursor % 3_000_000, Count: 256}
		cursor += 256
	}
	return reqs
}

// zipfMix builds small skewed random requests (hot-spot traffic).
func zipfMix(n int) []trace.Record {
	rng := rand.New(rand.NewSource(43))
	z := rand.NewZipf(rng, 1.2, 1, 2_999_999)
	reqs := make([]trace.Record, n)
	for i := range reqs {
		op := disk.OpRead
		if rng.Float64() < 0.4 {
			op = disk.OpWrite
		}
		reqs[i] = trace.Record{Op: op, Block: int64(z.Uint64()), Count: 8}
	}
	return reqs
}

// warmMix builds a 60/40 read/write stream of 256-block requests over a
// working set that fits entirely inside P_C, so after one warm pass every
// request is a pure hit — the monitor's steady state, where the per-access
// cost is one index probe plus policy metadata maintenance and the paths
// must not allocate at all.
func warmMix(n int) []trace.Record {
	rng := rand.New(rand.NewSource(44))
	reqs := make([]trace.Record, n)
	for i := range reqs {
		op := disk.OpRead
		if rng.Float64() < 0.4 {
			op = disk.OpWrite
		}
		reqs[i] = trace.Record{Op: op, Block: 256 * rng.Int63n(256), Count: 256}
	}
	return reqs
}

// BenchmarkSubmitSequential measures the monitor hot path on 256-block
// sequential requests — the case where extent-granularity operations
// collapse ~512 per-block tree/map traversals into a handful.
func BenchmarkSubmitSequential(b *testing.B) {
	benchSubmit(b, seqMix(400))
}

// BenchmarkSubmitWarm measures the all-hit steady state: the working set
// is cache-resident, so every record costs exactly the monitor's fixed
// overhead (classification + policy access + redirected I/O) and the
// whole Submit path must stay allocation-free (see TestSubmitWarmAllocFree).
func BenchmarkSubmitWarm(b *testing.B) {
	reqs := warmMix(400)
	benchSubmit(b, reqs)
	b.ReportMetric(float64(len(reqs)), "records/op")
}

// BenchmarkSubmitZipfian measures skewed small-request traffic.
func BenchmarkSubmitZipfian(b *testing.B) {
	benchSubmit(b, zipfMix(2000))
}

// BenchmarkSubmitMixed interleaves both patterns.
func BenchmarkSubmitMixed(b *testing.B) {
	s, z := seqMix(200), zipfMix(1000)
	mixed := make([]trace.Record, 0, len(s)+len(z))
	for i := 0; i < len(z); i++ {
		if i%5 == 0 && i/5 < len(s) {
			mixed = append(mixed, s[i/5])
		}
		mixed = append(mixed, z[i])
	}
	benchSubmit(b, mixed)
}
