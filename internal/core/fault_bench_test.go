package core

import (
	"testing"

	"craid/internal/fault"
	"craid/internal/sim"
	"craid/internal/trace"
)

// benchFaultParams resolves the fault benches' pipeline shape from the
// CRAID_TEST_LOOKAHEAD / CRAID_TEST_AFFINITY knobs (default: the
// sequential single-shard controller). An overlapped or affinity run
// needs shard groups for the workers to own, so engaging either knob
// raises shards and workers too — CI's bench-smoke job uses this to
// time the degraded path under the deep pipeline.
func benchFaultParams() (shards, workers, lookahead int, affinity bool) {
	lookahead, affinity = testLookahead(), testAffinity()
	shards, workers = 1, 1
	if lookahead > 0 || affinity {
		shards, workers = 16, 4
	}
	return
}

// BenchmarkReplayFaultFree is the healthy baseline for
// BenchmarkReplayDegraded: the identical workload and controller with
// no fault plan installed (the per-submission fault check is a single
// nil test).
func BenchmarkReplayFaultFree(b *testing.B) {
	recs := randomWorkload(5, 2000, 12000)
	shards, workers, lookahead, affinity := benchFaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		c, _ := newMQCRAIDAffinity(eng, 64, shards, workers, lookahead, affinity)
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayDegraded measures the degraded-mode replay path: a
// random workload against a CRAID whose cache partition runs with one
// disk down from time zero, so every request touching the dead disk
// pays the reconstruction fan-out.
func BenchmarkReplayDegraded(b *testing.B) {
	recs := randomWorkload(5, 2000, 12000)
	plan, err := fault.ParsePlan("seed=9;fail:2@0s")
	if err != nil {
		b.Fatal(err)
	}
	shards, workers, lookahead, affinity := benchFaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		c, arr := newMQCRAIDAffinity(eng, 64, shards, workers, lookahead, affinity)
		rt, err := InstallFaults(arr, c, plan, FaultOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			b.Fatal(err)
		}
		if err := rt.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayDoubleFault times the compound-failure path: a second
// disk dies while the first one's rebuild is walking a RAID-6 cache
// partition, so the fabric re-plans every remaining batch around two
// erasures and client I/O pays double-degraded reconstruction
// throughout.
func BenchmarkReplayDoubleFault(b *testing.B) {
	recs := randomWorkload(5, 2000, 12000)
	plan, err := fault.ParsePlan("seed=9;fail:2@0s;rebuild:2@5ms,rate=64;fail:4@8ms")
	if err != nil {
		b.Fatal(err)
	}
	shards, workers, lookahead, affinity := benchFaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		c, arr := newMQCRAID6Affinity(eng, 64, shards, workers, lookahead, affinity)
		rt, err := InstallFaults(arr, c, plan, FaultOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			b.Fatal(err)
		}
		if err := rt.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
