package core

import (
	"testing"

	"craid/internal/fault"
	"craid/internal/sim"
	"craid/internal/trace"
)

// BenchmarkReplayFaultFree is the healthy baseline for
// BenchmarkReplayDegraded: the identical workload and controller with
// no fault plan installed (the per-submission fault check is a single
// nil test).
func BenchmarkReplayFaultFree(b *testing.B) {
	recs := randomWorkload(5, 2000, 12000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		c, _ := newMQCRAID(eng, 64, 1, 1, 0)
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayDegraded measures the degraded-mode replay path: a
// random workload against a CRAID whose cache partition runs with one
// disk down from time zero, so every request touching the dead disk
// pays the reconstruction fan-out.
func BenchmarkReplayDegraded(b *testing.B) {
	recs := randomWorkload(5, 2000, 12000)
	plan, err := fault.ParsePlan("seed=9;fail:2@0s")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		c, arr := newMQCRAID(eng, 64, 1, 1, 0)
		rt := InstallFaults(arr, c, plan, FaultOptions{})
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			b.Fatal(err)
		}
		if err := rt.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
