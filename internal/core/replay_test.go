package core

import (
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"craid/internal/disk"
	"craid/internal/sim"
	"craid/internal/trace"
)

// errAfterReader yields n good records, then a parse error.
type errAfterReader struct {
	n   int
	err error
}

func (e *errAfterReader) Next() (trace.Record, error) {
	if e.n <= 0 {
		return trace.Record{}, e.err
	}
	e.n--
	return trace.Record{Op: disk.OpRead, Block: int64(e.n), Count: 1}, nil
}

func TestReplayParseErrorStopsAndPropagates(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	want := errors.New("bad line")
	n, err := Replay(eng, c, &errAfterReader{n: 10, err: want})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if n != 10 {
		t.Fatalf("replayed %d records before the error, want 10", n)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	n, err := Replay(eng, c, trace.NewSlice(nil))
	if err != nil || n != 0 {
		t.Fatalf("empty trace: n=%d err=%v", n, err)
	}
}

func TestReplayErrorOnFirstRecord(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	want := errors.New("corrupt header")
	n, err := Replay(eng, c, &errAfterReader{n: 0, err: want})
	if !errors.Is(err, want) || n != 0 {
		t.Fatalf("n=%d err=%v, want 0/%v", n, err, want)
	}
}

// TestReplayStreamsManyBatches replays well past the ring capacity so
// the refill path (reader ahead of, level with, and behind the
// simulation) is exercised, and checks nothing is dropped, duplicated
// or reordered.
func TestReplayStreamsManyBatches(t *testing.T) {
	const records = replayBatchSize*replayRingDepth*3 + 17
	recs := make([]trace.Record, records)
	for i := range recs {
		recs[i] = trace.Record{
			Time:  sim.Time(i) * sim.Microsecond,
			Op:    disk.OpRead,
			Block: int64(i % 4000),
			Count: 1,
		}
	}
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	n, err := Replay(eng, c, trace.NewSlice(recs))
	if err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("replayed %d records, want %d", n, records)
	}
	if got := c.Stats().ReadBlocks; got != records {
		t.Fatalf("volume saw %d blocks, want %d", got, records)
	}
}

// slowReader paces the parser slower than the simulation to force the
// "ring drained" path (one real sleep per would-be batch keeps the
// test fast while still starving the ring).
type slowReader struct {
	inner trace.Reader
	n     int
}

func (s *slowReader) Next() (trace.Record, error) {
	s.n++
	if s.n%replayBatchSize == 0 {
		time.Sleep(time.Millisecond)
	} else {
		runtime.Gosched()
	}
	return s.inner.Next()
}

func TestReplaySurvivesSlowParser(t *testing.T) {
	recs := make([]trace.Record, 2*replayBatchSize)
	for i := range recs {
		recs[i] = trace.Record{Op: disk.OpWrite, Block: int64(i % 100), Count: 1}
	}
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	n, err := Replay(eng, c, &slowReader{inner: trace.NewSlice(recs)})
	if err != nil || n != int64(len(recs)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

// TestReplayReaderGoroutineExits pins that Replay does not leak its
// reader goroutine — neither on clean EOF nor when the replay aborts
// with the reader mid-stream.
func TestReplayReaderGoroutineExits(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		eng := sim.NewEngine()
		c, _ := newTestCRAID(eng, 64)
		if _, err := Replay(eng, c, trace.NewSlice(make([]trace.Record, 10))); err != nil {
			// Zero-value records are Count=0 reads; Submit tolerates
			// them, so no error is expected.
			t.Fatal(err)
		}
		// Abort path: error long before the stream ends keeps the
		// reader blocked on a full ring until stop() releases it.
		eng2 := sim.NewEngine()
		c2, _ := newTestCRAID(eng2, 64)
		big := make([]trace.Record, 100*replayBatchSize)
		_, _ = Replay(eng2, c2, &errorThenStream{recs: trace.NewSlice(big)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Fatalf("goroutines grew from %d to %d: reader leak", base, got)
	}
}

// errorThenStream fails the third record so the replay aborts while the
// reader still has plenty to stream.
type errorThenStream struct {
	recs trace.Reader
	n    int
}

func (e *errorThenStream) Next() (trace.Record, error) {
	e.n++
	if e.n == 3 {
		return trace.Record{}, errors.New("abort")
	}
	rec, err := e.recs.Next()
	if err == io.EOF {
		return trace.Record{}, io.EOF
	}
	return rec, err
}

// TestReplayWithStatsShape pins the deterministic parts of
// ReplayStats: record and batch counts follow the configured batch
// size, and the high-water mark stays within the ring.
func TestReplayWithStatsShape(t *testing.T) {
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{Op: disk.OpRead, Block: int64(i % 50), Count: 1}
	}
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	cfg := ReplayConfig{BatchSize: 8, RingDepth: 2}
	n, st, err := ReplayWith(eng, c, trace.NewSlice(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || st.Records != 100 {
		t.Fatalf("records: n=%d stats=%d, want 100", n, st.Records)
	}
	if want := int64(13); st.Batches != want { // ceil(100/8)
		t.Fatalf("batches = %d, want %d", st.Batches, want)
	}
	if st.RingHighWater < 1 || st.RingHighWater > cfg.RingDepth {
		t.Fatalf("ring high water %d outside [1, %d]", st.RingHighWater, cfg.RingDepth)
	}
	if st.ReaderStalls < 0 || st.ReplayStalls < 0 {
		t.Fatalf("negative stall counters: %+v", st)
	}
}

// stallReader yields the first batch instantly, then blocks batch 2
// on a gate the consumer opens only after fully draining batch 1 — so
// the simulation is at the empty ring, deterministically, when the
// parser resumes. That is the "parser is the bottleneck" case
// ReplayStalls is specified to count (the pipeline-filling wait for
// the very first batch is exempt).
type stallReader struct {
	inner trace.Reader
	gate  chan struct{}
	n     int
}

func (s *stallReader) Next() (trace.Record, error) {
	s.n++
	if s.n == replayBatchSize+1 {
		<-s.gate
	}
	return s.inner.Next()
}

// gateVolume opens the gate once batch 1's last record is submitted.
type gateVolume struct {
	Volume
	gate chan struct{}
	n    int
}

func (g *gateVolume) Submit(rec trace.Record, done func(sim.Time)) error {
	err := g.Volume.Submit(rec, done)
	g.n++
	if g.n == replayBatchSize {
		close(g.gate)
	}
	return err
}

func TestReplayWithSlowParserCountsStalls(t *testing.T) {
	recs := make([]trace.Record, 2*replayBatchSize)
	for i := range recs {
		recs[i] = trace.Record{Op: disk.OpWrite, Block: int64(i % 100), Count: 1}
	}
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	gate := make(chan struct{})
	n, st, err := ReplayWith(eng, &gateVolume{Volume: c, gate: gate},
		&stallReader{inner: trace.NewSlice(recs), gate: gate}, ReplayConfig{})
	if err != nil || n != int64(len(recs)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if st.ReplayStalls < 1 {
		t.Errorf("stalled parser produced no replay stalls: %+v", st)
	}
}

// TestReplayDefaultsUnchanged pins that the zero ReplayConfig keeps
// the documented defaults.
func TestReplayDefaultsUnchanged(t *testing.T) {
	cfg := ReplayConfig{}.withDefaults()
	if cfg.BatchSize != replayBatchSize || cfg.RingDepth != replayRingDepth {
		t.Fatalf("defaults = %+v, want {%d %d}", cfg, replayBatchSize, replayRingDepth)
	}
}
