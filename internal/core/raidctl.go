package core

import (
	"craid/internal/disk"
	"craid/internal/metrics"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// Volume is a block volume that serves trace records; all controllers
// implement it.
type Volume interface {
	// Submit serves one request; done (optional) fires at completion.
	// The error reports a request that cannot be served correctly —
	// data lost beyond the layout's redundancy (LostError), or a dying
	// mapping-log device — while its timing still completes through
	// done so the simulation's clocks stay comparable.
	Submit(rec trace.Record, done func(sim.Time)) error
	// DataBlocks is the logical capacity.
	DataBlocks() int64
	// ReadLatency and WriteLatency expose the response-time
	// distributions collected so far.
	ReadLatency() *metrics.LatencyHist
	WriteLatency() *metrics.LatencyHist
}

// latencies is the embedded response-time collection shared by
// controllers, plus the optional volume-level sequentiality tracker
// (Fig. 5's metric: how sequential the *redirected* logical access
// stream is — for CRAID that is P_C addresses, where the re-layout of
// scattered hot data is visible).
type latencies struct {
	read  *metrics.LatencyHist
	write *metrics.LatencyHist
	seq   *metrics.SeqTracker

	// degRead/degWrite additionally collect requests submitted while at
	// least one device was down (the degraded window); degActive is
	// toggled by the fault runtime.
	degRead   *metrics.LatencyHist
	degWrite  *metrics.LatencyHist
	degActive bool

	recFree *recOp // freelist of response-time recorders
}

func newLatencies() latencies {
	return latencies{
		read:     metrics.NewLatencyHist(),
		write:    metrics.NewLatencyHist(),
		degRead:  metrics.NewLatencyHist(),
		degWrite: metrics.NewLatencyHist(),
	}
}

// ReadLatency implements Volume.
func (l *latencies) ReadLatency() *metrics.LatencyHist { return l.read }

// WriteLatency implements Volume.
func (l *latencies) WriteLatency() *metrics.LatencyHist { return l.write }

// SetVolumeSeq attaches a tracker for the volume-level sequentiality
// of the (post-redirection) logical access stream.
func (l *latencies) SetVolumeSeq(st *metrics.SeqTracker) { l.seq = st }

// setDegraded brackets the degraded window: requests submitted while
// on are additionally recorded in the degraded histograms.
func (l *latencies) setDegraded(on bool) { l.degActive = on }

// DegradedReadLatency exposes the response times of reads submitted
// during degraded windows (empty on healthy runs).
func (l *latencies) DegradedReadLatency() *metrics.LatencyHist { return l.degRead }

// DegradedWriteLatency is the write-side counterpart.
func (l *latencies) DegradedWriteLatency() *metrics.LatencyHist { return l.degWrite }

// trackSeq records one logical access on stream (streams separate P_C
// from P_A addresses so redirection boundaries don't fake contiguity).
func (l *latencies) trackSeq(at sim.Time, stream int, block, count int64) {
	if l.seq != nil {
		l.seq.Add(at, stream, block, count)
	}
}

// recOp is one pending response-time record: the wrapper record hands
// to a request's join. Pooled on the latencies (fn caches the method
// value) so Submit allocates nothing per request; the join fires fn
// exactly once, which recycles the op.
type recOp struct {
	l     *latencies
	op    disk.Op
	deg   bool // submitted during a degraded window
	start sim.Time
	done  func(sim.Time)
	fn    func(sim.Time)
	next  *recOp // freelist link
}

// record wraps done to also record the response time.
func (l *latencies) record(op disk.Op, start sim.Time, done func(sim.Time)) func(sim.Time) {
	r := l.recFree
	if r == nil {
		r = &recOp{l: l}
		r.fn = r.run
	} else {
		l.recFree = r.next
		r.next = nil
	}
	r.op, r.start, r.done = op, start, done
	r.deg = l.degActive
	return r.fn
}

// run fires at request completion: record the latency, recycle the op
// (before done, which may submit the next request and reclaim it).
func (r *recOp) run(at sim.Time) {
	l := r.l
	if r.op == disk.OpRead {
		l.read.Add(at - r.start)
		if r.deg {
			l.degRead.Add(at - r.start)
		}
	} else {
		l.write.Add(at - r.start)
		if r.deg {
			l.degWrite.Add(at - r.start)
		}
	}
	done := r.done
	r.done = nil
	r.next = l.recFree
	l.recFree = r
	if done != nil {
		done(at)
	}
}

// RAIDController is a plain RAID volume over a single layout — the
// paper's RAID-5 and RAID-5+ baselines (simulated in their ideal,
// fully-restriped state, as in §5).
type RAIDController struct {
	latencies
	span *span
}

// NewRAIDController builds a plain controller over the array devices
// listed in disks, with the partition starting at base on each device.
func NewRAIDController(arr *Array, layout raid.Layout, disks []int, base int64) *RAIDController {
	return &RAIDController{latencies: newLatencies(), span: newSpan(arr, layout, disks, base)}
}

// DataBlocks implements Volume.
func (c *RAIDController) DataBlocks() int64 { return c.span.layout.DataBlocks() }

// Submit implements Volume.
func (c *RAIDController) Submit(rec trace.Record, done func(sim.Time)) error {
	arr := c.span.arr
	now := arr.Eng.Now()
	var lost0 int64
	if arr.faults != nil {
		lost0 = arr.faults.stats.LostExtents
	}
	c.trackSeq(now, 0, rec.Block, rec.Count)
	j := arr.newJoin(c.record(rec.Op, now, done))
	if rec.Op == disk.OpRead {
		c.span.read(j, rec.Block, rec.Count)
	} else {
		c.span.write(j, rec.Block, rec.Count)
	}
	j.seal(now)
	if f := arr.faults; f != nil && f.stats.LostExtents > lost0 {
		return &LostError{Op: rec.Op, Block: rec.Block, Count: rec.Count, Extents: f.stats.LostExtents - lost0}
	}
	return nil
}
