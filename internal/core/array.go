// Package core implements the CRAID architecture (paper §3–§4) and the
// baseline RAID controllers it is evaluated against.
//
// The pieces map one-to-one onto the paper's design:
//
//   - Array: the physical device set plus instrumentation (per-disk
//     load for workload-distribution analysis, sequentiality tracking,
//     queue/concurrency sampling).
//   - RAIDController: a plain volume over one raid.Layout (RAID-5 or
//     RAID-5+), doing read-modify-write parity updates on writes. These
//     are the paper's RAID-5 / RAID-5+ baselines in their ideal state.
//   - CRAID: the contribution — an I/O monitor identifying the working
//     set, a mapping cache (internal/mapcache), an I/O redirector, a
//     cache partition P_C striped RAID-5 across all disks (or dedicated
//     SSDs for the CRAID-5ssd variants), and an archive partition P_A
//     behind it. Online expansion invalidates P_C (writing dirty blocks
//     back) and regrows it over the enlarged disk set, leaving P_A
//     untouched.
package core

import (
	"fmt"

	"craid/internal/disk"
	"craid/internal/metrics"
	"craid/internal/raid"
	"craid/internal/sim"
)

// Array is a set of devices driven by one simulation engine, with
// array-level instrumentation shared by all controllers.
type Array struct {
	Eng     *sim.Engine
	devices []disk.Device

	// Optional instrumentation; nil disables.
	Load *metrics.LoadTracker // per-disk per-second load (cv analysis)
	Seq  *metrics.SeqTracker  // physical sequentiality (Fig. 5)

	queueHist *metrics.LatencyHist // sample unit: queue depth, abusing ns=depth
	concHist  *metrics.LatencyHist // concurrent busy devices per submit

	// retains[i] reports whether device i keeps the *Request beyond
	// Submit; devices that don't (instant models) are fed the shared
	// scratch request, so hot instant-mode runs allocate no requests.
	retains []bool
	scratch disk.Request

	// freelists for the per-I/O control structures. The array (like
	// its engine) is single-threaded, so no locking; fired joins and
	// completed RMW ops recycle here instead of garbage-collecting at
	// millions per simulated second.
	joinFree *join
	rmwFree  *rmw

	// faults is the fault-injection state, nil on healthy runs: every
	// hot-path check reduces to one nil test, keeping the healthy
	// submit path's cost (and allocation count) unchanged.
	faults *faultState
}

// nonRetaining is implemented by device models that drop the *Request
// before Submit returns.
type nonRetaining interface{ RetainsRequests() bool }

func retainsRequests(d disk.Device) bool {
	if nr, ok := d.(nonRetaining); ok {
		return nr.RetainsRequests()
	}
	return true
}

// queuer is implemented by device models that expose queue state.
type queuer interface {
	QueueDepth() int
	Busy() bool
}

// NewArray returns an array over devices.
func NewArray(eng *sim.Engine, devices []disk.Device) *Array {
	a := &Array{
		Eng:       eng,
		devices:   devices,
		queueHist: metrics.NewLatencyHist(),
		concHist:  metrics.NewLatencyHist(),
	}
	for _, d := range devices {
		a.retains = append(a.retains, retainsRequests(d))
	}
	return a
}

// Devices returns the device count.
func (a *Array) Devices() int { return len(a.devices) }

// Device returns device i.
func (a *Array) Device(i int) disk.Device { return a.devices[i] }

// AddDevices appends newly installed devices (array expansion) and
// widens the load tracker.
func (a *Array) AddDevices(devs []disk.Device) {
	a.devices = append(a.devices, devs...)
	for _, d := range devs {
		a.retains = append(a.retains, retainsRequests(d))
	}
	if a.Load != nil {
		a.Load.Resize(len(a.devices))
	}
}

// QueueStats returns mean, 99th-percentile and max sampled I/O queue
// depth across all submits (Table 5's "Ioq" columns).
func (a *Array) QueueStats() (mean float64, p99, max int64) {
	return float64(a.queueHist.Mean()), int64(a.queueHist.Percentile(0.99)), int64(a.queueHist.Max())
}

// ConcurrencyStats returns mean, 99th-percentile and max concurrently
// busy devices sampled at submit time (Table 5's "Cdev" columns).
func (a *Array) ConcurrencyStats() (mean float64, p99, max int64) {
	return float64(a.concHist.Mean()), int64(a.concHist.Percentile(0.99)), int64(a.concHist.Max())
}

// Submit issues a request on device dev, recording instrumentation.
func (a *Array) Submit(dev int, op disk.Op, block, count int64, done func(sim.Time)) {
	a.submit(dev, op, block, count, true, done)
}

// submit is Submit with control over sequentiality accounting: parity
// read-modify-write legs carry trackSeq=false so the Fig. 5 metric
// reflects the *data* access pattern per disk, as the paper measures,
// rather than being drowned by interleaved parity traffic. Load and
// queue accounting always include everything.
func (a *Array) submit(dev int, op disk.Op, block, count int64, trackSeq bool, done func(sim.Time)) {
	if f := a.faults; f != nil {
		// Wrap the submission in a pooled retry op: transient device
		// errors resubmit with exponential backoff instead of surfacing
		// to the controller.
		r := f.newRetry(a, dev, op, block, count, trackSeq, done)
		a.issue(dev, op, block, count, trackSeq, r.doneFn, r.failFn)
		return
	}
	a.issue(dev, op, block, count, trackSeq, done, nil)
}

// issue performs one submission attempt.
func (a *Array) issue(dev int, op disk.Op, block, count int64, trackSeq bool, done, fail func(sim.Time)) {
	if dev < 0 || dev >= len(a.devices) {
		panic(fmt.Sprintf("core: device index %d out of range (%d devices)", dev, len(a.devices)))
	}
	now := a.Eng.Now()
	if a.Load != nil {
		a.Load.Add(now, dev, count*disk.BlockSize)
	}
	if a.Seq != nil && trackSeq {
		a.Seq.Add(now, dev, block, count)
	}
	if q, ok := a.devices[dev].(queuer); ok {
		a.queueHist.Add(sim.Time(q.QueueDepth()))
		busy := 0
		for _, d := range a.devices {
			if qd, ok := d.(queuer); ok && qd.Busy() {
				busy++
			}
		}
		a.concHist.Add(sim.Time(busy))
	}
	if a.retains[dev] {
		a.devices[dev].Submit(&disk.Request{Op: op, Block: block, Count: count, Done: done, Fail: fail})
		return
	}
	a.scratch = disk.Request{Op: op, Block: block, Count: count, Done: done, Fail: fail}
	a.devices[dev].Submit(&a.scratch)
}

// deviceDown reports whether the array routes around dev (failed and
// not yet rebuilt). One nil test on healthy runs.
func (a *Array) deviceDown(dev int) bool {
	f := a.faults
	return f != nil && dev < len(f.failed) && f.failed[dev]
}

// join collects the completions of a dynamic set of I/O branches and
// fires its callback once after all branches finish (with the latest
// completion time). Branches may be added until seal is called.
type join struct {
	pending int
	sealed  bool
	fired   bool
	last    sim.Time
	fn      func(sim.Time)

	// completeFn caches the j.complete method value so each branch()
	// hands out the same func instead of allocating a new one. It is
	// bound to the join's identity, so it survives pool recycling.
	completeFn func(sim.Time)

	arr  *Array // owning pool; nil for pool-less joins (tests)
	next *join  // freelist link
}

// newJoin returns an unpooled join calling fn on completion; fn may be
// nil (detached background work). Hot paths use Array.newJoin instead.
func newJoin(fn func(sim.Time)) *join { return &join{fn: fn} }

// newJoin returns a pooled join: once fired, it recycles itself onto
// the array's freelist.
func (a *Array) newJoin(fn func(sim.Time)) *join {
	j := a.joinFree
	if j == nil {
		return &join{fn: fn, arr: a}
	}
	a.joinFree = j.next
	j.pending, j.sealed, j.fired, j.last = 0, false, false, 0
	j.fn, j.next = fn, nil
	return j
}

// branch registers one more outstanding I/O and returns its completion
// callback.
func (j *join) branch() func(sim.Time) {
	if j.sealed {
		panic("core: branch after seal")
	}
	j.pending++
	if j.completeFn == nil {
		j.completeFn = j.complete
	}
	return j.completeFn
}

func (j *join) complete(at sim.Time) {
	if at > j.last {
		j.last = at
	}
	j.pending--
	j.maybeFire()
}

// seal declares that no more branches will be added. A join with zero
// branches fires immediately.
func (j *join) seal(now sim.Time) {
	if j.sealed {
		return
	}
	j.sealed = true
	if j.last < now {
		j.last = now
	}
	j.maybeFire()
}

func (j *join) maybeFire() {
	if j.sealed && j.pending == 0 && !j.fired {
		j.fired = true
		fn, last := j.fn, j.last
		if j.arr != nil {
			// A fired join can have no outstanding references: every
			// branch callback has run and seal was called. Recycle
			// before running fn — fn must not touch j afterwards.
			j.fn = nil
			j.next = j.arr.joinFree
			j.arr.joinFree = j
		}
		if fn != nil {
			fn(last)
		}
	}
}

// span is a raid.Layout bound to concrete array devices and a
// partition base offset: the unit controllers issue logical I/O
// against.
type span struct {
	arr    *Array
	layout raid.Layout
	disks  []int           // layout disk index → array device index
	base   int64           // partition start block on each device
	dual   raid.DualParity // layout's Q-parity view, nil without one

	// curJoin is the join the cached walk callbacks attach I/O to.
	// Passing a fresh closure to ForEachExtent (an interface call) would
	// heap-allocate it per walk; instead rdFn/wrFn are bound once and
	// read the current target here. Safe because device completions are
	// always delivered through the engine's event queue — a span walk
	// can never re-enter the same span.
	curJoin    *join
	rdFn, wrFn func(raid.Extent)

	// red is the layout's reconstruction geometry, nil when the layout
	// survives no device loss (including a SpreadLayout over RAID-0,
	// which asserts as Redundant but reports zero parity units).
	red raid.Redundant

	// Pending degraded-read run: consecutive extents of one read walk
	// that land device-contiguously on the same dead disk coalesce into
	// a single reconstruction (one peer read per survivor, one
	// aggregated decode charge for the whole run) instead of one
	// fan-out per stripe-row unit. degN == 0 means no run is pending;
	// flushDegradedRead (fault.go) drains it.
	degDisk int   // layout disk index of the run's dead disk
	degLog  int64 // logical address of the run's first block (geometry probe)
	degBlk  int64 // device block where the run starts
	degN    int64 // blocks accumulated
}

func newSpan(arr *Array, layout raid.Layout, disks []int, base int64) *span {
	if len(disks) != layout.Disks() {
		panic(fmt.Sprintf("core: span over %d devices, layout wants %d", len(disks), layout.Disks()))
	}
	s := &span{arr: arr, layout: layout, disks: disks, base: base}
	s.dual, _ = layout.(raid.DualParity)
	if red, ok := layout.(raid.Redundant); ok && red.ParityUnits() > 0 {
		s.red = red
	}
	s.rdFn = s.readExtent
	s.wrFn = s.writeExtent
	return s
}

// read issues reads covering [block, block+count) and attaches them to j.
func (s *span) read(j *join, block, count int64) {
	s.curJoin = j
	s.layout.ForEachExtent(block, count, s.rdFn)
	if s.degN > 0 {
		s.flushDegradedRead()
	}
	s.curJoin = nil
}

// readExtent issues one extent's read against curJoin. Extents on a
// dead disk are not reconstructed one by one: device-contiguous runs on
// the same dead disk accumulate (a large request walking consecutive
// stripe rows hits the dead disk's units back to back whenever the dead
// disk carries data in those rows — the uniform-row invariant makes the
// unit ranges adjacent) and flush as one reconstruction at the first
// break or at the end of the walk.
func (s *span) readExtent(e raid.Extent) {
	dev := s.disks[e.Data.Disk]
	if s.arr.deviceDown(dev) {
		if s.degN > 0 {
			if s.degDisk == e.Data.Disk && s.degBlk+s.degN == e.Data.Block {
				s.degN += e.Count
				return
			}
			s.flushDegradedRead()
		}
		s.degDisk, s.degLog, s.degBlk, s.degN = e.Data.Disk, e.Logical, e.Data.Block, e.Count
		return
	}
	s.arr.Submit(dev, disk.OpRead, s.base+e.Data.Block, e.Count, s.curJoin.branch())
}

// rmw is one extent's read-modify-write cycle in flight: the pre-read
// locations double as the write locations. Pooled on the Array so the
// simulator's hottest control structure allocates nothing at steady
// state; phase2Fn caches the method value across recycles.
type rmw struct {
	arr      *Array
	devs     [3]int
	blks     [3]int64
	nloc     int
	count    int64
	writes   func(sim.Time) // fires when all final writes complete
	phase2Fn func(sim.Time)
	next     *rmw // freelist link
}

func (a *Array) newRMW() *rmw {
	r := a.rmwFree
	if r == nil {
		r = &rmw{arr: a}
		r.phase2Fn = r.phase2
		return r
	}
	a.rmwFree = r.next
	r.next = nil
	return r
}

// phase2 runs when the pre-reads finish: issue the final data+parity
// writes, then recycle the op.
func (r *rmw) phase2(sim.Time) {
	inner := r.arr.newJoin(r.writes)
	for i := 0; i < r.nloc; i++ {
		r.arr.submit(r.devs[i], disk.OpWrite, r.blks[i], r.count, i == 0, inner.branch())
	}
	inner.seal(r.arr.Eng.Now())
	r.writes = nil
	r.next = r.arr.rmwFree
	r.arr.rmwFree = r
}

// write issues a small-write against the span. Layouts with parity pay
// the full read-modify-write cycle per extent: read old data and old
// parity, then write new data and new parity — the paper's 4 I/Os;
// dual-parity (RAID-6) layouts extend both phases to the Q parity (6
// I/Os, the §6 cost the paper predicts). Layouts without parity write
// directly. j sees only the final writes.
func (s *span) write(j *join, block, count int64) {
	s.curJoin = j
	s.layout.ForEachExtent(block, count, s.wrFn)
	s.curJoin = nil
}

// writeExtent issues one extent's write (or read-modify-write cycle)
// against curJoin.
func (s *span) writeExtent(e raid.Extent) {
	if s.arr.faults != nil && s.extentDown(e) {
		s.degradedWrite(e)
		return
	}
	if e.Parity.Disk < 0 {
		s.arr.Submit(s.disks[e.Data.Disk], disk.OpWrite, s.base+e.Data.Block, e.Count, s.curJoin.branch())
		return
	}
	r := s.arr.newRMW()
	r.devs[0], r.blks[0] = s.disks[e.Data.Disk], s.base+e.Data.Block
	r.devs[1], r.blks[1] = s.disks[e.Parity.Disk], s.base+e.Parity.Block
	r.nloc = 2
	if s.dual != nil {
		if q, ok := s.dual.QParityOf(e.Logical); ok {
			r.devs[2], r.blks[2] = s.disks[q.Disk], s.base+q.Block
			r.nloc = 3
		}
	}
	r.count = e.Count
	r.writes = s.curJoin.branch() // completes when all final writes do
	phase1 := s.arr.newJoin(r.phase2Fn)
	// The pre-reads (including the old-data read, which retraces
	// the data position) are RMW mechanics, not access pattern.
	for i := 0; i < r.nloc; i++ {
		s.arr.submit(r.devs[i], disk.OpRead, r.blks[i], r.count, false, phase1.branch())
	}
	phase1.seal(s.arr.Eng.Now())
}
