package core

import (
	"os"
	"strconv"
	"testing"

	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// testLookahead is the PlanLookahead baseline the multi-queue tests
// build controllers with. CI re-runs the equivalence suite with
// CRAID_TEST_LOOKAHEAD set to 1 and 2 so every property here is checked
// with the plan stage overlapping the apply stage, at both one and two
// batches of depth (tests that sweep lookahead explicitly override it
// per controller).
func testLookahead() int {
	if n, err := strconv.Atoi(os.Getenv("CRAID_TEST_LOOKAHEAD")); err == nil && n > 0 {
		return n
	}
	return 0
}

// testAffinity is the WorkerAffinity baseline: CI re-runs the
// equivalence suite with CRAID_TEST_AFFINITY=1 so every property is
// also checked with persistent shard-group planner workers.
func testAffinity() bool {
	return os.Getenv("CRAID_TEST_AFFINITY") == "1"
}

// newMQCRAID is newShardedCRAID with a monitor-worker count and an
// explicit lookahead depth (worker affinity from CRAID_TEST_AFFINITY).
func newMQCRAID(eng *sim.Engine, cachePerDisk int64, shards, workers, lookahead int) (*CRAID, *Array) {
	return newMQCRAIDAffinity(eng, cachePerDisk, shards, workers, lookahead, testAffinity())
}

// newMQCRAIDAffinity is newMQCRAID with an explicit affinity setting,
// for the tests that sweep the full pipeline matrix.
func newMQCRAIDAffinity(eng *sim.Engine, cachePerDisk int64, shards, workers, lookahead int, affinity bool) (*CRAID, *Array) {
	arr := nullArray(eng, 4, 100000)
	disks := []int{0, 1, 2, 3}
	paLayout := raid.NewRAID5(4, 4, 4096, 4)
	c := mustCRAID(arr, Config{
		Policy:         "WLRU",
		CachePerDisk:   cachePerDisk,
		ParityGroup:    4,
		StripeUnit:     4,
		MapShards:      shards,
		MonitorWorkers: workers,
		PlanLookahead:  lookahead,
		WorkerAffinity: affinity,
	}, true, disks, 0, paLayout, disks, cachePerDisk)
	return c, arr
}

// mqOutcome is everything the acceptance criteria pin: the full Stats
// struct, per-device I/O totals, the index population, and the
// response-time distributions (histogram fingerprints: count, mean,
// p50, p99, max — TestMonitorWorkersLatencyHistogramsIdentical
// additionally compares full bucket contents).
type mqOutcome struct {
	stats    Stats
	reads    int64
	writes   int64
	maps     int
	readLat  string
	writeLat string
}

func replayMQ(t *testing.T, recs []trace.Record, cachePerDisk int64, shards, workers int, cfg ReplayConfig) (mqOutcome, MQStats) {
	return replayMQLookahead(t, recs, cachePerDisk, shards, workers, testLookahead(), cfg)
}

func replayMQLookahead(t *testing.T, recs []trace.Record, cachePerDisk int64, shards, workers, lookahead int, cfg ReplayConfig) (mqOutcome, MQStats) {
	return replayMQMatrix(t, recs, cachePerDisk, shards, workers, lookahead, testAffinity(), cfg)
}

func replayMQMatrix(t *testing.T, recs []trace.Record, cachePerDisk int64, shards, workers, lookahead int, affinity bool, cfg ReplayConfig) (mqOutcome, MQStats) {
	t.Helper()
	eng := sim.NewEngine()
	c, arr := newMQCRAIDAffinity(eng, cachePerDisk, shards, workers, lookahead, affinity)
	n, _, err := ReplayWith(eng, c, trace.NewSlice(recs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("replayed %d of %d", n, len(recs))
	}
	r, w := ioTotals(arr)
	return mqOutcome{
		stats: *c.Stats(), reads: r, writes: w, maps: c.table.Len(),
		readLat:  c.ReadLatency().String(),
		writeLat: c.WriteLatency().String(),
	}, *c.MQ()
}

// TestMonitorWorkersLatencyHistogramsIdentical pins the strongest form
// of the determinism contract: the full response-time histograms —
// every bucket, not just summary statistics — are bit-identical
// between the sequential and the multi-queue controller.
func TestMonitorWorkersLatencyHistogramsIdentical(t *testing.T) {
	recs := randomWorkload(17, 3000, 12000)
	eng1 := sim.NewEngine()
	ref, _ := newMQCRAID(eng1, 64, 1, 1, 0)
	if _, _, err := ReplayWith(eng1, ref, trace.NewSlice(recs), ReplayConfig{}); err != nil {
		t.Fatal(err)
	}
	for _, lookahead := range []int{0, 1, 2} {
		for _, affinity := range []bool{false, true} {
			eng2 := sim.NewEngine()
			mq, _ := newMQCRAIDAffinity(eng2, 64, 16, 8, lookahead, affinity)
			if _, _, err := ReplayWith(eng2, mq, trace.NewSlice(recs), ReplayConfig{}); err != nil {
				t.Fatal(err)
			}
			if !mq.ReadLatency().Equal(ref.ReadLatency()) {
				t.Errorf("lookahead=%d affinity=%v: read histograms diverged: %v vs %v", lookahead, affinity, mq.ReadLatency(), ref.ReadLatency())
			}
			if !mq.WriteLatency().Equal(ref.WriteLatency()) {
				t.Errorf("lookahead=%d affinity=%v: write histograms diverged: %v vs %v", lookahead, affinity, mq.WriteLatency(), ref.WriteLatency())
			}
		}
	}
}

// TestMonitorWorkersStatsBitIdentical is the PR's acceptance property:
// Stats, monitor ratios and per-device counters are bit-identical
// between the sequential controller and the multi-queue pipeline at
// every shards × workers × lookahead combination, on random workloads
// that mix hits, misses, evictions and cross-shard extents. Run it
// with -race: under lookahead the plan stage classifies the live index
// concurrently with the apply stage's mutations (serialized only by
// the plan gate), so this is also the gate's race proof.
func TestMonitorWorkersStatsBitIdentical(t *testing.T) {
	seeds := []int64{1, 7, 23}
	affinities := []bool{false, true}
	if raceEnabled {
		// One seed and the CI job's affinity setting: the race matrix
		// jobs sweep CRAID_TEST_AFFINITY, and the plain run covers the
		// full cross product.
		seeds = seeds[:1]
		affinities = []bool{testAffinity()}
	}
	for _, seed := range seeds {
		recs := randomWorkload(seed, 4000, 12000)
		ref, _ := replayMQMatrix(t, recs, 64, 1, 1, 0, false, ReplayConfig{})
		for _, shards := range []int{1, 2, 5, 16} {
			for _, workers := range []int{1, 2, 8} {
				for _, lookahead := range []int{0, 1, 2} {
					for _, affinity := range affinities {
						got, _ := replayMQMatrix(t, recs, 64, shards, workers, lookahead, affinity, ReplayConfig{})
						if got != ref {
							t.Errorf("seed %d shards=%d workers=%d lookahead=%d affinity=%v: outcome diverged\n got %+v\nwant %+v",
								seed, shards, workers, lookahead, affinity, got, ref)
						}
					}
				}
			}
		}
	}
}

// TestLookaheadDepthEquivalence sweeps the plan stage deep: depths 0-3
// exercise the plan ring at every occupancy (the ring holds depth+1
// stitch arenas, and the stage channel buffers depth-1 batches), with
// and without affinity workers, against the sequential reference. Small
// batches force many ring rotations so a depth-dependent aliasing bug
// would corrupt a plan the apply stage is still draining.
func TestLookaheadDepthEquivalence(t *testing.T) {
	recs := randomWorkload(31, 3000, 12000)
	affinities := []bool{false, true}
	if raceEnabled {
		affinities = []bool{testAffinity()} // CI jobs sweep the env knob
	}
	ref, _ := replayMQMatrix(t, recs, 64, 1, 1, 0, false, ReplayConfig{})
	for _, lookahead := range []int{0, 1, 2, 3} {
		for _, affinity := range affinities {
			for _, cfg := range []ReplayConfig{{}, {BatchSize: 32, RingDepth: 8}} {
				got, mq := replayMQMatrix(t, recs, 64, 16, 8, lookahead, affinity, cfg)
				if got != ref {
					t.Errorf("lookahead=%d affinity=%v cfg=%+v: outcome diverged\n got %+v\nwant %+v",
						lookahead, affinity, cfg, got, ref)
				}
				if mq.Planned == 0 {
					t.Errorf("lookahead=%d affinity=%v: planner never ran", lookahead, affinity)
				}
			}
		}
	}
}

// TestMonitorWorkersBatchSizeInvariant pins that the plan/apply split
// is insensitive to how Replay batches the stream: any batch size and
// ring depth produce the sequential controller's outcome.
func TestMonitorWorkersBatchSizeInvariant(t *testing.T) {
	recs := randomWorkload(11, 3000, 12000)
	ref, _ := replayMQ(t, recs, 64, 1, 1, ReplayConfig{})
	for _, cfg := range []ReplayConfig{
		{BatchSize: 16, RingDepth: 1},
		{BatchSize: 100, RingDepth: 2},
		{BatchSize: 1024, RingDepth: 4},
	} {
		got, _ := replayMQ(t, recs, 64, 16, 8, cfg)
		if got != ref {
			t.Errorf("cfg %+v: outcome diverged\n got %+v\nwant %+v", cfg, got, ref)
		}
	}
}

// TestPlannerFastPathApplies proves the concurrent fast path actually
// runs (plans validated and applied without re-classification), not
// just the replan fallback: after warming a cache big enough to hold
// the whole working set, hit traffic mutates nothing structural, so
// plans stay valid.
func TestPlannerFastPathApplies(t *testing.T) {
	const span = 6000
	// pcData = 3 data disks × 4096 blocks = 12288 > span: nothing evicts.
	warm := make([]trace.Record, 0, span/8)
	for b := int64(0); b < span; b += 8 {
		warm = append(warm, trace.Record{
			Time: sim.Time(len(warm)) * sim.Microsecond, Op: disk.OpWrite, Block: b, Count: 8,
		})
	}
	hot := randomWorkload(3, 2000, span)
	base := warm[len(warm)-1].Time + sim.Microsecond
	for i := range hot {
		hot[i].Time += base
	}
	recs := append(append([]trace.Record{}, warm...), hot...)

	ref, _ := replayMQ(t, recs, 4096, 1, 1, ReplayConfig{})
	got, mq := replayMQ(t, recs, 4096, 16, 8, ReplayConfig{})
	if got != ref {
		t.Errorf("outcome diverged\n got %+v\nwant %+v", got, ref)
	}
	if mq.Batches == 0 || mq.Planned == 0 {
		t.Fatalf("planner never ran: %+v", mq)
	}
	if mq.Applied == 0 {
		t.Errorf("no plan survived validation — the fast path is untested: %+v", mq)
	}
	// The warm phase inserts (structural), so some replans must occur
	// too: both paths are exercised in one replay.
	if mq.Replanned == 0 {
		t.Errorf("no plan was invalidated — the fallback path is untested: %+v", mq)
	}
	if mq.Applied+mq.Replanned != mq.Planned {
		t.Errorf("planned %d but applied %d + replanned %d", mq.Planned, mq.Applied, mq.Replanned)
	}
}

// TestPlannerDisabledWhenNotConcurrent pins the degradation contract:
// one worker, or a single-shard index, plans nothing (Submit runs the
// sequential path directly).
func TestPlannerDisabledWhenNotConcurrent(t *testing.T) {
	recs := randomWorkload(2, 500, 4000)
	for _, tc := range []struct{ shards, workers int }{{16, 1}, {1, 8}} {
		_, mq := replayMQ(t, recs, 64, tc.shards, tc.workers, ReplayConfig{})
		if mq.Batches != 0 || mq.Planned != 0 || mq.Applied != 0 || mq.Replanned != 0 {
			t.Errorf("shards=%d workers=%d: planner ran: %+v", tc.shards, tc.workers, mq)
		}
	}
}

// TestSubmitDirectBypassesPlanner pins that direct Submit calls on a
// multi-queue-configured controller behave sequentially and still
// match the reference (expansion tests and examples drive Submit
// directly).
func TestSubmitDirectBypassesPlanner(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newMQCRAID(eng, 64, 16, 8, testLookahead())
	eng2 := sim.NewEngine()
	ref, _ := newMQCRAID(eng2, 64, 1, 1, 0)
	for i := int64(0); i < 300; i++ {
		op := disk.OpRead
		if i%3 == 0 {
			op = disk.OpWrite
		}
		submitAndRun(eng, c, op, i*37%4000, 1+i%16)
		submitAndRun(eng2, ref, op, i*37%4000, 1+i%16)
	}
	if *c.Stats() != *ref.Stats() {
		t.Errorf("direct Submit diverged\n got %+v\nwant %+v", *c.Stats(), *ref.Stats())
	}
	if got := *c.MQ(); got != (MQStats{}) {
		t.Errorf("direct Submit engaged the planner: %+v", got)
	}
}
