//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. See
// race_off_test.go for why the equivalence matrices key off it.
const raceEnabled = true
