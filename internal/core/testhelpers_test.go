package core

import "craid/internal/raid"

// mustCRAID is NewCRAID for tests whose configurations are valid by
// construction.
func mustCRAID(arr *Array, cfg Config, sharedPC bool, cacheDisks []int, cacheBase int64,
	archiveLayout raid.Layout, archiveDisks []int, archiveBase int64) *CRAID {
	c, err := NewCRAID(arr, cfg, sharedPC, cacheDisks, cacheBase, archiveLayout, archiveDisks, archiveBase)
	if err != nil {
		panic(err)
	}
	return c
}
