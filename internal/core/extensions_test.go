package core

import (
	"bytes"
	"testing"

	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
)

// newLevelCRAID builds a 6-disk shared-cache CRAID on null devices with
// the given cache-partition redundancy level.
func newLevelCRAID(eng *sim.Engine, level PCLevel) (*CRAID, *Array) {
	arr := nullArray(eng, 6, 100000)
	disks := []int{0, 1, 2, 3, 4, 5}
	paLayout := raid.NewRAID5(6, 6, 4096, 4)
	c := mustCRAID(arr, Config{
		CachePerDisk: 64,
		ParityGroup:  6,
		StripeUnit:   4,
		Level:        level,
	}, true, disks, 0, paLayout, disks, 64)
	return c, arr
}

func TestPCLevelWriteCosts(t *testing.T) {
	// Write-miss parity cost per the redundancy level: RAID-0 writes
	// once; RAID-5 pays 2R+2W; RAID-6 pays 3R+3W (the §6 prediction).
	cases := []struct {
		level  PCLevel
		reads  int64
		writes int64
	}{
		{PCRaid0, 0, 1},
		{PCRaid5, 2, 2},
		{PCRaid6, 3, 3},
	}
	for _, c := range cases {
		eng := sim.NewEngine()
		cr, arr := newLevelCRAID(eng, c.level)
		submitAndRun(eng, cr, disk.OpWrite, 100, 4)
		r, w := ioTotals(arr)
		if r != c.reads || w != c.writes {
			t.Errorf("%v write miss: %d reads %d writes, want %d/%d",
				c.level, r, w, c.reads, c.writes)
		}
	}
}

func TestPCLevelCapacities(t *testing.T) {
	// Same per-disk budget, different data capacity: RAID-0 > RAID-5 >
	// RAID-6.
	caps := map[PCLevel]int64{}
	for _, level := range []PCLevel{PCRaid0, PCRaid5, PCRaid6} {
		eng := sim.NewEngine()
		c, _ := newLevelCRAID(eng, level)
		caps[level] = c.CacheDataBlocks()
	}
	if !(caps[PCRaid0] > caps[PCRaid5] && caps[PCRaid5] > caps[PCRaid6]) {
		t.Errorf("capacity ordering wrong: %v", caps)
	}
}

func TestPCLevelString(t *testing.T) {
	if PCRaid0.String() != "RAID-0" || PCRaid5.String() != "RAID-5" || PCRaid6.String() != "RAID-6" {
		t.Error("PCLevel.String mismatch")
	}
}

func TestExpandRetainKeepsCachedState(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTestCRAID(eng, 64)
	// Populate the cache: 2 dirty, 2 clean.
	submitAndRun(eng, c, disk.OpWrite, 10, 2)
	submitAndRun(eng, c, disk.OpRead, 100, 2)
	if c.table.Len() != 4 {
		t.Fatalf("precondition: %d mappings, want 4", c.table.Len())
	}

	r0, w0 := ioTotals(arr)
	st := c.ExpandRetain([]disk.Device{
		disk.NewNullDevice(eng, "new4", 100000),
		disk.NewNullDevice(eng, "new5", 100000),
	})
	eng.Run()

	if st.Migrated != 4 {
		t.Errorf("Migrated = %d, want 4 (all live blocks)", st.Migrated)
	}
	if st.DirtyWriteback != 0 {
		t.Errorf("DirtyWriteback = %d, want 0 (retained, not invalidated)", st.DirtyWriteback)
	}
	if c.table.Len() != 4 || c.policy.Len() != 4 {
		t.Errorf("mappings/policy = %d/%d after retain, want 4/4", c.table.Len(), c.policy.Len())
	}
	// Migration I/O happened: reads from old placement, parity writes
	// to the new one.
	r1, w1 := ioTotals(arr)
	if r1 == r0 || w1 == w0 {
		t.Error("retain expansion issued no migration I/O")
	}

	// Hits continue: re-reading the retained blocks is a cache hit.
	hits0 := c.Stats().ReadHits
	submitAndRun(eng, c, disk.OpRead, 10, 2)
	if c.Stats().ReadHits != hits0+2 {
		t.Errorf("retained blocks did not hit after expansion")
	}
	// Dirty state survived.
	m, ok := c.table.Lookup(10)
	if !ok || !m.Dirty {
		t.Error("dirty flag lost across retain expansion")
	}
}

func TestExpandRetainDedicatedCacheIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 6, 100000)
	paLayout := raid.NewRAID5(4, 4, 4096, 4)
	c := mustCRAID(arr, Config{CachePerDisk: 64, ParityGroup: 2, StripeUnit: 4},
		false, []int{4, 5}, 0, paLayout, []int{0, 1, 2, 3}, 0)
	submitAndRun(eng, c, disk.OpWrite, 5, 1)
	st := c.ExpandRetain([]disk.Device{disk.NewNullDevice(eng, "new", 100000)})
	eng.Run()
	if st.Migrated != 0 {
		t.Errorf("dedicated cache migrated %d blocks, want 0", st.Migrated)
	}
	if c.table.Len() != 1 {
		t.Error("dedicated cache lost mappings on expansion")
	}
}

func TestCRAIDRecoverRestoresDirtyMappings(t *testing.T) {
	var log bytes.Buffer

	// First life: write some blocks (dirty), read others (clean).
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	c.SetMappingLog(&log)
	submitAndRun(eng, c, disk.OpWrite, 10, 3) // dirty
	submitAndRun(eng, c, disk.OpRead, 100, 2) // clean
	wantDirty := c.table.DirtyMappings()
	if len(wantDirty) != 3 {
		t.Fatalf("precondition: %d dirty mappings, want 3", len(wantDirty))
	}

	// Crash; second life recovers from the log.
	eng2 := sim.NewEngine()
	c2, arr2 := newTestCRAID(eng2, 64)
	n, err := c2.Recover(&log)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recovered %d mappings, want 3 (dirty only)", n)
	}
	// Clean entries were invalidated, dirty ones are resident and
	// redirect to P_C.
	if _, ok := c2.table.Lookup(100); ok {
		t.Error("clean mapping survived the crash")
	}
	r0, _ := ioTotals(arr2)
	submitAndRun(eng2, c2, disk.OpRead, 10, 3)
	r1, _ := ioTotals(arr2)
	if c2.Stats().ReadHits != 3 {
		t.Errorf("recovered blocks did not hit: hits=%d", c2.Stats().ReadHits)
	}
	if r1-r0 != 1 {
		t.Errorf("recovered read issued %d device reads, want 1 (from P_C)", r1-r0)
	}
	// Allocator must not hand out recovered slots: new insertions get
	// fresh slots.
	submitAndRun(eng2, c2, disk.OpWrite, 500, 1)
	m, _ := c2.table.Lookup(500)
	for _, d := range wantDirty {
		if m.Cache == d.Cache {
			t.Errorf("allocator reused recovered slot %d", m.Cache)
		}
	}
}

func TestCRAIDRecoverRejectsNonFresh(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	submitAndRun(eng, c, disk.OpWrite, 1, 1)
	if _, err := c.Recover(bytes.NewReader(nil)); err == nil {
		t.Error("Recover on a used controller did not error")
	}
}

func TestCRAIDRecoverRejectsOversizedSlot(t *testing.T) {
	var log bytes.Buffer
	eng := sim.NewEngine()
	big, _ := newTestCRAID(eng, 4096) // large P_C
	big.SetMappingLog(&log)
	// Fill enough to use high slot numbers.
	for i := int64(0); i < 300; i++ {
		submitAndRun(eng, big, disk.OpWrite, i*10, 1)
	}
	// Recover into a much smaller P_C: slots beyond capacity must be
	// detected rather than silently mis-addressed.
	eng2 := sim.NewEngine()
	small, _ := newTinyCRAID(eng2, 2)
	if _, err := small.Recover(&log); err == nil {
		t.Error("oversized logged slot not rejected")
	}
}
