package core

import (
	"fmt"
	"io"

	"craid/internal/disk"
	"craid/internal/fault"
	"craid/internal/raid"
	"craid/internal/sim"
)

// FaultOptions tunes the fault runtime; zero values take the defaults.
type FaultOptions struct {
	// RetryBase is the backoff before the first resubmission of a
	// transiently-failed request; it doubles per attempt. Default 1ms.
	RetryBase sim.Time
	// MaxAttempts bounds submissions per request (initial + retries).
	// Default 4.
	MaxAttempts int
	// ReconPerBlock is the compute cost of reconstructing one block
	// from surviving units, per erasure the decode solves (XOR for the
	// first, GF(256) for the second). Default 2µs.
	ReconPerBlock sim.Time
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.RetryBase <= 0 {
		o.RetryBase = sim.Millisecond
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 4
	}
	if o.ReconPerBlock <= 0 {
		o.ReconPerBlock = 2 * sim.Microsecond
	}
	return o
}

// FaultStats aggregates what the fault fabric did to one run. All
// counters are deterministic for a given plan + seed at every monitor
// shards/workers/lookahead setting.
type FaultStats struct {
	Failures   int64 // DiskFail events fired
	Transients int64 // device completions carrying an injected error
	Retries    int64 // resubmissions after a transient error
	Permanent  int64 // requests abandoned after the retry budget

	DegradedReads  int64 // read extents served by reconstruction
	DegradedBlocks int64 // blocks so served
	PeerReads      int64 // surviving-unit reads issued for reconstruction
	DegradedWrites int64 // write extents committed with a dead leg
	LostExtents    int64 // extents beyond the layout's redundancy

	RebuildRows     int64    // stripe-row units reconstructed
	RebuildBlocks   int64    // blocks rewritten onto replacement disks
	RebuildLostRows int64    // rows unrecoverable: parity budget exceeded mid-walk
	RebuildRestarts int64    // rebuilds restarted from row zero by a crash
	RebuildStart    sim.Time // first rebuild's start instant
	RebuildEnd      sim.Time // last rebuild's completion instant

	Restarts          int64 // crash-restart events survived
	RecoveredMappings int64 // dirty translations reinstated from the log

	Upgrades          int64    // expand events fired
	ExpandMigrated    int64    // blocks migrated by retain upgrades
	ExpandWriteback   int64    // dirty blocks written back by invalidating upgrades
	ExpandInvalidated int64    // mappings dropped by invalidating upgrades
	ExpandStart       sim.Time // first expand event's instant
	ExpandEnd         sim.Time // last upgrade's background-I/O drain instant
}

// RebuildDuration reports the wall-clock (simulated) span from the
// first rebuild start to the last completion, 0 if none ran.
func (s *FaultStats) RebuildDuration() sim.Time {
	if s.RebuildEnd <= s.RebuildStart {
		return 0
	}
	return s.RebuildEnd - s.RebuildStart
}

// UpgradeLatency reports the span from the first expand event to the
// instant the last upgrade's background I/O — dirty write-backs or
// live-block migrations — fully drained, 0 if no upgrade ran or none
// issued background I/O. This is the interference KPI: how long the
// upgrade competed with client traffic for the device queues.
func (s *FaultStats) UpgradeLatency() sim.Time {
	if s.ExpandEnd <= s.ExpandStart {
		return 0
	}
	return s.ExpandEnd - s.ExpandStart
}

// faultState is the array-side fault machinery. It exists only while a
// plan is installed; every hot-path check on healthy runs is a single
// nil test.
type faultState struct {
	stats         FaultStats
	failed        []bool   // device index → routed around
	retryBase     sim.Time // first retry backoff (doubles per attempt)
	maxAttempts   int
	reconPerBlock sim.Time
	retryFree     *retryOp
	reconFree     *reconOp
	degFree       *degWriteOp
	peerBuf       []int // scratch for Redundant.RowPeers
}

func (f *faultState) ensure(dev int) {
	for len(f.failed) <= dev {
		f.failed = append(f.failed, false)
	}
}

// LostError reports that a submission touched extents beyond the
// layout's surviving redundancy: with more devices down than parity
// units, the data is unrecoverable and the request errors (its timing
// still completes, so histograms stay comparable).
type LostError struct {
	Op      disk.Op
	Block   int64
	Count   int64
	Extents int64
}

func (e *LostError) Error() string {
	return fmt.Sprintf("core: %s [%d,+%d) lost %d extent(s) beyond redundancy",
		e.Op, e.Block, e.Count, e.Extents)
}

// retryOp is one logical device submission being shepherded through
// transient errors: on an error completion it resubmits after an
// exponentially growing backoff until the attempt budget runs out.
// Pooled like the array's other per-I/O control structures.
type retryOp struct {
	arr      *Array
	dev      int
	op       disk.Op
	block    int64
	count    int64
	trackSeq bool
	attempt  int
	done     func(sim.Time)
	doneFn   func(sim.Time)
	failFn   func(sim.Time)
	retryFn  func()
	next     *retryOp
}

func (f *faultState) newRetry(a *Array, dev int, op disk.Op, block, count int64, trackSeq bool, done func(sim.Time)) *retryOp {
	r := f.retryFree
	if r == nil {
		r = &retryOp{arr: a}
		r.doneFn = r.complete
		r.failFn = r.fail
		r.retryFn = r.retry
	} else {
		f.retryFree = r.next
		r.next = nil
	}
	r.dev, r.op, r.block, r.count, r.trackSeq = dev, op, block, count, trackSeq
	r.done, r.attempt = done, 0
	return r
}

// fail runs when an attempt completes with an error (injected verdict
// or a Failed-device rejection).
func (r *retryOp) fail(at sim.Time) {
	f := r.arr.faults
	f.stats.Transients++
	r.attempt++
	if r.attempt >= f.maxAttempts || r.arr.deviceDown(r.dev) {
		// Budget exhausted, or the disk died under us: give up. The
		// caller's join still completes — the simulator models timing —
		// and the loss is visible in the stats.
		f.stats.Permanent++
		r.complete(at)
		return
	}
	f.stats.Retries++
	r.arr.Eng.After(f.retryBase<<uint(r.attempt-1), r.retryFn)
}

// retry resubmits the attempt.
func (r *retryOp) retry() {
	r.arr.issue(r.dev, r.op, r.block, r.count, r.trackSeq, r.doneFn, r.failFn)
}

// complete finishes the logical submission and recycles the op (before
// done, which may submit further I/O and reclaim it).
func (r *retryOp) complete(at sim.Time) {
	f := r.arr.faults
	done := r.done
	r.done = nil
	r.next = f.retryFree
	f.retryFree = r
	if done != nil {
		done(at)
	}
}

// reconOp defers a reconstruction's completion by its decode charge:
// when the peer reads' join fires, it schedules the client branch after
// the aggregated XOR/GF(256) delay. Pooled like the array's other
// per-I/O control structures; fireFn caches the method value across
// recycles.
type reconOp struct {
	f      *faultState
	eng    *sim.Engine
	delay  sim.Time
	br     func(sim.Time)
	fireFn func(sim.Time)
	next   *reconOp
}

func (f *faultState) newRecon(eng *sim.Engine, delay sim.Time, br func(sim.Time)) *reconOp {
	r := f.reconFree
	if r == nil {
		r = &reconOp{f: f}
		r.fireFn = r.fire
	} else {
		f.reconFree = r.next
		r.next = nil
	}
	r.eng, r.delay, r.br = eng, delay, br
	return r
}

// fire runs when the peer reads complete: recycle, then schedule the
// client branch after the decode delay (br is copied out first — the op
// must not be touched once recycled).
func (r *reconOp) fire(sim.Time) {
	eng, delay, br := r.eng, r.delay, r.br
	r.br = nil
	r.next = r.f.reconFree
	r.f.reconFree = r
	eng.AfterTimed(delay, br)
}

// flushDegradedRead serves the span's pending degraded-read run — one
// or more device-contiguous extents whose data disk is down (batched by
// readExtent): read the surviving units of the covered stripe rows in
// one submission per peer — every group disk holds its units of those
// rows at the same device block ranges, the uniform-row invariant of
// the rotation tables — then pay one aggregated XOR/GF(256)
// reconstruction charge for the whole run before completing the client
// branch. The peer set and the erasure count are resolved once from the
// run's first block: for a fixed dead disk they are the same for every
// row of its group, and device states cannot change mid-walk (fault
// events are engine events, never re-entrant into a walk). With more
// failures than parity units the run is lost: it completes immediately,
// is counted, and the submission that walked it reports a LostError.
func (s *span) flushDegradedRead() {
	f := s.arr.faults
	count, logical, blk := s.degN, s.degLog, s.base+s.degBlk
	s.degN = 0
	br := s.curJoin.branch()
	now := s.arr.Eng.Now()
	if s.red == nil {
		f.stats.LostExtents++
		s.arr.Eng.AfterTimed(0, br)
		return
	}
	peers := s.red.RowPeers(logical, f.peerBuf[:0])
	f.peerBuf = peers[:0]
	missing := 1
	for _, p := range peers {
		if s.arr.deviceDown(s.disks[p]) {
			missing++
		}
	}
	if missing > s.red.ParityUnits() {
		f.stats.LostExtents++
		s.arr.Eng.AfterTimed(0, br)
		return
	}
	f.stats.DegradedReads++
	f.stats.DegradedBlocks += count
	// Reconstruction compute: proportional to the blocks combined and
	// to how many erasures the decode solves, charged once per run.
	delay := sim.Time(count) * sim.Time(missing) * f.reconPerBlock
	ro := f.newRecon(s.arr.Eng, delay, br)
	sub := s.arr.newJoin(ro.fireFn)
	for _, p := range peers {
		dev := s.disks[p]
		if s.arr.deviceDown(dev) {
			continue
		}
		f.stats.PeerReads++
		s.arr.submit(dev, disk.OpRead, blk, count, false, sub.branch())
	}
	sub.seal(now)
}

// extentDown reports whether any leg of e's write targets a failed
// device. Called only when a fault plan is installed.
func (s *span) extentDown(e raid.Extent) bool {
	if s.arr.deviceDown(s.disks[e.Data.Disk]) {
		return true
	}
	if e.Parity.Disk >= 0 {
		if s.arr.deviceDown(s.disks[e.Parity.Disk]) {
			return true
		}
		if s.dual != nil {
			if q, ok := s.dual.QParityOf(e.Logical); ok && s.arr.deviceDown(s.disks[q.Disk]) {
				return true
			}
		}
	}
	return false
}

// degWriteOp is one degraded reconstruct-write (or survivor-leg RMW) in
// flight: phase1 fires when the pre-reads complete and schedules phase2
// after the reconstruction delay; phase2 issues the surviving final
// writes and recycles the op. Pooled; both method values are cached
// across recycles.
type degWriteOp struct {
	arr      *Array
	f        *faultState
	br       func(sim.Time)
	count    int64
	delay    sim.Time
	nw       int
	wdev     [3]int
	wblk     [3]int64
	phase1Fn func(sim.Time)
	phase2Fn func()
	next     *degWriteOp
}

func (f *faultState) newDegWrite(a *Array) *degWriteOp {
	d := f.degFree
	if d == nil {
		d = &degWriteOp{arr: a, f: f}
		d.phase1Fn = d.phase1
		d.phase2Fn = d.phase2
		return d
	}
	f.degFree = d.next
	d.next = nil
	return d
}

// phase1 runs when the pre-reads finish: wait out the reconstruction
// compute before committing the writes.
func (d *degWriteOp) phase1(sim.Time) {
	d.arr.Eng.After(d.delay, d.phase2Fn)
}

// phase2 issues the surviving data+parity writes, then recycles the op.
func (d *degWriteOp) phase2() {
	arr := d.arr
	inner := arr.newJoin(d.br)
	for i := 0; i < d.nw; i++ {
		arr.submit(d.wdev[i], disk.OpWrite, d.wblk[i], d.count, false, inner.branch())
	}
	inner.seal(arr.Eng.Now())
	d.br = nil
	d.next = d.f.degFree
	d.f.degFree = d
}

// degradedWrite commits a write extent with at least one dead leg. A
// dead parity leg is simply skipped — its content is reconstructible
// later. A dead data leg turns the update into a reconstruct-write:
// read the surviving non-parity units of the row, recompute parity
// with the new data standing in for the dead unit, and write the
// surviving parity legs — the new data lives on encoded in them. More
// dead legs than parity units means the write cannot be made durable:
// it completes (the simulator models timing), is counted lost, and the
// submission reports a LostError.
func (s *span) degradedWrite(e raid.Extent) {
	f := s.arr.faults
	now := s.arr.Eng.Now()
	br := s.curJoin.branch()

	// Gather the surviving write legs: data, P, Q.
	var wdev [3]int
	var wblk [3]int64
	nw, dead, par := 0, 0, 0
	d0 := s.disks[e.Data.Disk]
	deadData := s.arr.deviceDown(d0)
	if deadData {
		dead++
	} else {
		wdev[nw], wblk[nw] = d0, s.base+e.Data.Block
		nw++
	}
	qDisk := -1
	if e.Parity.Disk >= 0 {
		par = 1
		pd := s.disks[e.Parity.Disk]
		if s.arr.deviceDown(pd) {
			dead++
		} else {
			wdev[nw], wblk[nw] = pd, s.base+e.Parity.Block
			nw++
		}
		if s.dual != nil {
			if q, ok := s.dual.QParityOf(e.Logical); ok {
				par = 2
				qDisk = q.Disk
				qd := s.disks[q.Disk]
				if s.arr.deviceDown(qd) {
					dead++
				} else {
					wdev[nw], wblk[nw] = qd, s.base+q.Block
					nw++
				}
			}
		}
	}
	if dead > par || (deadData && s.red == nil) {
		f.stats.LostExtents++
		s.arr.Eng.AfterTimed(0, br)
		return
	}
	f.stats.DegradedWrites++

	count := e.Count
	delay := sim.Time(0)
	if deadData {
		delay = sim.Time(count) * f.reconPerBlock
	}
	arr := s.arr
	op := f.newDegWrite(arr)
	op.br, op.count, op.delay = br, count, delay
	op.nw, op.wdev, op.wblk = nw, wdev, wblk
	phase1 := arr.newJoin(op.phase1Fn)
	if deadData {
		// Reconstruct-write pre-reads: the surviving *data* units of
		// the row (parity legs are overwritten, their old content is
		// not needed).
		peers := s.red.RowPeers(e.Logical, f.peerBuf[:0])
		f.peerBuf = peers[:0]
		for _, p := range peers {
			if p == e.Parity.Disk || p == qDisk {
				continue
			}
			dev := s.disks[p]
			if arr.deviceDown(dev) {
				continue
			}
			f.stats.PeerReads++
			arr.submit(dev, disk.OpRead, s.base+e.Data.Block, count, false, phase1.branch())
		}
	} else {
		// Ordinary RMW pre-reads restricted to the surviving legs.
		for i := 0; i < nw; i++ {
			arr.submit(wdev[i], disk.OpRead, wblk[i], count, false, phase1.branch())
		}
	}
	phase1.seal(now)
}

// FaultRuntime binds a fault.Plan to a volume: it owns the per-device
// injectors, compiles the plan's events onto the simulation clock, and
// drives rebuild traffic through the same engine — and the same device
// queues — the monitor runs on.
type FaultRuntime struct {
	arr  *Array
	vol  Volume
	opt  FaultOptions
	seed uint64
	devs []*fault.Device
	down int // devices currently routed around

	// epoch counts fault-runtime incarnations: a crash-restart bumps it
	// and every in-flight rebuild chain checks it, so chains belonging
	// to the torn-down incarnation complete as timing only while the
	// restarted incarnation re-walks from row zero.
	epoch    uint64
	rebuilds []*rebuildJob // active jobs, in start order

	// deviceFactory constructs the devices expand events add to the
	// array; without one, an expand event is a fatal plan error.
	deviceFactory func(n int) []disk.Device

	// crashSrc, when set, supplies the log image CrashRestart events
	// recover from.
	crashSrc func() (io.Reader, error)
	err      error
}

// InstallFaults arms plan on vol's array. Injectors attach to every
// device up front — verdict counters advance uniformly from time zero,
// making each draw independent of when transient windows open — and
// every event schedules its sim-clock callback immediately, before any
// replay records are scheduled, so same-instant fault transitions
// order ahead of record submissions at every pipeline setting. Call
// once, before the replay starts.
//
// The plan is validated against the array's width first: an event
// targeting a device the array does not have (accounting for devices
// expand events add) is an input error, reported here rather than
// surfacing as a silent no-op deep in the disk layer. Expand events
// additionally require a CRAID volume and a device factory
// (SetDeviceFactory) before the first event fires.
func InstallFaults(arr *Array, vol Volume, plan fault.Plan, opt FaultOptions) (*FaultRuntime, error) {
	if err := plan.Validate(arr.Devices()); err != nil {
		return nil, err
	}
	if plan.HasExpand() {
		if _, ok := vol.(*CRAID); !ok {
			return nil, fmt.Errorf("fault: expand events require a CRAID volume")
		}
	}
	opt = opt.withDefaults()
	rt := &FaultRuntime{arr: arr, vol: vol, opt: opt, seed: plan.Seed}
	arr.faults = &faultState{
		retryBase:     opt.RetryBase,
		maxAttempts:   opt.MaxAttempts,
		reconPerBlock: opt.ReconPerBlock,
	}
	arr.faults.ensure(arr.Devices() - 1)
	rt.devs = make([]*fault.Device, arr.Devices())
	for i := range rt.devs {
		rt.devs[i] = fault.NewDevice(plan.Seed, i)
		if fd, ok := arr.Device(i).(disk.Faultable); ok {
			fd.SetInjector(rt.devs[i])
		}
	}
	for _, ev := range plan.Events {
		rt.schedule(ev)
	}
	return rt, nil
}

// Stats returns the runtime's counters (a live view; read after the
// engine stops for final values).
func (rt *FaultRuntime) Stats() *FaultStats { return &rt.arr.faults.stats }

// Err reports the first fatal fault-processing error (a failed crash
// recovery), which also stopped the engine.
func (rt *FaultRuntime) Err() error { return rt.err }

// SetCrashSource provides the log image CrashRestart events recover
// from — e.g. a LogRing barrier over an in-memory mirror. Without one,
// crash events restart the controller cold (all cached state lost).
func (rt *FaultRuntime) SetCrashSource(fn func() (io.Reader, error)) { rt.crashSrc = fn }

// SetDeviceFactory supplies the constructor expand events use to build
// the n devices they add to the array. The factory runs on the sim
// goroutine at the event's instant; device naming/indexing starts at
// the array's width at that instant.
func (rt *FaultRuntime) SetDeviceFactory(fn func(n int) []disk.Device) { rt.deviceFactory = fn }

func (rt *FaultRuntime) schedule(ev fault.Event) {
	eng := rt.arr.Eng
	switch ev.Kind {
	case fault.DiskFail:
		dev := ev.Dev
		eng.Schedule(ev.At, func() { rt.failDisk(dev) })
	case fault.Transient:
		dev, rate, lat := ev.Dev, ev.Rate, ev.LatencyX
		eng.Schedule(ev.At, func() {
			if dev < len(rt.devs) {
				rt.devs[dev].SetTransient(rate, lat)
			}
		})
		if ev.Until > ev.At {
			eng.Schedule(ev.Until, func() {
				if dev < len(rt.devs) {
					rt.devs[dev].ClearTransient()
				}
			})
		}
	case fault.Rebuild:
		dev, rate := ev.Dev, ev.RateMBps
		eng.Schedule(ev.At, func() { rt.startRebuild(dev, rate) })
	case fault.CrashRestart:
		eng.Schedule(ev.At, func() { rt.crashRestart() })
	case fault.Storm:
		// A storm is sugar for N crash-restarts at a fixed cadence; each
		// cycle schedules at install time so the sequence is bit-identical
		// to spelling the crashes out individually.
		for i := 0; i < ev.N; i++ {
			eng.Schedule(ev.At+sim.Time(i)*ev.Every, func() { rt.crashRestart() })
		}
	case fault.Expand:
		disks, retain := ev.Disks, ev.Retain
		eng.Schedule(ev.At, func() { rt.expand(disks, retain) })
	}
}

// expand fires an expand@ event: build the new devices, run the online
// upgrade through the volume, arm injectors on the added devices, and
// record the upgrade KPIs. The drain callback stamps ExpandEnd when the
// upgrade's background I/O (write-backs or migrations) completes, which
// together with ExpandStart yields the upgrade-latency KPI.
func (rt *FaultRuntime) expand(disks int, retain bool) {
	c, ok := rt.vol.(*CRAID)
	if !ok {
		rt.fatal(fmt.Errorf("fault: expand event requires a CRAID volume"))
		return
	}
	if rt.deviceFactory == nil {
		rt.fatal(fmt.Errorf("fault: expand event fired with no device factory installed"))
		return
	}
	newDevs := rt.deviceFactory(disks)
	if len(newDevs) != disks {
		rt.fatal(fmt.Errorf("fault: device factory built %d device(s), expand wants %d", len(newDevs), disks))
		return
	}
	f := rt.arr.faults
	base := rt.arr.Devices()
	if f.stats.ExpandStart == 0 {
		f.stats.ExpandStart = rt.arr.Eng.Now()
	}
	st := c.ExpandWith(newDevs, retain, func(at sim.Time) {
		if at > f.stats.ExpandEnd {
			f.stats.ExpandEnd = at
		}
	})
	f.stats.Upgrades++
	f.stats.ExpandMigrated += st.Migrated
	f.stats.ExpandWriteback += st.DirtyWriteback
	f.stats.ExpandInvalidated += st.Invalidated
	// The added devices join the fault fabric: failure routing state and
	// deterministic injectors keyed by their final indices, so later
	// events may target them.
	f.ensure(rt.arr.Devices() - 1)
	for i := base; i < rt.arr.Devices(); i++ {
		d := fault.NewDevice(rt.seed, i)
		rt.devs = append(rt.devs, d)
		if fd, ok := rt.arr.Device(i).(disk.Faultable); ok {
			fd.SetInjector(d)
		}
	}
}

func (rt *FaultRuntime) failDisk(dev int) {
	f := rt.arr.faults
	if dev >= rt.arr.Devices() {
		return
	}
	f.ensure(dev)
	if f.failed[dev] {
		return
	}
	f.failed[dev] = true
	f.stats.Failures++
	if fd, ok := rt.arr.Device(dev).(disk.Faultable); ok {
		fd.SetFailed(true)
	}
	rt.down++
	rt.setDegraded()
}

// setDegraded brackets the volume's degraded-window latency recording.
func (rt *FaultRuntime) setDegraded() {
	if d, ok := rt.vol.(interface{ setDegraded(bool) }); ok {
		d.setDegraded(rt.down > 0)
	}
}

// spans lists the volume's device-backed partitions, for rebuild
// discovery.
func (rt *FaultRuntime) spans() []*span {
	switch v := rt.vol.(type) {
	case *CRAID:
		return []*span{v.pc, v.pa}
	case *RAIDController:
		return []*span{v.span}
	}
	return nil
}

// rebuildJob reconstructs one failed device: a sequence of per-span
// stripe-row walks, paced to the configured rate. The epoch stamp is
// the incarnation that launched the job: a crash-restart bumps the
// runtime's epoch and relaunches active jobs from row zero, so a stale
// job's in-flight chains complete as timing only.
type rebuildJob struct {
	rt       *FaultRuntime
	dev      int
	rateMBps float64
	epoch    uint64
	walks    []spanWalk
	cur      int
	lostRows int64 // rows this job declared unrecoverable
	stepFn   func()
}

type spanWalk struct {
	s *span
	w *raid.RebuildWalker
}

// startRebuild brings a spare online for dev and walks its stripe rows
// at rateMBps: for each row, read the surviving peers, pay the
// reconstruction compute, write the unit onto the spare. The device's
// Failed state clears immediately (the spare accepts the rebuild
// writes) but the array keeps routing client I/O around it — reads
// still reconstruct — until the walk completes and the device rejoins.
// Traffic flows through the ordinary submission path, so it contends
// with the monitor on the same queues.
func (rt *FaultRuntime) startRebuild(dev int, rateMBps float64) {
	f := rt.arr.faults
	if dev >= rt.arr.Devices() || dev >= len(f.failed) || !f.failed[dev] {
		return
	}
	if rateMBps <= 0 {
		rateMBps = fault.DefaultRateMBps
	}
	if fd, ok := rt.arr.Device(dev).(disk.Faultable); ok {
		fd.SetFailed(false)
	}
	if f.stats.RebuildStart == 0 {
		f.stats.RebuildStart = rt.arr.Eng.Now()
	}
	rt.launchRebuild(dev, rateMBps)
}

// launchRebuild builds the walk job for dev and starts it. Shared by
// startRebuild and the crash-restart relaunch path; the walks resolve
// against the volume's current spans, so a post-crash relaunch walks
// the rebuilt geometry.
func (rt *FaultRuntime) launchRebuild(dev int, rateMBps float64) {
	job := &rebuildJob{rt: rt, dev: dev, rateMBps: rateMBps, epoch: rt.epoch}
	job.stepFn = job.step
	for _, s := range rt.spans() {
		if s.red == nil {
			continue
		}
		li := -1
		for i, d := range s.disks {
			if d == dev {
				li = i
				break
			}
		}
		if li < 0 {
			continue
		}
		job.walks = append(job.walks, spanWalk{s: s, w: raid.NewRebuildWalker(s.red, li)})
	}
	rt.rebuilds = append(rt.rebuilds, job)
	job.step()
}

// unregister drops job from the active-rebuild registry.
func (rt *FaultRuntime) unregister(job *rebuildJob) {
	for i, j := range rt.rebuilds {
		if j == job {
			rt.rebuilds = append(rt.rebuilds[:i], rt.rebuilds[i+1:]...)
			return
		}
	}
}

// rebuildBatchRows is how many consecutive stripe rows one rebuild step
// reconstructs as a single device-contiguous run (RebuildWalker.NextRun):
// one read per surviving peer, one aggregated decode charge and one
// spare write cover the whole batch, so the per-row join/submission
// overhead — and the geometry resolution — amortizes 8x while the
// rate pacing still bounds the burst to a fraction of a stripe-unit
// second at default rates.
const rebuildBatchRows = 8

// step launches the next stripe-row batch, or finishes the rebuild when
// every span walk is exhausted. A stale epoch means a crash-restart
// tore this job's incarnation down — the relaunched job owns the walk
// now.
func (r *rebuildJob) step() {
	if r.epoch != r.rt.epoch {
		return
	}
	for r.cur < len(r.walks) {
		sw := r.walks[r.cur]
		blk, n, rows, peers, ok := sw.w.NextRun(rebuildBatchRows)
		if !ok {
			r.cur++
			continue
		}
		r.run(sw, blk, n, rows, peers)
		return
	}
	r.finish()
}

// run reconstructs one batch of consecutive stripe rows: read the
// surviving peers once across the whole run, pay the aggregated decode,
// write the run to the spare in one submission, then schedule the next
// batch no earlier than the rate limit allows (pacing is by batch
// start and sized to the batch, so a loaded array that services a
// batch slowly is simply late, never bursty).
func (r *rebuildJob) run(sw spanWalk, blk, n, rows int64, peers []int) {
	rt := r.rt
	f := rt.arr.faults
	eng := rt.arr.Eng
	start := eng.Now()
	s := sw.s
	dev := r.dev
	// Re-plan around erasures that arrived since the rebuild began: every
	// peer of this span's group that is down now is a further missing
	// unit the decode must solve, on top of the device being rebuilt.
	// Within the parity budget the batch proceeds with a deeper (and
	// proportionally costlier) decode over the survivors; beyond it the
	// rows of this span are unrecoverable and the walk aborts.
	missing := 1
	for _, p := range peers {
		if d := s.disks[p]; d != dev && rt.arr.deviceDown(d) {
			missing++
		}
	}
	if missing > s.red.ParityUnits() {
		r.abortWalk(sw, rows)
		return
	}
	pace := sim.Time(float64(n*disk.BlockSize) * 1000 / r.rateMBps)
	sub := rt.arr.newJoin(func(sim.Time) {
		if r.epoch != rt.epoch {
			return
		}
		eng.After(f.reconPerBlock*sim.Time(n)*sim.Time(missing), func() {
			if r.epoch != rt.epoch {
				return
			}
			wr := rt.arr.newJoin(func(sim.Time) {
				if r.epoch != rt.epoch {
					return
				}
				f.stats.RebuildRows += rows
				f.stats.RebuildBlocks += n
				next := start + pace
				if next < eng.Now() {
					next = eng.Now()
				}
				eng.Schedule(next, r.stepFn)
			})
			rt.arr.submit(dev, disk.OpWrite, s.base+blk, n, false, wr.branch())
			wr.seal(eng.Now())
		})
	})
	for _, p := range peers {
		d := s.disks[p]
		if rt.arr.deviceDown(d) || d == dev {
			continue
		}
		f.stats.PeerReads++
		rt.arr.submit(d, disk.OpRead, s.base+blk, n, false, sub.branch())
	}
	sub.seal(eng.Now())
}

// abortWalk declares the current span walk unrecoverable — a further
// erasure pushed the group past its parity budget mid-rebuild. The
// current batch and every row the walk had not reached count as lost,
// and the job moves on to its remaining spans (whose groups may still
// be within budget).
func (r *rebuildJob) abortWalk(sw spanWalk, rows int64) {
	lost := rows
	for {
		_, _, rr, _, ok := sw.w.NextRun(sw.w.Rows())
		if !ok {
			break
		}
		lost += rr
	}
	r.lostRows += lost
	r.rt.arr.faults.stats.RebuildLostRows += lost
	r.cur++
	r.step()
}

// finish completes the job. A clean job rejoins the device — client I/O
// routes to it again; a job that lost rows leaves the device routed
// around forever, because the spare's content is incomplete.
func (r *rebuildJob) finish() {
	rt := r.rt
	f := rt.arr.faults
	f.stats.RebuildEnd = rt.arr.Eng.Now()
	rt.unregister(r)
	if r.lostRows > 0 {
		return
	}
	f.failed[r.dev] = false
	rt.down--
	rt.setDegraded()
}

func (rt *FaultRuntime) crashRestart() {
	c, ok := rt.vol.(*CRAID)
	if !ok {
		rt.fatal(fmt.Errorf("fault: crash-restart requires a CRAID volume"))
		return
	}
	var src io.Reader
	if rt.crashSrc != nil {
		r, err := rt.crashSrc()
		if err != nil {
			rt.fatal(fmt.Errorf("fault: reading crash log image: %w", err))
			return
		}
		src = r
	}
	n, err := c.CrashRestart(src)
	if err != nil {
		rt.fatal(fmt.Errorf("fault: crash recovery: %w", err))
		return
	}
	f := rt.arr.faults
	f.stats.Restarts++
	f.stats.RecoveredMappings += int64(n)
	// Tear down in-flight rebuild chains — they died with the controller
	// incarnation — and relaunch each active rebuild from row zero
	// against the recovered geometry, in start order.
	rt.epoch++
	if len(rt.rebuilds) > 0 {
		old := rt.rebuilds
		rt.rebuilds = nil
		for _, j := range old {
			f.stats.RebuildRestarts++
			rt.launchRebuild(j.dev, j.rateMBps)
		}
	}
}

// fatal records the first unrecoverable fault-processing error and
// stops the engine; ReplayWith then returns with the trace unfinished
// and the caller reads Err.
func (rt *FaultRuntime) fatal(err error) {
	if rt.err == nil {
		rt.err = err
	}
	rt.arr.Eng.Stop()
}
