package core

import (
	"fmt"
	"strings"
	"testing"

	"craid/internal/sim"
	"craid/internal/trace"
)

// buildNativeTrace renders n time-ordered native-format records mixing
// sequential runs with strided jumps, the shape of a real block trace.
func buildNativeTrace(n int) string {
	var sb strings.Builder
	sb.Grow(n * 24)
	block := int64(0)
	for i := 0; i < n; i++ {
		op := "R"
		if i%3 == 0 {
			op = "W"
		}
		if i%7 == 0 {
			block = int64(i*2654435761) % 3_000_000
		}
		fmt.Fprintf(&sb, "%d %s %d %d\n", i*50, op, block, 8)
		block += 8
	}
	return sb.String()
}

// BenchmarkReplayNative measures end-to-end trace replay — parsing
// included — through a CRAID on instant devices, so the cost under test
// is the replay pipeline itself (parser stalls between events vs
// read-ahead batching), not simulated mechanics.
func BenchmarkReplayNative(b *testing.B) {
	const records = 200_000
	data := buildNativeTrace(records)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		vol := benchCRAID(eng)
		n, err := Replay(eng, vol, trace.NewNativeReader(strings.NewReader(data)))
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d of %d records", n, records)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*records), "ns/record")
}
