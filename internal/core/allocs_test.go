package core

import (
	"fmt"
	"testing"

	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// warmCRAID builds a CRAID on instant devices and warms a working set
// that fits entirely in P_C, so subsequent Submits are pure hits.
func warmCRAID(t *testing.T, policy string, shards int) (*sim.Engine, *CRAID) {
	t.Helper()
	eng := sim.NewEngine()
	arr := nullArray(eng, 10, 1<<30)
	disks := make([]int, 10)
	for i := range disks {
		disks[i] = i
	}
	paLayout := raid.NewRAID5(10, 10, 400_000, 32)
	c := mustCRAID(arr, Config{
		Policy:       policy,
		CachePerDisk: 8192,
		ParityGroup:  10,
		StripeUnit:   32,
		MapShards:    shards,
	}, true, disks, 0, paLayout, disks, 8192)
	for b := int64(0); b < 1<<16; b += 256 {
		c.Submit(trace.Record{Op: disk.OpWrite, Block: b, Count: 256}, nil)
		eng.Run()
		c.Submit(trace.Record{Op: disk.OpRead, Block: b, Count: 256}, nil)
		eng.Run()
	}
	return eng, c
}

// replayAllocs measures the total allocations of one full replay of n
// random records through a fresh engine and controller.
func replayAllocs(t *testing.T, n int) float64 {
	t.Helper()
	recs := randomWorkload(5, n, 12000)
	return testing.AllocsPerRun(5, func() {
		eng := sim.NewEngine()
		c, _ := newMQCRAIDAffinity(eng, 64, 1, 1, 0, false)
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestReplayAllocsPerRecordZero pins the whole timed replay path —
// scheduling, pump, cache decisions, RMW fan-out, completion events —
// at zero allocations per record: tripling the trace must leave the
// total allocation count within a small constant (pipeline batch
// boundaries), i.e. every per-record control structure is pooled.
func TestReplayAllocsPerRecordZero(t *testing.T) {
	// The smaller run is already past pool warm-up: the freelists (joins,
	// RMW ops, device completions) and growable structures (histogram
	// buckets, device queues) reach their high-water marks within the
	// first few thousand records; after that every record must ride
	// recycled structures only.
	small := replayAllocs(t, 6000)
	large := replayAllocs(t, 18000)
	if large-small > 8 {
		t.Fatalf("replay allocations scale with the trace: %.1f for 6000 records, %.1f for 18000 (%.4f per record, want ~0)",
			small, large, (large-small)/12000)
	}
}

// TestSubmitWarmAllocFree is the monitor's steady-state allocation
// gate: on a warm cache, a whole Submit — classification, policy
// access, dirty-flip logging hooks, redirected I/O, latency recording,
// the event engine drain — performs zero allocations, for every policy
// and for both a single-tree and a sharded mapping index. This is what
// keeps GC entirely out of the hot loop at millions of simulated
// requests per second.
func TestSubmitWarmAllocFree(t *testing.T) {
	for _, policy := range []string{"LRU", "WLRU", "LFUDA", "GDSF", "ARC"} {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy, shards), func(t *testing.T) {
				eng, c := warmCRAID(t, policy, shards)
				b := int64(0)
				read := trace.Record{Op: disk.OpRead, Count: 256}
				write := trace.Record{Op: disk.OpWrite, Count: 256}
				if allocs := testing.AllocsPerRun(300, func() {
					read.Block = b
					c.Submit(read, nil)
					eng.Run()
					write.Block = b
					c.Submit(write, nil)
					eng.Run()
					b = (b + 256) % (1 << 16)
				}); allocs > 0 {
					t.Fatalf("warm Submit allocated %.1f per round (policy %s, %d shards), want 0",
						allocs, policy, shards)
				}
				if hits := c.Stats().ReadHits; hits == 0 {
					t.Fatal("warm workload produced no read hits; gate is not testing the hit path")
				}
			})
		}
	}
}
