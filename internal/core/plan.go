package core

import (
	"sync"

	"craid/internal/disk"
	"craid/internal/sim"
	"craid/internal/trace"
)

// Multi-queue monitor: concurrent per-shard classification with a
// deterministic apply stage — and, with Config.PlanLookahead, a
// pipelined planner that classifies batch k+1 while batch k commits.
//
// The monitor's hot path is classification — LookupRun descents over
// the mapping index deciding, extent by extent, whether a request hits
// P_C. PR 2 sharded the index by archive-address range precisely so
// this work could leave the single-threaded event loop; this file is
// the payoff. Replay hands the planner whole batches of pre-parsed
// records, and the pipeline runs in two phases:
//
//   - plan: the batch's address ranges are routed to one worker per
//     shard *group* (contiguous runs of shards; cross-group requests
//     are split at the boundary and re-stitched afterwards, reusing
//     the same contract Table.LookupRun applies across shard
//     boundaries). Workers only read the index, and every plan carries
//     the structural version (mapcache.Index.ShardVersion) of each
//     shard it classified against, captured atomically with the
//     lookups that produced it.
//
//   - apply: the simulation commits records strictly in submission
//     order through the same applyReadSeg/applyWriteSeg helpers the
//     sequential path uses. A plan is trusted only if every shard it
//     stamped still reports the stamped version; otherwise the record
//     is re-classified inline, which *is* the sequential path. Hits
//     mutate nothing structural (dirty flips are version-exempt), so
//     hit-dominated steady state — the regime the paper's monitor
//     converges to — applies almost every plan; misses, evictions and
//     background copy-ins bump versions and surgically invalidate only
//     the plans that could have observed them.
//
// Without lookahead the plan phase runs between apply steps, when
// nothing can mutate the index — race-free by phase separation. With
// PlanLookahead > 0 the planner instead runs on the replay pipeline's
// plan stage, concurrently with the apply of the previous batch; the
// CRAID's plan gate (craid.go) then serializes index *mutation* against
// classification at window granularity: workers classify a window of
// up to classifyWindow tasks per read-side critical section, so each
// window observes a frozen index state and its stamps are exact for
// that state, while the apply stage write-locks only its mutating
// regions (write-hit dirty flips and the insert/evict path — read
// hits, the steady-state majority, take no lock at all). Stale plans
// are caught by the same stamp validation.
//
// Determinism follows in both modes: the apply stage performs, in the
// same order, exactly the operations the sequential controller
// performs — either by replaying a plan proven equal to what inline
// classification would return, or by doing that inline classification.
// Stats, monitor ratios, device counters and event timing are
// bit-identical at every (workers × lookahead) setting (property-tested
// in mq_test.go). Only the MQStats diagnostics are timing-dependent
// under lookahead: how many plans survive validation depends on how far
// apply had advanced when each task was classified.

// planSeg is one classified extent: a hit run of n blocks cached
// contiguously from cache, or a miss gap of n blocks (cache unused).
type planSeg struct {
	n     int64
	cache int64
	hit   bool
}

// shardStamp records the structural version one plan observed for one
// shard; the plan is valid while every stamped shard still reports it.
type shardStamp struct {
	shard int
	ver   uint64
}

// recordPlan is the planner's verdict for one record: its
// classification into hit/miss extents, and the version stamps that
// gate replaying it. Both slices alias one of the planner's stitch
// arenas, valid until that arena's slot of the plan ring is reused —
// after lookahead+1 further planBatch calls.
type recordPlan struct {
	segs   []planSeg
	stamps []shardStamp
}

// MQStats counts multi-queue planner activity. Deliberately separate
// from Stats: Stats is bit-identical at every MonitorWorkers and
// PlanLookahead setting, while these counters describe how the
// pipeline got there (a sequential controller plans nothing at all,
// and under lookahead the applied/replanned split depends on replay
// timing).
type MQStats struct {
	Batches    int64 // record batches classified by the planner
	Planned    int64 // records the planner classified ahead of apply
	Applied    int64 // plans still valid at apply time (descents skipped)
	Replanned  int64 // plans invalidated by earlier mutations (inline reclassification)
	SegReplans int64 // applied plans that went stale mid-record (tail finished inline)
}

// MQ returns the multi-queue pipeline counters.
func (c *CRAID) MQ() *MQStats { return &c.mqStats }

// batchPlanner is implemented by volumes whose Submit can be split
// into a concurrent plan phase and a sequential apply phase; Replay
// feeds whole ring batches through it.
type batchPlanner interface {
	// planBatch classifies recs ahead of submission; the returned
	// plans (nil when planning is disabled) parallel recs and stay
	// valid until planDepth()+1 further planBatch calls.
	planBatch(recs []trace.Record) []recordPlan
	// submitPlanned is Submit carrying the record's plan (nil = none).
	submitPlanned(rec trace.Record, p *recordPlan, done func(sim.Time)) error
	// planDepth reports how many batches the replay pipeline should
	// plan ahead of the apply stage (0 = plan synchronously between
	// batches, the race-free-by-phase-separation mode).
	planDepth() int
	// setLookahead brackets a lookahead replay: while active, the
	// volume must serialize its index mutations against the concurrent
	// classification (the plan gate). Called from the apply goroutine
	// strictly before the plan stage starts and strictly after it
	// exits.
	setLookahead(active bool)
	// beginPlanning/endPlanning bracket one whole replay: a volume may
	// pin long-lived per-shard-group planning resources (the affinity
	// workers) for the replay's duration. Always called in pairs from
	// the apply goroutine, around every pipeline mode including
	// synchronous planning.
	beginPlanning()
	endPlanning()
}

var _ batchPlanner = (*CRAID)(nil)

// planBatch implements batchPlanner: it classifies the whole batch
// concurrently, one worker per shard group. Returns nil (sequential
// submission) when MonitorWorkers or the shard count make concurrency
// pointless. Under lookahead it runs on the replay pipeline's plan
// stage goroutine; the planner's scratch is owned by whichever
// goroutine calls it, never both.
func (c *CRAID) planBatch(recs []trace.Record) []recordPlan {
	if c.cfg.MonitorWorkers <= 1 || len(recs) == 0 {
		return nil
	}
	if c.mq == nil {
		c.mq = newPlanner(c)
	}
	if c.mq.workers <= 1 {
		return nil // fewer shards than it takes to go concurrent
	}
	c.mqStats.Batches++
	c.mqStats.Planned += int64(len(recs))
	return c.mq.plan(recs)
}

// planDepth implements batchPlanner: the configured lookahead, but only
// when the planner can actually go concurrent — otherwise planBatch
// returns nil plans and a plan stage would be pure overhead.
func (c *CRAID) planDepth() int {
	if c.cfg.PlanLookahead <= 0 || c.cfg.MonitorWorkers <= 1 {
		return 0
	}
	w := c.cfg.MonitorWorkers
	if s := c.table.Shards(); w > s {
		w = s
	}
	if w <= 1 {
		return 0
	}
	return c.cfg.PlanLookahead
}

// setLookahead implements batchPlanner: it engages the plan gate.
// Written by the apply goroutine before the plan stage spawns and
// after it is joined, so both the apply helpers and the planner's
// workers read a stable value.
func (c *CRAID) setLookahead(active bool) { c.gated = active }

// beginPlanning implements batchPlanner: with Config.WorkerAffinity it
// starts the planner's persistent shard-group workers for the replay's
// duration, so group g is always classified by the same goroutine (and,
// in steady state, the same OS thread — keeping that group's index
// shards hot in one core's cache) instead of a goroutine spawned per
// batch.
func (c *CRAID) beginPlanning() {
	if !c.cfg.WorkerAffinity || c.cfg.MonitorWorkers <= 1 {
		return
	}
	if c.mq == nil {
		c.mq = newPlanner(c)
	}
	c.mq.startWorkers()
}

// endPlanning implements batchPlanner: it releases the affinity
// workers, if any. Safe to call without a matching beginPlanning.
func (c *CRAID) endPlanning() {
	if c.mq != nil {
		c.mq.stopWorkers()
	}
}

// submitPlanned implements batchPlanner — and carries the one join
// choreography both submission paths share (Submit delegates here
// with p = nil): commit p's classification when it is still provably
// current, else classify inline.
func (c *CRAID) submitPlanned(rec trace.Record, p *recordPlan, done func(sim.Time)) error {
	now := c.arr.Eng.Now()
	var lost0 int64
	if f := c.arr.faults; f != nil {
		lost0 = f.stats.LostExtents
	}
	j := c.arr.newJoin(c.record(rec.Op, now, done))
	switch {
	case p != nil && c.planValid(p):
		c.mqStats.Applied++
		c.applyPlan(rec, p, j)
	default:
		if p != nil {
			// An earlier record in the batch — or a background copy-in
			// or write-back completing before this record's submission
			// time, or (under lookahead) the very apply step the plan
			// was classified during — structurally changed a shard this
			// plan read. Reclassifying inline is exactly the sequential
			// path, so the outcome is the one the sequential controller
			// produces.
			c.mqStats.Replanned++
		}
		if rec.Op == disk.OpRead {
			c.readPath(rec, j)
		} else {
			c.writePath(rec, j)
		}
	}
	j.seal(now)
	if err := c.flushLog(); err != nil {
		return err
	}
	if f := c.arr.faults; f != nil && f.stats.LostExtents > lost0 {
		return &LostError{Op: rec.Op, Block: rec.Block, Count: rec.Count, Extents: f.stats.LostExtents - lost0}
	}
	return nil
}

// planValid reports whether every shard p classified against is
// structurally unchanged since plan time.
func (c *CRAID) planValid(p *recordPlan) bool {
	for _, st := range p.stamps {
		if c.table.ShardVersion(st.shard) != st.ver {
			return false
		}
	}
	return true
}

// applyPlan commits a validated plan in extent order through the same
// helpers the sequential classification loop uses.
//
// The plan is re-validated before every extent after the first: the
// sequential loop re-classifies after each extent it applies, and an
// extent's own side effects can reach forward into the record — a
// write miss's insertions evict victims chosen by the policy, which
// can remove a mapping the plan classified as a later hit of this
// very record. When that happens the stamped shard's version has
// moved, and the remainder of the record finishes inline, exactly as
// the sequential controller classifies it.
func (c *CRAID) applyPlan(rec trace.Record, p *recordPlan, j *join) {
	if rec.Op == disk.OpRead {
		c.stats.ReadBlocks += rec.Count
	} else {
		c.stats.WriteBlocks += rec.Count
	}
	b := rec.Block
	for i, s := range p.segs {
		if i > 0 && !c.planValid(p) {
			c.mqStats.SegReplans++
			c.classifyTail(rec, j, b)
			return
		}
		if rec.Op == disk.OpRead {
			c.applyReadSeg(j, b, s, rec.Count)
		} else {
			c.applyWriteSeg(j, b, s, rec.Count)
		}
		b += s.n
	}
}

// planner fans a batch's classification out over shard groups. The
// split/classify scratch (task lists, per-group seg and stamp arenas)
// is retained across batches and fully consumed by stitch before
// plan() returns; the stitched outputs a batch's plans alias live in a
// small ring of planDepth+1 arenas, so the plans of the batch the
// apply stage is draining stay intact while the plan stage classifies
// the next batch (the "double-buffered arenas" of lookahead 1).
// Steady-state planning allocates nothing beyond amortized arena
// growth.
type planner struct {
	c       *CRAID
	workers int

	groupStart []int   // group g owns shards [groupStart[g], groupStart[g+1])
	groupOf    []int   // shard index -> group index
	groupEnd   []int64 // first archive address beyond group g

	tasks   [][]planTask   // per group, in record order
	taskOut [][]taskResult // per group, parallel to tasks: segs + stamps produced
	arenas  [][]planSeg    // per group: worker-local classification scratch
	stArena [][]shardStamp // per group: worker-local version stamps
	cursor  []int          // per group: next unconsumed task during stitch

	out []planOut // stitched plan arenas, rotated per batch
	cur int

	// Affinity mode (Config.WorkerAffinity): instead of spawning one
	// goroutine per non-empty group per batch, beginPlanning starts
	// workers-1 persistent goroutines, each bound to one shard group for
	// the whole replay. plan() posts one token per busy group and
	// collects one completion per token; the channel handoffs give the
	// same happens-before edges the per-batch WaitGroup gave, and the
	// classification itself is byte-for-byte the same work, so results
	// stay bit-identical — only goroutine identity (and thus cache
	// residency of each group's shards) changes.
	affWork []chan struct{} // affWork[g-1] wakes group g's worker
	affDone chan struct{}   // one token per completed group
	affQuit chan struct{}   // closed by stopWorkers
	affOn   bool
}

// startWorkers begins affinity mode: one persistent worker per shard
// group 1..workers-1 (group 0 is classified by the planning goroutine
// itself, as in spawn mode). Idempotent per begin/end bracket.
func (p *planner) startWorkers() {
	if p.workers <= 1 || p.affOn {
		return
	}
	if p.affWork == nil {
		p.affWork = make([]chan struct{}, p.workers-1)
		for i := range p.affWork {
			p.affWork[i] = make(chan struct{}, 1)
		}
		p.affDone = make(chan struct{}, p.workers-1)
	}
	p.affQuit = make(chan struct{})
	for g := 1; g < p.workers; g++ {
		go p.affinityWorker(g, p.affQuit)
	}
	p.affOn = true
}

// stopWorkers exits affinity mode, terminating the persistent workers.
// plan() has always drained affDone before returning, so no worker is
// mid-classification here.
func (p *planner) stopWorkers() {
	if !p.affOn {
		return
	}
	p.affOn = false
	close(p.affQuit)
}

// affinityWorker classifies its group on demand until quit closes.
func (p *planner) affinityWorker(g int, quit chan struct{}) {
	for {
		select {
		case <-p.affWork[g-1]:
			p.classify(g)
			p.affDone <- struct{}{}
		case <-quit:
			return
		}
	}
}

// planOut is one batch's stitched plan storage.
type planOut struct {
	plans  []recordPlan
	segs   []planSeg
	stamps []shardStamp
	spans  []planSpan
}

// planSpan locates one record's plan inside the shared stitch arenas;
// pointers are bound only after the arenas stop growing (append may
// relocate their backing arrays).
type planSpan struct {
	segOff, segN, stOff, stN int
}

// planTask is one sub-range of one record, confined to a single shard
// group.
type planTask struct {
	rec  int32
	b, n int64
}

// taskResult locates one task's classification inside its group
// arenas: the extents produced, and the version stamps of the shards
// they were read from.
type taskResult struct {
	off, cnt     int32
	stOff, stCnt int32
}

// newPlanner sizes a planner for c's current index geometry and worker
// budget. The geometry (shard count and bounds) is fixed at NewCRAID —
// Expand and Recover rebuild contents, never the shard layout — so one
// planner serves the controller's lifetime.
func newPlanner(c *CRAID) *planner {
	shards := c.table.Shards()
	workers := c.cfg.MonitorWorkers
	if workers > shards {
		workers = shards
	}
	p := &planner{c: c, workers: workers}
	if workers <= 1 {
		return p
	}
	// Shards carry roughly equal address spans, so contiguous
	// equal-count groups spread the address space evenly.
	p.groupStart = make([]int, workers+1)
	p.groupOf = make([]int, shards)
	p.groupEnd = make([]int64, workers)
	for g := 0; g < workers; g++ {
		p.groupStart[g] = g * shards / workers
	}
	p.groupStart[workers] = shards
	for g := 0; g < workers; g++ {
		for s := p.groupStart[g]; s < p.groupStart[g+1]; s++ {
			p.groupOf[s] = g
		}
		p.groupEnd[g] = c.table.ShardBound(p.groupStart[g+1] - 1)
	}
	p.tasks = make([][]planTask, workers)
	p.taskOut = make([][]taskResult, workers)
	p.arenas = make([][]planSeg, workers)
	p.stArena = make([][]shardStamp, workers)
	p.cursor = make([]int, workers)
	p.out = make([]planOut, c.cfg.PlanLookahead+1)
	return p
}

// plan classifies the batch: split, classify concurrently, stitch.
func (p *planner) plan(recs []trace.Record) []recordPlan {
	p.cur++
	if p.cur >= len(p.out) {
		p.cur = 0
	}
	p.split(recs)
	if p.affOn {
		busy := 0
		for g := 1; g < p.workers; g++ {
			if len(p.tasks[g]) == 0 {
				continue
			}
			p.affWork[g-1] <- struct{}{}
			busy++
		}
		p.classify(0) // the planning goroutine is worker 0
		for ; busy > 0; busy-- {
			<-p.affDone
		}
	} else {
		var wg sync.WaitGroup
		for g := 1; g < p.workers; g++ {
			if len(p.tasks[g]) == 0 {
				continue
			}
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				p.classify(g)
			}(g)
		}
		p.classify(0) // the planning goroutine is worker 0
		wg.Wait()
	}
	return p.stitch(recs)
}

// split routes each record's address range to its shard groups,
// cutting at group boundaries. A record's tasks land in consecutive
// groups, and within each group tasks are appended in record order —
// the two invariants stitch relies on.
func (p *planner) split(recs []trace.Record) {
	for g := 0; g < p.workers; g++ {
		p.tasks[g] = p.tasks[g][:0]
	}
	for i := range recs {
		b, end := recs[i].Block, recs[i].End()
		if b >= end {
			continue
		}
		g := p.groupOf[p.c.table.ShardOf(b)]
		for b < end {
			n := end - b
			if bound := p.groupEnd[g]; bound-b < n {
				n = bound - b
			}
			p.tasks[g] = append(p.tasks[g], planTask{rec: int32(i), b: b, n: n})
			b += n
			g++
		}
	}
}

// classify runs group g's tasks against the index, read-only. Each
// task's extents and shard stamps land in the group's private arenas,
// located by taskOut.
//
// Under lookahead (c.gated) every task is classified inside one
// read-side critical section of the plan gate: all index mutation is
// write-gated while lookahead is active, so within the section the
// shard state is frozen — the stamps captured here are exact for every
// lookup of the task, which is what lets the apply stage trust a plan
// whose stamps still match. Without lookahead no mutator can run at
// all during the plan phase, and the same code runs lock-free.
// classifyWindow is how many tasks one read-side critical section of
// the plan gate classifies: large enough that gate traffic vanishes
// from the profile, small enough that the apply stage's write lock
// never waits long (a window's lookups are a few dozen tree descents).
const classifyWindow = 32

func (p *planner) classify(g int) {
	segs := p.arenas[g][:0]
	stamps := p.stArena[g][:0]
	out := p.taskOut[g][:0]
	c := p.c
	table := c.table
	gated := c.gated
	tasks := p.tasks[g]
	for start := 0; start < len(tasks); start += classifyWindow {
		win := tasks[start:]
		if len(win) > classifyWindow {
			win = win[:classifyWindow]
		}
		if gated {
			c.gate.RLock()
		}
		// Within one critical section the index is frozen (all mutation
		// is write-gated while lookahead is active), so every stamp
		// below is exact for every lookup of its window.
		for _, t := range win {
			off, stOff := len(segs), len(stamps)
			for s, s1 := table.ShardOf(t.b), table.ShardOf(t.b+t.n-1); s <= s1; s++ {
				stamps = append(stamps, shardStamp{shard: s, ver: table.ShardVersion(s)})
			}
			b, end := t.b, t.b+t.n
			for b < end {
				m, n, ok := table.LookupRun(b, end-b)
				segs = append(segs, planSeg{n: n, cache: m.Cache, hit: ok})
				b += n
			}
			out = append(out, taskResult{
				off: int32(off), cnt: int32(len(segs) - off),
				stOff: int32(stOff), stCnt: int32(len(stamps) - stOff),
			})
		}
		if gated {
			c.gate.RUnlock()
		}
	}
	p.arenas[g] = segs
	p.stArena[g] = stamps
	p.taskOut[g] = out
}

// stitch reassembles each record's plan from its per-group fragments,
// merging extents across group boundaries exactly as Table.LookupRun
// merges them across shard boundaries: adjacent hit runs fuse iff the
// cache addresses continue, adjacent gaps always fuse. Within one
// fragment extents are already maximal, so the merge only ever fires
// at a boundary. Stamps concatenate per fragment — tasks partition the
// record's shard span without overlap, in ascending shard order — so a
// record's plan covers every shard its classification read, each at
// the version it was read.
func (p *planner) stitch(recs []trace.Record) []recordPlan {
	o := &p.out[p.cur]
	if cap(o.plans) < len(recs) {
		o.plans = make([]recordPlan, len(recs))
	}
	o.plans = o.plans[:len(recs)]
	o.segs = o.segs[:0]
	o.stamps = o.stamps[:0]
	for g := range p.cursor {
		p.cursor[g] = 0
	}
	if cap(o.spans) < len(recs) {
		o.spans = make([]planSpan, len(recs))
	}
	o.spans = o.spans[:len(recs)]

	table := p.c.table
	for i := range recs {
		b, end := recs[i].Block, recs[i].End()
		segOff, stOff := len(o.segs), len(o.stamps)
		if b < end {
			s0, s1 := table.ShardOf(b), table.ShardOf(end-1)
			for g := p.groupOf[s0]; g <= p.groupOf[s1]; g++ {
				k := p.cursor[g]
				p.cursor[g]++
				out := p.taskOut[g][k]
				frag := p.arenas[g][out.off : out.off+out.cnt]
				for _, s := range frag {
					if n := len(o.segs); n > segOff {
						last := &o.segs[n-1]
						if last.hit && s.hit && s.cache == last.cache+last.n {
							last.n += s.n
							continue
						}
						if !last.hit && !s.hit {
							last.n += s.n
							continue
						}
					}
					o.segs = append(o.segs, s)
				}
				o.stamps = append(o.stamps, p.stArena[g][out.stOff:out.stOff+out.stCnt]...)
			}
		}
		o.spans[i] = planSpan{segOff, len(o.segs) - segOff, stOff, len(o.stamps) - stOff}
	}
	for i, sp := range o.spans {
		o.plans[i] = recordPlan{
			segs:   o.segs[sp.segOff : sp.segOff+sp.segN],
			stamps: o.stamps[sp.stOff : sp.stOff+sp.stN],
		}
	}
	return o.plans
}
