package core

import (
	"testing"

	"craid/internal/fault"
	"craid/internal/sim"
	"craid/internal/trace"
)

// withScheduler runs fn with the process default event scheduler forced
// to kind, restoring the previous default afterwards.
func withScheduler(kind sim.SchedulerKind, fn func()) {
	prev := sim.DefaultScheduler()
	sim.SetDefaultScheduler(kind)
	defer sim.SetDefaultScheduler(prev)
	fn()
}

// TestSchedulerReplayBitIdentical is the timing wheel's acceptance
// property at the controller level: a full replay — stats, per-device
// I/O totals, index population, and the response-time distributions —
// is bit-identical between the wheel and the binary-heap engine, at
// every pipeline shape the multi-queue matrix exercises (including the
// CI race matrix's CRAID_TEST_LOOKAHEAD / CRAID_TEST_AFFINITY point).
func TestSchedulerReplayBitIdentical(t *testing.T) {
	recs := randomWorkload(11, 3000, 12000)
	cells := []struct {
		shards, workers, lookahead int
		affinity                   bool
	}{
		{1, 1, 0, false},
		{16, 4, 0, false},
		{16, 4, 2, false},
		{16, 4, 2, true},
		{16, 4, testLookahead(), testAffinity()},
	}
	for _, c := range cells {
		var wheel, heap mqOutcome
		withScheduler(sim.SchedulerWheel, func() {
			wheel, _ = replayMQMatrix(t, recs, 64, c.shards, c.workers, c.lookahead, c.affinity, ReplayConfig{})
		})
		withScheduler(sim.SchedulerHeap, func() {
			heap, _ = replayMQMatrix(t, recs, 64, c.shards, c.workers, c.lookahead, c.affinity, ReplayConfig{})
		})
		if wheel != heap {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: schedulers diverged\nwheel %+v\nheap  %+v",
				c.shards, c.workers, c.lookahead, c.affinity, wheel, heap)
		}
	}
}

// TestSchedulerDegradedReplayBitIdentical extends the wheel-vs-heap pin
// to the fault fabric: disk failure at time zero, retries, degraded
// reconstruction and a rebuild all ride timed events, so the full
// FaultStats must agree along with the controller outcome.
func TestSchedulerDegradedReplayBitIdentical(t *testing.T) {
	recs := randomWorkload(9, 2000, 12000)
	plan, err := fault.ParsePlan("seed=9;fail:2@0s;rebuild:2@50ms")
	if err != nil {
		t.Fatal(err)
	}
	shards, workers, lookahead, affinity := benchFaultParams()
	run := func(kind sim.SchedulerKind) (out mqOutcome, fs FaultStats) {
		withScheduler(kind, func() {
			eng := sim.NewEngine()
			c, arr := newMQCRAIDAffinity(eng, 64, shards, workers, lookahead, affinity)
			rt, err := InstallFaults(arr, c, plan, FaultOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
				t.Fatal(err)
			}
			if err := rt.Err(); err != nil {
				t.Fatal(err)
			}
			r, w := ioTotals(arr)
			out = mqOutcome{
				stats: *c.Stats(), reads: r, writes: w, maps: c.table.Len(),
				readLat:  c.ReadLatency().String(),
				writeLat: c.WriteLatency().String(),
			}
			fs = *rt.Stats()
		})
		return out, fs
	}
	wheelOut, wheelFS := run(sim.SchedulerWheel)
	heapOut, heapFS := run(sim.SchedulerHeap)
	if wheelOut != heapOut {
		t.Errorf("degraded replay diverged between schedulers\nwheel %+v\nheap  %+v", wheelOut, heapOut)
	}
	if wheelFS != heapFS {
		t.Errorf("fault stats diverged between schedulers\nwheel %+v\nheap  %+v", wheelFS, heapFS)
	}
}

// TestSchedulerCompoundFaultBitIdentical extends the wheel-vs-heap pin
// to the compound fabric: a heterogeneous per-device sub-plan, a
// mid-replay retain upgrade, and a crash-restart storm in one run.
// Upgrade drain joins, storm cycles and the injector windows all ride
// timed events, so FaultStats — including the upgrade KPIs — must
// agree along with the controller outcome.
func TestSchedulerCompoundFaultBitIdentical(t *testing.T) {
	recs := randomWorkload(21, 2000, 12000)
	plan, err := fault.ParsePlan(
		"seed=9;dev:1{transient@2ms-30ms,rate=0.05,lat=2};expand@6ms,disks=2,retain;storm:crash@12ms,n=2,every=8ms")
	if err != nil {
		t.Fatal(err)
	}
	shards, workers, lookahead, affinity := benchFaultParams()
	run := func(kind sim.SchedulerKind) (out mqOutcome, fs FaultStats) {
		withScheduler(kind, func() {
			eng := sim.NewEngine()
			c, arr := newMQCRAIDAffinity(eng, 64, shards, workers, lookahead, affinity)
			rt, err := InstallFaults(arr, c, plan, FaultOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rt.SetDeviceFactory(nullFactory(eng))
			if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
				t.Fatal(err)
			}
			if err := rt.Err(); err != nil {
				t.Fatal(err)
			}
			r, w := ioTotals(arr)
			out = mqOutcome{
				stats: *c.Stats(), reads: r, writes: w, maps: c.table.Len(),
				readLat:  c.ReadLatency().String(),
				writeLat: c.WriteLatency().String(),
			}
			fs = *rt.Stats()
		})
		return out, fs
	}
	wheelOut, wheelFS := run(sim.SchedulerWheel)
	heapOut, heapFS := run(sim.SchedulerHeap)
	if wheelFS.Upgrades != 1 || wheelFS.Restarts != 2 {
		t.Fatalf("compound plan did not exercise the fabric: %+v", wheelFS)
	}
	if wheelOut != heapOut {
		t.Errorf("compound replay diverged between schedulers\nwheel %+v\nheap  %+v", wheelOut, heapOut)
	}
	if wheelFS != heapFS {
		t.Errorf("compound fault stats diverged between schedulers\nwheel %+v\nheap  %+v", wheelFS, heapFS)
	}
}
