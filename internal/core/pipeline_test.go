package core

import (
	"bytes"
	"reflect"
	"testing"

	"craid/internal/mapcache"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// TestLookaheadPlanStageRuns pins that PlanLookahead actually engages
// the overlapped pipeline — batches are planned on the plan stage, the
// plan-side counters populate, and validated plans are applied — not
// just that results match.
func TestLookaheadPlanStageRuns(t *testing.T) {
	recs := randomWorkload(5, 4000, 12000)
	eng := sim.NewEngine()
	c, _ := newMQCRAID(eng, 64, 16, 8, 1)
	_, st, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if st.PlannedBatches == 0 {
		t.Fatalf("plan stage never planned: %+v", st)
	}
	if st.PlanHighWater < 1 {
		t.Fatalf("plan ring never held a batch: %+v", st)
	}
	mq := *c.MQ()
	if mq.Planned == 0 || mq.Applied+mq.Replanned != mq.Planned {
		t.Fatalf("planned %d, applied %d + replanned %d", mq.Planned, mq.Applied, mq.Replanned)
	}
	if c.gated {
		t.Fatal("plan gate still engaged after ReplayWith returned")
	}
}

// TestLookaheadDegradesGracefully pins that lookahead without an
// effective concurrent planner (one worker, or a single-shard index)
// runs the plain pipeline: no plan stage, no planner activity, and the
// sequential outcome.
func TestLookaheadDegradesGracefully(t *testing.T) {
	recs := randomWorkload(9, 2000, 8000)
	ref, _ := replayMQLookahead(t, recs, 64, 1, 1, 0, ReplayConfig{})
	for _, tc := range []struct{ shards, workers int }{{16, 1}, {1, 8}} {
		eng := sim.NewEngine()
		c, _ := newMQCRAID(eng, 64, tc.shards, tc.workers, 1)
		_, st, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if st.PlannedBatches != 0 || st.PlanHighWater != 0 {
			t.Errorf("shards=%d workers=%d: plan stage ran: %+v", tc.shards, tc.workers, st)
		}
		if got := *c.MQ(); got != (MQStats{}) {
			t.Errorf("shards=%d workers=%d: planner ran: %+v", tc.shards, tc.workers, got)
		}
		if *c.Stats() != ref.stats {
			t.Errorf("shards=%d workers=%d: stats diverged", tc.shards, tc.workers)
		}
	}
}

// replayLogged replays recs on a fresh multi-queue controller with the
// given lookahead, logging dirty translations to w, and returns the
// controller.
func replayLogged(t *testing.T, recs []trace.Record, lookahead int, w interface {
	Write([]byte) (int, error)
}) *CRAID {
	t.Helper()
	eng := sim.NewEngine()
	c, _ := newMQCRAID(eng, 64, 16, 8, lookahead)
	c.SetMappingLog(w)
	if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{BatchSize: 200}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLookaheadLogRingRecovery is the end-to-end batched-flush
// property: a mapping log written through mapcache.LogRing by the
// overlapped pipeline is byte-identical to the synchronous log the
// sequential pipeline writes, and a crash cut at an arbitrary byte of
// either recovers the same mappings into a fresh controller. The small
// cache forces heavy eviction churn, so the log carries all three
// record kinds.
func TestLookaheadLogRingRecovery(t *testing.T) {
	recs := randomWorkload(31, 3000, 12000)

	var syncLog bytes.Buffer
	replayLogged(t, recs, 0, &syncLog)

	var ringLog bytes.Buffer
	ring := mapcache.NewLogRing(&ringLog, 512, 3)
	replayLogged(t, recs, 1, ring)
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(syncLog.Bytes(), ringLog.Bytes()) {
		t.Fatalf("ring log diverged from synchronous log (%d vs %d bytes)", ringLog.Len(), syncLog.Len())
	}
	if st := ring.Stats(); st.Records == 0 || st.Flushes == 0 {
		t.Fatalf("log ring never used: %+v", st)
	}

	total := syncLog.Len()
	for _, cut := range []int{0, 17, total / 2, total/2 + 9, total - 1, total} {
		recover := func(log []byte) (int, []mapcache.Mapping) {
			eng := sim.NewEngine()
			c, _ := newMQCRAID(eng, 64, 16, 8, 0)
			n, err := c.Recover(bytes.NewReader(log))
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			return n, c.table.DirtyMappings()
		}
		nSync, dirtySync := recover(syncLog.Bytes()[:cut])
		nRing, dirtyRing := recover(ringLog.Bytes()[:cut])
		if nSync != nRing || !reflect.DeepEqual(dirtySync, dirtyRing) {
			t.Errorf("cut %d: recovered %d/%d mappings, dirty sets diverged", cut, nRing, nSync)
		}
	}
}

// countingSyncLog is a log sink with an fsync hook.
type countingSyncLog struct {
	bytes.Buffer
	syncs int
}

func (w *countingSyncLog) Sync() error { w.syncs++; return nil }

// TestMapLogSyncKnob is the Config.MapLogSync crash-recovery test at
// both settings: SetMappingLog arms fsync-on-flush on the ring exactly
// when the config asks for it, the writer then syncs once per flushed
// buffer, and the recovery byte stream — and the mappings a fresh
// controller recovers from it — is identical at both settings.
func TestMapLogSyncKnob(t *testing.T) {
	recs := randomWorkload(13, 3000, 8000)
	var logs [2][]byte
	for i, syncOn := range []bool{false, true} {
		eng := sim.NewEngine()
		arr := nullArray(eng, 4, 100000)
		disks := []int{0, 1, 2, 3}
		paLayout := raid.NewRAID5(4, 4, 4096, 4)
		c := mustCRAID(arr, Config{
			Policy:       "WLRU",
			CachePerDisk: 64,
			ParityGroup:  4,
			StripeUnit:   4,
			MapLogSync:   syncOn,
		}, true, disks, 0, paLayout, disks, 64)
		var sink countingSyncLog
		ring := mapcache.NewLogRing(&sink, 512, 3)
		c.SetMappingLog(ring)
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{BatchSize: 200}); err != nil {
			t.Fatal(err)
		}
		if err := ring.Close(); err != nil {
			t.Fatal(err)
		}
		st := ring.Stats()
		if syncOn && (sink.syncs == 0 || st.Syncs != int64(sink.syncs)) {
			t.Fatalf("MapLogSync on: %d fsyncs observed, stats say %d", sink.syncs, st.Syncs)
		}
		if !syncOn && (sink.syncs != 0 || st.Syncs != 0) {
			t.Fatalf("MapLogSync off: log was fsynced %d times", sink.syncs)
		}
		logs[i] = sink.Bytes()
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatalf("log streams diverged across MapLogSync settings (%d vs %d bytes)", len(logs[0]), len(logs[1]))
	}
	// Crash recovery from the synced log is the same as from the
	// unsynced one at any cut — the knob changes durability, not bytes.
	for _, cut := range []int{0, len(logs[0]) / 2, len(logs[0])} {
		a, err := mapcache.Recover(bytes.NewReader(logs[0][:cut]))
		if err != nil {
			t.Fatal(err)
		}
		b, err := mapcache.Recover(bytes.NewReader(logs[1][:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cut %d: recovery diverged across MapLogSync settings", cut)
		}
	}
}
