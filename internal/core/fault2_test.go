package core

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"

	"craid/internal/disk"
	"craid/internal/fault"
	"craid/internal/mapcache"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// testFaultClass is the CRAID_TEST_FAULT knob: which fault-scenario
// class ("single", "double", "storm", "expand") this CI cell sweeps
// across the full pipeline matrix. Determinism tests of the other
// classes trim to one deep corner cell, so a matrix job stays bounded
// while every class still runs everywhere.
func testFaultClass() string {
	return os.Getenv("CRAID_TEST_FAULT")
}

// sweepFaultMatrix drives run over the acceptance matrix — shards
// {1,2,5,16} × workers {1,2,8} × lookahead {0,1,2} × affinity
// {off,on} — skipping the (1,1,0,off) reference cell the caller
// already replayed. Under the race detector the affinity dimension
// collapses to the CRAID_TEST_AFFINITY baseline, and when another
// fault class owns this CI cell the whole sweep collapses to one deep
// corner.
func sweepFaultMatrix(t *testing.T, class string, run func(shards, workers, lookahead int, affinity bool)) {
	t.Helper()
	if knob := testFaultClass(); knob != "" && knob != class {
		run(16, 8, testLookahead(), testAffinity())
		return
	}
	affinities := []bool{false, true}
	if raceEnabled {
		affinities = []bool{testAffinity()}
	}
	for _, shards := range []int{1, 2, 5, 16} {
		for _, workers := range []int{1, 2, 8} {
			for _, lookahead := range []int{0, 1, 2} {
				for _, affinity := range affinities {
					if shards == 1 && workers == 1 && lookahead == 0 && !affinity {
						continue
					}
					run(shards, workers, lookahead, affinity)
				}
			}
		}
	}
}

// newMQCRAID6Affinity is the double-fault rig: a 6-disk shared-cache
// CRAID whose cache and archive partitions are both RAID-6, so two
// overlapping erasures stay within the parity budget.
func newMQCRAID6Affinity(eng *sim.Engine, cachePerDisk int64, shards, workers, lookahead int, affinity bool) (*CRAID, *Array) {
	arr := nullArray(eng, 6, 100000)
	disks := []int{0, 1, 2, 3, 4, 5}
	paLayout := raid.NewRAID6(6, 6, 4096, 4)
	c := mustCRAID(arr, Config{
		Policy:         "WLRU",
		CachePerDisk:   cachePerDisk,
		ParityGroup:    6,
		StripeUnit:     4,
		Level:          PCRaid6,
		MapShards:      shards,
		MonitorWorkers: workers,
		PlanLookahead:  lookahead,
		WorkerAffinity: affinity,
	}, true, disks, 0, paLayout, disks, cachePerDisk)
	return c, arr
}

// replayFaultRig is replayFaultMQAffinity over an arbitrary controller
// rig, for the compound scenarios that need RAID-6 geometry.
func replayFaultRig(t *testing.T, rig func(*sim.Engine, int64, int, int, int, bool) (*CRAID, *Array),
	recs []trace.Record, spec string, shards, workers, lookahead int, affinity bool) (mqOutcome, FaultStats, []disk.Stats) {
	t.Helper()
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	c, arr := rig(eng, 64, shards, workers, lookahead, affinity)
	rt, err := InstallFaults(arr, c, plan, testFaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HasExpand() {
		rt.SetDeviceFactory(nullFactory(eng))
	}
	n, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(recs)) {
		t.Fatalf("replayed %d of %d", n, len(recs))
	}
	if err := rt.Err(); err != nil {
		t.Fatal(err)
	}
	r, w := ioTotals(arr)
	devs := make([]disk.Stats, arr.Devices())
	for i := range devs {
		devs[i] = *arr.Device(i).Stats()
	}
	return mqOutcome{
		stats: *c.Stats(), reads: r, writes: w, maps: c.table.Len(),
		readLat:  c.ReadLatency().String(),
		writeLat: c.WriteLatency().String(),
	}, *rt.Stats(), devs
}

// TestDoubleFaultDeterminismAcrossPipelines is the compound-failure
// acceptance property: a second disk dies while the first one's
// rebuild is walking, a crash-restart tears the rebuild down mid-walk,
// and a second rebuild overlaps the restarted first — and the whole
// outcome is bit-identical at every pipeline setting. RAID-6 keeps the
// double erasure within budget, so nothing is lost and the walker
// re-plans (deeper decode) instead of aborting.
func TestDoubleFaultDeterminismAcrossPipelines(t *testing.T) {
	const spec = "seed=9;fail:1@4ms;rebuild:1@6ms,rate=64;fail:4@9ms;crash@30ms;rebuild:4@40ms,rate=64"
	recs := randomWorkload(13, 2500, 12000)
	ref, refFaults, refDevs := replayFaultRig(t, newMQCRAID6Affinity, recs, spec, 1, 1, 0, false)
	if refFaults.Failures != 2 || refFaults.Restarts != 1 {
		t.Fatalf("plan did not exercise the compound fabric: %+v", refFaults)
	}
	if refFaults.RebuildRestarts == 0 {
		t.Fatalf("crash did not restart the active rebuild: %+v", refFaults)
	}
	if refFaults.LostExtents != 0 || refFaults.RebuildLostRows != 0 {
		t.Fatalf("RAID-6 double fault lost data: %+v", refFaults)
	}
	sweepFaultMatrix(t, "double", func(shards, workers, lookahead int, affinity bool) {
		got, gotFaults, gotDevs := replayFaultRig(t, newMQCRAID6Affinity, recs, spec, shards, workers, lookahead, affinity)
		if got != ref {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: controller outcome diverged",
				shards, workers, lookahead, affinity)
		}
		if gotFaults != refFaults {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: fault stats diverged\n  got  %+v\n  want %+v",
				shards, workers, lookahead, affinity, gotFaults, refFaults)
		}
		if !reflect.DeepEqual(gotDevs, refDevs) {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: device counters diverged",
				shards, workers, lookahead, affinity)
		}
	})
}

// TestStormDeterminismAcrossPipelines pins a crash-restart storm plus a
// heterogeneous per-device sub-plan to bit-identical outcomes across
// the pipeline matrix.
func TestStormDeterminismAcrossPipelines(t *testing.T) {
	const spec = "seed=9;dev:1{transient@2ms-30ms,rate=0.05,lat=2};storm:crash@10ms,n=3,every=8ms"
	recs := randomWorkload(11, 3000, 12000)
	ref, refFaults, refDevs := replayFaultMQAffinity(t, recs, spec, 1, 1, 0, false)
	if refFaults.Restarts != 3 {
		t.Fatalf("storm fired %d restarts, want 3: %+v", refFaults.Restarts, refFaults)
	}
	if refFaults.Transients == 0 {
		t.Fatalf("device sub-plan injected nothing: %+v", refFaults)
	}
	sweepFaultMatrix(t, "storm", func(shards, workers, lookahead int, affinity bool) {
		got, gotFaults, gotDevs := replayFaultMQAffinity(t, recs, spec, shards, workers, lookahead, affinity)
		if got != ref {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: controller outcome diverged",
				shards, workers, lookahead, affinity)
		}
		if gotFaults != refFaults {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: fault stats diverged",
				shards, workers, lookahead, affinity)
		}
		if !reflect.DeepEqual(gotDevs, refDevs) {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: device counters diverged",
				shards, workers, lookahead, affinity)
		}
	})
}

// TestExpandUnderLoadDeterminismAcrossPipelines pins a mid-replay
// retain upgrade — followed by the death and rebuild of one of the
// devices the upgrade added — to bit-identical outcomes across the
// pipeline matrix.
func TestExpandUnderLoadDeterminismAcrossPipelines(t *testing.T) {
	const spec = "seed=9;expand@6ms,disks=2,retain;fail:4@12ms;rebuild:4@16ms,rate=64"
	recs := randomWorkload(17, 3000, 12000)
	ref, refFaults, refDevs := replayFaultMQAffinity(t, recs, spec, 1, 1, 0, false)
	if refFaults.Upgrades != 1 || refFaults.ExpandMigrated == 0 {
		t.Fatalf("retain upgrade did not migrate: %+v", refFaults)
	}
	if refFaults.Failures != 1 || refFaults.RebuildRows == 0 {
		t.Fatalf("post-expand failure did not rebuild: %+v", refFaults)
	}
	if refFaults.LostExtents != 0 {
		t.Fatalf("expansion scenario lost extents: %+v", refFaults)
	}
	if len(refDevs) != 6 {
		t.Fatalf("array holds %d devices, want 6 after the upgrade", len(refDevs))
	}
	sweepFaultMatrix(t, "expand", func(shards, workers, lookahead int, affinity bool) {
		got, gotFaults, gotDevs := replayFaultMQAffinity(t, recs, spec, shards, workers, lookahead, affinity)
		if got != ref {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: controller outcome diverged",
				shards, workers, lookahead, affinity)
		}
		if gotFaults != refFaults {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: fault stats diverged\n  got  %+v\n  want %+v",
				shards, workers, lookahead, affinity, gotFaults, refFaults)
		}
		if !reflect.DeepEqual(gotDevs, refDevs) {
			t.Errorf("shards=%d workers=%d lookahead=%d affinity=%v: device counters diverged",
				shards, workers, lookahead, affinity)
		}
	})
}

// TestRebuildDoubleFaultRAID6RePlansAroundSecondErasure pins the
// mid-rebuild re-plan against a brute-force reference on a quiet
// array: the rebuild's batch schedule is exact (null devices, paced
// starts), so the reference walks the batch start times, decides per
// batch how many peers survive the second erasure, and predicts
// PeerReads and the rebuild's completion instant to the nanosecond.
func TestRebuildDoubleFaultRAID6RePlansAroundSecondErasure(t *testing.T) {
	const (
		deadA   = 1
		deadB   = 4
		rate    = 64.0
		tFail   = 1 * sim.Millisecond
		tBuild  = 2 * sim.Millisecond
		tSecond = 5 * sim.Millisecond
	)
	eng := sim.NewEngine()
	arr := nullArray(eng, 6, 10000)
	lay := raid.NewRAID6(6, 6, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3, 4, 5}, 0)
	rt := installPlan(t, arr, ctl,
		"seed=1;fail:1@1ms;rebuild:1@2ms,rate=64;fail:4@5ms")

	rows := lay.BlocksPerDisk() / lay.StripeUnitBlocks()
	peers := int64(len(lay.DiskPeers(deadA, nil)))
	// Brute-force schedule walk: batch k starts at tBuild + k*pace (the
	// per-batch service time on null devices is just the decode charge,
	// well under the pace), reads one unit run from every peer alive at
	// its start, and solves one or two erasures accordingly.
	var wantPeer, remaining int64 = 0, rows
	start := tBuild
	pace := sim.Time(float64(int64(rebuildBatchRows)*lay.StripeUnitBlocks()*disk.BlockSize) * 1000 / rate)
	for remaining > 0 {
		batchRows := int64(rebuildBatchRows)
		if remaining < batchRows {
			batchRows = remaining
		}
		remaining -= batchRows
		missing := int64(1)
		if start >= tSecond {
			missing = 2
		}
		wantPeer += peers - (missing - 1)
		// The next step — the one that notices the walk is done and
		// finishes the rebuild — is paced off this batch's start.
		start += pace
	}
	wantEnd := start

	st := rt.Stats()
	if st.RebuildRows != rows || st.RebuildLostRows != 0 {
		t.Fatalf("rebuild covered %d rows (lost %d), want all %d", st.RebuildRows, st.RebuildLostRows, rows)
	}
	if st.PeerReads != wantPeer {
		t.Fatalf("rebuild issued %d peer reads, brute-force reference wants %d", st.PeerReads, wantPeer)
	}
	if st.RebuildEnd != wantEnd {
		t.Fatalf("rebuild finished at %v, reference wants %v", st.RebuildEnd, wantEnd)
	}
	// The rebuilt device rejoined; the un-rebuilt second casualty did
	// not, and its blocks still reconstruct (within RAID-6's budget).
	if s := arr.Device(deadA).Stats(); s.Writes == 0 {
		t.Fatal("spare received no rebuild writes")
	}
	for b := int64(0); b < lay.DataBlocks(); b++ {
		if lay.Locate(b).Disk == deadB {
			if got := submitAndRun(eng, ctl, disk.OpRead, b, 1); got == 0 {
				t.Fatalf("block %d on the un-rebuilt disk served natively", b)
			}
			break
		}
	}
	if st.LostExtents != 0 {
		t.Fatalf("RAID-6 double fault lost %d extents", st.LostExtents)
	}
}

// TestRebuildDoubleFaultRAID5AbortsAtParityBudget pins the loss
// boundary: on RAID-5 a second erasure mid-rebuild exceeds the parity
// budget exactly at the batch where it lands — the rows already walked
// stay counted, every remaining row counts lost, the walk aborts at
// that batch's start instant, and the device never rejoins.
func TestRebuildDoubleFaultRAID5AbortsAtParityBudget(t *testing.T) {
	const (
		deadA   = 1
		rate    = 64.0
		tBuild  = 2 * sim.Millisecond
		tSecond = 5 * sim.Millisecond
	)
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	lay := raid.NewRAID5(4, 4, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3}, 0)
	rt := installPlan(t, arr, ctl,
		"seed=1;fail:1@1ms;rebuild:1@2ms,rate=64;fail:3@5ms")

	rows := lay.BlocksPerDisk() / lay.StripeUnitBlocks()
	pace := sim.Time(float64(int64(rebuildBatchRows)*lay.StripeUnitBlocks()*disk.BlockSize) * 1000 / rate)
	// Reference: batches starting before the second failure complete;
	// the first batch at or after it aborts the walk.
	var wantRows int64
	start := tBuild
	for start < tSecond && wantRows < rows {
		batch := int64(rebuildBatchRows)
		if rows-wantRows < batch {
			batch = rows - wantRows
		}
		wantRows += batch
		start += pace
	}
	st := rt.Stats()
	if st.RebuildRows != wantRows {
		t.Fatalf("rebuild walked %d rows before the abort, reference wants %d", st.RebuildRows, wantRows)
	}
	if want := rows - wantRows; st.RebuildLostRows != want {
		t.Fatalf("RebuildLostRows = %d, reference wants %d", st.RebuildLostRows, want)
	}
	if st.RebuildEnd != start {
		t.Fatalf("walk aborted at %v, reference wants %v", st.RebuildEnd, start)
	}
	// The device never rejoins: a read of one of its blocks is beyond
	// redundancy with the second disk also down.
	for b := int64(0); b < lay.DataBlocks(); b++ {
		if lay.Locate(b).Disk == deadA {
			err := ctl.Submit(trace.Record{Op: disk.OpRead, Block: b, Count: 1}, func(sim.Time) {})
			eng.Run()
			var lost *LostError
			if !errors.As(err, &lost) {
				t.Fatalf("post-abort read of block %d: err = %v, want LostError", b, err)
			}
			break
		}
	}
}

// TestCrashDuringRebuildRestartsFromRowZero pins the crash/rebuild
// interaction exactly: the crash tears down the in-flight walk
// (stale-epoch chains complete as timing only) and relaunches it from
// row zero at the crash instant, so the total rows counted are the
// pre-crash progress plus one full re-walk, and the batch schedule
// after the crash is exact.
func TestCrashDuringRebuildRestartsFromRowZero(t *testing.T) {
	const (
		rate   = 64.0
		tBuild = 2 * sim.Millisecond
		tCrash = 5 * sim.Millisecond
	)
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 100000)
	disks := []int{0, 1, 2, 3}
	paLayout := raid.NewRAID5(4, 4, 160, 4)
	c := mustCRAID(arr, Config{
		Policy:       "WLRU",
		CachePerDisk: 64,
		ParityGroup:  4,
		StripeUnit:   4,
	}, true, disks, 0, paLayout, disks, 64)
	rt := installPlan(t, arr, c, "seed=1;fail:1@1ms;rebuild:1@2ms,rate=64;crash@5ms")

	// Rows per walk: the cache partition's then the archive's.
	pcRows := c.pc.red.BlocksPerDisk() / c.pc.red.StripeUnitBlocks()
	paRows := paLayout.BlocksPerDisk() / paLayout.StripeUnitBlocks()
	total := pcRows + paRows
	pace := sim.Time(float64(int64(rebuildBatchRows)*4*disk.BlockSize) * 1000 / rate)
	// Pre-crash progress: batches whose completion (start + decode
	// charge, null devices) lands before the crash.
	var preRows, walked int64
	start := tBuild
	for walked < total {
		left := pcRows - walked
		if walked >= pcRows {
			left = total - walked
		}
		batch := int64(rebuildBatchRows)
		if left < batch {
			batch = left
		}
		done := start + testFaultOptions.ReconPerBlock*sim.Time(batch*4)
		if done >= tCrash {
			break
		}
		preRows += batch
		walked += batch
		start += pace
	}
	st := rt.Stats()
	if st.Restarts != 1 || st.RebuildRestarts != 1 {
		t.Fatalf("crash/restart counters %+v, want 1 restart of 1 rebuild", st)
	}
	if want := preRows + total; st.RebuildRows != want {
		t.Fatalf("RebuildRows = %d, want %d pre-crash + %d re-walked", st.RebuildRows, preRows, total)
	}
	if st.RebuildLostRows != 0 {
		t.Fatalf("restarted rebuild lost %d rows", st.RebuildLostRows)
	}
	// The re-walk starts at the crash instant and paces batch starts
	// from there; the finishing step runs one pace after the last
	// batch's start: tCrash + batches*pace.
	batches := (pcRows + rebuildBatchRows - 1) / rebuildBatchRows
	batches += (paRows + rebuildBatchRows - 1) / rebuildBatchRows
	wantEnd := tCrash + sim.Time(batches)*pace
	if st.RebuildEnd != wantEnd {
		t.Fatalf("restarted rebuild finished at %v, reference wants %v", st.RebuildEnd, wantEnd)
	}
	// The device rejoined after the re-walk.
	if got := submitAndRun(eng, c, disk.OpRead, 0, 1); got != 0 {
		t.Fatalf("post-rebuild read took %v on instant devices", got)
	}
}

// TestStormMatchesExplicitCrashes pins the storm generator as pure
// sugar: storm:crash@T,n=K,every=D produces the bit-identical run to
// spelling the K crashes out individually.
func TestStormMatchesExplicitCrashes(t *testing.T) {
	recs := randomWorkload(19, 2500, 12000)
	storm, stormFaults, stormDevs := replayFaultMQAffinity(t, recs,
		"seed=5;storm:crash@10ms,n=3,every=7ms", 2, 2, testLookahead(), testAffinity())
	flat, flatFaults, flatDevs := replayFaultMQAffinity(t, recs,
		"seed=5;crash@10ms;crash@17ms;crash@24ms", 2, 2, testLookahead(), testAffinity())
	if stormFaults.Restarts != 3 {
		t.Fatalf("storm fired %d restarts, want 3", stormFaults.Restarts)
	}
	if storm != flat || stormFaults != flatFaults || !reflect.DeepEqual(stormDevs, flatDevs) {
		t.Fatal("storm run diverged from the explicit-crash spelling")
	}
}

// TestCrashRestartStormLogRingMatchesSyncControl is the K-cycle
// crash/recover property: a storm of crash-restart cycles over one
// trace, each recovering from a LogRing Barrier'd in-memory mirror,
// produces the same final Stats, fault counters, dirty mapping state,
// histograms and log byte stream as the synchronous-log control run of
// the same storm — the ring changes scheduling, never contents, even
// when the controller dies K times.
func TestCrashRestartStormLogRingMatchesSyncControl(t *testing.T) {
	recs := randomWorkload(31, 4000, 12000)
	const spec = "seed=5;storm:crash@12ms,n=4,every=9ms"

	type outcome struct {
		faults FaultStats
		stats  Stats
		dirty  []mapcache.Mapping
		rd, wr string
	}
	run := func(useRing bool) (outcome, []byte) {
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		c, arr := newMQCRAID(eng, 64, 16, 8, testLookahead())
		var log bytes.Buffer
		var ring *mapcache.LogRing
		if useRing {
			ring = mapcache.NewLogRing(&log, 512, 3)
			c.SetMappingLog(ring)
		} else {
			c.SetMappingLog(&log)
		}
		rt, err := InstallFaults(arr, c, plan, testFaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		rt.SetCrashSource(func() (io.Reader, error) {
			if ring != nil {
				if err := ring.Barrier(); err != nil {
					return nil, err
				}
			}
			return bytes.NewReader(log.Bytes()), nil
		})
		if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Err(); err != nil {
			t.Fatal(err)
		}
		if ring != nil {
			if err := ring.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return outcome{
			faults: *rt.Stats(),
			stats:  *c.Stats(),
			dirty:  c.table.DirtyMappings(),
			rd:     c.ReadLatency().String(),
			wr:     c.WriteLatency().String(),
		}, log.Bytes()
	}

	sync, syncLog := run(false)
	ringO, ringLog := run(true)
	if sync.faults.Restarts != 4 {
		t.Fatalf("storm fired %d restarts, want 4: %+v", sync.faults.Restarts, sync.faults)
	}
	if sync.faults.RecoveredMappings == 0 {
		t.Fatal("no cycle recovered mappings; the workload should have dirtied the cache")
	}
	if ringO.faults != sync.faults {
		t.Errorf("fault stats diverged over %d cycles:\n  ring %+v\n  sync %+v",
			sync.faults.Restarts, ringO.faults, sync.faults)
	}
	if ringO.stats != sync.stats {
		t.Error("controller stats diverged between ring and sync logs")
	}
	if !reflect.DeepEqual(ringO.dirty, sync.dirty) {
		t.Error("post-storm dirty mapping state diverged")
	}
	if ringO.rd != sync.rd || ringO.wr != sync.wr {
		t.Error("latency histograms diverged")
	}
	if !bytes.Equal(syncLog, ringLog) {
		t.Errorf("log byte streams diverged (%d vs %d bytes)", len(syncLog), len(ringLog))
	}
}

// TestInstallFaultsValidatesDeviceIndices pins the install-time width
// check (satellite: today an out-of-range device was a silent no-op
// deep in the disk layer) and the expand-requires-CRAID gate.
func TestInstallFaultsValidatesDeviceIndices(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	lay := raid.NewRAID5(4, 4, 160, 4)
	ctl := NewRAIDController(arr, lay, []int{0, 1, 2, 3}, 0)

	plan, err := fault.ParsePlan("seed=1;fail:9@1ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InstallFaults(arr, ctl, plan, FaultOptions{}); err == nil ||
		!strings.Contains(err.Error(), "device 9") {
		t.Fatalf("out-of-range device accepted at install: %v", err)
	}

	// With an expand event widening the array first, the same index is
	// legal — but expansion itself needs a CRAID volume.
	plan, err = fault.ParsePlan("seed=1;expand@1ms,disks=6;fail:9@2ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InstallFaults(arr, ctl, plan, FaultOptions{}); err == nil ||
		!strings.Contains(err.Error(), "CRAID") {
		t.Fatalf("expand on a plain RAID controller accepted: %v", err)
	}
}

// TestExpandInvalidateMidReplayWritesBackDirty exercises the
// non-retain upgrade mid-replay: dirty mappings are written back, the
// cache restarts cold on the wider array, and the upgrade KPIs record
// the write-back volume.
func TestExpandInvalidateMidReplayWritesBackDirty(t *testing.T) {
	recs := randomWorkload(23, 3000, 12000)
	_, faults, devs := replayFaultMQAffinity(t, recs,
		"seed=3;expand@8ms,disks=1", 2, 2, testLookahead(), testAffinity())
	if faults.Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", faults.Upgrades)
	}
	if faults.ExpandInvalidated == 0 || faults.ExpandWriteback == 0 {
		t.Fatalf("invalidating upgrade moved nothing: %+v", faults)
	}
	if faults.ExpandMigrated != 0 {
		t.Fatalf("invalidating upgrade migrated %d blocks", faults.ExpandMigrated)
	}
	if len(devs) != 5 {
		t.Fatalf("array holds %d devices, want 5", len(devs))
	}
	// The new device joined the cache partition and received traffic.
	if devs[4].Reads+devs[4].Writes == 0 {
		t.Fatal("expansion device saw no I/O")
	}
	if faults.ExpandStart != 8*sim.Millisecond {
		t.Fatalf("ExpandStart = %v, want 8ms", faults.ExpandStart)
	}
	if faults.ExpandEnd < faults.ExpandStart {
		t.Fatalf("ExpandEnd %v precedes ExpandStart %v", faults.ExpandEnd, faults.ExpandStart)
	}
}
