//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in. The
// equivalence matrices shrink their seed sweep under -race: the
// detector makes each replay ~20x slower, and one seed already drives
// every interleaving the gate must serialize — the remaining seeds only
// re-derive the same schedule with different data, which the plain run
// covers in full.
const raceEnabled = false
