package core

import (
	"bytes"
	"math/rand"
	"testing"

	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// newShardedCRAID is newTestCRAID with a configurable mapping-index
// shard count.
func newShardedCRAID(eng *sim.Engine, cachePerDisk int64, shards int) (*CRAID, *Array) {
	arr := nullArray(eng, 4, 100000)
	disks := []int{0, 1, 2, 3}
	paLayout := raid.NewRAID5(4, 4, 4096, 4)
	c := mustCRAID(arr, Config{
		Policy:       "WLRU",
		CachePerDisk: cachePerDisk,
		ParityGroup:  4,
		StripeUnit:   4,
		MapShards:    shards,
	}, true, disks, 0, paLayout, disks, cachePerDisk)
	return c, arr
}

// randomWorkload renders a deterministic random trace that hammers the
// monitor: mixed ops, skewed sizes, addresses spanning many shard
// boundaries of every shard count under test.
func randomWorkload(seed int64, n int, span int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		op := disk.OpRead
		if rng.Intn(3) == 0 {
			op = disk.OpWrite
		}
		count := int64(1 + rng.Intn(64))
		block := rng.Int63n(span - count)
		recs[i] = trace.Record{
			Time:  sim.Time(i) * 10 * sim.Microsecond,
			Op:    op,
			Block: block,
			Count: count,
		}
	}
	return recs
}

// TestShardCountStatsBitIdentical is the PR's acceptance property at
// the controller level: hit, replacement and eviction ratios — indeed
// the entire Stats struct and every device counter — are bit-identical
// across mapping-index shard counts on random workloads.
func TestShardCountStatsBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		recs := randomWorkload(seed, 4000, 12000)

		type outcome struct {
			stats  Stats
			reads  int64
			writes int64
			maps   int
		}
		var ref outcome
		for i, shards := range []int{1, 2, 5, 16} {
			eng := sim.NewEngine()
			c, arr := newShardedCRAID(eng, 64, shards)
			n, err := Replay(eng, c, trace.NewSlice(recs))
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(len(recs)) {
				t.Fatalf("replayed %d of %d", n, len(recs))
			}
			r, w := ioTotals(arr)
			got := outcome{stats: *c.Stats(), reads: r, writes: w, maps: c.table.Len()}
			if i == 0 {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("seed %d shards=%d: outcome diverged\n got %+v\nwant %+v",
					seed, shards, got, ref)
			}
		}
	}
}

// TestShardedRecoverFromSingleShardLog writes a mapping log under a
// 1-shard controller, then recovers it into an N-shard controller: the
// recovered state, subsequent hit behavior and allocator placement must
// match a 1-shard recovery exactly.
func TestShardedRecoverFromSingleShardLog(t *testing.T) {
	var log bytes.Buffer
	eng := sim.NewEngine()
	c, _ := newShardedCRAID(eng, 64, 1)
	c.SetMappingLog(&log)
	submitAndRun(eng, c, disk.OpWrite, 10, 3)   // dirty
	submitAndRun(eng, c, disk.OpWrite, 2000, 5) // dirty, far shard
	submitAndRun(eng, c, disk.OpRead, 100, 2)   // clean
	wantDirty := c.table.DirtyMappings()
	if len(wantDirty) != 8 {
		t.Fatalf("precondition: %d dirty mappings, want 8", len(wantDirty))
	}

	logBytes := log.Bytes()
	for _, shards := range []int{1, 4, 16} {
		eng2 := sim.NewEngine()
		c2, _ := newShardedCRAID(eng2, 64, shards)
		n, err := c2.Recover(bytes.NewReader(logBytes))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if n != 8 {
			t.Fatalf("shards=%d: recovered %d mappings, want 8", shards, n)
		}
		got := c2.table.DirtyMappings()
		for i := range wantDirty {
			if got[i] != wantDirty[i] {
				t.Fatalf("shards=%d: dirty[%d] = %+v, want %+v", shards, i, got[i], wantDirty[i])
			}
		}
		if _, ok := c2.table.Lookup(100); ok {
			t.Errorf("shards=%d: clean mapping survived the crash", shards)
		}
		// Recovered blocks hit from P_C.
		submitAndRun(eng2, c2, disk.OpRead, 10, 3)
		submitAndRun(eng2, c2, disk.OpRead, 2000, 5)
		if c2.Stats().ReadHits != 8 {
			t.Errorf("shards=%d: recovered blocks hit %d of 8", shards, c2.Stats().ReadHits)
		}
		// The allocator must not hand out recovered slots.
		submitAndRun(eng2, c2, disk.OpWrite, 500, 1)
		m, _ := c2.table.Lookup(500)
		for _, d := range wantDirty {
			if m.Cache == d.Cache {
				t.Errorf("shards=%d: allocator reused recovered slot %d", shards, m.Cache)
			}
		}
	}
}

// TestShardedExpandMatchesSingleShard runs the same workload + online
// expansion at several shard counts: ExpandStats and post-expansion
// monitor stats must be identical, and the rebuilt sharded index must
// keep serving (Expand clears it; ExpandRetain preserves it).
func TestShardedExpandMatchesSingleShard(t *testing.T) {
	run := func(shards int, retain bool) (ExpandStats, Stats, int) {
		eng := sim.NewEngine()
		c, _ := newShardedCRAID(eng, 64, shards)
		recs := randomWorkload(5, 1500, 8000)
		if _, err := Replay(eng, c, trace.NewSlice(recs)); err != nil {
			t.Fatal(err)
		}
		var newDevs []disk.Device
		for i := 0; i < 2; i++ {
			newDevs = append(newDevs, disk.NewNullDevice(eng, "new", 100000))
		}
		var st ExpandStats
		if retain {
			st = c.ExpandRetain(newDevs)
		} else {
			st = c.Expand(newDevs)
		}
		eng.Run()
		// Post-expansion traffic exercises the rebuilt (or retained)
		// sharded index over the grown cache partition.
		for i := int64(0); i < 50; i++ {
			submitAndRun(eng, c, disk.OpWrite, i*37%4000, 4)
			submitAndRun(eng, c, disk.OpRead, i*53%4000, 4)
		}
		return st, *c.Stats(), c.table.Len()
	}

	for _, retain := range []bool{false, true} {
		refExp, refStats, refLen := run(1, retain)
		for _, shards := range []int{4, 16} {
			gotExp, gotStats, gotLen := run(shards, retain)
			if gotExp != refExp {
				t.Errorf("retain=%v shards=%d: ExpandStats %+v, want %+v", retain, shards, gotExp, refExp)
			}
			if gotStats != refStats {
				t.Errorf("retain=%v shards=%d: Stats diverged\n got %+v\nwant %+v", retain, shards, gotStats, refStats)
			}
			if gotLen != refLen {
				t.Errorf("retain=%v shards=%d: %d mappings, want %d", retain, shards, gotLen, refLen)
			}
		}
	}
}
