package core

import (
	"math/rand"
	"testing"

	"craid/internal/disk"
	"craid/internal/mapcache"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// nullArray builds an Array of n instant devices with the given
// capacity in blocks.
func nullArray(eng *sim.Engine, n int, capacity int64) *Array {
	devs := make([]disk.Device, n)
	for i := range devs {
		devs[i] = disk.NewNullDevice(eng, "null", capacity)
	}
	return NewArray(eng, devs)
}

// ioTotals sums read/write request counts over all array devices.
func ioTotals(a *Array) (reads, writes int64) {
	for i := 0; i < a.Devices(); i++ {
		s := a.Device(i).Stats()
		reads += s.Reads
		writes += s.Writes
	}
	return
}

// submitAndRun pushes one record through vol and drains the engine.
func submitAndRun(eng *sim.Engine, vol Volume, op disk.Op, block, count int64) sim.Time {
	var rt sim.Time = -1
	start := eng.Now()
	vol.Submit(trace.Record{Time: start, Op: op, Block: block, Count: count},
		func(at sim.Time) { rt = at - start })
	eng.Run()
	if rt < 0 {
		panic("request did not complete")
	}
	return rt
}

func TestRAIDControllerReadIOCount(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	layout := raid.NewRAID5(4, 4, 1024, 4)
	ctl := NewRAIDController(arr, layout, []int{0, 1, 2, 3}, 0)

	submitAndRun(eng, ctl, disk.OpRead, 0, 4) // one stripe unit
	r, w := ioTotals(arr)
	if r != 1 || w != 0 {
		t.Errorf("unit read issued %d reads %d writes, want 1/0", r, w)
	}
	if ctl.ReadLatency().Count() != 1 {
		t.Errorf("read latency samples = %d, want 1", ctl.ReadLatency().Count())
	}
}

func TestRAIDControllerSmallWriteRMW(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	layout := raid.NewRAID5(4, 4, 1024, 4)
	ctl := NewRAIDController(arr, layout, []int{0, 1, 2, 3}, 0)

	submitAndRun(eng, ctl, disk.OpWrite, 0, 4)
	r, w := ioTotals(arr)
	// Read-modify-write: read old data + old parity, write data + parity.
	if r != 2 || w != 2 {
		t.Errorf("small write issued %d reads %d writes, want 2/2", r, w)
	}
}

func TestRAID0WriteNoParity(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	layout := raid.NewRAID0(4, 1024, 4)
	ctl := NewRAIDController(arr, layout, []int{0, 1, 2, 3}, 0)
	submitAndRun(eng, ctl, disk.OpWrite, 0, 4)
	r, w := ioTotals(arr)
	if r != 0 || w != 1 {
		t.Errorf("RAID-0 write issued %d reads %d writes, want 0/1", r, w)
	}
}

func TestRAIDControllerMultiExtentSpansDisks(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 10000)
	layout := raid.NewRAID5(4, 4, 1024, 4)
	ctl := NewRAIDController(arr, layout, []int{0, 1, 2, 3}, 0)
	// 12 blocks = 3 stripe units on 3 different disks.
	submitAndRun(eng, ctl, disk.OpRead, 0, 12)
	busy := 0
	for i := 0; i < 4; i++ {
		if arr.Device(i).Stats().Reads > 0 {
			busy++
		}
	}
	if busy != 3 {
		t.Errorf("12-block read touched %d disks, want 3", busy)
	}
}

// newTestCRAID builds a 4-disk shared-cache CRAID on null devices.
// P_C: RAID-5(4 disks, unit 4) with cachePerDisk blocks per disk;
// P_A: RAID-5 behind it.
func newTestCRAID(eng *sim.Engine, cachePerDisk int64) (*CRAID, *Array) {
	arr := nullArray(eng, 4, 100000)
	disks := []int{0, 1, 2, 3}
	paLayout := raid.NewRAID5(4, 4, 4096, 4)
	c := mustCRAID(arr, Config{
		Policy:       "WLRU",
		CachePerDisk: cachePerDisk,
		ParityGroup:  4,
		StripeUnit:   4,
	}, true, disks, 0, paLayout, disks, cachePerDisk)
	return c, arr
}

func TestCRAIDReadMissServedFromArchiveAndCopied(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTestCRAID(eng, 64)
	submitAndRun(eng, c, disk.OpRead, 100, 1)
	r, w := ioTotals(arr)
	// 1 P_A read (client) + P_C copy-in RMW (2 reads + 2 writes).
	if r != 3 || w != 2 {
		t.Errorf("read miss issued %d reads %d writes, want 3/2", r, w)
	}
	st := c.Stats()
	if st.ReadBlocks != 1 || st.ReadHits != 0 || st.CopyIns != 1 {
		t.Errorf("stats = %+v, want 1 access, 0 hits, 1 copy-in", st)
	}
}

func TestCRAIDReadHitRedirectsToCache(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTestCRAID(eng, 64)
	submitAndRun(eng, c, disk.OpRead, 100, 1) // miss + copy
	r0, w0 := ioTotals(arr)
	submitAndRun(eng, c, disk.OpRead, 100, 1) // hit
	r1, w1 := ioTotals(arr)
	if r1-r0 != 1 || w1-w0 != 0 {
		t.Errorf("read hit issued %d reads %d writes, want 1/0", r1-r0, w1-w0)
	}
	if c.Stats().ReadHits != 1 {
		t.Errorf("ReadHits = %d, want 1", c.Stats().ReadHits)
	}
}

func TestCRAIDWriteAlwaysToCache(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTestCRAID(eng, 64)
	// Write miss: allocate in P_C, RMW parity there. No P_A traffic.
	submitAndRun(eng, c, disk.OpWrite, 200, 1)
	r, w := ioTotals(arr)
	if r != 2 || w != 2 {
		t.Errorf("write miss issued %d reads %d writes, want 2/2 (P_C RMW only)", r, w)
	}
	// Write hit: same cost.
	submitAndRun(eng, c, disk.OpWrite, 200, 1)
	r2, w2 := ioTotals(arr)
	if r2-r != 2 || w2-w != 2 {
		t.Errorf("write hit issued %d/%d, want 2/2", r2-r, w2-w)
	}
	if c.Stats().WriteHits != 1 || c.Stats().WriteBlocks != 2 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

// newTinyCRAID builds a CRAID whose P_C holds exactly 3·rows data
// blocks (stripe unit 1 over 4 disks).
func newTinyCRAID(eng *sim.Engine, rows int64) (*CRAID, *Array) {
	arr := nullArray(eng, 4, 100000)
	disks := []int{0, 1, 2, 3}
	paLayout := raid.NewRAID5(4, 4, 4096, 1)
	c := mustCRAID(arr, Config{
		Policy:       "WLRU",
		CachePerDisk: rows,
		ParityGroup:  4,
		StripeUnit:   1,
	}, true, disks, 0, paLayout, disks, rows)
	return c, arr
}

func TestCRAIDDirtyEvictionWritesBack(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTinyCRAID(eng, 1) // 3 data blocks
	if c.CacheDataBlocks() != 3 {
		t.Fatalf("cache data blocks = %d, want 3", c.CacheDataBlocks())
	}
	// Fill with dirty blocks, then overflow.
	for i := int64(0); i < 3; i++ {
		submitAndRun(eng, c, disk.OpWrite, 100+i, 1)
	}
	r0, w0 := ioTotals(arr)
	submitAndRun(eng, c, disk.OpWrite, 500, 1) // forces a dirty eviction
	r1, w1 := ioTotals(arr)
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 1 {
		t.Fatalf("evictions = %d dirty = %d, want 1/1", st.Evictions, st.DirtyEvictions)
	}
	// Eviction adds: 1 P_C read + P_A RMW (2R+2W); the insert itself
	// adds the usual P_C RMW (2R+2W).
	if r1-r0 != 5 || w1-w0 != 4 {
		t.Errorf("dirty eviction cost %d reads %d writes, want 5/4", r1-r0, w1-w0)
	}
	if st.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", st.Writebacks)
	}
}

func TestCRAIDCleanEvictionIsFree(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTinyCRAID(eng, 1) // 3 data blocks
	// Fill with clean copies via read misses.
	for i := int64(0); i < 3; i++ {
		submitAndRun(eng, c, disk.OpRead, 100+i, 1)
	}
	r0, w0 := ioTotals(arr)
	submitAndRun(eng, c, disk.OpRead, 500, 1) // evicts a clean block
	r1, w1 := ioTotals(arr)
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 0 {
		t.Fatalf("evictions = %d dirty = %d, want 1/0", st.Evictions, st.DirtyEvictions)
	}
	// Only the miss (1 read) + copy-in (2R+2W): no write-back traffic.
	if r1-r0 != 3 || w1-w0 != 2 {
		t.Errorf("clean eviction cost %d reads %d writes, want 3/2", r1-r0, w1-w0)
	}
}

func TestCRAIDWLRUPrefersCleanVictims(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTinyCRAID(eng, 2) // 6 data blocks; WLRU window = 3
	// One dirty block at the LRU position, then clean blocks.
	submitAndRun(eng, c, disk.OpWrite, 10, 1) // dirty, least recent
	for b := int64(20); b < 70; b += 10 {
		submitAndRun(eng, c, disk.OpRead, b, 1) // clean
	}
	// Cache is full (6 entries). The next miss must evict a clean
	// block even though the dirty one is least recently used.
	submitAndRun(eng, c, disk.OpRead, 99, 1)
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.DirtyEvictions != 0 {
		t.Error("WLRU evicted the dirty LRU block despite clean candidates in window")
	}
}

func TestCRAIDMultiBlockRunsCoalesce(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTestCRAID(eng, 64)
	// 4-block write miss: slots allocated consecutively → single P_C
	// RMW on one stripe unit: 2 reads + 2 writes.
	submitAndRun(eng, c, disk.OpWrite, 100, 4)
	r, w := ioTotals(arr)
	if r != 2 || w != 2 {
		t.Errorf("4-block write issued %d reads %d writes, want 2/2 (coalesced)", r, w)
	}
	// Re-read all 4: contiguous cached run → 1 read.
	r0, _ := ioTotals(arr)
	submitAndRun(eng, c, disk.OpRead, 100, 4)
	r1, _ := ioTotals(arr)
	if r1-r0 != 1 {
		t.Errorf("cached 4-block read issued %d reads, want 1", r1-r0)
	}
}

func TestCRAIDExpandInvalidatesAndUsesNewDisks(t *testing.T) {
	eng := sim.NewEngine()
	c, arr := newTestCRAID(eng, 64)
	// Populate: 2 dirty + 2 clean.
	submitAndRun(eng, c, disk.OpWrite, 10, 2)
	submitAndRun(eng, c, disk.OpRead, 100, 2)

	newDevs := []disk.Device{
		disk.NewNullDevice(eng, "new4", 100000),
		disk.NewNullDevice(eng, "new5", 100000),
	}
	st := c.Expand(newDevs)
	eng.Run()
	if st.DirtyWriteback != 2 {
		t.Errorf("DirtyWriteback = %d, want 2", st.DirtyWriteback)
	}
	if st.Invalidated != 4 {
		t.Errorf("Invalidated = %d, want 4", st.Invalidated)
	}
	if arr.Devices() != 6 {
		t.Fatalf("array has %d devices, want 6", arr.Devices())
	}

	// The cache partition now spans 6 disks; filling it must touch the
	// new devices immediately.
	for i := int64(0); i < 60; i++ {
		submitAndRun(eng, c, disk.OpWrite, 1000+i, 1)
	}
	for i := 4; i < 6; i++ {
		if arr.Device(i).Stats().Writes == 0 {
			t.Errorf("new device %d received no writes after expansion", i)
		}
	}
}

func TestCRAIDExpandDedicatedCacheKeepsGeometry(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 6, 100000) // 4 HDD archive + 2 "SSD" cache
	paLayout := raid.NewRAID5(4, 4, 4096, 4)
	c := mustCRAID(arr, Config{CachePerDisk: 64, ParityGroup: 2, StripeUnit: 4},
		false, []int{4, 5}, 0, paLayout, []int{0, 1, 2, 3}, 0)
	before := c.CacheDataBlocks()
	c.Expand([]disk.Device{disk.NewNullDevice(eng, "new", 100000)})
	eng.Run()
	if c.CacheDataBlocks() != before {
		t.Errorf("dedicated cache resized on expansion: %d → %d", before, c.CacheDataBlocks())
	}
}

func TestCRAIDTablePolicyLockstep(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 8) // 6 data blocks
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		op := disk.OpRead
		if rng.Intn(2) == 1 {
			op = disk.OpWrite
		}
		block := rng.Int63n(200)
		count := rng.Int63n(3) + 1
		submitAndRun(eng, c, op, block, count)

		if c.table.Len() != c.policy.Len() {
			t.Fatalf("op %d: table %d entries, policy %d", i, c.table.Len(), c.policy.Len())
		}
		if int64(c.table.Len()) > c.CacheDataBlocks() {
			t.Fatalf("op %d: %d mappings exceed P_C capacity %d",
				i, c.table.Len(), c.CacheDataBlocks())
		}
		// No two mappings may share a cache slot.
		slots := make(map[int64]bool)
		dup := false
		c.table.Walk(func(m mapcache.Mapping) bool {
			if slots[m.Cache] {
				dup = true
				return false
			}
			slots[m.Cache] = true
			return true
		})
		if dup {
			t.Fatalf("op %d: duplicate cache slot", i)
		}
	}
}

func TestReplayDrivesVolume(t *testing.T) {
	eng := sim.NewEngine()
	arr := nullArray(eng, 4, 100000)
	layout := raid.NewRAID5(4, 4, 4096, 4)
	ctl := NewRAIDController(arr, layout, []int{0, 1, 2, 3}, 0)
	records := []trace.Record{
		{Time: 0, Op: disk.OpRead, Block: 0, Count: 4},
		{Time: sim.Millisecond, Op: disk.OpWrite, Block: 100, Count: 2},
		{Time: 2 * sim.Millisecond, Op: disk.OpRead, Block: 50, Count: 8},
	}
	n, err := Replay(eng, ctl, trace.NewSlice(records))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("replayed %d records, want 3", n)
	}
	if got := ctl.ReadLatency().Count() + ctl.WriteLatency().Count(); got != 3 {
		t.Errorf("latency samples = %d, want 3", got)
	}
	if eng.Now() < 2*sim.Millisecond {
		t.Errorf("engine time %v, want >= 2ms (records at their times)", eng.Now())
	}
}

func TestCRAIDMappingBytesGrows(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := newTestCRAID(eng, 64)
	if c.MappingBytes() != 0 {
		t.Error("fresh CRAID has nonzero mapping memory")
	}
	submitAndRun(eng, c, disk.OpWrite, 0, 8)
	if c.MappingBytes() == 0 {
		t.Error("mapping memory did not grow with insertions")
	}
}

func TestJoinZeroBranches(t *testing.T) {
	fired := false
	j := newJoin(func(sim.Time) { fired = true })
	j.seal(42)
	if !fired {
		t.Error("empty join did not fire on seal")
	}
	if j.last != 42 {
		t.Errorf("join completion time = %v, want seal time 42", j.last)
	}
}

func TestJoinWaitsForAllBranches(t *testing.T) {
	var at sim.Time
	j := newJoin(func(t sim.Time) { at = t })
	b1 := j.branch()
	b2 := j.branch()
	j.seal(0)
	b1(10)
	if at != 0 {
		t.Fatal("join fired before all branches completed")
	}
	b2(30)
	if at != 30 {
		t.Errorf("join fired at %v, want 30 (latest branch)", at)
	}
}
