package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"craid/internal/disk"
	"craid/internal/mapcache"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// mqBenchCRAID is benchCRAID with sharding, monitor workers and plan
// lookahead — a cache big enough that the hot set stays resident, so
// the benchmark exercises the planner's fast path (hit
// classification), which is where the multi-queue monitor earns its
// keep.
func mqBenchCRAID(eng *sim.Engine, shards, workers, lookahead int) *CRAID {
	arr := nullArray(eng, 10, 1<<30)
	disks := make([]int, 10)
	for i := range disks {
		disks[i] = i
	}
	paLayout := raid.NewRAID5(10, 10, 400_000, 32)
	return mustCRAID(arr, Config{
		Policy:         "LRU",
		CachePerDisk:   65536,
		ParityGroup:    10,
		StripeUnit:     32,
		MapShards:      shards,
		MonitorWorkers: workers,
		PlanLookahead:  lookahead,
	}, true, disks, 0, paLayout, disks, 65536)
}

// mqBenchTrace is a read-heavy extent workload over a working set that
// fits P_C: after one warm pass everything hits, so plans validate and
// the concurrent classification is the measured cost.
func mqBenchTrace(n int) []trace.Record {
	const workingSet = 500_000 // blocks; < pcData (9 × 65536)
	recs := make([]trace.Record, n)
	var cursor int64
	for i := range recs {
		op := disk.OpRead
		if i%10 == 0 {
			op = disk.OpWrite
		}
		recs[i] = trace.Record{
			Time:  sim.Time(i) * sim.Microsecond,
			Op:    op,
			Block: (cursor * 977) % workingSet,
			Count: 64,
		}
		cursor++
	}
	return recs
}

// BenchmarkReplayMultiQueue measures whole-replay wall clock through
// ReplayWith at several monitor-worker counts (shards fixed at 64).
// workers=1 is the sequential controller; higher counts plan batches
// concurrently. On a single-core host the workers time-share, so the
// expected win there is bounded at ~0; the benchmark exists to measure
// the scaling on real multi-core hosts and to keep the concurrent path
// under the bench-smoke CI job.
func BenchmarkReplayMultiQueue(b *testing.B) {
	recs := mqBenchTrace(100_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := sim.NewEngine()
				c := mqBenchCRAID(eng, 64, workers, 0)
				// Warm pass: populate P_C so the measured pass hits.
				if _, err := Replay(eng, c, trace.NewSlice(recs)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				n, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if n != int64(len(recs)) {
					b.Fatalf("replayed %d of %d", n, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs)), "records/op")
		})
	}
}

// BenchmarkReplayPipelined measures the overlapped pipeline: the same
// hit-dominated workload as BenchmarkReplayMultiQueue, replayed with
// the plan phase synchronous (lookahead=0, PR 3's pipeline) versus
// running one batch ahead of the apply stage (lookahead=1). On a
// single-core host the two stages time-share and the expected win is
// ~0 (the lookahead run also pays the plan gate); the benchmark exists
// to measure the overlap on multi-core hosts — the plan phase's whole
// footprint hides behind apply — and to keep the gated path under the
// bench-smoke CI job.
func BenchmarkReplayPipelined(b *testing.B) {
	recs := mqBenchTrace(100_000)
	for _, tc := range []struct{ workers, lookahead int }{
		{4, 0}, {4, 1}, {8, 0}, {8, 1},
	} {
		b.Run(fmt.Sprintf("workers=%d/lookahead=%d", tc.workers, tc.lookahead), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := sim.NewEngine()
				c := mqBenchCRAID(eng, 64, tc.workers, tc.lookahead)
				// Warm pass: populate P_C so the measured pass hits.
				if _, err := Replay(eng, c, trace.NewSlice(recs)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				n, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if n != int64(len(recs)) {
					b.Fatalf("replayed %d of %d", n, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs)), "records/op")
		})
	}
}

// logBenchTrace is an eviction-churn write workload: 64-block write
// extents sweeping twice the cache capacity, so the steady state is
// continuous dirty insertion + eviction — every record appends dirty-
// log entries, the regime where the synchronous appendLog was the
// apply stage's next bottleneck.
func logBenchTrace(n int) []trace.Record {
	const span = 1_200_000 // ~2× pcData (9 × 65536 data blocks)
	recs := make([]trace.Record, n)
	var cursor int64
	for i := range recs {
		recs[i] = trace.Record{
			Time:  sim.Time(i) * sim.Microsecond,
			Op:    disk.OpWrite,
			Block: (cursor * 4099) % span,
			Count: 64,
		}
		cursor++
	}
	return recs
}

// BenchmarkMappingLogReplay measures the dirty-log write path under
// eviction churn: no log, a synchronous log straight to a file (one
// 17-byte Write syscall per transition, PR 3's only option), a
// synchronous bufio-wrapped file (userspace batching, flush syscalls
// still inline on the apply path), and the LogRing (batching AND the
// Write itself on a background goroutine). The file lives in the bench
// temp dir, so the syscall cost is a real file's.
func BenchmarkMappingLogReplay(b *testing.B) {
	recs := logBenchTrace(20_000)
	run := func(b *testing.B, attach func(c *CRAID) func() error) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := sim.NewEngine()
			c := mqBenchCRAID(eng, 64, 1, 0)
			done := attach(c)
			b.StartTimer()
			if _, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{}); err != nil {
				b.Fatal(err)
			}
			if err := done(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(recs)), "records/op")
	}
	logFile := func(b *testing.B) *os.File {
		f, err := os.Create(filepath.Join(b.TempDir(), "dirty.log"))
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	b.Run("nolog", func(b *testing.B) {
		run(b, func(c *CRAID) func() error { return func() error { return nil } })
	})
	b.Run("file-sync", func(b *testing.B) {
		run(b, func(c *CRAID) func() error {
			f := logFile(b)
			c.SetMappingLog(f)
			return f.Close
		})
	})
	b.Run("bufio-sync", func(b *testing.B) {
		run(b, func(c *CRAID) func() error {
			f := logFile(b)
			w := bufio.NewWriterSize(f, 32<<10)
			c.SetMappingLog(w)
			return func() error {
				if err := w.Flush(); err != nil {
					return err
				}
				return f.Close()
			}
		})
	})
	b.Run("ring", func(b *testing.B) {
		run(b, func(c *CRAID) func() error {
			f := logFile(b)
			ring := mapcache.NewLogRing(f, 0, 0)
			c.SetMappingLog(ring)
			return func() error {
				if err := ring.Close(); err != nil {
					return err
				}
				return f.Close()
			}
		})
	})
}
