package core

import (
	"fmt"
	"testing"

	"craid/internal/disk"
	"craid/internal/raid"
	"craid/internal/sim"
	"craid/internal/trace"
)

// mqBenchCRAID is benchCRAID with sharding and monitor workers — a
// cache big enough that the hot set stays resident, so the benchmark
// exercises the planner's fast path (hit classification), which is
// where the multi-queue monitor earns its keep.
func mqBenchCRAID(eng *sim.Engine, shards, workers int) *CRAID {
	arr := nullArray(eng, 10, 1<<30)
	disks := make([]int, 10)
	for i := range disks {
		disks[i] = i
	}
	paLayout := raid.NewRAID5(10, 10, 400_000, 32)
	return NewCRAID(arr, Config{
		Policy:         "LRU",
		CachePerDisk:   65536,
		ParityGroup:    10,
		StripeUnit:     32,
		MapShards:      shards,
		MonitorWorkers: workers,
	}, true, disks, 0, paLayout, disks, 65536)
}

// mqBenchTrace is a read-heavy extent workload over a working set that
// fits P_C: after one warm pass everything hits, so plans validate and
// the concurrent classification is the measured cost.
func mqBenchTrace(n int) []trace.Record {
	const workingSet = 500_000 // blocks; < pcData (9 × 65536)
	recs := make([]trace.Record, n)
	var cursor int64
	for i := range recs {
		op := disk.OpRead
		if i%10 == 0 {
			op = disk.OpWrite
		}
		recs[i] = trace.Record{
			Time:  sim.Time(i) * sim.Microsecond,
			Op:    op,
			Block: (cursor * 977) % workingSet,
			Count: 64,
		}
		cursor++
	}
	return recs
}

// BenchmarkReplayMultiQueue measures whole-replay wall clock through
// ReplayWith at several monitor-worker counts (shards fixed at 64).
// workers=1 is the sequential controller; higher counts plan batches
// concurrently. On a single-core host the workers time-share, so the
// expected win there is bounded at ~0; the benchmark exists to measure
// the scaling on real multi-core hosts and to keep the concurrent path
// under the bench-smoke CI job.
func BenchmarkReplayMultiQueue(b *testing.B) {
	recs := mqBenchTrace(100_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := sim.NewEngine()
				c := mqBenchCRAID(eng, 64, workers)
				// Warm pass: populate P_C so the measured pass hits.
				if _, err := Replay(eng, c, trace.NewSlice(recs)); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				n, _, err := ReplayWith(eng, c, trace.NewSlice(recs), ReplayConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if n != int64(len(recs)) {
					b.Fatalf("replayed %d of %d", n, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs)), "records/op")
		})
	}
}
