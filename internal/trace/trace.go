// Package trace models block-level I/O traces: the record type shared
// by the simulator and the analysis code, streaming readers and
// writers for a native text format, and parsers for two published
// trace formats (MSR-Cambridge CSV and SRCMap/blkparse-style text).
//
// The CRAID paper replays seven real-world traces (cello99, deasna,
// home02, webresearch, webusers, wdev, proj). Those datasets are not
// redistributable, so this repository generates calibrated synthetic
// equivalents (internal/workload); the parsers here let genuine traces
// drop in unchanged when available.
package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"craid/internal/disk"
	"craid/internal/sim"
)

// Record is one traced block-level request. Block and Count are in
// logical blocks (disk.BlockSize bytes); Time is the offset from the
// start of the trace.
type Record struct {
	Time  sim.Time
	Op    disk.Op
	Block int64
	Count int64
}

// End returns the first block after the request.
func (r Record) End() int64 { return r.Block + r.Count }

// Reader streams trace records.
type Reader interface {
	// Next returns the next record, or io.EOF when the trace ends.
	Next() (Record, error)
}

// Slice adapts an in-memory record slice to a Reader.
type Slice struct {
	records []Record
	pos     int
}

// NewSlice returns a Reader over records.
func NewSlice(records []Record) *Slice { return &Slice{records: records} }

// Next implements Reader.
func (s *Slice) Next() (Record, error) {
	if s.pos >= len(s.records) {
		return Record{}, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// ReadAll drains r into a slice.
func ReadAll(r Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// --- native format ---
//
// One record per line: "<time_us> <R|W> <block> <count>". Comment lines
// start with '#'. Compact, diff-able, and trivially greppable.

// Writer emits the native text format.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer on w. Call Flush when done.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	op := byte('R')
	if r.Op == disk.OpWrite {
		op = 'W'
	}
	_, w.err = fmt.Fprintf(w.w, "%d %c %d %d\n",
		int64(r.Time)/int64(sim.Microsecond), op, r.Block, r.Count)
	return w.err
}

// Flush completes the output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// NativeReader parses the native format.
type NativeReader struct {
	sc   *bufio.Scanner
	line int
}

// NewNativeReader returns a Reader for the native text format.
func NewNativeReader(r io.Reader) *NativeReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &NativeReader{sc: sc}
}

// Next implements Reader. The line stays a sub-slice of the scanner's
// buffer end to end (fields, numeric conversion), so the steady-state
// parse loop allocates nothing; see parsebytes.go.
func (n *NativeReader) Next() (Record, error) {
	for n.sc.Scan() {
		n.line++
		line := bytes.TrimSpace(n.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		f0, rest := cutFieldBytes(line)
		f1, rest := cutFieldBytes(rest)
		f2, rest := cutFieldBytes(rest)
		f3, rest := cutFieldBytes(rest)
		if len(f3) == 0 || len(rest) != 0 {
			return Record{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", n.line, len(bytes.Fields(line)))
		}
		us, err := parseIntBytes(f0)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: time: %w", n.line, err)
		}
		var op disk.Op
		switch {
		case len(f1) == 1 && (f1[0] == 'R' || f1[0] == 'r'):
			op = disk.OpRead
		case len(f1) == 1 && (f1[0] == 'W' || f1[0] == 'w'):
			op = disk.OpWrite
		default:
			return Record{}, fmt.Errorf("trace: line %d: bad op %q", n.line, f1)
		}
		block, err := parseIntBytes(f2)
		if err != nil || block < 0 {
			return Record{}, fmt.Errorf("trace: line %d: bad block %q", n.line, f2)
		}
		count, err := parseIntBytes(f3)
		if err != nil || count < 1 {
			return Record{}, fmt.Errorf("trace: line %d: bad count %q", n.line, f3)
		}
		return Record{
			Time:  sim.Time(us) * sim.Microsecond,
			Op:    op,
			Block: block,
			Count: count,
		}, nil
	}
	if err := n.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// --- MSR-Cambridge CSV format ---
//
// "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime" where
// Timestamp is a Windows FILETIME (100 ns ticks since 1601), Offset and
// Size are bytes. The wdev and proj workloads in the paper use this
// format (Narayanan et al., "Write off-loading").

// Static byte patterns for the MSR column scan, hoisted so the parse
// loop never materializes them per line.
var (
	commaSep = []byte(",")
	msrRead  = []byte("read")
	msrWrite = []byte("write")
)

// MSRReader parses MSR-Cambridge storage traces. Timestamps are
// rebased so the first record is at time 0; byte offsets are converted
// to 4 KiB blocks (rounded down for offset, up for end).
type MSRReader struct {
	sc    *bufio.Scanner
	line  int
	base  int64 // first FILETIME seen
	haveT bool
	// Volume, if >= 0, keeps only records of that DiskNumber.
	Volume int
}

// NewMSRReader returns a Reader for MSR CSV traces, keeping all
// volumes.
func NewMSRReader(r io.Reader) *MSRReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &MSRReader{sc: sc, Volume: -1}
}

// Next implements Reader. Like NativeReader.Next, the line is scanned
// as byte sub-slices so the steady-state parse loop allocates nothing.
func (m *MSRReader) Next() (Record, error) {
	for m.sc.Scan() {
		m.line++
		line := bytes.TrimSpace(m.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		f0, rest, ok0 := cutComma(line)
		_, rest, ok1 := cutComma(rest) // hostname, unused
		f2, rest, ok2 := cutComma(rest)
		f3, rest, ok3 := cutComma(rest)
		f4, rest, ok4 := cutComma(rest)
		f5, _, ok5 := cutComma(rest)
		if !ok0 || !ok1 || !ok2 || !ok3 || !ok4 {
			return Record{}, fmt.Errorf("trace: msr line %d: want >=6 fields, got %d",
				m.line, bytes.Count(line, commaSep)+1)
		}
		_ = ok5 // a trailing 6th field needs no terminating comma
		ft, err := parseIntBytes(f0)
		if err != nil {
			return Record{}, fmt.Errorf("trace: msr line %d: timestamp: %w", m.line, err)
		}
		if m.Volume >= 0 {
			vol, err := parseAtoiBytes(f2)
			if err != nil {
				return Record{}, fmt.Errorf("trace: msr line %d: disk number: %w", m.line, err)
			}
			if vol != m.Volume {
				continue
			}
		}
		var op disk.Op
		switch {
		case bytes.EqualFold(f3, msrRead):
			op = disk.OpRead
		case bytes.EqualFold(f3, msrWrite):
			op = disk.OpWrite
		default:
			return Record{}, fmt.Errorf("trace: msr line %d: bad type %q", m.line, f3)
		}
		off, err := parseIntBytes(f4)
		if err != nil || off < 0 {
			return Record{}, fmt.Errorf("trace: msr line %d: bad offset %q", m.line, f4)
		}
		size, err := parseIntBytes(f5)
		if err != nil {
			return Record{}, fmt.Errorf("trace: msr line %d: size: %w", m.line, err)
		}
		if size < 1 {
			// A request must transfer at least one byte: a zero or
			// negative size would otherwise round up to a phantom
			// one-block access and skew every per-block ratio.
			return Record{}, fmt.Errorf("trace: msr line %d: non-positive size %d", m.line, size)
		}
		if !m.haveT {
			m.base, m.haveT = ft, true
		}
		block := off / disk.BlockSize
		end := (off + size + disk.BlockSize - 1) / disk.BlockSize
		count := end - block
		return Record{
			Time:  sim.Time(ft-m.base) * 100, // FILETIME tick = 100 ns
			Op:    op,
			Block: block,
			Count: count,
		}, nil
	}
	if err := m.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// --- SRCMap / blkparse-style format ---
//
// "<seconds.frac> <device> <R|W> <sector> <sectors>": timestamps in
// seconds, addresses in 512-byte sectors. Covers the SRCMap
// (webresearch/webusers) exports and common blktrace conversions.

// BlkReader parses blkparse-style text traces.
type BlkReader struct {
	sc    *bufio.Scanner
	line  int
	base  float64
	haveT bool
}

// NewBlkReader returns a Reader for blkparse-style traces.
func NewBlkReader(r io.Reader) *BlkReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &BlkReader{sc: sc}
}

// Static byte patterns for the blkparse op column.
var (
	blkRead  = []byte("R")
	blkReadL = []byte("READ")
	blkWrite = []byte("W")
	blkWrtL  = []byte("WRITE")
)

// Next implements Reader; byte-sliced like the other parsers, with the
// timestamp going through parseFloatBytes' exact fast path.
func (b *BlkReader) Next() (Record, error) {
	const sectorsPerBlock = disk.BlockSize / 512
	for b.sc.Scan() {
		b.line++
		line := bytes.TrimSpace(b.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		f0, rest := cutFieldBytes(line)
		_, rest = cutFieldBytes(rest) // device, unused
		f2, rest := cutFieldBytes(rest)
		f3, rest := cutFieldBytes(rest)
		f4, _ := cutFieldBytes(rest)
		if len(f4) == 0 {
			return Record{}, fmt.Errorf("trace: blk line %d: want 5 fields, got %d", b.line, len(bytes.Fields(line)))
		}
		ts, err := parseFloatBytes(f0)
		if err != nil {
			return Record{}, fmt.Errorf("trace: blk line %d: time: %w", b.line, err)
		}
		var op disk.Op
		switch {
		case bytes.EqualFold(f2, blkRead), bytes.EqualFold(f2, blkReadL):
			op = disk.OpRead
		case bytes.EqualFold(f2, blkWrite), bytes.EqualFold(f2, blkWrtL):
			op = disk.OpWrite
		default:
			return Record{}, fmt.Errorf("trace: blk line %d: bad op %q", b.line, f2)
		}
		sector, err := parseIntBytes(f3)
		if err != nil || sector < 0 {
			return Record{}, fmt.Errorf("trace: blk line %d: bad sector %q", b.line, f3)
		}
		sectors, err := parseIntBytes(f4)
		if err != nil || sectors < 1 {
			return Record{}, fmt.Errorf("trace: blk line %d: bad sector count %q", b.line, f4)
		}
		if !b.haveT {
			b.base, b.haveT = ts, true
		}
		block := sector / sectorsPerBlock
		end := (sector + sectors + sectorsPerBlock - 1) / sectorsPerBlock
		return Record{
			Time:  sim.Time((ts - b.base) * float64(sim.Second)),
			Op:    op,
			Block: block,
			Count: end - block,
		}, nil
	}
	if err := b.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// --- filters ---

// Window returns a Reader passing only records with from <= Time < to,
// rebased so the window starts at time 0.
func Window(r Reader, from, to sim.Time) Reader {
	return &windowReader{r: r, from: from, to: to}
}

type windowReader struct {
	r        Reader
	from, to sim.Time
}

func (w *windowReader) Next() (Record, error) {
	for {
		rec, err := w.r.Next()
		if err != nil {
			return Record{}, err
		}
		if rec.Time < w.from {
			continue
		}
		if rec.Time >= w.to {
			return Record{}, io.EOF
		}
		rec.Time -= w.from
		return rec, nil
	}
}

// Clamp returns a Reader that wraps records into [0, blocks) by taking
// addresses modulo the dataset size — used to replay traces collected
// on larger volumes against a smaller simulated dataset.
func Clamp(r Reader, blocks int64) Reader {
	if blocks <= 0 {
		panic("trace: Clamp needs a positive block count")
	}
	return &clampReader{r: r, blocks: blocks}
}

type clampReader struct {
	r      Reader
	blocks int64
}

func (c *clampReader) Next() (Record, error) {
	rec, err := c.r.Next()
	if err != nil {
		return Record{}, err
	}
	if rec.Count > c.blocks {
		rec.Count = c.blocks
	}
	rec.Block %= c.blocks
	if rec.Block+rec.Count > c.blocks {
		rec.Block = c.blocks - rec.Count
	}
	return rec, nil
}
