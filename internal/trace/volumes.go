package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
)

// MSRVolumes scans an MSR-Cambridge CSV stream and returns the distinct
// DiskNumbers it contains, ascending. MSR traces interleave several
// volumes of one host in a single file; enumerating them is the first
// half of per-volume replay — each returned volume can then be fed to
// its own MSRReader (with Volume set) over an independent file handle,
// so the per-volume streams parse in parallel inside their simulations'
// replay pipelines.
//
// The scan parses only the DiskNumber column, so it is far cheaper than
// a full parse of the file.
func MSRVolumes(r io.Reader) ([]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	seen := make(map[int]bool)
	line := 0
	for sc.Scan() {
		line++
		s := bytes.TrimSpace(sc.Bytes())
		if len(s) == 0 || s[0] == '#' {
			continue
		}
		_, rest, ok0 := cutComma(s)
		_, rest, ok1 := cutComma(rest)
		f2, _, ok2 := cutComma(rest)
		if !ok0 || !ok1 || !ok2 {
			return nil, fmt.Errorf("trace: msr line %d: want >=4 fields", line)
		}
		vol, err := parseAtoiBytes(f2)
		if err != nil || vol < 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad disk number %q", line, f2)
		}
		seen[vol] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	vols := make([]int, 0, len(seen))
	for v := range seen {
		vols = append(vols, v)
	}
	sort.Ints(vols)
	return vols, nil
}
