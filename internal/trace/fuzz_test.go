package trace

import (
	"io"
	"strings"
	"testing"
)

// The fuzz targets guard the hand-rolled strings.Cut/cutField scanning
// in the parsers: arbitrary input must never panic, loop forever, or
// yield a record violating the invariants the simulator relies on
// (non-negative block, count >= 1). Seeds cover well-formed lines,
// every rejection path, and shapes that previously needed care (torn
// fields, huge numbers, sign tricks, empty lines).

// drain pulls records until EOF or the first parse error, checking
// invariants on every successful record.
func drain(t *testing.T, r Reader) {
	t.Helper()
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			return // malformed input must error, not panic
		}
		if rec.Block < 0 {
			t.Fatalf("record %d: negative block %d", i, rec.Block)
		}
		if rec.Count < 1 {
			t.Fatalf("record %d: count %d < 1", i, rec.Count)
		}
		if i > 1<<20 {
			t.Fatal("reader did not terminate")
		}
	}
}

func FuzzParseNative(f *testing.F) {
	f.Add("0 R 100 8\n1000 W 200 16\n")
	f.Add("# comment\n\n  5 r 0 1\n")
	f.Add("5 X 0 1\n")                    // bad op
	f.Add("5 R -3 1\n")                   // negative block
	f.Add("5 R 3 0\n")                    // zero count
	f.Add("5 R 3\n")                      // missing field
	f.Add("5 R 3 1 extra\n")              // trailing field
	f.Add("99999999999999999999 R 0 1\n") // overflow
	f.Add("5\tR\t3\t1\n")                 // tabs
	f.Fuzz(func(t *testing.T, data string) {
		drain(t, NewNativeReader(strings.NewReader(data)))
	})
}

func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,host,0,Read,4096,4096,100\n")
	f.Add("128166372003061629,host,3,Write,0,512,100\n")
	f.Add("1,h,0,read,1,1\n")       // no trailing field, lowercase op
	f.Add("1,h,0,Flush,1,1,1\n")    // bad type
	f.Add("1,h,0,Read,-4096,1,1\n") // negative offset
	f.Add("1,h,0,Read,1,-1,1\n")    // negative size
	f.Add("1,h,0,Write,0,0,100\n")  // zero size
	f.Add("1,h,x,Read,1,1,1\n")     // bad disk number (only when filtered)
	f.Add("x,h,0,Read,1,1,1\n")     // bad timestamp
	f.Add("1,h,0\n")                // short line
	f.Add(",,,,,,\n")               // empty fields
	f.Fuzz(func(t *testing.T, data string) {
		drain(t, NewMSRReader(strings.NewReader(data)))
		// The volume-filtered path parses DiskNumber too.
		filtered := NewMSRReader(strings.NewReader(data))
		filtered.Volume = 0
		drain(t, filtered)
		// And the volume enumerator shares the column scanning.
		_, _ = MSRVolumes(strings.NewReader(data))
	})
}

func FuzzParseBlk(f *testing.F) {
	f.Add("0.000000 0 R 2048 8\n1.5 0 W 4096 16\n")
	f.Add("0.1 dev READ 0 1\n")
	f.Add("0.1 dev Q 0 1\n")   // bad op
	f.Add("0.1 dev R -8 1\n")  // negative sector
	f.Add("0.1 dev R 8 0\n")   // zero sectors
	f.Add("0.1 dev R 8\n")     // short line
	f.Add("NaN dev R 8 1\n")   // NaN time
	f.Add("1e308 dev R 8 1\n") // huge time
	f.Fuzz(func(t *testing.T, data string) {
		drain(t, NewBlkReader(strings.NewReader(data)))
	})
}
