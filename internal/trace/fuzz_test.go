package trace

import (
	"io"
	"math"
	"strconv"
	"strings"
	"testing"
)

// The fuzz targets guard the hand-rolled strings.Cut/cutField scanning
// in the parsers: arbitrary input must never panic, loop forever, or
// yield a record violating the invariants the simulator relies on
// (non-negative block, count >= 1). Seeds cover well-formed lines,
// every rejection path, and shapes that previously needed care (torn
// fields, huge numbers, sign tricks, empty lines).

// drain pulls records until EOF or the first parse error, checking
// invariants on every successful record.
func drain(t *testing.T, r Reader) {
	t.Helper()
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			return // malformed input must error, not panic
		}
		if rec.Block < 0 {
			t.Fatalf("record %d: negative block %d", i, rec.Block)
		}
		if rec.Count < 1 {
			t.Fatalf("record %d: count %d < 1", i, rec.Count)
		}
		if i > 1<<20 {
			t.Fatal("reader did not terminate")
		}
	}
}

func FuzzParseNative(f *testing.F) {
	f.Add("0 R 100 8\n1000 W 200 16\n")
	f.Add("# comment\n\n  5 r 0 1\n")
	f.Add("5 X 0 1\n")                    // bad op
	f.Add("5 R -3 1\n")                   // negative block
	f.Add("5 R 3 0\n")                    // zero count
	f.Add("5 R 3\n")                      // missing field
	f.Add("5 R 3 1 extra\n")              // trailing field
	f.Add("99999999999999999999 R 0 1\n") // overflow
	f.Add("5\tR\t3\t1\n")                 // tabs
	f.Fuzz(func(t *testing.T, data string) {
		drain(t, NewNativeReader(strings.NewReader(data)))
	})
}

func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,host,0,Read,4096,4096,100\n")
	f.Add("128166372003061629,host,3,Write,0,512,100\n")
	f.Add("1,h,0,read,1,1\n")       // no trailing field, lowercase op
	f.Add("1,h,0,Flush,1,1,1\n")    // bad type
	f.Add("1,h,0,Read,-4096,1,1\n") // negative offset
	f.Add("1,h,0,Read,1,-1,1\n")    // negative size
	f.Add("1,h,0,Write,0,0,100\n")  // zero size
	f.Add("1,h,x,Read,1,1,1\n")     // bad disk number (only when filtered)
	f.Add("x,h,0,Read,1,1,1\n")     // bad timestamp
	f.Add("1,h,0\n")                // short line
	f.Add(",,,,,,\n")               // empty fields
	f.Fuzz(func(t *testing.T, data string) {
		drain(t, NewMSRReader(strings.NewReader(data)))
		// The volume-filtered path parses DiskNumber too.
		filtered := NewMSRReader(strings.NewReader(data))
		filtered.Volume = 0
		drain(t, filtered)
		// And the volume enumerator shares the column scanning.
		_, _ = MSRVolumes(strings.NewReader(data))
	})
}

// drainCount is drain plus bookkeeping: it reports how many records
// parsed and whether the stream ended cleanly at EOF (rather than at a
// malformed line).
func drainCount(t *testing.T, r Reader) (n int64, clean bool) {
	t.Helper()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, true
		}
		if err != nil {
			return n, false
		}
		if rec.Block < 0 {
			t.Fatalf("record %d: negative block %d", n, rec.Block)
		}
		if rec.Count < 1 {
			t.Fatalf("record %d: count %d < 1", n, rec.Count)
		}
		n++
		if n > 1<<20 {
			t.Fatal("reader did not terminate")
		}
	}
}

// FuzzParseMSRPerVolume fuzzes the per-volume split path end to end the
// way RunMSRVolumes drives it: enumerate DiskNumbers with MSRVolumes,
// then parse one filtered stream per volume over independent
// SectionReaders of the same bytes (the shared-pread-handle layout).
// Arbitrary input must never panic any stage, and whenever every stream
// ends cleanly the per-volume streams must partition the joint stream
// record for record.
func FuzzParseMSRPerVolume(f *testing.F) {
	f.Add("1,h,0,Read,4096,4096,1\n2,h,3,Write,0,512,1\n3,h,0,Read,8192,512,1\n") // volumes interleave
	f.Add("1,h,2,Read,1,1,1\n2,h,2,Write,0,0,1\n")                                // malformed line inside one volume
	f.Add("1,h,0,Read,1,1,1\n2,h,-1,Read,1,1,1\n")                                // negative volume number
	f.Add("1,h,0,Read,1,1,1\n2,h,x,Read,1,1,1\n")                                 // volume column corrupt mid-stream
	f.Add("1,h,7,read,1,1\n2,h,7,write,1,1\n")                                    // short lines, one volume
	f.Add("# c\n\n1,h,1,Read,1,1,1\n2,h,1,Flush,1,1,1\n3,h,2,Read,1,1,1\n")       // bad op in one volume only
	f.Add("x,h,0,Read,1,1,1\n1,h,1,Read,1,1,1\n")                                 // bad timestamp, good volumes
	f.Fuzz(func(t *testing.T, data string) {
		at := strings.NewReader(data)
		size := int64(len(data))
		section := func() io.Reader { return io.NewSectionReader(at, 0, size) }
		vols, err := MSRVolumes(section())
		if err != nil {
			return // a corrupt volume column must error, not panic
		}
		truncated := len(vols) > 8
		if truncated {
			vols = vols[:8] // bound fuzz cost; the split logic is per-volume
		}
		total, clean := drainCount(t, NewMSRReader(section()))
		var split int64
		allClean := true
		for _, v := range vols {
			r := NewMSRReader(section())
			r.Volume = v
			n, c := drainCount(t, r)
			split += n
			allClean = allClean && c
		}
		// MSRVolumes enumerated every DiskNumber, so with every stream
		// clean each joint record belongs to exactly one filtered stream.
		if clean && allClean && !truncated && split != total {
			t.Fatalf("per-volume split parsed %d records, joint stream %d", split, total)
		}
	})
}

// FuzzParseIntBytes pins the byte-slice integer fast path to strconv:
// for every input the value must match bit for bit and the error must
// agree in presence (the fallback delegates to strconv, so messages
// match by construction whenever the fast path rejects).
func FuzzParseIntBytes(f *testing.F) {
	f.Add("0")
	f.Add("-1")
	f.Add("+42")
	f.Add("9223372036854775807")  // MaxInt64
	f.Add("-9223372036854775808") // MinInt64
	f.Add("9223372036854775808")  // overflow
	f.Add("99999999999999999999999999")
	f.Add("000000000000000000000007") // long but in range
	f.Add("12x3")
	f.Add("")
	f.Add("-")
	f.Add(" 5")
	f.Fuzz(func(t *testing.T, s string) {
		got, gotErr := parseIntBytes([]byte(s))
		want, wantErr := strconv.ParseInt(s, 10, 64)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parseIntBytes(%q) err = %v, strconv err = %v", s, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("parseIntBytes(%q) = %d, strconv = %d", s, got, want)
		}
	})
}

// FuzzParseFloatBytes pins the byte-slice float fast path to strconv:
// identical bits for every accepted input (the fast path only fires
// when one IEEE division is provably exact, so this must hold for all
// inputs, not just friendly ones).
func FuzzParseFloatBytes(f *testing.F) {
	f.Add("0.000000")
	f.Add("1.5")
	f.Add("123456789.123456")  // 15 significant digits
	f.Add("1234567890.123456") // 16: must fall back, still match
	f.Add("-0.0")
	f.Add("5.")
	f.Add(".5")
	f.Add("1e308")
	f.Add("NaN")
	f.Add("Inf")
	f.Add("0.0000000000000000000000001")
	f.Add("..")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		got, gotErr := parseFloatBytes([]byte(s))
		want, wantErr := strconv.ParseFloat(s, 64)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parseFloatBytes(%q) err = %v, strconv err = %v", s, gotErr, wantErr)
		}
		if gotErr == nil && math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("parseFloatBytes(%q) = %x (%g), strconv = %x (%g)",
				s, math.Float64bits(got), got, math.Float64bits(want), want)
		}
	})
}

func FuzzParseBlk(f *testing.F) {
	f.Add("0.000000 0 R 2048 8\n1.5 0 W 4096 16\n")
	f.Add("0.1 dev READ 0 1\n")
	f.Add("0.1 dev Q 0 1\n")   // bad op
	f.Add("0.1 dev R -8 1\n")  // negative sector
	f.Add("0.1 dev R 8 0\n")   // zero sectors
	f.Add("0.1 dev R 8\n")     // short line
	f.Add("NaN dev R 8 1\n")   // NaN time
	f.Add("1e308 dev R 8 1\n") // huge time
	f.Fuzz(func(t *testing.T, data string) {
		drain(t, NewBlkReader(strings.NewReader(data)))
	})
}
