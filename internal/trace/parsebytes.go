package trace

import (
	"bytes"
	"strconv"
)

// Byte-slice field scanning and numeric parsing for the trace parsers.
//
// The readers parse millions of lines per replay; with bufio.Scanner
// handing out its internal buffer via Bytes(), the only way a line can
// cost zero allocations is if every field stays a sub-slice and the
// numeric conversions never round-trip through string. The fast paths
// below cover every well-formed trace line; anything irregular —
// malformed digits, overflow, exponents — falls back to strconv on a
// copied string, so error values (and their messages) are exactly the
// ones strconv would have produced. Errors are terminal for a replay,
// so the fallback's allocation is irrelevant.

// cutFieldBytes is cutField over a byte slice: it returns the leading
// space/tab-delimited field and the remainder with its leading
// separators removed, allocating nothing.
func cutFieldBytes(s []byte) (field, rest []byte) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	j := i
	for j < len(s) && s[j] != ' ' && s[j] != '\t' {
		j++
	}
	k := j
	for k < len(s) && (s[k] == ' ' || s[k] == '\t') {
		k++
	}
	return s[i:j], s[k:]
}

// cutComma is strings.Cut(s, ",") over a byte slice.
func cutComma(s []byte) (before, after []byte, found bool) {
	if i := bytes.IndexByte(s, ','); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, nil, false
}

// parseIntBytes is strconv.ParseInt(string(b), 10, 64) without the
// string conversion on the fast path. Inputs the fast path cannot
// prove in range (19+ digit magnitudes) or cannot parse defer to
// strconv for the identical value-and-error behaviour.
func parseIntBytes(b []byte) (int64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	// 18 digits can never overflow an int64; longer magnitudes (or
	// empty/garbage input) take the exact strconv path.
	if len(s) == 0 || len(s) > 18 {
		return strconv.ParseInt(string(b), 10, 64)
	}
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return strconv.ParseInt(string(b), 10, 64)
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		return -n, nil
	}
	return n, nil
}

// parseAtoiBytes is strconv.Atoi(string(b)) without the string
// conversion on the fast path.
func parseAtoiBytes(b []byte) (int, error) {
	n, err := parseIntBytes(b)
	if err != nil {
		return strconv.Atoi(string(b))
	}
	if int64(int(n)) != n {
		return strconv.Atoi(string(b))
	}
	return int(n), nil
}

// pow10 holds the exactly-representable powers of ten: every entry and
// every float64 division by one is exact-input correctly-rounded, the
// precondition of the fast path below.
var pow10 = [...]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22}

// parseFloatBytes is strconv.ParseFloat(string(b), 64) without the
// string conversion for plain decimals. The fast path accepts at most
// 15 significant digits and 22 fractional digits: the mantissa then
// fits float64 exactly and the divisor is an exact power of ten, so
// one IEEE division yields the same correctly-rounded value strconv
// computes. Exponents, long digit strings, specials (NaN, Inf) and
// malformed input all defer to strconv.
func parseFloatBytes(b []byte) (float64, error) {
	s := b
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	var mant uint64
	digits, frac := 0, -1
	for i, c := range s {
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			digits++
		case c == '.' && frac < 0:
			frac = len(s) - i - 1
		default:
			return strconv.ParseFloat(string(b), 64)
		}
	}
	if digits == 0 || digits > 15 || frac > 22 {
		return strconv.ParseFloat(string(b), 64)
	}
	f := float64(mant)
	if frac > 0 {
		f /= pow10[frac]
	}
	if neg {
		f = -f
	}
	return f, nil
}
