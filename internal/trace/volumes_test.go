package trace

import (
	"strings"
	"testing"
)

func TestMSRVolumesEnumerates(t *testing.T) {
	in := strings.NewReader(`# comment
128166372003061629,host,3,Read,0,4096,100
128166372003062629,host,0,Write,4096,4096,100

128166372003063629,host,3,Read,8192,4096,100
128166372003064629,host,7,Read,0,4096,100
`)
	vols, err := MSRVolumes(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 7}
	if len(vols) != len(want) {
		t.Fatalf("got %v, want %v", vols, want)
	}
	for i := range want {
		if vols[i] != want[i] {
			t.Fatalf("got %v, want %v (ascending)", vols, want)
		}
	}
}

func TestMSRVolumesRejectsMalformed(t *testing.T) {
	if _, err := MSRVolumes(strings.NewReader("nonsense\n")); err == nil {
		t.Fatal("malformed line did not error")
	}
	if _, err := MSRVolumes(strings.NewReader("1,h,x,Read,0,1,1\n")); err == nil {
		t.Fatal("non-numeric DiskNumber did not error")
	}
	if _, err := MSRVolumes(strings.NewReader("1,h,-1,Read,0,1,1\n")); err == nil {
		t.Fatal("negative DiskNumber did not error")
	}
}

func TestMSRVolumesEmpty(t *testing.T) {
	vols, err := MSRVolumes(strings.NewReader("# only comments\n"))
	if err != nil || len(vols) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", vols, err)
	}
}
