package trace

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

func buildNative(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		op := "R"
		if i%3 == 0 {
			op = "W"
		}
		fmt.Fprintf(&sb, "%d %s %d %d\n", i*100, op, i*8, 8)
	}
	return sb.String()
}

func buildMSR(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		typ := "Read"
		if i%3 == 0 {
			typ = "Write"
		}
		fmt.Fprintf(&sb, "%d,host,0,%s,%d,%d,100\n", 128166372003061629+i*1000, typ, i*4096, 4096)
	}
	return sb.String()
}

func buildBlk(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		op := "R"
		if i%3 == 0 {
			op = "W"
		}
		fmt.Fprintf(&sb, "%d.%06d 0 %s %d %d\n", i, i%1000000, op, i*64, 64)
	}
	return sb.String()
}

func benchReader(b *testing.B, input string, open func(io.Reader) Reader) {
	b.ReportAllocs()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := open(strings.NewReader(input))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// drainAllocs measures the total allocations of constructing a reader
// over input and draining it.
func drainAllocs(t *testing.T, input string, open func(io.Reader) Reader) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		r := open(strings.NewReader(input))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestParsersZeroAllocPerLine pins the parse loops at zero allocations
// per record: growing the input 20x must not change the total
// allocation count (construction and the scanner's buffers are the
// only allocations, and they are independent of trace length).
func TestParsersZeroAllocPerLine(t *testing.T) {
	cases := []struct {
		name  string
		build func(int) string
		open  func(io.Reader) Reader
	}{
		{"native", buildNative, func(r io.Reader) Reader { return NewNativeReader(r) }},
		{"msr", buildMSR, func(r io.Reader) Reader { return NewMSRReader(r) }},
		{"blk", buildBlk, func(r io.Reader) Reader { return NewBlkReader(r) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			small := drainAllocs(t, tc.build(500), tc.open)
			large := drainAllocs(t, tc.build(10000), tc.open)
			if large != small {
				t.Fatalf("allocations scale with trace length: %.1f for 500 records, %.1f for 10000 (want equal; %+.4f per line)",
					small, large, (large-small)/9500)
			}
		})
	}
}

func BenchmarkNativeReader(b *testing.B) {
	in := buildNative(10000)
	benchReader(b, in, func(r io.Reader) Reader { return NewNativeReader(r) })
}

func BenchmarkMSRReader(b *testing.B) {
	in := buildMSR(10000)
	benchReader(b, in, func(r io.Reader) Reader { return NewMSRReader(r) })
}

func BenchmarkBlkReader(b *testing.B) {
	in := buildBlk(10000)
	benchReader(b, in, func(r io.Reader) Reader { return NewBlkReader(r) })
}
