package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"craid/internal/disk"
	"craid/internal/sim"
)

func TestNativeRoundTrip(t *testing.T) {
	records := []Record{
		{Time: 0, Op: disk.OpRead, Block: 100, Count: 8},
		{Time: 1500 * sim.Microsecond, Op: disk.OpWrite, Block: 0, Count: 1},
		{Time: sim.Hour, Op: disk.OpRead, Block: 1 << 40, Count: 1024},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewNativeReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round-tripped %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestNativeSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 R 5 2\n   \n# tail\n2 W 6 1\n"
	got, err := ReadAll(NewNativeReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2", len(got))
	}
	if got[0].Op != disk.OpRead || got[1].Op != disk.OpWrite {
		t.Error("ops parsed wrong")
	}
}

func TestNativeRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"1 R 5",      // missing field
		"x R 5 2",    // bad time
		"1 Q 5 2",    // bad op
		"1 R five 2", // bad block
		"1 R 5 0",    // zero count
		"1 R 5 -3",   // negative count
	} {
		if _, err := ReadAll(NewNativeReader(strings.NewReader(in))); err == nil {
			t.Errorf("input %q did not error", in)
		}
	}
}

func TestMSRReader(t *testing.T) {
	// FILETIME ticks: second record is 10ms after the first.
	in := strings.Join([]string{
		"128166372003061629,wdev,0,Read,8192,4096,1331",
		"128166372003161629,wdev,0,Write,4096,8192,2518",
		"128166372003261629,wdev,1,Read,0,512,100", // other volume
	}, "\n")
	r := NewMSRReader(strings.NewReader(in))
	r.Volume = 0
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2 (volume filter)", len(got))
	}
	if got[0].Time != 0 {
		t.Errorf("first record time = %v, want 0 (rebased)", got[0].Time)
	}
	if got[0].Block != 2 || got[0].Count != 1 {
		t.Errorf("record 0 = %+v, want block 2 count 1", got[0])
	}
	if got[1].Time != 10*sim.Millisecond {
		t.Errorf("second record time = %v, want 10ms", got[1].Time)
	}
	if got[1].Op != disk.OpWrite || got[1].Block != 1 || got[1].Count != 2 {
		t.Errorf("record 1 = %+v, want write block 1 count 2", got[1])
	}
}

// TestMSRRejectsNonPositiveSize pins that a zero- or negative-size MSR
// record is a parse error, not a phantom one-block request silently
// fed to the controller.
func TestMSRRejectsNonPositiveSize(t *testing.T) {
	for _, in := range []string{
		"0,srv,0,Read,4096,0,1",
		"0,srv,0,Write,4096,-512,1",
	} {
		if _, err := ReadAll(NewMSRReader(strings.NewReader(in))); err == nil {
			t.Errorf("%q: parsed without error, want non-positive-size rejection", in)
		}
	}
	// A 1-byte request is the smallest legal transfer: one block.
	got, err := ReadAll(NewMSRReader(strings.NewReader("0,srv,0,Read,4096,1,1")))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Block != 1 || got[0].Count != 1 {
		t.Errorf("1-byte request = %+v, want block 1 count 1", got[0])
	}
}

func TestMSRUnalignedExtent(t *testing.T) {
	// Offset 6144 size 4096 spans blocks 1..2 (bytes 6144-10239).
	in := "0,srv,0,Read,6144,4096,1"
	got, err := ReadAll(NewMSRReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Block != 1 || got[0].Count != 2 {
		t.Errorf("unaligned extent = %+v, want block 1 count 2", got[0])
	}
}

func TestBlkReader(t *testing.T) {
	in := strings.Join([]string{
		"100.000000 sda R 64 8",  // sectors 64..71 → block 8, count 1
		"100.250000 sda W 72 16", // sectors 72..87 → blocks 9..10
	}, "\n")
	got, err := ReadAll(NewBlkReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2", len(got))
	}
	if got[0].Time != 0 || got[0].Block != 8 || got[0].Count != 1 {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].Time != 250*sim.Millisecond || got[1].Block != 9 || got[1].Count != 2 {
		t.Errorf("record 1 = %+v", got[1])
	}
}

func TestWindowFilter(t *testing.T) {
	records := []Record{
		{Time: 1 * sim.Second, Block: 1, Count: 1},
		{Time: 5 * sim.Second, Block: 2, Count: 1},
		{Time: 9 * sim.Second, Block: 3, Count: 1},
	}
	got, err := ReadAll(Window(NewSlice(records), 2*sim.Second, 8*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Block != 2 {
		t.Fatalf("window = %+v, want only block 2", got)
	}
	if got[0].Time != 3*sim.Second {
		t.Errorf("windowed time = %v, want rebased 3s", got[0].Time)
	}
}

func TestClampWrapsAddresses(t *testing.T) {
	records := []Record{
		{Block: 1000, Count: 4},
		{Block: 98, Count: 8}, // would cross the 100-block end
	}
	got, err := ReadAll(Clamp(NewSlice(records), 100))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Block < 0 || r.Block+r.Count > 100 {
			t.Errorf("record %d = %+v escapes [0,100)", i, r)
		}
	}
	if got[0].Block != 0 {
		t.Errorf("clamped block = %d, want 0 (1000 mod 100)", got[0].Block)
	}
}

// Property: native round-trip is the identity for all valid records
// (times at microsecond granularity, the format's resolution).
func TestPropertyNativeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := make([]Record, int(n%50)+1)
		for i := range records {
			records[i] = Record{
				Time:  sim.Time(rng.Int63n(1<<40)) * sim.Microsecond,
				Op:    disk.Op(rng.Intn(2)),
				Block: rng.Int63n(1 << 45),
				Count: rng.Int63n(1024) + 1,
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range records {
			if w.Write(r) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := ReadAll(NewNativeReader(&buf))
		if err != nil || len(got) != len(records) {
			return false
		}
		for i := range records {
			if got[i] != records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSliceReaderEOF(t *testing.T) {
	s := NewSlice(nil)
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("empty slice Next() err = %v, want EOF", err)
	}
}
