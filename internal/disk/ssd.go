package disk

import (
	"craid/internal/sim"
)

// SSDConfig describes the idealized SSD model. It mirrors the Microsoft
// Research DiskSim SSD extension the paper uses: per-page read/program
// latencies, channel-level parallelism, and — deliberately — no
// read/write cache (the paper observes DiskSim's SSD model "does not
// simulate a read/write cache", which shapes its Table 5 and Fig. 6
// results, so the omission is part of the model).
type SSDConfig struct {
	Name           string
	CapacityBlocks int64
	Channels       int      // independent channels; block i lives on channel i % Channels
	ReadLatency    sim.Time // per 4 KiB page
	WriteLatency   sim.Time // per 4 KiB page
	ControllerOver sim.Time // per-request overhead
}

// MSRSSDConfig returns parameters matching the idealized MSR model as
// commonly configured: 25 µs page reads, 200 µs page programs, four
// channels, 32 GB.
func MSRSSDConfig(name string) SSDConfig {
	return SSDConfig{
		Name:           name,
		CapacityBlocks: 32 * 1000 * 1000 * 1000 / BlockSize,
		Channels:       4,
		ReadLatency:    25 * sim.Microsecond,
		WriteLatency:   200 * sim.Microsecond,
		ControllerOver: 20 * sim.Microsecond,
	}
}

// SSD is an idealized flash device: each channel is an independent FIFO
// server; a request occupies the channels its blocks map to, one page
// time per block, with no caching.
type SSD struct {
	eng   *sim.Engine
	cfg   SSDConfig
	stats Stats

	// chanFree[i] is the simulated time at which channel i next becomes
	// idle. FIFO per channel; requests reserve all their channels.
	chanFree []sim.Time

	// pages is the per-submit channel page-count scratch; Submit fully
	// consumes it before returning, so one buffer serves every request.
	pages []int64

	// Freelist of in-flight completions: channels overlap requests
	// freely, so completions pool like the HDD's absorb ops.
	opFree *ssdOp

	faultState
}

// ssdOp is one request in flight between Submit and its completion
// event; pooled on its SSD so the submit path allocates nothing.
type ssdOp struct {
	d     *SSD
	fail  bool
	op    Op
	count int64
	done  func(at sim.Time)
	fn    func()
	next  *ssdOp
}

func (d *SSD) newOp(r *Request, done func(at sim.Time)) *ssdOp {
	o := d.opFree
	if o == nil {
		o = &ssdOp{d: d}
		o.fn = o.fire
	} else {
		d.opFree = o.next
		o.next = nil
	}
	o.fail, o.op, o.count, o.done = r.fail, r.Op, r.Count, done
	return o
}

// fire completes the request: recycle first (done may submit further
// I/O and reclaim the op), then count and call back.
func (o *ssdOp) fire() {
	d, fail, op, count, done := o.d, o.fail, o.op, o.count, o.done
	o.done = nil
	o.next = d.opFree
	d.opFree = o
	if fail {
		d.stats.Errors++
	} else if op == OpRead {
		d.stats.Reads++
		d.stats.BlocksRead += count
	} else {
		d.stats.Writes++
		d.stats.BlocksWrite += count
	}
	if done != nil {
		done(d.eng.Now())
	}
}

// NewSSD builds an SSD from cfg, attached to eng.
func NewSSD(eng *sim.Engine, cfg SSDConfig) *SSD {
	if cfg.Channels <= 0 || cfg.CapacityBlocks <= 0 {
		panic("disk: invalid SSD config")
	}
	return &SSD{
		eng:      eng,
		cfg:      cfg,
		chanFree: make([]sim.Time, cfg.Channels),
		pages:    make([]int64, cfg.Channels),
	}
}

// RetainsRequests reports that the SSD copies everything it needs out
// of the request during Submit, so callers may reuse the structure.
func (d *SSD) RetainsRequests() bool { return false }

// CapacityBlocks implements Device.
func (d *SSD) CapacityBlocks() int64 { return d.cfg.CapacityBlocks }

// Name implements Device.
func (d *SSD) Name() string { return d.cfg.Name }

// Stats implements Device.
func (d *SSD) Stats() *Stats { return &d.stats }

// QueueDepth reports how many requests are waiting or in flight,
// approximated by the number of channels busy beyond "now".
func (d *SSD) QueueDepth() int {
	now := d.eng.Now()
	n := 0
	for _, t := range d.chanFree {
		if t > now {
			n++
		}
	}
	return n
}

// Busy reports whether any channel is busy.
func (d *SSD) Busy() bool { return d.QueueDepth() > 0 }

// Submit implements Device. Blocks are spread over channels
// round-robin; the request completes when its slowest channel finishes.
func (d *SSD) Submit(r *Request) {
	checkRange(d, r)
	now := d.eng.Now()
	d.stats.observeQueue(d.QueueDepth())

	if d.failed {
		d.stats.Rejected++
		completeFault(d.eng, d.cfg.ControllerOver, r)
		return
	}
	d.draw(r)

	per := d.cfg.ReadLatency
	if r.Op == OpWrite {
		per = d.cfg.WriteLatency
	}
	if r.latX > 1 {
		per = sim.Time(float64(per) * r.latX)
	}

	// Count pages per channel for this request.
	pages := d.pages
	for i := range pages {
		pages[i] = 0
	}
	for b := r.Block; b < r.Block+r.Count; b++ {
		pages[int(b%int64(d.cfg.Channels))]++
	}

	var latest sim.Time
	for ch, n := range pages {
		if n == 0 {
			continue
		}
		start := d.chanFree[ch]
		if start < now {
			start = now
		}
		end := start + sim.Time(n)*per
		d.chanFree[ch] = end
		if end > latest {
			latest = end
		}
	}
	finish := latest + d.cfg.ControllerOver
	d.stats.BusyTime += finish - now

	done := r.Done
	if r.fail && r.Fail != nil {
		done = r.Fail
	}
	o := d.newOp(r, done)
	d.eng.Schedule(finish, o.fn)
}
