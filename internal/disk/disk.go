// Package disk provides event-driven storage device models: a detailed
// hard-disk model (zoned geometry, seek curve, rotational position and
// a segmented on-disk cache), an idealized SSD, and an instant-service
// null device.
//
// The HDD model stands in for DiskSim's validated Seagate Cheetah 15K.5
// model used by the CRAID paper: it reproduces the same first-order
// latency components (seek, rotational delay, media transfer, cache
// hits) with parameters taken from the same drive's datasheet. The SSD
// model mirrors the idealized Microsoft Research DiskSim SSD model,
// including its documented lack of a read/write cache — a detail the
// paper's write-latency results depend on.
//
// All devices operate on fixed-size logical blocks (BlockSize bytes)
// and complete requests by invoking a callback on the shared simulation
// engine; they never block.
package disk

import (
	"fmt"

	"craid/internal/sim"
)

// BlockSize is the logical block size, in bytes, used across the whole
// repository. The CRAID paper's mapping-cache memory accounting assumes
// 4 KiB blocks.
const BlockSize = 4096

// Op distinguishes reads from writes.
type Op uint8

// Request operations.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Request is a contiguous block-level I/O against a single device.
// Block and Count address logical blocks local to that device.
type Request struct {
	Op    Op
	Block int64 // first logical block on the device
	Count int64 // number of consecutive blocks, >= 1

	// Done, if non-nil, is invoked exactly once when the request
	// completes, with the completion time.
	Done func(at sim.Time)

	// Fail, if non-nil, is invoked instead of Done when the request
	// completes carrying an injected error or is rejected by a Failed
	// device. When Fail is nil the device falls back to Done, so
	// fault-unaware callers still observe exactly one completion.
	Fail func(at sim.Time)

	arrive sim.Time
	fail   bool    // verdict drawn at submit: complete with an error
	latX   float64 // service-time multiplier drawn at submit (<=1 = none)
}

// Injector decides the fate of individual requests on behalf of a
// fault plan. Verdict is consulted exactly once per submitted request,
// in submission order — which the single-threaded engine makes
// deterministic — so a stateless seeded hash over an advancing
// per-device counter replays bit-identically.
type Injector interface {
	Verdict(op Op, block, count int64) (fail bool, latencyX float64)
}

// Faultable is implemented by device models that support fault
// injection: a per-request Injector for transient errors and latency
// multipliers, and a Failed state (a dead disk) that rejects all I/O.
type Faultable interface {
	SetInjector(inj Injector)
	SetFailed(failed bool)
	Failed() bool
}

// Device is a block storage device attached to a simulation engine.
type Device interface {
	// Submit enqueues the request. Completion is reported through
	// r.Done. Submit panics if the request is out of range: device
	// models cannot repair addressing bugs in upper layers.
	Submit(r *Request)
	// CapacityBlocks is the number of addressable logical blocks.
	CapacityBlocks() int64
	// Name identifies the device in stats output.
	Name() string
	// Stats returns the device's accumulated counters. The returned
	// pointer stays valid and live for the device's lifetime.
	Stats() *Stats
}

// Stats holds per-device counters maintained by every model.
type Stats struct {
	Reads        int64 // completed read requests
	Writes       int64 // completed write requests
	BlocksRead   int64
	BlocksWrite  int64
	BusyTime     sim.Time // total time the device was servicing requests
	QueueSamples int64    // number of queue-length observations (one per submit)
	QueueSum     int64    // sum of observed queue lengths (pending, incl. in service)
	QueueMax     int64    // maximum observed queue length
	CacheHits    int64    // requests served entirely from the on-device cache
	CacheMisses  int64
	Errors       int64 // requests completed with an injected error
	Rejected     int64 // requests rejected because the device was Failed
}

// MeanQueue returns the average queue length observed at submit time.
func (s *Stats) MeanQueue() float64 {
	if s.QueueSamples == 0 {
		return 0
	}
	return float64(s.QueueSum) / float64(s.QueueSamples)
}

// IOs returns total completed requests.
func (s *Stats) IOs() int64 { return s.Reads + s.Writes }

func (s *Stats) observeQueue(depth int) {
	s.QueueSamples++
	s.QueueSum += int64(depth)
	if int64(depth) > s.QueueMax {
		s.QueueMax = int64(depth)
	}
}

func checkRange(d Device, r *Request) {
	if r.Count < 1 || r.Block < 0 || r.Block+r.Count > d.CapacityBlocks() {
		panic(fmt.Sprintf("disk: request [%d,+%d) out of range on %s (capacity %d blocks)",
			r.Block, r.Count, d.Name(), d.CapacityBlocks()))
	}
}

// faultState is the injection state embedded by every device model.
// All hot-path checks on a fault-free device reduce to a nil test and
// a false bool.
type faultState struct {
	inj    Injector
	failed bool
}

// SetInjector implements Faultable.
func (f *faultState) SetInjector(inj Injector) { f.inj = inj }

// SetFailed implements Faultable. Requests already queued when the
// device fails complete normally (they were accepted); only subsequent
// submissions are rejected.
func (f *faultState) SetFailed(failed bool) { f.failed = failed }

// Failed implements Faultable.
func (f *faultState) Failed() bool { return f.failed }

// draw consults the injector and stamps the verdict on the request.
func (f *faultState) draw(r *Request) {
	if f.inj == nil {
		r.fail, r.latX = false, 0
		return
	}
	r.fail, r.latX = f.inj.Verdict(r.Op, r.Block, r.Count)
}

// completeFault completes r with an error after delay: through Fail
// when set, falling back to Done so fault-unaware callers still get
// exactly one completion. The callback is captured immediately because
// non-retaining devices let callers reuse the request structure.
func completeFault(eng *sim.Engine, delay sim.Time, r *Request) {
	cb := r.Fail
	if cb == nil {
		cb = r.Done
	}
	if cb != nil {
		eng.AfterTimed(delay, cb)
	}
}

// NullDevice completes every request instantly. It realizes the CRAID
// paper's "simplified disk model that resolves each I/O instantly" used
// to evaluate cache-policy quality in isolation (§5.1).
type NullDevice struct {
	eng      *sim.Engine
	name     string
	capacity int64
	stats    Stats
	faultState
}

// NewNullDevice returns an instant-service device with the given
// capacity in blocks.
func NewNullDevice(eng *sim.Engine, name string, capacityBlocks int64) *NullDevice {
	return &NullDevice{eng: eng, name: name, capacity: capacityBlocks}
}

// Submit implements Device; the request completes at the current
// simulated instant (via a zero-delay event, preserving callback
// ordering guarantees).
func (d *NullDevice) Submit(r *Request) {
	checkRange(d, r)
	d.stats.observeQueue(0)
	if d.failed {
		d.stats.Rejected++
		completeFault(d.eng, 0, r)
		return
	}
	d.draw(r)
	if r.fail {
		// An instant device has no service time to scale, so a latency
		// multiplier is moot; the error verdict still applies.
		d.stats.Errors++
		completeFault(d.eng, 0, r)
		return
	}
	if r.Op == OpRead {
		d.stats.Reads++
		d.stats.BlocksRead += r.Count
	} else {
		d.stats.Writes++
		d.stats.BlocksWrite += r.Count
	}
	if r.Done != nil {
		// Zero-delay timed event: preserves callback ordering without
		// allocating a wrapper closure per request.
		d.eng.AfterTimed(0, r.Done)
	}
}

// RetainsRequests reports that NullDevice never keeps a *Request past
// Submit, so callers may reuse the request structure immediately.
func (d *NullDevice) RetainsRequests() bool { return false }

// CapacityBlocks implements Device.
func (d *NullDevice) CapacityBlocks() int64 { return d.capacity }

// Name implements Device.
func (d *NullDevice) Name() string { return d.name }

// Stats implements Device.
func (d *NullDevice) Stats() *Stats { return &d.stats }
