package disk

import (
	"testing"

	"craid/internal/sim"
)

// scriptedInjector replays a fixed verdict script and counts calls.
type scriptedInjector struct {
	fail  []bool
	latX  float64
	calls int
}

func (s *scriptedInjector) Verdict(op Op, block, count int64) (bool, float64) {
	i := s.calls
	s.calls++
	if i < len(s.fail) {
		return s.fail[i], s.latX
	}
	return false, s.latX
}

// runOneFault submits a request with separate Done/Fail callbacks and
// reports which one fired.
func runOneFault(t *testing.T, eng *sim.Engine, d Device, op Op, block, count int64) (failed bool, rt sim.Time) {
	t.Helper()
	start := eng.Now()
	completions := 0
	d.Submit(&Request{
		Op: op, Block: block, Count: count,
		Done: func(at sim.Time) { completions++; rt = at - start },
		Fail: func(at sim.Time) { completions++; failed = true; rt = at - start },
	})
	eng.Run()
	if completions != 1 {
		t.Fatalf("request (%v %d+%d) completed %d times, want exactly once", op, block, count, completions)
	}
	return failed, rt
}

// TestFailedDeviceRejectsUntilRestored pins the dead-disk contract on
// every model: a Failed device rejects each submission through Fail,
// counts it in Rejected, and serves normally once restored.
func TestFailedDeviceRejectsUntilRestored(t *testing.T) {
	eng := sim.NewEngine()
	devices := []Device{
		NewNullDevice(eng, "null0", 10000),
		NewHDD(eng, smallHDDConfig("hdd0")),
		NewSSD(eng, MSRSSDConfig("ssd0")),
	}
	for _, d := range devices {
		f, ok := d.(Faultable)
		if !ok {
			t.Fatalf("%s does not implement Faultable", d.Name())
		}
		f.SetFailed(true)
		if !f.Failed() {
			t.Fatalf("%s: Failed() false after SetFailed(true)", d.Name())
		}
		if failed, _ := runOneFault(t, eng, d, OpRead, 0, 4); !failed {
			t.Errorf("%s: read on a Failed device completed through Done", d.Name())
		}
		if failed, _ := runOneFault(t, eng, d, OpWrite, 8, 4); !failed {
			t.Errorf("%s: write on a Failed device completed through Done", d.Name())
		}
		s := d.Stats()
		if s.Rejected != 2 || s.Reads != 0 || s.Writes != 0 {
			t.Errorf("%s: stats after rejections = %+v", d.Name(), s)
		}
		f.SetFailed(false)
		if failed, _ := runOneFault(t, eng, d, OpRead, 0, 4); failed {
			t.Errorf("%s: restored device still rejecting", d.Name())
		}
		if s.Reads != 1 {
			t.Errorf("%s: restored read not counted: %+v", d.Name(), s)
		}
	}
}

// TestInjectedErrorCompletesThroughFail pins the transient-error path:
// a fail verdict routes the completion to Fail, counts in Errors, and
// leaves the success counters alone.
func TestInjectedErrorCompletesThroughFail(t *testing.T) {
	eng := sim.NewEngine()
	devices := []Device{
		NewNullDevice(eng, "null0", 10000),
		NewHDD(eng, smallHDDConfig("hdd0")),
		NewSSD(eng, MSRSSDConfig("ssd0")),
	}
	for _, d := range devices {
		inj := &scriptedInjector{fail: []bool{true, false}, latX: 1}
		d.(Faultable).SetInjector(inj)
		if failed, _ := runOneFault(t, eng, d, OpRead, 0, 4); !failed {
			t.Errorf("%s: fail verdict completed through Done", d.Name())
		}
		if failed, _ := runOneFault(t, eng, d, OpRead, 0, 4); failed {
			t.Errorf("%s: pass verdict completed through Fail", d.Name())
		}
		s := d.Stats()
		if s.Errors != 1 || s.Reads != 1 || s.Rejected != 0 {
			t.Errorf("%s: stats = %+v, want 1 error + 1 read", d.Name(), s)
		}
		if inj.calls != 2 {
			t.Errorf("%s: injector consulted %d times for 2 submissions", d.Name(), inj.calls)
		}
		d.(Faultable).SetInjector(nil)
	}
}

// TestFaultFallsBackToDone pins that fault-unaware callers (no Fail
// callback) still observe exactly one completion on errors and
// rejections.
func TestFaultFallsBackToDone(t *testing.T) {
	eng := sim.NewEngine()
	d := NewNullDevice(eng, "null0", 10000)
	d.SetInjector(&scriptedInjector{fail: []bool{true}, latX: 1})
	completions := 0
	d.Submit(&Request{Op: OpRead, Block: 0, Count: 1, Done: func(sim.Time) { completions++ }})
	eng.Run()
	if completions != 1 {
		t.Fatalf("error verdict with nil Fail: %d completions through Done, want 1", completions)
	}
	d.SetInjector(nil)
	d.SetFailed(true)
	d.Submit(&Request{Op: OpRead, Block: 0, Count: 1, Done: func(sim.Time) { completions++ }})
	eng.Run()
	if completions != 2 {
		t.Fatalf("rejection with nil Fail: %d total completions, want 2", completions)
	}
}

// TestInjectorLatencyMultiplierScalesService pins the latency-stretch
// half of a transient window on the SSD's deterministic service model:
// per-page latency scales by latX while controller overhead does not.
func TestInjectorLatencyMultiplierScalesService(t *testing.T) {
	eng := sim.NewEngine()
	cfg := SSDConfig{
		Name: "ssd0", CapacityBlocks: 10000, Channels: 1,
		ReadLatency:    100 * sim.Microsecond,
		WriteLatency:   200 * sim.Microsecond,
		ControllerOver: 20 * sim.Microsecond,
	}
	d := NewSSD(eng, cfg)
	_, base := runOneFault(t, eng, d, OpRead, 0, 1)
	if base != cfg.ReadLatency+cfg.ControllerOver {
		t.Fatalf("unscaled read took %v", base)
	}
	d.SetInjector(&scriptedInjector{latX: 4})
	_, scaled := runOneFault(t, eng, d, OpRead, 0, 1)
	if want := 4*cfg.ReadLatency + cfg.ControllerOver; scaled != want {
		t.Fatalf("latX=4 read took %v, want %v", scaled, want)
	}
}

// TestInjectorLatencyMultiplierSlowsHDD is the same property on the
// mechanical model, where the exact service time depends on geometry:
// the stretched request is strictly slower.
func TestInjectorLatencyMultiplierSlowsHDD(t *testing.T) {
	cfg := smallHDDConfig("hdd0")
	cfg.CacheSegments = 0
	cfg.WriteCacheBlocks = 0
	run := func(latX float64) sim.Time {
		eng := sim.NewEngine()
		d := NewHDD(eng, cfg)
		if latX > 1 {
			d.SetInjector(&scriptedInjector{latX: latX})
		}
		_, rt := runOneFault(t, eng, d, OpRead, 4000, 8)
		return rt
	}
	base, stretched := run(1), run(4)
	if stretched <= base {
		t.Fatalf("latX=4 read (%v) not slower than unscaled (%v)", stretched, base)
	}
}
