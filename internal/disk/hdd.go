package disk

import (
	"fmt"
	"math"
	"sort"

	"craid/internal/sim"
)

// Scheduler selects which queued request an HDD services next.
type Scheduler uint8

// Queue scheduling disciplines.
const (
	// FCFS services requests in arrival order.
	FCFS Scheduler = iota
	// SSTF services the request with the shortest seek from the
	// current head position.
	SSTF
	// LOOK sweeps the head across the platter servicing requests in
	// cylinder order, reversing at the last request in each direction.
	LOOK
)

// HDDConfig describes a hard-disk model. The zero value is not valid;
// start from CheetahConfig (or NewHDDConfig) and adjust.
type HDDConfig struct {
	Name string

	// Geometry.
	CapacityBlocks int64 // total logical blocks
	Heads          int   // surfaces (blocks per cylinder = Heads * blocks per track)
	Zones          int   // number of recording zones
	OuterBlocksPT  int   // blocks per track in the outermost zone
	InnerBlocksPT  int   // blocks per track in the innermost zone

	// Mechanics.
	RPM            int      // spindle speed
	TrackToTrack   sim.Time // minimum (single-cylinder) seek
	AvgSeek        sim.Time // average seek (uniform random pairs)
	FullSeek       sim.Time // full-stroke seek
	HeadSwitch     sim.Time // surface switch during sequential transfer
	ControllerOver sim.Time // per-request controller/bus overhead

	// Cache.
	CacheSegments    int // read segments
	SegmentBlocks    int // blocks per read segment (read-ahead unit)
	WriteCacheBlocks int // write-back buffer capacity, 0 disables write-back

	Sched Scheduler
}

// CheetahConfig returns parameters approximating the Seagate Cheetah
// 15K.5 (146 GB, 15 000 RPM, 16 MiB cache) that the paper's DiskSim
// testbed uses. Values come from the drive datasheet the paper cites.
func CheetahConfig(name string) HDDConfig {
	return HDDConfig{
		Name:             name,
		CapacityBlocks:   146 * 1000 * 1000 * 1000 / BlockSize, // 146 GB
		Heads:            4,
		Zones:            16,
		OuterBlocksPT:    122, // ~125 MB/s outer sustained rate at 15 kRPM
		InnerBlocksPT:    71,  // ~73 MB/s inner
		RPM:              15000,
		TrackToTrack:     200 * sim.Microsecond,
		AvgSeek:          3500 * sim.Microsecond,
		FullSeek:         7400 * sim.Microsecond,
		HeadSwitch:       300 * sim.Microsecond,
		ControllerOver:   100 * sim.Microsecond,
		CacheSegments:    16,
		SegmentBlocks:    256,  // 16 segments * 256 blocks * 4 KiB = 16 MiB
		WriteCacheBlocks: 1024, // 4 MiB of the cache dedicated to writes
		Sched:            LOOK,
	}
}

// zone is a contiguous run of cylinders with a common track density.
type zone struct {
	firstBlock int64 // first logical block of the zone
	firstCyl   int64
	cylinders  int64
	blocksPT   int64 // blocks per track
	blocksPCyl int64 // blocks per cylinder (= blocksPT * heads)
}

// HDD is an event-driven hard-disk model: a single mechanical arm, a
// rotating platter stack with zoned density, a segmented read cache
// with read-ahead, an optional write-back buffer, and a queue scheduler.
type HDD struct {
	eng   *sim.Engine
	cfg   HDDConfig
	stats Stats

	zones     []zone
	revTime   sim.Time // one platter revolution
	seekB     float64  // sqrt coefficient of the seek curve (ns)
	seekC     float64  // linear coefficient of the seek curve (ns)
	totalCyls int64

	queue    []*Request
	busy     bool
	curCyl   int64
	sweepUp  bool // LOOK sweep direction
	fcfsHead int  // index of next FCFS request (queue is appended-to)

	// Read cache: fixed number of segments, each holding one
	// contiguous block range; LRU replacement.
	segments []segment
	segClock int64

	// Write-back state.
	dirty       int64 // blocks waiting for destage
	dirtyRanges []blockRange
	destaging   bool
	stalled     []*Request // writes waiting for write-cache space

	// In-service completion, parked in fields rather than a closure:
	// the busy flag admits exactly one request to the media at a time,
	// so finish() stamps the pending completion here and schedules the
	// one cached finishFn method value — no per-I/O allocation.
	finDone  func(at sim.Time)
	finFail  bool
	finOp    Op
	finCount int64
	finishFn func()

	// Destage completion, same single-flight argument via destaging.
	destageN  int64
	destageFn func()

	// Freelist of write-absorb completions: unlike media service these
	// overlap freely (the write cache admits back to back), so they pool.
	absorbFree *absorbOp

	faultState
}

// absorbOp is one write-back cache absorption waiting out the
// controller overhead before completing; pooled on its HDD.
type absorbOp struct {
	d     *HDD
	count int64
	done  func(at sim.Time)
	fn    func()
	next  *absorbOp
}

func (d *HDD) newAbsorb(count int64, done func(at sim.Time)) *absorbOp {
	a := d.absorbFree
	if a == nil {
		a = &absorbOp{d: d}
		a.fn = a.fire
	} else {
		d.absorbFree = a.next
		a.next = nil
	}
	a.count, a.done = count, done
	return a
}

// fire completes the absorbed write: recycle first (done may submit
// more writes and reclaim the op), then count and call back.
func (a *absorbOp) fire() {
	d, count, done := a.d, a.count, a.done
	a.done = nil
	a.next = d.absorbFree
	d.absorbFree = a
	d.stats.Writes++
	d.stats.BlocksWrite += count
	if done != nil {
		done(d.eng.Now())
	}
}

type segment struct {
	start, end int64 // [start, end) block range; start==end means empty
	lastUse    int64
}

type blockRange struct{ start, end int64 }

// NewHDD builds an HDD from cfg, attached to eng.
func NewHDD(eng *sim.Engine, cfg HDDConfig) *HDD {
	if cfg.CapacityBlocks <= 0 || cfg.Heads <= 0 || cfg.Zones <= 0 || cfg.RPM <= 0 {
		panic("disk: invalid HDD config")
	}
	d := &HDD{
		eng:     eng,
		cfg:     cfg,
		revTime: sim.Time(int64(60) * int64(sim.Second) / int64(cfg.RPM)),
	}
	d.buildZones()
	d.calibrateSeek()
	d.segments = make([]segment, cfg.CacheSegments)
	d.finishFn = d.finished
	d.destageFn = d.destaged
	return d
}

// buildZones lays out cfg.Zones zones whose per-track density falls
// linearly from OuterBlocksPT to InnerBlocksPT and whose total capacity
// is exactly cfg.CapacityBlocks (the last zone absorbs rounding).
func (d *HDD) buildZones() {
	cfg := &d.cfg
	// First pass: provisional equal-cylinder zones to estimate how many
	// cylinders realize the target capacity at the mean density.
	meanPT := float64(cfg.OuterBlocksPT+cfg.InnerBlocksPT) / 2
	cyls := int64(math.Ceil(float64(cfg.CapacityBlocks) / (meanPT * float64(cfg.Heads))))
	perZone := cyls / int64(cfg.Zones)
	if perZone == 0 {
		perZone = 1
	}
	var block, cyl int64
	for z := 0; z < cfg.Zones; z++ {
		frac := float64(z) / float64(cfg.Zones-1)
		if cfg.Zones == 1 {
			frac = 0
		}
		pt := int64(math.Round(float64(cfg.OuterBlocksPT) - frac*float64(cfg.OuterBlocksPT-cfg.InnerBlocksPT)))
		zn := zone{
			firstBlock: block,
			firstCyl:   cyl,
			cylinders:  perZone,
			blocksPT:   pt,
			blocksPCyl: pt * int64(cfg.Heads),
		}
		if z == cfg.Zones-1 {
			// Stretch the last zone to cover the remaining capacity.
			remaining := cfg.CapacityBlocks - block
			zn.cylinders = (remaining + zn.blocksPCyl - 1) / zn.blocksPCyl
		}
		d.zones = append(d.zones, zn)
		block += zn.cylinders * zn.blocksPCyl
		cyl += zn.cylinders
	}
	d.totalCyls = cyl
}

// calibrateSeek solves seek(d) = TrackToTrack + b*sqrt(d) + c*d for b, c
// such that seek(totalCyls/3) = AvgSeek (mean seek distance of uniform
// random pairs is N/3) and seek(totalCyls-1) = FullSeek.
func (d *HDD) calibrateSeek() {
	cfg := &d.cfg
	n := float64(d.totalCyls)
	x1, y1 := n/3, float64(cfg.AvgSeek-cfg.TrackToTrack)
	x2, y2 := n-1, float64(cfg.FullSeek-cfg.TrackToTrack)
	// Solve [sqrt(x1) x1; sqrt(x2) x2] * [b c]' = [y1 y2]'.
	a11, a12 := math.Sqrt(x1), x1
	a21, a22 := math.Sqrt(x2), x2
	det := a11*a22 - a12*a21
	d.seekB = (y1*a22 - a12*y2) / det
	d.seekC = (a11*y2 - y1*a21) / det
}

// seekTime returns the arm movement time across dist cylinders.
func (d *HDD) seekTime(dist int64) sim.Time {
	if dist <= 0 {
		return 0
	}
	t := float64(d.cfg.TrackToTrack) + d.seekB*math.Sqrt(float64(dist)) + d.seekC*float64(dist)
	if t < float64(d.cfg.TrackToTrack) {
		t = float64(d.cfg.TrackToTrack)
	}
	return sim.Time(t)
}

// locate maps a block to its zone, cylinder and position on track.
func (d *HDD) locate(block int64) (zn *zone, cyl, posOnTrack int64) {
	i := sort.Search(len(d.zones), func(i int) bool {
		z := d.zones[i]
		return block < z.firstBlock+z.cylinders*z.blocksPCyl
	})
	z := &d.zones[i]
	rel := block - z.firstBlock
	cyl = z.firstCyl + rel/z.blocksPCyl
	posOnTrack = rel % z.blocksPT
	return z, cyl, posOnTrack
}

// CapacityBlocks implements Device.
func (d *HDD) CapacityBlocks() int64 { return d.cfg.CapacityBlocks }

// Name implements Device.
func (d *HDD) Name() string { return d.cfg.Name }

// Stats implements Device.
func (d *HDD) Stats() *Stats { return &d.stats }

// QueueDepth reports requests pending or in service (used by the
// array-level concurrency metrics).
func (d *HDD) QueueDepth() int {
	n := len(d.queue) + len(d.stalled)
	if d.busy {
		n++
	}
	return n
}

// Busy reports whether the device is currently servicing a request or
// destaging its write cache.
func (d *HDD) Busy() bool { return d.busy || d.destaging }

// Submit implements Device.
func (d *HDD) Submit(r *Request) {
	checkRange(d, r)
	r.arrive = d.eng.Now()
	d.stats.observeQueue(d.QueueDepth())

	if d.failed {
		// A dead disk rejects at the controller: bus overhead, then an
		// error completion. Requests queued before the failure still
		// drain normally.
		d.stats.Rejected++
		completeFault(d.eng, d.cfg.ControllerOver, r)
		return
	}
	d.draw(r)

	if r.Op == OpWrite && d.cfg.WriteCacheBlocks > 0 {
		// Write-back path: absorb into the cache if space allows.
		if d.dirty+r.Count <= int64(d.cfg.WriteCacheBlocks) {
			d.absorbWrite(r)
			return
		}
		// No space: the write stalls until destaging frees room.
		d.stalled = append(d.stalled, r)
		d.kick()
		return
	}

	d.queue = append(d.queue, r)
	d.kick()
}

// absorbWrite completes a write from the write-back cache after the
// controller overhead and records its blocks for later destage.
func (d *HDD) absorbWrite(r *Request) {
	if r.fail {
		// The write dies in the controller: no dirty data, no readable
		// segment, just overhead and an error completion.
		d.stats.BusyTime += d.scaled(d.cfg.ControllerOver, r)
		d.stats.Errors++
		completeFault(d.eng, d.scaled(d.cfg.ControllerOver, r), r)
		d.kick()
		return
	}
	d.dirty += r.Count
	d.addDirtyRange(r.Block, r.Block+r.Count)
	// Freshly written data is also readable from the cache.
	d.installSegment(r.Block, r.Block+r.Count)
	a := d.newAbsorb(r.Count, r.Done)
	d.eng.After(d.cfg.ControllerOver, a.fn)
	d.kick()
}

// addDirtyRange records [start,end) for destaging, merging adjacent
// ranges so sequential writes destage as one arm operation.
func (d *HDD) addDirtyRange(start, end int64) {
	for i := range d.dirtyRanges {
		r := &d.dirtyRanges[i]
		if start <= r.end && end >= r.start { // overlap or adjacency
			if start < r.start {
				r.start = start
			}
			if end > r.end {
				r.end = end
			}
			return
		}
	}
	d.dirtyRanges = append(d.dirtyRanges, blockRange{start, end})
}

// kick starts servicing if the device is idle.
func (d *HDD) kick() {
	if d.busy || d.destaging {
		return
	}
	if len(d.queue) > 0 {
		d.startNext()
		return
	}
	if d.dirty > 0 && (len(d.stalled) > 0 || len(d.queue) == 0) {
		d.startDestage()
	}
}

// pickNext removes and returns the next request per the scheduler.
func (d *HDD) pickNext() *Request {
	switch d.cfg.Sched {
	case FCFS:
		r := d.queue[0]
		d.queue = d.queue[1:]
		return r
	case SSTF:
		best, bestDist := 0, int64(math.MaxInt64)
		for i, r := range d.queue {
			_, cyl, _ := d.locate(r.Block)
			dist := cyl - d.curCyl
			if dist < 0 {
				dist = -dist
			}
			if dist < bestDist {
				best, bestDist = i, dist
			}
		}
		r := d.queue[best]
		d.queue = append(d.queue[:best], d.queue[best+1:]...)
		return r
	default: // LOOK
		best := -1
		var bestCyl int64
		for pass := 0; pass < 2; pass++ {
			for i, r := range d.queue {
				_, cyl, _ := d.locate(r.Block)
				if d.sweepUp && cyl < d.curCyl || !d.sweepUp && cyl > d.curCyl {
					continue
				}
				if best == -1 ||
					(d.sweepUp && cyl < bestCyl) || (!d.sweepUp && cyl > bestCyl) {
					best, bestCyl = i, cyl
				}
			}
			if best != -1 {
				break
			}
			d.sweepUp = !d.sweepUp // reverse at the end of the sweep
		}
		r := d.queue[best]
		d.queue = append(d.queue[:best], d.queue[best+1:]...)
		return r
	}
}

// startNext begins servicing one queued request.
func (d *HDD) startNext() {
	r := d.pickNext()
	d.busy = true

	if r.fail {
		// Injected media error: the head still travels (seek, rotation,
		// transfer happen before the error is detected), but no data
		// moves — the cache is neither consulted nor filled.
		service := d.mediaTime(r.Block, r.Count, r.Op == OpWrite)
		d.finish(r, d.scaled(d.cfg.ControllerOver+service, r))
		return
	}
	if r.Op == OpRead && d.cacheCovers(r.Block, r.Block+r.Count) {
		// Full cache hit: controller overhead only.
		d.stats.CacheHits++
		d.finish(r, d.scaled(d.cfg.ControllerOver, r))
		return
	}
	if r.Op == OpRead {
		d.stats.CacheMisses++
	}

	service := d.mediaTime(r.Block, r.Count, r.Op == OpWrite)
	if r.Op == OpRead {
		// Read-ahead: the segment fills with the request plus trailing
		// blocks (time cost of read-ahead is hidden in idle rotation).
		end := r.Block + int64(d.cfg.SegmentBlocks)
		if end > d.cfg.CapacityBlocks {
			end = d.cfg.CapacityBlocks
		}
		d.installSegment(r.Block, end)
	}
	d.finish(r, d.scaled(d.cfg.ControllerOver+service, r))
}

// scaled applies the request's injected latency multiplier to a
// service time.
func (d *HDD) scaled(t sim.Time, r *Request) sim.Time {
	if r.latX > 1 {
		t = sim.Time(float64(t) * r.latX)
	}
	return t
}

// finish completes r after service time, updates stats and continues
// with the next queued operation. The pending completion lives in the
// fin* fields (single-flight under the busy flag) and fires through the
// cached finishFn, so the media path schedules no closures.
func (d *HDD) finish(r *Request, service sim.Time) {
	d.stats.BusyTime += service
	done := r.Done
	if r.fail && r.Fail != nil {
		done = r.Fail
	}
	d.finDone, d.finFail, d.finOp, d.finCount = done, r.fail, r.Op, r.Count
	d.eng.After(service, d.finishFn)
}

// finished is the media-service completion event. The fields are copied
// out before the callback runs: done may submit more I/O, which (with
// busy already cleared) can start the next service and restamp them.
func (d *HDD) finished() {
	done, fail, op, count := d.finDone, d.finFail, d.finOp, d.finCount
	d.finDone = nil
	d.busy = false
	if fail {
		d.stats.Errors++
	} else if op == OpRead {
		d.stats.Reads++
		d.stats.BlocksRead += count
	} else {
		d.stats.Writes++
		d.stats.BlocksWrite += count
	}
	if done != nil {
		done(d.eng.Now())
	}
	d.kick()
}

// mediaTime computes seek + rotational + transfer time for a contiguous
// media access starting at block, and updates the head position.
func (d *HDD) mediaTime(block, count int64, isWrite bool) sim.Time {
	zn, cyl, pos := d.locate(block)
	dist := cyl - d.curCyl
	if dist < 0 {
		dist = -dist
	}
	seek := d.seekTime(dist)
	if isWrite && seek > 0 {
		// Writes settle slightly longer than reads (datasheet: ~0.4 ms
		// extra on average); approximate with +12%.
		seek += seek / 8
	}

	// Rotational delay: where is the target sector when the seek ends?
	arrival := d.eng.Now() + seek
	angleNow := float64(int64(arrival)%int64(d.revTime)) / float64(d.revTime)
	angleTarget := float64(pos) / float64(zn.blocksPT)
	wait := angleTarget - angleNow
	if wait < 0 {
		wait++
	}
	rot := sim.Time(wait * float64(d.revTime))

	// Transfer: a full track per revolution within the zone; crossing
	// tracks adds head/cylinder switch time.
	perBlock := sim.Time(float64(d.revTime) / float64(zn.blocksPT))
	transfer := sim.Time(count) * perBlock
	tracksCrossed := (pos + count - 1) / zn.blocksPT
	transfer += sim.Time(tracksCrossed) * d.cfg.HeadSwitch

	// Head ends at the cylinder holding the last block.
	_, endCyl, _ := d.locate(block + count - 1)
	d.curCyl = endCyl
	return seek + rot + transfer
}

// startDestage flushes the largest dirty range to media in background.
func (d *HDD) startDestage() {
	if len(d.dirtyRanges) == 0 {
		d.dirty = 0
		return
	}
	// Destage the largest range first: frees the most space per seek.
	best := 0
	for i, r := range d.dirtyRanges {
		if r.end-r.start > d.dirtyRanges[best].end-d.dirtyRanges[best].start {
			best = i
		}
	}
	r := d.dirtyRanges[best]
	d.dirtyRanges = append(d.dirtyRanges[:best], d.dirtyRanges[best+1:]...)
	d.destaging = true
	service := d.mediaTime(r.start, r.end-r.start, true)
	d.stats.BusyTime += service
	d.destageN = r.end - r.start
	d.eng.After(service, d.destageFn)
}

// destaged is the destage completion event (single-flight under the
// destaging flag, fired through the cached destageFn).
func (d *HDD) destaged() {
	d.destaging = false
	d.dirty -= d.destageN
	if d.dirty < 0 {
		d.dirty = 0
	}
	d.admitStalled()
	d.kick()
}

// admitStalled moves stalled writes whose blocks now fit into the
// write cache.
func (d *HDD) admitStalled() {
	i := 0
	for ; i < len(d.stalled); i++ {
		r := d.stalled[i]
		if d.dirty+r.Count > int64(d.cfg.WriteCacheBlocks) {
			break
		}
		d.absorbWrite(r)
	}
	d.stalled = d.stalled[i:]
}

// cacheCovers reports whether [start,end) is entirely inside one read
// segment.
func (d *HDD) cacheCovers(start, end int64) bool {
	for i := range d.segments {
		s := &d.segments[i]
		if start >= s.start && end <= s.end {
			d.segClock++
			s.lastUse = d.segClock
			return true
		}
	}
	return false
}

// installSegment loads [start,end) into the least recently used
// segment.
func (d *HDD) installSegment(start, end int64) {
	if len(d.segments) == 0 {
		return
	}
	lru := 0
	for i := range d.segments {
		if d.segments[i].lastUse < d.segments[lru].lastUse {
			lru = i
		}
	}
	d.segClock++
	d.segments[lru] = segment{start: start, end: end, lastUse: d.segClock}
}

// String summarizes the drive geometry, for debugging.
func (d *HDD) String() string {
	return fmt.Sprintf("%s: %d blocks, %d cyls, %d zones, rev %v",
		d.cfg.Name, d.cfg.CapacityBlocks, d.totalCyls, len(d.zones), d.revTime)
}
