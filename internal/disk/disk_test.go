package disk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"craid/internal/sim"
)

// runOne submits a request and runs the engine to completion, returning
// the response time.
func runOne(t *testing.T, eng *sim.Engine, d Device, op Op, block, count int64) sim.Time {
	t.Helper()
	start := eng.Now()
	var done sim.Time
	completed := false
	d.Submit(&Request{Op: op, Block: block, Count: count, Done: func(at sim.Time) {
		done = at
		completed = true
	}})
	eng.Run()
	if !completed {
		t.Fatalf("request (%v %d+%d) never completed", op, block, count)
	}
	return done - start
}

func TestNullDeviceInstant(t *testing.T) {
	eng := sim.NewEngine()
	d := NewNullDevice(eng, "null0", 1000)
	if rt := runOne(t, eng, d, OpRead, 0, 8); rt != 0 {
		t.Errorf("null device read took %v, want 0", rt)
	}
	if rt := runOne(t, eng, d, OpWrite, 100, 8); rt != 0 {
		t.Errorf("null device write took %v, want 0", rt)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.BlocksRead != 8 || s.BlocksWrite != 8 {
		t.Errorf("stats = %+v, want 1 read/1 write of 8 blocks", s)
	}
}

func TestNullDeviceRangeCheck(t *testing.T) {
	eng := sim.NewEngine()
	d := NewNullDevice(eng, "null0", 1000)
	for _, bad := range []Request{
		{Op: OpRead, Block: -1, Count: 1},
		{Op: OpRead, Block: 0, Count: 0},
		{Op: OpRead, Block: 999, Count: 2},
	} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("out-of-range request %+v did not panic", bad)
				}
			}()
			d.Submit(&bad)
		}()
	}
}

func smallHDDConfig(name string) HDDConfig {
	cfg := CheetahConfig(name)
	cfg.CapacityBlocks = 1 << 20 // 4 GiB keeps geometry tests fast
	return cfg
}

func TestHDDGeometryCoversCapacity(t *testing.T) {
	eng := sim.NewEngine()
	d := NewHDD(eng, CheetahConfig("hdd0"))
	var total int64
	for _, z := range d.zones {
		total += z.cylinders * z.blocksPCyl
	}
	if total < d.cfg.CapacityBlocks {
		t.Fatalf("zones cover %d blocks, capacity is %d", total, d.cfg.CapacityBlocks)
	}
	// Every block must locate inside a zone, with sane coordinates.
	for _, b := range []int64{0, 1, d.cfg.CapacityBlocks / 2, d.cfg.CapacityBlocks - 1} {
		zn, cyl, pos := d.locate(b)
		if zn == nil || cyl < 0 || cyl >= d.totalCyls || pos < 0 || pos >= zn.blocksPT {
			t.Errorf("locate(%d) = zone %v cyl %d pos %d: out of bounds", b, zn, cyl, pos)
		}
	}
}

func TestHDDZonedDensityDecreasesInward(t *testing.T) {
	eng := sim.NewEngine()
	d := NewHDD(eng, CheetahConfig("hdd0"))
	for i := 1; i < len(d.zones); i++ {
		if d.zones[i].blocksPT > d.zones[i-1].blocksPT {
			t.Fatalf("zone %d denser (%d) than zone %d (%d): density must fall inward",
				i, d.zones[i].blocksPT, i-1, d.zones[i-1].blocksPT)
		}
	}
}

func TestHDDSeekCurveCalibration(t *testing.T) {
	eng := sim.NewEngine()
	cfg := CheetahConfig("hdd0")
	d := NewHDD(eng, cfg)
	if got := d.seekTime(0); got != 0 {
		t.Errorf("seek(0) = %v, want 0", got)
	}
	if got := d.seekTime(1); got < cfg.TrackToTrack/2 || got > 2*cfg.TrackToTrack {
		t.Errorf("seek(1) = %v, want near track-to-track %v", got, cfg.TrackToTrack)
	}
	third := d.totalCyls / 3
	if got := d.seekTime(third); got < cfg.AvgSeek*9/10 || got > cfg.AvgSeek*11/10 {
		t.Errorf("seek(N/3) = %v, want ~%v", got, cfg.AvgSeek)
	}
	if got := d.seekTime(d.totalCyls - 1); got < cfg.FullSeek*9/10 || got > cfg.FullSeek*11/10 {
		t.Errorf("seek(full) = %v, want ~%v", got, cfg.FullSeek)
	}
	// Monotonic in distance.
	prev := sim.Time(-1)
	for _, dist := range []int64{1, 10, 100, 1000, 10000, d.totalCyls - 1} {
		got := d.seekTime(dist)
		if got < prev {
			t.Errorf("seek(%d) = %v < seek at shorter distance %v", dist, got, prev)
		}
		prev = got
	}
}

func TestHDDReadLatencyWithinMechanicalBounds(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallHDDConfig("hdd0")
	cfg.CacheSegments = 0 // no cache: pure mechanical service
	d := NewHDD(eng, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		block := rng.Int63n(cfg.CapacityBlocks - 8)
		rt := runOne(t, eng, d, OpRead, block, 8)
		min := cfg.ControllerOver
		max := cfg.FullSeek + d.revTime + d.revTime + cfg.ControllerOver + 10*cfg.HeadSwitch
		if rt < min || rt > max {
			t.Fatalf("read %d: response %v outside [%v, %v]", i, rt, min, max)
		}
	}
}

func TestHDDSequentialFasterThanRandom(t *testing.T) {
	// Uses the realistic configuration (read-ahead cache on): without
	// read-ahead, back-to-back sequential requests miss the rotational
	// window and pay a full revolution — the very effect the on-disk
	// cache exists to hide.
	cfg := smallHDDConfig("hdd0")

	// Sequential reads of 64 blocks each.
	engSeq := sim.NewEngine()
	seq := NewHDD(engSeq, cfg)
	var seqTotal sim.Time
	for i := int64(0); i < 100; i++ {
		seqTotal += runOne(t, engSeq, seq, OpRead, i*64, 64)
	}

	// Random reads of 64 blocks each.
	engRnd := sim.NewEngine()
	rnd := NewHDD(engRnd, cfg)
	rng := rand.New(rand.NewSource(11))
	var rndTotal sim.Time
	for i := 0; i < 100; i++ {
		rndTotal += runOne(t, engRnd, rnd, OpRead, rng.Int63n(cfg.CapacityBlocks-64), 64)
	}

	if seqTotal*2 >= rndTotal {
		t.Fatalf("sequential (%v) not clearly faster than random (%v)", seqTotal, rndTotal)
	}
}

func TestHDDReadCacheHit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallHDDConfig("hdd0")
	d := NewHDD(eng, cfg)
	// First read misses and installs a read-ahead segment.
	first := runOne(t, eng, d, OpRead, 1000, 8)
	// Re-read and read-ahead hit must cost only controller overhead.
	again := runOne(t, eng, d, OpRead, 1000, 8)
	ahead := runOne(t, eng, d, OpRead, 1016, 8)
	if again != cfg.ControllerOver {
		t.Errorf("cache re-read took %v, want %v", again, cfg.ControllerOver)
	}
	if ahead != cfg.ControllerOver {
		t.Errorf("read-ahead hit took %v, want %v", ahead, cfg.ControllerOver)
	}
	if first <= again {
		t.Errorf("miss (%v) not slower than hit (%v)", first, again)
	}
	s := d.Stats()
	if s.CacheHits != 2 || s.CacheMisses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 2/1", s.CacheHits, s.CacheMisses)
	}
}

func TestHDDWriteBackAbsorbsSmallWrites(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallHDDConfig("hdd0")
	d := NewHDD(eng, cfg)
	rt := runOne(t, eng, d, OpWrite, 5000, 8)
	if rt != cfg.ControllerOver {
		t.Errorf("write-back absorbed write took %v, want %v", rt, cfg.ControllerOver)
	}
}

func TestHDDWriteCacheFillsAndStalls(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallHDDConfig("hdd0")
	cfg.WriteCacheBlocks = 64
	d := NewHDD(eng, cfg)

	// Burst of scattered writes exceeding the cache forces at least one
	// write to wait for a destage (response > overhead).
	rng := rand.New(rand.NewSource(3))
	var times []sim.Time
	pending := 0
	for i := 0; i < 32; i++ {
		block := rng.Int63n(cfg.CapacityBlocks - 8)
		pending++
		d.Submit(&Request{Op: OpWrite, Block: block, Count: 8, Done: func(at sim.Time) {
			times = append(times, at)
			pending--
		}})
	}
	eng.Run()
	if pending != 0 {
		t.Fatalf("%d writes never completed", pending)
	}
	if len(times) != 32 {
		t.Fatalf("completed %d writes, want 32", len(times))
	}
	// The final completion must be later than a pure cache-absorb burst
	// would allow (32 * overhead), proving stalls occurred.
	last := times[len(times)-1]
	if last <= sim.Time(32)*cfg.ControllerOver {
		t.Errorf("burst finished at %v; expected stalls beyond %v",
			last, sim.Time(32)*cfg.ControllerOver)
	}
}

func TestHDDSchedulersAllComplete(t *testing.T) {
	for _, sched := range []Scheduler{FCFS, SSTF, LOOK} {
		cfg := smallHDDConfig("hdd0")
		cfg.Sched = sched
		eng := sim.NewEngine()
		d := NewHDD(eng, cfg)
		rng := rand.New(rand.NewSource(5))
		completed := 0
		for i := 0; i < 200; i++ {
			d.Submit(&Request{
				Op:    OpRead,
				Block: rng.Int63n(cfg.CapacityBlocks - 8),
				Count: 8,
				Done:  func(sim.Time) { completed++ },
			})
		}
		eng.Run()
		if completed != 200 {
			t.Errorf("scheduler %d: completed %d/200", sched, completed)
		}
	}
}

func TestHDDLOOKBeatsFCFSOnScatteredQueue(t *testing.T) {
	finish := func(sched Scheduler) sim.Time {
		cfg := smallHDDConfig("hdd0")
		cfg.Sched = sched
		cfg.CacheSegments = 0
		eng := sim.NewEngine()
		d := NewHDD(eng, cfg)
		rng := rand.New(rand.NewSource(9))
		var last sim.Time
		for i := 0; i < 100; i++ {
			d.Submit(&Request{
				Op:    OpRead,
				Block: rng.Int63n(cfg.CapacityBlocks - 8),
				Count: 8,
				Done:  func(at sim.Time) { last = at },
			})
		}
		eng.Run()
		return last
	}
	fcfs, look := finish(FCFS), finish(LOOK)
	if look >= fcfs {
		t.Errorf("LOOK (%v) not faster than FCFS (%v) on a scattered queue", look, fcfs)
	}
}

func TestHDDQueueStats(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallHDDConfig("hdd0")
	d := NewHDD(eng, cfg)
	for i := 0; i < 10; i++ {
		d.Submit(&Request{Op: OpRead, Block: int64(i) * 100000, Count: 8})
	}
	eng.Run()
	s := d.Stats()
	if s.QueueSamples != 10 {
		t.Errorf("QueueSamples = %d, want 10", s.QueueSamples)
	}
	if s.QueueMax < 1 {
		t.Errorf("QueueMax = %d, want >= 1 (requests queued behind service)", s.QueueMax)
	}
}

func TestSSDLatencyModel(t *testing.T) {
	eng := sim.NewEngine()
	cfg := MSRSSDConfig("ssd0")
	d := NewSSD(eng, cfg)
	// Single-block read: one page read + overhead.
	if rt := runOne(t, eng, d, OpRead, 0, 1); rt != cfg.ReadLatency+cfg.ControllerOver {
		t.Errorf("1-block read = %v, want %v", rt, cfg.ReadLatency+cfg.ControllerOver)
	}
	// Single-block write.
	if rt := runOne(t, eng, d, OpWrite, 1, 1); rt != cfg.WriteLatency+cfg.ControllerOver {
		t.Errorf("1-block write = %v, want %v", rt, cfg.WriteLatency+cfg.ControllerOver)
	}
	// A 4-block aligned read spreads over 4 channels: one page time.
	if rt := runOne(t, eng, d, OpRead, 4, 4); rt != cfg.ReadLatency+cfg.ControllerOver {
		t.Errorf("4-block striped read = %v, want %v (channel parallelism)",
			rt, cfg.ReadLatency+cfg.ControllerOver)
	}
	// 8 blocks on 4 channels: two page times.
	if rt := runOne(t, eng, d, OpRead, 8, 8); rt != 2*cfg.ReadLatency+cfg.ControllerOver {
		t.Errorf("8-block read = %v, want %v", rt, 2*cfg.ReadLatency+cfg.ControllerOver)
	}
}

func TestSSDReadsFasterThanHDD(t *testing.T) {
	engS := sim.NewEngine()
	ssd := NewSSD(engS, MSRSSDConfig("ssd0"))
	engH := sim.NewEngine()
	hcfg := smallHDDConfig("hdd0")
	hcfg.CacheSegments = 0
	hdd := NewHDD(engH, hcfg)

	rng := rand.New(rand.NewSource(13))
	var st, ht sim.Time
	for i := 0; i < 100; i++ {
		b := rng.Int63n(1 << 20)
		st += runOne(t, engS, ssd, OpRead, b, 8)
		ht += runOne(t, engH, hdd, OpRead, b, 8)
	}
	if st*10 >= ht {
		t.Errorf("SSD random reads (%v) not ≫ faster than HDD (%v)", st, ht)
	}
}

func TestSSDChannelContention(t *testing.T) {
	eng := sim.NewEngine()
	cfg := MSRSSDConfig("ssd0")
	d := NewSSD(eng, cfg)
	// Two simultaneous requests on the same channel serialize.
	var t1, t2 sim.Time
	d.Submit(&Request{Op: OpRead, Block: 0, Count: 1, Done: func(at sim.Time) { t1 = at }})
	d.Submit(&Request{Op: OpRead, Block: 4, Count: 1, Done: func(at sim.Time) { t2 = at }})
	eng.Run()
	if t2 != t1+cfg.ReadLatency {
		t.Errorf("same-channel requests: t1=%v t2=%v, want serialization by %v",
			t1, t2, cfg.ReadLatency)
	}
}

// Property: HDD response time is always at least the controller
// overhead and the device never loses a request.
func TestPropertyHDDAlwaysCompletes(t *testing.T) {
	cfg := smallHDDConfig("hdd0")
	f := func(seed int64, n uint8) bool {
		eng := sim.NewEngine()
		d := NewHDD(eng, cfg)
		rng := rand.New(rand.NewSource(seed))
		want := int(n%64) + 1
		got := 0
		for i := 0; i < want; i++ {
			op := OpRead
			if rng.Intn(2) == 1 {
				op = OpWrite
			}
			count := int64(rng.Intn(32) + 1)
			block := rng.Int63n(cfg.CapacityBlocks - count)
			at := sim.Time(rng.Int63n(int64(sim.Second)))
			eng.Schedule(at, func() {
				d.Submit(&Request{Op: op, Block: block, Count: count,
					Done: func(sim.Time) { got++ }})
			})
		}
		eng.Run()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: device stats block counters equal the sum of submitted
// request sizes.
func TestPropertyStatsConservation(t *testing.T) {
	cfg := smallHDDConfig("hdd0")
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		d := NewHDD(eng, cfg)
		rng := rand.New(rand.NewSource(seed))
		var wantR, wantW int64
		for i := 0; i < 50; i++ {
			count := int64(rng.Intn(16) + 1)
			block := rng.Int63n(cfg.CapacityBlocks - count)
			if rng.Intn(2) == 0 {
				wantR += count
				d.Submit(&Request{Op: OpRead, Block: block, Count: count})
			} else {
				wantW += count
				d.Submit(&Request{Op: OpWrite, Block: block, Count: count})
			}
		}
		eng.Run()
		s := d.Stats()
		return s.BlocksRead == wantR && s.BlocksWrite == wantW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHDDRandomReads(b *testing.B) {
	cfg := smallHDDConfig("hdd0")
	eng := sim.NewEngine()
	d := NewHDD(eng, cfg)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&Request{Op: OpRead, Block: rng.Int63n(cfg.CapacityBlocks - 8), Count: 8})
		eng.Run()
	}
}

func BenchmarkSSDRandomReads(b *testing.B) {
	cfg := MSRSSDConfig("ssd0")
	eng := sim.NewEngine()
	d := NewSSD(eng, cfg)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&Request{Op: OpRead, Block: rng.Int63n(cfg.CapacityBlocks - 8), Count: 8})
		eng.Run()
	}
}
