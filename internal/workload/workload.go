// Package workload generates synthetic block traces calibrated to the
// seven real-world workloads of the CRAID paper's Table 1 (cello99,
// deasna, home02, webresearch, webusers, wdev, proj). The original
// traces are not redistributable; these generators reproduce the
// properties CRAID's behaviour actually depends on:
//
//   - total and unique read/write volumes (Table 1),
//   - the skewed block access-frequency distribution, parameterized by
//     the share of accesses landing on the top 20% of blocks (Table 1,
//     Fig. 1 top),
//   - long-term temporal locality: day-to-day working-set overlap
//     (Fig. 1 bottom), realized by a window sliding over the dataset,
//   - request-size and Poisson arrival structure.
//
// Mechanism. The dataset is U file-sized extents (256 KiB). A fixed
// modular bijection maps popularity ranks to dataset positions, so hot
// extents scatter uniformly over the address space (as they do on a
// real volume — the scattering CRAID's cache partition later undoes).
// Each day activates a contiguous position window that slides by
// (1-overlap)·W per day; accesses sample a global continuous-Zipf rank
// and reject positions outside the current window, except for a pinned
// hot core that stays active every day (the paper's persistent heavy
// hitters). Because the bijection spreads ranks evenly, the windowed
// distribution keeps the calibrated skew while the slide renews the
// working set at the target overlap rate. On top of the long-term
// structure, two short-term mechanisms mirror real traces: most
// accesses re-reference recently touched blocks (RecentProb, calibrated
// per trace to the paper's Table 2 hit ratios), and — in bursty mode —
// requests arrive in coherent bursts that are either sequential scans
// or random volleys.
package workload

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"craid/internal/disk"
	"craid/internal/sim"
	"craid/internal/trace"
)

// ExtentBlocks is the popularity granule: popularity is assigned to
// 64-block (256 KiB) extents — file-sized objects — so multi-request
// sequential streams mostly stay inside one coherent hot region and
// re-accesses replay in a consistent order.
const ExtentBlocks = 64

// pageBlocks is the alignment of request starts within an extent:
// accesses land on 32 KiB page boundaries, so repeated accesses to an
// object overlap consistently rather than at arbitrary offsets.
const pageBlocks = 8

// Params configures a generator. Volumes are decimal gigabytes, as in
// the paper's Table 1.
type Params struct {
	Name     string
	Seed     int64
	Duration sim.Time

	ReadGB        float64 // total read volume
	WriteGB       float64 // total write volume
	UniqueReadGB  float64 // distinct blocks read over the whole trace
	UniqueWriteGB float64 // distinct blocks written

	Top20Share   float64 // target share of accesses on top 20% blocks
	DailyOverlap float64 // target day-to-day working-set overlap

	// RecentProb is the probability that an access re-references a
	// recently accessed extent rather than sampling popularity afresh.
	// Storage traces are overwhelmingly re-referencing over short
	// horizons (the paper's tiny 0.1%-of-working-set cache partition
	// reaches 65-94% hit ratios); each preset carries the value that
	// reproduces its Table 2 hit ratio.
	RecentProb float64

	MeanReadBlocks  float64 // mean read request size in blocks
	MeanWriteBlocks float64 // mean write request size in blocks

	// Burstiness (all zero = smooth Poisson arrivals). When BurstMean
	// > 1, requests arrive in bursts of ~BurstMean requests spaced
	// BurstGap apart, with bursts themselves Poisson; SeqProb is the
	// probability that a request within a burst continues sequentially
	// from the previous one (scan-like streams). Total volume is
	// preserved. Use WithBursts for the experiments that study queueing
	// and sequentiality dynamics.
	BurstMean float64
	BurstGap  sim.Time
	SeqProb   float64
}

// WithBursts returns a copy configured for bursty, partially
// sequential arrivals.
func (p Params) WithBursts(mean float64, gap sim.Time, seqProb float64) Params {
	p.BurstMean = mean
	p.BurstGap = gap
	p.SeqProb = seqProb
	return p
}

// Scaled returns a copy with all volumes multiplied by f, preserving
// skew, overlap and duration. Use it to shrink paper-scale workloads
// to test scale.
func (p Params) Scaled(f float64) Params {
	p.ReadGB *= f
	p.WriteGB *= f
	p.UniqueReadGB *= f
	p.UniqueWriteGB *= f
	return p
}

// WithDuration returns a copy lasting d, keeping volumes (the request
// rate changes accordingly).
func (p Params) WithDuration(d sim.Time) Params {
	p.Duration = d
	return p
}

const week = 168 * sim.Hour

// Presets returns the calibrated parameters for all seven paper
// workloads, in the paper's order.
func Presets() []Params {
	return []Params{
		{Name: "cello99", Seed: 99, Duration: week,
			ReadGB: 73.73, WriteGB: 129.91, UniqueReadGB: 10.52, UniqueWriteGB: 10.92,
			Top20Share: 0.6577, DailyOverlap: 0.65, RecentProb: 0.65,
			MeanReadBlocks: 8, MeanWriteBlocks: 4},
		{Name: "deasna", Seed: 2002, Duration: week,
			ReadGB: 672.4, WriteGB: 231.57, UniqueReadGB: 23.32, UniqueWriteGB: 45.45,
			Top20Share: 0.8688, DailyOverlap: 0.30, RecentProb: 0.90,
			MeanReadBlocks: 8, MeanWriteBlocks: 8},
		{Name: "home02", Seed: 2001, Duration: week,
			ReadGB: 269.29, WriteGB: 66.35, UniqueReadGB: 9.07, UniqueWriteGB: 4.49,
			Top20Share: 0.6136, DailyOverlap: 0.70, RecentProb: 0.94,
			MeanReadBlocks: 8, MeanWriteBlocks: 4},
		{Name: "webresearch", Seed: 2009, Duration: week,
			ReadGB: 0, WriteGB: 3.37, UniqueReadGB: 0, UniqueWriteGB: 0.51,
			Top20Share: 0.5133, DailyOverlap: 0.60, RecentProb: 0.82,
			MeanReadBlocks: 8, MeanWriteBlocks: 4},
		{Name: "webusers", Seed: 2010, Duration: week,
			ReadGB: 1.16, WriteGB: 6.85, UniqueReadGB: 0.45, UniqueWriteGB: 0.50,
			Top20Share: 0.5617, DailyOverlap: 0.60, RecentProb: 0.81,
			MeanReadBlocks: 8, MeanWriteBlocks: 4},
		{Name: "wdev", Seed: 2007, Duration: week,
			ReadGB: 2.76, WriteGB: 8.77, UniqueReadGB: 0.2, UniqueWriteGB: 0.42,
			Top20Share: 0.7244, DailyOverlap: 0.75, RecentProb: 0.91,
			MeanReadBlocks: 8, MeanWriteBlocks: 4},
		{Name: "proj", Seed: 2008, Duration: week,
			ReadGB: 2152.74, WriteGB: 367.05, UniqueReadGB: 1238.86, UniqueWriteGB: 168.88,
			Top20Share: 0.5764, DailyOverlap: 0.55, RecentProb: 0.76,
			MeanReadBlocks: 16, MeanWriteBlocks: 8},
	}
}

// Preset returns the named paper workload.
func Preset(name string) (Params, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown preset %q", name)
}

// PresetNames lists the preset workload names in paper order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Generator produces the trace as a streaming trace.Reader;
// deterministic for a given Params (including Seed).
type Generator struct {
	p   Params
	rng *rand.Rand

	extents  int64 // U: dataset size in extents
	window   int64 // W: big per-day window (extents)
	winRead  int64 // per-op nested window sizes
	winWrite int64
	shift    int64 // daily slide in extents

	rankToPos int64 // multiplier of the rank→position bijection
	scatter   int64 // multiplier of the position→LBA scatter bijection
	pinned    int64 // hottest ranks always active (persistent heavy hitters)

	sampler *zipfSampler
	pRead   float64
	meanGap float64 // mean inter-arrival in ns (of bursts, when bursty)

	now       sim.Time
	done      bool
	burstLeft int64
	burstSeq  bool  // current burst is a sequential scan
	lastEnd   int64 // previous request's end, -1 when invalid

	// Recency ring of recently accessed extents (LBA extent indices).
	recent     [512]int64
	recentHead int
	recentLen  int
}

// blocksOf converts decimal GB to 4 KiB blocks.
func blocksOf(gbs float64) int64 {
	return int64(gbs * 1e9 / disk.BlockSize)
}

// New builds a generator for p.
func New(p Params) *Generator {
	if p.Duration <= 0 {
		p.Duration = week
	}
	if p.MeanReadBlocks <= 0 {
		p.MeanReadBlocks = 8
	}
	if p.MeanWriteBlocks <= 0 {
		p.MeanWriteBlocks = 4
	}
	if p.ReadGB+p.WriteGB <= 0 {
		panic("workload: no volume configured")
	}
	g := &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}

	uniqR := blocksOf(p.UniqueReadGB) / ExtentBlocks
	uniqW := blocksOf(p.UniqueWriteGB) / ExtentBlocks
	uniqBig := uniqR
	if uniqW > uniqBig {
		uniqBig = uniqW
	}
	if uniqBig < 16 {
		uniqBig = 16
	}

	days := float64(p.Duration) / float64(24*sim.Hour)
	if days < 1 {
		days = 1
	}
	ov := p.DailyOverlap
	if ov < 0 {
		ov = 0
	}
	if ov > 0.99 {
		ov = 0.99
	}
	// Weekly unique = W + (days-1)·(1-ov)·W  ⇒  solve for W.
	g.window = int64(float64(uniqBig) / (1 + (days-1)*(1-ov)))
	if g.window < 8 {
		g.window = 8
	}
	g.shift = int64(float64(g.window) * (1 - ov))
	g.extents = g.window + int64(days-1)*g.shift + 1
	if g.extents < g.window {
		g.extents = g.window
	}

	g.winRead = nestedWindow(uniqR, g.window, g.shift, days, uniqBig)
	g.winWrite = nestedWindow(uniqW, g.window, g.shift, days, uniqBig)

	g.rankToPos = coprimeNear(g.extents, 0.6180339887)
	g.scatter = coprimeNear(g.extents, 0.7548776662)

	// The paper observes that "really popular" data stays hot across
	// days even when the broad working set churns (deasna's top-20%
	// overlap far exceeds its all-blocks overlap). Model this as a
	// pinned hot core: the hottest 5% of the window is active every
	// day, regardless of the window position.
	g.pinned = g.window / 20
	if g.pinned < 1 {
		g.pinned = 1
	}

	// Acceptance correction: non-core ranks are only usable while their
	// position is inside the sliding window (probability ≈ W/U), while
	// the pinned core is always accepted. Calibration accounts for the
	// resulting relative boost of the head.
	accept := float64(g.window) / float64(g.extents)
	g.sampler = newZipfSampler(g.extents, calibrateZipf(g.extents, p.Top20Share, g.pinned, accept))

	readBlocks := blocksOf(p.ReadGB)
	writeBlocks := blocksOf(p.WriteGB)
	nRead := float64(readBlocks) / p.MeanReadBlocks
	nWrite := float64(writeBlocks) / p.MeanWriteBlocks
	total := nRead + nWrite
	g.pRead = nRead / total
	g.meanGap = float64(p.Duration) / total
	if p.BurstMean > 1 {
		// Bursts arrive Poisson; each carries ~BurstMean requests, so
		// the burst rate shrinks accordingly and volume is preserved.
		g.meanGap *= p.BurstMean
	}
	g.lastEnd = -1
	return g
}

// nestedWindow sizes a per-op window so the op's weekly unique volume
// comes out right given the global daily shift.
func nestedWindow(uniq, window, shift int64, days float64, uniqBig int64) int64 {
	if uniq <= 0 {
		return 0
	}
	if uniq >= uniqBig {
		return window
	}
	w := uniq - int64((days-1))*shift
	if sevenths := uniq / int64(days); w < sevenths {
		w = sevenths // windows disjoint day to day: unique = days·W
	}
	if w > window {
		w = window
	}
	if w < 1 {
		w = 1
	}
	return w
}

// coprimeNear returns a multiplier coprime with n near frac·n, giving a
// well-spread modular bijection x → x·m mod n.
func coprimeNear(n int64, frac float64) int64 {
	m := int64(frac * float64(n))
	if m < 1 {
		m = 1
	}
	for gcd(m, n) != 1 {
		m++
	}
	return m
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// DatasetBlocks returns the size of the generated dataset's address
// space in blocks; simulators size their volumes to hold it.
func (g *Generator) DatasetBlocks() int64 { return g.extents * ExtentBlocks }

// Params returns the generator's configuration.
func (g *Generator) Params() Params { return g.p }

// Next implements trace.Reader.
func (g *Generator) Next() (trace.Record, error) {
	if g.done {
		return trace.Record{}, io.EOF
	}
	if g.p.BurstMean > 1 && g.burstLeft > 0 {
		g.burstLeft--
		g.now += sim.Time(g.rng.ExpFloat64() * float64(g.p.BurstGap))
	} else {
		g.now += sim.Time(g.rng.ExpFloat64() * g.meanGap)
		if g.p.BurstMean > 1 {
			// Geometric burst length with the configured mean. A burst
			// is coherent: either one sequential scan or a volley of
			// independent accesses — mixing the two inside one burst
			// would interleave unrelated insertions into every stream.
			g.burstLeft = int64(g.rng.ExpFloat64()*(g.p.BurstMean-1) + 0.5)
			g.burstSeq = g.rng.Float64() < g.p.SeqProb
			g.lastEnd = -1 // streams do not continue across bursts
		}
	}
	if g.now >= g.p.Duration {
		g.done = true
		return trace.Record{}, io.EOF
	}

	op := disk.OpWrite
	winOp := g.winWrite
	mean := g.p.MeanWriteBlocks
	if g.rng.Float64() < g.pRead {
		op = disk.OpRead
		winOp = g.winRead
		mean = g.p.MeanReadBlocks
	}
	if winOp <= 0 { // degenerate preset (e.g. webresearch reads)
		winOp = g.window
	}

	// Sequential continuation within a scan burst: the stream walks the
	// address space from the previous request's end.
	if g.lastEnd >= 0 && g.burstSeq {
		count := g.requestSize(mean)
		start := g.lastEnd
		if start+count > g.DatasetBlocks() {
			start = 0
		}
		g.lastEnd = start + count
		return trace.Record{Time: g.now, Op: op, Block: start, Count: count}, nil
	}

	// Short-horizon re-reference: most storage accesses revisit the
	// very blocks touched moments ago (geometric bias to the most
	// recent request; the same pages, not merely the same region).
	if g.recentLen > 0 && g.rng.Float64() < g.p.RecentProb {
		back := int(g.rng.ExpFloat64() * 8)
		if back >= g.recentLen {
			back = g.recentLen - 1
		}
		idx := (g.recentHead - 1 - back + 2*len(g.recent)) % len(g.recent)
		start := g.recent[idx]
		g.pushRecent(start)
		count := g.requestSize(mean)
		if start+count > g.DatasetBlocks() {
			start = g.DatasetBlocks() - count
		}
		g.lastEnd = start + count
		return trace.Record{Time: g.now, Op: op, Block: start, Count: count}, nil
	}

	day := int64(g.now / (24 * sim.Hour))
	offset := (day * g.shift) % g.extents

	// Sample a global popularity rank; accept if its position falls in
	// the op's active window. The bijection spreads ranks uniformly, so
	// acceptance keeps the Zipf shape.
	var pos int64
	found := false
	for try := 0; try < 96; try++ {
		rank := g.sampler.sample(g.rng)
		x := (rank * g.rankToPos) % g.extents
		if rank < g.pinned {
			pos, found = x, true // hot core: always active
			break
		}
		rel := x - offset
		if rel < 0 {
			rel += g.extents
		}
		if rel < winOp {
			pos, found = x, true
			break
		}
	}
	if !found {
		// Extremely unlikely fallback: uniform in-window position.
		pos = (offset + g.rng.Int63n(winOp)) % g.extents
	}

	lbaExtent := (pos * g.scatter) % g.extents
	rec := g.makeRecord(op, lbaExtent, mean)
	g.pushRecent(rec.Block)
	return rec, nil
}

// pushRecent records an accessed request start in the recency ring.
func (g *Generator) pushRecent(start int64) {
	g.recent[g.recentHead] = start
	g.recentHead = (g.recentHead + 1) % len(g.recent)
	if g.recentLen < len(g.recent) {
		g.recentLen++
	}
}

// makeRecord builds a request into the given extent. The start is
// page-aligned within the extent: repeated accesses to an object
// overlap and replay in a consistent order (files are read page-wise
// from aligned offsets) — the regularity CRAID's sequential re-layout
// exploits.
func (g *Generator) makeRecord(op disk.Op, lbaExtent int64, mean float64) trace.Record {
	count := g.requestSize(mean)
	start := lbaExtent*ExtentBlocks + pageBlocks*g.rng.Int63n(ExtentBlocks/pageBlocks)
	if start+count > g.DatasetBlocks() {
		start = g.DatasetBlocks() - count
	}
	g.lastEnd = start + count
	return trace.Record{Time: g.now, Op: op, Block: start, Count: count}
}

// requestSize draws a request length with the given mean, capped at 64
// blocks (256 KiB), minimum 1.
func (g *Generator) requestSize(mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	n := 1 + int64(g.rng.ExpFloat64()*(mean-1)+0.5)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// --- continuous Zipf over ranks 1..n ---

// zipfSampler draws ranks with P(rank≈x) ∝ x^(-s) using the continuous
// inverse CDF, supporting any s ≥ 0 (math/rand's Zipf requires s > 1,
// but storage skews typically calibrate to s ≈ 0.5–1.2).
type zipfSampler struct {
	n     int64
	s     float64
	total float64
}

func newZipfSampler(n int64, s float64) *zipfSampler {
	return &zipfSampler{n: n, s: s, total: powerIntegral(1, float64(n+1), s)}
}

// powerIntegral computes ∫a..b x^-s dx.
func powerIntegral(a, b, s float64) float64 {
	if math.Abs(1-s) < 1e-9 {
		return math.Log(b / a)
	}
	return (math.Pow(b, 1-s) - math.Pow(a, 1-s)) / (1 - s)
}

// invPowerIntegral solves ∫1..x t^-s dt = v for x.
func invPowerIntegral(v, s float64) float64 {
	if math.Abs(1-s) < 1e-9 {
		return math.Exp(v)
	}
	return math.Pow(1+v*(1-s), 1/(1-s))
}

// sample returns a rank in [0, n).
func (z *zipfSampler) sample(rng *rand.Rand) int64 {
	v := rng.Float64() * z.total
	x := int64(invPowerIntegral(v, z.s)) - 1
	if x < 0 {
		x = 0
	}
	if x >= z.n {
		x = z.n - 1
	}
	return x
}

// calibrateZipf finds the exponent s such that the top 20% of n ranks
// receive the target share of accesses, by bisection on the monotone
// continuous share function. pinned ranks are always accepted while
// the rest are accepted with probability q (the sliding-window
// residency), which boosts the head's effective weight by 1/q.
func calibrateZipf(n int64, target float64, pinned int64, q float64) float64 {
	if q <= 0 || q > 1 {
		q = 1
	}
	if pinned < 0 {
		pinned = 0
	}
	if pinned > n {
		pinned = n
	}
	if target >= 0.999 {
		target = 0.999
	}
	nf, kf := float64(n), float64(pinned)
	share := func(s float64) float64 {
		core := powerIntegral(1, kf+1, s)
		top := core + q*(powerIntegral(1, 0.2*nf+1, s)-core)
		all := core + q*(powerIntegral(1, nf+1, s)-core)
		return top / all
	}
	if share(0) >= target {
		return 0
	}
	lo, hi := 0.0, 4.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if share(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
