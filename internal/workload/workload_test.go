package workload

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"craid/internal/analysis"
	"craid/internal/disk"
	"craid/internal/sim"
	"craid/internal/trace"
)

func TestPresetsComplete(t *testing.T) {
	names := PresetNames()
	want := []string{"cello99", "deasna", "home02", "webresearch", "webusers", "wdev", "proj"}
	if len(names) != len(want) {
		t.Fatalf("got %d presets, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("preset[%d] = %q, want %q", i, names[i], n)
		}
		if _, err := Preset(n); err != nil {
			t.Errorf("Preset(%q): %v", n, err)
		}
	}
	if _, err := Preset("nosuch"); err == nil {
		t.Error("unknown preset did not error")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := Preset("wdev")
	p = p.Scaled(0.05).WithDuration(2 * sim.Hour)
	a, err := trace.ReadAll(New(p))
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.ReadAll(New(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorRecordsWellFormed(t *testing.T) {
	p, _ := Preset("webusers")
	p = p.WithDuration(6 * sim.Hour)
	g := New(p)
	limit := g.DatasetBlocks()
	var prev sim.Time
	n := 0
	for {
		r, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if r.Time < prev {
			t.Fatalf("time went backwards: %v after %v", r.Time, prev)
		}
		prev = r.Time
		if r.Time >= p.Duration {
			t.Fatalf("record at %v beyond duration %v", r.Time, p.Duration)
		}
		if r.Block < 0 || r.Block+r.Count > limit {
			t.Fatalf("record escapes dataset: %+v (limit %d)", r, limit)
		}
		if r.Count < 1 || r.Count > 64 {
			t.Fatalf("record size %d outside [1,64]", r.Count)
		}
	}
	if n < 1000 {
		t.Fatalf("generated only %d records", n)
	}
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// analyze runs the analysis pass over a scaled preset.
func analyze(t *testing.T, name string, scale float64) (*analysis.Analyzer, Params) {
	t.Helper()
	p, err := Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	p = p.Scaled(scale)
	a := analysis.NewAnalyzer()
	if err := a.Run(New(p)); err != nil {
		t.Fatal(err)
	}
	return a, p
}

func TestVolumeCalibration(t *testing.T) {
	// Generated read/write volumes must match Table 1 targets (scaled).
	for _, name := range []string{"cello99", "wdev", "webusers"} {
		a, p := analyze(t, name, 0.02)
		s := a.Summary()
		if p.ReadGB > 0 {
			if rel := s.ReadGB / p.ReadGB; rel < 0.85 || rel > 1.15 {
				t.Errorf("%s: read volume %.3f GB, want ~%.3f", name, s.ReadGB, p.ReadGB)
			}
		}
		if rel := s.WriteGB / p.WriteGB; rel < 0.85 || rel > 1.15 {
			t.Errorf("%s: write volume %.3f GB, want ~%.3f", name, s.WriteGB, p.WriteGB)
		}
		// R/W ratio follows from volumes.
		if p.ReadGB > 0 {
			want := p.ReadGB / p.WriteGB
			if rel := s.RWRatio / want; rel < 0.8 || rel > 1.25 {
				t.Errorf("%s: R/W ratio %.2f, want ~%.2f", name, s.RWRatio, want)
			}
		}
	}
}

func TestUniqueVolumeCalibration(t *testing.T) {
	for _, name := range []string{"cello99", "wdev"} {
		a, p := analyze(t, name, 0.02)
		s := a.Summary()
		// Unique volumes land within a factor ~2: sampling never touches
		// every window extent, so exact equality is not expected.
		checkFactor := func(got, want float64, what string) {
			if want <= 0 {
				return
			}
			if got < want*0.4 || got > want*1.6 {
				t.Errorf("%s: unique %s %.4f GB, want within [0.4,1.6]× of %.4f",
					name, what, got, want)
			}
		}
		checkFactor(s.UniqueReadGB, p.UniqueReadGB, "read")
		checkFactor(s.UniqueWriteGB, p.UniqueWriteGB, "write")
	}
}

func TestSkewCalibration(t *testing.T) {
	// Top-20% share must land near each preset's Table 1 target, and
	// the cross-trace ordering must hold (deasna most skewed,
	// webresearch least).
	shares := make(map[string]float64)
	for _, name := range []string{"deasna", "wdev", "cello99", "webresearch"} {
		a, p := analyze(t, name, 0.01)
		got := a.Summary().Top20Share
		shares[name] = got
		// Short-horizon re-reference (RecentProb) adds concentration on
		// top of the calibrated Zipf, inflating the measured share for
		// the low-skew, high-reuse traces; the band accounts for it.
		if got-p.Top20Share > 0.20 || p.Top20Share-got > 0.10 {
			t.Errorf("%s: top-20%% share %.3f, want %.3f (+0.20/-0.10)", name, got, p.Top20Share)
		}
	}
	if !(shares["deasna"] > shares["wdev"] && shares["wdev"] > shares["cello99"] &&
		shares["cello99"] > shares["webresearch"]) {
		t.Errorf("skew ordering violated: %v", shares)
	}
}

func TestWorkingSetOverlap(t *testing.T) {
	// Day-to-day overlap must be substantial for high-locality traces
	// and visibly lower for deasna, as in Fig. 1 (bottom).
	overlap := func(name string) float64 {
		a, _ := analyze(t, name, 0.01)
		if a.Days() < 7 {
			t.Fatalf("%s: trace covers %d days, want 7", name, a.Days())
		}
		ovs := a.DailyOverlap(0)
		var sum float64
		for _, v := range ovs {
			sum += v
		}
		return sum / float64(len(ovs))
	}
	wdev := overlap("wdev")
	deasna := overlap("deasna")
	if wdev < 0.45 {
		t.Errorf("wdev mean overlap %.2f, want >= 0.45 (paper: ~55-80%%)", wdev)
	}
	if deasna >= wdev {
		t.Errorf("deasna overlap %.2f not below wdev %.2f (paper: deasna is the diverse one)",
			deasna, wdev)
	}
}

func TestTop20OverlapHigherForDeasna(t *testing.T) {
	// Paper: deasna's all-blocks overlap is low (~20-35%) but its
	// top-20% overlap is high (~55-80%) — the heavy hitters persist.
	a, _ := analyze(t, "deasna", 0.01)
	all := meanOf(a.DailyOverlap(0))
	top := meanOf(a.DailyOverlap(0.20))
	if top <= all {
		t.Errorf("deasna top-20%% overlap %.2f not above all-blocks overlap %.2f", top, all)
	}
}

func TestFrequencySkewShape(t *testing.T) {
	// Fig 1 top: the overwhelming majority of blocks are accessed few
	// times; a small fraction is accessed very heavily.
	a, _ := analyze(t, "cello99", 0.02)
	cdf := a.FreqCDF(disk.OpRead, []int64{1, 50, 300})
	if cdf[1] < 0.70 {
		t.Errorf("fraction of blocks with <=50 reads = %.3f, want >= 0.70 (paper: 76-98%%)", cdf[1])
	}
	if cdf[2] > 0.9999 {
		t.Error("no heavily-accessed tail at all; skew too weak")
	}
	// CDF must be monotone.
	if !(cdf[0] <= cdf[1] && cdf[1] <= cdf[2]) {
		t.Errorf("frequency CDF not monotone: %v", cdf)
	}
}

func TestWebresearchIsWriteOnly(t *testing.T) {
	a, _ := analyze(t, "webresearch", 1.0)
	s := a.Summary()
	if s.ReadGB != 0 {
		t.Errorf("webresearch generated %.3f GB of reads, want 0", s.ReadGB)
	}
	if s.WriteGB <= 0 {
		t.Error("webresearch generated no writes")
	}
}

func TestScaledPreservesSkew(t *testing.T) {
	p, _ := Preset("wdev")
	s1 := p.Scaled(0.5)
	if s1.Top20Share != p.Top20Share || s1.DailyOverlap != p.DailyOverlap {
		t.Error("Scaled changed skew/overlap parameters")
	}
	if math.Abs(s1.ReadGB-p.ReadGB/2) > 1e-9 {
		t.Error("Scaled did not halve volume")
	}
}

func TestZipfSamplerRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range []float64{0, 0.5, 1.0, 1.5} {
		z := newZipfSampler(1000, s)
		for i := 0; i < 10000; i++ {
			r := z.sample(rng)
			if r < 0 || r >= 1000 {
				t.Fatalf("s=%v: rank %d out of [0,1000)", s, r)
			}
		}
	}
}

func TestZipfSamplerSkewIncreasing(t *testing.T) {
	top20 := func(s float64) float64 {
		rng := rand.New(rand.NewSource(7))
		z := newZipfSampler(10000, s)
		in := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if z.sample(rng) < 2000 {
				in++
			}
		}
		return float64(in) / n
	}
	s0, s1, s2 := top20(0), top20(0.8), top20(1.3)
	if !(s0 < s1 && s1 < s2) {
		t.Errorf("top-20 share not increasing in s: %v %v %v", s0, s1, s2)
	}
	if math.Abs(s0-0.2) > 0.01 {
		t.Errorf("s=0 top-20 share %.3f, want 0.2 (uniform)", s0)
	}
}

func TestCalibrateZipfHitsTarget(t *testing.T) {
	for _, target := range []float64{0.51, 0.66, 0.87} {
		s := calibrateZipf(1_000_000, target, 0, 1)
		rng := rand.New(rand.NewSource(3))
		z := newZipfSampler(1_000_000, s)
		in := 0
		const n = 300000
		for i := 0; i < n; i++ {
			if z.sample(rng) < 200_000 {
				in++
			}
		}
		got := float64(in) / n
		if math.Abs(got-target) > 0.02 {
			t.Errorf("calibrate(%.2f): measured share %.3f (s=%.3f)", target, got, s)
		}
	}
	if s := calibrateZipf(1000, 0.1, 0, 1); s != 0 {
		t.Errorf("target below uniform: s = %v, want 0", s)
	}
}

func TestCoprimeNear(t *testing.T) {
	for _, n := range []int64{100, 9973, 1 << 20} {
		m := coprimeNear(n, 0.618)
		if gcd(m, n) != 1 {
			t.Errorf("coprimeNear(%d) = %d not coprime", n, m)
		}
		// Must be a bijection: x → x·m mod n hits every residue.
		if n <= 1000 {
			seen := make(map[int64]bool)
			for x := int64(0); x < n; x++ {
				seen[(x*m)%n] = true
			}
			if int64(len(seen)) != n {
				t.Errorf("multiplier %d mod %d not a bijection", m, n)
			}
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := Preset("cello99")
	p = p.WithDuration(sim.Time(b.N+1) * sim.Second) // never EOF early
	g := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
