package fault

import (
	"reflect"
	"testing"
)

// FuzzParsePlan pins two properties over arbitrary specs: ParsePlan
// never panics, and every accepted plan is round-trip stable —
// re-parsing p.String() reproduces p exactly and renders back to the
// same canonical string. The seed corpus covers every grammar form,
// including the compound-fabric items (expand, storm, dev blocks).
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"seed=7",
		"fail:2@5s",
		"transient:3@1s-8s,rate=0.01,lat=4",
		"transient:0@0s,rate=1",
		"rebuild:2@10s,rate=64",
		"crash@6s",
		"expand@30s,disks=5",
		"expand@30s,disks=5,retain",
		"storm:crash@10s,n=4,every=5s",
		"dev:3{transient@1s-8s,rate=0.5,lat=2;fail@20s;rebuild@30s,rate=16}",
		"seed=8;fail:2@5s;rebuild:2@10s;fail:3@12s;expand@20s,disks=2,retain;storm:crash@30s,n=2,every=1s",
		"seed=1;; ;fail:0@1ns",
		"fail:1@",
		"dev:3{fail@1s",
		"}{",
		"storm:crash@5s,n=0,every=1s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return // rejected specs only need to reject without panicking
		}
		rendered := p.String()
		p2, err := ParsePlan(rendered)
		if err != nil {
			t.Fatalf("ParsePlan(%q) accepted, but its rendering %q does not re-parse: %v",
				spec, rendered, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip of %q changed the plan:\n  %+v\n  %+v", spec, p, p2)
		}
		if again := p2.String(); again != rendered {
			t.Fatalf("String not stable for %q: %q then %q", spec, rendered, again)
		}
	})
}
