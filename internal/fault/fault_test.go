package fault

import (
	"reflect"
	"strings"
	"testing"

	"craid/internal/disk"
	"craid/internal/sim"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7;fail:2@5s;transient:3@1s-8s,rate=0.01,lat=4;rebuild:2@10s,rate=64;crash@6s",
		"seed=0",
		"seed=1;crash@500ms",
		"seed=9;transient:0@0s,rate=1,lat=1",
		"seed=3;fail:0@1ms;fail:1@2ms;rebuild:0@3ms,rate=128;rebuild:1@4ms,rate=32",
		"seed=2;expand@30s,disks=5",
		"seed=2;expand@30s,disks=5,retain",
		"seed=4;storm:crash@10s,n=4,every=5s",
		"seed=6;dev:3{transient@1s-8s,rate=0.5,lat=2;fail@20s;rebuild@30s,rate=16}",
		"seed=8;fail:2@5s;rebuild:2@10s;fail:3@12s;expand@20s,disks=2,retain;storm:crash@30s,n=2,every=1s",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Errorf("round trip of %q changed the plan:\n  %+v\n  %+v", spec, p, p2)
		}
	}
}

func TestParsePlanSortsEvents(t *testing.T) {
	p, err := ParsePlan("seed=1;rebuild:2@10s;fail:2@5s")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 || p.Events[0].Kind != DiskFail || p.Events[1].Kind != Rebuild {
		t.Fatalf("events not sorted by firing time: %+v", p.Events)
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("transient:1@1s;rebuild:2@2s")
	if err != nil {
		t.Fatal(err)
	}
	tr, rb := p.Events[0], p.Events[1]
	if tr.Rate != DefaultRate || tr.LatencyX != 1 || tr.Until != 0 {
		t.Errorf("transient defaults wrong: %+v", tr)
	}
	if rb.RateMBps != DefaultRateMBps {
		t.Errorf("rebuild default rate wrong: %+v", rb)
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"fail:1",                 // no @time
		"fail@5s",                // missing device
		"crash:2@5s",             // crash takes no device
		"bogus:1@2s",             // unknown kind
		"fail:-1@1s",             // negative device
		"fail:x@1s",              // non-numeric device
		"seed=x",                 // bad seed
		"transient:1@5s-2s",      // window end before start
		"transient:1@1s,rate=2",  // rate outside [0,1]
		"transient:1@1s,lat=0.5", // lat below 1
		"transient:1@1s,rate",    // option without value
		"rebuild:1@1s,rate=-1",   // non-positive rebuild rate
		"fail:1@1s,rate=2",       // option on wrong kind
		"fail:1@1s-2s",           // window on non-transient
		"fail:1@notatime",        // unparseable time
		"transient:1@1s,bogus=3", // unknown option
		"fail:1@",                // empty time
		"expand@5s",              // expand without disks
		"expand@5s,disks=0",      // expand with no devices
		"expand:2@5s,disks=1",    // expand takes no device
		"fail:1@5s,retain",       // retain only applies to expand
		"storm@5s,n=2,every=1s",  // storm without a sub-kind
		"storm:fail@5s,n=2,every=1s", // only crash storms are defined
		"storm:crash@5s,every=1s",    // storm without n
		"storm:crash@5s,n=2",         // storm without every
		"storm:crash@5s,n=0,every=1s", // empty storm
		"dev:3{fail@1s",          // unbalanced brace
		"dev:3{fail@1s}}",        // unbalanced brace
		"dev:x{fail@1s}",         // bad device
		"dev:3{crash@1s}",        // device-less kind in a dev block
		"dev:3{expand@1s,disks=1}", // device-less kind in a dev block
		"dev:3{storm:crash@1s,n=2,every=1s}", // generator in a dev block
		"dev:3{fail:2@1s}",       // inner item with its own device
		"dev:3fail@1s}",          // stray brace
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", spec)
		}
	}
}

// TestParsePlanDevBlockExpands pins the heterogeneous-fleet sugar: a
// dev:N{...} block parses to exactly the events its flat spelling
// parses to.
func TestParsePlanDevBlockExpands(t *testing.T) {
	sugar, err := ParsePlan("seed=5;dev:3{transient@1s-8s,rate=0.5;fail@20s};crash@30s")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ParsePlan("seed=5;transient:3@1s-8s,rate=0.5;fail:3@20s;crash@30s")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sugar, flat) {
		t.Fatalf("dev block expanded to\n  %+v\nflat spelling parses to\n  %+v", sugar, flat)
	}
}

func TestHasExpand(t *testing.T) {
	with, _ := ParsePlan("expand@1s,disks=2")
	without, _ := ParsePlan("fail:1@1s")
	if !with.HasExpand() || without.HasExpand() {
		t.Fatal("HasExpand misreports")
	}
	storm, _ := ParsePlan("storm:crash@1s,n=2,every=1s")
	if !storm.HasCrash() {
		t.Fatal("a crash storm must report HasCrash")
	}
}

// TestValidateDeviceIndices pins the install-time width check,
// including the expansion-aware walk: a device that exists only after
// an expand event is legal to target after that event, not before.
func TestValidateDeviceIndices(t *testing.T) {
	ok := []string{
		"fail:4@1s",
		"transient:0@1s-2s;rebuild:4@3s",
		"expand@1s,disks=2;fail:6@2s",
		"expand@1s,disks=2;fail:6@1s", // same instant, expand sorts first
		"crash@1s;storm:crash@2s,n=2,every=1s",
	}
	for _, spec := range ok {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(5); err != nil {
			t.Errorf("Validate(5) rejected %q: %v", spec, err)
		}
	}
	bad := []string{
		"fail:5@1s",
		"transient:9@1s-2s",
		"rebuild:7@1s",
		"fail:6@1s;expand@2s,disks=2", // device exists only after the later expand
	}
	for _, spec := range bad {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(5); err == nil {
			t.Errorf("Validate(5) accepted %q", spec)
		}
	}
}

func TestHasCrash(t *testing.T) {
	with, _ := ParsePlan("fail:1@1s;crash@2s")
	without, _ := ParsePlan("fail:1@1s")
	if !with.HasCrash() || without.HasCrash() {
		t.Fatal("HasCrash misreports")
	}
	if (Plan{}).HasCrash() {
		t.Fatal("zero plan reports a crash")
	}
}

// TestVerdictDeterministic pins the replay contract: the same
// (seed, device) pair yields the identical verdict sequence on every
// construction, and different devices draw independent sequences.
func TestVerdictDeterministic(t *testing.T) {
	const n = 2000
	draw := func(d *Device) []bool {
		d.SetTransient(0.3, 2)
		out := make([]bool, n)
		for i := range out {
			out[i], _ = d.Verdict(disk.OpRead, int64(i), 1)
		}
		return out
	}
	a := draw(NewDevice(42, 3))
	b := draw(NewDevice(42, 3))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, device) produced different verdict sequences")
	}
	c := draw(NewDevice(42, 4))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different devices produced identical verdict sequences")
	}
}

// TestVerdictCounterWindowIndependent pins that the submission counter
// advances on every call whether or not a window is open: the draws
// inside a window depend only on the call index, never on what earlier
// windows did.
func TestVerdictCounterWindowIndependent(t *testing.T) {
	const warm, n = 500, 500
	record := func(d *Device) []bool {
		d.SetTransient(0.3, 2)
		out := make([]bool, n)
		for i := range out {
			out[i], _ = d.Verdict(disk.OpRead, 0, 1)
		}
		return out
	}
	// Device 1 warms up with no window; device 2 with an extreme one.
	d1 := NewDevice(7, 0)
	for i := 0; i < warm; i++ {
		d1.Verdict(disk.OpRead, 0, 1)
	}
	d2 := NewDevice(7, 0)
	d2.SetTransient(0.999, 8)
	for i := 0; i < warm; i++ {
		d2.Verdict(disk.OpWrite, 99, 7)
	}
	if !reflect.DeepEqual(record(d1), record(d2)) {
		t.Fatal("earlier window state shifted later verdict draws")
	}
}

func TestVerdictRateAndLatency(t *testing.T) {
	d := NewDevice(11, 2)
	// Closed window: never fails, multiplier 1.
	for i := 0; i < 100; i++ {
		if fail, latX := d.Verdict(disk.OpRead, 0, 1); fail || latX != 1 {
			t.Fatalf("closed window drew fail=%v latX=%g", fail, latX)
		}
	}
	d.SetTransient(0.1, 4)
	const n = 100000
	fails := 0
	for i := 0; i < n; i++ {
		fail, latX := d.Verdict(disk.OpRead, 0, 1)
		if latX != 4 {
			t.Fatalf("latX = %g, want 4", latX)
		}
		if fail {
			fails++
		}
	}
	if f := float64(fails) / n; f < 0.08 || f > 0.12 {
		t.Errorf("empirical failure rate %.4f far from configured 0.1", f)
	}
	d.ClearTransient()
	if fail, latX := d.Verdict(disk.OpRead, 0, 1); fail || latX != 1 {
		t.Fatal("ClearTransient did not close the window")
	}
	// The latency clamp: multipliers below 1 are lifted to 1.
	d.SetTransient(0, 0.25)
	if _, latX := d.Verdict(disk.OpRead, 0, 1); latX != 1 {
		t.Fatalf("latX clamp failed: %g", latX)
	}
}

func TestParsePlanTimes(t *testing.T) {
	p, err := ParsePlan("transient:1@1500ms-2.5s")
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Events[0]
	if ev.At != 1500*sim.Millisecond || ev.Until != 2500*sim.Millisecond {
		t.Fatalf("window parsed as [%d, %d)", ev.At, ev.Until)
	}
	if _, err := ParsePlan("fail:1@-5s"); err == nil ||
		!strings.Contains(err.Error(), "time") {
		t.Fatalf("negative time accepted: %v", err)
	}
}
