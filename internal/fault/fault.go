// Package fault provides deterministic failure injection for the
// simulator: a seeded, declarative Plan of failure events (disk
// deaths, transient-error windows, crash-restarts, rebuilds) that the
// core compiles onto the simulation clock, plus the per-device state
// that realizes transient verdicts through disk.Injector.
//
// Determinism is the design center. Verdicts are drawn by hashing
// (plan seed, device, per-device submission counter) with the
// splitmix64 finalizer — no shared RNG stream, no wall clock — and the
// single-threaded engine submits each device's requests in an order
// that is bit-identical at every monitor shards/workers/lookahead
// setting, so the same plan + seed replays the same failures down to
// the event.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"craid/internal/disk"
	"craid/internal/sim"
)

// Kind enumerates the failure event types a Plan can schedule.
type Kind uint8

const (
	// DiskFail marks a device Failed at At: every subsequent I/O on it
	// is rejected until a Rebuild event restores it.
	DiskFail Kind = iota
	// Transient opens an error window [At, Until) on a device: each
	// request independently errs with probability Rate, and all
	// service times stretch by LatencyX. Until == 0 leaves the window
	// open forever.
	Transient
	// CrashRestart tears the controller down at At and recovers it
	// from the dirty-translation log before the replay resumes.
	CrashRestart
	// Rebuild brings a spare online for a failed device at At and
	// reconstructs it stripe row by stripe row, rate-limited to
	// RateMBps; the device rejoins the array when the walk completes.
	Rebuild
	// Expand grows the array by Disks devices at At, mid-replay: the
	// controller performs an online upgrade (Expand, or ExpandRetain
	// when Retain is set) while the workload keeps flowing.
	Expand
	// Storm is a generator: N crash-restart cycles starting at At,
	// Every apart, modelling a controller that keeps dying under load.
	Storm
)

// String names the kind as it appears in plan specs.
func (k Kind) String() string {
	switch k {
	case DiskFail:
		return "fail"
	case Transient:
		return "transient"
	case CrashRestart:
		return "crash"
	case Rebuild:
		return "rebuild"
	case Expand:
		return "expand"
	case Storm:
		return "storm"
	}
	return "unknown"
}

// Event is one scheduled failure.
type Event struct {
	Kind     Kind
	Dev      int      // target device (DiskFail, Transient, Rebuild)
	At       sim.Time // firing instant
	Until    sim.Time // Transient: window end (0 = forever)
	Rate     float64  // Transient: per-request error probability
	LatencyX float64  // Transient: service-time multiplier, >= 1
	RateMBps float64  // Rebuild: reconstruction traffic rate limit
	Disks    int      // Expand: devices added
	Retain   bool     // Expand: migrate live blocks (ExpandRetain)
	N        int      // Storm: crash-restart cycles generated
	Every    sim.Time // Storm: period between cycles
}

// Plan is a seeded, declarative failure schedule. The zero value is a
// healthy run.
type Plan struct {
	Seed   uint64
	Events []Event
}

// HasCrash reports whether the plan contains a CrashRestart event or a
// crash storm (the runtime then needs a recoverable log image).
func (p Plan) HasCrash() bool {
	for _, ev := range p.Events {
		if ev.Kind == CrashRestart || ev.Kind == Storm {
			return true
		}
	}
	return false
}

// HasExpand reports whether the plan schedules an online expansion (the
// runtime then needs a device factory and a CRAID volume).
func (p Plan) HasExpand() bool {
	for _, ev := range p.Events {
		if ev.Kind == Expand {
			return true
		}
	}
	return false
}

// Validate checks every event's device reference against the width of
// the array the plan will install on. The walk tracks expansions: an
// event may legally target a device that exists only because an earlier
// expand item added it. Events are checked in firing order (the order
// the runtime schedules them), so a same-instant expand+fail pair
// resolves the way it executes.
func (p Plan) Validate(devices int) error {
	width := devices
	for _, ev := range p.Events {
		switch ev.Kind {
		case Expand:
			width += ev.Disks
		case DiskFail, Transient, Rebuild:
			if ev.Dev >= width {
				return fmt.Errorf("fault: %s event at %s targets device %d, but the array has only %d device(s) at that instant",
					ev.Kind, fmtTime(ev.At), ev.Dev, width)
			}
		}
	}
	return nil
}

// Transient window defaults.
const (
	DefaultRate     = 0.01
	DefaultRateMBps = 64
)

// ParsePlan parses a plan spec: semicolon-separated items of the forms
//
//	seed=7
//	fail:2@5s
//	transient:3@1s-8s,rate=0.01,lat=4
//	rebuild:2@10s,rate=64
//	crash@6s
//	expand@30s,disks=5            (expand@30s,disks=5,retain migrates)
//	storm:crash@10s,n=4,every=5s
//	dev:3{transient@1s-8s,rate=0.5;fail@20s}
//
// Times and window bounds use time.ParseDuration syntax and measure
// simulated time from the start of the replay. Omitted transient
// options default to rate=0.01, lat=1; an omitted rebuild rate
// defaults to 64 (MB/s). A dev:N{...} block is sugar binding every
// inner item to device N — the heterogeneous-fleet form — and expands
// into ordinary events. Events may appear in any order; the schedule
// is sorted by firing time.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	items, err := splitItems(spec)
	if err != nil {
		return Plan{}, err
	}
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		if strings.HasPrefix(item, "dev:") {
			evs, err := parseDevBlock(item)
			if err != nil {
				return Plan{}, err
			}
			p.Events = append(p.Events, evs...)
			continue
		}
		ev, err := parseEvent(item, -1)
		if err != nil {
			return Plan{}, err
		}
		p.Events = append(p.Events, ev)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}

// splitItems splits a spec on semicolons at brace depth zero, so the
// items inside a dev:N{...} sub-plan stay attached to their block.
func splitItems(spec string) ([]string, error) {
	var items []string
	depth, start := 0, 0
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("fault: unbalanced '}' in %q", spec)
			}
		case ';':
			if depth == 0 {
				items = append(items, spec[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("fault: unbalanced '{' in %q", spec)
	}
	return append(items, spec[start:]), nil
}

// parseDevBlock expands a per-device sub-plan, dev:N{item;item;...},
// into ordinary events with device N bound. Inner items use the same
// grammar minus the :DEV head (fail@5s, transient@1s-8s,rate=0.5,
// rebuild@10s,rate=64); device-less kinds (crash, expand, storm) cannot
// be scoped to a device and are rejected.
func parseDevBlock(item string) ([]Event, error) {
	rest := strings.TrimPrefix(item, "dev:")
	devStr, body, found := strings.Cut(rest, "{")
	if !found {
		return nil, fmt.Errorf("fault: dev block %q has no '{'", item)
	}
	if !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("fault: dev block %q does not end with '}'", item)
	}
	body = body[:len(body)-1]
	if strings.ContainsAny(body, "{}") {
		return nil, fmt.Errorf("fault: nested braces in dev block %q", item)
	}
	dev, err := strconv.Atoi(devStr)
	if err != nil || dev < 0 {
		return nil, fmt.Errorf("fault: bad device %q in %q", devStr, item)
	}
	var evs []Event
	for _, inner := range strings.Split(body, ";") {
		inner = strings.TrimSpace(inner)
		if inner == "" {
			continue
		}
		ev, err := parseEvent(inner, dev)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// parseEvent parses one event item. forceDev >= 0 binds the item to
// that device (dev-block sugar): the head must then omit its own :DEV
// and the kind must be one that takes a device.
func parseEvent(item string, forceDev int) (Event, error) {
	head, rest, found := strings.Cut(item, "@")
	if !found {
		return Event{}, fmt.Errorf("fault: event %q has no @time", item)
	}
	var ev Event
	kind, devStr, hasDev := strings.Cut(head, ":")
	switch kind {
	case "fail":
		ev.Kind = DiskFail
	case "transient":
		ev.Kind = Transient
		ev.Rate, ev.LatencyX = DefaultRate, 1
	case "crash":
		ev.Kind = CrashRestart
	case "rebuild":
		ev.Kind = Rebuild
		ev.RateMBps = DefaultRateMBps
	case "expand":
		ev.Kind = Expand
	case "storm":
		ev.Kind = Storm
	default:
		return Event{}, fmt.Errorf("fault: unknown event kind %q in %q", kind, item)
	}
	switch ev.Kind {
	case CrashRestart, Expand:
		if hasDev {
			return Event{}, fmt.Errorf("fault: %s takes no device in %q", kind, item)
		}
		if forceDev >= 0 {
			return Event{}, fmt.Errorf("fault: %s cannot appear in a dev block in %q", kind, item)
		}
	case Storm:
		if forceDev >= 0 {
			return Event{}, fmt.Errorf("fault: storm cannot appear in a dev block in %q", item)
		}
		// The :sub slot names what the storm repeats; only crash-restart
		// cycles are defined.
		if !hasDev || devStr != "crash" {
			return Event{}, fmt.Errorf("fault: storm repeats crash events (storm:crash@T,n=K,every=D) in %q", item)
		}
	default:
		if forceDev >= 0 {
			if hasDev {
				return Event{}, fmt.Errorf("fault: %s inside a dev block must not name a device in %q", kind, item)
			}
			ev.Dev = forceDev
			break
		}
		if !hasDev {
			return Event{}, fmt.Errorf("fault: %s needs a device (%s:DEV@time) in %q", kind, kind, item)
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil || dev < 0 {
			return Event{}, fmt.Errorf("fault: bad device %q in %q", devStr, item)
		}
		ev.Dev = dev
	}

	parts := strings.Split(rest, ",")
	at, err := parseWindow(parts[0], &ev)
	if err != nil {
		return Event{}, fmt.Errorf("fault: %v in %q", err, item)
	}
	ev.At = at
	for _, opt := range parts[1:] {
		if opt == "retain" && ev.Kind == Expand {
			ev.Retain = true
			continue
		}
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return Event{}, fmt.Errorf("fault: bad option %q in %q", opt, item)
		}
		switch {
		case k == "rate" && ev.Kind == Transient:
			ev.Rate, err = strconv.ParseFloat(v, 64)
		case k == "lat" && ev.Kind == Transient:
			ev.LatencyX, err = strconv.ParseFloat(v, 64)
		case k == "rate" && ev.Kind == Rebuild:
			ev.RateMBps, err = strconv.ParseFloat(v, 64)
		case k == "disks" && ev.Kind == Expand:
			ev.Disks, err = strconv.Atoi(v)
		case k == "n" && ev.Kind == Storm:
			ev.N, err = strconv.Atoi(v)
		case k == "every" && ev.Kind == Storm:
			ev.Every, err = parseTime(v)
		default:
			return Event{}, fmt.Errorf("fault: option %q does not apply to %s in %q", k, ev.Kind, item)
		}
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad value %q in %q", opt, item)
		}
	}
	if ev.Kind == Transient {
		if ev.Rate < 0 || ev.Rate > 1 {
			return Event{}, fmt.Errorf("fault: rate %g outside [0,1] in %q", ev.Rate, item)
		}
		if ev.LatencyX < 1 {
			return Event{}, fmt.Errorf("fault: lat %g below 1 in %q", ev.LatencyX, item)
		}
	}
	if ev.Kind == Rebuild && ev.RateMBps <= 0 {
		return Event{}, fmt.Errorf("fault: rebuild rate must be positive in %q", item)
	}
	if ev.Kind == Expand && ev.Disks < 1 {
		return Event{}, fmt.Errorf("fault: expand needs disks=N (N >= 1) in %q", item)
	}
	if ev.Kind == Storm {
		if ev.N < 1 {
			return Event{}, fmt.Errorf("fault: storm needs n=K (K >= 1) in %q", item)
		}
		if ev.Every <= 0 {
			return Event{}, fmt.Errorf("fault: storm needs every=D (D > 0) in %q", item)
		}
	}
	return ev, nil
}

// parseWindow parses "AT" or "AT-UNTIL" (transient windows only).
func parseWindow(s string, ev *Event) (sim.Time, error) {
	atStr, untilStr, ranged := cutDash(s)
	at, err := parseTime(atStr)
	if err != nil {
		return 0, err
	}
	if ranged {
		if ev.Kind != Transient {
			return 0, fmt.Errorf("time window on non-transient event")
		}
		until, err := parseTime(untilStr)
		if err != nil {
			return 0, err
		}
		if until <= at {
			return 0, fmt.Errorf("window end %v not after start %v", until, at)
		}
		ev.Until = until
	}
	return at, nil
}

// cutDash splits "1s-8s" at the range dash, leaving negative-duration
// syntax alone (durations here are never negative, so any '-' past
// position 0 is a separator).
func cutDash(s string) (string, string, bool) {
	if s == "" {
		return s, "", false
	}
	if i := strings.Index(s[1:], "-"); i >= 0 {
		return s[:i+1], s[i+2:], true
	}
	return s, "", false
}

func parseTime(s string) (sim.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %v", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative time %q", s)
	}
	return sim.Duration(d), nil
}

// String renders the plan back into spec syntax; ParsePlan(p.String())
// reproduces p.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, ev := range p.Events {
		b.WriteByte(';')
		switch ev.Kind {
		case CrashRestart:
			fmt.Fprintf(&b, "crash@%s", fmtTime(ev.At))
		case DiskFail:
			fmt.Fprintf(&b, "fail:%d@%s", ev.Dev, fmtTime(ev.At))
		case Transient:
			fmt.Fprintf(&b, "transient:%d@%s", ev.Dev, fmtTime(ev.At))
			if ev.Until > 0 {
				fmt.Fprintf(&b, "-%s", fmtTime(ev.Until))
			}
			fmt.Fprintf(&b, ",rate=%g,lat=%g", ev.Rate, ev.LatencyX)
		case Rebuild:
			fmt.Fprintf(&b, "rebuild:%d@%s,rate=%g", ev.Dev, fmtTime(ev.At), ev.RateMBps)
		case Expand:
			fmt.Fprintf(&b, "expand@%s,disks=%d", fmtTime(ev.At), ev.Disks)
			if ev.Retain {
				b.WriteString(",retain")
			}
		case Storm:
			fmt.Fprintf(&b, "storm:crash@%s,n=%d,every=%s", fmtTime(ev.At), ev.N, fmtTime(ev.Every))
		}
	}
	return b.String()
}

func fmtTime(t sim.Time) string {
	return time.Duration(t).String()
}

// Mix is the splitmix64 finalizer: the stateless hash behind every
// verdict draw, chosen so a (seed, device, counter) triple always
// yields the same outcome with no RNG state to share or order.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Device is one device's injection state, implementing disk.Injector.
// The submission counter advances on every Verdict call whether or not
// a transient window is open, so opening one window never shifts the
// draws of a later one — and per-device submission order is identical
// at every pipeline setting, which closes the determinism argument.
type Device struct {
	seed uint64
	n    uint64
	rate float64
	latX float64
}

// NewDevice returns the injection state for device dev under planSeed.
func NewDevice(planSeed uint64, dev int) *Device {
	return &Device{seed: Mix(planSeed ^ Mix(uint64(dev)+1)), latX: 1}
}

// SetTransient opens an error window: each request errs with
// probability rate and service times stretch by latencyX (clamped to
// >= 1).
func (d *Device) SetTransient(rate, latencyX float64) {
	if latencyX < 1 {
		latencyX = 1
	}
	d.rate, d.latX = rate, latencyX
}

// ClearTransient closes the window.
func (d *Device) ClearTransient() { d.rate, d.latX = 0, 1 }

// Verdict implements disk.Injector.
func (d *Device) Verdict(op disk.Op, block, count int64) (bool, float64) {
	d.n++
	if d.rate <= 0 {
		return false, d.latX
	}
	// 53 uniform bits → [0,1): the standard float64 uniform draw.
	u := float64(Mix(d.seed+d.n)>>11) / (1 << 53)
	return u < d.rate, d.latX
}
