package fabric

import (
	"context"
	"time"

	"craid/internal/experiments"
)

// API is the scheduling surface a worker drives. The in-process
// Server implements it directly (craidd's local workers); Remote
// implements it over HTTP (worker processes on other hosts). Both see
// identical lease/heartbeat/requeue semantics, so a cell neither knows
// nor cares where it runs.
type API interface {
	// Lease blocks up to maxWait for a cell; nil means poll again.
	Lease(maxWait time.Duration) (*Lease, error)
	// Heartbeat renews the lease; false means it expired and the cell
	// has been (or will be) re-issued.
	Heartbeat(leaseID int64) (bool, error)
	// CompleteLease delivers the finished cell (errMsg "" = success).
	CompleteLease(leaseID int64, hash string, res experiments.RunResult, errMsg string) error
}

// Worker pulls cells from an API and runs them to completion,
// heartbeating while a cell simulates so long cells outlive the lease
// TTL. One Worker runs one cell at a time; run several for
// parallelism.
type Worker struct {
	API API
	// Run executes one cell (default experiments.Run).
	Run func(experiments.RunConfig) (experiments.RunResult, error)
	// PollWait bounds one empty-queue lease poll (default 5s).
	PollWait time.Duration
	// Backoff delays re-polling after a transport error, so a worker
	// fleet survives a craidd restart without hammering it (default 1s).
	Backoff time.Duration
}

// Loop pulls and runs cells until ctx is cancelled. Transport errors
// back off and retry; cell errors are reported to the server and the
// loop continues.
func (w *Worker) Loop(ctx context.Context) {
	run := w.Run
	if run == nil {
		run = experiments.Run
	}
	pollWait := w.PollWait
	if pollWait <= 0 {
		pollWait = 5 * time.Second
	}
	backoff := w.Backoff
	if backoff <= 0 {
		backoff = time.Second
	}
	for ctx.Err() == nil {
		l, err := w.API.Lease(pollWait)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		if l == nil {
			continue
		}
		w.process(ctx, l, run)
	}
}

// process runs one leased cell, heartbeating at a third of the TTL
// until the simulation finishes. The completion races any requeue of
// an expired lease by design: the server keeps the first result and
// drops the rest.
func (w *Worker) process(ctx context.Context, l *Lease, run func(experiments.RunConfig) (experiments.RunResult, error)) {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	interval := l.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				// A false/erroring heartbeat means the lease is gone;
				// keep simulating anyway — if our result still arrives
				// first it is accepted, otherwise it's dropped.
				w.API.Heartbeat(l.ID)
			}
		}
	}()
	res, err := run(l.Config)
	stopHB()
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	w.API.CompleteLease(l.ID, l.Hash, res, errMsg)
}
