// Package fabric is the distributed experiment runner: a work-queue
// service (craidd) that schedules pure experiment cells — RunConfig
// in, RunResult out — over a pool of in-process and remote workers,
// streams completions back to submitters as they land, and caches
// every finished cell content-addressed by its canonical config hash
// so a re-run only computes the cells that actually changed.
//
//	submitter (craidbench -remote / craidsim -remote / fabric.Client)
//	    │  POST /v1/jobs            ndjson results, config order restored client-side
//	    ▼
//	craidd ── scheduler (pending queue + lease table + waiter lists)
//	    │            ▲
//	    │ lease      │ complete (first result wins; duplicates dropped)
//	    ▼            │
//	workers: in-process goroutines and remote processes polling
//	/v1/lease with heartbeat; expired leases are requeued
//	    │
//	    ▼
//	result store: <cache>/<hh>/<hash>.json  (content-addressed RunResults)
package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"craid/internal/experiments"
)

// Store is the content-addressed result cache: one JSON-encoded
// RunResult per completed cell, keyed by the canonical config hash
// (experiments.ConfigHash), fanned into 256 two-hex-digit directories.
// Writes are atomic (temp file + rename), so a crashed craidd never
// leaves a half-written entry that a warm run would trust, and
// concurrent Puts of the same hash are idempotent — they carry
// identical bytes by construction, because equal hashes mean equal
// deterministic simulations.
type Store struct {
	dir string

	mu   sync.Mutex
	seq  int64 // temp-file uniquifier
	hits int64
	puts int64
}

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(hash string) (string, error) {
	if len(hash) != 64 || strings.ContainsAny(hash, "/\\.") {
		return "", fmt.Errorf("fabric: malformed cell hash %q", hash)
	}
	return filepath.Join(s.dir, hash[:2], hash+".json"), nil
}

// Get loads the cached result for hash, reporting whether one exists.
// A corrupt entry (torn by an unclean shutdown of something other than
// the atomic writer, or hand-edited) is treated as a miss and removed,
// so the cell is simply recomputed.
func (s *Store) Get(hash string) (experiments.RunResult, bool, error) {
	var res experiments.RunResult
	p, err := s.path(hash)
	if err != nil {
		return res, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return res, false, nil
	}
	if err != nil {
		return res, false, fmt.Errorf("fabric: store get %s: %w", hash, err)
	}
	if err := json.Unmarshal(data, &res); err != nil {
		os.Remove(p)
		return experiments.RunResult{}, false, nil
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return res, true, nil
}

// Put stores res under hash atomically.
func (s *Store) Put(hash string, res experiments.RunResult) error {
	p, err := s.path(hash)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("fabric: store put %s: %w", hash, err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("fabric: store put %s: %w", hash, err)
	}
	s.mu.Lock()
	s.seq++
	tmp := fmt.Sprintf("%s.tmp.%d.%d", p, os.Getpid(), s.seq)
	s.mu.Unlock()
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fabric: store put %s: %w", hash, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fabric: store put %s: %w", hash, err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return nil
}

// Len counts the entries currently in the store (a directory walk;
// meant for stats and tests, not hot paths).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n, err
}
