package fabric

import (
	"sync"
	"time"

	"craid/internal/experiments"
)

// Lease is one cell checked out to a worker. The worker must Complete
// it (or keep Heartbeating) within TTL or the scheduler assumes the
// worker died and re-issues the cell to someone else.
type Lease struct {
	ID     int64
	Hash   string
	Config experiments.RunConfig
	TTL    time.Duration
}

// Stats counts scheduler activity. Counters are cumulative for the
// process; Pending/Active are gauges sampled at snapshot time.
type Stats struct {
	Enqueued   int64 // cells accepted for computation (cache misses)
	Coalesced  int64 // submissions attached to an identical in-flight cell
	CacheHits  int64 // submissions served straight from the result store
	Leases     int64 // leases granted
	Heartbeats int64 // successful lease renewals
	Expired    int64 // heartbeats/completions that missed their lease
	Requeues   int64 // expired leases whose cell was re-issued
	Computed   int64 // results accepted (first result per cell)
	CellErrors int64 // cells completing with a simulation error
	Duplicates int64 // completions dropped because the cell was already resolved

	Pending int // cells queued, not leased (gauge)
	Active  int // leases outstanding (gauge)
}

// waiterFn delivers one resolved cell to a submitter.
type waiterFn func(experiments.RunResult, error)

// cellState is one distinct configuration wanted by ≥1 submitter.
// A cell is either queued (in pending, no lease) or leased; it leaves
// byHash exactly once, when its first result arrives.
type cellState struct {
	hash    string
	cfg     experiments.RunConfig
	waiters []waiterFn
	queued  bool
}

type leaseState struct {
	hash    string
	expires time.Time
}

// scheduler is the fabric's work queue: FIFO pending cells, a lease
// table with TTL/heartbeat/requeue, and per-cell waiter lists so any
// number of submitters (and duplicate submissions of one config)
// share a single computation. First result wins: completions for a
// hash that already resolved are counted and dropped, which makes
// lease requeues safe — the presumed-dead worker's late result and
// the replacement's result can both arrive, in either order.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*cellState
	byHash  map[string]*cellState
	leases  map[int64]*leaseState
	nextID  int64
	ttl     time.Duration
	stats   Stats
	closed  bool
	now     func() time.Time // injectable clock for tests
}

func newScheduler(ttl time.Duration) *scheduler {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	s := &scheduler{
		byHash: make(map[string]*cellState),
		leases: make(map[int64]*leaseState),
		ttl:    ttl,
		now:    time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue registers interest in one cell, creating it if no identical
// config is already queued or leased.
func (s *scheduler) enqueue(hash string, cfg experiments.RunConfig, w waiterFn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.byHash[hash]; ok {
		c.waiters = append(c.waiters, w)
		s.stats.Coalesced++
		return
	}
	c := &cellState{hash: hash, cfg: cfg, waiters: []waiterFn{w}, queued: true}
	s.byHash[hash] = c
	s.pending = append(s.pending, c)
	s.stats.Enqueued++
	s.cond.Broadcast()
}

// noteCacheHit counts a submission served from the result store.
func (s *scheduler) noteCacheHit() {
	s.mu.Lock()
	s.stats.CacheHits++
	s.mu.Unlock()
}

// lease blocks up to maxWait for a cell and checks it out. Returns nil
// when nothing became available (or the scheduler closed) — workers
// just poll again. Expired leases are swept here, so a dead worker's
// cells are re-issued the next time anyone polls.
func (s *scheduler) lease(maxWait time.Duration) *Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The poll deadline is wall time on purpose: s.now is injectable so
	// tests can age LEASES, but a frozen test clock must not turn an
	// empty-queue poll into a spin.
	deadline := time.Now().Add(maxWait)
	for {
		s.sweepLocked()
		if len(s.pending) > 0 {
			c := s.pending[0]
			s.pending = s.pending[1:]
			c.queued = false
			s.nextID++
			id := s.nextID
			s.leases[id] = &leaseState{hash: c.hash, expires: s.now().Add(s.ttl)}
			s.stats.Leases++
			return &Lease{ID: id, Hash: c.hash, Config: c.cfg, TTL: s.ttl}
		}
		if s.closed {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil
		}
		// Wake at the poll deadline, and at least every ttl/2 so an
		// expired lease is requeued promptly even with no other
		// scheduler traffic.
		nap := remaining
		if s.ttl/2 < nap {
			nap = s.ttl / 2
		}
		timer := time.AfterFunc(nap, s.cond.Broadcast)
		s.cond.Wait()
		timer.Stop()
	}
}

// sweepLocked requeues cells whose lease expired without a heartbeat.
func (s *scheduler) sweepLocked() {
	now := s.now()
	for id, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(s.leases, id)
		c, ok := s.byHash[l.hash]
		if !ok || c.queued {
			continue // already resolved, or already requeued
		}
		c.queued = true
		s.pending = append(s.pending, c)
		s.stats.Requeues++
	}
}

// heartbeat extends a live lease, reporting whether it still exists.
// A false return tells the worker its lease expired and was (or will
// be) re-issued: it may finish the cell anyway — first result wins —
// but must not expect its completion to be counted.
func (s *scheduler) heartbeat(id int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[id]
	if !ok {
		s.stats.Expired++
		return false
	}
	l.expires = s.now().Add(s.ttl)
	s.stats.Heartbeats++
	return true
}

// complete resolves the cell for hash, returning its waiters exactly
// once. Later completions of the same hash — stale lease, requeue race
// — return ok=false and are dropped. The caller invokes the returned
// waiters after any side effects (the server persists the result to
// the store first), outside the scheduler lock.
func (s *scheduler) complete(leaseID int64, hash string, cellErr bool) ([]waiterFn, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.leases[leaseID]; ok {
		delete(s.leases, leaseID)
	}
	c, ok := s.byHash[hash]
	if !ok {
		s.stats.Duplicates++
		return nil, false
	}
	delete(s.byHash, hash)
	if c.queued {
		// The cell was requeued after this worker's lease expired but
		// its result arrived first anyway: accept it and withdraw the
		// queued duplicate.
		for i, p := range s.pending {
			if p == c {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		c.queued = false
	}
	if cellErr {
		s.stats.CellErrors++
	} else {
		s.stats.Computed++
	}
	ws := c.waiters
	c.waiters = nil
	return ws, true
}

// snapshot returns the stats with gauges filled in.
func (s *scheduler) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Pending = len(s.pending)
	st.Active = len(s.leases)
	return st
}

// close wakes every blocked lease poll; subsequent polls return nil
// immediately once the queue drains.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
