package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"craid/internal/experiments"
)

// Client is the submitter side of the fabric: it implements
// experiments.Executor over a craidd service, so installing it with
// experiments.SetExecutor routes every RunAll matrix — each paper
// table, each figure sweep — through the work queue and its
// content-addressed cache. Results stream back as cells finish;
// experiments.Collect restores deterministic config order, so a remote
// table is byte-identical to an in-process one.
type Client struct {
	base string
	http *http.Client

	// Transient-failure policy: retries is how many times a failed
	// submit or stats call is reissued (connection refused, transport
	// resets, 5xx responses, and truncated result streams count as
	// transient; 4xx rejections do not), retryBase is the first backoff
	// step (doubled per attempt, with ±50% jitter), and retryWindow
	// bounds the whole retry sequence including the waits. Re-submitting
	// a whole batch is safe: experiments.Collect keeps the first result
	// per cell, so duplicate completions from an earlier, partially
	// streamed attempt are dropped.
	retries     int
	retryBase   time.Duration
	retryWindow time.Duration
	rngMu       sync.Mutex
	rng         *rand.Rand
}

// NewClient returns a submitter for the craidd at base
// (e.g. "http://host:8440"). The underlying HTTP client has no
// timeout: a job holds its connection open for the whole batch.
// Transient failures are retried 3 times with jittered exponential
// backoff from 200ms, bounded by a 2-minute window; SetRetryPolicy
// adjusts all three knobs.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"), http: &http.Client{},
		retries: 3, retryBase: 200 * time.Millisecond, retryWindow: 2 * time.Minute,
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetRetryPolicy overrides the transient-failure policy: retries
// reissues after the first attempt (0 disables), base is the first
// backoff step, window bounds the whole sequence. Call before the
// first request; the client must not be in use concurrently.
func (c *Client) SetRetryPolicy(retries int, base, window time.Duration) {
	c.retries, c.retryBase, c.retryWindow = retries, base, window
}

// transientError marks an error as retryable under the client's
// backoff policy.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// withRetry runs fn until it succeeds, fails permanently, or the
// policy is exhausted. Only errors wrapped as transientError are
// retried; the backoff between attempts is retryBase·2ⁱ scaled by a
// uniform ±50% jitter, and the whole sequence — waits included — is
// cut off at retryWindow.
func (c *Client) withRetry(op string, fn func(ctx context.Context) error) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.retryWindow)
	defer cancel()
	var err error
	for attempt := 0; ; attempt++ {
		err = fn(ctx)
		var te *transientError
		if err == nil || !errors.As(err, &te) || attempt >= c.retries {
			return err
		}
		step := c.retryBase << uint(attempt)
		c.rngMu.Lock()
		wait := step/2 + time.Duration(c.rng.Int63n(int64(step)))
		c.rngMu.Unlock()
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return fmt.Errorf("fabric: %s: retry window exhausted: %w", op, err)
		}
	}
}

// Execute implements experiments.Executor: canonical cells go to the
// service as one job; cells that cannot leave the process (a TraceAt
// handle — RunMSRVolumes' shared-file fan-out) fall back to local
// execution under the same parallelism bound, so a mixed batch still
// completes.
func (c *Client) Execute(cfgs []experiments.RunConfig, emit func(experiments.CellResult)) error {
	remoteIdx := make([]int, 0, len(cfgs))
	var localIdx []int
	for i, cfg := range cfgs {
		if cfg.TraceAt != nil {
			localIdx = append(localIdx, i)
		} else {
			remoteIdx = append(remoteIdx, i)
		}
	}

	var wg sync.WaitGroup
	if len(localIdx) > 0 {
		sem := make(chan struct{}, experiments.Parallelism())
		for _, i := range localIdx {
			i := i
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := experiments.Run(cfgs[i])
				emit(experiments.CellResult{Index: i, Result: res, Err: err})
			}()
		}
	}

	var remoteErr error
	if len(remoteIdx) > 0 {
		cells := make([]experiments.RunConfig, len(remoteIdx))
		for j, i := range remoteIdx {
			// The service and its workers don't share our process-wide
			// matrix defaults (-shards/-workers/-lookahead/-affinity),
			// so fold them into the shipped config — which also makes
			// them part of the content address, as they must be: they
			// shape the result's pipeline counters.
			cells[j] = experiments.ResolveDefaults(cfgs[i])
		}
		remoteErr = c.submit(cells, func(line jobLine) {
			if line.Index < 0 || line.Index >= len(remoteIdx) {
				return
			}
			cr := experiments.CellResult{Index: remoteIdx[line.Index]}
			if line.Error != "" {
				cr.Err = errors.New(line.Error)
			} else if line.Result != nil {
				cr.Result = *line.Result
			} else {
				cr.Err = fmt.Errorf("fabric: empty result line for cell %d", line.Index)
			}
			emit(cr)
		})
	}
	wg.Wait()
	return remoteErr
}

// submit POSTs one job and decodes the ndjson completion stream,
// reissuing the whole batch on transient failures (deliver may then
// see duplicate lines from a partially streamed earlier attempt —
// experiments.Collect dedups by cell index, keeping the first).
func (c *Client) submit(cells []experiments.RunConfig, deliver func(jobLine)) error {
	body, err := json.Marshal(jobRequest{Cells: cells})
	if err != nil {
		return fmt.Errorf("fabric: encoding job: %w", err)
	}
	return c.withRetry("submit", func(ctx context.Context) error {
		return c.submitOnce(ctx, body, len(cells), deliver)
	})
}

func (c *Client) submitOnce(ctx context.Context, body []byte, cells int, deliver func(jobLine)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: submitting job: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return &transientError{fmt.Errorf("fabric: submitting job: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("fabric: job rejected: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= http.StatusInternalServerError {
			return &transientError{err}
		}
		return err
	}
	dec := json.NewDecoder(resp.Body)
	seen := 0
	for {
		var line jobLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return &transientError{fmt.Errorf("fabric: result stream after %d/%d cells: %w", seen, cells, err)}
		}
		seen++
		deliver(line)
	}
	if seen < cells {
		return &transientError{fmt.Errorf("fabric: result stream ended after %d/%d cells", seen, cells)}
	}
	return nil
}

// Run executes one cell through the fabric — craidsim -remote.
func (c *Client) Run(cfg experiments.RunConfig) (experiments.RunResult, error) {
	results, err := experiments.Collect(1, func(emit func(experiments.CellResult)) error {
		return c.Execute([]experiments.RunConfig{cfg}, emit)
	})
	if err != nil {
		return experiments.RunResult{}, err
	}
	return results[0], nil
}

// Stats fetches the service's scheduler/store counters, retrying
// transient failures under the same backoff policy as submit.
func (c *Client) Stats() (StatsSnapshot, error) {
	var st StatsSnapshot
	err := c.withRetry("stats", func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return &transientError{err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("fabric: stats: %s", resp.Status)
			if resp.StatusCode >= http.StatusInternalServerError {
				return &transientError{err}
			}
			return err
		}
		st = StatsSnapshot{}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			// A 200 whose body doesn't decode is a truncated or reset
			// response, not a service rejection.
			return &transientError{fmt.Errorf("fabric: stats: %w", err)}
		}
		return nil
	})
	return st, err
}

// Remote implements the worker API over HTTP: a worker process on
// another host points one of these at craidd and runs Worker.Loop
// against it (`craidd -join URL`).
type Remote struct {
	base string
	http *http.Client
}

// NewRemote returns the worker-side API client for the craidd at base.
func NewRemote(base string) *Remote {
	return &Remote{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

func (r *Remote) post(path string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	// Cap every control round trip; the lease long-poll adds its own
	// wait on top of this via the request body.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.http.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusOK && resp != nil {
		if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
			return hresp.StatusCode, err
		}
	}
	return hresp.StatusCode, nil
}

// Lease implements API.Lease over POST /v1/lease.
func (r *Remote) Lease(maxWait time.Duration) (*Lease, error) {
	var lr leaseResponse
	code, err := r.post("/v1/lease", leaseRequest{WaitMillis: maxWait.Milliseconds()}, &lr)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return &Lease{
			ID:     lr.LeaseID,
			Hash:   lr.Hash,
			Config: lr.Config,
			TTL:    time.Duration(lr.TTLMillis) * time.Millisecond,
		}, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("fabric: lease: HTTP %d", code)
	}
}

// Heartbeat implements API.Heartbeat over POST /v1/heartbeat.
func (r *Remote) Heartbeat(leaseID int64) (bool, error) {
	code, err := r.post("/v1/heartbeat", heartbeatRequest{LeaseID: leaseID}, nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusGone:
		return false, nil
	default:
		return false, fmt.Errorf("fabric: heartbeat: HTTP %d", code)
	}
}

// CompleteLease implements API.CompleteLease over POST /v1/complete.
func (r *Remote) CompleteLease(leaseID int64, hash string, res experiments.RunResult, errMsg string) error {
	req := completeRequest{LeaseID: leaseID, Hash: hash, Error: errMsg}
	if errMsg == "" {
		req.Result = &res
	}
	code, err := r.post("/v1/complete", req, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("fabric: complete: HTTP %d", code)
	}
	return nil
}
