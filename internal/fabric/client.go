package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"craid/internal/experiments"
)

// Client is the submitter side of the fabric: it implements
// experiments.Executor over a craidd service, so installing it with
// experiments.SetExecutor routes every RunAll matrix — each paper
// table, each figure sweep — through the work queue and its
// content-addressed cache. Results stream back as cells finish;
// experiments.Collect restores deterministic config order, so a remote
// table is byte-identical to an in-process one.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a submitter for the craidd at base
// (e.g. "http://host:8440"). The underlying HTTP client has no
// timeout: a job holds its connection open for the whole batch.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// Execute implements experiments.Executor: canonical cells go to the
// service as one job; cells that cannot leave the process (a TraceAt
// handle — RunMSRVolumes' shared-file fan-out) fall back to local
// execution under the same parallelism bound, so a mixed batch still
// completes.
func (c *Client) Execute(cfgs []experiments.RunConfig, emit func(experiments.CellResult)) error {
	remoteIdx := make([]int, 0, len(cfgs))
	var localIdx []int
	for i, cfg := range cfgs {
		if cfg.TraceAt != nil {
			localIdx = append(localIdx, i)
		} else {
			remoteIdx = append(remoteIdx, i)
		}
	}

	var wg sync.WaitGroup
	if len(localIdx) > 0 {
		sem := make(chan struct{}, experiments.Parallelism())
		for _, i := range localIdx {
			i := i
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := experiments.Run(cfgs[i])
				emit(experiments.CellResult{Index: i, Result: res, Err: err})
			}()
		}
	}

	var remoteErr error
	if len(remoteIdx) > 0 {
		cells := make([]experiments.RunConfig, len(remoteIdx))
		for j, i := range remoteIdx {
			// The service and its workers don't share our process-wide
			// matrix defaults (-shards/-workers/-lookahead/-affinity),
			// so fold them into the shipped config — which also makes
			// them part of the content address, as they must be: they
			// shape the result's pipeline counters.
			cells[j] = experiments.ResolveDefaults(cfgs[i])
		}
		remoteErr = c.submit(cells, func(line jobLine) {
			if line.Index < 0 || line.Index >= len(remoteIdx) {
				return
			}
			cr := experiments.CellResult{Index: remoteIdx[line.Index]}
			if line.Error != "" {
				cr.Err = errors.New(line.Error)
			} else if line.Result != nil {
				cr.Result = *line.Result
			} else {
				cr.Err = fmt.Errorf("fabric: empty result line for cell %d", line.Index)
			}
			emit(cr)
		})
	}
	wg.Wait()
	return remoteErr
}

// submit POSTs one job and decodes the ndjson completion stream.
func (c *Client) submit(cells []experiments.RunConfig, deliver func(jobLine)) error {
	body, err := json.Marshal(jobRequest{Cells: cells})
	if err != nil {
		return fmt.Errorf("fabric: encoding job: %w", err)
	}
	resp, err := c.http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: submitting job: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fabric: job rejected: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	seen := 0
	for {
		var line jobLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("fabric: result stream after %d/%d cells: %w", seen, len(cells), err)
		}
		seen++
		deliver(line)
	}
	if seen < len(cells) {
		return fmt.Errorf("fabric: result stream ended after %d/%d cells", seen, len(cells))
	}
	return nil
}

// Run executes one cell through the fabric — craidsim -remote.
func (c *Client) Run(cfg experiments.RunConfig) (experiments.RunResult, error) {
	results, err := experiments.Collect(1, func(emit func(experiments.CellResult)) error {
		return c.Execute([]experiments.RunConfig{cfg}, emit)
	})
	if err != nil {
		return experiments.RunResult{}, err
	}
	return results[0], nil
}

// Stats fetches the service's scheduler/store counters.
func (c *Client) Stats() (StatsSnapshot, error) {
	var st StatsSnapshot
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("fabric: stats: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Remote implements the worker API over HTTP: a worker process on
// another host points one of these at craidd and runs Worker.Loop
// against it (`craidd -join URL`).
type Remote struct {
	base string
	http *http.Client
}

// NewRemote returns the worker-side API client for the craidd at base.
func NewRemote(base string) *Remote {
	return &Remote{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

func (r *Remote) post(path string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	// Cap every control round trip; the lease long-poll adds its own
	// wait on top of this via the request body.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.http.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusOK && resp != nil {
		if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
			return hresp.StatusCode, err
		}
	}
	return hresp.StatusCode, nil
}

// Lease implements API.Lease over POST /v1/lease.
func (r *Remote) Lease(maxWait time.Duration) (*Lease, error) {
	var lr leaseResponse
	code, err := r.post("/v1/lease", leaseRequest{WaitMillis: maxWait.Milliseconds()}, &lr)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return &Lease{
			ID:     lr.LeaseID,
			Hash:   lr.Hash,
			Config: lr.Config,
			TTL:    time.Duration(lr.TTLMillis) * time.Millisecond,
		}, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("fabric: lease: HTTP %d", code)
	}
}

// Heartbeat implements API.Heartbeat over POST /v1/heartbeat.
func (r *Remote) Heartbeat(leaseID int64) (bool, error) {
	code, err := r.post("/v1/heartbeat", heartbeatRequest{LeaseID: leaseID}, nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusGone:
		return false, nil
	default:
		return false, fmt.Errorf("fabric: heartbeat: HTTP %d", code)
	}
}

// CompleteLease implements API.CompleteLease over POST /v1/complete.
func (r *Remote) CompleteLease(leaseID int64, hash string, res experiments.RunResult, errMsg string) error {
	req := completeRequest{LeaseID: leaseID, Hash: hash, Error: errMsg}
	if errMsg == "" {
		req.Result = &res
	}
	code, err := r.post("/v1/complete", req, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("fabric: complete: HTTP %d", code)
	}
	return nil
}
