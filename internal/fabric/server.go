package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"craid/internal/experiments"
)

// Wire types. The fabric speaks JSON: configs and results are the
// experiments structs verbatim (process-local fields like TraceAt are
// tagged out), and job results stream back as newline-delimited JSON
// so submitters see each cell the moment it lands.
type (
	// jobRequest is the POST /v1/jobs body.
	jobRequest struct {
		Cells []experiments.RunConfig `json:"cells"`
	}
	// jobLine is one streamed completion. Index references the
	// submitted batch; exactly one of Result/Error is set.
	jobLine struct {
		Index  int                    `json:"index"`
		Result *experiments.RunResult `json:"result,omitempty"`
		Error  string                 `json:"error,omitempty"`
	}
	// leaseRequest is the POST /v1/lease body.
	leaseRequest struct {
		WaitMillis int64 `json:"wait_ms"`
	}
	// leaseResponse is the 200 body of POST /v1/lease.
	leaseResponse struct {
		LeaseID   int64                 `json:"lease_id"`
		Hash      string                `json:"hash"`
		Config    experiments.RunConfig `json:"config"`
		TTLMillis int64                 `json:"ttl_ms"`
	}
	// heartbeatRequest is the POST /v1/heartbeat body.
	heartbeatRequest struct {
		LeaseID int64 `json:"lease_id"`
	}
	// completeRequest is the POST /v1/complete body.
	completeRequest struct {
		LeaseID int64                  `json:"lease_id"`
		Hash    string                 `json:"hash"`
		Result  *experiments.RunResult `json:"result,omitempty"`
		Error   string                 `json:"error,omitempty"`
	}
	completeResponse struct {
		Accepted bool `json:"accepted"`
	}
	// StatsSnapshot is the GET /v1/stats body.
	StatsSnapshot struct {
		Scheduler    Stats  `json:"scheduler"`
		StoreDir     string `json:"store_dir"`
		StoreEntries int    `json:"store_entries"`
		LocalWorkers int    `json:"local_workers"`
	}
)

// Options configures a Server.
type Options struct {
	// Store caches completed cells content-addressed by config hash.
	// Required.
	Store *Store
	// LeaseTTL is how long a worker may go without a heartbeat before
	// its cells are re-issued (default 15s).
	LeaseTTL time.Duration
	// Runner executes one cell on the local workers (default
	// experiments.Run; tests substitute instrumented runners).
	Runner func(experiments.RunConfig) (experiments.RunResult, error)
	// Logf, when non-nil, receives operational messages.
	Logf func(format string, args ...any)
}

// Server is the craidd core: scheduler + result store + the HTTP
// surface, independent of any particular listener so tests drive it
// through net/http/httptest and cmd/craidd through http.ListenAndServe.
type Server struct {
	sched *scheduler
	store *Store
	run   func(experiments.RunConfig) (experiments.RunResult, error)
	logf  func(format string, args ...any)

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	workers int
}

// NewServer assembles a fabric server.
func NewServer(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("fabric: NewServer needs a Store")
	}
	run := opts.Runner
	if run == nil {
		run = experiments.Run
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		sched:  newScheduler(opts.LeaseTTL),
		store:  opts.Store,
		run:    run,
		logf:   logf,
		ctx:    ctx,
		cancel: cancel,
	}, nil
}

// Submit schedules one batch: cache hits emit immediately, identical
// in-flight configs coalesce onto one computation, and everything else
// queues for the worker pool. Blocks until every cell has emitted.
// Completions arrive from worker goroutines in finish order;
// experiments.Collect (on the submitter side) restores config order.
func (s *Server) Submit(cfgs []experiments.RunConfig, emit func(experiments.CellResult)) error {
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		i := i
		hash, err := experiments.ConfigHash(cfg)
		if err != nil {
			emit(experiments.CellResult{Index: i, Err: err})
			continue
		}
		if res, ok, err := s.store.Get(hash); err != nil {
			emit(experiments.CellResult{Index: i, Err: err})
			continue
		} else if ok {
			s.sched.noteCacheHit()
			emit(experiments.CellResult{Index: i, Result: res})
			continue
		}
		wg.Add(1)
		s.sched.enqueue(hash, cfg, func(res experiments.RunResult, err error) {
			defer wg.Done()
			emit(experiments.CellResult{Index: i, Result: res, Err: err})
		})
	}
	wg.Wait()
	return nil
}

// Complete accepts one worker's finished cell: the first result for a
// hash is persisted to the store and fanned out to every waiting
// submitter; later duplicates (stale leases racing a requeue) report
// accepted=false and are dropped.
func (s *Server) Complete(leaseID int64, hash string, res experiments.RunResult, errMsg string) bool {
	cellFailed := errMsg != ""
	ws, ok := s.sched.complete(leaseID, hash, cellFailed)
	if !ok {
		return false
	}
	var cellErr error
	if cellFailed {
		cellErr = fmt.Errorf("fabric: cell failed on worker: %s", errMsg)
	} else if err := s.store.Put(hash, res); err != nil {
		// The result is still good — serve it to the waiters — but the
		// cache missed a fill; log and carry on.
		s.logf("fabric: caching %s: %v", hash, err)
	}
	for _, w := range ws {
		w(res, cellErr)
	}
	return true
}

// Lease checks one cell out to a worker, blocking up to maxWait.
func (s *Server) Lease(maxWait time.Duration) (*Lease, error) {
	return s.sched.lease(maxWait), nil
}

// Heartbeat renews a lease, reporting whether it still exists.
func (s *Server) Heartbeat(leaseID int64) (bool, error) {
	return s.sched.heartbeat(leaseID), nil
}

// CompleteLease implements the worker API over the in-process server.
func (s *Server) CompleteLease(leaseID int64, hash string, res experiments.RunResult, errMsg string) error {
	s.Complete(leaseID, hash, res, errMsg)
	return nil
}

// Stats snapshots the server for /v1/stats.
func (s *Server) Stats() StatsSnapshot {
	entries, err := s.store.Len()
	if err != nil {
		s.logf("fabric: store walk: %v", err)
	}
	return StatsSnapshot{
		Scheduler:    s.sched.snapshot(),
		StoreDir:     s.store.Dir(),
		StoreEntries: entries,
		LocalWorkers: s.workers,
	}
}

// StartLocalWorkers spawns n in-process workers driving the scheduler
// directly — `craidd -workers N` and the single-host fast path. They
// run until Close.
func (s *Server) StartLocalWorkers(n int) {
	for i := 0; i < n; i++ {
		w := &Worker{API: s, Run: s.run, PollWait: time.Second}
		s.workers++
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			w.Loop(s.ctx)
		}()
	}
}

// Close stops the local workers and wakes blocked lease polls.
func (s *Server) Close() {
	s.cancel()
	s.sched.close()
	s.wg.Wait()
}

// Handler returns the craidd HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", s.handleComplete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleJobs runs one submitted batch, streaming completions back as
// ndjson the moment each cell resolves (chunked transfer keeps the
// connection open for the duration; a cached batch answers instantly).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fabric: bad job request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Cells) == 0 {
		http.Error(w, "fabric: job has no cells", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	s.logf("fabric: job with %d cell(s) from %s", len(req.Cells), r.RemoteAddr)
	s.Submit(req.Cells, func(cr experiments.CellResult) {
		mu.Lock()
		defer mu.Unlock()
		line := jobLine{Index: cr.Index}
		if cr.Err != nil {
			line.Error = cr.Err.Error()
		} else {
			res := cr.Result
			line.Result = &res
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; workers still finish and fill the cache
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fabric: bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait <= 0 {
		wait = time.Millisecond
	}
	if wait > time.Minute {
		wait = time.Minute
	}
	l := s.sched.lease(wait)
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, leaseResponse{
		LeaseID:   l.ID,
		Hash:      l.Hash,
		Config:    l.Config,
		TTLMillis: l.TTL.Milliseconds(),
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fabric: bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if !s.sched.heartbeat(req.LeaseID) {
		http.Error(w, "fabric: lease expired", http.StatusGone)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fabric: bad completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	var res experiments.RunResult
	if req.Result != nil {
		res = *req.Result
	}
	accepted := s.Complete(req.LeaseID, req.Hash, res, req.Error)
	writeJSON(w, completeResponse{Accepted: accepted})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
