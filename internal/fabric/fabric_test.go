package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"craid/internal/experiments"
)

// Compile-time wiring: the in-process server and the HTTP remote are
// interchangeable worker backends, and the client is a drop-in
// executor for the experiment matrix.
var (
	_ API                  = (*Server)(nil)
	_ API                  = (*Remote)(nil)
	_ experiments.Executor = (*Client)(nil)
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustHash(t *testing.T, cfg experiments.RunConfig) string {
	t.Helper()
	h, err := experiments.ConfigHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// cheapCell is a real simulation small enough for e2e tests.
func cheapCell(policy string, pcBlocks int64) experiments.RunConfig {
	return experiments.RunConfig{
		Trace:    "webresearch",
		Scale:    experiments.ScaleFor("webresearch", 0.02),
		Strategy: experiments.CRAID5,
		Policy:   policy,
		Instant:  true,
		PCBlocks: pcBlocks,
	}
}

// --- Store ---

func TestStoreRoundTrip(t *testing.T) {
	st := newTestStore(t)
	cfg := cheapCell("LRU", 500)
	hash := mustHash(t, cfg)
	if _, ok, err := st.Get(hash); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v", ok, err)
	}
	want := experiments.RunResult{
		Cfg: cfg, Requests: 12345,
		ReadMean: 71234, ReadP99: 991234,
		CVs: []float64{0.25, 1.0 / 3.0, 0.125}, // exact-float round trip matters
	}
	if err := st.Put(hash, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(hash)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stored result mutated:\n got %+v\nwant %+v", got, want)
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestStoreCorruptEntryIsAMiss(t *testing.T) {
	st := newTestStore(t)
	hash := mustHash(t, cheapCell("LRU", 500))
	if err := st.Put(hash, experiments.RunResult{Requests: 1}); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(st.Dir(), hash[:2], hash+".json")
	if err := os.WriteFile(p, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(hash); err != nil || ok {
		t.Fatalf("corrupt entry: ok=%v err=%v, want miss", ok, err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
}

func TestStoreRejectsMalformedHash(t *testing.T) {
	st := newTestStore(t)
	for _, h := range []string{"", "short", "../../etc/passwd", string(make([]byte, 64))} {
		if _, _, err := st.Get(h); err == nil {
			t.Errorf("Get(%q) accepted", h)
		}
		if err := st.Put(h, experiments.RunResult{}); err == nil {
			t.Errorf("Put(%q) accepted", h)
		}
	}
}

// --- Scheduler: lease / heartbeat / requeue / first-result-wins ---

// fakeClock drives the scheduler deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestSched(ttl time.Duration) (*scheduler, *fakeClock) {
	s := newScheduler(ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.now = clk.now
	return s, clk
}

func TestSchedulerLeaseExpiryRequeues(t *testing.T) {
	s, clk := newTestSched(10 * time.Second)
	cfg := experiments.RunConfig{Trace: "wdev"}
	var got experiments.RunResult
	var done atomic.Bool
	s.enqueue("h1", cfg, func(r experiments.RunResult, err error) {
		got = r
		done.Store(true)
	})

	l1 := s.lease(time.Millisecond)
	if l1 == nil || l1.Hash != "h1" {
		t.Fatalf("lease 1 = %+v", l1)
	}
	// Heartbeats keep it alive across TTL boundaries.
	clk.advance(8 * time.Second)
	if !s.heartbeat(l1.ID) {
		t.Fatal("heartbeat on live lease failed")
	}
	clk.advance(8 * time.Second)
	if l := s.lease(time.Millisecond); l != nil {
		t.Fatalf("cell re-issued while lease heartbeaten: %+v", l)
	}
	// Silence past TTL: the cell must be re-issued as a NEW lease.
	clk.advance(11 * time.Second)
	l2 := s.lease(time.Millisecond)
	if l2 == nil || l2.Hash != "h1" || l2.ID == l1.ID {
		t.Fatalf("expired cell not re-issued: %+v (was %+v)", l2, l1)
	}
	if s.heartbeat(l1.ID) {
		t.Fatal("heartbeat on expired lease succeeded")
	}
	st := s.snapshot()
	if st.Requeues != 1 || st.Leases != 2 {
		t.Fatalf("stats = %+v, want 1 requeue / 2 leases", st)
	}

	// Replacement completes; waiter fires exactly once.
	ws, ok := s.complete(l2.ID, "h1", false)
	if !ok || len(ws) != 1 {
		t.Fatalf("complete = %v waiters, ok=%v", len(ws), ok)
	}
	ws[0](experiments.RunResult{Requests: 7}, nil)
	if !done.Load() || got.Requests != 7 {
		t.Fatalf("waiter saw %+v", got)
	}
}

func TestSchedulerFirstResultWins(t *testing.T) {
	// The stale worker's completion can land BEFORE or AFTER the
	// replacement's; in both orders exactly one result is accepted.
	for _, staleFirst := range []bool{true, false} {
		s, clk := newTestSched(5 * time.Second)
		calls := 0
		s.enqueue("h1", experiments.RunConfig{}, func(experiments.RunResult, error) { calls++ })
		l1 := s.lease(time.Millisecond)
		clk.advance(6 * time.Second)
		l2 := s.lease(time.Millisecond) // requeued to a second worker
		if l1 == nil || l2 == nil {
			t.Fatal("missing lease")
		}
		first, second := l1.ID, l2.ID
		if !staleFirst {
			first, second = l2.ID, l1.ID
		}
		if ws, ok := s.complete(first, "h1", false); !ok || len(ws) != 1 {
			t.Fatalf("staleFirst=%v: first completion rejected", staleFirst)
		} else {
			ws[0](experiments.RunResult{}, nil)
		}
		if ws, ok := s.complete(second, "h1", false); ok || ws != nil {
			t.Fatalf("staleFirst=%v: second completion accepted", staleFirst)
		}
		if calls != 1 {
			t.Fatalf("staleFirst=%v: waiter fired %d times", staleFirst, calls)
		}
		if st := s.snapshot(); st.Computed != 1 || st.Duplicates != 1 {
			t.Fatalf("staleFirst=%v: stats %+v", staleFirst, st)
		}
	}
}

func TestSchedulerStaleResultBeatsRequeuedCell(t *testing.T) {
	// Lease expires and the cell is back in the queue — but the old
	// worker's result arrives before anyone re-leases it. The result
	// is accepted and the queued duplicate withdrawn.
	s, clk := newTestSched(5 * time.Second)
	s.enqueue("h1", experiments.RunConfig{}, func(experiments.RunResult, error) {})
	l1 := s.lease(time.Millisecond)
	if l1 == nil {
		t.Fatal("no lease")
	}
	// Expire the lease and sweep without anyone re-leasing, so the cell
	// is sitting in pending when the "dead" worker's result lands.
	clk.advance(6 * time.Second)
	s.mu.Lock()
	s.sweepLocked()
	pendingLen := len(s.pending)
	s.mu.Unlock()
	if pendingLen != 1 {
		t.Fatalf("cell not back in pending, len=%d", pendingLen)
	}
	if _, ok := s.complete(l1.ID, "h1", false); !ok {
		t.Fatal("stale result for a queued cell rejected; first result should win")
	}
	s.mu.Lock()
	pendingLen = len(s.pending)
	s.mu.Unlock()
	if pendingLen != 0 {
		t.Fatal("resolved cell left in pending queue")
	}
	if l := s.lease(time.Millisecond); l != nil {
		t.Fatalf("resolved cell re-issued: %+v", l)
	}
}

func TestSchedulerCoalescesIdenticalConfigs(t *testing.T) {
	s, _ := newTestSched(time.Minute)
	hits := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.enqueue("h1", experiments.RunConfig{}, func(experiments.RunResult, error) { hits[i]++ })
	}
	l := s.lease(time.Millisecond)
	if l == nil {
		t.Fatal("no lease")
	}
	if extra := s.lease(time.Millisecond); extra != nil {
		t.Fatalf("coalesced cell leased twice: %+v", extra)
	}
	ws, ok := s.complete(l.ID, "h1", false)
	if !ok || len(ws) != 3 {
		t.Fatalf("waiters = %d, ok=%v; want all 3 submissions served by one computation", len(ws), ok)
	}
	for _, w := range ws {
		w(experiments.RunResult{}, nil)
	}
	if hits[0] != 1 || hits[1] != 1 || hits[2] != 1 {
		t.Fatalf("waiter fan-out = %v", hits)
	}
	if st := s.snapshot(); st.Coalesced != 2 || st.Enqueued != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// --- Server + workers end to end (in-process and over HTTP) ---

// countingRunner wraps experiments.Run and counts real executions.
func countingRunner() (*atomic.Int64, func(experiments.RunConfig) (experiments.RunResult, error)) {
	var n atomic.Int64
	return &n, func(cfg experiments.RunConfig) (experiments.RunResult, error) {
		n.Add(1)
		return experiments.Run(cfg)
	}
}

func TestFabricEndToEndMatchesLocalAndCaches(t *testing.T) {
	computed, runner := countingRunner()
	srv, err := NewServer(Options{Store: newTestStore(t), Runner: runner, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.StartLocalWorkers(2)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := NewClient(hs.URL)

	cfgs := []experiments.RunConfig{
		cheapCell("LRU", 500),
		cheapCell("ARC", 500),
		cheapCell("LRU", 900),
		cheapCell("LRU", 500), // duplicate of cell 0: must coalesce, not recompute
	}

	// The ground truth: the same cells in-process.
	want, err := experiments.RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}

	got, err := experiments.Collect(len(cfgs), func(emit func(experiments.CellResult)) error {
		return client.Execute(cfgs, emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		// Ring back-pressure is wall-clock telemetry, not simulation
		// output (see TestRunAllDeterministicAcrossParallelism): under
		// host load the fabric and local runs can fill the replay ring
		// differently without any result diverging.
		got[i].Replay.ReaderStalls, want[i].Replay.ReaderStalls = 0, 0
		got[i].Replay.ReplayStalls, want[i].Replay.ReplayStalls = 0, 0
		got[i].Replay.RingHighWater, want[i].Replay.RingHighWater = 0, 0
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cell %d differs across the fabric:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if n := computed.Load(); n != 3 {
		t.Fatalf("cold run computed %d cells, want 3 (4 submitted, 1 coalesced)", n)
	}

	// Warm run: zero recomputation, identical bytes.
	got2, err := experiments.Collect(len(cfgs), func(emit func(experiments.CellResult)) error {
		return client.Execute(cfgs, emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := computed.Load(); n != 3 {
		t.Fatalf("warm run recomputed cells: total %d, want still 3", n)
	}
	for i := range got2 {
		got2[i].Replay.ReaderStalls = 0
		got2[i].Replay.ReplayStalls = 0
		got2[i].Replay.RingHighWater = 0
	}
	if !reflect.DeepEqual(got2, got) {
		t.Fatal("warm-cache results differ from cold results")
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheduler.CacheHits != 4 {
		t.Fatalf("warm run cache hits = %d, want 4", st.Scheduler.CacheHits)
	}
	if st.StoreEntries != 3 {
		t.Fatalf("store entries = %d, want 3", st.StoreEntries)
	}
}

func TestRemoteWorkerOverHTTP(t *testing.T) {
	// No local workers: the job can only finish if the HTTP worker
	// path (lease → run → complete) works end to end.
	srv, err := NewServer(Options{Store: newTestStore(t), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	computed, runner := countingRunner()
	wctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	w := &Worker{API: NewRemote(hs.URL), Run: runner, PollWait: 100 * time.Millisecond}
	go w.Loop(wctx)

	cfg := cheapCell("WLRU", 700)
	res, err := NewClient(hs.URL).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("remote-worker result differs:\n got %+v\nwant %+v", res, want)
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d cells, want 1", computed.Load())
	}
}

func TestFabricCellErrorPropagates(t *testing.T) {
	srv, err := NewServer(Options{Store: newTestStore(t), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.StartLocalWorkers(1)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Scale <= 0 with no dataset: Run rejects it on the worker.
	_, err = NewClient(hs.URL).Run(experiments.RunConfig{Trace: "wdev", Strategy: experiments.CRAID5})
	if err == nil {
		t.Fatal("bad cell did not error through the fabric")
	}
	// Errors are not cached: the store stays empty.
	if n, _ := srv.store.Len(); n != 0 {
		t.Fatalf("failed cell cached: %d entries", n)
	}
}

func TestFabricRequeueRecoversFromDeadWorker(t *testing.T) {
	// A worker leases the cell and dies silently; TTL expiry must
	// re-issue it to a live worker and the job must still finish with
	// the correct result.
	const ttl = 300 * time.Millisecond
	computed, runner := countingRunner()
	srv, err := NewServer(Options{Store: newTestStore(t), Runner: runner, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cfg := cheapCell("GDSF", 600)

	// Dead worker: takes the lease, never completes, never heartbeats.
	go func() {
		r := NewRemote(hs.URL)
		for {
			l, err := r.Lease(50 * time.Millisecond)
			if err != nil {
				return // server shut down
			}
			if l != nil {
				return // swallowed the lease; now play dead
			}
		}
	}()

	start := time.Now()
	resCh := make(chan experiments.RunResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := NewClient(hs.URL).Run(cfg)
		resCh <- res
		errCh <- err
	}()

	// Give the dead worker time to take the lease, then start a real
	// worker that can only get the cell via requeue.
	time.Sleep(100 * time.Millisecond)
	srv.StartLocalWorkers(1)

	select {
	case res := <-resCh:
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		want, err := experiments.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatal("requeued result differs from direct run")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job never recovered from the dead worker")
	}
	if computed.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computed.Load())
	}
	st := srv.Stats()
	if st.Scheduler.Requeues < 1 {
		t.Fatalf("no requeue recorded: %+v; recovery took %v", st.Scheduler, time.Since(start))
	}
}

func TestClientRunsTraceAtCellsLocally(t *testing.T) {
	// Cells carrying a process-local TraceAt handle cannot travel;
	// the client must run them in-process and still return a full,
	// correctly ordered batch. (Server has NO workers: if the cell
	// were submitted remotely the test would hang.)
	srv, err := NewServer(Options{Store: newTestStore(t), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	f, err := os.CreateTemp(t.TempDir(), "trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Two native-format records (time op addr len).
	if _, err := f.WriteString("0 R 0 8\n100 W 4000 8\n"); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.RunConfig{
		Trace: "at-cell", Scale: experiments.QuickScale,
		Strategy: experiments.CRAID5, PCPct: 0.02,
		TraceAt: f, TraceAtSize: fi.Size(),
		TraceFormat: "native", DatasetBlocks: 50_000,
	}
	got, err := experiments.Collect(1, func(emit func(experiments.CellResult)) error {
		return NewClient(hs.URL).Execute([]experiments.RunConfig{cfg}, emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Requests != 2 {
		t.Fatalf("TraceAt cell replayed %d records, want 2", got[0].Requests)
	}
}

// flakyHandler wraps an http.Handler, failing the first failN requests
// to each path with the configured status (0 = accept the request but
// truncate the response body before any result line is written).
type flakyHandler struct {
	inner  http.Handler
	status int
	failN  int32
	mu     sync.Mutex
	seen   map[string]int32
	total  atomic.Int64
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.total.Add(1)
	f.mu.Lock()
	if f.seen == nil {
		f.seen = map[string]int32{}
	}
	n := f.seen[r.URL.Path]
	f.seen[r.URL.Path] = n + 1
	f.mu.Unlock()
	if n < f.failN {
		if f.status == 0 {
			// 200 with an empty body: the client sees a result stream
			// that ends before every cell reported.
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "injected fault", f.status)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestFabricClientRetriesTransientFailures pins the submit/stats retry
// policy: 5xx rejections and truncated result streams are retried with
// backoff until the batch lands, and the results match an in-process
// run (whole-batch resubmission is dedup-safe through Collect).
func TestFabricClientRetriesTransientFailures(t *testing.T) {
	_, runner := countingRunner()
	srv, err := NewServer(Options{Store: newTestStore(t), Runner: runner, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.StartLocalWorkers(2)

	for _, tc := range []struct {
		name   string
		status int
	}{
		{"http-503", http.StatusServiceUnavailable},
		{"truncated-stream", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			flaky := &flakyHandler{inner: srv.Handler(), status: tc.status, failN: 2}
			hs := httptest.NewServer(flaky)
			defer hs.Close()
			client := NewClient(hs.URL)
			client.SetRetryPolicy(3, time.Millisecond, time.Minute)

			cfgs := []experiments.RunConfig{cheapCell("LRU", 500), cheapCell("ARC", 500)}
			want, err := experiments.RunAll(cfgs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := experiments.Collect(len(cfgs), func(emit func(experiments.CellResult)) error {
				return client.Execute(cfgs, emit)
			})
			if err != nil {
				t.Fatalf("submit did not survive transient failures: %v", err)
			}
			for i := range want {
				got[i].Replay.ReaderStalls, want[i].Replay.ReaderStalls = 0, 0
				got[i].Replay.ReplayStalls, want[i].Replay.ReplayStalls = 0, 0
				got[i].Replay.RingHighWater, want[i].Replay.RingHighWater = 0, 0
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("cell %d differs after retried submit:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
			if n := flaky.seen["/v1/jobs"]; n != 3 {
				t.Errorf("submit attempts = %d, want 2 failures + 1 success", n)
			}

			if _, err := client.Stats(); err != nil {
				t.Errorf("stats did not survive transient failures: %v", err)
			}
		})
	}
}

// TestFabricClientDoesNotRetryRejection pins the other half of the
// policy: a 4xx rejection is permanent — one attempt, no backoff.
func TestFabricClientDoesNotRetryRejection(t *testing.T) {
	flaky := &flakyHandler{
		inner:  http.NotFoundHandler(),
		status: http.StatusBadRequest,
		failN:  1 << 30,
	}
	hs := httptest.NewServer(flaky)
	defer hs.Close()
	client := NewClient(hs.URL)
	client.SetRetryPolicy(3, time.Millisecond, time.Minute)

	_, err := experiments.Collect(1, func(emit func(experiments.CellResult)) error {
		return client.Execute([]experiments.RunConfig{cheapCell("LRU", 500)}, emit)
	})
	if err == nil || !strings.Contains(err.Error(), "job rejected") {
		t.Fatalf("expected permanent rejection, got %v", err)
	}
	if n := flaky.total.Load(); n != 1 {
		t.Fatalf("4xx retried: %d attempts, want 1", n)
	}
}
