module craid

go 1.24
