// Command craidd is the experiment-fabric service: a work queue that
// schedules simulation cells over local workers and remote worker
// processes, streams results back to submitters as cells finish, and
// caches every completed cell content-addressed by its canonical
// config hash — so re-running a table recomputes nothing.
//
// Usage:
//
//	craidd -listen :8440 -workers 4 -cache ~/.cache/craid
//	craidd -join http://host:8440 -workers 2
//
// The first form serves the fabric: submitters POST RunConfig batches
// to /v1/jobs (craidbench -remote, craidsim -remote) and worker
// processes poll /v1/lease. The second form is such a worker process:
// it leases cells from a remote craidd, simulates them, and posts the
// results back, heartbeating while a cell runs so the lease survives
// long simulations. A worker that dies mid-cell simply stops
// heartbeating; the service re-issues its cells to someone else after
// -lease-ttl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"craid/internal/fabric"
)

func main() {
	listen := flag.String("listen", ":8440", "serve the fabric API on this address")
	join := flag.String("join", "", "be a worker for the craidd at this URL instead of serving")
	workers := flag.Int("workers", runtime.NumCPU(),
		"concurrent simulation cells (local workers when serving, lease loops when joining)")
	cache := flag.String("cache", defaultCacheDir(),
		"content-addressed result store directory")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second,
		"re-issue a worker's cell after this long without a heartbeat")
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("craidd: ")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		runWorkers(ctx, *join, *workers)
		return
	}
	serve(ctx, *listen, *cache, *workers, *leaseTTL)
}

func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "craid-fabric")
	}
	return "craid-fabric"
}

// serve runs the fabric service until the context is cancelled.
func serve(ctx context.Context, listen, cache string, workers int, leaseTTL time.Duration) {
	store, err := fabric.OpenStore(cache)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := fabric.NewServer(fabric.Options{
		Store:    store,
		LeaseTTL: leaseTTL,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if workers > 0 {
		srv.StartLocalWorkers(workers)
	}
	entries, _ := store.Len()
	log.Printf("serving on %s: %d local worker(s), cache %s (%d cached cell(s)), lease TTL %s",
		listen, workers, cache, entries, leaseTTL)

	hs := &http.Server{Addr: listen, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	srv.Close()
}

// runWorkers drives n lease loops against a remote craidd until the
// context is cancelled.
func runWorkers(ctx context.Context, base string, n int) {
	if n < 1 {
		n = 1
	}
	remote := fabric.NewRemote(base)
	log.Printf("joining %s with %d worker loop(s)", base, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			w := &fabric.Worker{API: remote}
			w.Loop(ctx)
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	fmt.Fprintln(os.Stderr, "craidd: worker stopped")
}
