// Command tracegen generates the calibrated synthetic block traces
// (the stand-ins for the paper's seven workloads) in the native text
// format, for inspection or replay with craidsim.
//
// Usage:
//
//	tracegen -trace wdev -scale 0.1 -out wdev.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"craid/internal/sim"
	"craid/internal/trace"
	"craid/internal/workload"
)

func main() {
	name := flag.String("trace", "", "preset workload name")
	scale := flag.Float64("scale", 1.0, "volume scale (1.0 = paper scale)")
	hours := flag.Float64("hours", 0, "override duration in hours (0 = full week)")
	out := flag.String("out", "-", "output file ('-' = stdout)")
	list := flag.Bool("list", false, "list preset workloads and exit")
	bursty := flag.Bool("bursty", false, "bursty, partially sequential arrivals")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %9s %9s %7s %8s\n", "name", "readGB", "writeGB", "top20%", "overlap")
		for _, p := range workload.Presets() {
			fmt.Printf("%-12s %9.2f %9.2f %6.1f%% %7.0f%%\n",
				p.Name, p.ReadGB, p.WriteGB, 100*p.Top20Share, 100*p.DailyOverlap)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -trace required (see -list)")
		os.Exit(2)
	}
	p, err := workload.Preset(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	p = p.Scaled(*scale)
	if *hours > 0 {
		p = p.WithDuration(sim.Time(*hours * float64(sim.Hour)))
	}
	if *bursty {
		p = p.WithBursts(12, 300*sim.Microsecond, 0.4)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	gen := workload.New(p)
	tw := trace.NewWriter(w)
	fmt.Fprintf(w, "# %s scale=%g dataset_blocks=%d\n", p.Name, *scale, gen.DatasetBlocks())
	var n int64
	for {
		rec, err := gen.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		if err := tw.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		n++
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records\n", n)
}
