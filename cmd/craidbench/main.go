// Command craidbench regenerates the CRAID paper's tables and figures
// from the simulator and prints them in paper-like form.
//
// Usage:
//
//	craidbench                  # everything at the default budget
//	craidbench -table 2         # one table (1-6, "migration", "pclevel", "rebalance", "fault")
//	craidbench -figure 4        # one figure (1, 4, 5, 6, 7)
//	craidbench -budget 2.0      # GB of replayed traffic per trace
//	craidbench -trace wdev      # restrict figures to one trace
//	craidbench -parallel 4      # concurrent simulations (default: all cores)
//	craidbench -shards 8        # shard the mapping index (ratios unchanged)
//	craidbench -workers 4       # multi-queue monitor workers per cell (ratios unchanged)
//	craidbench -workers 4 -lookahead 1   # overlap planning with apply (ratios unchanged)
//	craidbench -workers 4 -affinity      # pin shard groups to long-lived workers (ratios unchanged)
//	craidbench -remote http://host:8440  # run every cell through a craidd fabric
//	craidbench -scheduler heap  # A/B the event engine (default: wheel)
//	craidbench -cpuprofile cpu.pb.gz -table 2   # attach pprof evidence
//
// The -budget flag scales each workload so roughly that many gigabytes
// of traffic replay per simulation (volumes and disk capacities shrink
// together, preserving the paper's ratios). Larger budgets sharpen the
// curves at proportional CPU cost; the defaults complete in minutes.
//
// The -parallel flag bounds how many independent simulation cells run
// concurrently (each cell owns a private simulation engine, so the
// matrix is embarrassingly parallel). Results are identical at every
// parallelism level, and -shards shards every cell's mapping index
// without changing any ratio. The -workers flag additionally turns on
// each cell's multi-queue monitor: replay batches are classified
// concurrently against the sharded index (one worker per shard group)
// with a sequential apply stage, so every ratio and Stats field stays
// bit-identical to -workers 1; when -shards is left at its default,
// -workers N implies 4×N shards so the workers have groups to own.
// The -lookahead flag moves each cell's plan phase onto its own
// pipeline stage, classifying batch k+1 while batch k commits — same
// guarantee: every table is byte-identical at any -lookahead value.
//
// The -remote flag routes every simulation cell through a craidd
// experiment fabric (cmd/craidd) instead of running them in-process:
// cells are content-addressed, so a warm fabric cache answers a whole
// re-run without recomputing anything, and the printed tables are
// byte-identical to a local run either way (only the `--` timing
// footers differ).
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// the whole run, so performance PRs can attach before/after evidence
// gathered from exactly the paper workloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"craid/internal/experiments"
	"craid/internal/fabric"
	"craid/internal/sim"
	"craid/internal/workload"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 1-6 or 'migration'")
	figure := flag.String("figure", "", "regenerate one figure: 1, 4, 5, 6 or 7")
	budget := flag.Float64("budget", 0.5, "replayed GB per trace per simulation")
	traceName := flag.String("trace", "", "restrict figures to one trace")
	parallel := flag.Int("parallel", runtime.NumCPU(), "max concurrent simulations")
	shards := flag.Int("shards", 0, "mapping-index shards per CRAID (0 = single tree)")
	workers := flag.Int("workers", 0, "multi-queue monitor workers per CRAID (0 = sequential)")
	lookahead := flag.Int("lookahead", 0, "plan batches this far ahead of the apply stage (0 = plan between batches)")
	affinity := flag.Bool("affinity", false, "pin each shard group to one long-lived monitor worker (ratios unchanged)")
	remote := flag.String("remote", "",
		"run simulation cells through the craidd fabric at this URL instead of in-process")
	scheduler := flag.String("scheduler", "", "event engine for every cell: 'wheel' or 'heap' (default: wheel)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()
	if *scheduler != "" {
		kind, err := sim.ParseScheduler(*scheduler)
		if err != nil {
			fmt.Fprintln(os.Stderr, "craidbench:", err)
			os.Exit(2)
		}
		sim.SetDefaultScheduler(kind)
	}
	experiments.SetParallelism(*parallel)
	experiments.SetDefaultMapShards(*shards)
	experiments.SetDefaultMonitorWorkers(*workers)
	experiments.SetDefaultPlanLookahead(*lookahead)
	experiments.SetDefaultWorkerAffinity(*affinity)
	if *remote != "" {
		experiments.SetExecutor(fabric.NewClient(*remote))
	}

	stopProfiles := startProfiles(*cpuprofile, *memprofile)

	r := runner{budget: *budget, trace: *traceName}
	switch {
	case *table == "" && *figure == "":
		r.all()
	default:
		if *table != "" {
			r.table(*table)
		}
		if *figure != "" {
			r.figure(*figure)
		}
	}

	stopProfiles() // flush before any exit path
	if r.failed {
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arms heap profiling per the
// flags; the returned func stops/writes them (callable exactly once,
// and before os.Exit, which would skip deferred writes).
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "craidbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "craidbench:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "craidbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "craidbench:", err)
			}
		}
	}
}

type runner struct {
	budget float64
	trace  string
	failed bool
}

func (r *runner) check(err error) bool {
	if err != nil {
		fmt.Fprintln(os.Stderr, "craidbench:", err)
		r.failed = true
		return false
	}
	return true
}

func (r *runner) traces() []string {
	if r.trace != "" {
		return []string{r.trace}
	}
	return workload.PresetNames()
}

func (r *runner) all() {
	for _, t := range []string{"1", "2", "3", "4", "5", "6", "migration", "pclevel", "rebalance", "fault"} {
		r.table(t)
	}
	for _, f := range []string{"1", "4", "5", "6", "7"} {
		r.figure(f)
	}
}

func (r *runner) scaleFor(trace string) float64 {
	return experiments.ScaleFor(trace, r.budget)
}

func (r *runner) table(which string) {
	r.timed("table "+which, func() {
		switch which {
		case "1":
			r.table1()
		case "2", "3":
			r.tables23(which)
		case "4":
			r.table4()
		case "5":
			r.table5()
		case "6":
			r.table6()
		case "migration":
			r.migration()
		case "pclevel":
			r.pcLevel()
		case "rebalance":
			r.rebalance()
		case "fault":
			r.fault()
		default:
			r.check(fmt.Errorf("unknown table %q", which))
		}
	})
}

func (r *runner) figure(which string) {
	r.timed("figure "+which, func() {
		switch which {
		case "1":
			r.figure1()
		case "4", "6":
			r.figures46(which)
		case "5":
			r.figure5()
		case "7":
			r.figure7()
		default:
			r.check(fmt.Errorf("unknown figure %q", which))
		}
	})
}

// timed runs one table/figure and prints its monitor cost footer: wall
// time plus ns/record and allocs/record over the records the experiment
// replayed, so hot-loop regressions (time OR garbage) are visible right
// in the tables a perf PR quotes. A second footer line reports the
// event engine: events/sec across every cell's engine plus scheduler
// occupancy (same-instant ring share, timing-wheel placements per
// level, overflow-heap deferrals/promotions), so a scheduling
// regression — events leaking into the overflow heap, cascade storms —
// shows up in the same place as a time regression.
func (r *runner) timed(label string, fn func()) {
	var m0, m1 runtime.MemStats
	rec0 := experiments.ReplayedRecords()
	s0 := sim.GlobalSchedStats()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	s1 := sim.GlobalSchedStats()
	recs := experiments.ReplayedRecords() - rec0
	if recs > 0 {
		allocs := m1.Mallocs - m0.Mallocs
		fmt.Printf("-- %s: %.2fs wall, %.0f ns/record, %.3f allocs/record (%d records)\n",
			label, wall.Seconds(), float64(wall.Nanoseconds())/float64(recs),
			float64(allocs)/float64(recs), recs)
		printSchedFooter(label, wall, s0, s1)
	} else {
		fmt.Printf("-- %s: %.2fs wall\n", label, wall.Seconds())
	}
}

// printSchedFooter prints the event-engine half of the footer from a
// GlobalSchedStats delta bracketing one table/figure.
func printSchedFooter(label string, wall time.Duration, s0, s1 sim.SchedStats) {
	fired := s1.Fired - s0.Fired
	if fired <= 0 {
		return // remote runs: the fabric's engines fire, not ours
	}
	ring := s1.Ring - s0.Ring
	deferred := s1.Deferred - s0.Deferred
	promoted := s1.Promoted - s0.Promoted
	cascaded := s1.Cascaded - s0.Cascaded
	var levels strings.Builder
	for i := range s1.Level {
		if i > 0 {
			levels.WriteByte('/')
		}
		fmt.Fprintf(&levels, "%d", s1.Level[i]-s0.Level[i])
	}
	fmt.Printf("-- %s: %.2fM events/s (%d events, ring %.1f%%), wheel L0/L1/L2 %s, overflow %d deferred %d promoted %d cascaded\n",
		label, float64(fired)/wall.Seconds()/1e6, fired,
		100*float64(ring)/float64(fired), levels.String(),
		deferred, promoted, cascaded)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func (r *runner) table1() {
	header("Table 1: summary statistics of the seven workloads (scaled)")
	fmt.Printf("%-12s %9s %9s %9s %9s %6s %9s %8s\n",
		"trace", "readGB", "uniqR_GB", "writeGB", "uniqW_GB", "R/W", "totalGB", "top20%")
	rows, err := experiments.Table1(r.budget)
	if !r.check(err) {
		return
	}
	for _, name := range r.traces() {
		for _, row := range rows {
			if row.Trace != name {
				continue
			}
			s := row.Summary
			fmt.Printf("%-12s %9.2f %9.2f %9.2f %9.2f %6.2f %9.2f %7.2f%%\n",
				row.Trace, s.ReadGB, s.UniqueReadGB, s.WriteGB, s.UniqueWriteGB,
				s.RWRatio, s.TotalGB, 100*s.Top20Share)
		}
	}
}

func (r *runner) tables23(which string) {
	if which == "2" {
		header("Table 2: hit ratio (%) per cache-management algorithm")
	} else {
		header("Table 3: replacement ratio (%) per cache-management algorithm")
	}
	fmt.Printf("%-12s", "trace")
	for _, p := range experiments.PolicyNamesPaper() {
		fmt.Printf(" %8s", p)
	}
	fmt.Println()
	rows, err := experiments.Tables2and3(r.budget)
	if !r.check(err) {
		return
	}
	for _, name := range r.traces() {
		vals := map[string]float64{}
		for _, row := range rows {
			if row.Trace != name {
				continue
			}
			if which == "2" {
				vals[row.Policy] = row.HitRatio
			} else {
				vals[row.Policy] = row.ReplacementRatio
			}
		}
		fmt.Printf("%-12s", name)
		for _, p := range experiments.PolicyNamesPaper() {
			fmt.Printf(" %7.2f%%", 100*vals[p])
		}
		fmt.Println()
	}
}

func (r *runner) sweep(name string) (experiments.SweepResult, error) {
	return experiments.ResponseTimeSweep(name, r.scaleFor(name), nil)
}

func (r *runner) figures46(which string) {
	if which == "4" {
		header("Figure 4: mean read response time (ms) vs cache size (% per disk)")
	} else {
		header("Figure 6: mean write response time (ms) vs cache size (% per disk)")
	}
	for _, name := range r.traces() {
		sweep, err := r.sweep(name)
		if !r.check(err) {
			return
		}
		fmt.Printf("\n[%s]\n%-13s", name, "strategy")
		for _, pct := range experiments.PCSizes(name) {
			fmt.Printf(" %8.3f", pct)
		}
		fmt.Println()
		for _, strat := range experiments.Strategies() {
			fmt.Printf("%-13s", strat)
			for _, pct := range experiments.PCSizes(name) {
				pt, ok := findPoint(sweep, strat, pct)
				if !ok {
					fmt.Printf(" %8s", "-")
					continue
				}
				v := pt.ReadMean
				if which == "6" {
					v = pt.WriteMean
				}
				fmt.Printf(" %8.3f", v.Milliseconds())
			}
			fmt.Println()
		}
	}
}

func findPoint(sweep experiments.SweepResult, strat experiments.Strategy, pct float64) (experiments.SweepPoint, bool) {
	var flat experiments.SweepPoint
	found := false
	for _, p := range sweep.Points {
		if p.Strategy != strat {
			continue
		}
		if p.PCPct == pct {
			return p, true
		}
		flat, found = p, true // baselines: single point at any pct
	}
	if found && !strings.HasPrefix(string(strat), "CRAID") {
		return flat, true
	}
	return experiments.SweepPoint{}, false
}

func (r *runner) table4() {
	header("Table 4: best hit ratio and worst eviction ratio (all simulations)")
	fmt.Printf("%-12s %10s %10s %12s %12s\n",
		"trace", "bestHit_R", "bestHit_W", "worstEvict_R", "worstEvict_W")
	for _, name := range r.traces() {
		sweep, err := r.sweep(name)
		if !r.check(err) {
			return
		}
		t4 := experiments.Table4(sweep)
		fmt.Printf("%-12s %9.2f%% %9.2f%% %11.2f%% %11.2f%%\n",
			name, 100*t4.BestReadHit, 100*t4.BestWriteHit,
			100*t4.WorstReadEvict, 100*t4.WorstWriteEvict)
	}
}

func (r *runner) figure1() {
	header("Figure 1: block frequency CDFs and daily working-set overlap")
	for _, name := range r.traces() {
		res, err := experiments.Figure1(name, r.scaleFor(name))
		if !r.check(err) {
			return
		}
		fmt.Printf("\n[%s] freq:   ", name)
		for _, f := range res.Freqs {
			fmt.Printf(" %6d", f)
		}
		fmt.Printf("\n  read CDF:    ")
		for _, v := range res.ReadCDF {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Printf("\n  write CDF:   ")
		for _, v := range res.WriteCDF {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Printf("\n  overlap all: ")
		for _, v := range res.OverlapAll {
			fmt.Printf(" %5.1f%%", 100*v)
		}
		fmt.Printf("\n  overlap top20:")
		for _, v := range res.OverlapTop {
			fmt.Printf(" %5.1f%%", 100*v)
		}
		fmt.Println()
	}
}

func (r *runner) figure5() {
	header("Figure 5: sequential access distribution (per-second quantiles)")
	traces := r.traces()
	if r.trace == "" {
		traces = []string{"cello99", "webusers"} // the paper's panels
	}
	for _, name := range traces {
		pct := experiments.PCSizes(name)[2]
		series, err := experiments.Figure5(name, r.scaleFor(name), pct)
		if !r.check(err) {
			return
		}
		fmt.Printf("\n[%s] P_C = %.3f%%; quantiles 0%%..100%% of per-second seq fraction\n", name, pct)
		for _, s := range series {
			fmt.Printf("%-13s mean=%.3f  ", s.Strategy, s.Mean)
			for _, q := range s.Quantiles {
				fmt.Printf(" %5.2f", q)
			}
			fmt.Println()
		}
	}
}

func (r *runner) table5() {
	header("Table 5: ioqueue size and concurrent devices, wdev, P_C = 0.002%")
	rows, err := experiments.Table5(r.scaleFor("wdev"))
	if !r.check(err) {
		return
	}
	fmt.Printf("%-13s %10s %8s %8s %10s %8s %8s\n",
		"strategy", "IoqMean", "Ioq99", "IoqMax", "CdevMean", "Cdev99", "CdevMax")
	for _, row := range rows {
		fmt.Printf("%-13s %10.2f %8d %8d %10.2f %8d %8d\n",
			row.Strategy, row.QueueMean, row.QueueP99, row.QueueMax,
			row.ConcMean, row.ConcP99, row.ConcMax)
	}
}

func (r *runner) figure7() {
	header("Figure 7: workload distribution — CDF of per-second cv")
	traces := r.traces()
	if r.trace == "" {
		traces = []string{"deasna", "wdev"} // the paper's panels
	}
	for _, name := range traces {
		series, err := experiments.Figure7(name, r.scaleFor(name), bestWorstSizes(name))
		if !r.check(err) {
			return
		}
		fmt.Printf("\n[%s] cv grid:", name)
		for _, g := range experiments.CVGrid {
			fmt.Printf(" %5.2f", g)
		}
		fmt.Println()
		for _, s := range series {
			label := string(s.Strategy)
			if s.PCPct > 0 {
				label = fmt.Sprintf("%s@%.3f%%", s.Strategy, s.PCPct)
			}
			fmt.Printf("%-20s meanCV=%.3f ", label, s.MeanCV)
			for _, v := range s.CDF {
				fmt.Printf(" %5.2f", v)
			}
			fmt.Println()
		}
	}
}

func (r *runner) table6() {
	header("Table 6: influence of P_C size on workload distribution")
	fmt.Printf("%-13s %10s %10s %10s %10s\n", "strategy", "bestPC%", "bestCV", "worstPC%", "worstCV")
	for _, name := range r.traces() {
		series, err := experiments.Figure7(name, r.scaleFor(name), bestWorstSizes(name))
		if !r.check(err) {
			return
		}
		fmt.Printf("[%s]\n", name)
		for _, row := range experiments.Table6(series) {
			fmt.Printf("%-13s %10.3f %10.3f %10.3f %10.3f\n",
				row.Strategy, row.BestPct, row.BestCV, row.WorstPct, row.WorstCV)
		}
	}
}

// bestWorstSizes picks the extremes of the paper sweep (Table 6 shows
// best/worst, which land on the smallest/largest P_C).
func bestWorstSizes(trace string) []float64 {
	sizes := experiments.PCSizes(trace)
	return []float64{sizes[0], sizes[len(sizes)-1]}
}

func (r *runner) migration() {
	header("Migration ablation: upgrade cost over the 10→50 schedule")
	rows, err := experiments.MigrationAblation(0.0128)
	if !r.check(err) {
		return
	}
	fmt.Printf("%-11s %11s %9s  %s\n", "strategy", "total moved", "final cv", "per-step fraction moved")
	for _, row := range rows {
		fmt.Printf("%-11s %10.2f%% %9.4f ", row.Strategy, 100*row.TotalFrac, row.FinalCV)
		for _, f := range row.StepsFrac {
			fmt.Printf(" %6.3f", f)
		}
		fmt.Println()
	}
}

func (r *runner) pcLevel() {
	header("Ablation: cache-partition redundancy level (wdev)")
	rows, err := experiments.AblationPCLevel("wdev", r.scaleFor("wdev"), 0.008)
	if !r.check(err) {
		return
	}
	fmt.Printf("%-8s %10s %10s %8s %8s\n", "P_C", "read(ms)", "write(ms)", "hitR", "hitW")
	for _, row := range rows {
		fmt.Printf("%-8s %10.3f %10.3f %7.1f%% %7.1f%%\n",
			row.Level, row.ReadMean.Milliseconds(), row.WriteMean.Milliseconds(),
			100*row.HitRead, 100*row.HitWrite)
	}
}

// fault prints the failure family: every strategy replays the same
// wdev workload healthy and under each standard fault plan (single
// failures, a disjoint-group double fault, and — for CRAID — crash
// storms and online expansion under load), and the table shows the
// interference ratios (faulted/healthy mean response time) next to the
// degraded-window latencies and the compound-failure KPIs.
func (r *runner) fault() {
	header("Fault family: healthy-vs-faulted interference, degraded-window and compound KPIs (wdev)")
	fmt.Printf("%-13s %-16s %7s %7s %10s %10s %10s %10s %11s %5s %5s %8s\n",
		"strategy", "experiment", "readX", "writeX",
		"degRd(ms)", "degRdP99", "degWr(ms)", "degWrP99", "rebuild(s)",
		"lost", "rst", "upg(ms)")
	for _, strat := range experiments.Strategies() {
		cfg := experiments.RunConfig{
			Trace: "wdev", Scale: r.scaleFor("wdev"), Strategy: strat,
		}
		if strat.IsCRAID() {
			cfg.PCPct = 0.008
		}
		rows, err := experiments.RunFaultFamily(cfg)
		if !r.check(err) {
			return
		}
		for _, row := range rows {
			fmt.Printf("%-13s %-16s %6.2fx %6.2fx %10.3f %10.3f %10.3f %10.3f %11.2f %5d %5d %8.3f\n",
				strat, row.Name, row.ReadMeanX, row.WriteMeanX,
				row.DegReadMean.Milliseconds(), row.DegReadP99.Milliseconds(),
				row.DegWriteMean.Milliseconds(), row.DegWriteP99.Milliseconds(),
				row.RebuildDuration.Seconds(),
				row.RebuildLostRows, row.Restarts, row.UpgradeLatency.Milliseconds())
		}
	}
}

func (r *runner) rebalance() {
	header("Ablation: expansion strategy, 38→50 disks mid-trace (wdev)")
	rows, err := experiments.AblationRebalance("wdev", r.scaleFor("wdev"), 0.008)
	if !r.check(err) {
		return
	}
	fmt.Printf("%-11s %9s %9s %9s %10s %10s %8s %9s\n",
		"mode", "writeback", "migrated", "dropped", "preRd(ms)", "postRd(ms)", "postHit", "newDiskIO")
	for _, row := range rows {
		fmt.Printf("%-11s %9d %9d %9d %10.3f %10.3f %7.1f%% %9d\n",
			row.Mode, row.Upgrade.DirtyWriteback, row.Upgrade.Migrated, row.Upgrade.Invalidated,
			row.PreReadMean.Milliseconds(), row.PostReadMean.Milliseconds(),
			100*row.PostHitRatio, row.NewDiskReads+row.NewDiskWrites)
	}
}
