// Command craidsim runs one storage simulation: a workload (preset
// generator or trace file) replayed against one allocation strategy,
// reporting response times, hit ratios and distribution statistics.
//
// Usage:
//
//	craidsim -trace wdev -strategy CRAID-5 -pc 0.008
//	craidsim -trace cello99 -strategy RAID-5+ -budget 2
//	craidsim -file wdev.trace -format native -strategy CRAID-5 -pc 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"craid/internal/experiments"
	"craid/internal/metrics"
)

func main() {
	traceName := flag.String("trace", "wdev", "preset workload name")
	strategy := flag.String("strategy", "CRAID-5",
		"RAID-5 | RAID-5+ | CRAID-5 | CRAID-5+ | CRAID-5ssd | CRAID-5+ssd")
	pc := flag.Float64("pc", 0.008, "cache partition size, % per disk")
	policy := flag.String("policy", "WLRU", "monitor policy: LRU|LFUDA|GDSF|ARC|WLRU")
	budget := flag.Float64("budget", 0.5, "replayed GB (scales the workload)")
	bursty := flag.Bool("bursty", false, "bursty arrivals")
	flag.Parse()

	cfg := experiments.RunConfig{
		Trace:     *traceName,
		Scale:     experiments.ScaleFor(*traceName, *budget),
		Strategy:  experiments.Strategy(*strategy),
		PCPct:     *pc,
		Policy:    *policy,
		Bursty:    *bursty,
		TrackLoad: true,
		TrackSeq:  true,
	}
	res, err := experiments.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "craidsim:", err)
		os.Exit(1)
	}

	fmt.Printf("trace:        %s (scale %.5f)\n", cfg.Trace, cfg.Scale)
	fmt.Printf("strategy:     %s  P_C=%.4f%%/disk  policy=%s\n", cfg.Strategy, cfg.PCPct, cfg.Policy)
	fmt.Printf("requests:     %d\n", res.Requests)
	fmt.Printf("read:         mean %.3f ms, p99 %.3f ms\n",
		res.ReadMean.Milliseconds(), res.ReadP99.Milliseconds())
	fmt.Printf("write:        mean %.3f ms, p99 %.3f ms\n",
		res.WriteMean.Milliseconds(), res.WriteP99.Milliseconds())
	if res.CRAID != nil {
		s := res.CRAID
		fmt.Printf("hit ratio:    reads %.2f%%  writes %.2f%%\n",
			100*s.HitRatio(0), 100*s.HitRatio(1))
		fmt.Printf("evictions:    %d (%.2f%% dirty)  copy-ins: %d blocks  writebacks: %d blocks\n",
			s.Evictions, 100*ratioOf(s.DirtyEvictions, s.Evictions), s.CopyIns, s.Writebacks)
	}
	fmt.Printf("load balance: mean per-second cv %.3f\n", metrics.Mean(res.CVs))
	fmt.Printf("sequential:   mean per-second fraction %.3f\n", metrics.Mean(res.SeqFracs))
	fmt.Printf("queues:       mean %.2f, p99 %d, max %d; concurrent devices mean %.1f max %d\n",
		res.QueueMean, res.QueueP99, res.QueueMax, res.ConcMean, res.ConcMax)
}

func ratioOf(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
